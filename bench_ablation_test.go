// Ablation benchmarks for the design choices documented in DESIGN.md §3:
// the Storing-Theorem trie parameter ε, the distance index's bounded-ball
// fast path vs the pure splitter recursion, and FastCount vs enumeration.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/splitter"
	"repro/internal/store"
)

// BenchmarkAblationStoreEpsilon sweeps the trie parameter ε of Theorem 3.1:
// larger ε means wider, shallower tries (faster lookups, more space).
func BenchmarkAblationStoreEpsilon(b *testing.B) {
	n := 1 << 16
	for _, eps := range []float64{0.125, 0.25, 0.5} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			s := store.New(n, 2, eps)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < n; i++ {
				s.Set([]int{rng.Intn(n), rng.Intn(n)}, int64(i))
			}
			b.ReportMetric(float64(s.Registers())/float64(s.Len()), "regs/entry")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextGeq([]int{i % n, (i * 7) % n})
			}
		})
	}
}

// BenchmarkAblationDistBallTable compares the distance index with and
// without the bounded-ball fast path on a grid (where the fast path
// replaces the whole recursion with one table).
func BenchmarkAblationDistBallTable(b *testing.B) {
	g := benchGraph(gen.Grid, 16000)
	for _, disable := range []bool{false, true} {
		name := "fastpath"
		if disable {
			name = "recursion"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dist.New(g, 2, dist.Options{DisableBallTable: disable})
			}
		})
	}
}

// BenchmarkAblationDistStrategy compares Splitter strategies on a
// hub-dominated graph, where the recursion is actually exercised.
func BenchmarkAblationDistStrategy(b *testing.B) {
	g := benchGraph(gen.RandomTree, 16000)
	strategies := map[string]splitter.Strategy{
		"ballcenter": splitter.BallCenter{},
		"maxdegree":  splitter.MaxDegree{},
		"forest":     splitter.NewForestDepth(g),
	}
	for name, strat := range strategies {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := dist.New(g, 2, dist.Options{DisableBallTable: true, Strategy: strat})
				if ix.Stats().MaxDepth == 0 {
					b.Fatal("recursion not exercised")
				}
			}
		})
	}
}

// BenchmarkAblationFastCount compares pseudo-linear counting with counting
// by enumeration on the Example-2 query (whose answer set is Θ(n·|blue|)).
func BenchmarkAblationFastCount(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		g := benchGraph(gen.Grid, n)
		lq, err := core.Compile(fo.MustParse(benchQuerySrc), []fo.Var{"x", "y"}, core.CompileOptions{})
		if err != nil {
			b.Fatal(err)
		}
		e, err := core.Preprocess(g, lq, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("fast/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := e.FastCount(); !ok {
					b.Fatal("unsupported")
				}
			}
		})
		b.Run(fmt.Sprintf("enumerate/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Count()
			}
		})
	}
}
