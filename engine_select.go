package repro

import (
	"fmt"

	"repro/internal/wcol"
)

// EngineKind names an enumeration engine backing an Index.
//
// The library default is EngineCore — the paper's nowhere-dense engine,
// correct on every input. EngineLowDeg is the Durand–Schweikardt–Segoufin
// low-degree engine: the same answering contract with a much cheaper
// linear build, at its best on bounded-degree graphs (its delay degrades
// with the maximum degree, so it is never chosen implicitly for
// high-degree inputs). EngineAuto measures the graph and picks.
type EngineKind string

const (
	// EngineCore forces the general nowhere-dense engine (the default).
	EngineCore EngineKind = "core"
	// EngineLowDeg forces the low-degree engine regardless of the graph's
	// shape. Correct on any input, but delay bounds assume low degree.
	EngineLowDeg EngineKind = "lowdeg"
	// EngineAuto routes on cheap sparsity estimates: the graph's maximum
	// degree and its degeneracy (computed in O(n+m) by wcol's bucket
	// queue). Low-degree graphs get EngineLowDeg, everything else the
	// core engine.
	EngineAuto EngineKind = "auto"
)

// Auto-selection thresholds: EngineAuto picks the low-degree engine only
// when MaxDegree ≤ AutoMaxDegree (the per-vertex ball size d^R stays
// small) and Degeneracy ≤ AutoMaxDegeneracy (no dense core hides inside a
// low-degree skin). KingGrid — degree 8, degeneracy 4 — is the densest
// class the paper's experiments treat as a bounded-degree input, so the
// limits sit exactly there.
const (
	AutoMaxDegree     = 8
	AutoMaxDegeneracy = 4
)

// Selection records an engine-routing decision: what was asked, what was
// chosen, and the estimates the choice was based on (−1 when a forced
// kind made measuring unnecessary). The serving layer surfaces it in
// /v1/stats.
type Selection struct {
	Requested EngineKind `json:"requested"` // the configured kind ("" means the core default)
	Chosen    EngineKind `json:"chosen"`    // the engine actually built

	MaxDegree  int `json:"max_degree"`  // measured maximum degree, or −1
	Degeneracy int `json:"degeneracy"`  // measured degeneracy, or −1
	DegreeLimit     int `json:"degree_limit"`     // AutoMaxDegree at decision time
	DegeneracyLimit int `json:"degeneracy_limit"` // AutoMaxDegeneracy at decision time
}

// selectEngine resolves the requested kind against the graph. The empty
// kind keeps the library's historical default (the core engine) so that
// existing callers — and every persisted snapshot — are unaffected;
// routing is opt-in via EngineAuto.
func selectEngine(g *Graph, req EngineKind) (Selection, error) {
	sel := Selection{
		Requested:       req,
		MaxDegree:       -1,
		Degeneracy:      -1,
		DegreeLimit:     AutoMaxDegree,
		DegeneracyLimit: AutoMaxDegeneracy,
	}
	switch req {
	case "", EngineCore:
		sel.Chosen = EngineCore
		return sel, nil
	case EngineLowDeg:
		sel.Chosen = EngineLowDeg
		return sel, nil
	case EngineAuto:
		sel.MaxDegree = g.MaxDegree()
		if sel.MaxDegree > AutoMaxDegree {
			// Degeneracy cannot rescue a high-degree graph: the lowdeg
			// ball structure is already oversized. Skip the second scan.
			sel.Chosen = EngineCore
			return sel, nil
		}
		sel.Degeneracy = wcol.DegeneracyFast(g)
		if sel.Degeneracy > AutoMaxDegeneracy {
			sel.Chosen = EngineCore
			return sel, nil
		}
		sel.Chosen = EngineLowDeg
		return sel, nil
	default:
		return sel, fmt.Errorf("repro: unknown engine kind %q (want %q, %q or %q)",
			req, EngineCore, EngineLowDeg, EngineAuto)
	}
}

// Engine returns the kind of engine backing this index.
func (ix *Index) Engine() EngineKind {
	if ix.le != nil {
		return EngineLowDeg
	}
	return EngineCore
}

// Selection returns the engine-routing decision recorded when the index
// was built (zero value for restored snapshots predating selection).
func (ix *Index) Selection() Selection { return ix.sel }
