// Package repro is a from-scratch Go implementation of
//
//	Schweikardt, Segoufin, Vigny:
//	“Enumeration for FO Queries over Nowhere Dense Graphs” (PODS 2018 /
//	J. ACM 2022).
//
// It provides, for first-order queries with distance atoms (FO⁺) over
// sparse (“nowhere dense”) colored graphs:
//
//   - an Index (Theorem 2.3) built in pseudo-linear time that returns the
//     lexicographically smallest solution ≥ any given tuple in constant
//     time,
//   - constant-time solution Testing (Corollary 2.4),
//   - constant-delay Enumeration of all solutions in lexicographic order
//     (Corollary 2.5),
//   - a DistanceIndex (Proposition 4.2) for constant-time dist(a,b) ≤ r
//     tests,
//   - the Storing-Theorem data structure (Theorem 3.1) as a reusable
//     k-ary map with successor lookups,
//   - relational databases and their colored-graph encoding (Lemma 2.2).
//
// Quickstart:
//
//	g := repro.Generate("grid", 10_000, repro.GenOptions{Colors: 1})
//	q, _ := repro.ParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
//	ix, _ := repro.BuildIndex(g, q)
//	ix.Enumerate(func(sol []int) bool { fmt.Println(sol); return true })
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's complexity claims.
package repro

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowdeg"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/store"
)

// Graph is a finite colored graph (a structure over the schema
// {E, C_0, …, C_{c−1}}). Vertices are 0..N()-1; the vertex order is the
// linear order underlying all lexicographic guarantees.
type Graph = graph.Graph

// GraphBuilder accumulates edges and colors; call Build to finalize.
type GraphBuilder = graph.Builder

// Database is a finite relational structure (Section 2 of the paper).
type Database = rel.Structure

// NewGraphBuilder returns a builder for a graph with n vertices and the
// given number of color relations.
func NewGraphBuilder(n, colors int) *GraphBuilder { return graph.NewBuilder(n, colors) }

// NewDatabase returns an empty relational structure with an n-element
// domain.
func NewDatabase(n int) *Database { return rel.NewStructure(n) }

// GenOptions forwards to the graph generators; see gen.Options.
type GenOptions = gen.Options

// Generate builds a named benchmark graph class ("path", "cycle", "star",
// "caterpillar", "btree", "rtree", "grid", "kinggrid", "bdeg",
// "sparserandom", and the dense controls "clique", "dense", "subclique").
func Generate(class string, n int, opt GenOptions) *Graph {
	return gen.Generate(gen.Class(class), n, opt)
}

// GraphClasses lists the available generator class names.
func GraphClasses() []string {
	out := make([]string, len(gen.Classes))
	for i, c := range gen.Classes {
		out[i] = string(c)
	}
	return out
}

// Query is a parsed FO⁺ query with an ordered tuple of free variables.
// A *Query is safe for concurrent use: the lazily compiled normal form is
// guarded by a sync.Once, so one Query may back many concurrent
// BuildIndex calls.
type Query struct {
	// Phi is the formula; Vars fixes the output-column order.
	Phi  fo.Formula
	Vars []fo.Var

	compileOnce sync.Once
	compiled    *core.LocalQuery
	compileErr  error
}

// ParseQuery parses a query in the textual language, e.g.
//
//	dist(x,y) > 2 & C0(y)
//	exists z (E(x,z) & E(z,y)) | E(x,y) | x = y
//
// vars fixes the order of the output columns and must cover the free
// variables of the formula.
func ParseQuery(src string, vars ...string) (*Query, error) {
	phi, err := fo.Parse(src)
	if err != nil {
		return nil, err
	}
	vs := make([]fo.Var, len(vars))
	for i, v := range vars {
		vs[i] = fo.Var(v)
	}
	return &Query{Phi: phi, Vars: vs}, nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(src string, vars ...string) *Query {
	q, err := ParseQuery(src, vars...)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseCountQuery parses a counting query in the `#vars: formula` form of
// Grohe–Schweikardt, e.g.
//
//	#x,y: dist(x,y) > 2 & C0(y)
//
// The variables before the ':' fix the counted columns (they must cover
// the formula's free variables). The result is an ordinary *Query — build
// it and call SolutionCount to evaluate `#x̄ φ`.
func ParseCountQuery(src string) (*Query, error) {
	vars, phi, err := fo.ParseCount(src)
	if err != nil {
		return nil, err
	}
	return &Query{Phi: phi, Vars: vars}, nil
}

// MustParseCountQuery is ParseCountQuery that panics on error.
func MustParseCountQuery(src string) *Query {
	q, err := ParseCountQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Arity returns the number of output columns.
func (q *Query) Arity() int { return len(q.Vars) }

// compile caches the decomposed normal form. The sync.Once makes the lazy
// write safe when one *Query is shared by concurrent BuildIndex calls.
func (q *Query) compile() (*core.LocalQuery, error) {
	q.compileOnce.Do(func() {
		q.compiled, q.compileErr = core.Compile(q.Phi, q.Vars, core.CompileOptions{})
	})
	return q.compiled, q.compileErr
}

// Canonical returns a canonical textual form of the query: the printed
// formula (stable under parse → String round trips) plus the output-column
// order. Two queries with equal Canonical() are the same query, whatever
// whitespace or redundant parentheses the original source used — the
// serving layer keys its index cache on it.
func (q *Query) Canonical() string {
	parts := make([]string, len(q.Vars))
	for i, v := range q.Vars {
		parts[i] = string(v)
	}
	return q.Phi.String() + " ; vars " + strings.Join(parts, ",")
}

// Index is the preprocessed structure of Theorem 2.3 for one graph and one
// query. Once built, its query methods are safe for concurrent use. An
// Index is an immutable snapshot: ApplyEdits derives the index of an
// edited graph as a new value and never modifies the receiver.
//
// Exactly one of the two engines backs an index: the general nowhere-dense
// engine (the default) or the bounded-degree engine of
// Durand–Schweikardt–Segoufin, selected per IndexOptions.Engine; both
// satisfy the same Next/Test/Enumerate contract, so callers never branch.
type Index struct {
	e       *core.Engine   // general engine; nil when le backs the index
	le      *lowdeg.Engine // low-degree engine; nil when e backs the index
	sel     Selection      // how the engine was chosen
	k       int
	q       *Query // retained for snapshots; nil only for zero-value indexes
	version int    // mutation generation; 0 for a fresh build

	// SolutionCount cache: `#x̄ φ` is a property of the (graph, query)
	// version, so it is computed at most once per Index value. countDone
	// flips only after the once body stored the value, letting
	// SolutionCountCtx serve cache hits without entering the Once (a
	// canceled count must not poison the cache).
	countOnce sync.Once
	countDone atomic.Bool
	countVal  int
	countFast bool
}

// Metrics is an observability registry (internal/obs): atomic counters
// and gauges, log-bucket latency histograms with p50/p90/p99/max
// extraction, and phase-tracing spans, exportable as a JSON snapshot
// (WriteJSON/Snapshot) and via expvar (Publish). Pass one to
// IndexOptions.Metrics to instrument an index, or ServeDebug to expose it
// over HTTP together with net/http/pprof.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// ServeDebug publishes reg via expvar and serves /debug/vars,
// /debug/metrics (JSON snapshot), and /debug/pprof/... on addr in a
// background goroutine, returning the bound listener.
func ServeDebug(addr string, reg *Metrics) (net.Listener, error) {
	return obs.ServeDebug(addr, reg)
}

// IndexOptions tunes BuildIndexOpt.
type IndexOptions struct {
	// Parallelism bounds the preprocessing worker count. 0 (the default)
	// selects runtime.GOMAXPROCS(0); 1 forces the sequential build. The
	// resulting index is identical for every setting — parallelism only
	// changes build wall time.
	Parallelism int
	// Metrics, when non-nil, instruments the index: preprocessing phases
	// are traced as spans (span.preprocess.* histograms), the engine's
	// answering counters are exported live (engine.candidates, …), and
	// NextGeq/Test latency plus the Corollary 2.5 per-answer enumeration
	// delay are recorded as histograms (engine.next_geq_ns,
	// engine.test_ns, engine.delay_ns). Nil (the default) keeps the
	// answering hot path free of timing work.
	Metrics *Metrics
	// Engine selects the enumeration engine: EngineCore (also the ""
	// default), EngineLowDeg, or EngineAuto, which routes on the graph's
	// maximum degree and degeneracy. See EngineKind and WithEngine.
	Engine EngineKind
}

// BuildIndex performs the pseudo-linear preprocessing of Theorem 2.3,
// using all available CPUs.
//
// Deprecated: use Build(ctx, g, q), the unified v1 entry point.
func BuildIndex(g *Graph, q *Query) (*Index, error) {
	return BuildIndexOpt(g, q, IndexOptions{})
}

// BuildIndexOpt is BuildIndex with explicit options.
//
// Deprecated: use Build(ctx, g, q, opts...) with functional options
// (WithParallelism, WithMetrics).
func BuildIndexOpt(g *Graph, q *Query, opt IndexOptions) (*Index, error) {
	return BuildIndexCtx(context.Background(), g, q, opt)
}

// BuildIndexCtx is BuildIndexOpt bounded by a context: the pseudo-linear
// preprocessing checks ctx between its phases (dist → cover → kernel →
// starter → skip) and aborts with an error wrapping ctx's error once it is
// canceled or past its deadline. The serving layer uses this to enforce
// per-request build deadlines.
//
// Deprecated: use Build(ctx, g, q, opts...); this remains the common
// implementation behind Build and the deprecated wrappers.
func BuildIndexCtx(ctx context.Context, g *Graph, q *Query, opt IndexOptions) (*Index, error) {
	lq, err := q.compile()
	if err != nil {
		return nil, err
	}
	sel, err := selectEngine(g, opt.Engine)
	if err != nil {
		return nil, err
	}
	if sel.Chosen == EngineLowDeg {
		le, err := lowdeg.Preprocess(g, lq, lowdeg.Options{Parallelism: opt.Parallelism, Obs: opt.Metrics, Ctx: ctx})
		if err != nil {
			return nil, err
		}
		return &Index{le: le, sel: sel, k: lq.K, q: q}, nil
	}
	e, err := core.Preprocess(g, lq, core.Options{Parallelism: opt.Parallelism, Obs: opt.Metrics, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	return &Index{e: e, sel: sel, k: lq.K, q: q}, nil
}

// Next returns the lexicographically smallest solution ≥ tuple, in
// constant time (Theorem 2.3), or ok=false if there is none.
func (ix *Index) Next(tuple []int) ([]int, bool) {
	if ix.le != nil {
		return ix.le.NextGeq(tuple)
	}
	return ix.e.NextGeq(tuple)
}

// Test reports whether tuple is a solution, in constant time
// (Corollary 2.4).
func (ix *Index) Test(tuple []int) bool {
	if ix.le != nil {
		return ix.le.Test(tuple)
	}
	return ix.e.Test(tuple)
}

// NextLast returns, for a fixed (k−1)-column prefix, the smallest value
// b′ ≥ b completing it to a solution (Lemma 5.2) — "page through the
// partners of a prefix" in constant time per step.
func (ix *Index) NextLast(prefix []int, b int) (int, bool) {
	if ix.le != nil {
		return ix.le.NextLast(prefix, b)
	}
	return ix.e.NextLast(prefix, b)
}

// Enumerate yields all solutions in increasing lexicographic order with
// constant delay (Corollary 2.5) until exhaustion or until yield returns
// false. The slice passed to yield is reused across calls.
func (ix *Index) Enumerate(yield func([]int) bool) {
	if ix.le != nil {
		ix.le.Enumerate(yield)
		return
	}
	ix.e.Enumerate(yield)
}

// Count returns the number of solutions by full enumeration.
func (ix *Index) Count() int {
	if ix.le != nil {
		return ix.le.Count()
	}
	return ix.e.Count()
}

// FastCount returns the number of solutions without enumerating them when
// the query shape supports it (arities 1 and 2, and connected higher
// arities); it falls back to enumeration otherwise.
func (ix *Index) FastCount() int {
	n, _ := ix.SolutionCount()
	return n
}

// SolutionCount evaluates the counting query `#x̄ φ` (Grohe–Schweikardt):
// the number of solutions over the current graph version. fast reports
// whether the count was produced by the engine's sub-enumeration counting
// path rather than by full enumeration. The result is computed once and
// cached — an Index is an immutable snapshot, so the count can never go
// stale.
func (ix *Index) SolutionCount() (n int, fast bool) {
	ix.countOnce.Do(func() {
		defer ix.countDone.Store(true)
		if ix.le != nil {
			if c, ok := ix.le.FastCount(); ok {
				ix.countVal, ix.countFast = c, true
				return
			}
			ix.countVal = ix.le.Count()
			return
		}
		if c, ok := ix.e.FastCount(); ok {
			ix.countVal, ix.countFast = c, true
			return
		}
		ix.countVal = ix.e.Count()
	})
	return ix.countVal, ix.countFast
}

// SolutionCountCtx is SolutionCount with cooperative cancellation: when
// the count must fall back to full enumeration, ctx is polled
// periodically and a canceled request stops after a bounded number of
// delay steps instead of running the solution set to exhaustion. The
// sub-enumeration counting path is query-shape-bounded work and never
// needs the context. A canceled call leaves the cache empty; a completed
// call populates it exactly as SolutionCount does.
func (ix *Index) SolutionCountCtx(ctx context.Context) (n int, fast bool, err error) {
	if ix.countDone.Load() {
		return ix.countVal, ix.countFast, nil
	}
	if ix.le != nil {
		if c, ok := ix.le.FastCount(); ok {
			n, fast = c, true
		} else if n, err = ix.le.CountCtx(ctx); err != nil {
			return 0, false, err
		}
	} else if c, ok := ix.e.FastCount(); ok {
		n, fast = c, true
	} else if n, err = ix.e.CountCtx(ctx); err != nil {
		return 0, false, err
	}
	ix.countOnce.Do(func() {
		ix.countVal, ix.countFast = n, fast
		ix.countDone.Store(true)
	})
	return n, fast, nil
}

// Iterator is the cursor implementation of the core engine.
//
// Deprecated: kept as an alias for source compatibility; Index.Iterator
// and Index.IteratorFrom now return the engine-independent Cursor.
type Iterator = core.Iterator

// Cursor is a pull-style cursor over the solution set in lexicographic
// order with constant-delay Next and constant-time Seek (Theorem 2.3),
// implemented by both engines. Next reuses an internal buffer to stay
// allocation-free: the returned slice is valid only until the next Next
// or Seek call — copy it to retain it, exactly as with Enumerate.
type Cursor interface {
	// Seek repositions the cursor at the smallest solution ≥ a.
	Seek(a []int)
	// HasNext reports whether a solution is pending.
	HasNext() bool
	// Next returns the pending solution and advances, or ok=false when
	// the solution set is exhausted.
	Next() ([]int, bool)
}

// Iterator returns a cursor positioned at the first solution.
func (ix *Index) Iterator() Cursor {
	if ix.le != nil {
		return ix.le.Iterator()
	}
	return ix.e.Iterator()
}

// IteratorFrom returns a cursor positioned at the smallest solution ≥ a.
func (ix *Index) IteratorFrom(a []int) Cursor {
	if ix.le != nil {
		return ix.le.IteratorFrom(a)
	}
	return ix.e.IteratorFrom(a)
}

// Arity returns the tuple width of the indexed query.
func (ix *Index) Arity() int { return ix.k }

// Stats exposes preprocessing and answering statistics. For a
// lowdeg-backed index the cover/kernel/skip fields are zero (that engine
// builds none of them) and the shared fields — starter sizes, candidate
// and local-evaluation counters, workers — carry the lowdeg numbers; see
// LowDegStats for the engine-specific view.
func (ix *Index) Stats() core.Stats {
	if ix.le != nil {
		ls := ix.le.Stats()
		return core.Stats{
			StarterSizes:  ls.StarterSizes,
			Candidates:    ls.Candidates,
			DeadEnds:      ls.DeadEnds,
			LocalEvals:    ls.LocalEvals,
			LocalEvalHits: ls.LocalEvalHits,
			Workers:       ls.Workers,
			StarterWall:   ls.StarterWall,
		}
	}
	return ix.e.Stats()
}

// LowDegStats returns the low-degree engine's statistics; ok is false for
// a core-backed index.
func (ix *Index) LowDegStats() (s lowdeg.Stats, ok bool) {
	if ix.le == nil {
		return lowdeg.Stats{}, false
	}
	return ix.le.Stats(), true
}

// Metrics returns the registry the index records into, or nil when the
// index was built without IndexOptions.Metrics.
func (ix *Index) Metrics() *Metrics {
	if ix.le != nil {
		return ix.le.Obs()
	}
	return ix.e.Obs()
}

// Explain renders the index structure (clauses, starter lists, covers or
// balls) — the EXPLAIN output for the preprocessed query.
func (ix *Index) Explain() string {
	if ix.le != nil {
		return ix.le.Explain()
	}
	return ix.e.Explain()
}

// Plan renders the compiled decomposed normal form of the query without
// building an index.
func (q *Query) Plan() (string, error) {
	lq, err := q.compile()
	if err != nil {
		return "", err
	}
	return lq.String(), nil
}

// DistanceIndex answers dist(a,b) ≤ r queries in constant time after
// pseudo-linear preprocessing (Proposition 4.2).
type DistanceIndex struct {
	ix *dist.Index
}

// BuildDistanceIndex preprocesses g for distance queries up to radius r.
func BuildDistanceIndex(g *Graph, r int) *DistanceIndex {
	return &DistanceIndex{ix: dist.New(g, r, dist.Options{})}
}

// Within reports whether dist(a, b) ≤ rr, for any rr up to the index
// radius.
func (d *DistanceIndex) Within(a, b, rr int) bool { return d.ix.Within(a, b, rr) }

// Radius returns the maximum supported query radius.
func (d *DistanceIndex) Radius() int { return d.ix.Radius() }

// Map is the Storing-Theorem structure (Theorem 3.1): a k-ary partial map
// over [0,n)^k with constant-time lookup and successor search and O(n^ε)
// updates.
type Map = store.Store

// NewMap returns an empty Storing-Theorem map.
func NewMap(n, k int, epsilon float64) *Map { return store.New(n, k, epsilon) }

// DatabaseIndex is Theorem 2.3 lifted to relational databases via the
// adjacency-graph encoding of Lemma 2.2: the query is translated to the
// colored graph A′(D) and indexed there. Solutions are tuples of domain
// elements of the database.
type DatabaseIndex struct {
	ix *Index
}

// BuildDatabaseIndex translates and indexes a relational FO⁺ query (using
// relation atoms like "R(x,y)") over a database.
func BuildDatabaseIndex(db *Database, q *Query) (*DatabaseIndex, error) {
	enc := db.AdjacencyGraph()
	psi, err := enc.TranslateQuery(q.Phi, q.Vars)
	if err != nil {
		return nil, err
	}
	gq := &Query{Phi: psi, Vars: q.Vars}
	ix, err := BuildIndex(enc.Graph, gq)
	if err != nil {
		return nil, fmt.Errorf("repro: indexing translated query: %w", err)
	}
	return &DatabaseIndex{ix: ix}, nil
}

// Next, Test, Enumerate and Count mirror Index; all tuples are database
// domain elements (element vertices keep their ids in A′(D), and every
// non-element vertex fails the translated query's element guard).
func (d *DatabaseIndex) Next(tuple []int) ([]int, bool) { return d.ix.Next(tuple) }

// Test reports whether tuple is a solution over the database.
func (d *DatabaseIndex) Test(tuple []int) bool { return d.ix.Test(tuple) }

// Enumerate yields all solutions over the database in lexicographic order.
// (Element vertices occupy ids 0..n−1 of A′(D), so the element order and
// the graph order agree.)
func (d *DatabaseIndex) Enumerate(yield func([]int) bool) { d.ix.Enumerate(yield) }

// Count returns the number of solutions.
func (d *DatabaseIndex) Count() int { return d.ix.Count() }
