// Command fodlint is the repository's custom static-analysis driver: it
// loads every package of the module, runs the repo-specific analyzers of
// internal/lint and exits non-zero with file:line diagnostics when any
// invariant behind the paper's complexity claims is violated.
//
// The v2 analyzers are interprocedural: they run over a whole-program
// call graph (see internal/lint/callgraph.go), so `fodlint ./...` is the
// canonical invocation — linting a subtree sees only that subtree's
// slice of the graph.
//
// Usage:
//
//	go run ./cmd/fodlint ./...           # lint the whole module
//	go run ./cmd/fodlint -json ./...     # machine-readable findings
//	go run ./cmd/fodlint -list           # print the analyzers and exit
//	go run ./cmd/fodlint -baseline path  # alternate suppression file
//
// Findings matching an entry of the baseline file (lint.baseline.json at
// the module root by default; see internal/lint/baseline.go) are
// suppressed as reviewed exceptions; stale baseline entries are reported
// on stderr so the file cannot rot. fodlint lints its own implementation
// too — internal/lint and cmd/fodlint are inside every `./...` run and
// in scope for the errdrop analyzer.
//
// fodlint runs as a tier-2 step of scripts/verify.sh; see the README
// "Static analysis" section for the annotation vocabulary (//fod:hotpath,
// //fod:coldpath, //fod:sorted, //fod:errok, //fod:ctxok, //fod:lockok,
// //fod:atomicok) and DESIGN.md for the mapping from each analyzer to
// the paper claim it protects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

// jsonFinding is one machine-readable diagnostic of -json mode.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	dir := flag.String("C", ".", "module directory to lint")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := flag.String("baseline", "lint.baseline.json",
		"reviewed suppression file, relative to the module directory (missing file = empty baseline)")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-19s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fodlint: %v\n", err)
		os.Exit(2)
	}

	moduleDir, err := filepath.Abs(*dir)
	if err != nil {
		moduleDir = *dir
	}
	bl, err := lint.LoadBaseline(filepath.Join(moduleDir, *baselinePath))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fodlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)
	kept, suppressed, unused := bl.Filter(moduleDir, diags)
	for _, e := range unused {
		fmt.Fprintf(os.Stderr, "fodlint: stale baseline entry (no matching finding): %s %s: %s\n",
			e.Analyzer, e.File, e.Message)
	}

	if *jsonOut {
		findings := make([]jsonFinding, 0, len(kept))
		for _, d := range kept {
			findings = append(findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     lint.RelFile(moduleDir, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "fodlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range kept {
			fmt.Println(d)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "fodlint: %d finding(s) suppressed by baseline\n", suppressed)
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "fodlint: %d invariant violation(s) in %d package(s)\n", len(kept), len(pkgs))
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("fodlint: %d packages clean (%d analyzers)\n", len(pkgs), len(analyzers))
	}
}
