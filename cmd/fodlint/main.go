// Command fodlint is the repository's custom static-analysis driver: it
// loads every package of the module, runs the repo-specific analyzers of
// internal/lint (hotpath, maporder, obsnil, errdrop) and exits non-zero
// with file:line diagnostics when any invariant behind the paper's
// complexity claims is violated.
//
// Usage:
//
//	go run ./cmd/fodlint ./...          # lint the whole module
//	go run ./cmd/fodlint ./internal/... # lint a subtree
//	go run ./cmd/fodlint -list          # print the analyzers and exit
//
// fodlint runs as a tier-2 step of scripts/verify.sh; see the README
// "Static analysis" section for the annotation vocabulary
// (//fod:hotpath, //fod:sorted, //fod:errok) and DESIGN.md for the
// mapping from each analyzer to the paper claim it protects.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	dir := flag.String("C", ".", "module directory to lint")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fodlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fodlint: %d invariant violation(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("fodlint: %d packages clean (%d analyzers)\n", len(pkgs), len(analyzers))
}
