// Command fodenum builds the Theorem 2.3 index for an FO⁺ query over a
// colored graph and enumerates, tests, or counts solutions:
//
//	fodgen -class grid -n 10000 -colors 1 | fodenum -query "dist(x,y) > 2 & C0(y)" -vars x,y -limit 10
//	fodenum -graph g.txt -query "E(x,y) & C0(x)" -vars x,y -count
//	fodenum -graph g.txt -query "C0(x)" -vars x -test 17
//	fodenum -graph g.txt -query "C0(x)" -vars x -next 40
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/graph"
)

func main() {
	graphPath := flag.String("graph", "-", "graph file in the text format ('-' = stdin)")
	query := flag.String("query", "", "FO⁺ query, e.g. 'dist(x,y) > 2 & C0(y)'")
	vars := flag.String("vars", "", "comma-separated output variables, e.g. x,y")
	limit := flag.Int("limit", 0, "stop after this many solutions (0 = all)")
	count := flag.Bool("count", false, "print only the number of solutions")
	testTuple := flag.String("test", "", "test one comma-separated tuple instead of enumerating")
	nextTuple := flag.String("next", "", "print the smallest solution ≥ this comma-separated tuple")
	explain := flag.Bool("explain", false, "print the compiled plan and index structure, then exit")
	parallel := flag.Int("parallel", 0, "preprocessing workers (0 = all CPUs, 1 = sequential)")
	deadline := flag.Duration("deadline", 0, "abort preprocessing after this long, e.g. 30s (0 = no deadline)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars (expvar), /debug/metrics (JSON) and /debug/pprof on this address, e.g. localhost:6060")
	metrics := flag.Bool("metrics", false, "print the metrics JSON snapshot to stderr when done")
	flag.Parse()

	if *query == "" || *vars == "" {
		fmt.Fprintln(os.Stderr, "fodenum: -query and -vars are required")
		os.Exit(2)
	}
	in := os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fail(err)
		}
		defer f.Close() //fod:errok — input opened read-only; close errors carry no data loss
		in = f
	}
	g, err := graph.Read(in)
	if err != nil {
		fail(err)
	}
	q, err := repro.ParseQuery(*query, strings.Split(*vars, ",")...)
	if err != nil {
		fail(err)
	}
	var reg *repro.Metrics
	if *debugAddr != "" || *metrics {
		reg = repro.NewMetrics()
	}
	if *debugAddr != "" {
		ln, err := repro.ServeDebug(*debugAddr, reg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fodenum: debug server on http://%s/debug/vars (also /debug/metrics, /debug/pprof)\n", ln.Addr())
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	start := time.Now()
	ix, err := repro.BuildIndexCtx(ctx, g, q, repro.IndexOptions{Parallelism: *parallel, Metrics: reg})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "fodenum: preprocessing %v (n=%d, m=%d)\n",
		time.Since(start).Round(time.Microsecond), g.N(), g.M())

	switch {
	case *explain:
		fmt.Println(ix.Explain())
	case *testTuple != "":
		tup := parseTuple(*testTuple, ix.Arity())
		fmt.Println(ix.Test(tup))
	case *nextTuple != "":
		tup := parseTuple(*nextTuple, ix.Arity())
		if sol, ok := ix.Next(tup); ok {
			fmt.Println(strings.Trim(fmt.Sprint(sol), "[]"))
		} else {
			fmt.Println("none")
		}
	case *count:
		fmt.Println(ix.FastCount())
	default:
		printed := 0
		ix.Enumerate(func(sol []int) bool {
			fmt.Println(strings.Trim(fmt.Sprint(sol), "[]"))
			printed++
			return *limit == 0 || printed < *limit
		})
		fmt.Fprintf(os.Stderr, "fodenum: %d solutions\n", printed)
	}
	if *metrics {
		if err := reg.WriteJSON(os.Stderr); err != nil {
			fail(err)
		}
	}
}

func parseTuple(s string, arity int) []int {
	parts := strings.Split(s, ",")
	if len(parts) != arity {
		fail(fmt.Errorf("tuple %q has %d components, query arity is %d", s, len(parts), arity))
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fail(err)
		}
		out[i] = v
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fodenum:", err)
	os.Exit(1)
}
