// Command fodserve serves FO⁺ query answering over HTTP/JSON: register a
// query against a loaded graph (POST /v1/query), then page through its
// solutions with stateless constant-startup cursors (GET /v1/enumerate),
// test membership (POST /v1/test) or seek (POST /v1/next) — the serving
// face of Theorem 2.3 / Corollaries 2.4–2.5. Graphs are mutable: POST
// /v1/mutate applies an edit batch and publishes a new graph version
// (the incremental update of §3); open cursors keep reading their
// pinned version until it leaves the retention window (-retain).
//
//	fodserve -addr :8080 -graph road=road.txt -gen demo=grid:10000:1
//	curl -s localhost:8080/v1/query -d '{"graph":"demo","query":"dist(x,y) > 2 & C0(y)","vars":["x","y"]}'
//	curl -s 'localhost:8080/v1/enumerate?query=<id>&limit=100'
//	curl -s 'localhost:8080/v1/enumerate?cursor=<next_cursor>'
//	curl -s localhost:8080/v1/mutate -d '{"graph":"demo","edits":[{"op":"add_edge","u":0,"v":7}]}'
//
// Graphs are named at startup: -graph name=path loads the text format
// (fodgen | fodrel emit it), -gen name=class:n[:colors[:seed]] generates a
// benchmark class in process. Both flags repeat.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var graphFlags, genFlags multiFlag
	addr := flag.String("addr", "localhost:8080", "listen address")
	flag.Var(&graphFlags, "graph", "load a graph: name=path (text format; repeatable)")
	flag.Var(&genFlags, "gen", "generate a graph: name=class:n[:colors[:seed]] (repeatable)")
	cacheSize := flag.Int("cache", 8, "max resident indexes (LRU beyond)")
	defaultLimit := flag.Int("default-limit", 100, "page size when the request names none")
	maxLimit := flag.Int("max-limit", 10000, "hard page-size cap")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
	parallel := flag.Int("parallel", 0, "index-build workers (0 = all CPUs)")
	drain := flag.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")
	snapshotDir := flag.String("snapshot-dir", "", "disk cache tier: load/store index snapshots in this directory (created if missing)")
	retain := flag.Int("retain", repro.DefaultRetainVersions, "graph versions kept readable behind the head for pinned cursors")
	traceBuffer := flag.Int("trace-buffer", 256, "retained traces in the in-memory ring (0 disables tracing)")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond, "always retain traces at least this slow (negative: retain all)")
	traceSample := flag.Int("trace-sample", 16, "keep 1 in N fast, successful traces (1: all; negative: none)")
	logFormat := flag.String("log-format", "json", "structured log format: json, text, or off")
	engine := flag.String("engine", "auto", "enumeration engine: auto (route per graph on degree/degeneracy), core, or lowdeg")
	flag.Parse()

	switch repro.EngineKind(*engine) {
	case repro.EngineAuto, repro.EngineCore, repro.EngineLowDeg:
	default:
		fail(fmt.Errorf("-engine %q: want auto, core, or lowdeg", *engine))
	}

	graphs := make(map[string]*repro.Graph)
	for _, spec := range graphFlags {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("-graph %q: want name=path", spec))
		}
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		g, err := graph.Read(f)
		f.Close() //fod:errok — input opened read-only; the Read error below is the one that matters
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		graphs[name] = g
	}
	for _, spec := range genFlags {
		name, g, err := parseGen(spec)
		if err != nil {
			fail(err)
		}
		graphs[name] = g
	}
	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "fodserve: no graphs; pass -graph name=path or -gen name=class:n")
		os.Exit(2)
	}

	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			fail(err)
		}
	}

	reg := obs.New()
	var tracer *obs.Tracer
	if *traceBuffer > 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			Buffer:  *traceBuffer,
			Slow:    *traceSlow,
			SampleN: *traceSample,
		})
	}
	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "off":
	default:
		fail(fmt.Errorf("-log-format %q: want json, text, or off", *logFormat))
	}
	// The run context parents every index build; it is canceled on process
	// exit so nothing outlives main even if the drain path is skipped.
	runCtx, stopBuilds := context.WithCancel(context.Background())
	defer stopBuilds()
	srv := serve.NewServer(serve.Config{
		BaseContext:    runCtx,
		Graphs:         graphs,
		CacheSize:      *cacheSize,
		DefaultLimit:   *defaultLimit,
		MaxLimit:       *maxLimit,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Parallelism:    *parallel,
		RetainVersions: *retain,
		Engine:         repro.EngineKind(*engine),
		Metrics:        reg,
		SnapshotDir:    *snapshotDir,
		Tracer:         tracer,
		Logger:         logger,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	for name, g := range graphs {
		fmt.Fprintf(os.Stderr, "fodserve: graph %q: n=%d m=%d colors=%d\n", name, g.N(), g.M(), g.NumColors())
	}
	extras := "metrics at /debug/metrics"
	if tracer != nil {
		extras += ", traces at /debug/traces"
	}
	fmt.Fprintf(os.Stderr, "fodserve: serving on http://%s/v1 (engine %s, %s)\n", *addr, *engine, extras)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fodserve: %v — draining for up to %v\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fodserve: drain incomplete: %v\n", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fodserve: http shutdown: %v\n", err)
		}
	}
}

// parseGen parses name=class:n[:colors[:seed]].
func parseGen(spec string) (string, *repro.Graph, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return "", nil, fmt.Errorf("-gen %q: want name=class:n[:colors[:seed]]", spec)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return "", nil, fmt.Errorf("-gen %q: want name=class:n[:colors[:seed]]", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 0 {
		return "", nil, fmt.Errorf("-gen %q: bad n %q", spec, parts[1])
	}
	opt := repro.GenOptions{}
	if len(parts) >= 3 {
		if opt.Colors, err = strconv.Atoi(parts[2]); err != nil || opt.Colors < 0 {
			return "", nil, fmt.Errorf("-gen %q: bad colors %q", spec, parts[2])
		}
	}
	if len(parts) == 4 {
		if opt.Seed, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
			return "", nil, fmt.Errorf("-gen %q: bad seed %q", spec, parts[3])
		}
	}
	classes := repro.GraphClasses()
	valid := false
	for _, c := range classes {
		if c == parts[0] {
			valid = true
			break
		}
	}
	if !valid {
		return "", nil, fmt.Errorf("-gen %q: unknown class %q (have %s)", spec, parts[0], strings.Join(classes, ", "))
	}
	return name, repro.Generate(parts[0], n, opt), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fodserve:", err)
	os.Exit(1)
}
