// Command fodrel answers relational FO⁺ queries over a database in the
// text format (see internal/rel), using the Lemma 2.2 pipeline: encode the
// database as the colored adjacency graph A′(D), translate the query, and
// build the Theorem 2.3 index there.
//
//	fodrel -db citations.db -query "Cites(x,y) & Seminal(y)" -vars x,y -limit 10
//	fodrel -db citations.db -query "Cites(x,y)" -vars x,y -count
//
// Run with -sample to print an example database file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/rel"
)

const sample = `# A minimal citation database.
db 6
rel Cites 2
rel Seminal 1
t Cites 1 0
t Cites 2 0
t Cites 3 1
t Cites 4 2
t Cites 5 4
t Seminal 0
t Seminal 2
`

func main() {
	dbPath := flag.String("db", "-", "database file in the text format ('-' = stdin)")
	query := flag.String("query", "", "relational FO⁺ query, e.g. 'Cites(x,y) & Seminal(y)'")
	vars := flag.String("vars", "", "comma-separated output variables")
	limit := flag.Int("limit", 0, "stop after this many solutions (0 = all)")
	count := flag.Bool("count", false, "print only the number of solutions")
	printSample := flag.Bool("sample", false, "print a sample database file and exit")
	flag.Parse()

	if *printSample {
		fmt.Print(sample)
		return
	}
	if *query == "" || *vars == "" {
		fmt.Fprintln(os.Stderr, "fodrel: -query and -vars are required")
		os.Exit(2)
	}
	in := os.Stdin
	if *dbPath != "-" {
		f, err := os.Open(*dbPath)
		if err != nil {
			fail(err)
		}
		defer f.Close() //fod:errok — input opened read-only; close errors carry no data loss
		in = f
	}
	db, err := rel.Read(in)
	if err != nil {
		fail(err)
	}
	q, err := repro.ParseQuery(*query, strings.Split(*vars, ",")...)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	ix, err := repro.BuildDatabaseIndex(db, q)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "fodrel: encode+index %v (domain %d)\n",
		time.Since(start).Round(time.Microsecond), db.N())

	if *count {
		fmt.Println(ix.Count())
		return
	}
	printed := 0
	ix.Enumerate(func(sol []int) bool {
		fmt.Println(strings.Trim(fmt.Sprint(sol), "[]"))
		printed++
		return *limit == 0 || printed < *limit
	})
	fmt.Fprintf(os.Stderr, "fodrel: %d solutions\n", printed)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fodrel:", err)
	os.Exit(1)
}
