// Command fodsnap builds, inspects and verifies index snapshots — the
// immutable on-disk form of a fully preprocessed Theorem 2.3 index
// (graph, neighborhood cover, kernels, distance recursion, starter
// lists, skip pointers).
//
//	fodsnap build -gen grid:10000:1:42 -query "dist(x,y) > 2 & C0(y)" -vars x,y -out q.fodsnap
//	fodsnap build -graph road.txt -query "C1(x) & C1(y) & dist(x,y) > 4" -vars x,y -out road.fodsnap
//	fodsnap inspect q.fodsnap
//	fodsnap verify q.fodsnap
//
// build runs the pseudo-linear preprocessing once and persists the
// result; a server started with fodserve -snapshot-dir (or any caller of
// repro.LoadIndexSnapshot) then starts answering without rebuilding.
// inspect prints the metadata record and the section table. verify
// re-checks every checksum, restores the full index, and reports the
// restored shape; it exits non-zero on any corruption.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/graph"
	"repro/internal/snap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fodsnap build   -graph path | -gen class:n[:colors[:seed]]  -query "..." -vars x,y -out file [-parallel N]
  fodsnap inspect file
  fodsnap verify  file`)
	os.Exit(2)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("fodsnap build", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file in the text format")
	genSpec := fs.String("gen", "", "generate a graph: class:n[:colors[:seed]]")
	query := fs.String("query", "", "FO⁺ query source")
	vars := fs.String("vars", "", "comma-separated output variables")
	out := fs.String("out", "", "output snapshot path")
	parallel := fs.Int("parallel", 0, "build workers (0 = all CPUs)")
	fs.Parse(args) //fod:errok — ExitOnError flag sets terminate on bad input

	if (*graphPath == "") == (*genSpec == "") {
		fail(fmt.Errorf("build: exactly one of -graph and -gen is required"))
	}
	if *query == "" || *vars == "" || *out == "" {
		fail(fmt.Errorf("build: -query, -vars and -out are required"))
	}
	var g *repro.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fail(err)
		}
		g, err = graph.Read(f)
		f.Close() //fod:errok — input opened read-only; the Read error below is the one that matters
		if err != nil {
			fail(fmt.Errorf("%s: %w", *graphPath, err))
		}
	} else {
		var err error
		if g, err = parseGen(*genSpec); err != nil {
			fail(err)
		}
	}

	q, err := repro.ParseQuery(*query, strings.Split(*vars, ",")...)
	if err != nil {
		fail(err)
	}
	ix, err := repro.BuildIndexOpt(g, q, repro.IndexOptions{Parallelism: *parallel})
	if err != nil {
		fail(err)
	}
	if err := repro.SaveIndexSnapshot(ix, *out); err != nil {
		fail(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("fodsnap: wrote %s (%d bytes): graph n=%d m=%d, query %q\n",
		*out, st.Size(), g.N(), g.M(), q.Canonical())
}

func cmdInspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fail(err)
	}
	f, err := snap.Parse(data)
	if err != nil {
		fail(err)
	}
	meta, err := snap.ReadMeta(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("snapshot %s (%d bytes, format v%d)\n", args[0], len(data), snap.Version)
	fmt.Printf("  query      %s\n", meta.Query)
	fmt.Printf("  vars       %s\n", strings.Join(meta.Vars, ","))
	fmt.Printf("  shape      k=%d r=%d rho=%d guarded=%v\n", meta.K, meta.R, meta.LocalRadius, meta.Guarded)
	fmt.Printf("  graph      n=%d m=%d colors=%d fingerprint=%s\n",
		meta.GraphN, meta.GraphM, meta.GraphColors, meta.GraphFingerprint)
	fmt.Printf("  sections   %d\n", len(f.Sections()))
	for _, s := range f.Sections() {
		fmt.Printf("    %-20s %-5s off=%-10d len=%-10d crc=%016x\n", s.Name, s.Kind, s.Off, s.Len, s.CRC)
	}
}

func cmdVerify(args []string) {
	if len(args) != 1 {
		usage()
	}
	// LoadIndexSnapshot re-checks every checksum, revalidates all
	// structural invariants, and restores the full engine.
	ix, err := repro.LoadIndexSnapshot(args[0])
	if err != nil {
		fail(err)
	}
	st := ix.Stats()
	fmt.Printf("fodsnap: %s OK: arity %d, %d cover bags (degree %d, radius %d), %d skip pointers\n",
		args[0], ix.Arity(), st.CoverBags, st.CoverDegree, st.CoverRadius, st.SkipPointers)
}

// parseGen parses class:n[:colors[:seed]] (fodserve's -gen without the name).
func parseGen(spec string) (*repro.Graph, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return nil, fmt.Errorf("-gen %q: want class:n[:colors[:seed]]", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("-gen %q: bad n %q", spec, parts[1])
	}
	opt := repro.GenOptions{}
	if len(parts) >= 3 {
		if opt.Colors, err = strconv.Atoi(parts[2]); err != nil || opt.Colors < 0 {
			return nil, fmt.Errorf("-gen %q: bad colors %q", spec, parts[2])
		}
	}
	if len(parts) == 4 {
		if opt.Seed, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
			return nil, fmt.Errorf("-gen %q: bad seed %q", spec, parts[3])
		}
	}
	for _, c := range repro.GraphClasses() {
		if c == parts[0] {
			return repro.Generate(parts[0], n, opt), nil
		}
	}
	return nil, fmt.Errorf("-gen %q: unknown class %q (have %s)", spec, parts[0], strings.Join(repro.GraphClasses(), ", "))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fodsnap:", err)
	os.Exit(1)
}
