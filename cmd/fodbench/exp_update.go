package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro"
	"repro/internal/xbench"
)

// runE16 measures the incremental-update claim of §3: after the
// pseudo-linear preprocessing, a single-edge edit costs O(n^ε) through
// Index.ApplyEdits — orders of magnitude below rebuilding the index from
// the patched graph. Each trial toggles one existing edge (remove, then
// re-add on the next trial), so every batch is effective and the chain
// exercises both directions. The patched index is checked against a
// from-scratch build of the same graph (FastCount equality) before any
// timing is trusted.
//
// Emits BENCH_update.json: per class and size, the from-scratch build
// wall, the median single-edge update wall, the median rebuild wall on
// the patched graph, their ratio, and the fallback count (updates that
// gave up locality and rebuilt internally — those would poison the
// claim, so they are recorded).
func runE16(quick bool) {
	classes := []string{"grid", "btree"}
	sizes := sweep(quick)
	trials := 9
	if quick {
		trials = 5
	}

	out := updateFile{
		Experiment: "E16",
		Claim:      "§3 incremental update: single-edge ApplyEdits ≪ rebuild, answers identical",
		Query:      benchQuery,
		Quick:      quick,
		Parallel:   parallelism,
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}

	t := xbench.NewTable("class", "n", "build", "update p50", "rebuild p50", "speedup", "fallbacks")
	for _, class := range classes {
		for _, n := range sizes {
			rec := profileUpdate(class, n, trials)
			out.Records = append(out.Records, rec)
			t.Add(class, rec.N, ns(rec.BuildNS), ns(rec.UpdateNS), ns(rec.RebuildNS),
				fmt.Sprintf("%.0f×", rec.Speedup), rec.Fallbacks)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: update stays orders of magnitude under rebuild, gap widening with n.")

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(outDir, "BENCH_update.json")
	if err := writeBenchJSON(path, out); err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// profileUpdate builds one index, then alternately removes and re-inserts
// one edge of the graph, timing each single-edit ApplyEdits and, for the
// removed state, a full rebuild of the patched graph for comparison.
func profileUpdate(class string, n, trials int) updateRecord {
	ctx := context.Background()
	g := repro.Generate(class, n, repro.GenOptions{Colors: 2, Seed: 16})
	q := repro.MustParseQuery(benchQuery, "x", "y")

	buildStart := time.Now()
	ix, err := repro.Build(ctx, g, q, repro.WithParallelism(parallelism))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: E16 %s n=%d: %v\n", class, n, err)
		os.Exit(1)
	}
	buildWall := time.Since(buildStart)

	// The toggled edge: the first edge of the densest vertex, so the edit
	// touches a nontrivial neighborhood rather than a leaf.
	u := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(u) {
			u = v
		}
	}
	w := int(g.Neighbors(u)[0])

	updates := make([]time.Duration, 0, trials)
	rebuilds := make([]time.Duration, 0, trials)
	fallbacks := 0
	for i := 0; i < trials; i++ {
		edit := repro.RemoveEdge(u, w)
		if i%2 == 1 {
			edit = repro.AddEdge(u, w)
		}
		before := ix.Stats().MutRebuilds
		start := time.Now()
		next, err := ix.ApplyEdits(ctx, []repro.Edit{edit})
		d := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fodbench: E16 %s n=%d edit %d: %v\n", class, n, i, err)
			os.Exit(1)
		}
		updates = append(updates, d)
		if next.Stats().MutRebuilds > before {
			fallbacks++
		}

		// Rebuild the same version from scratch and compare answers; the
		// rebuild wall is the baseline the update is measured against.
		start = time.Now()
		oracle, err := repro.Build(ctx, next.Graph(), q, repro.WithParallelism(parallelism))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fodbench: E16 %s n=%d rebuild %d: %v\n", class, n, i, err)
			os.Exit(1)
		}
		rebuilds = append(rebuilds, time.Since(start))
		// FastCount, not Count: the solution set is Θ(n²)-ish and the
		// comparison only needs cardinality equality.
		if got, want := next.FastCount(), oracle.FastCount(); got != want {
			fmt.Fprintf(os.Stderr, "fodbench: E16 %s n=%d edit %d: patched count %d, rebuilt %d\n",
				class, n, i, got, want)
			os.Exit(1)
		}
		ix = next
	}

	up, rb := median(updates), median(rebuilds)
	return updateRecord{
		Class:     class,
		N:         g.N(),
		M:         g.M(),
		Trials:    trials,
		BuildNS:   buildWall.Nanoseconds(),
		UpdateNS:  up.Nanoseconds(),
		RebuildNS: rb.Nanoseconds(),
		Speedup:   float64(rb) / float64(up),
		Fallbacks: fallbacks,
	}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// updateFile is the schema of BENCH_update.json. All durations are
// nanoseconds; UpdateNS and RebuildNS are medians over Trials.
type updateFile struct {
	Experiment string         `json:"experiment"`
	Claim      string         `json:"claim"`
	Query      string         `json:"query"`
	Quick      bool           `json:"quick"`
	Parallel   int            `json:"parallel"`
	NumCPU     int            `json:"num_cpu"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Records    []updateRecord `json:"records"`
}

type updateRecord struct {
	Class     string  `json:"class"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Trials    int     `json:"trials"`
	BuildNS   int64   `json:"build_ns"`
	UpdateNS  int64   `json:"update_ns"`  // median single-edge ApplyEdits
	RebuildNS int64   `json:"rebuild_ns"` // median from-scratch build of the patched graph
	Speedup   float64 `json:"speedup"`    // rebuild / update
	Fallbacks int     `json:"fallbacks"`  // updates that internally fell back to a rebuild
}
