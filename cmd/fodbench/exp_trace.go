package main

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/obs"
)

// runTrace is the -trace mode: it builds one index and enumerates one
// page with request-scoped tracing enabled, then prints the span tree the
// serve layer would expose at /debug/traces/{id}. It is the offline twin
// of the HTTP trace explorer — same spans, same names, no server.
func runTrace(quick bool) {
	n := 16000
	if quick {
		n = 2000
	}
	g := repro.Generate("grid", n, repro.GenOptions{Colors: 2})
	q := repro.MustParseQuery("dist(x,y) <= 2 & C0(y)", "x", "y")

	tracer := obs.NewTracer(obs.TracerConfig{Buffer: 4, Slow: -1}) // retain everything
	tracer.Register(benchReg)
	tr := tracer.Start("fodbench build+enumerate", obs.TraceID{}, "")
	ctx := obs.ContextWithSpan(context.Background(), obs.SpanCtx{Trace: tr})

	ix, err := repro.BuildIndexCtx(ctx, g, q, repro.IndexOptions{
		Parallelism: parallelism,
		Metrics:     benchReg,
	})
	if err != nil {
		fmt.Printf("trace: build failed: %v\n", err)
		return
	}

	sp := benchReg.StartSpan(ctx, "enumerate")
	it := ix.Iterator()
	count := 0
	for count < 1000 {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	sp.End()

	tr.Finish(200, "")
	det := tr.Detail()
	fmt.Printf("trace %s — %s (grid n=%d, %d solutions, %s total)\n\n",
		det.ID, det.Name, n, count, time.Duration(det.DurNS))
	for _, node := range det.Tree {
		printSpanTree(node, 0)
	}
}

func printSpanTree(node *obs.SpanNode, depth int) {
	for i := 0; i < depth; i++ {
		fmt.Print("  ")
	}
	fmt.Printf("%-*s %12s  (start +%s)\n", 36-2*depth, node.Name,
		time.Duration(node.DurNS), time.Duration(node.StartNS))
	for _, c := range node.Children {
		printSpanTree(c, depth+1)
	}
}
