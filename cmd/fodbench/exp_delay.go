package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/xbench"
)

// runE15 is the enumeration-delay profiler: it measures, per graph class
// and size, the full per-answer delay distribution of Enumerate (the
// engine.delay_ns histogram of Corollary 2.5) and the latency of random
// NextGeq probes (Theorem 2.3), and writes them as machine-readable
// artifacts:
//
//	BENCH_delay.json    per-answer delay + NextGeq histograms (p50/p90/p99/max)
//	BENCH_preproc.json  preprocessing phase breakdown (dist/cover/kernel/starter/skip)
//
// The constant-delay claim predicts max and p99 flat as n grows within a
// class; the preprocessing claim predicts total ≈ n^(1+ε). Both files are
// regression-trackable: re-run with the same flags and diff the shapes.
func runE15(quick bool) {
	classes := []string{"grid", "btree"}
	sizes := []int{4000, 16000, 64000}
	enumLimit := 50000
	probes := 3000
	if quick {
		sizes = []int{2000, 8000}
		enumLimit = 20000
		probes = 1000
	}

	delayOut := delayFile{
		Experiment: "E15",
		Claim:      "Corollary 2.5: constant delay — max/p99 per-answer delay flat as n grows",
		Query:      benchQuery,
		Quick:      quick,
		Parallel:   parallelism,
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
	preprocOut := preprocFile{
		Experiment: "E15",
		Claim:      "Theorem 2.3: pseudo-linear preprocessing — total_ns ≈ n^(1+ε)",
		Query:      benchQuery,
		Quick:      quick,
		Parallel:   parallelism,
	}

	t := newDelayTable()
	for _, class := range classes {
		for _, n := range sizes {
			rec, pre := profileDelay(class, n, enumLimit, probes)
			delayOut.Records = append(delayOut.Records, rec)
			preprocOut.Records = append(preprocOut.Records, pre)
			t.Add(class, rec.N, rec.Solutions,
				ns(rec.Delay.P50), ns(rec.Delay.P99), ns(rec.Delay.Max),
				ns(rec.NextGeq.P99), time.Duration(pre.TotalNS))
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: delay p99/max flat in n per class; preprocessing grows ≈ linearly.")

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: %v\n", err)
		os.Exit(1)
	}
	for _, f := range []struct {
		name string
		v    any
	}{
		{"BENCH_delay.json", delayOut},
		{"BENCH_preproc.json", preprocOut},
	} {
		path := filepath.Join(outDir, f.name)
		if err := writeBenchJSON(path, f.v); err != nil {
			fmt.Fprintf(os.Stderr, "fodbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// profileDelay builds one instrumented engine and drains its delay and
// NextGeq histograms.
func profileDelay(class string, n, enumLimit, probes int) (delayRecord, preprocRecord) {
	reg := obs.New()
	g, e, _, _ := buildEngineObs(class, n, benchQuery, reg, "x", "y")
	st := e.Stats()

	count := 0
	e.Enumerate(func([]int) bool {
		count++
		return count < enumLimit
	})

	rng := rand.New(rand.NewSource(8))
	for i := 0; i < probes; i++ {
		e.NextGeq([]int{rng.Intn(g.N()), rng.Intn(g.N())})
	}

	snap := reg.Snapshot()
	rec := delayRecord{
		Class:     class,
		N:         g.N(),
		M:         g.M(),
		Solutions: count,
		Delay:     snap.Histograms["engine.delay_ns"],
		NextGeq:   snap.Histograms["engine.next_geq_ns"],
	}
	pre := preprocRecord{
		Class:   class,
		N:       g.N(),
		M:       g.M(),
		TotalNS: (st.DistWall + st.CoverWall + st.KernelWall + st.StarterWall + st.SkipWall).Nanoseconds(),
		Phases: map[string]int64{
			"dist":    st.DistWall.Nanoseconds(),
			"cover":   st.CoverWall.Nanoseconds(),
			"kernel":  st.KernelWall.Nanoseconds(),
			"starter": st.StarterWall.Nanoseconds(),
			"skip":    st.SkipWall.Nanoseconds(),
		},
		CoverBags:    st.CoverBags,
		SkipPointers: st.SkipPointers,
		Workers:      st.Workers,
	}
	return rec, pre
}

// delayFile is the schema of BENCH_delay.json (documented in README
// "Observability"). All durations are nanoseconds.
type delayFile struct {
	Experiment string        `json:"experiment"`
	Claim      string        `json:"claim"`
	Query      string        `json:"query"`
	Quick      bool          `json:"quick"`
	Parallel   int           `json:"parallel"`
	NumCPU     int           `json:"num_cpu"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Records    []delayRecord `json:"records"`
}

type delayRecord struct {
	Class     string                `json:"class"`
	N         int                   `json:"n"`
	M         int                   `json:"m"`
	Solutions int                   `json:"solutions"`
	Delay     obs.HistogramSnapshot `json:"delay"`    // per-answer Enumerate delay
	NextGeq   obs.HistogramSnapshot `json:"next_geq"` // random-probe NextGeq latency
}

// preprocFile is the schema of BENCH_preproc.json.
type preprocFile struct {
	Experiment string          `json:"experiment"`
	Claim      string          `json:"claim"`
	Query      string          `json:"query"`
	Quick      bool            `json:"quick"`
	Parallel   int             `json:"parallel"`
	Records    []preprocRecord `json:"records"`
}

type preprocRecord struct {
	Class        string           `json:"class"`
	N            int              `json:"n"`
	M            int              `json:"m"`
	TotalNS      int64            `json:"total_ns"`
	Phases       map[string]int64 `json:"phases_ns"`
	CoverBags    int              `json:"cover_bags"`
	SkipPointers int              `json:"skip_pointers"`
	Workers      int              `json:"workers"`
}

func newDelayTable() *xbench.Table {
	return xbench.NewTable("class", "n", "answers", "delay p50", "delay p99", "delay max", "NextGeq p99", "preproc")
}

func ns(v int64) time.Duration { return time.Duration(v) }

// writeBenchJSON writes v as indented JSON, atomically enough for a
// benchmark artifact (write then rename would be overkill here).
func writeBenchJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close() //fod:errok — the encode error takes precedence over the cleanup close
		return err
	}
	return f.Close()
}
