package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro"
	"repro/internal/xbench"
)

// runE17 measures the low-degree engine (Durand–Schweikardt–Segoufin)
// against the general nowhere-dense engine on degree-bounded graphs: the
// regime where lowdeg's linear ball-based preprocessing should beat the
// core build (no cover, kernels, distance recursion or skip pointers to
// pay for) while matching its constant enumeration delay. Both engines
// are forced through the facade (repro.WithEngine), cross-checked on
// their counts before any timing is trusted, and the auto selector's
// routing decision for each graph is recorded alongside.
//
// Emits BENCH_lowdeg.json: per class and size, both build walls and their
// ratio, the median per-answer delay of both engines, and the selection
// estimates (max degree, degeneracy) that auto routing would act on.
func runE17(quick bool) {
	classes := []string{"bdeg", "grid", "caterpillar"}
	sizes := sweep(quick)

	out := lowdegFile{
		Experiment: "E17",
		Claim:      "low-degree engine: linear build ≪ core preprocessing on degree-bounded graphs, same answers, same delay regime",
		Query:      benchQuery,
		Quick:      quick,
		Parallel:   parallelism,
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}

	t := xbench.NewTable("class", "n", "core build", "lowdeg build", "speedup", "core delay p50", "lowdeg delay p50", "auto")
	for _, class := range classes {
		for _, n := range sizes {
			rec := profileLowdeg(class, n)
			out.Records = append(out.Records, rec)
			t.Add(class, rec.N, ns(rec.CoreBuildNS), ns(rec.LowdegBuildNS),
				fmt.Sprintf("%.1f×", rec.BuildSpeedup),
				ns(rec.CoreDelayNS), ns(rec.LowdegDelayNS), rec.AutoChosen)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: lowdeg build a small constant of the graph size; core build pays for its cover machinery. Delays in the same band.")

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(outDir, "BENCH_lowdeg.json")
	if err := writeBenchJSON(path, out); err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// profileLowdeg builds the same (graph, query) with both engines forced,
// verifies count agreement, and measures build walls plus per-answer
// enumeration delay medians.
func profileLowdeg(class string, n int) lowdegRecord {
	ctx := context.Background()
	g := repro.Generate(class, n, repro.GenOptions{Colors: 2, Seed: 16})
	q := repro.MustParseQuery(benchQuery, "x", "y")

	start := time.Now()
	coreIx, err := repro.Build(ctx, g, q, repro.WithParallelism(parallelism), repro.WithEngine(repro.EngineCore))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: E17 %s n=%d core: %v\n", class, n, err)
		os.Exit(1)
	}
	coreWall := time.Since(start)

	start = time.Now()
	lowIx, err := repro.Build(ctx, g, q, repro.WithParallelism(parallelism), repro.WithEngine(repro.EngineLowDeg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: E17 %s n=%d lowdeg: %v\n", class, n, err)
		os.Exit(1)
	}
	lowWall := time.Since(start)

	// Correctness gate before timing is trusted: the counting path of both
	// engines must agree (FastCount, not Count: the answer set is Θ(n²)).
	cc, _ := coreIx.SolutionCount()
	lc, _ := lowIx.SolutionCount()
	if cc != lc {
		fmt.Fprintf(os.Stderr, "fodbench: E17 %s n=%d: core count %d != lowdeg count %d\n", class, n, cc, lc)
		os.Exit(1)
	}

	// What would auto have done? Recorded so the JSON documents the
	// routing decision alongside the measurements it is based on.
	autoIx, err := repro.Build(ctx, g, q, repro.WithParallelism(parallelism), repro.WithEngine(repro.EngineAuto))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fodbench: E17 %s n=%d auto: %v\n", class, n, err)
		os.Exit(1)
	}
	sel := autoIx.Selection()

	return lowdegRecord{
		Class:         class,
		N:             g.N(),
		M:             g.M(),
		Count:         cc,
		CoreBuildNS:   coreWall.Nanoseconds(),
		LowdegBuildNS: lowWall.Nanoseconds(),
		BuildSpeedup:  float64(coreWall) / float64(lowWall),
		CoreDelayNS:   delayMedian(coreIx),
		LowdegDelayNS: delayMedian(lowIx),
		MaxDegree:     sel.MaxDegree,
		Degeneracy:    sel.Degeneracy,
		AutoChosen:    string(sel.Chosen),
	}
}

// delayMedian measures the per-answer delay of the index's cursor over a
// bounded prefix of the solution stream and returns the median in
// nanoseconds (the Corollary 2.5 quantity; the bound keeps E17 linear in
// the sweep rather than quadratic in the answer set).
func delayMedian(ix *repro.Index) int64 {
	const samples = 50000
	it := ix.Iterator()
	ds := make([]time.Duration, 0, samples)
	for len(ds) < samples {
		start := time.Now()
		_, ok := it.Next()
		d := time.Since(start)
		if !ok {
			break
		}
		ds = append(ds, d)
	}
	if len(ds) == 0 {
		return 0
	}
	return median(ds).Nanoseconds()
}

// lowdegFile is the schema of BENCH_lowdeg.json. All durations are
// nanoseconds; delays are medians over up to 50k answers.
type lowdegFile struct {
	Experiment string         `json:"experiment"`
	Claim      string         `json:"claim"`
	Query      string         `json:"query"`
	Quick      bool           `json:"quick"`
	Parallel   int            `json:"parallel"`
	NumCPU     int            `json:"num_cpu"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Records    []lowdegRecord `json:"records"`
}

type lowdegRecord struct {
	Class         string  `json:"class"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Count         int     `json:"count"`
	CoreBuildNS   int64   `json:"core_build_ns"`
	LowdegBuildNS int64   `json:"lowdeg_build_ns"`
	BuildSpeedup  float64 `json:"build_speedup"` // core / lowdeg
	CoreDelayNS   int64   `json:"core_delay_ns"`
	LowdegDelayNS int64   `json:"lowdeg_delay_ns"`
	MaxDegree     int     `json:"max_degree"` // auto selector's estimate
	Degeneracy    int     `json:"degeneracy"` // auto selector's estimate
	AutoChosen    string  `json:"auto_chosen"`
}
