// Command fodbench reproduces the paper's evaluation: one experiment per
// complexity claim (see DESIGN.md §4 and EXPERIMENTS.md). Each experiment
// prints a table; EXPERIMENTS.md records the interpretation.
//
//	fodbench -exp all
//	fodbench -exp E1,E5,E6 -quick
//	fodbench -exp F1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/par"
)

// benchReg aggregates the metrics of every engine the experiments build;
// -debug-addr exposes it live.
var benchReg = obs.New()

type experiment struct {
	name  string
	title string
	run   func(quick bool)
}

var experiments = []experiment{
	{"F1", "Figure 1: Storing-Theorem register layout (n=27, ε=1/3)", runF1},
	{"E1", "Theorem 3.1: Storing Theorem — update O(n^ε), lookup O(1), space O(|Dom|·n^ε)", runE1},
	{"E2", "Theorem 4.4: neighborhood covers — pseudo-linear time, small degree", runE2},
	{"E3", "Proposition 4.2: distance index — O(1) tests after pseudo-linear preprocessing", runE3},
	{"E4", "Theorem 4.6: splitter game — λ(r) independent of n on nowhere dense classes", runE4},
	{"E5", "Theorem 2.3: next-solution — O(1) NextGeq after pseudo-linear preprocessing", runE5},
	{"E6", "Corollary 2.5: constant-delay enumeration vs naive streaming", runE6},
	{"E7", "Corollary 2.4: constant-time testing vs direct evaluation", runE7},
	{"E8", "Crossover: time to first K solutions, index vs naive", runE8},
	{"E9", "Theorem 2.1: sparsity ‖G‖ ≤ |G|^{1+ε} on nowhere dense classes", runE9},
	{"E10", "Lemma 2.2: adjacency-graph encoding of relational databases", runE10},
	{"E11", "Lemma 5.8: skip pointers — O(1) SKIP queries", runE11},
	{"E12", "Counting ([18]): pseudo-linear FastCount vs counting by enumeration", runE12},
	{"E13", "§2 characterization: weak r-accessibility small on nowhere dense classes", runE13},
	{"E15", "Corollary 2.5 profiled: per-answer delay histograms → BENCH_delay.json", runE15},
	{"E16", "§3 incremental update: single-edge ApplyEdits vs rebuild → BENCH_update.json", runE16},
	{"E17", "Low-degree engine ([13]): linear build vs core preprocessing, same delay → BENCH_lowdeg.json", runE17},
}

// parallelism is the preprocessing worker count shared by all experiments
// (0 = GOMAXPROCS); set by the -parallel flag.
var parallelism int

// outDir is where the machine-readable BENCH_*.json artifacts land; set
// by the -out flag.
var outDir string

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	flag.IntVar(&parallelism, "parallel", 0,
		"preprocessing workers (0 = all CPUs, 1 = sequential); results are identical for every setting")
	flag.StringVar(&outDir, "out", ".", "directory for the BENCH_*.json artifacts")
	delayProfile := flag.Bool("delay-profile", false,
		"run the enumeration-delay profiler (experiment E15) and emit BENCH_delay.json + BENCH_preproc.json")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars (expvar), /debug/metrics (JSON) and /debug/pprof on this address while the experiments run")
	trace := flag.Bool("trace", false,
		"build one index, enumerate one page, and print the request-scoped span tree (the offline view of /debug/traces)")
	flag.Parse()
	parallelism = par.Resolve(parallelism)

	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr, benchReg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fodbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fodbench: debug server on http://%s/debug/vars\n", ln.Addr())
	}
	if *trace {
		runTrace(*quick)
		return
	}
	if *delayProfile {
		runE15(*quick)
		return
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if *expFlag != "all" && !want[e.name] {
			continue
		}
		fmt.Printf("== %s — %s ==\n\n", e.name, e.title)
		e.run(*quick)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "fodbench: no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}

// sweep returns the default vertex-count sweep.
func sweep(quick bool) []int {
	if quick {
		return []int{500, 2000, 8000}
	}
	return []int{1000, 4000, 16000, 64000}
}

// sparseClasses are the nowhere dense generator classes used across the
// experiments.
var sparseClasses = []string{"path", "cycle", "star", "caterpillar", "btree",
	"rtree", "grid", "kinggrid", "bdeg", "sparserandom"}

// coreClasses is the shorter list used by the heavier engine experiments.
var coreClasses = []string{"path", "btree", "grid", "kinggrid", "bdeg"}
