package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/skip"
	"repro/internal/splitter"
	"repro/internal/store"
	"repro/internal/wcol"
	"repro/internal/xbench"
)

// runF1 reproduces Figure 1 of the paper: the register file of the
// Storing-Theorem structure for n=27, ε=1/3, f = identity on
// {2,4,5,19,24,25}.
func runF1(bool) {
	s := store.New(27, 1, 1.0/3.0)
	for _, x := range []int{2, 4, 5, 19, 24, 25} {
		s.Set([]int{x}, int64(x))
	}
	fmt.Printf("d=%d, h=%d, domain {2,4,5,19,24,25}, registers used: %d\n\n",
		s.Degree(), s.Depth(), s.Registers())
	cells := s.Cells()
	for i := 1; i < len(cells); i++ {
		c := cells[i]
		kind := ""
		switch c.Delta {
		case 1:
			kind = "child/value"
		case 0:
			kind = "succ ptr"
		case -1:
			kind = "parent"
		}
		fmt.Printf("R_%-2d = (%2d, %3d)  %s\n", i, c.Delta, c.R, kind)
	}
	fmt.Println("\nAfter Remove(19) — the Section 7.3 walkthrough:")
	s.Delete([]int{19})
	fmt.Printf("registers used: %d; R_2 = (%d, %d) (was (0,19), now points to 24)\n",
		s.Registers(), s.Cells()[2].Delta, s.Cells()[2].R)
}

// runE1 measures the Storing Theorem against a Go map (no successor
// support) and a sorted slice (binary-search successor, O(n) insert).
func runE1(quick bool) {
	t := xbench.NewTable("n", "k", "inserts", "store insert", "store lookup",
		"store next", "regs/entry", "map insert", "map lookup", "sorted next")
	ns := []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	if quick {
		ns = []int{1 << 12, 1 << 14}
	}
	for _, k := range []int{1, 2} {
		for _, n := range ns {
			m := n // |Dom| ~ n
			rng := rand.New(rand.NewSource(1))
			keys := make([][]int, m)
			for i := range keys {
				key := make([]int, k)
				for j := range key {
					key[j] = rng.Intn(n)
				}
				keys[i] = key
			}
			s := store.New(n, k, 0.25)
			insT := xbench.Time(func() {
				for i, key := range keys {
					s.Set(key, int64(i))
				}
			}) / time.Duration(m)
			lookT := xbench.Time(func() {
				for _, key := range keys {
					s.Get(key)
				}
			}) / time.Duration(m)
			nextT := xbench.Time(func() {
				for _, key := range keys {
					s.NextGeq(key)
				}
			}) / time.Duration(m)

			gm := map[string]int64{}
			mapIns := xbench.Time(func() {
				for i, key := range keys {
					gm[fmt.Sprint(key)] = int64(i)
				}
			}) / time.Duration(m)
			mapLook := xbench.Time(func() {
				for _, key := range keys {
					_ = gm[fmt.Sprint(key)]
				}
			}) / time.Duration(m)

			enc := make([]int64, 0, m)
			for _, key := range keys {
				enc = append(enc, s.EncodeKey(key))
			}
			sortInt64(enc)
			sortedNext := xbench.Time(func() {
				for _, key := range keys {
					binSearch64(enc, s.EncodeKey(key))
				}
			}) / time.Duration(m)

			t.Add(n, k, m, insT, lookT, nextT,
				float64(s.Registers())/float64(max(1, s.Len())),
				mapIns, mapLook, sortedNext)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: store insert grows ~n^ε, lookup/next stay flat; map has no successor op;")
	fmt.Println("sorted slice matches lookups but pays O(n) per insert (not shown: rebuild cost).")
}

// runE2 measures cover construction across classes.
func runE2(quick bool) {
	t := xbench.NewTable("class", "r", "n", "bags", "degree", "Σ|X|/n", "build")
	for _, class := range sparseClasses {
		for _, r := range []int{2, 4} {
			var ns []int
			var ts []time.Duration
			for _, n := range sweep(quick) {
				g := gen.Generate(gen.Class(class), n, gen.Options{Seed: 1})
				var c *cover.Cover
				d := xbench.Time(func() { c = cover.ComputeWith(g, r, cover.Options{Workers: parallelism}) })
				ns = append(ns, g.N())
				ts = append(ts, d)
				t.Add(class, r, g.N(), c.NumBags(), c.Degree(),
					float64(c.SumBagSizes())/float64(g.N()), d)
			}
			_ = ns
			_ = ts
		}
	}
	t.Render(os.Stdout)
}

// runE3 measures the distance index against per-query BFS.
func runE3(quick bool) {
	t := xbench.NewTable("class", "n", "r", "preproc", "index query", "BFS query", "speedup", "fallbacks")
	for _, class := range coreClasses {
		for _, n := range sweep(quick) {
			g := gen.Generate(gen.Class(class), n, gen.Options{Seed: 2})
			r := 2
			var ix *dist.Index
			pre := xbench.Time(func() { ix = dist.New(g, r, dist.Options{Workers: parallelism}) })
			rng := rand.New(rand.NewSource(3))
			const probes = 20000
			pairs := make([][2]int, probes)
			for i := range pairs {
				pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
			}
			qT := xbench.Time(func() {
				for _, p := range pairs {
					ix.Within(p[0], p[1], r)
				}
			}) / probes
			bfs := graph.NewBFS(g)
			bT := xbench.Time(func() {
				for _, p := range pairs {
					bfs.Distance(p[0], p[1], r)
				}
			}) / probes
			t.Add(class, g.N(), r, pre, qT, bT,
				float64(bT)/float64(max(int64(1), int64(qT))), ix.Stats().Fallbacks)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: index query time flat in n; BFS cost grows with local ball size.")
}

// runE4 plays the splitter game.
func runE4(quick bool) {
	t := xbench.NewTable("class", "r", "n=small", "λ", "n=large", "λ", "verdict")
	small, large := 400, 6400
	if quick {
		large = 1600
	}
	all := append(append([]string{}, sparseClasses...), "clique", "dense", "subclique")
	for _, class := range all {
		for _, r := range []int{1, 2} {
			maxRounds := 40
			ls := splitter.Lambda(gen.Generate(gen.Class(class), small, gen.Options{Seed: 1}),
				r, splitter.BallCenter{}, maxRounds)
			ll := splitter.Lambda(gen.Generate(gen.Class(class), large, gen.Options{Seed: 1}),
				r, splitter.BallCenter{}, maxRounds)
			verdict := "λ stable (nowhere dense)"
			if ll >= maxRounds {
				verdict = "Splitter loses (dense)"
			} else if ll > ls+3 {
				verdict = "λ grows"
			}
			t.Add(class, r, small, ls, large, ll, verdict)
		}
	}
	t.Render(os.Stdout)
}

// runE11 measures skip pointers against a linear scan.
func runE11(quick bool) {
	t := xbench.NewTable("class", "n", "k", "preproc", "pointers", "query", "scan query", "speedup")
	for _, class := range []string{"grid", "rtree", "bdeg", "star"} {
		for _, n := range sweep(quick) {
			g := gen.Generate(gen.Class(class), n, gen.Options{Seed: 4, Colors: 1, ColorProb: 0.3})
			cov := cover.ComputeWith(g, 2, cover.Options{Workers: parallelism})
			cov.ComputeKernels(2)
			var L []graph.V
			for v := 0; v < g.N(); v++ {
				if g.HasColor(v, 0) {
					L = append(L, v)
				}
			}
			k := 2
			var sp *skip.Pointers
			pre := xbench.Time(func() { sp = skip.New(g, cov, k, L) })
			rng := rand.New(rand.NewSource(5))
			const probes = 5000
			type probe struct {
				b int
				S []int
			}
			ps := make([]probe, probes)
			for i := range ps {
				// Adversarial for the scan: the kernels of the bags of b
				// and a neighbor of b cover the region right after b, so
				// the linear scan must walk across them while SKIP jumps.
				b := rng.Intn(g.N())
				near := b + 1
				if near >= g.N() {
					near = b
				}
				ps[i] = probe{b: b, S: []int{cov.Assign(b), cov.Assign(near)}}
			}
			qT := xbench.Time(func() {
				for _, p := range ps {
					sp.Query(p.b, p.S)
				}
			}) / probes
			inL := make([]bool, g.N())
			for _, v := range L {
				inL[v] = true
			}
			sT := xbench.Time(func() {
				for _, p := range ps {
					scanSkip(cov, inL, g.N(), p.b, p.S)
				}
			}) / probes
			t.Add(class, g.N(), k, pre, sp.Size(), qT, sT,
				float64(sT)/float64(max(int64(1), int64(qT))))
		}
	}
	t.Render(os.Stdout)
}

func scanSkip(cov *cover.Cover, inL []bool, n int, b int, S []int) int {
	for v := b; v < n; v++ {
		if !inL[v] {
			continue
		}
		bad := false
		for _, x := range S {
			if cov.InKernel(x, v) {
				bad = true
				break
			}
		}
		if !bad {
			return v
		}
	}
	return -1
}

// runE13 measures the weak r-accessibility characterization of Section 2:
// wcol_r under a degeneracy order stays bounded on nowhere dense classes
// (constant c_r = bounded expansion) and grows on the dense controls.
func runE13(quick bool) {
	t := xbench.NewTable("class", "n", "degeneracy", "wcol_1", "wcol_2", "wcol_3", "verdict")
	all := append(append([]string{}, sparseClasses...), "ktree", "outerplanar", "dense", "subclique")
	for _, class := range all {
		sizes := []int{1000, 8000}
		if quick {
			sizes = []int{500, 2000}
		}
		var lastW2 []int
		for _, n := range sizes {
			g := gen.Generate(gen.Class(class), n, gen.Options{Seed: 1})
			order := wcol.DegeneracyOrder(g)
			w1 := wcol.WCol(g, order, 1)
			w2 := wcol.WCol(g, order, 2)
			w3 := wcol.WCol(g, order, 3)
			lastW2 = append(lastW2, w2)
			verdict := ""
			if n == sizes[len(sizes)-1] {
				switch {
				case lastW2[len(lastW2)-1] <= lastW2[0]+2:
					verdict = "bounded (c_r-like)"
				case float64(lastW2[len(lastW2)-1]) < float64(g.N())/8:
					verdict = "slow growth (n^ε-like)"
				default:
					verdict = "dense"
				}
			}
			t.Add(class, g.N(), wcol.Degeneracy(g), w1, w2, w3, verdict)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: constants on bounded-expansion classes; growth on dense controls —")
	fmt.Println("the loss of the constants c_r is exactly why the paper needs new machinery (§2).")
}

// runE9 measures sparsity: the fitted exponent of ‖G‖ against |G|.
func runE9(quick bool) {
	t := xbench.NewTable("class", "n", "edges", "‖G‖/|G|", "fitted edge exponent")
	all := append(append([]string{}, sparseClasses...), "clique", "dense", "subclique")
	for _, class := range all {
		var ns []int
		var es []float64
		rows := [][]interface{}{}
		for _, n := range sweep(quick) {
			if (class == "clique") && n > 4000 {
				continue
			}
			g := gen.Generate(gen.Class(class), n, gen.Options{Seed: 1})
			ns = append(ns, g.N())
			es = append(es, float64(g.M())+1)
			rows = append(rows, []interface{}{class, g.N(), g.M(),
				float64(g.Size()) / float64(g.N())})
		}
		alpha := xbench.FitExponentF(ns, es)
		for i, row := range rows {
			if i == len(rows)-1 {
				t.Add(append(row, alpha)...)
			} else {
				t.Add(append(row, "")...)
			}
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: exponent ≈ 1 on nowhere dense classes, ≈ 2 for cliques, ≈ 1.5 for the dense control.")
}

func sortInt64(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func binSearch64(xs []int64, k int64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
