package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/naive"
	"repro/internal/obs"
	"repro/internal/xbench"
)

// benchQuery is the Example-2 query of the paper: dist(x,y) > 2 ∧ Blue(y),
// the running example of Section 5.1.5.
const benchQuery = "dist(x,y) > 2 & C0(y)"

func buildEngine(class string, n int, query string, vars ...string) (*graph.Graph, *core.Engine, *core.LocalQuery, time.Duration) {
	// Every experiment engine records into benchReg so that -debug-addr
	// exposes live aggregate metrics while the experiments run.
	return buildEngineObs(class, n, query, benchReg, vars...)
}

// buildEngineObs is buildEngine with an explicit metrics registry (E15
// uses a fresh registry per run so histograms don't mix across sizes).
func buildEngineObs(class string, n int, query string, reg *obs.Registry, vars ...string) (*graph.Graph, *core.Engine, *core.LocalQuery, time.Duration) {
	g := gen.Generate(gen.Class(class), n, gen.Options{Seed: 7, Colors: 1, ColorProb: 0.05})
	phi := fo.MustParse(query)
	vs := make([]fo.Var, len(vars))
	for i, v := range vars {
		vs[i] = fo.Var(v)
	}
	lq, err := core.Compile(phi, vs, core.CompileOptions{})
	if err != nil {
		panic(err)
	}
	var e *core.Engine
	pre := xbench.Time(func() {
		e, err = core.Preprocess(g, lq, core.Options{Parallelism: parallelism, Obs: reg})
		if err != nil {
			panic(err)
		}
	})
	return g, e, lq, pre
}

// runE5 measures NextGeq after preprocessing.
func runE5(quick bool) {
	t := xbench.NewTable("class", "n", "preproc", "preproc/n", "NextGeq", "candidates/call")
	for _, class := range coreClasses {
		var ns []int
		var pres []time.Duration
		for _, n := range sweep(quick) {
			g, e, _, pre := buildEngine(class, n, benchQuery, "x", "y")
			rng := rand.New(rand.NewSource(8))
			const probes = 3000
			tuples := make([][]int, probes)
			for i := range tuples {
				tuples[i] = []int{rng.Intn(g.N()), rng.Intn(g.N())}
			}
			before := e.Stats().Candidates
			qT := xbench.Time(func() {
				for _, a := range tuples {
					e.NextGeq(a)
				}
			}) / probes
			cands := float64(e.Stats().Candidates-before) / probes
			ns = append(ns, g.N())
			pres = append(pres, pre)
			t.Add(class, g.N(), pre, time.Duration(int64(pre)/int64(g.N())), qT, cands)
		}
		alpha := xbench.FitExponent(ns, pres)
		t.Add(class, "—", "", "", "", fmt.Sprintf("preproc exponent %.2f", alpha))
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: preprocessing ≈ n^(1+ε); NextGeq flat in n.")
}

// runE6 measures enumeration delay against the naive streaming enumerator.
func runE6(quick bool) {
	t := xbench.NewTable("class", "n", "solutions", "max delay", "p99", "p50",
		"naive max delay", "naive p99")
	limit := 20000
	for _, class := range coreClasses {
		for _, n := range sweep(quick) {
			g, e, lq, _ := buildEngine(class, n, benchQuery, "x", "y")
			var delays []time.Duration
			count := 0
			last := time.Now()
			e.Enumerate(func([]int) bool {
				now := time.Now()
				delays = append(delays, now.Sub(last))
				last = now
				count++
				return count < limit
			})
			st := xbench.SummarizeDelays(delays)

			// Naive streaming baseline, capped to the same solution count
			// and a time budget (its delay grows with n).
			ne := naive.NewEnumerator(g, lq)
			var nDelays []time.Duration
			budget := time.Now().Add(3 * time.Second)
			for i := 0; i < st.Count; i++ {
				start := time.Now()
				_, ok := ne.Next()
				nDelays = append(nDelays, time.Since(start))
				if !ok || time.Now().After(budget) {
					break
				}
			}
			nst := xbench.SummarizeDelays(nDelays)
			t.Add(class, g.N(), st.Count, st.Max, st.P99, st.P50, nst.Max, nst.P99)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: index delays flat in n; naive delays grow with the gap between solutions.")
}

// runE7 measures Test against direct evaluation, for the plain Example-2
// query (cheap to test directly: one truncated BFS) and for a quantified
// query (direct evaluation loops the quantifier over the whole domain, so
// it grows linearly while the index stays flat).
func runE7(quick bool) {
	queries := []struct{ name, src string }{
		{"example2", benchQuery},
		{"quantified", "dist(x,y) > 2 & C0(y) & ~(exists z (dist(y,z) <= 2 & C1(z)))"},
	}
	t := xbench.NewTable("query", "class", "n", "index Test", "direct eval", "speedup")
	for _, qc := range queries {
		phi := fo.MustParse(qc.src)
		vars := []fo.Var{"x", "y"}
		for _, class := range []string{"grid", "bdeg"} {
			for _, n := range sweep(quick) {
				g := gen.Generate(gen.Class(class), n, gen.Options{Seed: 7, Colors: 2, ColorProb: 0.05})
				lq, err := core.Compile(phi, vars, core.CompileOptions{})
				if err != nil {
					panic(err)
				}
				e, err := core.Preprocess(g, lq, core.Options{Parallelism: parallelism})
				if err != nil {
					panic(err)
				}
				rng := rand.New(rand.NewSource(9))
				probes := 2000
				if qc.name == "quantified" {
					probes = 50 // the direct side is Θ(n) per test
				}
				tuples := make([][]int, probes)
				for i := range tuples {
					tuples[i] = []int{rng.Intn(g.N()), rng.Intn(g.N())}
				}
				iT := xbench.Time(func() {
					for _, a := range tuples {
						e.Test(a)
					}
				}) / time.Duration(probes)
				ev := fo.NewEvaluator(g)
				dT := xbench.Time(func() {
					for _, a := range tuples {
						ev.EvalTuple(phi, vars, a)
					}
				}) / time.Duration(probes)
				t.Add(qc.name, class, g.N(), iT, dT,
					float64(dT)/float64(max(int64(1), int64(iT))))
			}
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: index Test flat in n for both queries; direct evaluation is competitive")
	fmt.Println("on the quantifier-free query but grows linearly once quantifiers appear.")
}

// runE8 measures the crossover: total time (including preprocessing) to
// produce the first K solutions, index vs naive streaming.
func runE8(quick bool) {
	n := 16000
	if quick {
		n = 4000
	}
	t := xbench.NewTable("class", "K", "index total", "naive total", "winner")
	for _, class := range []string{"grid", "btree"} {
		for _, K := range []int{1, 10, 100, 1000, 10000} {
			g, e, lq, pre := buildEngine(class, n, benchQuery, "x", "y")
			got := 0
			enumT := xbench.Time(func() {
				e.Enumerate(func([]int) bool {
					got++
					return got < K
				})
			})
			idxTotal := pre + enumT

			ne := naive.NewEnumerator(g, lq)
			naiveGot := 0
			naiveT := xbench.Time(func() {
				for naiveGot < K {
					if _, ok := ne.Next(); !ok {
						break
					}
					naiveGot++
				}
			})
			winner := "index"
			if naiveT < idxTotal {
				winner = "naive"
			}
			t.Add(class, K, idxTotal, naiveT, winner)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: naive wins for tiny K (no preprocessing); the index wins once K grows,")
	fmt.Println("and is the only option with constant delay guarantees.")
}

// runE12 compares pseudo-linear counting (inclusion–exclusion over
// distance types) against counting by full enumeration.
func runE12(quick bool) {
	t := xbench.NewTable("class", "n", "|q(G)|", "FastCount", "enumerate-count", "speedup")
	for _, class := range []string{"grid", "rtree", "bdeg"} {
		for _, n := range sweep(quick) {
			_, e, _, _ := buildEngine(class, n, benchQuery, "x", "y")
			var fast int
			fT := xbench.Time(func() {
				var ok bool
				fast, ok = e.FastCount()
				if !ok {
					panic("unsupported arity")
				}
			})
			if n > 20000 {
				// Enumeration of Θ(n·|blue|) answers is prohibitive; report
				// FastCount only.
				t.Add(class, n, fast, fT, "(skipped)", "")
				continue
			}
			var slow int
			sT := xbench.Time(func() { slow = e.Count() })
			if fast != slow {
				fmt.Printf("WARNING: FastCount %d != Count %d\n", fast, slow)
			}
			t.Add(class, n, fast, fT, sT, float64(sT)/float64(max(int64(1), int64(fT))))
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: FastCount is pseudo-linear in n; enumeration pays Θ(|q(G)|), which is quadratic-order here.")
}

// runE10 exercises Lemma 2.2 end to end: a relational database is encoded
// as A′(D) and a translated join query is indexed and enumerated there;
// the baseline materializes the join by nested loops over the database.
func runE10(quick bool) {
	t := xbench.NewTable("domain", "tuples", "|A'(D)|", "encode+index", "enumerate", "nested-loop join")
	sizes := []int{500, 2000, 8000}
	if quick {
		sizes = []int{500, 2000}
	}
	for _, n := range sizes {
		db := repro.NewDatabase(n)
		db.AddRelation("Cites", 2)
		db.AddRelation("Old", 1)
		rng := rand.New(rand.NewSource(11))
		for p := 1; p < n; p++ {
			db.Insert("Cites", p, rng.Intn(p))
		}
		for p := 0; p < n; p++ {
			if rng.Float64() < 0.1 {
				db.Insert("Old", p)
			}
		}
		var encN int
		q := repro.MustParseQuery("Cites(x,y) & Old(y)", "x", "y")
		var ix *repro.DatabaseIndex
		encT := xbench.Time(func() {
			var err error
			ix, err = repro.BuildDatabaseIndex(db, q)
			if err != nil {
				panic(err)
			}
		})
		encN = n + 2*len(db.Tuples("Cites")) + len(db.Tuples("Old")) +
			len(db.Tuples("Cites")) + len(db.Tuples("Old"))
		cnt := 0
		enumT := xbench.Time(func() {
			ix.Enumerate(func([]int) bool { cnt++; return true })
		})
		nl := 0
		nlT := xbench.Time(func() {
			for _, tup := range db.Tuples("Cites") {
				if db.Holds("Old", []int{tup[1]}) {
					nl++
				}
			}
		})
		if nl != cnt {
			fmt.Printf("WARNING: index found %d solutions, nested loop %d\n", cnt, nl)
		}
		t.Add(n, len(db.Tuples("Cites"))+len(db.Tuples("Old")), encN, encT, enumT, nlT)
	}
	t.Render(os.Stdout)
	fmt.Println("\nshape: both are linear here (the join is trivially indexable); the encoding's")
	fmt.Println("value is generality — the same pipeline answers any FO query on the database.")
}
