// Command fodgen emits generated benchmark graphs in the text interchange
// format consumed by fodenum:
//
//	fodgen -class grid -n 10000 -colors 2 -seed 7 > grid.g
//
// Run with -list to see the available classes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	class := flag.String("class", "grid", "graph class to generate")
	n := flag.Int("n", 1000, "approximate number of vertices")
	colors := flag.Int("colors", 1, "number of colors")
	prob := flag.Float64("colorprob", 0.3, "probability a vertex carries each color")
	seed := flag.Int64("seed", 1, "PRNG seed")
	list := flag.Bool("list", false, "list available classes and exit")
	flag.Parse()

	if *list {
		for _, c := range gen.Classes {
			kind := "nowhere dense"
			if !gen.NowhereDense(c) {
				kind = "dense control"
			}
			fmt.Printf("%-14s %s\n", c, kind)
		}
		return
	}
	g := gen.Generate(gen.Class(*class), *n, gen.Options{
		Seed: *seed, Colors: *colors, ColorProb: *prob,
	})
	if err := graph.Write(os.Stdout, g); err != nil {
		fmt.Fprintln(os.Stderr, "fodgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fodgen: %s with %d vertices, %d edges\n", *class, g.N(), g.M())
}
