package repro_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd/ binaries into a shared temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIGenerateAndEnumerate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	fodgen := buildTool(t, "fodgen")
	fodenum := buildTool(t, "fodenum")

	gen := exec.Command(fodgen, "-class", "grid", "-n", "400", "-colors", "1", "-seed", "3")
	graphTxt, err := gen.Output()
	if err != nil {
		t.Fatalf("fodgen: %v", err)
	}
	if !bytes.HasPrefix(graphTxt, []byte("graph ")) {
		t.Fatalf("unexpected fodgen output prefix: %.40s", graphTxt)
	}

	enum := exec.Command(fodenum, "-query", "dist(x,y) > 2 & C0(y)", "-vars", "x,y", "-limit", "7")
	enum.Stdin = bytes.NewReader(graphTxt)
	out, err := enum.Output()
	if err != nil {
		t.Fatalf("fodenum: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 7 {
		t.Fatalf("expected 7 solutions, got %d:\n%s", len(lines), out)
	}
	for _, ln := range lines {
		if len(strings.Fields(ln)) != 2 {
			t.Fatalf("malformed solution line %q", ln)
		}
	}

	// Count and test modes.
	count := exec.Command(fodenum, "-query", "C0(x)", "-vars", "x", "-count")
	count.Stdin = bytes.NewReader(graphTxt)
	cout, err := count.Output()
	if err != nil {
		t.Fatalf("fodenum -count: %v", err)
	}
	if strings.TrimSpace(string(cout)) == "0" {
		t.Fatal("expected a nonzero count of colored vertices")
	}

	next := exec.Command(fodenum, "-query", "C0(x)", "-vars", "x", "-next", "0")
	next.Stdin = bytes.NewReader(graphTxt)
	nout, err := next.Output()
	if err != nil {
		t.Fatalf("fodenum -next: %v", err)
	}
	if strings.TrimSpace(string(nout)) == "" {
		t.Fatal("expected a next solution")
	}
}

func TestCLIGenList(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	fodgen := buildTool(t, "fodgen")
	out, err := exec.Command(fodgen, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "grid") || !strings.Contains(string(out), "dense control") {
		t.Fatalf("unexpected -list output:\n%s", out)
	}
}

func TestCLIRelationalPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	fodrel := buildTool(t, "fodrel")
	sample, err := exec.Command(fodrel, "-sample").Output()
	if err != nil {
		t.Fatal(err)
	}
	run := exec.Command(fodrel, "-query", "Cites(x,y) & Seminal(y)", "-vars", "x,y")
	run.Stdin = bytes.NewReader(sample)
	out, err := run.Output()
	if err != nil {
		t.Fatal(err)
	}
	want := "1 0\n2 0\n4 2\n"
	if string(out) != want {
		t.Fatalf("fodrel output %q, want %q", out, want)
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	fodbench := buildTool(t, "fodbench")
	out, err := exec.Command(fodbench, "-exp", "F1").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"R_1", "( 0,  19)", "Remove(19)"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("F1 output missing %q:\n%s", want, out)
		}
	}
}
