// Social-network moderation: a sparse friendship graph (bounded degree —
// a realistic cap on friend counts keeps social graphs nowhere dense)
// where color 0 marks flagged accounts and color 1 marks moderators.
//
// Two FO⁺ queries drive a moderation dashboard:
//
//  1. "unmoderated flagged accounts": flagged accounts with no moderator
//     within distance 2 — a unary query with local quantification,
//  2. "escalation pairs": pairs of flagged accounts far apart (distance
//     > 2), candidates for independent review assignments — the paper's
//     Example 2 shape.
//
// Both are answered with constant delay after one pseudo-linear
// preprocessing per query.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const n = 20_000
	g := repro.Generate("bdeg", n, repro.GenOptions{
		Colors: 2, ColorProb: 0.05, Seed: 2026, Degree: 8,
	})
	fmt.Printf("friendship graph: %d accounts, %d edges (max degree 8)\n", g.N(), g.M())

	// Query 1: flagged accounts (C0) with no moderator (C1) within
	// distance 2: C0(x) ∧ ¬∃z (dist(x,z) ≤ 2 ∧ C1(z)).
	q1, err := repro.ParseQuery("C0(x) & ~(exists z (dist(x,z) <= 2 & C1(z)))", "x")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ix1, err := repro.BuildIndex(g, q1)
	if err != nil {
		log.Fatal(err)
	}
	unmoderated := ix1.Count()
	fmt.Printf("\nunmoderated flagged accounts: %d (preprocessing+scan %v)\n",
		unmoderated, time.Since(start).Round(time.Millisecond))
	shown := 0
	ix1.Enumerate(func(sol []int) bool {
		fmt.Printf("  account %d needs a moderator\n", sol[0])
		shown++
		return shown < 5
	})

	// Query 2: escalation pairs — flagged accounts far apart.
	q2, err := repro.ParseQuery("C0(x) & C0(y) & dist(x,y) > 2", "x", "y")
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	ix2, err := repro.BuildIndex(g, q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nescalation-pair index built in %v\n", time.Since(start).Round(time.Millisecond))

	// The dashboard pages through results: constant-delay enumeration
	// means page latency is independent of the network size.
	page := 0
	ix2.Enumerate(func(sol []int) bool {
		if page < 5 {
			fmt.Printf("  review pair: %d and %d\n", sol[0], sol[1])
		}
		page++
		return page < 1000
	})
	fmt.Printf("paged through %d pairs\n", page)

	// Spot checks are constant-time (Corollary 2.4).
	fmt.Printf("pair (0, %d) needs review? %v\n", n-1, ix2.Test([]int{0, n - 1}))
}
