// The Storing Theorem (Theorem 3.1) as a standalone data structure: a
// k-ary map over [0,n)^k with constant-time lookup *and successor search*
// plus O(n^ε) updates — the primitive every index in the paper is built
// on. This example replays Figure 1 of the paper (n=27, ε=1/3, f =
// identity on {2,4,5,19,24,25}) and then uses a 2-ary map as a tiny
// ordered key-value index.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// ---- Figure 1 -------------------------------------------------------
	m := repro.NewMap(27, 1, 1.0/3.0)
	for _, x := range []int{2, 4, 5, 19, 24, 25} {
		m.Set([]int{x}, int64(x))
	}
	fmt.Printf("Figure 1: trie degree d=%d, depth h=%d, %d registers for %d keys\n",
		m.Degree(), m.Depth(), m.Registers(), m.Len())

	// The paper's caption, verified live:
	cells := m.Cells()
	fmt.Printf("R_1 = (%d,%d)   — child pointer to the root's first child\n", cells[1].Delta, cells[1].R)
	fmt.Printf("R_2 = (%d,%d)  — '19 is the smallest element whose decomposition starts with 2'\n",
		cells[2].Delta, cells[2].R)

	// Lookup with successor: the heart of the enumeration algorithms.
	for _, probe := range []int{0, 6, 20, 26} {
		v, found, succ, ok := m.Lookup([]int{probe})
		switch {
		case found:
			fmt.Printf("lookup(%2d) = %d (in domain)\n", probe, v)
		case ok:
			fmt.Printf("lookup(%2d) → next key %d\n", probe, succ[0])
		default:
			fmt.Printf("lookup(%2d) → no larger key\n", probe)
		}
	}

	// The removal walkthrough of Section 7.3.
	m.Delete([]int{19})
	_, _, succ, _ := m.Lookup([]int{6})
	fmt.Printf("after Remove(19): lookup(6) → next key %d, registers shrank to %d\n",
		succ[0], m.Registers())

	// ---- A 2-ary ordered index -------------------------------------------
	idx := repro.NewMap(1000, 2, 0.25)
	for _, e := range [][3]int{{3, 7, 100}, {3, 9, 101}, {5, 1, 102}, {700, 700, 103}} {
		idx.Set([]int{e[0], e[1]}, int64(e[2]))
	}
	fmt.Println("\nrange scan from (3,8):")
	key, val, ok := idx.NextGeq([]int{3, 8})
	for ok {
		fmt.Printf("  (%d,%d) -> %d\n", key[0], key[1], val)
		key, val, ok = idx.NextGt(key)
	}
}
