// Relational databases via Lemma 2.2: a citation database with relations
// Cites(p, q) and Seminal(p) is encoded as the colored adjacency graph
// A′(D); relational FO queries are translated to the graph vocabulary and
// answered by the Theorem 2.3 index. This is exactly how the paper lifts
// its colored-graph results to arbitrary databases.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const papers = 6_000
	db := repro.NewDatabase(papers)
	db.AddRelation("Cites", 2)
	db.AddRelation("Seminal", 1)

	// A preferential-attachment-flavored citation graph: each paper cites
	// up to three earlier papers. Citation databases of bounded out-degree
	// have sparse adjacency encodings.
	rng := rand.New(rand.NewSource(3))
	for p := 1; p < papers; p++ {
		for c := 0; c < 1+rng.Intn(3); c++ {
			db.Insert("Cites", p, rng.Intn(p))
		}
	}
	for p := 0; p < papers/100; p++ {
		db.Insert("Seminal", p)
	}
	fmt.Printf("database: %d papers, %d citations, %d seminal\n",
		papers, len(db.Tuples("Cites")), len(db.Tuples("Seminal")))

	// Direct citations of seminal papers: Cites(x, y) ∧ Seminal(y).
	q, err := repro.ParseQuery("Cites(x,y) & Seminal(y)", "x", "y")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ix, err := repro.BuildDatabaseIndex(db, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encode + translate + index: %v\n", time.Since(start).Round(time.Millisecond))

	count := 0
	ix.Enumerate(func(sol []int) bool {
		if count < 5 {
			fmt.Printf("  paper %d cites seminal paper %d\n", sol[0], sol[1])
		}
		count++
		return true
	})
	fmt.Printf("total: %d citations of seminal papers\n", count)

	// Two-hop influence: papers citing a paper that cites a seminal one.
	q2, err := repro.ParseQuery("exists z (Cites(x,z) & Cites(z,y)) & Seminal(y)", "x", "y")
	if err != nil {
		log.Fatal(err)
	}
	ix2, err := repro.BuildDatabaseIndex(db, q2)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	ix2.Enumerate(func(sol []int) bool {
		if shown < 5 {
			fmt.Printf("  paper %d is two citation hops from seminal paper %d\n", sol[0], sol[1])
		}
		shown++
		return shown < 2000
	})
	fmt.Printf("streamed %d two-hop influence pairs\n", shown)

	// Constant-time membership checks on the database (Corollary 2.4).
	fmt.Printf("does paper 100 directly cite seminal paper 5? %v\n",
		ix.Test([]int{100, 5}))
}
