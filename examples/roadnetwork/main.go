// Road-network coverage analysis: a king-grid road network (planar-ish,
// bounded degree — nowhere dense) with charging stations (color 0) and
// depots (color 1).
//
// The example exercises two of the paper's structures:
//
//   - the DistanceIndex of Proposition 4.2: constant-time reachability
//     checks "is b within r hops of a" after pseudo-linear preprocessing,
//   - the full query Index for "coverage gaps": intersections with no
//     charging station within 2 hops, enumerated with constant delay.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const n = 40_000 // 200×200 king grid
	g := repro.Generate("kinggrid", n, repro.GenOptions{
		Colors: 2, ColorProb: 0.02, Seed: 7,
	})
	fmt.Printf("road network: %d intersections, %d road segments\n", g.N(), g.M())

	// Distance oracle: preprocess once, answer hop-distance checks in O(1).
	start := time.Now()
	dix := repro.BuildDistanceIndex(g, 4)
	fmt.Printf("distance index (r=4) built in %v\n", time.Since(start).Round(time.Millisecond))

	rng := rand.New(rand.NewSource(1))
	start = time.Now()
	const checks = 100_000
	close := 0
	for i := 0; i < checks; i++ {
		if dix.Within(rng.Intn(g.N()), rng.Intn(g.N()), 4) {
			close++
		}
	}
	per := time.Since(start) / checks
	fmt.Printf("%d reachability checks, %v each, %d pairs within 4 hops\n", checks, per, close)

	// Coverage gaps: intersections with no charging station (C0) within 2
	// hops — the unary local query ¬∃z (dist(x,z) ≤ 2 ∧ C0(z)).
	q, err := repro.ParseQuery("~(exists z (dist(x,z) <= 2 & C0(z)))", "x")
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	ix, err := repro.BuildIndex(g, q)
	if err != nil {
		log.Fatal(err)
	}
	gaps := ix.Count()
	fmt.Printf("\ncoverage gaps: %d of %d intersections lack a charger within 2 hops (%v)\n",
		gaps, g.N(), time.Since(start).Round(time.Millisecond))

	// Pairs of depots that are far apart (distance > 4): candidate pairs
	// for a new connecting corridor, streamed in constant delay.
	q2, err := repro.ParseQuery("C1(x) & C1(y) & dist(x,y) > 4", "x", "y")
	if err != nil {
		log.Fatal(err)
	}
	ix2, err := repro.BuildIndex(g, q2)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	ix2.Enumerate(func(sol []int) bool {
		if shown < 3 {
			fmt.Printf("  corridor candidate: depot %d ↔ depot %d\n", sol[0], sol[1])
		}
		shown++
		return shown < 10
	})
}
