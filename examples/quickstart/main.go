// Quickstart: build a sparse colored graph, compile an FO⁺ query, build
// the Theorem 2.3 index, and use all three access modes — enumeration
// (constant delay), testing (constant time), and next-solution jumps.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A 100×100 planar grid with one color class ("blue") on ~30% of the
	// vertices. Grids are nowhere dense, so the paper's guarantees apply.
	g := repro.Generate("grid", 10_000, repro.GenOptions{Colors: 1, Seed: 42})
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	// The running example of the paper (Example 2, Section 5.1.5):
	// all pairs (x, y) with y blue and at distance greater than 2 from x.
	q, err := repro.ParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	ix, err := repro.BuildIndex(g, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessing: %v\n", time.Since(start).Round(time.Millisecond))

	// Constant-delay enumeration in lexicographic order (Corollary 2.5).
	fmt.Println("first five solutions:")
	count := 0
	ix.Enumerate(func(sol []int) bool {
		fmt.Printf("  (%d, %d)\n", sol[0], sol[1])
		count++
		return count < 5
	})

	// Constant-time testing (Corollary 2.4).
	fmt.Printf("is (0, 9999) a solution? %v\n", ix.Test([]int{0, 9999}))

	// The Theorem 2.3 primitive: jump to the smallest solution ≥ a tuple.
	if sol, ok := ix.Next([]int{5000, 0}); ok {
		fmt.Printf("smallest solution ≥ (5000, 0): (%d, %d)\n", sol[0], sol[1])
	}
}
