package repro

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	g := Generate("grid", 400, GenOptions{Colors: 1, Seed: 1})
	q := MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	ix.Enumerate(func(sol []int) bool {
		if len(sol) != 2 {
			t.Fatalf("bad arity %d", len(sol))
		}
		if !ix.Test(sol) {
			t.Fatalf("enumerated non-solution %v", sol)
		}
		n++
		return n < 200
	})
	if n == 0 {
		t.Fatal("expected some solutions")
	}
	if _, ok := ix.Next([]int{0, 0}); !ok {
		t.Fatal("Next from origin should find the first solution")
	}
}

func TestFacadeDistanceIndex(t *testing.T) {
	g := Generate("rtree", 500, GenOptions{Seed: 3})
	d := BuildDistanceIndex(g, 3)
	if d.Radius() != 3 {
		t.Fatalf("radius %d", d.Radius())
	}
	if !d.Within(5, 5, 0) {
		t.Fatal("reflexivity failed")
	}
}

func TestFacadeDatabaseIndex(t *testing.T) {
	// A small citation-style database: Paper(p), Cites(p,q).
	db := NewDatabase(40)
	db.AddRelation("Cites", 2)
	db.AddRelation("Old", 1)
	for p := 1; p < 40; p++ {
		db.Insert("Cites", p, (p-1)/2)
	}
	for p := 0; p < 10; p++ {
		db.Insert("Old", p)
	}
	q := MustParseQuery("Cites(x,y) & Old(y)", "x", "y")
	ix, err := BuildDatabaseIndex(db, q)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	ix.Enumerate(func(sol []int) bool {
		x, y := sol[0], sol[1]
		if !(db.Holds("Cites", []int{x, y}) && db.Holds("Old", []int{y})) {
			t.Fatalf("bad solution %v", sol)
		}
		count++
		return true
	})
	// Cites(p, (p-1)/2) with (p-1)/2 < 10 → p ∈ 1..20.
	if count != 20 {
		t.Fatalf("count = %d, want 20", count)
	}
	if !ix.Test([]int{3, 1}) || ix.Test([]int{1, 3}) {
		t.Fatal("Test mismatch on database tuples")
	}
}

func TestFacadeStoringMap(t *testing.T) {
	m := NewMap(1000, 2, 0.3)
	m.Set([]int{5, 7}, 42)
	if v, ok := m.Get([]int{5, 7}); !ok || v != 42 {
		t.Fatal("map roundtrip failed")
	}
	if key, _, ok := m.NextGeq([]int{0, 0}); !ok || key[0] != 5 || key[1] != 7 {
		t.Fatal("successor lookup failed")
	}
}

func TestFacadeIterator(t *testing.T) {
	g := Generate("btree", 300, GenOptions{Colors: 1, Seed: 4})
	q := MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	it := ix.Iterator()
	count := 0
	var last []int
	for it.HasNext() {
		s, _ := it.Next()
		if !ix.Test(s) {
			t.Fatalf("iterator produced non-solution %v", s)
		}
		// Next reuses its buffer; copy to retain across further calls.
		last = append(last[:0], s...)
		count++
		if count >= 500 {
			break
		}
	}
	if count == 0 {
		t.Fatal("no solutions")
	}
	// Re-seek to the last solution: it must come back first.
	it.Seek(last)
	s, ok := it.Next()
	if !ok || s[0] != last[0] || s[1] != last[1] {
		t.Fatalf("Seek(%v) returned %v,%v", last, s, ok)
	}
}

func TestFacadeFastCount(t *testing.T) {
	g := Generate("grid", 196, GenOptions{Colors: 1, Seed: 5})
	q := MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if ix.FastCount() != ix.Count() {
		t.Fatalf("FastCount %d != Count %d", ix.FastCount(), ix.Count())
	}
}

func TestFacadeCompileError(t *testing.T) {
	g := Generate("path", 20, GenOptions{})
	// Unanchored quantifier: not compilable; the error must be surfaced,
	// not a wrong answer.
	q := MustParseQuery("exists z (C0(z) | E(x,z))", "x")
	if _, err := BuildIndex(g, q); err == nil {
		t.Fatal("expected a compile error for a non-local query")
	}
}

func TestFacadeGraphClasses(t *testing.T) {
	if len(GraphClasses()) < 10 {
		t.Fatal("expected the full generator catalogue")
	}
	for _, c := range GraphClasses() {
		g := Generate(c, 50, GenOptions{Seed: 2})
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", c)
		}
	}
}
