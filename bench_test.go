// Benchmarks: one testing.B target per experiment of DESIGN.md §4.
// cmd/fodbench prints the corresponding full tables; EXPERIMENTS.md records
// the interpretation against the paper's claims.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/naive"
	"repro/internal/skip"
	"repro/internal/splitter"
	"repro/internal/store"
	"repro/internal/wcol"
)

const benchQuerySrc = "dist(x,y) > 2 & C0(y)" // the paper's Example 2

func benchGraph(class gen.Class, n int) *graph.Graph {
	return gen.Generate(class, n, gen.Options{Seed: 7, Colors: 1, ColorProb: 0.05})
}

func benchEngine(b *testing.B, class gen.Class, n int) (*graph.Graph, *core.Engine, *core.LocalQuery) {
	b.Helper()
	g := benchGraph(class, n)
	lq, err := core.Compile(fo.MustParse(benchQuerySrc), []fo.Var{"x", "y"}, core.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.Preprocess(g, lq, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return g, e, lq
}

// --- E1: Storing Theorem ---------------------------------------------------

func BenchmarkStoringTheoremInsert(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := store.New(n, 2, 0.25)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Set([]int{rng.Intn(n), rng.Intn(n)}, int64(i))
			}
		})
	}
}

func BenchmarkStoringTheoremLookup(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := store.New(n, 2, 0.25)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < n; i++ {
				s.Set([]int{rng.Intn(n), rng.Intn(n)}, int64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Get([]int{i % n, (i * 7) % n})
			}
		})
	}
}

func BenchmarkStoringTheoremSuccessor(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := store.New(n, 2, 0.25)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < n; i++ {
				s.Set([]int{rng.Intn(n), rng.Intn(n)}, int64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextGeq([]int{i % n, (i * 7) % n})
			}
		})
	}
}

func BenchmarkStoringTheoremBaselineGoMap(b *testing.B) {
	n := 1 << 16
	m := map[[2]int]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		m[[2]int{rng.Intn(n), rng.Intn(n)}] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[[2]int{i % n, (i * 7) % n}] // note: no successor operation exists
	}
}

// --- E2: neighborhood covers -----------------------------------------------

func BenchmarkCoverConstruction(b *testing.B) {
	for _, class := range []gen.Class{gen.Grid, gen.RandomTree, gen.BoundedDegree} {
		for _, n := range []int{4000, 16000} {
			b.Run(fmt.Sprintf("%s/n=%d", class, n), func(b *testing.B) {
				g := benchGraph(class, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cover.Compute(g, 2)
				}
			})
		}
	}
}

// --- E3: distance index ----------------------------------------------------

func BenchmarkDistIndexBuild(b *testing.B) {
	for _, n := range []int{4000, 16000, 64000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g := benchGraph(gen.Grid, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist.New(g, 2, dist.Options{})
			}
		})
	}
}

func BenchmarkDistIndexQuery(b *testing.B) {
	for _, n := range []int{4000, 64000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g := benchGraph(gen.Grid, n)
			ix := dist.New(g, 2, dist.Options{})
			rng := rand.New(rand.NewSource(2))
			pairs := make([][2]int, 4096)
			for i := range pairs {
				pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				ix.Within(p[0], p[1], 2)
			}
		})
	}
}

func BenchmarkDistBFSBaseline(b *testing.B) {
	for _, n := range []int{4000, 64000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g := benchGraph(gen.Grid, n)
			bfs := graph.NewBFS(g)
			rng := rand.New(rand.NewSource(2))
			pairs := make([][2]int, 4096)
			for i := range pairs {
				pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				bfs.Distance(p[0], p[1], 2)
			}
		})
	}
}

// --- E4: splitter game -----------------------------------------------------

func BenchmarkSplitterGame(b *testing.B) {
	for _, class := range []gen.Class{gen.Grid, gen.RandomTree, gen.Star} {
		b.Run(string(class), func(b *testing.B) {
			g := benchGraph(class, 4000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				splitter.Play(g, 2, splitter.BallCenter{}, splitter.MaxDegreeConnector{}, 40)
			}
		})
	}
}

// --- E5: engine preprocessing and next-solution -----------------------------

func BenchmarkEnginePreprocess(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g := benchGraph(gen.Grid, n)
			lq, err := core.Compile(fo.MustParse(benchQuerySrc), []fo.Var{"x", "y"}, core.CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Preprocess(g, lq, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNextSolution(b *testing.B) {
	for _, n := range []int{2000, 32000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g, e, _ := benchEngine(b, gen.Grid, n)
			rng := rand.New(rand.NewSource(8))
			tuples := make([][]int, 4096)
			for i := range tuples {
				tuples[i] = []int{rng.Intn(g.N()), rng.Intn(g.N())}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.NextGeq(tuples[i%len(tuples)])
			}
		})
	}
}

// --- E6: enumeration delay ---------------------------------------------------

func BenchmarkEnumerationDelay(b *testing.B) {
	for _, n := range []int{2000, 32000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			_, e, _ := benchEngine(b, gen.Grid, n)
			b.ResetTimer()
			produced := 0
			for produced < b.N {
				before := produced
				e.Enumerate(func([]int) bool {
					produced++
					return produced < b.N
				})
				if produced == before {
					break // result set exhausted; restart
				}
			}
		})
	}
}

func BenchmarkNaiveEnumerationDelay(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g := benchGraph(gen.Grid, n)
			lq, err := core.Compile(fo.MustParse(benchQuerySrc), []fo.Var{"x", "y"}, core.CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			ne := naive.NewEnumerator(g, lq)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := ne.Next(); !ok {
					b.StopTimer()
					ne = naive.NewEnumerator(g, lq)
					b.StartTimer()
				}
			}
		})
	}
}

// --- E7: testing --------------------------------------------------------------

func BenchmarkTesting(b *testing.B) {
	for _, n := range []int{2000, 32000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g, e, _ := benchEngine(b, gen.Grid, n)
			rng := rand.New(rand.NewSource(9))
			tuples := make([][]int, 4096)
			for i := range tuples {
				tuples[i] = []int{rng.Intn(g.N()), rng.Intn(g.N())}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Test(tuples[i%len(tuples)])
			}
		})
	}
}

func BenchmarkTestingNaiveBaseline(b *testing.B) {
	for _, n := range []int{2000, 32000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g := benchGraph(gen.Grid, n)
			phi := fo.MustParse(benchQuerySrc)
			vars := []fo.Var{"x", "y"}
			ev := fo.NewEvaluator(g)
			rng := rand.New(rand.NewSource(9))
			tuples := make([][]int, 4096)
			for i := range tuples {
				tuples[i] = []int{rng.Intn(g.N()), rng.Intn(g.N())}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.EvalTuple(phi, vars, tuples[i%len(tuples)])
			}
		})
	}
}

// --- E8: first-K crossover ----------------------------------------------------

func BenchmarkFirstK(b *testing.B) {
	for _, K := range []int{1, 100, 10000} {
		b.Run(fmt.Sprintf("index/K=%d", K), func(b *testing.B) {
			g := benchGraph(gen.Grid, 8000)
			lq, err := core.Compile(fo.MustParse(benchQuerySrc), []fo.Var{"x", "y"}, core.CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := core.Preprocess(g, lq, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				got := 0
				e.Enumerate(func([]int) bool { got++; return got < K })
			}
		})
		b.Run(fmt.Sprintf("naive/K=%d", K), func(b *testing.B) {
			g := benchGraph(gen.Grid, 8000)
			lq, err := core.Compile(fo.MustParse(benchQuerySrc), []fo.Var{"x", "y"}, core.CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ne := naive.NewEnumerator(g, lq)
				for got := 0; got < K; got++ {
					if _, ok := ne.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// --- E10: adjacency-graph encoding ---------------------------------------------

func BenchmarkAdjacencyEncoding(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := repro.NewDatabase(n)
			db.AddRelation("Cites", 2)
			db.AddRelation("Old", 1)
			rng := rand.New(rand.NewSource(11))
			for p := 1; p < n; p++ {
				db.Insert("Cites", p, rng.Intn(p))
			}
			for p := 0; p < n/10; p++ {
				db.Insert("Old", p)
			}
			q := repro.MustParseQuery("Cites(x,y) & Old(y)", "x", "y")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := repro.BuildDatabaseIndex(db, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E14: parallel preprocessing -------------------------------------------------
//
// The workers=1 and workers=4 sub-runs build identical structures (see the
// differential tests); the ratio of their wall times is the pipeline
// speedup. On a single-CPU host the two coincide up to speculation
// overhead.

func BenchmarkCoverConstructionParallel(b *testing.B) {
	for _, n := range []int{16000, 64000} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("grid/n=%d/workers=%d", n, workers), func(b *testing.B) {
				g := benchGraph(gen.Grid, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cover.ComputeWith(g, 2, cover.Options{Workers: workers})
				}
			})
		}
	}
}

func BenchmarkDistIndexBuildParallel(b *testing.B) {
	for _, n := range []int{16000, 64000} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("grid/n=%d/workers=%d", n, workers), func(b *testing.B) {
				g := benchGraph(gen.Grid, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dist.New(g, 2, dist.Options{Workers: workers})
				}
			})
		}
	}
}

func BenchmarkEnginePreprocessParallel(b *testing.B) {
	for _, n := range []int{8000, 32000} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("grid/n=%d/workers=%d", n, workers), func(b *testing.B) {
				g := benchGraph(gen.Grid, n)
				lq, err := core.Compile(fo.MustParse(benchQuerySrc), []fo.Var{"x", "y"}, core.CompileOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Preprocess(g, lq, core.Options{Parallelism: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkWReachCountsParallel(b *testing.B) {
	for _, n := range []int{16000, 64000} {
		g := benchGraph(gen.Grid, n)
		order := wcol.DegeneracyOrder(g)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("grid/n=%d/workers=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					wcol.WReachCountsWorkers(g, order, 2, workers)
				}
			})
		}
	}
}

// --- E11: skip pointers ----------------------------------------------------------

func BenchmarkSkipPointersBuild(b *testing.B) {
	for _, n := range []int{4000, 16000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g := benchGraph(gen.Grid, n)
			cov := cover.Compute(g, 2)
			cov.ComputeKernels(2)
			var L []graph.V
			for v := 0; v < g.N(); v++ {
				if g.HasColor(v, 0) {
					L = append(L, v)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				skip.New(g, cov, 2, L)
			}
		})
	}
}

func BenchmarkSkipPointersQuery(b *testing.B) {
	for _, n := range []int{4000, 64000} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			g := benchGraph(gen.Grid, n)
			cov := cover.Compute(g, 2)
			cov.ComputeKernels(2)
			var L []graph.V
			for v := 0; v < g.N(); v++ {
				if g.HasColor(v, 0) {
					L = append(L, v)
				}
			}
			sp := skip.New(g, cov, 2, L)
			rng := rand.New(rand.NewSource(5))
			type probe struct {
				b int
				S []int
			}
			probes := make([]probe, 4096)
			for i := range probes {
				probes[i] = probe{b: rng.Intn(g.N()),
					S: []int{cov.Assign(rng.Intn(g.N())), cov.Assign(rng.Intn(g.N()))}}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := probes[i%len(probes)]
				sp.Query(p.b, p.S)
			}
		})
	}
}
