package repro

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultRetainVersions is how many past index versions a LiveIndex keeps
// resumable by default: readers pinned up to that many mutations behind
// the head can still be served; older versions are garbage-collected and
// At reports them gone.
const DefaultRetainVersions = 4

// LiveIndex manages a mutable view over an immutable Index chain — the
// MVCC write side. Mutations are serialized through the writer lock and
// publish a new immutable snapshot with one atomic pointer swap; readers
// call Snapshot (wait-free) and keep using the returned *Index for as long
// as they like — its answers never change, whatever the writer does
// (snapshot isolation; unchanged sections are structurally shared between
// versions, so a snapshot is cheap to keep).
//
// A bounded window of past versions (retain, default
// DefaultRetainVersions) stays addressable through At, which is what lets
// the serving layer resume version-pinned cursors across mutations;
// versions that fall out of the window are released to the garbage
// collector and At reports ok=false for them (the serve layer's
// 410 version_gone).
type LiveIndex struct {
	head atomic.Pointer[Index] // current version, wait-free for readers

	mu       sync.Mutex // serializes writers
	retained []*Index   // ring of past versions, oldest first (excludes head)
	retain   int
}

// NewLiveIndex wraps a freshly built (or restored) index as the live
// head. retain ≤ 0 selects DefaultRetainVersions.
func NewLiveIndex(ix *Index, retain int) *LiveIndex {
	if retain <= 0 {
		retain = DefaultRetainVersions
	}
	li := &LiveIndex{retain: retain}
	li.head.Store(ix)
	return li
}

// Snapshot returns the current version. Wait-free; the result is immutable
// and remains valid (and byte-identical) across later mutations.
func (li *LiveIndex) Snapshot() *Index { return li.head.Load() }

// Version returns the current version number.
func (li *LiveIndex) Version() int { return li.head.Load().Version() }

// At returns the snapshot with the given version number: the head, or one
// of the retained past versions. ok=false means the version was never
// published or has been garbage-collected (fell out of the retention
// window).
func (li *LiveIndex) At(version int) (*Index, bool) {
	if head := li.head.Load(); head.Version() == version {
		return head, true
	}
	li.mu.Lock()
	defer li.mu.Unlock()
	// Re-check the head under the lock (a writer may have published since),
	// then the retention ring.
	if head := li.head.Load(); head.Version() == version {
		return head, true
	}
	for _, ix := range li.retained {
		if ix.Version() == version {
			return ix, true
		}
	}
	return nil, false
}

// Mutate applies the edit batch and publishes the resulting index as the
// new head, returning it. Writers are serialized; readers are never
// blocked — they see either the old or the new head, atomically. The
// previous head joins the retention window; the oldest retained version
// beyond the window is dropped.
func (li *LiveIndex) Mutate(ctx context.Context, edits []Edit) (*Index, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	cur := li.head.Load()
	next, err := cur.ApplyEdits(ctx, edits)
	if err != nil {
		return nil, fmt.Errorf("repro: mutate version %d: %w", cur.Version(), err)
	}
	if next == cur {
		// Identity batch: nothing to publish.
		return cur, nil
	}
	li.retained = append(li.retained, cur)
	if len(li.retained) > li.retain {
		li.retained = li.retained[1:]
	}
	li.head.Store(next)
	return next, nil
}

// Retained returns the version numbers currently resumable through At,
// oldest first, including the head.
func (li *LiveIndex) Retained() []int {
	li.mu.Lock()
	defer li.mu.Unlock()
	out := make([]int, 0, len(li.retained)+1)
	for _, ix := range li.retained {
		out = append(out, ix.Version())
	}
	out = append(out, li.head.Load().Version())
	return out
}
