package repro

import (
	"context"
	"strings"
	"testing"
)

// The engine-selection layer routes index builds between the core
// nowhere-dense engine and the lowdeg bounded-degree engine. These tests
// pin the routing table: the default stays core (so nothing existing
// changes behavior), forced kinds are honored unconditionally, auto
// routes on the measured degree/degeneracy estimates, and a high-degree
// graph can never silently land on lowdeg.

func selTestQuery() *Query { return MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y") }

// TestSelectEngineRouting pins estimator → decision for each graph class
// on both sides of the thresholds.
func TestSelectEngineRouting(t *testing.T) {
	cases := []struct {
		name    string
		class   string
		n       int
		req     EngineKind
		want    EngineKind
		measure bool // auto examined the graph → estimates ≥ 0
	}{
		{"default is core", "bdeg", 200, "", EngineCore, false},
		{"explicit core", "bdeg", 200, EngineCore, EngineCore, false},
		{"forced lowdeg", "clique", 60, EngineLowDeg, EngineLowDeg, false},
		{"auto routes bounded degree to lowdeg", "bdeg", 200, EngineAuto, EngineLowDeg, true},
		{"auto routes grid to lowdeg", "grid", 400, EngineAuto, EngineLowDeg, true},
		{"auto keeps star on core", "star", 200, EngineAuto, EngineCore, true},
		{"auto keeps clique on core", "clique", 60, EngineAuto, EngineCore, true},
		{"auto keeps dense on core", "dense", 120, EngineAuto, EngineCore, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := Generate(c.class, c.n, GenOptions{Seed: 11, Colors: 2})
			sel, err := selectEngine(g, c.req)
			if err != nil {
				t.Fatal(err)
			}
			if sel.Chosen != c.want {
				t.Fatalf("selectEngine(%s, %q) chose %q, want %q (sel %+v)", c.class, c.req, sel.Chosen, c.want, sel)
			}
			if sel.Requested != c.req {
				t.Fatalf("Requested = %q, want %q", sel.Requested, c.req)
			}
			if c.measure && sel.MaxDegree < 0 {
				t.Fatalf("auto selection did not measure the degree: %+v", sel)
			}
			if !c.measure && (sel.MaxDegree != -1 || sel.Degeneracy != -1) {
				t.Fatalf("forced selection should not measure: %+v", sel)
			}
			if sel.DegreeLimit != AutoMaxDegree || sel.DegeneracyLimit != AutoMaxDegeneracy {
				t.Fatalf("limits not recorded: %+v", sel)
			}
		})
	}
}

// TestSelectEngineHighDegreeNeverLowdeg is the regression guard behind
// the routing table: no matter the seed or size, a graph whose maximum
// degree exceeds the threshold must never route to the low-degree engine
// under auto — its delay bound is exponential in the degree.
func TestSelectEngineHighDegreeNeverLowdeg(t *testing.T) {
	for _, class := range []string{"star", "clique", "dense", "subclique"} {
		for seed := int64(1); seed <= 5; seed++ {
			for _, n := range []int{40, 120, 300} {
				g := Generate(class, n, GenOptions{Seed: seed, Colors: 2})
				if g.MaxDegree() <= AutoMaxDegree {
					// Tiny instances of a dense class can be legitimately
					// low-degree; the guard is about high-degree graphs.
					continue
				}
				sel, err := selectEngine(g, EngineAuto)
				if err != nil {
					t.Fatal(err)
				}
				if sel.Chosen == EngineLowDeg {
					t.Fatalf("%s n=%d seed=%d (degree %d) routed to lowdeg: %+v", class, n, seed, g.MaxDegree(), sel)
				}
			}
		}
	}
}

// TestSelectEngineUnknownKind: a bogus kind is a build-time error, not a
// silent fallback.
func TestSelectEngineUnknownKind(t *testing.T) {
	g := Generate("path", 20, GenOptions{})
	if _, err := selectEngine(g, "turbo"); err == nil {
		t.Fatal("expected an error for an unknown engine kind")
	}
	if _, err := Build(context.Background(), g, selTestQuery(), WithEngine("turbo")); err == nil {
		t.Fatal("Build accepted an unknown engine kind")
	}
}

// TestWithEngineForcedOverride: WithEngine(EngineLowDeg) builds a lowdeg
// index even for a graph auto would refuse, and the two engines agree on
// the answer set there (correctness does not depend on the degree bound —
// only the delay guarantee does).
func TestWithEngineForcedOverride(t *testing.T) {
	g := Generate("dense", 60, GenOptions{Seed: 3, Colors: 2})
	if g.MaxDegree() <= AutoMaxDegree {
		t.Fatalf("test premise broken: dense graph has degree %d", g.MaxDegree())
	}
	q := selTestQuery()
	forced, err := Build(context.Background(), g, q, WithEngine(EngineLowDeg))
	if err != nil {
		t.Fatal(err)
	}
	if forced.Engine() != EngineLowDeg {
		t.Fatalf("forced build is backed by %q", forced.Engine())
	}
	if sel := forced.Selection(); sel.Chosen != EngineLowDeg || sel.Requested != EngineLowDeg {
		t.Fatalf("selection not recorded: %+v", sel)
	}
	ref, err := Build(context.Background(), g, q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := forced.Count(), ref.Count(); got != want {
		t.Fatalf("forced lowdeg count %d != core count %d", got, want)
	}
}

// TestBuildAutoSelectionSurfaces: an auto build on a bounded-degree graph
// lands on lowdeg, records its estimates, counts correctly, and refuses
// to snapshot with a helpful error.
func TestBuildAutoSelectionSurfaces(t *testing.T) {
	g := Generate("bdeg", 300, GenOptions{Seed: 7, Colors: 2})
	q := selTestQuery()
	ix, err := Build(context.Background(), g, q, WithEngine(EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Engine() != EngineLowDeg {
		t.Fatalf("auto build on bdeg is backed by %q", ix.Engine())
	}
	sel := ix.Selection()
	if sel.MaxDegree < 1 || sel.MaxDegree > AutoMaxDegree || sel.Degeneracy < 1 || sel.Degeneracy > AutoMaxDegeneracy {
		t.Fatalf("implausible estimates: %+v", sel)
	}
	ref, err := Build(context.Background(), g, q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ix.Count(), ref.Count(); got != want {
		t.Fatalf("auto-selected engine count %d != core count %d", got, want)
	}
	n, fast := ix.SolutionCount()
	if n != ref.Count() || !fast {
		t.Fatalf("SolutionCount = (%d, %v), want (%d, true)", n, fast, ref.Count())
	}
	err = ix.WriteSnapshot(discard{})
	if err == nil || !strings.Contains(err.Error(), "lowdeg") {
		t.Fatalf("lowdeg snapshot error = %v, want a lowdeg refusal", err)
	}
	// The cursor contract holds across engines through the facade type.
	it := ix.Iterator()
	seen := 0
	for it.HasNext() {
		if _, ok := it.Next(); !ok {
			break
		}
		seen++
	}
	if seen != n {
		t.Fatalf("cursor yielded %d solutions, SolutionCount says %d", seen, n)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestLowDegIndexMutation: ApplyEdits on a lowdeg-backed index rebuilds
// for real edits (bumping the version), returns the receiver for identity
// batches, and answers for the patched graph.
func TestLowDegIndexMutation(t *testing.T) {
	g := Generate("path", 50, GenOptions{Seed: 2, Colors: 2})
	q := selTestQuery()
	ix, err := Build(context.Background(), g, q, WithEngine(EngineLowDeg))
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := ix.ApplyEdits(context.Background(), []Edit{AddEdge(0, 25)})
	if err != nil {
		t.Fatal(err)
	}
	if ix2 == ix || ix2.Version() != 1 || ix2.Engine() != EngineLowDeg {
		t.Fatalf("real edit: got same index or wrong version/engine (v%d, %q)", ix2.Version(), ix2.Engine())
	}
	g2, err := PatchGraph(g, []Edit{AddEdge(0, 25)})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(context.Background(), g2, q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ix2.Count(), ref.Count(); got != want {
		t.Fatalf("mutated lowdeg count %d != rebuilt core count %d", got, want)
	}
	ix3, err := ix.ApplyEdits(context.Background(), []Edit{AddEdge(1, 30), RemoveEdge(1, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if ix3 != ix {
		t.Fatal("identity batch should return the receiver")
	}
}

// TestLowDegIndexStats: the synthesized core.Stats view and the
// engine-specific LowDegStats agree on the shared fields.
func TestLowDegIndexStats(t *testing.T) {
	g := Generate("bdeg", 150, GenOptions{Seed: 4, Colors: 2})
	ix, err := Build(context.Background(), g, selTestQuery(), WithEngine(EngineLowDeg))
	if err != nil {
		t.Fatal(err)
	}
	ix.Count()
	ls, ok := ix.LowDegStats()
	if !ok {
		t.Fatal("LowDegStats not available on a lowdeg index")
	}
	st := ix.Stats()
	if st.Candidates != ls.Candidates || st.LocalEvals != ls.LocalEvals || len(st.StarterSizes) != len(ls.StarterSizes) {
		t.Fatalf("stats views disagree: %+v vs %+v", st, ls)
	}
	if st.CoverBags != 0 || st.SkipPointers != 0 {
		t.Fatalf("lowdeg index reports cover/skip structure: %+v", st)
	}
	core, err := Build(context.Background(), g, selTestQuery())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := core.LowDegStats(); ok {
		t.Fatal("LowDegStats available on a core index")
	}
}

// TestParseCountQuery: the `#x̄: φ` form round-trips into a buildable
// query whose SolutionCount matches the enumeration count.
func TestParseCountQuery(t *testing.T) {
	q, err := ParseCountQuery("#x,y: dist(x,y) > 2 & C0(y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 2 {
		t.Fatalf("arity %d, want 2", q.Arity())
	}
	g := Generate("grid", 200, GenOptions{Seed: 1, Colors: 2})
	ix, err := Build(context.Background(), g, q)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := ix.SolutionCount()
	if want := ix.Count(); n != want {
		t.Fatalf("SolutionCount %d != Count %d", n, want)
	}
	// Second call hits the cache and must agree.
	if n2, _ := ix.SolutionCount(); n2 != n {
		t.Fatalf("cached SolutionCount changed: %d then %d", n, n2)
	}
	if _, err := ParseCountQuery("dist(x,y) > 2"); err == nil {
		t.Fatal("missing '#' should be rejected")
	}
	if _, err := ParseCountQuery("#x: C0(y)"); err == nil {
		t.Fatal("undeclared free variable should be rejected")
	}
}
