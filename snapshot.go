package repro

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/snap"
)

// WriteSnapshot serializes the fully built index — graph, query metadata,
// and every preprocessed structure (neighborhood cover, kernels, distance
// recursion, starter lists, skip pointers, Storing-Theorem registers) —
// into the immutable snapshot format of internal/snap. Loading the result
// with LoadIndexSnapshot skips all of the pseudo-linear preprocessing and
// yields an index that answers byte-identically.
//
// The output is deterministic: the same graph and query always produce
// the same bytes, so snapshots can be content-addressed and compared.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	return ix.WriteSnapshotObs(context.Background(), w, nil)
}

// WriteSnapshotObs is WriteSnapshot with encode instrumentation: section
// timings become "snap.encode" spans in m — enrolled in the request trace
// when ctx carries one (obs.ContextWithSpan) — so a serving layer can see
// where a snapshot write-back spends its time.
func (ix *Index) WriteSnapshotObs(ctx context.Context, w io.Writer, m *Metrics) error {
	if ix.q == nil {
		return fmt.Errorf("repro: index has no query attached; only indexes from BuildIndex can be snapshotted")
	}
	if ix.le != nil {
		// The snapshot format serializes the core engine's structures
		// (cover, kernels, distance recursion, skip pointers); the lowdeg
		// engine has none of them, and its linear build makes persisting
		// pointless — rebuild instead.
		return fmt.Errorf("repro: a lowdeg-backed index cannot be snapshotted; rebuild it (the low-degree preprocessing is linear)")
	}
	lq, err := ix.q.compile()
	if err != nil {
		return err
	}
	vars := make([]string, len(ix.q.Vars))
	for i, v := range ix.q.Vars {
		vars[i] = string(v)
	}
	meta := snap.Meta{
		Query:       ix.q.Phi.String(),
		Vars:        vars,
		Canonical:   ix.q.Canonical(),
		K:           lq.K,
		R:           lq.R,
		LocalRadius: lq.LocalRadius,
		Guarded:     lq.Guarded,
	}
	_, err = snap.WriteTraced(ctx, w, ix.e.Graph(), meta, ix.e.SnapshotParts(), m)
	return err
}

// SaveIndexSnapshot writes the snapshot atomically to path: the bytes go
// to a temporary file in the same directory first, which is renamed into
// place only after a successful write.
func SaveIndexSnapshot(ix *Index, path string) error {
	return SaveIndexSnapshotObs(context.Background(), ix, path, nil)
}

// SaveIndexSnapshotObs is SaveIndexSnapshot with encode instrumentation
// (see WriteSnapshotObs).
func SaveIndexSnapshotObs(ctx context.Context, ix *Index, path string, m *Metrics) error {
	tmp, err := os.CreateTemp(dirOf(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ix.WriteSnapshotObs(ctx, tmp, m); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// ReadIndexSnapshotOpt is ReadIndexSnapshot with explicit options
// (parallelism for the restore-side derivations, metrics registry).
func ReadIndexSnapshotOpt(data []byte, opt IndexOptions) (*Index, error) {
	return ReadIndexSnapshotCtx(context.Background(), data, opt)
}

// ReadIndexSnapshotCtx is ReadIndexSnapshotOpt with a context: decode and
// restore record "snap.decode"/"restore" span trees into opt.Metrics, and
// when ctx carries a request trace (obs.ContextWithSpan) they land in it —
// this is how a serve-layer snapshot load shows up phase by phase in
// /debug/traces.
func ReadIndexSnapshotCtx(ctx context.Context, data []byte, opt IndexOptions) (*Index, error) {
	s, err := snap.ReadTraced(ctx, data, opt.Metrics)
	if err != nil {
		return nil, err
	}
	return restoreSnapshotCtx(ctx, s, opt)
}

// ReadIndexSnapshot reconstructs an index from snapshot bytes. The query
// is re-parsed and re-compiled from the embedded source (the compiler is
// deterministic, so the serialized engine parts line up exactly), and
// every structural invariant is revalidated — corrupted input yields an
// error, never a panic. The returned index answers byte-identically to
// the freshly built one the snapshot was taken from.
func ReadIndexSnapshot(data []byte) (*Index, error) {
	return restoreSnapshot(snap.Read(data))
}

// LoadIndexSnapshot is ReadIndexSnapshot over the contents of path.
func LoadIndexSnapshot(path string) (*Index, error) {
	return restoreSnapshot(snap.ReadFile(path))
}

// LoadIndexSnapshotOpt is LoadIndexSnapshot with explicit options
// (parallelism for the restore-side derivations, metrics registry).
func LoadIndexSnapshotOpt(path string, opt IndexOptions) (*Index, error) {
	s, err := snap.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return restoreSnapshotOpt(s, opt)
}

func restoreSnapshot(s *snap.Snapshot, err error) (*Index, error) {
	if err != nil {
		return nil, err
	}
	return restoreSnapshotOpt(s, IndexOptions{})
}

func restoreSnapshotOpt(s *snap.Snapshot, opt IndexOptions) (*Index, error) {
	return restoreSnapshotCtx(context.Background(), s, opt)
}

func restoreSnapshotCtx(ctx context.Context, s *snap.Snapshot, opt IndexOptions) (*Index, error) {
	q, err := ParseQuery(s.Meta.Query, s.Meta.Vars...)
	if err != nil {
		return nil, fmt.Errorf("repro: snapshot query does not parse: %w", err)
	}
	if got := q.Canonical(); got != s.Meta.Canonical {
		return nil, fmt.Errorf("repro: snapshot query is not canonical: %q reprints as %q", s.Meta.Canonical, got)
	}
	lq, err := q.compile()
	if err != nil {
		return nil, fmt.Errorf("repro: snapshot query does not compile: %w", err)
	}
	if lq.K != s.Meta.K || lq.R != s.Meta.R || lq.LocalRadius != s.Meta.LocalRadius || lq.Guarded != s.Meta.Guarded {
		return nil, fmt.Errorf("repro: snapshot query compiled to (k=%d r=%d ρ=%d guarded=%v), metadata says (k=%d r=%d ρ=%d guarded=%v)",
			lq.K, lq.R, lq.LocalRadius, lq.Guarded, s.Meta.K, s.Meta.R, s.Meta.LocalRadius, s.Meta.Guarded)
	}
	e, err := core.RestoreEngine(s.Graph, lq, s.Parts, core.Options{Parallelism: opt.Parallelism, Obs: opt.Metrics, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	// Snapshots always hold the core engine (WriteSnapshotObs rejects
	// lowdeg-backed indexes), so the restored selection is a forced core
	// choice with unexamined estimates.
	sel := Selection{
		Requested: EngineCore, Chosen: EngineCore,
		MaxDegree: -1, Degeneracy: -1,
		DegreeLimit: AutoMaxDegree, DegeneracyLimit: AutoMaxDegeneracy,
	}
	return &Index{e: e, sel: sel, k: lq.K, q: q}, nil
}

// SnapshotGraph returns the graph embedded in snapshot bytes without
// restoring the index.
func SnapshotGraph(data []byte) (*Graph, error) {
	s, err := snap.Read(data)
	if err != nil {
		return nil, err
	}
	return s.Graph, nil
}
