package repro

import (
	"context"

	"repro/internal/graph"
)

// Option tunes Build (functional options over the former IndexOptions).
type Option func(*IndexOptions)

// WithParallelism bounds the preprocessing worker count. 0 (the default)
// selects runtime.GOMAXPROCS(0); 1 forces the sequential build. The
// resulting index is identical for every setting — parallelism only
// changes build wall time.
func WithParallelism(workers int) Option {
	return func(o *IndexOptions) { o.Parallelism = workers }
}

// WithMetrics instruments the index with the given registry; see
// IndexOptions.Metrics.
func WithMetrics(reg *Metrics) Option {
	return func(o *IndexOptions) { o.Metrics = reg }
}

// WithEngine selects the enumeration engine: EngineCore (the default),
// EngineLowDeg, or EngineAuto, which measures the graph's maximum degree
// and degeneracy and routes bounded-degree inputs to the cheaper
// low-degree engine. The routing decision is recorded on the index; see
// Index.Selection.
func WithEngine(kind EngineKind) Option {
	return func(o *IndexOptions) { o.Engine = kind }
}

// Build performs the pseudo-linear preprocessing of Theorem 2.3 and is the
// single v1 entry point for index construction: context-bounded, tuned by
// functional options.
//
//	ix, err := repro.Build(ctx, g, q)
//	ix, err := repro.Build(ctx, g, q, repro.WithParallelism(1), repro.WithMetrics(reg))
//
// The context bounds preprocessing (checked between phases); pass
// context.Background() for an unbounded build. BuildIndex, BuildIndexOpt,
// and BuildIndexCtx are deprecated wrappers around this function.
func Build(ctx context.Context, g *Graph, q *Query, opts ...Option) (*Index, error) {
	var o IndexOptions
	for _, opt := range opts {
		opt(&o)
	}
	return BuildIndexCtx(ctx, g, q, o)
}

// EditOp is one kind of graph mutation; see the Edit constructors.
type EditOp = graph.EditOp

// Edit is one mutation of a colored graph: an edge inserted or deleted, or
// a color added to / removed from a vertex. The vertex set is fixed, so
// vertex ids — and with them every lexicographic guarantee of the
// enumeration layer — are stable across versions.
type Edit = graph.Edit

// Edit operation kinds, re-exported for constructing Edit values directly;
// the constructors below are the more convenient path.
const (
	OpAddEdge     = graph.AddEdge
	OpRemoveEdge  = graph.RemoveEdge
	OpAddColor    = graph.AddColor
	OpRemoveColor = graph.RemoveColor
)

// AddEdge returns the edit inserting the undirected edge {u, v}.
// Inserting a present edge or a self-loop is a no-op.
func AddEdge(u, v int) Edit { return Edit{Op: graph.AddEdge, U: u, V: v} }

// RemoveEdge returns the edit deleting the undirected edge {u, v};
// deleting an absent edge is a no-op.
func RemoveEdge(u, v int) Edit { return Edit{Op: graph.RemoveEdge, U: u, V: v} }

// AddColor returns the edit adding color c to vertex v.
func AddColor(v, c int) Edit { return Edit{Op: graph.AddColor, U: v, Color: c} }

// RemoveColor returns the edit removing color c from vertex v.
func RemoveColor(v, c int) Edit { return Edit{Op: graph.RemoveColor, U: v, Color: c} }

// PatchGraph applies edits to g copy-on-write and returns the edited
// graph; g is unchanged. The result is byte-identical to rebuilding the
// same edge and color sets through a GraphBuilder.
func PatchGraph(g *Graph, edits []Edit) (*Graph, error) { return graph.Patch(g, edits) }

// ApplyEdits returns a new index answering the query over the edited
// graph, recomputing only the structure the edits can reach (the n^ε
// update regime of the paper's §3): the affected distance-index rows,
// cover bags and kernels, starter slots, and per-kernel lists are patched;
// skip pointers are served through an exact delta overlay. The receiver is
// unchanged and keeps enumerating its own version with byte-identical
// answers — in-flight iterators over it are undisturbed (MVCC snapshot
// isolation; see LiveIndex for the version-managed wrapper).
//
// Edits that are not local (a clause guard flips, a layout refuses to
// patch, the accumulated deltas outgrow their thresholds) transparently
// fall back to a full rebuild; Stats().MutRebuilds counts those.
func (ix *Index) ApplyEdits(ctx context.Context, edits []Edit) (*Index, error) {
	if ix.le != nil {
		// The low-degree engine has no incremental path: a real edit is a
		// full (but linear, hence cheap) rebuild; an identity batch returns
		// the engine — and so the index — unchanged.
		le2, err := ix.le.ApplyEdits(ctx, edits)
		if err != nil {
			return nil, err
		}
		if le2 == ix.le {
			return ix, nil
		}
		return &Index{le: le2, sel: ix.sel, k: ix.k, q: ix.q, version: ix.version + 1}, nil
	}
	e2, err := ix.e.ApplyEdits(ctx, edits)
	if err != nil {
		return nil, err
	}
	if e2 == ix.e {
		// The batch netted out to the identity; the index is its own next
		// version.
		return ix, nil
	}
	return &Index{e: e2, sel: ix.sel, k: ix.k, q: ix.q, version: ix.version + 1}, nil
}

// Mutate is ApplyEdits under the name the serving layer's endpoint uses.
func (ix *Index) Mutate(ctx context.Context, edits []Edit) (*Index, error) {
	return ix.ApplyEdits(ctx, edits)
}

// Graph returns the graph this index version answers over.
func (ix *Index) Graph() *Graph {
	if ix.le != nil {
		return ix.le.Graph()
	}
	return ix.e.Graph()
}

// Version returns the index's mutation generation: 0 for a freshly built
// index, incremented by every effective ApplyEdits.
func (ix *Index) Version() int { return ix.version }
