package cover

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func classes() []gen.Class {
	return []gen.Class{gen.Path, gen.Cycle, gen.Star, gen.Caterpillar,
		gen.BalancedTree, gen.RandomTree, gen.Grid, gen.KingGrid,
		gen.BoundedDegree, gen.SparseRandom}
}

func TestCoverAxioms(t *testing.T) {
	for _, class := range classes() {
		for _, r := range []int{1, 2, 3} {
			g := gen.Generate(class, 300, gen.Options{Seed: 7})
			c := Compute(g, r)
			if err := c.Validate(); err != nil {
				t.Errorf("%s r=%d: %v", class, r, err)
			}
		}
	}
}

func TestCoverAssignCoversBall(t *testing.T) {
	g := gen.Generate(gen.Grid, 400, gen.Options{})
	c := Compute(g, 2)
	bfs := graph.NewBFS(g)
	for a := 0; a < g.N(); a++ {
		x := c.Assign(a)
		for _, v := range bfs.Ball(a, 2) {
			if !c.Contains(x, int(v)) {
				t.Fatalf("vertex %d of N_2(%d) not in bag %d", v, a, x)
			}
		}
	}
}

func TestCoverMembershipMatchesBags(t *testing.T) {
	g := gen.Generate(gen.RandomTree, 250, gen.Options{Seed: 3})
	c := Compute(g, 2)
	for i := 0; i < c.NumBags(); i++ {
		inBag := map[int]bool{}
		for _, v := range c.Bag(i) {
			inBag[v] = true
		}
		for v := 0; v < g.N(); v++ {
			if c.Contains(i, v) != inBag[v] {
				t.Fatalf("bag %d vertex %d: Contains=%v, bag list says %v",
					i, v, c.Contains(i, v), inBag[v])
			}
		}
	}
}

func TestCoverNextInBag(t *testing.T) {
	g := gen.Generate(gen.Cycle, 100, gen.Options{})
	c := Compute(g, 2)
	for i := 0; i < c.NumBags(); i++ {
		bag := c.Bag(i)
		// From 0, walking NextInBag must enumerate the bag exactly.
		var got []int
		v, ok := c.NextInBag(i, 0)
		for ok {
			got = append(got, v)
			if v == g.N()-1 {
				break
			}
			v, ok = c.NextInBag(i, v+1)
		}
		if len(got) != len(bag) {
			t.Fatalf("bag %d: walked %d members, want %d", i, len(got), len(bag))
		}
		for j := range got {
			if got[j] != bag[j] {
				t.Fatalf("bag %d position %d: %d != %d", i, j, got[j], bag[j])
			}
		}
	}
}

func TestKernels(t *testing.T) {
	for _, class := range classes() {
		g := gen.Generate(class, 200, gen.Options{Seed: 11})
		r := 2
		c := Compute(g, r)
		p := 1
		c.ComputeKernels(p)
		bfs := graph.NewBFS(g)
		for i := 0; i < c.NumBags(); i++ {
			inBag := map[int]bool{}
			for _, v := range c.Bag(i) {
				inBag[v] = true
			}
			for _, v := range c.Bag(i) {
				// Reference: v ∈ K_p(X) iff N_p(v) ⊆ X.
				want := true
				for _, w := range bfs.Ball(v, p) {
					if !inBag[int(w)] {
						want = false
						break
					}
				}
				if got := c.InKernel(i, v); got != want {
					t.Fatalf("%s: bag %d vertex %d: InKernel=%v want %v", class, i, v, got, want)
				}
			}
		}
	}
}

func TestKernelOfListsMatch(t *testing.T) {
	g := gen.Generate(gen.KingGrid, 150, gen.Options{})
	c := Compute(g, 2)
	c.ComputeKernels(2)
	for v := 0; v < g.N(); v++ {
		for _, i := range c.KernelsOf(v) {
			if !c.InKernel(int(i), v) {
				t.Fatalf("KernelsOf(%d) lists bag %d but InKernel is false", v, i)
			}
		}
		count := 0
		for i := 0; i < c.NumBags(); i++ {
			if c.InKernel(i, v) {
				count++
			}
		}
		if count != len(c.KernelsOf(v)) {
			t.Fatalf("vertex %d: %d kernels vs %d listed", v, count, len(c.KernelsOf(v)))
		}
	}
}

func TestKernelContainsMatchesInKernel(t *testing.T) {
	// The Storing-Theorem access path and the sorted-list access path must
	// agree everywhere.
	g := gen.Generate(gen.Grid, 200, gen.Options{Seed: 13})
	c := Compute(g, 2)
	c.ComputeKernels(2)
	for i := 0; i < c.NumBags(); i++ {
		for v := 0; v < g.N(); v++ {
			if c.InKernel(i, v) != c.KernelContains(i, v) {
				t.Fatalf("bag %d vertex %d: access paths disagree", i, v)
			}
		}
	}
}

func TestCoverDegreeSmallOnSparse(t *testing.T) {
	// Not a theorem for the greedy cover, but the property the experiments
	// rely on: degree stays far below n on nowhere dense classes.
	for _, class := range classes() {
		g := gen.Generate(class, 2000, gen.Options{Seed: 5})
		c := Compute(g, 2)
		if d := c.Degree(); d > g.N()/4 {
			t.Errorf("%s: cover degree %d too close to n=%d", class, d, g.N())
		}
	}
}

func TestCoverRejectsBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for r=0")
		}
	}()
	Compute(gen.Generate(gen.Path, 10, gen.Options{}), 0)
}
