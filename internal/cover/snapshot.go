package cover

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/store"
)

// Parts is the flat serialized form of a Cover: the bag lists and kernels
// in CSR layout plus the canonical assignment, i.e. exactly the arrays
// the answering phase indexes into. The derived inverted lists (memberOf,
// kernelOf) are rebuilt on restore — they are pure functions of the bags
// and kernels. The optional Storing-Theorem structures (the paper's f_𝒳
// after Theorem 4.4) are included when the snapshot writer forced them,
// so a restored cover answers its first Contains/NextInBag in O(1)
// without a lazy build.
type Parts struct {
	R       int
	KernelP int // -1 when ComputeKernels was never called

	BagOff  []int32 // len NumBags+1, prefix sums
	BagData []int32 // concatenated sorted bag lists
	Centers []int32 // len NumBags
	Assign  []int32 // len g.N()

	KernOff  []int32 // len NumBags+1 when KernelP >= 0, else nil
	KernData []int32

	MemberStore *store.Parts // nil unless forced at snapshot time
	KernelStore *store.Parts
}

// Parts returns the serialized form of the cover. When forceStores is
// set, the lazy Storing-Theorem membership structures are built first and
// included, trading snapshot bytes for O(1) first-use on the restored
// side.
func (c *Cover) Parts(forceStores bool) Parts {
	p := Parts{R: c.R, KernelP: c.kernelP, Centers: make([]int32, len(c.centers)), Assign: c.assign}
	for i, ctr := range c.centers {
		p.Centers[i] = int32(ctr)
	}
	p.BagOff, p.BagData = csrOf(c.bags)
	if c.kernelP >= 0 {
		p.KernOff, p.KernData = csrOf(c.kernels)
	}
	if forceStores {
		mp := c.MemberStore().Parts()
		p.MemberStore = &mp
		if c.kernelP >= 0 {
			kp := c.KernelStore().Parts()
			p.KernelStore = &kp
		}
	}
	return p
}

func csrOf(lists [][]graph.V) (off, data []int32) {
	off = make([]int32, len(lists)+1)
	total := 0
	for i, l := range lists {
		total += len(l)
		off[i+1] = int32(total)
	}
	data = make([]int32, 0, total)
	for _, l := range lists {
		for _, v := range l {
			data = append(data, int32(v))
		}
	}
	return off, data
}

// csrSlice validates one CSR pair against the vertex universe n and
// returns the per-row slices. Rows must be strictly increasing vertex
// lists (the binary searches of Sub.Local and InKernel depend on it).
func csrSlice(off, data []int32, n int, what string) ([][]graph.V, error) {
	if len(off) == 0 || off[0] != 0 || int(off[len(off)-1]) != len(data) {
		return nil, fmt.Errorf("cover: %s offsets malformed", what)
	}
	// One backing array for all rows: the restore path runs this over
	// every bag and kernel list, and per-row allocations dominate it.
	flat := make([]graph.V, len(data))
	rows := make([][]graph.V, len(off)-1)
	for i := range rows {
		lo, hi := off[i], off[i+1]
		if lo > hi || int(hi) > len(data) {
			return nil, fmt.Errorf("cover: %s row %d offsets out of order", what, i)
		}
		row := flat[lo:hi:hi]
		prev := int32(-1)
		for j, v := range data[lo:hi] {
			if v <= prev || int(v) >= n {
				return nil, fmt.Errorf("cover: %s row %d not a sorted vertex list over [0,%d)", what, i, n)
			}
			prev = v
			row[j] = int(v)
		}
		rows[i] = row
	}
	return rows, nil
}

// invertLists builds the inverted CSR of rows over [0,n): out[v] lists,
// in increasing order, the row indices whose list contains v. Built with
// two counting passes over one flat backing array — the restore-side
// replacement for the append-per-vertex pattern.
func invertLists(rows [][]graph.V, n int) [][]int32 {
	cnt := make([]int32, n+1)
	total := 0
	for _, row := range rows {
		total += len(row)
		for _, v := range row {
			cnt[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		cnt[v+1] += cnt[v]
	}
	flat := make([]int32, total)
	pos := append([]int32(nil), cnt[:n]...)
	for i, row := range rows {
		for _, v := range row {
			flat[pos[v]] = int32(i)
			pos[v]++
		}
	}
	out := make([][]int32, n)
	for v := 0; v < n; v++ {
		out[v] = flat[cnt[v]:cnt[v+1]:cnt[v+1]]
	}
	return out
}

// FromParts reconstructs a Cover over g from its serialized form,
// rebuilding the derived inverted lists and validating every array the
// answering phase indexes with (bag ids, vertex ranges, sortedness) so a
// corrupted snapshot errors instead of panicking at query time.
func FromParts(g *graph.Graph, p Parts) (*Cover, error) {
	return FromPartsObs(g, p, nil)
}

// FromPartsObs is FromParts with the optional Storing-Theorem structures
// restored through the instrumented store path (store.FromPartsObs), so a
// registry sees their restore latency and register counts. A nil reg is
// the plain FromParts.
func FromPartsObs(g *graph.Graph, p Parts, reg *obs.Registry) (*Cover, error) {
	if p.R < 1 {
		return nil, fmt.Errorf("cover: snapshot radius %d < 1", p.R)
	}
	n := g.N()
	bags, err := csrSlice(p.BagOff, p.BagData, n, "bag")
	if err != nil {
		return nil, err
	}
	if len(p.Centers) != len(bags) {
		return nil, fmt.Errorf("cover: %d centers for %d bags", len(p.Centers), len(bags))
	}
	if len(p.Assign) != n {
		return nil, fmt.Errorf("cover: assignment covers %d vertices, graph has %d", len(p.Assign), n)
	}
	c := &Cover{g: g, R: p.R, S: 2 * p.R, kernelP: -1, pool: par.Sequential()}
	c.bags = bags
	c.centers = make([]graph.V, len(p.Centers))
	for i, ctr := range p.Centers {
		if int(ctr) < 0 || int(ctr) >= n {
			return nil, fmt.Errorf("cover: center %d of bag %d out of range", ctr, i)
		}
		c.centers[i] = int(ctr)
	}
	for v, b := range p.Assign {
		if int(b) < 0 || int(b) >= len(bags) {
			return nil, fmt.Errorf("cover: vertex %d assigned to bag %d of %d", v, b, len(bags))
		}
	}
	c.assign = p.Assign
	c.memberOf = invertLists(bags, n)

	if p.KernelP >= 0 {
		if p.KernelP > p.R {
			return nil, fmt.Errorf("cover: kernel radius %d exceeds cover radius %d", p.KernelP, p.R)
		}
		kerns, err := csrSlice(p.KernOff, p.KernData, n, "kernel")
		if err != nil {
			return nil, err
		}
		if len(kerns) != len(bags) {
			return nil, fmt.Errorf("cover: %d kernels for %d bags", len(kerns), len(bags))
		}
		c.kernelP = p.KernelP
		c.kernels = kerns
		c.kernelOf = invertLists(kerns, n)
	}

	if p.MemberStore != nil {
		ms, err := store.FromPartsObs(*p.MemberStore, reg)
		if err != nil {
			return nil, fmt.Errorf("cover: member store: %w", err)
		}
		c.members.Store(ms)
	}
	if p.KernelStore != nil {
		if c.kernelOf == nil {
			return nil, fmt.Errorf("cover: kernel store present without kernels")
		}
		ks, err := store.FromPartsObs(*p.KernelStore, reg)
		if err != nil {
			return nil, fmt.Errorf("cover: kernel store: %w", err)
		}
		c.kernelStore.Store(ks)
	}
	return c, nil
}
