// Cover patching: derive the (R, 2R)-cover of an edited graph from the
// existing one, recomputing only the bags an edit can reach.
//
// The enumeration machinery needs exactly two properties from a cover
// (see DESIGN.md §3.9):
//
//  1. containment — ∀a: N_R(a) ⊆ bag(𝒳(a)). Edge removals only shrink
//     balls, so they preserve it; an added edge can grow N_R(a) past the
//     assigned bag for vertices a near the new edge, and those vertices
//     get a fresh bag N_{2R}(a) (trivially containing N_R(a)).
//  2. exact kernels — K_p(X) must be the true p-kernel of X in the
//     *current* graph, because the skip pointers of Lemma 5.8 treat
//     "outside every kernel of S" as a proof of distance > p without
//     re-checking. Both additions and removals move kernel boundaries
//     (removals grow kernels), so every bag containing a vertex whose
//     p-ball changed gets its kernel recomputed exactly.
//
// The patched cover is valid but not necessarily the greedy-canonical
// cover a from-scratch build would produce; that is fine — covers steer
// the search, they never appear in answers, so enumeration over a patched
// cover is byte-identical to enumeration over a rebuilt one (the
// differential tests in internal/core enforce this).
package cover

import (
	"sort"

	"repro/internal/graph"
)

// PatchInfo reports what a Patch changed, for the layers above (skip
// pointers, starter kernel lists) to localize their own recomputation.
type PatchInfo struct {
	// NewBags are the bag ids created for containment repairs; they form
	// the contiguous range [old NumBags, new NumBags).
	NewBags []int
	// KernelChanged are the ids of preexisting bags whose kernel set
	// changed.
	KernelChanged []int
	// KernelDelta are the vertices whose kernel membership changed in any
	// bag — including every kernel member of a new bag — sorted ascending.
	// A vertex outside this set is in exactly the same kernels as before,
	// which is what makes the skip-pointer delta overlay exact.
	KernelDelta []graph.V
}

// maxPatchFraction bounds the locality of a patch: if more than n/8
// vertices have a changed p-ball the edit is not local and a rebuild is
// at least as cheap as patching.
const maxPatchFraction = 8

// Patch derives the cover of gNew (the graph after a batch of edits) from
// c (built on gOld). sources are the edge-edit endpoints; color edits do
// not influence a cover and must not be passed. ok=false means the edit
// batch is not local enough to patch and the caller should rebuild.
//
// The returned cover shares every untouched slice with c (copy-on-write:
// O(n) for the array spines plus work proportional to the affected
// region), so c remains fully usable — in-flight readers of the old
// version keep their exact structure.
func (c *Cover) Patch(gOld, gNew *graph.Graph, sources []graph.V) (*Cover, *PatchInfo, bool) {
	if gNew.N() != c.g.N() || c.kernelP < 0 {
		return nil, nil, false
	}
	n := gNew.N()
	out := &Cover{
		g: gNew, R: c.R, S: c.S,
		bags:     c.bags,
		centers:  c.centers,
		assign:   c.assign,
		memberOf: c.memberOf,
		kernelP:  c.kernelP,
		kernels:  c.kernels,
		kernelOf: c.kernelOf,
		pool:     c.pool,
		stats:    c.stats,
		obsReg:   c.obsReg,
	}
	info := &PatchInfo{}
	if len(sources) == 0 {
		// Color-only batch: the cover is a pure metric object; share it all.
		c.cloneStoresInto(out, nil, nil)
		return out, info, true
	}

	// Vertices whose p-ball (p = kernelP) may have changed: within p of a
	// source in the old or the new graph.
	affected := make([]bool, n)
	var affList []graph.V
	markBalls := func(g *graph.Graph, r int, dst []bool, lst *[]graph.V) {
		bfs := graph.NewBFS(g)
		for _, w := range bfs.BallMulti(sources, r) {
			if !dst[w] {
				dst[w] = true
				if lst != nil {
					*lst = append(*lst, int(w))
				}
			}
		}
	}
	markBalls(gOld, c.kernelP, affected, &affList)
	markBalls(gNew, c.kernelP, affected, &affList)
	if len(affList) > n/maxPatchFraction {
		return nil, nil, false
	}
	sort.Ints(affList)

	// --- containment repair (edge additions can violate it) -------------
	// Candidates: vertices within R of a source in gNew (only their R-ball
	// can have grown).
	candidate := make([]bool, n)
	var candList []graph.V
	markBalls(gNew, c.R, candidate, &candList)
	if len(candList) > n/maxPatchFraction {
		return nil, nil, false
	}
	sort.Ints(candList)
	bfsNew := graph.NewBFS(gNew)
	var violated []graph.V
	for _, a := range candList {
		bag := c.bags[c.assign[a]]
		ok := true
		for _, w := range bfsNew.Ball(a, c.R) {
			if !containsSorted(bag, int(w)) {
				ok = false
				break
			}
		}
		if !ok {
			violated = append(violated, a)
		}
	}

	kernelDelta := make(map[graph.V]bool)
	if len(violated) > 0 {
		out.bags = c.bags[:len(c.bags):len(c.bags)] // full-cap: appends below reallocate
		out.centers = c.centers[:len(c.centers):len(c.centers)]
		out.assign = append([]int32(nil), c.assign...)
		out.memberOf = cloneSpine(c.memberOf)
		out.kernels = c.kernels[:len(c.kernels):len(c.kernels)]
		out.kernelOf = cloneSpine(c.kernelOf)
		sc := newKernelScratch(n)
		repaired := make([]bool, len(violated))
		for i, a := range violated {
			if repaired[i] {
				continue
			}
			// New bag N_{2R}(a): contains N_R(a), so assigning a (and any
			// other violated vertex whose R-ball it swallows) restores
			// containment.
			ball := bfsNew.Ball(a, c.S)
			bag := make([]graph.V, len(ball))
			for j, w := range ball {
				bag[j] = int(w)
			}
			sort.Ints(bag)
			id := int32(len(out.bags))
			out.bags = append(out.bags, bag)
			out.centers = append(out.centers, a)
			out.assign[a] = id
			info.NewBags = append(info.NewBags, int(id))
			for _, v := range bag {
				out.memberOf[v] = appendSortedID(out.memberOf[v], id)
			}
			kern := bagKernelOn(gNew, sc, bag, c.kernelP)
			out.kernels = append(out.kernels, kern)
			for _, v := range kern {
				out.kernelOf[v] = appendSortedID(out.kernelOf[v], id)
				kernelDelta[v] = true
			}
			for j := i + 1; j < len(violated); j++ {
				if repaired[j] {
					continue
				}
				b := violated[j]
				inside := true
				for _, w := range bfsNew.Ball(b, c.R) {
					if !containsSorted(bag, int(w)) {
						inside = false
						break
					}
				}
				if inside {
					out.assign[b] = id
					repaired[j] = true
				}
			}
		}
	}

	// --- exact kernel recomputation for touched preexisting bags ---------
	// A bag's kernel can change only through vertices whose p-ball changed;
	// collect the bags containing any of them.
	redo := make(map[int]bool)
	for _, v := range affList {
		for _, b := range c.memberOf[v] {
			redo[int(b)] = true
		}
	}
	redoList := make([]int, 0, len(redo))
	for b := range redo { //fod:sorted — sorted immediately below
		redoList = append(redoList, b)
	}
	sort.Ints(redoList)
	if len(redoList) > 0 {
		sc := newKernelScratch(n)
		var kernCow, kernOfCow bool
		for _, b := range redoList {
			oldKern := c.kernels[b]
			newKern := bagKernelOn(gNew, sc, c.bags[b], c.kernelP)
			added, removed := diffSorted(oldKern, newKern)
			if len(added) == 0 && len(removed) == 0 {
				continue
			}
			if !kernCow {
				if sameSpineV(out.kernels, c.kernels) { // not already copied by the repair above
					out.kernels = append([][]graph.V(nil), c.kernels...)
				}
				kernCow = true
			}
			out.kernels[b] = newKern
			if !kernOfCow {
				if sameSpine(out.kernelOf, c.kernelOf) {
					out.kernelOf = cloneSpine(c.kernelOf)
				}
				kernOfCow = true
			}
			for _, v := range added {
				out.kernelOf[v] = appendSortedID(out.kernelOf[v], int32(b))
				kernelDelta[v] = true
			}
			for _, v := range removed {
				out.kernelOf[v] = removeSortedID(out.kernelOf[v], int32(b))
				kernelDelta[v] = true
			}
			info.KernelChanged = append(info.KernelChanged, b)
		}
	}

	info.KernelDelta = make([]graph.V, 0, len(kernelDelta))
	for v := range kernelDelta { //fod:sorted — sorted immediately below
		info.KernelDelta = append(info.KernelDelta, v)
	}
	sort.Ints(info.KernelDelta)

	c.cloneStoresInto(out, info, violated)
	return out, info, true
}

// cloneStoresInto wires the Storing-Theorem structures into the patched
// cover. A structure that was never materialized on c stays lazy on out
// (it will be rebuilt on first use, as always); a materialized one is
// cloned and delta-updated with the O(n^ε) Set/Delete of Theorem 3.1 —
// the live path the paper's update bound is about.
func (c *Cover) cloneStoresInto(out *Cover, info *PatchInfo, violated []graph.V) {
	if ms := c.members.Load(); ms != nil {
		newBags := 0
		if info != nil {
			newBags = len(info.NewBags)
		}
		if newBags > 0 && len(out.bags) > ms.N() {
			// The (bag, vertex) universe outgrew the store; let it rebuild
			// lazily over the larger universe.
			newBags = -1
		}
		if newBags >= 0 {
			clone := ms.Clone()
			if info != nil {
				for _, b := range info.NewBags {
					for _, v := range out.bags[b] {
						clone.Set([]int{b, v}, 1)
					}
				}
			}
			out.members.Store(clone)
		}
	}
	if ks := c.kernelStore.Load(); ks != nil && len(out.bags) <= ks.N() {
		clone := ks.Clone()
		if info != nil {
			for _, b := range info.NewBags {
				for _, v := range out.kernels[b] {
					clone.Set([]int{b, v}, 1)
				}
			}
			for _, b := range info.KernelChanged {
				added, removed := diffSorted(c.kernels[b], out.kernels[b])
				for _, v := range added {
					clone.Set([]int{b, v}, 1)
				}
				for _, v := range removed {
					clone.Delete([]int{b, v})
				}
			}
		}
		out.kernelStore.Store(clone)
	}
	_ = violated
}

// bagKernelOn is bagKernel against an explicit graph (the patch target),
// mirroring the Lemma 5.7 boundary BFS of the builder.
func bagKernelOn(g *graph.Graph, sc *kernelScratch, bag []graph.V, p int) []graph.V {
	sc.ep++
	ep := sc.ep
	for _, v := range bag {
		sc.mark[v] = ep
	}
	sc.queue = sc.queue[:0]
	for _, v := range bag {
		for _, w := range g.Neighbors(v) {
			if sc.mark[w] != ep && sc.mark[w] != -ep {
				sc.queue = append(sc.queue, v)
				sc.depth[v] = 1
				break
			}
		}
	}
	for _, v := range sc.queue {
		sc.mark[v] = -ep
	}
	for head := 0; head < len(sc.queue); head++ {
		v := sc.queue[head]
		if int(sc.depth[v]) >= p {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if sc.mark[w] == ep {
				sc.mark[w] = -ep
				sc.depth[w] = sc.depth[v] + 1
				sc.queue = append(sc.queue, int(w))
			}
		}
	}
	var kern []graph.V
	for _, v := range bag {
		if sc.mark[v] == ep {
			kern = append(kern, v)
		}
	}
	return kern
}

// cloneSpine copies the outer slice of a list-of-lists; the rows stay
// shared until individually replaced.
func cloneSpine(xs [][]int32) [][]int32 {
	out := make([][]int32, len(xs))
	copy(out, xs)
	return out
}

func sameSpine(a, b [][]int32) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func sameSpineV(a, b [][]graph.V) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// appendSortedID inserts id into a fresh copy of the sorted list.
func appendSortedID(xs []int32, id int32) []int32 {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= id })
	if i < len(xs) && xs[i] == id {
		return xs
	}
	out := make([]int32, 0, len(xs)+1)
	out = append(out, xs[:i]...)
	out = append(out, id)
	out = append(out, xs[i:]...)
	return out
}

// removeSortedID removes id from a fresh copy of the sorted list.
func removeSortedID(xs []int32, id int32) []int32 {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= id })
	if i == len(xs) || xs[i] != id {
		return xs
	}
	out := make([]int32, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	out = append(out, xs[i+1:]...)
	return out
}

// diffSorted returns the elements only in b (added) and only in a
// (removed), for sorted inputs.
func diffSorted(a, b []graph.V) (added, removed []graph.V) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			removed = append(removed, a[i])
			i++
		default:
			added = append(added, b[j])
			j++
		}
	}
	removed = append(removed, a[i:]...)
	added = append(added, b[j:]...)
	return added, removed
}
