package cover

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteKernel computes K_p(X) = {a ∈ X : N_p^{G[X]}(a) ⊆ X ... } directly
// from the definition used throughout: a is in the kernel iff its distance
// inside G[X] to the bag boundary exceeds p (equivalently, every vertex
// within p of a inside G[X] is interior). This mirrors bagKernel but goes
// through an independent per-vertex BFS, so a patch bug cannot cancel out.
func bruteKernel(g *graph.Graph, bag []graph.V, p int) []graph.V {
	inBag := map[graph.V]bool{}
	for _, v := range bag {
		inBag[v] = true
	}
	boundary := map[graph.V]bool{}
	for _, v := range bag {
		for _, w := range g.Neighbors(v) {
			if !inBag[int(w)] {
				boundary[v] = true
				break
			}
		}
	}
	var kern []graph.V
	for _, a := range bag {
		// BFS inside G[X] from a, truncated at p; a is kernel iff no
		// boundary vertex within p-1... boundary depth convention: boundary
		// vertices are at distance 1 from the complement, kernel = depth>p.
		// Equivalent per-vertex check: min over boundary b of
		// (dist_{G[X]}(a,b) + 1) > p.
		dist := map[graph.V]int{a: 0}
		queue := []graph.V{a}
		ok := !boundary[a] || p < 1
		if boundary[a] && p >= 1 {
			kernAppendIfOK(&kern, a, false)
			continue
		}
		for head := 0; head < len(queue) && ok; head++ {
			v := queue[head]
			if dist[v] >= p-1 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if !inBag[int(w)] {
					continue
				}
				if _, seen := dist[int(w)]; seen {
					continue
				}
				dist[int(w)] = dist[v] + 1
				if boundary[int(w)] && dist[int(w)]+1 <= p {
					ok = false
					break
				}
				queue = append(queue, int(w))
			}
		}
		kernAppendIfOK(&kern, a, ok)
	}
	return kern
}

func kernAppendIfOK(kern *[]graph.V, a graph.V, ok bool) {
	if ok {
		*kern = append(*kern, a)
	}
}

func edgeEditBatch(rng *rand.Rand, g *graph.Graph, count int) ([]graph.Edit, []graph.V) {
	var edits []graph.Edit
	var srcs []graph.V
	seen := map[graph.V]bool{}
	for len(edits) < count {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		op := graph.AddEdge
		if g.HasEdge(u, v) || rng.Intn(2) == 0 {
			op = graph.RemoveEdge
		}
		edits = append(edits, graph.Edit{Op: op, U: u, V: v})
		for _, w := range []graph.V{u, v} {
			if !seen[w] {
				seen[w] = true
				srcs = append(srcs, w)
			}
		}
	}
	sort.Ints(srcs)
	return edits, srcs
}

// TestPatchDifferential: a patched cover of the edited graph satisfies the
// cover axioms (Validate brute-forces containment and bag radius) and its
// kernels are exactly the true kernels of every bag in the new graph —
// the property the skip pointers' soundness proof rests on.
func TestPatchDifferential(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.Grid, gen.RandomTree, gen.BoundedDegree} {
		g := gen.Generate(class, 300, gen.Options{Seed: 23})
		for _, r := range []int{1, 2} {
			cov := Compute(g, r)
			cov.ComputeKernels(r)
			rng := rand.New(rand.NewSource(int64(r) * 7))
			for trial := 0; trial < 8; trial++ {
				edits, srcs := edgeEditBatch(rng, g, 1+rng.Intn(4))
				gNew, err := graph.Patch(g, edits)
				if err != nil {
					t.Fatal(err)
				}
				out, info, ok := cov.Patch(g, gNew, srcs)
				if !ok {
					continue // avalanche bail: caller rebuilds
				}
				if err := out.Validate(); err != nil {
					t.Fatalf("%s r=%d trial %d: patched cover invalid: %v", class, r, trial, err)
				}
				// Exact kernels everywhere, including new bags.
				for i := 0; i < out.NumBags(); i++ {
					want := bruteKernel(gNew, out.Bag(i), r)
					got := out.Kernel(i)
					if len(want) == 0 && len(got) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s r=%d trial %d: bag %d kernel = %v, want %v",
							class, r, trial, i, got, want)
					}
				}
				// kernelOf inverse stays consistent.
				for v := 0; v < gNew.N(); v++ {
					for _, b := range out.KernelsOf(v) {
						if !containsSorted(out.Kernel(int(b)), v) {
							t.Fatalf("kernelOf[%d] lists bag %d but kernel misses it", v, b)
						}
					}
				}
				// KernelDelta completeness: vertices outside it keep their
				// kernel lists verbatim (restricted to preexisting bags they
				// already had — new-bag members are all inside the delta).
				inDelta := map[graph.V]bool{}
				for _, v := range info.KernelDelta {
					inDelta[v] = true
				}
				for v := 0; v < gNew.N(); v++ {
					if inDelta[v] {
						continue
					}
					if !reflect.DeepEqual(cov.KernelsOf(v), out.KernelsOf(v)) {
						t.Fatalf("vertex %d outside KernelDelta changed kernels: %v -> %v",
							v, cov.KernelsOf(v), out.KernelsOf(v))
					}
				}
				// The original cover is untouched.
				if err := cov.Validate(); err != nil {
					t.Fatalf("patch corrupted the source cover: %v", err)
				}
			}
		}
	}
}

// TestPatchStores: materialized Storing-Theorem structures are cloned and
// delta-updated (Theorem 3.1 Set/Delete), and answer membership queries
// for the patched cover exactly.
func TestPatchStores(t *testing.T) {
	g := gen.Generate(gen.Grid, 225, gen.Options{Seed: 4})
	cov := Compute(g, 2)
	cov.ComputeKernels(2)
	// Materialize both stores pre-patch so Patch exercises Clone+delta.
	cov.MemberStore()
	cov.KernelStore()
	rng := rand.New(rand.NewSource(9))
	edits, srcs := edgeEditBatch(rng, g, 3)
	gNew, err := graph.Patch(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	out, _, ok := cov.Patch(g, gNew, srcs)
	if !ok {
		t.Skip("patch refused (avalanche)")
	}
	for i := 0; i < out.NumBags(); i++ {
		inBag := map[graph.V]bool{}
		for _, v := range out.Bag(i) {
			inBag[v] = true
		}
		inKern := map[graph.V]bool{}
		for _, v := range out.Kernel(i) {
			inKern[v] = true
		}
		for v := 0; v < gNew.N(); v++ {
			if out.Contains(i, v) != inBag[v] {
				t.Fatalf("store Contains(%d,%d) = %v, want %v", i, v, !inBag[v], inBag[v])
			}
			if out.KernelContains(i, v) != inKern[v] {
				t.Fatalf("store KernelContains(%d,%d) = %v, want %v", i, v, !inKern[v], inKern[v])
			}
		}
	}
	// And the old cover's stores still answer for the old structure.
	for i := 0; i < cov.NumBags(); i++ {
		for _, v := range cov.Bag(i) {
			if !cov.Contains(i, v) {
				t.Fatalf("old store lost member (%d,%d)", i, v)
			}
		}
	}
}

// TestPatchColorOnly: empty source list shares everything.
func TestPatchColorOnly(t *testing.T) {
	g := gen.Generate(gen.Path, 100, gen.Options{Seed: 1, Colors: 1})
	cov := Compute(g, 2)
	cov.ComputeKernels(2)
	gNew, err := graph.Patch(g, []graph.Edit{{Op: graph.AddColor, U: 5, Color: 0}})
	if err != nil {
		t.Fatal(err)
	}
	out, info, ok := cov.Patch(g, gNew, nil)
	if !ok || len(info.NewBags) != 0 || len(info.KernelDelta) != 0 {
		t.Fatalf("color-only patch: ok=%v info=%+v", ok, info)
	}
	if out.NumBags() != cov.NumBags() {
		t.Fatal("color-only patch changed the bag set")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}
