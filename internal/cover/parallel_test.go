package cover

import (
	"reflect"
	"testing"

	"repro/internal/gen"
)

// TestParallelCoverByteIdentical asserts the speculative parallel cover
// produces exactly the sequential greedy cover — same bags, centers,
// assignment, membership, and kernels — across graph classes, radii, and
// worker counts.
func TestParallelCoverByteIdentical(t *testing.T) {
	classes := []gen.Class{gen.Path, gen.Cycle, gen.Star, gen.Caterpillar,
		gen.BalancedTree, gen.RandomTree, gen.Grid, gen.KingGrid,
		gen.BoundedDegree, gen.SparseRandom, gen.Clique, gen.SubdividedClique}
	for _, class := range classes {
		for _, r := range []int{1, 2, 3} {
			for _, n := range []int{1, 2, 37, 400} {
				g := gen.Generate(class, n, gen.Options{Seed: int64(n) + int64(r)})
				seq := ComputeWith(g, r, Options{Workers: 1})
				seq.ComputeKernels(r)
				for _, workers := range []int{2, 4, 7} {
					par := ComputeWith(g, r, Options{Workers: workers})
					par.ComputeKernels(r)
					if !reflect.DeepEqual(seq.bags, par.bags) {
						t.Fatalf("%s n=%d r=%d w=%d: bags differ (%d vs %d)",
							class, n, r, workers, len(seq.bags), len(par.bags))
					}
					if !reflect.DeepEqual(seq.centers, par.centers) {
						t.Fatalf("%s n=%d r=%d w=%d: centers differ", class, n, r, workers)
					}
					if !reflect.DeepEqual(seq.assign, par.assign) {
						t.Fatalf("%s n=%d r=%d w=%d: assignment differs", class, n, r, workers)
					}
					if !reflect.DeepEqual(seq.memberOf, par.memberOf) {
						t.Fatalf("%s n=%d r=%d w=%d: memberOf differs", class, n, r, workers)
					}
					if !reflect.DeepEqual(seq.kernels, par.kernels) {
						t.Fatalf("%s n=%d r=%d w=%d: kernels differ", class, n, r, workers)
					}
					if !reflect.DeepEqual(seq.kernelOf, par.kernelOf) {
						t.Fatalf("%s n=%d r=%d w=%d: kernelOf differs", class, n, r, workers)
					}
				}
			}
		}
	}
}

// TestParallelCoverValidates runs the brute-force cover axioms on a
// parallel-built cover.
func TestParallelCoverValidates(t *testing.T) {
	for _, class := range []gen.Class{gen.Grid, gen.RandomTree, gen.BoundedDegree} {
		g := gen.Generate(class, 600, gen.Options{Seed: 3})
		c := ComputeWith(g, 2, Options{Workers: 4})
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", class, err)
		}
	}
}

// TestParallelCoverStats sanity-checks the speculation accounting.
func TestParallelCoverStats(t *testing.T) {
	g := gen.Generate(gen.Grid, 900, gen.Options{Seed: 1})
	c := ComputeWith(g, 2, Options{Workers: 4})
	st := c.Stats()
	if st.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", st.Workers)
	}
	if st.BallsComputed < c.NumBags() {
		t.Fatalf("BallsComputed %d < bags %d", st.BallsComputed, c.NumBags())
	}
	if st.BallsWasted != st.BallsComputed-c.NumBags() {
		t.Fatalf("waste accounting: %d computed, %d wasted, %d bags",
			st.BallsComputed, st.BallsWasted, c.NumBags())
	}
	seq := Compute(g, 2)
	if got := seq.Stats().Workers; got != 1 {
		t.Fatalf("sequential Workers = %d", got)
	}
	if w := seq.Stats().BallsWasted; w != 0 {
		t.Fatalf("sequential path wasted %d balls", w)
	}
}

// TestConcurrentLazyStores hammers the lazily-built Storing-Theorem
// structures from many goroutines; run with -race to catch unguarded
// initialization.
func TestConcurrentLazyStores(t *testing.T) {
	g := gen.Generate(gen.Grid, 400, gen.Options{Seed: 5})
	c := ComputeWith(g, 2, Options{Workers: 2})
	c.ComputeKernels(2)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for v := 0; v < g.N(); v += 7 {
				bag := c.Assign(v)
				if !c.Contains(bag, v) {
					t.Errorf("vertex %d not in its assigned bag %d", v, bag)
					return
				}
				c.KernelContains(bag, v)
				c.NextInBag(bag, v)
				c.InKernel(bag, v)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
