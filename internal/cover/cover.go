// Package cover implements (r,s)-neighborhood covers (Definition 4.3 and
// Theorem 4.4 of the paper) and bag kernels (Definition 5.6, Lemma 5.7).
//
// A cover is a collection of bags X ⊆ V such that every r-ball N_r(a) is
// contained in some bag, and every bag is contained in some s-ball
// N_s(c_X). We compute (r,2r)-covers greedily: scanning vertices in order,
// each still-uncovered vertex a contributes the bag N_{2r}(a) and covers
// every vertex of N_r(a). For every vertex b covered by center a we then
// have N_r(b) ⊆ N_{2r}(a), so the result is a valid (r,2r)-cover; its
// degree is measured rather than proven (Theorem 4.4's constructive bound
// relies on non-constructive class parameters — see DESIGN.md §3).
//
// Bag and kernel membership (including ordered successor queries inside a
// bag) are served by Storing-Theorem structures keyed by (bag, vertex), as
// in the paper's use of Theorem 3.1 after Theorem 4.4.
package cover

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/store"
)

// Cover is an (R, 2R)-neighborhood cover of a colored graph.
type Cover struct {
	g *graph.Graph
	// R is the cover radius r; S = 2R bounds the bag radius.
	R, S int

	bags     [][]graph.V // sorted vertex lists
	centers  []graph.V   // c_X with X ⊆ N_S(c_X)
	assign   []int32     // 𝒳(a): index of the canonical bag covering N_R(a)
	memberOf [][]int32   // sorted bag indices containing each vertex

	members *store.Store // (bag, vertex) ↦ 1, the paper's f_𝒳

	kernelP     int          // radius of the computed kernels (-1 = none)
	kernels     [][]graph.V  // p-kernel per bag, sorted
	kernelStore *store.Store // (bag, vertex) ↦ 1 for kernel membership
	kernelOf    [][]int32    // sorted bag indices whose kernel contains v
}

// Epsilon is the trie parameter handed to the Storing-Theorem structures.
const Epsilon = 0.25

// Compute builds an (r, 2r)-neighborhood cover of g.
func Compute(g *graph.Graph, r int) *Cover {
	if r < 1 {
		panic(fmt.Sprintf("cover: radius %d < 1", r))
	}
	c := &Cover{g: g, R: r, S: 2 * r, kernelP: -1}
	c.assign = make([]int32, g.N())
	for i := range c.assign {
		c.assign[i] = -1
	}
	bfs := graph.NewBFS(g)
	inBall := make([]int32, g.N())
	depth := make([]int32, g.N())
	for i := range inBall {
		inBall[i] = -1
	}
	var boundary []graph.V
	for a := 0; a < g.N(); a++ {
		if c.assign[a] >= 0 {
			continue
		}
		bag := int32(len(c.bags))
		ball := bfs.Ball(a, c.S)
		vs := make([]graph.V, len(ball))
		for i, v := range ball {
			vs[i] = int(v)
			inBall[v] = bag
		}
		// Assign to this bag every still-unassigned vertex whose whole
		// r-ball lies inside the bag (the bag's r-kernel) — this includes
		// N_r(a) and makes the greedy cover produce few bags even when
		// balls saturate the graph. Kernel membership via the boundary
		// BFS of Lemma 5.7.
		boundary = boundary[:0]
		for _, v := range vs {
			for _, w := range g.Neighbors(v) {
				if inBall[w] != bag {
					boundary = append(boundary, v)
					depth[v] = 1
					break
				}
			}
		}
		excluded := int32(-2 - bag) // distinct marker per bag
		for _, v := range boundary {
			inBall[v] = excluded
		}
		for head := 0; head < len(boundary); head++ {
			v := boundary[head]
			if int(depth[v]) >= r {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if inBall[w] == bag {
					inBall[w] = excluded
					depth[w] = depth[v] + 1
					boundary = append(boundary, int(w))
				}
			}
		}
		for _, v := range vs {
			if inBall[v] == bag && c.assign[v] < 0 {
				c.assign[v] = bag
			}
		}
		if c.assign[a] < 0 {
			// Degenerate: a sits within r of the bag boundary (possible
			// when the ball is shallow); it is still covered by its own
			// N_r ⊆ N_S(a) = the bag, by construction of S ≥ 2r... which
			// the kernel test may reject only if N_r(a) ⊄ N_S(a), never.
			// Keep the direct assignment as a safety net.
			c.assign[a] = bag
		}
		sort.Ints(vs)
		c.bags = append(c.bags, vs)
		c.centers = append(c.centers, a)
	}
	c.buildMembership()
	return c
}

func (c *Cover) buildMembership() {
	c.memberOf = make([][]int32, c.g.N())
	for i, bag := range c.bags {
		for _, v := range bag {
			c.memberOf[v] = append(c.memberOf[v], int32(i))
		}
	}
	// Bags are created in increasing center order and each bag list is
	// appended once, so memberOf lists are already sorted. The
	// Storing-Theorem structure behind Contains/NextInBag is built lazily
	// on first use (many consumers only need Assign/Bag/kernels).
}

func (c *Cover) memberStore() *store.Store {
	if c.members != nil {
		return c.members
	}
	u := c.g.N()
	if len(c.bags) > u {
		u = len(c.bags)
	}
	if u < 2 {
		u = 2
	}
	c.members = store.New(u, 2, Epsilon)
	for i, bag := range c.bags {
		for _, v := range bag {
			c.members.Set([]int{i, v}, 1)
		}
	}
	return c.members
}

// NumBags returns |𝒳|.
func (c *Cover) NumBags() int { return len(c.bags) }

// Bag returns the sorted vertex list of bag i (shared; do not modify).
func (c *Cover) Bag(i int) []graph.V { return c.bags[i] }

// Center returns c_X for bag i, a vertex with X ⊆ N_{2R}(c_X).
func (c *Cover) Center(i int) graph.V { return c.centers[i] }

// Assign returns 𝒳(a), the index of the canonical bag containing N_R(a).
func (c *Cover) Assign(a graph.V) int { return int(c.assign[a]) }

// BagsOf returns the sorted indices of all bags containing v.
func (c *Cover) BagsOf(v graph.V) []int32 { return c.memberOf[v] }

// Degree returns δ(𝒳) = max_a |{X : a ∈ X}|.
func (c *Cover) Degree() int {
	d := 0
	for _, bs := range c.memberOf {
		if len(bs) > d {
			d = len(bs)
		}
	}
	return d
}

// SumBagSizes returns Σ_X |X| (≤ δ(𝒳)·|V|).
func (c *Cover) SumBagSizes() int {
	s := 0
	for _, bag := range c.bags {
		s += len(bag)
	}
	return s
}

// Contains reports whether vertex v belongs to bag i, via the
// Storing-Theorem structure (constant time).
func (c *Cover) Contains(i int, v graph.V) bool {
	_, ok := c.memberStore().Get([]int{i, v})
	return ok
}

// NextInBag returns the smallest member b′ ≥ b of bag i, using the
// successor lookup of the Storing Theorem.
func (c *Cover) NextInBag(i int, b graph.V) (graph.V, bool) {
	key, _, ok := c.memberStore().NextGeq([]int{i, b})
	if !ok || key[0] != i {
		return 0, false
	}
	return key[1], true
}

// ComputeKernels computes the p-kernels K_p(X) = {a ∈ X : N_p(a) ⊆ X} of
// every bag (Lemma 5.7: a multi-source BFS from the bag boundary inside
// G[X]) and indexes them for constant-time membership and successor
// queries. p must be ≤ R.
func (c *Cover) ComputeKernels(p int) {
	if p < 0 || p > c.R {
		panic(fmt.Sprintf("cover: kernel radius %d outside [0, %d]", p, c.R))
	}
	c.kernelP = p
	c.kernels = make([][]graph.V, len(c.bags))
	c.kernelOf = make([][]int32, c.g.N())

	inBag := make([]int32, c.g.N()) // epoch marking: bag id, ~bag id = excluded
	depth := make([]int32, c.g.N())
	for i := range inBag {
		inBag[i] = -1
	}
	var queue []graph.V
	for i, bag := range c.bags {
		epoch := int32(i)
		excl := -epoch - 2 // distinct marker per bag, never the -1 init value
		for _, v := range bag {
			inBag[v] = epoch
		}
		// Boundary: bag vertices with a neighbor outside the bag; they are
		// at distance 1 from the complement.
		queue = queue[:0]
		for _, v := range bag {
			for _, w := range c.g.Neighbors(v) {
				if inBag[w] != epoch && inBag[w] != excl {
					queue = append(queue, v)
					depth[v] = 1
					break
				}
			}
		}
		for _, v := range queue {
			inBag[v] = excl
		}
		// BFS inside G[X]: a vertex at depth t has distance t to the
		// complement; the kernel is {distance > p}.
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if int(depth[v]) >= p {
				continue
			}
			for _, w := range c.g.Neighbors(v) {
				if inBag[w] == epoch {
					inBag[w] = excl
					depth[w] = depth[v] + 1
					queue = append(queue, int(w))
				}
			}
		}
		var kern []graph.V
		for _, v := range bag {
			if inBag[v] == epoch {
				kern = append(kern, v)
			}
		}
		c.kernels[i] = kern // bag is sorted, so kern is sorted
		for _, v := range kern {
			c.kernelOf[v] = append(c.kernelOf[v], int32(i))
		}
	}
}

// KernelP returns the kernel radius handed to ComputeKernels, or -1.
func (c *Cover) KernelP() int { return c.kernelP }

// Kernel returns the sorted p-kernel of bag i.
func (c *Cover) Kernel(i int) []graph.V { return c.kernels[i] }

// InKernel reports whether v ∈ K_p(X_i), in constant time (binary search
// over the ≤ δ(𝒳) kernel ids of v; the equivalent Storing-Theorem lookup
// backs KernelContains and is exercised by the tests).
func (c *Cover) InKernel(i int, v graph.V) bool {
	if c.kernelOf == nil {
		panic("cover: ComputeKernels has not been called")
	}
	ks := c.kernelOf[v]
	j := sort.Search(len(ks), func(j int) bool { return ks[j] >= int32(i) })
	return j < len(ks) && ks[j] == int32(i)
}

// KernelContains is InKernel served by the Storing-Theorem structure
// (built lazily), kept as the paper-faithful access path.
func (c *Cover) KernelContains(i int, v graph.V) bool {
	if c.kernelOf == nil {
		panic("cover: ComputeKernels has not been called")
	}
	if c.kernelStore == nil {
		u := c.g.N()
		if len(c.bags) > u {
			u = len(c.bags)
		}
		if u < 2 {
			u = 2
		}
		c.kernelStore = store.New(u, 2, Epsilon)
		for i, kern := range c.kernels {
			for _, v := range kern {
				c.kernelStore.Set([]int{i, v}, 1)
			}
		}
	}
	_, ok := c.kernelStore.Get([]int{i, v})
	return ok
}

// KernelsOf returns the sorted indices of bags whose kernel contains v.
func (c *Cover) KernelsOf(v graph.V) []int32 {
	if c.kernelOf == nil {
		panic("cover: ComputeKernels has not been called")
	}
	return c.kernelOf[v]
}

// Validate checks the cover axioms by brute force (test helper): every
// r-ball is inside the assigned bag, and every bag is inside the 2r-ball of
// its center. It returns the first violated condition.
func (c *Cover) Validate() error {
	bfs := graph.NewBFS(c.g)
	for a := 0; a < c.g.N(); a++ {
		x := c.Assign(a)
		if x < 0 || x >= len(c.bags) {
			return fmt.Errorf("vertex %d has no assigned bag", a)
		}
		for _, v := range bfs.Ball(a, c.R) {
			if !containsSorted(c.bags[x], int(v)) {
				return fmt.Errorf("N_%d(%d) ⊄ bag %d: vertex %d missing", c.R, a, x, v)
			}
		}
	}
	for i, bag := range c.bags {
		ball := bfs.Ball(c.centers[i], c.S)
		inBall := map[graph.V]bool{}
		for _, v := range ball {
			inBall[int(v)] = true
		}
		for _, v := range bag {
			if !inBall[v] {
				return fmt.Errorf("bag %d ⊄ N_%d(center %d)", i, c.S, c.centers[i])
			}
		}
	}
	return nil
}

func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}
