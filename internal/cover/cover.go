// Package cover implements (r,s)-neighborhood covers (Definition 4.3 and
// Theorem 4.4 of the paper) and bag kernels (Definition 5.6, Lemma 5.7).
//
// A cover is a collection of bags X ⊆ V such that every r-ball N_r(a) is
// contained in some bag, and every bag is contained in some s-ball
// N_s(c_X). We compute (r,2r)-covers greedily: scanning vertices in order,
// each still-uncovered vertex a contributes the bag N_{2r}(a) and covers
// every vertex of N_r(a). For every vertex b covered by center a we then
// have N_r(b) ⊆ N_{2r}(a), so the result is a valid (r,2r)-cover; its
// degree is measured rather than proven (Theorem 4.4's constructive bound
// relies on non-constructive class parameters — see DESIGN.md §3).
//
// Bag and kernel membership (including ordered successor queries inside a
// bag) are served by Storing-Theorem structures keyed by (bag, vertex), as
// in the paper's use of Theorem 3.1 after Theorem 4.4.
//
// # Parallel construction
//
// The expensive per-bag work — the 2r-ball BFS and the Lemma 5.7 boundary
// BFS that identifies the bag's r-interior — depends only on the graph and
// the chosen center, never on earlier bags. Only the *choice* of centers
// (the ascending scan over still-uncovered vertices) is sequential. With
// Options.Workers > 1, ComputeWith therefore speculates: it picks the next
// few plausible centers, computes their balls and interiors concurrently,
// and then commits results in ascending center order, discarding any
// speculation invalidated by an earlier commit. The committed center
// sequence is provably the greedy sequence, so the resulting cover is
// byte-identical to the sequential one (bags, centers, assignment, and
// kernels); the differential tests in this package and internal/core
// enforce that. ComputeKernels parallelizes trivially (one independent
// boundary BFS per bag, ordered fan-in).
package cover

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/store"
)

// Options tunes cover construction.
type Options struct {
	// Workers bounds the construction parallelism. 0 and 1 select the
	// sequential path; the parallel path (≥ 2) produces byte-identical
	// covers.
	Workers int
	// Obs, when non-nil, receives construction metrics: counters
	// cover.balls_computed / cover.balls_wasted, gauges cover.bags /
	// cover.degree, wall-time histograms cover.compute_ns /
	// cover.kernels_ns, and pool metrics under cover.pool.*. Nil disables
	// all recording at zero cost.
	Obs *obs.Registry
}

// Stats reports construction facts: parallelism used, speculation
// efficiency, and per-phase wall time.
type Stats struct {
	Workers       int           // workers used for Compute/ComputeKernels
	BallsComputed int           // ball+interior computations (incl. speculative)
	BallsWasted   int           // speculative computations discarded
	ComputeWall   time.Duration // wall time of ComputeWith
	KernelWall    time.Duration // wall time of ComputeKernels
}

// Cover is an (R, 2R)-neighborhood cover of a colored graph.
type Cover struct {
	g *graph.Graph
	// R is the cover radius r; S = 2R bounds the bag radius.
	R, S int

	bags     [][]graph.V // sorted vertex lists
	centers  []graph.V   // c_X with X ⊆ N_S(c_X)
	assign   []int32     // 𝒳(a): index of the canonical bag covering N_R(a)
	memberOf [][]int32   // sorted bag indices containing each vertex

	// members is the lazily built Storing-Theorem structure
	// (bag, vertex) ↦ 1, the paper's f_𝒳. Atomic pointer + mutex instead
	// of a sync.Once so the mutation path can *peek* (Load) without racing
	// a concurrent reader's first build, and Patch can install a cloned,
	// delta-updated store in the copied cover.
	members   atomic.Pointer[store.Store]
	membersMu sync.Mutex

	kernelP       int                         // radius of the computed kernels (-1 = none)
	kernels       [][]graph.V                 // p-kernel per bag, sorted
	kernelStore   atomic.Pointer[store.Store] // (bag, vertex) ↦ 1 for kernel membership
	kernelStoreMu sync.Mutex
	kernelOf      [][]int32 // sorted bag indices whose kernel contains v

	pool   *par.Pool
	stats  Stats
	obsReg *obs.Registry // nil when unobserved
}

// Epsilon is the trie parameter handed to the Storing-Theorem structures.
const Epsilon = 0.25

// Compute builds an (r, 2r)-neighborhood cover of g sequentially. It is
// ComputeWith with Options{Workers: 1}.
func Compute(g *graph.Graph, r int) *Cover {
	return ComputeWith(g, r, Options{Workers: 1})
}

// ComputeWith builds an (r, 2r)-neighborhood cover of g with the given
// options. The result is independent of Workers.
func ComputeWith(g *graph.Graph, r int, opt Options) *Cover {
	if r < 1 {
		panic(fmt.Sprintf("cover: radius %d < 1", r))
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	start := time.Now()
	c := &Cover{g: g, R: r, S: 2 * r, kernelP: -1, pool: par.NewPool(workers), obsReg: opt.Obs}
	c.pool = c.pool.WithMetrics(par.NewMetrics(opt.Obs, "cover.pool"))
	c.stats.Workers = c.pool.Workers()
	c.assign = make([]int32, g.N())
	for i := range c.assign {
		c.assign[i] = -1
	}
	if c.pool.Workers() > 1 && g.N() > 1 {
		c.computeSpeculative()
	} else {
		c.computeSequential()
	}
	c.stats.BallsWasted = c.stats.BallsComputed - len(c.bags)
	c.buildMembership()
	c.stats.ComputeWall = time.Since(start)
	if reg := c.obsReg; reg != nil {
		reg.Counter("cover.balls_computed").Add(int64(c.stats.BallsComputed))
		reg.Counter("cover.balls_wasted").Add(int64(c.stats.BallsWasted))
		reg.Gauge("cover.bags").Set(int64(len(c.bags)))
		reg.Gauge("cover.degree").Set(int64(c.Degree()))
		reg.Histogram("cover.compute_ns").Observe(c.stats.ComputeWall)
	}
	return c
}

// ballScratch is the per-worker state of one ball+interior computation:
// reusable BFS scratch plus epoch-marked membership arrays. mark[v] == ep
// means "in the current ball's interior", mark[v] == -ep "in the ball but
// within r of its boundary" (the excluded set of Lemma 5.7).
type ballScratch struct {
	bfs   *graph.BFS
	mark  []int32
	depth []int32
	queue []graph.V
	ep    int32
}

func newBallScratch(g *graph.Graph) *ballScratch {
	return &ballScratch{
		bfs:   graph.NewBFS(g),
		mark:  make([]int32, g.N()),
		depth: make([]int32, g.N()),
	}
}

// specResult is one speculative bag: the sorted 2r-ball of center and the
// subset of it whose r-ball stays inside (the vertices the bag covers).
type specResult struct {
	center   graph.V
	bag      []graph.V // sorted
	interior []graph.V
}

// ballAndInterior computes N_S(center) and its r-interior, exactly as one
// iteration of the sequential greedy loop does, using only sc-local state.
func (c *Cover) ballAndInterior(sc *ballScratch, center graph.V) specResult {
	sc.ep++
	ep := sc.ep
	ball := sc.bfs.Ball(center, c.S)
	vs := make([]graph.V, len(ball))
	for i, v := range ball {
		vs[i] = int(v)
		sc.mark[v] = ep
	}
	// Boundary: ball vertices with a neighbor outside the ball, at
	// distance 1 from the complement (Lemma 5.7).
	sc.queue = sc.queue[:0]
	for _, v := range vs {
		for _, w := range c.g.Neighbors(v) {
			if sc.mark[w] != ep {
				sc.queue = append(sc.queue, v)
				sc.depth[v] = 1
				break
			}
		}
	}
	for _, v := range sc.queue {
		sc.mark[v] = -ep
	}
	// BFS inside the ball: depth t ⇒ distance t to the complement; the
	// interior is {distance > r}.
	for head := 0; head < len(sc.queue); head++ {
		v := sc.queue[head]
		if int(sc.depth[v]) >= c.R {
			continue
		}
		for _, w := range c.g.Neighbors(v) {
			if sc.mark[w] == ep {
				sc.mark[w] = -ep
				sc.depth[w] = sc.depth[v] + 1
				sc.queue = append(sc.queue, int(w))
			}
		}
	}
	interior := make([]graph.V, 0, len(vs))
	for _, v := range vs {
		if sc.mark[v] == ep {
			interior = append(interior, v)
		}
	}
	sort.Ints(vs)
	return specResult{center: center, bag: vs, interior: interior}
}

// commit appends the bag and assigns its still-unassigned interior
// vertices, mirroring one sequential greedy iteration.
func (c *Cover) commit(res specResult) {
	bag := int32(len(c.bags))
	for _, v := range res.interior {
		if c.assign[v] < 0 {
			c.assign[v] = bag
		}
	}
	if c.assign[res.center] < 0 {
		// Degenerate: the center sits within r of its own bag boundary
		// (possible when the ball is shallow); it is still covered by its
		// own N_r ⊆ N_S(center) = the bag. Keep the direct assignment as
		// a safety net.
		c.assign[res.center] = bag
	}
	c.bags = append(c.bags, res.bag)
	c.centers = append(c.centers, res.center)
}

func (c *Cover) computeSequential() {
	sc := newBallScratch(c.g)
	for a := 0; a < c.g.N(); a++ {
		if c.assign[a] >= 0 {
			continue
		}
		c.stats.BallsComputed++
		c.commit(c.ballAndInterior(sc, a))
	}
}

// computeSpeculative is the parallel greedy cover. Invariant: every vertex
// below frontier is assigned. Each round speculates a batch of candidate
// centers — the current frontier plus further unassigned vertices spaced
// by an adaptive gap estimate — and computes their balls concurrently.
//
// The key to a useful hit rate is that ballAndInterior is a pure function
// of (graph, center): a speculated result is never stale, merely
// premature. Results are therefore kept in a cache keyed by center, and
// the frontier walk commits a cached result the moment its center becomes
// the smallest unassigned vertex — the exact greedy selection rule, which
// is what makes the parallel cover byte-identical to the sequential one.
// A cached result is wasted only if its center gets covered by an earlier
// bag first (it is evicted when the frontier passes it). The frontier
// itself is always speculated, so every round makes progress.
func (c *Cover) computeSpeculative() {
	n := c.g.N()
	scratches := make([]*ballScratch, c.pool.Workers())
	batch := c.pool.Workers()
	cache := make(map[graph.V]specResult, 2*batch)
	frontier := 0
	gap := 1
	prevCenter := -1
	cands := make([]graph.V, 0, batch)
	for {
		// Drain: commit cached results as their centers become greedy
		// centers; evict entries whose center got covered.
		for frontier < n {
			if c.assign[frontier] >= 0 {
				delete(cache, frontier)
				frontier++
				continue
			}
			res, ok := cache[frontier]
			if !ok {
				break
			}
			delete(cache, frontier)
			c.commit(res)
			// Track the observed center spacing so candidate gaps follow
			// the bag-size structure of the graph.
			if prevCenter >= 0 {
				gap = (gap + (frontier - prevCenter) + 1) / 2
			}
			prevCenter = frontier
		}
		if frontier == n {
			return
		}
		// The frontier is an uncached greedy center: speculate it plus
		// gap-spaced unassigned, uncached vertices after it.
		cands = append(cands[:0], frontier)
		pos := frontier
		for len(cands) < batch {
			next := pos + gap
			if next <= pos {
				next = pos + 1
			}
			for next < n {
				_, cached := cache[next]
				if c.assign[next] < 0 && !cached {
					break
				}
				next++
			}
			if next >= n {
				break
			}
			cands = append(cands, next)
			pos = next
		}
		results := make([]specResult, len(cands))
		local := cands
		c.pool.ForEachWorker(len(local), func(wk, i int) {
			if scratches[wk] == nil {
				scratches[wk] = newBallScratch(c.g)
			}
			results[i] = c.ballAndInterior(scratches[wk], local[i])
		})
		c.stats.BallsComputed += len(cands)
		for _, res := range results {
			cache[res.center] = res
		}
	}
}

func (c *Cover) buildMembership() {
	c.memberOf = make([][]int32, c.g.N())
	for i, bag := range c.bags {
		for _, v := range bag {
			c.memberOf[v] = append(c.memberOf[v], int32(i))
		}
	}
	// Bags are created in increasing center order and each bag list is
	// appended once, so memberOf lists are already sorted. The
	// Storing-Theorem structure behind Contains/NextInBag is built lazily
	// on first use (many consumers only need Assign/Bag/kernels).
}

// memberStore lazily builds the Storing-Theorem membership structure.
// Double-checked locking makes the lazy initialization safe for concurrent
// readers (Contains/NextInBag may be called from parallel query threads).
// A store installed by FromParts or Patch before first use short-circuits
// the build.
func (c *Cover) memberStore() *store.Store {
	if m := c.members.Load(); m != nil {
		return m
	}
	c.membersMu.Lock()
	defer c.membersMu.Unlock()
	if m := c.members.Load(); m != nil {
		return m
	}
	u := c.g.N()
	if len(c.bags) > u {
		u = len(c.bags)
	}
	if u < 2 {
		u = 2
	}
	m := store.New(u, 2, Epsilon)
	for i, bag := range c.bags {
		for _, v := range bag {
			m.Set([]int{i, v}, 1)
		}
	}
	c.members.Store(m)
	return m
}

// Stats returns construction statistics.
func (c *Cover) Stats() Stats { return c.stats }

// NumBags returns |𝒳|.
func (c *Cover) NumBags() int { return len(c.bags) }

// Bag returns the sorted vertex list of bag i (shared; do not modify).
func (c *Cover) Bag(i int) []graph.V { return c.bags[i] }

// Center returns c_X for bag i, a vertex with X ⊆ N_{2R}(c_X).
func (c *Cover) Center(i int) graph.V { return c.centers[i] }

// Assign returns 𝒳(a), the index of the canonical bag containing N_R(a).
//
//fod:hotpath
func (c *Cover) Assign(a graph.V) int { return int(c.assign[a]) }

// BagsOf returns the sorted indices of all bags containing v.
func (c *Cover) BagsOf(v graph.V) []int32 { return c.memberOf[v] }

// Degree returns δ(𝒳) = max_a |{X : a ∈ X}|.
func (c *Cover) Degree() int {
	d := 0
	for _, bs := range c.memberOf {
		if len(bs) > d {
			d = len(bs)
		}
	}
	return d
}

// SumBagSizes returns Σ_X |X| (≤ δ(𝒳)·|V|).
func (c *Cover) SumBagSizes() int {
	s := 0
	for _, bag := range c.bags {
		s += len(bag)
	}
	return s
}

// Contains reports whether vertex v belongs to bag i, via the
// Storing-Theorem structure (constant time). Safe for concurrent use.
func (c *Cover) Contains(i int, v graph.V) bool {
	_, ok := c.memberStore().Get([]int{i, v})
	return ok
}

// NextInBag returns the smallest member b′ ≥ b of bag i, using the
// successor lookup of the Storing Theorem. Safe for concurrent use.
func (c *Cover) NextInBag(i int, b graph.V) (graph.V, bool) {
	key, _, ok := c.memberStore().NextGeq([]int{i, b})
	if !ok || key[0] != i {
		return 0, false
	}
	return key[1], true
}

// ComputeKernels computes the p-kernels K_p(X) = {a ∈ X : N_p(a) ⊆ X} of
// every bag (Lemma 5.7: a multi-source BFS from the bag boundary inside
// G[X]) and indexes them for constant-time membership and successor
// queries. p must be ≤ R. With a parallel cover the per-bag BFS runs
// concurrently (each bag's kernel depends only on the bag and the graph);
// the fan-in is ordered, so the kernels are identical to the sequential
// ones.
func (c *Cover) ComputeKernels(p int) {
	if p < 0 || p > c.R {
		panic(fmt.Sprintf("cover: kernel radius %d outside [0, %d]", p, c.R))
	}
	start := time.Now()
	c.kernelP = p
	c.kernels = make([][]graph.V, len(c.bags))
	c.kernelOf = make([][]int32, c.g.N())

	scratches := make([]*kernelScratch, c.pool.Workers())
	c.pool.ForEachWorker(len(c.bags), func(wk, i int) {
		if scratches[wk] == nil {
			scratches[wk] = newKernelScratch(c.g.N())
		}
		c.kernels[i] = c.bagKernel(scratches[wk], c.bags[i], p)
	})
	for i, kern := range c.kernels {
		for _, v := range kern {
			c.kernelOf[v] = append(c.kernelOf[v], int32(i))
		}
	}
	c.stats.KernelWall = time.Since(start)
	if reg := c.obsReg; reg != nil {
		reg.Histogram("cover.kernels_ns").Observe(c.stats.KernelWall)
	}
}

// kernelScratch is the per-worker state of bagKernel: epoch-marked bag
// membership (mark[v] == ep in bag, -ep excluded) plus the BFS queue.
type kernelScratch struct {
	mark  []int32
	depth []int32
	queue []graph.V
	ep    int32
}

func newKernelScratch(n int) *kernelScratch {
	return &kernelScratch{mark: make([]int32, n), depth: make([]int32, n)}
}

// bagKernel runs the Lemma 5.7 boundary BFS inside G[bag] and returns the
// sorted p-kernel.
func (c *Cover) bagKernel(sc *kernelScratch, bag []graph.V, p int) []graph.V {
	sc.ep++
	ep := sc.ep
	for _, v := range bag {
		sc.mark[v] = ep
	}
	// Boundary: bag vertices with a neighbor outside the bag; they are at
	// distance 1 from the complement.
	sc.queue = sc.queue[:0]
	for _, v := range bag {
		for _, w := range c.g.Neighbors(v) {
			if sc.mark[w] != ep && sc.mark[w] != -ep {
				sc.queue = append(sc.queue, v)
				sc.depth[v] = 1
				break
			}
		}
	}
	for _, v := range sc.queue {
		sc.mark[v] = -ep
	}
	// BFS inside G[X]: a vertex at depth t has distance t to the
	// complement; the kernel is {distance > p}.
	for head := 0; head < len(sc.queue); head++ {
		v := sc.queue[head]
		if int(sc.depth[v]) >= p {
			continue
		}
		for _, w := range c.g.Neighbors(v) {
			if sc.mark[w] == ep {
				sc.mark[w] = -ep
				sc.depth[w] = sc.depth[v] + 1
				sc.queue = append(sc.queue, int(w))
			}
		}
	}
	var kern []graph.V
	for _, v := range bag {
		if sc.mark[v] == ep {
			kern = append(kern, v)
		}
	}
	return kern // bag is sorted, so kern is sorted
}

// KernelP returns the kernel radius handed to ComputeKernels, or -1.
func (c *Cover) KernelP() int { return c.kernelP }

// Kernel returns the sorted p-kernel of bag i.
func (c *Cover) Kernel(i int) []graph.V { return c.kernels[i] }

// InKernel reports whether v ∈ K_p(X_i), in constant time (binary search
// over the ≤ δ(𝒳) kernel ids of v; the equivalent Storing-Theorem lookup
// backs KernelContains and is exercised by the tests).
//
//fod:hotpath
func (c *Cover) InKernel(i int, v graph.V) bool {
	if c.kernelOf == nil {
		panic("cover: ComputeKernels has not been called")
	}
	ks := c.kernelOf[v]
	j := sort.Search(len(ks), func(j int) bool { return ks[j] >= int32(i) })
	return j < len(ks) && ks[j] == int32(i)
}

// KernelContains is InKernel served by the Storing-Theorem structure
// (built lazily under a sync.Once, so concurrent readers are safe), kept
// as the paper-faithful access path.
func (c *Cover) KernelContains(i int, v graph.V) bool {
	if c.kernelOf == nil {
		panic("cover: ComputeKernels has not been called")
	}
	_, ok := c.kernelMemberStore().Get([]int{i, v})
	return ok
}

// kernelMemberStore lazily builds the Storing-Theorem kernel-membership
// structure; like memberStore it defers to a store installed by a
// snapshot restore or by Patch.
func (c *Cover) kernelMemberStore() *store.Store {
	if ks := c.kernelStore.Load(); ks != nil {
		return ks
	}
	c.kernelStoreMu.Lock()
	defer c.kernelStoreMu.Unlock()
	if ks := c.kernelStore.Load(); ks != nil {
		return ks
	}
	u := c.g.N()
	if len(c.bags) > u {
		u = len(c.bags)
	}
	if u < 2 {
		u = 2
	}
	ks := store.New(u, 2, Epsilon)
	for i, kern := range c.kernels {
		for _, v := range kern {
			ks.Set([]int{i, v}, 1)
		}
	}
	c.kernelStore.Store(ks)
	return ks
}

// MemberStore returns the Storing-Theorem bag-membership structure,
// building it if needed. The snapshot writer uses it to persist the trie.
func (c *Cover) MemberStore() *store.Store { return c.memberStore() }

// KernelStore returns the Storing-Theorem kernel-membership structure,
// building it if needed; ComputeKernels must have run.
func (c *Cover) KernelStore() *store.Store {
	if c.kernelOf == nil {
		panic("cover: ComputeKernels has not been called")
	}
	return c.kernelMemberStore()
}

// KernelsOf returns the sorted indices of bags whose kernel contains v.
//
//fod:hotpath
func (c *Cover) KernelsOf(v graph.V) []int32 {
	if c.kernelOf == nil {
		panic("cover: ComputeKernels has not been called")
	}
	return c.kernelOf[v]
}

// Validate checks the cover axioms by brute force (test helper): every
// r-ball is inside the assigned bag, and every bag is inside the 2r-ball of
// its center. It returns the first violated condition.
func (c *Cover) Validate() error {
	bfs := graph.NewBFS(c.g)
	for a := 0; a < c.g.N(); a++ {
		x := c.Assign(a)
		if x < 0 || x >= len(c.bags) {
			return fmt.Errorf("vertex %d has no assigned bag", a)
		}
		for _, v := range bfs.Ball(a, c.R) {
			if !containsSorted(c.bags[x], int(v)) {
				return fmt.Errorf("N_%d(%d) ⊄ bag %d: vertex %d missing", c.R, a, x, v)
			}
		}
	}
	for i, bag := range c.bags {
		ball := bfs.Ball(c.centers[i], c.S)
		inBall := map[graph.V]bool{}
		for _, v := range ball {
			inBall[int(v)] = true
		}
		for _, v := range bag {
			if !inBall[v] {
				return fmt.Errorf("bag %d ⊄ N_%d(center %d)", i, c.S, c.centers[i])
			}
		}
	}
	return nil
}

func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}
