package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format for colored graphs is line oriented:
//
//	graph <n> <ncolors>
//	e <u> <v>
//	c <v> <color>
//
// Blank lines and lines starting with '#' are ignored. Vertices are
// 0-based. This is the interchange format of the cmd/ tools.

// Write serializes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %d %d\n", g.N(), g.NumColors())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				fmt.Fprintf(bw, "e %d %d\n", v, u)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if cs := g.Colors(v); cs != nil {
			for c := 0; c < g.NumColors(); c++ {
				if cs.Has(c) {
					fmt.Fprintf(bw, "c %d %d\n", v, c)
				}
			}
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		f := strings.Fields(txt)
		switch f[0] {
		case "graph":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(f) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'graph <n> <ncolors>'", line)
			}
			n, err1 := strconv.Atoi(f[1])
			nc, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil || n < 0 || nc < 0 {
				return nil, fmt.Errorf("graph: line %d: bad header %q", line, txt)
			}
			b = NewBuilder(n, nc)
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			u, v, err := twoInts(f)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if u < 0 || u >= b.n || v < 0 || v >= b.n {
				return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
			}
			b.AddEdge(u, v)
		case "c":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: color before header", line)
			}
			v, c, err := twoInts(f)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if v < 0 || v >= b.n || c < 0 || c >= b.ncol {
				return nil, fmt.Errorf("graph: line %d: color (%d,%d) out of range", line, v, c)
			}
			b.SetColor(v, c)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing 'graph <n> <ncolors>' header")
	}
	return b.Build(), nil
}

func twoInts(f []string) (int, int, error) {
	if len(f) != 3 {
		return 0, 0, fmt.Errorf("want two integers, got %d fields", len(f)-1)
	}
	a, err := strconv.Atoi(f[1])
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(f[2])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
