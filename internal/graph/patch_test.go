package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// rebuildReference applies edits to an explicit edge/color model and
// rebuilds through the Builder — the ground truth Patch must match
// byte-for-byte.
func rebuildReference(g *Graph, edits []Edit) *Graph {
	type pair struct{ u, v V }
	edges := map[pair]bool{}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < int(w) {
				edges[pair{v, int(w)}] = true
			}
		}
	}
	colors := make([]map[Color]bool, g.N())
	for v := 0; v < g.N(); v++ {
		colors[v] = map[Color]bool{}
		for c := 0; c < g.NumColors(); c++ {
			if g.HasColor(v, c) {
				colors[v][c] = true
			}
		}
	}
	for _, e := range edits {
		switch e.Op {
		case AddEdge:
			if e.U != e.V {
				u, v := e.U, e.V
				if u > v {
					u, v = v, u
				}
				edges[pair{u, v}] = true
			}
		case RemoveEdge:
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			delete(edges, pair{u, v})
		case AddColor:
			colors[e.U][e.Color] = true
		case RemoveColor:
			delete(colors[e.U], e.Color)
		}
	}
	b := NewBuilder(g.N(), g.NumColors())
	for e := range edges { //fod:sorted — Builder sorts and dedups rows itself
		b.AddEdge(e.u, e.v)
	}
	for v, cs := range colors {
		for c := range cs { //fod:sorted — bitset writes commute
			b.SetColor(v, c)
		}
	}
	return b.Build()
}

func randomEdits(rng *rand.Rand, n, ncol, count int) []Edit {
	edits := make([]Edit, count)
	for i := range edits {
		op := EditOp(rng.Intn(4))
		e := Edit{Op: op, U: rng.Intn(n)}
		if op == AddEdge || op == RemoveEdge {
			e.V = rng.Intn(n)
		} else if ncol > 0 {
			e.Color = rng.Intn(ncol)
		} else {
			e.Op = AddEdge
			e.V = rng.Intn(n)
		}
		edits[i] = e
	}
	return edits
}

func graphsIdentical(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("dims: got n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	if !reflect.DeepEqual(got.off, want.off) {
		t.Fatalf("offset arrays differ")
	}
	if !reflect.DeepEqual(got.adj, want.adj) {
		t.Fatalf("adjacency arrays differ")
	}
	if !reflect.DeepEqual(got.colors, want.colors) {
		t.Fatalf("color sets differ: got %v want %v", got.colors, want.colors)
	}
}

// TestPatchDifferential: Patch ≡ rebuild-from-scratch on random edit
// batches, byte-for-byte (CSR arrays and color bitsets), across densities.
func TestPatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		ncol := rng.Intn(3)
		b := NewBuilder(n, ncol)
		for i := 0; i < rng.Intn(3*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for v := 0; v < n; v++ {
			for c := 0; c < ncol; c++ {
				if rng.Intn(3) == 0 {
					b.SetColor(v, c)
				}
			}
		}
		g := b.Build()
		edits := randomEdits(rng, n, ncol, 1+rng.Intn(8))
		got, err := Patch(g, edits)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		graphsIdentical(t, got, rebuildReference(g, edits))
	}
}

// TestPatchLeavesOriginal: the source graph is untouched by a patch, even
// through shared backing (copy-on-write discipline).
func TestPatchLeavesOriginal(t *testing.T) {
	b := NewBuilder(4, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetColor(2, 0)
	g := b.Build()
	snapAdj := append([]int32(nil), g.adj...)
	_, err := Patch(g, []Edit{
		{Op: RemoveEdge, U: 0, V: 1},
		{Op: AddEdge, U: 2, V: 3},
		{Op: AddColor, U: 0, Color: 0},
		{Op: RemoveColor, U: 2, Color: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.adj, snapAdj) {
		t.Fatal("patch mutated the source adjacency")
	}
	if g.HasColor(0, 0) || !g.HasColor(2, 0) {
		t.Fatal("patch mutated the source colors")
	}
}

// TestPatchNoOps: self-loops, re-adding present edges, removing absent
// ones, and add-then-remove pairs all net out exactly.
func TestPatchNoOps(t *testing.T) {
	b := NewBuilder(3, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	got, err := Patch(g, []Edit{
		{Op: AddEdge, U: 1, V: 1},    // self-loop
		{Op: AddEdge, U: 0, V: 1},    // present
		{Op: RemoveEdge, U: 1, V: 2}, // absent
		{Op: AddEdge, U: 0, V: 2},    // added…
		{Op: RemoveEdge, U: 2, V: 0}, // …then removed (later wins)
		{Op: RemoveEdge, U: 0, V: 1}, // removed…
		{Op: AddEdge, U: 1, V: 0},    // …then restored
	})
	if err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, got, g)
}

func TestPatchValidation(t *testing.T) {
	g := NewBuilder(3, 1).Build()
	for _, bad := range []Edit{
		{Op: AddEdge, U: -1, V: 0},
		{Op: AddEdge, U: 0, V: 3},
		{Op: AddColor, U: 0, Color: 1},
		{Op: AddColor, U: 3, Color: 0},
		{Op: EditOp(9), U: 0},
	} {
		if _, err := Patch(g, []Edit{bad}); err == nil {
			t.Fatalf("edit %+v: expected validation error", bad)
		}
	}
}

func TestEditOpRoundTrip(t *testing.T) {
	for _, op := range []EditOp{AddEdge, RemoveEdge, AddColor, RemoveColor} {
		got, err := ParseEditOp(op.String())
		if err != nil || got != op {
			t.Fatalf("round trip %v: got %v, %v", op, got, err)
		}
	}
	if _, err := ParseEditOp("bogus"); err == nil {
		t.Fatal("expected error for unknown op")
	}
}
