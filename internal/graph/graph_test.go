package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func ladder(n int) *Graph {
	b := NewBuilder(2*n, 1)
	for i := 0; i < n; i++ {
		b.AddEdge(2*i, 2*i+1)
		if i+1 < n {
			b.AddEdge(2*i, 2*(i+1))
			b.AddEdge(2*i+1, 2*(i+1)+1)
		}
		b.SetColor(2*i, 0)
	}
	return b.Build()
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(3, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2) // self-loop dropped
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.Degree(2) != 0 {
		t.Fatal("self-loop not dropped")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge symmetry broken")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 5) || g.HasEdge(-1, 0) {
		t.Fatal("phantom edges")
	}
}

func TestNeighborsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(50, 0)
	for i := 0; i < 200; i++ {
		b.AddEdge(rng.Intn(50), rng.Intn(50))
	}
	g := b.Build()
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(v)
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				t.Fatalf("vertex %d: neighbors not strictly sorted: %v", v, ns)
			}
		}
	}
}

func TestBFSBall(t *testing.T) {
	g := ladder(10)
	bfs := NewBFS(g)
	ball := bfs.Ball(0, 2)
	want := map[V]int{0: 0, 1: 1, 2: 1, 3: 2, 4: 2}
	if len(ball) != len(want) {
		t.Fatalf("ball = %v", ball)
	}
	for _, v := range ball {
		if bfs.Dist(int(v)) != want[int(v)] {
			t.Fatalf("dist(%d) = %d, want %d", v, bfs.Dist(int(v)), want[int(v)])
		}
	}
}

func TestBFSDistanceTruncation(t *testing.T) {
	g := ladder(20)
	bfs := NewBFS(g)
	if d := bfs.Distance(0, 38, 5); d != -1 {
		t.Fatalf("truncated distance should be -1, got %d", d)
	}
	if d := bfs.Distance(0, 4, 5); d != 2 {
		t.Fatalf("distance(0,4) = %d, want 2", d)
	}
	if d := bfs.Distance(7, 7, 0); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestBallMulti(t *testing.T) {
	g := ladder(10)
	bfs := NewBFS(g)
	ball := bfs.BallMulti([]V{0, 18}, 1)
	seen := map[V]bool{}
	for _, v := range ball {
		seen[int(v)] = true
	}
	for _, v := range []V{0, 1, 2, 18, 19, 16} {
		if !seen[v] {
			t.Fatalf("vertex %d missing from multi-ball: %v", v, ball)
		}
	}
}

func TestInduceMapping(t *testing.T) {
	g := ladder(5)
	sub := Induce(g, []V{4, 2, 0, 2}) // unsorted with duplicate
	if sub.G.N() != 3 {
		t.Fatalf("|sub| = %d", sub.G.N())
	}
	if sub.Orig[0] != 0 || sub.Orig[1] != 2 || sub.Orig[2] != 4 {
		t.Fatalf("Orig = %v", sub.Orig)
	}
	if sub.Local(2) != 1 || sub.Local(3) != -1 {
		t.Fatal("Local mapping wrong")
	}
	// Edges 0–2 and 2–4 exist in the ladder's even rail.
	if !sub.G.HasEdge(0, 1) || !sub.G.HasEdge(1, 2) || sub.G.HasEdge(0, 2) {
		t.Fatal("induced edges wrong")
	}
	// Colors carry over: even originals are colored.
	for i, o := range sub.Orig {
		if sub.G.HasColor(i, 0) != g.HasColor(o, 0) {
			t.Fatalf("color mismatch at local %d", i)
		}
	}
}

func TestRemoveVertex(t *testing.T) {
	g := ladder(3)
	sub := RemoveVertex(g, 2)
	if sub.G.N() != 5 || sub.Contains(2) {
		t.Fatal("vertex not removed")
	}
	// 0 was adjacent to 2; in the remainder 0 keeps only edge to 1.
	l0 := sub.Local(0)
	if sub.G.Degree(l0) != 1 {
		t.Fatalf("degree of 0 after removal = %d", sub.G.Degree(l0))
	}
}

func TestAddColors(t *testing.T) {
	g := ladder(4)
	g2 := AddColors(g, []V{1, 3}, []V{0})
	if g2.NumColors() != 3 {
		t.Fatalf("colors = %d", g2.NumColors())
	}
	if !g2.HasColor(1, 1) || !g2.HasColor(3, 1) || g2.HasColor(2, 1) {
		t.Fatal("first new class wrong")
	}
	if !g2.HasColor(0, 2) || g2.HasColor(1, 2) {
		t.Fatal("second new class wrong")
	}
	if !g2.HasColor(0, 0) {
		t.Fatal("old colors lost")
	}
	if g2.M() != g.M() {
		t.Fatal("edges changed")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	g := b.Build()
	comps := ConnectedComponents(g)
	if len(comps) != 4 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][2] != 2 {
		t.Fatalf("first component = %v", comps[0])
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g := ladder(6)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() || h.NumColors() != g.NumColors() {
		t.Fatalf("shape mismatch: %v vs %v", h, g)
	}
	for v := 0; v < g.N(); v++ {
		if h.Degree(v) != g.Degree(v) || h.HasColor(v, 0) != g.HasColor(v, 0) {
			t.Fatalf("vertex %d mismatch", v)
		}
	}
}

func TestGraphReadErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"e 0 1",
		"graph 2 0\ne 0 5",
		"graph 2 0\nc 0 0",
		"graph x y",
		"graph 2 1\nbogus 1 2",
		"graph 2 0\ngraph 2 0",
	} {
		if _, err := Read(bytes.NewBufferString(src)); err == nil {
			t.Errorf("Read(%q): expected error", src)
		}
	}
}

// TestQuickBFSDistanceSymmetric: distance is symmetric on random graphs.
func TestQuickBFSDistanceSymmetric(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		bld := NewBuilder(n, 0)
		for i := 0; i < 45; i++ {
			bld.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := bld.Build()
		bfs := NewBFS(g)
		x, y := int(a)%n, int(b)%n
		return bfs.Distance(x, y, n) == bfs.Distance(y, x, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInducePreservesDistances: distances in an induced ball around a
// vertex agree with global distances up to the ball radius.
func TestQuickInducePreservesDistances(t *testing.T) {
	f := func(seed int64, src uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		bld := NewBuilder(n, 0)
		for i := 0; i < 60; i++ {
			bld.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := bld.Build()
		bfs := NewBFS(g)
		s := int(src) % n
		const r = 3
		ball := bfs.Ball(s, r)
		vs := make([]V, len(ball))
		dists := map[V]int{}
		for i, v := range ball {
			vs[i] = int(v)
			dists[int(v)] = bfs.Dist(int(v))
		}
		sub := Induce(g, vs)
		sbfs := NewBFS(sub.G)
		ls := sub.Local(s)
		for _, v := range vs {
			if got := sbfs.Distance(ls, sub.Local(v), r); got != dists[v] {
				return false
			}
			// Distance state is per-search; recompute next iteration.
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !b.Has(i) {
			t.Fatalf("bit %d missing", i)
		}
	}
	if b.Has(1) || b.Has(128) {
		t.Fatal("phantom bits")
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("clear failed")
	}
	c := b.Clone()
	c.Set(5)
	if b.Has(5) {
		t.Fatal("clone aliases original")
	}
	if NewBitset(10).Empty() != true || b.Empty() {
		t.Fatal("Empty wrong")
	}
	var nilSet Bitset
	if nilSet.Has(3) {
		t.Fatal("nil bitset should be empty")
	}
}
