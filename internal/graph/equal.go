package graph

// Equal reports whether a and b are the same labeled graph: identical
// vertex count, edge multiset and color assignment. It is an exact O(n+m)
// comparison — no fingerprint hashing, so no collision risk — used by the
// low-degree engine to detect edit batches that net out to the identity
// (Patch always returns a fresh copy, so pointer equality cannot tell).
func Equal(a, b *Graph) bool {
	if a == b {
		return true
	}
	if a.N() != b.N() || a.M() != b.M() || a.NumColors() != b.NumColors() {
		return false
	}
	n := a.N()
	for v := 0; v < n; v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	ncol := a.NumColors()
	for v := 0; v < n; v++ {
		for c := 0; c < ncol; c++ {
			if a.HasColor(v, Color(c)) != b.HasColor(v, Color(c)) {
				return false
			}
		}
	}
	return true
}
