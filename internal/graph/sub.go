package graph

import "sort"

// Sub is an induced substructure G[B] (Section 2 of the paper) together with
// the vertex renaming between G and the substructure. Local vertices are
// 0..len(Orig)-1 and Orig maps them back to vertices of the parent graph;
// the local order agrees with the parent order (Orig is increasing), so
// lexicographic reasoning transfers between the two.
type Sub struct {
	G    *Graph
	Orig []V // local -> parent, strictly increasing
}

// IdentitySub returns the trivial substructure covering all of g, sharing
// g's storage (no copy).
func IdentitySub(g *Graph) *Sub {
	orig := make([]V, g.N())
	for i := range orig {
		orig[i] = i
	}
	return &Sub{G: g, Orig: orig}
}

// Induce returns the induced substructure G[vs]. The vertex set vs may be in
// any order and may contain duplicates; extra colors (if any) carry over.
// When vs covers the whole graph the result shares g's storage.
func Induce(g *Graph, vs []V) *Sub {
	if len(vs) >= g.N() {
		seen := make([]bool, g.N())
		distinct := 0
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				distinct++
			}
		}
		if distinct == g.N() {
			return IdentitySub(g)
		}
	}
	return induceProper(g, vs)
}

func induceProper(g *Graph, vs []V) *Sub {
	orig := append([]V(nil), vs...)
	sort.Ints(orig)
	orig = dedupInts(orig)
	toLocal := make(map[V]int, len(orig))
	for i, v := range orig {
		toLocal[v] = i
	}
	b := NewBuilder(len(orig), g.NumColors())
	for i, v := range orig {
		for _, w := range g.Neighbors(v) {
			if j, ok := toLocal[int(w)]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
		if cs := g.Colors(v); cs != nil {
			for c := 0; c < g.NumColors(); c++ {
				if cs.Has(c) {
					b.SetColor(i, c)
				}
			}
		}
	}
	return &Sub{G: b.Build(), Orig: orig}
}

// Local returns the local index of parent vertex v, or -1 if v is not in the
// substructure. It runs in O(log |Sub|).
func (s *Sub) Local(v V) int {
	i := sort.SearchInts(s.Orig, v)
	if i < len(s.Orig) && s.Orig[i] == v {
		return i
	}
	return -1
}

// Contains reports whether parent vertex v belongs to the substructure.
func (s *Sub) Contains(v V) bool { return s.Local(v) >= 0 }

// RemoveVertex returns G with vertex s deleted (used for the splitter-game
// recursion, where Splitter's answer s_X is removed from a bag), keeping the
// same vertex numbering convention via a Sub.
func RemoveVertex(g *Graph, s V) *Sub {
	vs := make([]V, 0, g.N()-1)
	for v := 0; v < g.N(); v++ {
		if v != s {
			vs = append(vs, v)
		}
	}
	return Induce(g, vs)
}

// AddColors returns a copy of g with extra color classes appended: the new
// graph has g.NumColors()+len(classes) colors, where class i colors exactly
// the vertices in classes[i] with color g.NumColors()+i. This implements the
// recolorings ("σ'-expansions") used throughout Sections 4 and 5.
func AddColors(g *Graph, classes ...[]V) *Graph {
	nc := g.NumColors() + len(classes)
	b := NewBuilder(g.N(), nc)
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < int(w) {
				b.AddEdge(v, int(w))
			}
		}
		if cs := g.Colors(v); cs != nil {
			for c := 0; c < g.NumColors(); c++ {
				if cs.Has(c) {
					b.SetColor(v, c)
				}
			}
		}
	}
	for i, class := range classes {
		for _, v := range class {
			b.SetColor(v, g.NumColors()+i)
		}
	}
	return b.Build()
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i > 0 && x == xs[i-1] {
			continue
		}
		out = append(out, x)
	}
	return out
}
