package graph

// BFS holds reusable scratch space for truncated breadth-first searches on a
// single graph. It is not safe for concurrent use; create one per goroutine.
type BFS struct {
	g     *Graph
	dist  []int32 // -1 = unvisited in the current epoch
	epoch []int32
	cur   int32
	queue []int32
}

// NewBFS returns a BFS scratch for g.
func NewBFS(g *Graph) *BFS {
	return &BFS{
		g:     g,
		dist:  make([]int32, g.N()),
		epoch: make([]int32, g.N()),
		cur:   0,
	}
}

// Ball computes N_r(src): all vertices at distance ≤ r from src, in BFS
// order (hence sorted by distance, ties by discovery). The returned slice is
// valid until the next call on this BFS. Dist may be called on the returned
// vertices afterwards (before the next search).
func (b *BFS) Ball(src V, r int) []int32 {
	return b.BallMulti([]V{src}, r)
}

// BallMulti computes N_r(ā) = ∪_i N_r(a_i) for a tuple of sources.
func (b *BFS) BallMulti(srcs []V, r int) []int32 {
	b.cur++
	// Work on a local slice and write it back once: appends to a plain
	// local stay on the stack-friendly growth path, and the scratch is
	// amortized across calls exactly as before.
	q := b.queue[:0]
	for _, s := range srcs {
		if b.epoch[s] == b.cur {
			continue
		}
		b.epoch[s] = b.cur
		b.dist[s] = 0
		q = append(q, int32(s))
	}
	for head := 0; head < len(q); head++ {
		v := q[head]
		d := b.dist[v]
		if int(d) >= r {
			continue
		}
		for _, w := range b.g.Neighbors(int(v)) {
			if b.epoch[w] == b.cur {
				continue
			}
			b.epoch[w] = b.cur
			b.dist[w] = d + 1
			q = append(q, w)
		}
	}
	b.queue = q
	return q
}

// Dist returns the distance from the sources of the last search to v, or -1
// if v was not reached within the radius.
func (b *BFS) Dist(v V) int {
	if b.epoch[v] != b.cur {
		return -1
	}
	return int(b.dist[v])
}

// Distance returns dist_G(u, v) truncated at max: it returns the true
// distance if it is ≤ max, and -1 otherwise. It overwrites the scratch of
// any previous search.
func (b *BFS) Distance(u, v V, max int) int {
	if u == v {
		return 0
	}
	b.Ball(u, max)
	return b.Dist(v)
}

// FarthestWithin returns a vertex of N_r(src) at maximal distance from src,
// together with that distance. It is used by center-finding heuristics.
func (b *BFS) FarthestWithin(src V, r int) (V, int) {
	ball := b.Ball(src, r)
	last := ball[len(ball)-1]
	return int(last), int(b.dist[last])
}
