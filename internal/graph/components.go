package graph

import "sort"

// ConnectedComponents returns the vertex sets of the connected components of
// g, each sorted increasingly, ordered by smallest vertex.
func ConnectedComponents(g *Graph) [][]V {
	seen := make([]bool, g.N())
	var comps [][]V
	var stack []V
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], s)
		comp := []V{}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, int(w))
				}
			}
		}
		// DFS order is not sorted; restore vertex order.
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsEdgeless reports whether the graph has no edges (the base case λ=1 of
// the splitter-game inductions in Sections 4.2 and 5.2).
func IsEdgeless(g *Graph) bool { return g.M() == 0 }
