// Package graph implements finite colored graphs in the sense of Section 2
// of Schweikardt, Segoufin & Vigny, "Enumeration for FO Queries over Nowhere
// Dense Graphs": structures over the schema σ_c = {E, C_1, …, C_c} with a
// symmetric binary relation E and unary color relations C_i.
//
// Vertices are the integers 0..n-1, so the natural linear order on the
// domain required by the paper is the integer order. Adjacency lists are
// stored sorted, giving O(log deg) edge tests and deterministic iteration.
package graph

import (
	"fmt"
	"sort"
)

// V is a vertex identifier. Vertices of a graph with n vertices are exactly
// 0..n-1; the paper's linear order on the domain is the order on V.
type V = int

// Color identifies one of the unary color relations C_0..C_{c-1}.
type Color = int

// Graph is an immutable colored graph. Build one with a Builder.
type Graph struct {
	n      int
	m      int // number of undirected edges
	off    []int32
	adj    []int32 // concatenated sorted adjacency lists
	ncol   int
	colors []Bitset // colors[v] = set of colors of vertex v (nil if none)
}

// Builder accumulates vertices, edges and colors and produces a Graph.
// Duplicate edges and self-loops are ignored.
type Builder struct {
	n    int
	ncol int
	us   []int32
	vs   []int32
	cols map[V][]Color
}

// NewBuilder returns a builder for a graph with n vertices and ncolors
// available colors.
func NewBuilder(n, ncolors int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{n: n, ncol: ncolors, cols: make(map[V][]Color)}
}

// AddEdge records the undirected edge {u, v}. Self-loops are dropped.
func (b *Builder) AddEdge(u, v V) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// SetColor adds color c to vertex v.
func (b *Builder) SetColor(v V, c Color) {
	if v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, b.n))
	}
	if c < 0 || c >= b.ncol {
		panic(fmt.Sprintf("graph: color %d out of range [0,%d)", c, b.ncol))
	}
	b.cols[v] = append(b.cols[v], c)
}

// N returns the number of vertices the builder was created with.
func (b *Builder) N() int { return b.n }

// Build finalizes the graph. The builder may not be reused afterwards.
func (b *Builder) Build() *Graph {
	deg := make([]int32, b.n+1)
	for i := range b.us {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	for i := 1; i <= b.n; i++ {
		deg[i] += deg[i-1]
	}
	adj := make([]int32, deg[b.n])
	pos := make([]int32, b.n)
	copy(pos, deg[:b.n])
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		adj[pos[u]] = v
		pos[u]++
		adj[pos[v]] = u
		pos[v]++
	}
	// Sort and deduplicate each list in place, compacting the storage.
	g := &Graph{n: b.n, ncol: b.ncol}
	g.off = make([]int32, b.n+1)
	out := adj[:0]
	for v := 0; v < b.n; v++ {
		lo, hi := deg[v], deg[v+1]
		lst := adj[lo:hi]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		start := len(out)
		for i, w := range lst {
			if i > 0 && w == lst[i-1] {
				continue
			}
			out = append(out, w)
		}
		g.off[v] = int32(start)
		g.off[v+1] = int32(len(out))
	}
	g.adj = out
	g.m = len(out) / 2
	g.colors = make([]Bitset, b.n)
	//fod:sorted — each key fills its own g.colors slot; order-free
	for v, cs := range b.cols {
		bs := NewBitset(b.ncol)
		for _, c := range cs {
			bs.Set(c)
		}
		g.colors[v] = bs
	}
	return g
}

// N returns the number of vertices |G|.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Size returns ‖G‖ = |V| + |E|, the encoding size used by the paper.
func (g *Graph) Size() int { return g.n + g.m }

// NumColors returns the number of available colors c of the schema σ_c.
func (g *Graph) NumColors() int { return g.ncol }

// Degree returns the degree of v.
func (g *Graph) Degree(v V) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v V) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// HasEdge reports whether {u, v} ∈ E(G).
func (g *Graph) HasEdge(u, v V) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

// HasColor reports whether v ∈ C_c(G).
func (g *Graph) HasColor(v V, c Color) bool {
	if v < 0 || v >= g.n || g.colors[v] == nil {
		return false
	}
	return g.colors[v].Has(c)
}

// Colors returns the color set of v (may be nil).
func (g *Graph) Colors(v V) Bitset { return g.colors[v] }

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if dv := g.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// String returns a short description, e.g. "graph(n=10, m=9, c=2)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, c=%d)", g.n, g.m, g.ncol)
}
