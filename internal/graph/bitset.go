package graph

// Bitset is a fixed-capacity set of small non-negative integers, used for
// vertex color sets. A nil Bitset behaves as the empty set for Has.
type Bitset []uint64

// NewBitset returns a bitset able to hold values in [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set adds i to the set.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (b Bitset) Has(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<uint(i&63)) != 0
}

// Clone returns a copy of the set.
func (b Bitset) Clone() Bitset {
	if b == nil {
		return nil
	}
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Empty reports whether the set has no elements.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}
