package graph

import "fmt"

// Parts is the flat serialized form of a Graph: the CSR adjacency and the
// color bitsets split into fixed-width columns. The slices alias the
// graph's storage — treat them as read-only.
type Parts struct {
	N       int
	NColors int
	Off     []int32 // len N+1
	Adj     []int32 // concatenated sorted adjacency lists
	// ColorOff[v+1]-ColorOff[v] is the number of bitset words of vertex v:
	// 0 for an uncolored vertex, ⌈NColors/64⌉ otherwise.
	ColorOff   []int32
	ColorWords []uint64
}

// Parts returns the serialized form of the graph.
func (g *Graph) Parts() Parts {
	p := Parts{N: g.n, NColors: g.ncol, Off: g.off, Adj: g.adj, ColorOff: make([]int32, g.n+1)}
	total := 0
	for v := 0; v < g.n; v++ {
		total += len(g.colors[v])
		p.ColorOff[v+1] = int32(total)
	}
	p.ColorWords = make([]uint64, 0, total)
	for v := 0; v < g.n; v++ {
		p.ColorWords = append(p.ColorWords, g.colors[v]...)
	}
	return p
}

// FromParts reconstructs a Graph from its serialized form, validating the
// CSR invariants the query paths rely on: sorted loop-free adjacency
// lists over [0,N), symmetric edges, and per-vertex color rows of the
// exact bitset width. A corrupted snapshot yields an error, never a
// malformed graph.
func FromParts(p Parts) (*Graph, error) {
	if p.N < 0 || p.NColors < 0 {
		return nil, fmt.Errorf("graph: snapshot has n=%d, colors=%d", p.N, p.NColors)
	}
	n := p.N
	if len(p.Off) != n+1 || p.Off[0] != 0 || int(p.Off[n]) != len(p.Adj) {
		return nil, fmt.Errorf("graph: snapshot offsets malformed")
	}
	for v := 0; v < n; v++ {
		if p.Off[v] > p.Off[v+1] {
			return nil, fmt.Errorf("graph: offsets of vertex %d out of order", v)
		}
		prev := int32(-1)
		for _, w := range p.Adj[p.Off[v]:p.Off[v+1]] {
			if w <= prev || int(w) >= n || int(w) == v {
				return nil, fmt.Errorf("graph: adjacency list of vertex %d not a sorted loop-free vertex list", v)
			}
			prev = w
		}
	}
	if len(p.Adj)%2 != 0 {
		return nil, fmt.Errorf("graph: odd arc count %d cannot be symmetric", len(p.Adj))
	}
	g := &Graph{n: n, m: len(p.Adj) / 2, ncol: p.NColors, off: p.Off, adj: p.Adj}
	// Symmetry in O(n+m): lists are sorted, so for a fixed w the forward
	// arcs (v,w) with v<w arrive in increasing v — exactly the order of
	// the sub-w prefix of w's list. A cursor per vertex matches them up.
	cur := make([]int32, n)
	for v := 0; v < n; v++ {
		for _, w := range p.Adj[p.Off[v]:p.Off[v+1]] {
			if int32(v) >= w {
				continue
			}
			c := p.Off[w] + cur[w]
			if c >= p.Off[w+1] || p.Adj[c] != int32(v) {
				return nil, fmt.Errorf("graph: arc %d→%d has no reverse arc", v, w)
			}
			cur[w]++
		}
	}
	for w := 0; w < n; w++ {
		if c := p.Off[w] + cur[w]; c < p.Off[w+1] && p.Adj[c] < int32(w) {
			return nil, fmt.Errorf("graph: arc %d→%d has no reverse arc", p.Adj[c], w)
		}
	}
	wpc := (p.NColors + 63) / 64
	if len(p.ColorOff) != n+1 || p.ColorOff[0] != 0 || int(p.ColorOff[n]) != len(p.ColorWords) {
		return nil, fmt.Errorf("graph: snapshot color offsets malformed")
	}
	g.colors = make([]Bitset, n)
	for v := 0; v < n; v++ {
		lo, hi := p.ColorOff[v], p.ColorOff[v+1]
		if lo > hi || int(hi) > len(p.ColorWords) {
			return nil, fmt.Errorf("graph: color offsets of vertex %d out of order", v)
		}
		switch int(hi - lo) {
		case 0:
		case wpc:
			if wpc > 0 {
				g.colors[v] = Bitset(p.ColorWords[lo:hi])
			}
		default:
			return nil, fmt.Errorf("graph: color row of vertex %d has %d words, want 0 or %d", v, hi-lo, wpc)
		}
	}
	return g, nil
}
