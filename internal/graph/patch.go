package graph

import (
	"fmt"
	"sort"
)

// EditOp is one kind of graph mutation.
type EditOp uint8

const (
	// AddEdge inserts the undirected edge {U, V}. Inserting an existing
	// edge or a self-loop is a no-op (mirroring Builder.AddEdge).
	AddEdge EditOp = iota
	// RemoveEdge deletes the undirected edge {U, V}; absent edges are a
	// no-op.
	RemoveEdge
	// AddColor adds color Color to vertex U (V is ignored).
	AddColor
	// RemoveColor removes color Color from vertex U (V is ignored).
	RemoveColor
)

// String returns the wire name of the operation ("add_edge", …).
func (op EditOp) String() string {
	switch op {
	case AddEdge:
		return "add_edge"
	case RemoveEdge:
		return "remove_edge"
	case AddColor:
		return "add_color"
	case RemoveColor:
		return "remove_color"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ParseEditOp inverts EditOp.String.
func ParseEditOp(s string) (EditOp, error) {
	switch s {
	case "add_edge":
		return AddEdge, nil
	case "remove_edge":
		return RemoveEdge, nil
	case "add_color":
		return AddColor, nil
	case "remove_color":
		return RemoveColor, nil
	}
	return 0, fmt.Errorf("graph: unknown edit op %q", s)
}

// Edit is one mutation of a colored graph. The vertex set is fixed: edits
// change edges and colors, never |V|, so vertex ids (and with them every
// lexicographic guarantee of the enumeration layer) are stable across
// versions.
type Edit struct {
	Op   EditOp
	U, V V
	// Color is the color relation touched by AddColor/RemoveColor.
	Color Color
}

// Validate checks the edit against the dimensions of g.
func (e Edit) Validate(g *Graph) error {
	switch e.Op {
	case AddEdge, RemoveEdge:
		if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
			return fmt.Errorf("graph: edit %s(%d,%d) out of range [0,%d)", e.Op, e.U, e.V, g.n)
		}
	case AddColor, RemoveColor:
		if e.U < 0 || e.U >= g.n {
			return fmt.Errorf("graph: edit %s vertex %d out of range [0,%d)", e.Op, e.U, g.n)
		}
		if e.Color < 0 || e.Color >= g.ncol {
			return fmt.Errorf("graph: edit %s color %d out of range [0,%d)", e.Op, e.Color, g.ncol)
		}
	default:
		return fmt.Errorf("graph: unknown edit op %d", e.Op)
	}
	return nil
}

// Touched returns the vertices whose incident structure the edit changes
// (both endpoints for edges, the vertex for colors).
func (e Edit) Touched() []V {
	if e.Op == AddEdge || e.Op == RemoveEdge {
		return []V{e.U, e.V}
	}
	return []V{e.U}
}

// Patch applies edits to g and returns the resulting graph, leaving g
// untouched (copy-on-write: adjacency rows of unaffected vertices are
// copied verbatim, so the cost is O(‖G‖ + Σ deg(touched))). The result is
// byte-identical to rebuilding the same edge/color sets through a Builder:
// adjacency lists stay sorted and deduplicated, so graph fingerprints and
// every downstream structure built on the patched graph agree with a
// from-scratch construction.
//
// Later edits win: an AddEdge followed by a RemoveEdge of the same pair
// nets to removal. Edits that do not change the graph (adding a present
// edge, removing an absent one, self-loops) are no-ops.
func Patch(g *Graph, edits []Edit) (*Graph, error) {
	for _, e := range edits {
		if err := e.Validate(g); err != nil {
			return nil, err
		}
	}
	// Net edge delta per ordered pair: +1 present, -1 absent, keyed u<v.
	type pair struct{ u, v int32 }
	edgeDelta := make(map[pair]bool) // value: present after the edits
	colorTouched := make(map[V]bool)
	for _, e := range edits {
		switch e.Op {
		case AddEdge, RemoveEdge:
			if e.U == e.V {
				continue
			}
			u, v := int32(e.U), int32(e.V)
			if u > v {
				u, v = v, u
			}
			edgeDelta[pair{u, v}] = e.Op == AddEdge
		case AddColor, RemoveColor:
			colorTouched[e.U] = true
		}
	}
	// Per-vertex sorted add/remove lists; entries that match the current
	// state (adding a present edge, removing an absent one) are dropped so
	// the row splice below stays exact.
	adds := make(map[V][]int32)
	dels := make(map[V][]int32)
	touched := make(map[V]bool)
	for p, present := range edgeDelta { //fod:sorted — fills per-vertex lists that are sorted below
		if present == g.HasEdge(int(p.u), int(p.v)) {
			continue
		}
		if present {
			adds[int(p.u)] = append(adds[int(p.u)], p.v)
			adds[int(p.v)] = append(adds[int(p.v)], p.u)
		} else {
			dels[int(p.u)] = append(dels[int(p.u)], p.v)
			dels[int(p.v)] = append(dels[int(p.v)], p.u)
		}
		touched[int(p.u)] = true
		touched[int(p.v)] = true
	}

	out := &Graph{n: g.n, ncol: g.ncol}
	out.off = make([]int32, g.n+1)
	grow := 0
	for v := range adds { //fod:sorted — accumulates a commutative sum
		grow += len(adds[v])
	}
	out.adj = make([]int32, 0, len(g.adj)+grow)
	for v := 0; v < g.n; v++ {
		out.off[v] = int32(len(out.adj))
		row := g.Neighbors(v)
		if !touched[v] {
			out.adj = append(out.adj, row...)
			continue
		}
		av, dv := adds[v], dels[v]
		sort.Slice(av, func(i, j int) bool { return av[i] < av[j] })
		sort.Slice(dv, func(i, j int) bool { return dv[i] < dv[j] })
		// Merge: keep row entries not in dv, interleave av in order.
		ai, di := 0, 0
		for _, w := range row {
			for ai < len(av) && av[ai] < w {
				out.adj = append(out.adj, av[ai])
				ai++
			}
			if di < len(dv) && dv[di] == w {
				di++
				continue
			}
			out.adj = append(out.adj, w)
		}
		out.adj = append(out.adj, av[ai:]...)
	}
	out.off[g.n] = int32(len(out.adj))
	out.m = len(out.adj) / 2

	// Colors: share the slice-of-bitsets spine only when untouched;
	// touched vertices get cloned bitsets so g's sets stay intact.
	out.colors = make([]Bitset, g.n)
	copy(out.colors, g.colors)
	for v := range colorTouched { //fod:sorted — per-vertex writes to disjoint slots
		out.colors[v] = g.colors[v].Clone()
		if out.colors[v] == nil {
			out.colors[v] = NewBitset(g.ncol)
		}
	}
	for _, e := range edits {
		switch e.Op {
		case AddColor:
			out.colors[e.U].Set(e.Color)
		case RemoveColor:
			out.colors[e.U].Clear(e.Color)
		}
	}
	// Normalize: a bitset emptied by removals serializes differently from
	// the nil a Builder would produce; collapse it so fingerprints agree.
	for v := range colorTouched { //fod:sorted — per-vertex writes to disjoint slots
		if out.colors[v] != nil && out.colors[v].Empty() {
			out.colors[v] = nil
		}
	}
	return out, nil
}
