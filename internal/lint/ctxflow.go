package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow returns the interprocedural context-propagation analyzer for
// the request path. Roots are the HTTP handlers of internal/serve (any
// function taking a *http.Request); edges follow the program call graph.
// Three rules:
//
//  1. context.Background() / context.TODO() must not appear in
//     internal/serve at all, nor in any handler-reachable function of
//     the engine layers (repro, internal/core, internal/lowdeg,
//     internal/snap): a detached context silently severs the request
//     deadline, so a client that gave up keeps burning a worker. The
//     one idiomatic exception is nil-defaulting —
//     `if ctx == nil { ctx = context.Background() }` — which only fires
//     for callers that opted out; `//fod:ctxok` (with a justification)
//     acknowledges a deliberate detachment such as a lifecycle context.
//
//  2. A handler-reachable function in internal/serve must not block
//     without a cancellation path: channel sends/receives outside a
//     select, and selects with neither a `default` nor a ctx.Done()
//     case, wait forever when the peer is gone even though the request
//     context was cancelled long ago.
//
//  3. An exported, handler-reachable function of the engine layers
//     (repro, internal/core, internal/lowdeg) that drives the
//     enumeration machinery (reaches a //fod:hotpath function) through a
//     loop but accepts no context cannot be cancelled mid-enumeration —
//     on a large graph that is an unbounded amount of work per request.
//     Thread a ctx with a periodic checkpoint, or annotate `//fod:ctxok`
//     when the caller's own loop bounds the work (e.g. a yield that can
//     stop the enumeration).
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name:       "ctxflow",
		Doc:        "request-path functions thread ctx: no detached contexts or uncancellable blocking/loops",
		RunProgram: runCtxFlow,
	}
}

// ctxEngineScope is where rule 1 applies beyond internal/serve, and rule
// 3's report scope (minus snap, which has no enumeration loops).
var ctxEngineScope = []string{"internal/core", "internal/lowdeg", "internal/snap"}

func runCtxFlow(pp *ProgramPass) {
	prog := pp.Prog

	var roots []*FuncNode
	for _, n := range prog.Nodes {
		if inServeScope(n.Pkg.PkgPath) && takesHTTPRequest(n) {
			roots = append(roots, n)
		}
	}
	reachable := reach(roots)
	hotReaching := reachesHotPath(prog)

	for _, n := range prog.Nodes {
		serve := inServeScope(n.Pkg.PkgPath)
		if serve || (reachable[n] && (isModuleRoot(n.Pkg.PkgPath) || inAnyScope(n.Pkg.PkgPath, ctxEngineScope))) {
			checkDetachedContext(pp, n)
		}
		if serve && reachable[n] {
			checkBlocking(pp, n)
		}
		if reachable[n] && hotReaching[n] &&
			(isModuleRoot(n.Pkg.PkgPath) || inAnyScope(n.Pkg.PkgPath, []string{"internal/core", "internal/lowdeg"})) {
			checkUncancellableLoop(pp, n)
		}
	}
}

func inServeScope(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/serve")
}

func inAnyScope(pkgPath string, frags []string) bool {
	for _, f := range frags {
		if strings.Contains(pkgPath, f) {
			return true
		}
	}
	return false
}

// isModuleRoot matches the repro facade package (the module root, whose
// import path has no slash) and its testdata stand-ins (".../reproroot").
func isModuleRoot(pkgPath string) bool {
	return !strings.Contains(pkgPath, "/") || strings.HasSuffix(pkgPath, "/reproroot")
}

// takesHTTPRequest reports whether any parameter is *net/http.Request.
func takesHTTPRequest(n *FuncNode) bool {
	sig := n.Obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		p, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := p.Elem().(*types.Named)
		if !ok {
			continue
		}
		o := named.Obj()
		if o.Name() == "Request" && o.Pkg() != nil &&
			(o.Pkg().Path() == "net/http" || strings.HasSuffix(o.Pkg().Path(), "/http")) {
			return true
		}
	}
	return false
}

// reach computes forward reachability over call edges.
func reach(roots []*FuncNode) map[*FuncNode]bool {
	seen := map[*FuncNode]bool{}
	queue := append([]*FuncNode(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, site := range n.Calls {
			for _, callee := range site.Callees {
				if !seen[callee] {
					seen[callee] = true
					queue = append(queue, callee)
				}
			}
		}
	}
	return seen
}

// reachesHotPath computes the set of nodes from which some //fod:hotpath
// function is reachable (reverse BFS from the annotated roots).
func reachesHotPath(prog *Program) map[*FuncNode]bool {
	callers := map[*FuncNode][]*FuncNode{}
	for _, n := range prog.Nodes {
		for _, site := range n.Calls {
			for _, callee := range site.Callees {
				callers[callee] = append(callers[callee], n)
			}
		}
	}
	seen := map[*FuncNode]bool{}
	var queue []*FuncNode
	for _, n := range prog.Nodes {
		if funcHasAnnotation(n.Decl, "fod:hotpath") {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range callers[n] {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return seen
}

// checkDetachedContext implements rule 1 for one function.
func checkDetachedContext(pp *ProgramPass, n *FuncNode) {
	pass := pp.PackagePass(n.Pkg)
	nilDefaults := nilDefaultRegions(pass, n.Decl.Body)
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := packageOf(pass, sel.X)
		if pkg == nil || pkg.Imported().Path() != "context" {
			return true
		}
		if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
			return true
		}
		if sel.Sel.Name == "Background" {
			for _, r := range nilDefaults {
				if call.Pos() >= r.lo && call.Pos() <= r.hi {
					return true
				}
			}
		}
		if pass.hasAnnotation(n.File, call, "fod:ctxok") {
			return true
		}
		pp.Report(n.Pkg, call.Pos(),
			"context.%s() in request-path function %s severs the request deadline (thread the caller's ctx, or annotate //fod:ctxok with the reason)",
			sel.Sel.Name, n.Decl.Name.Name)
		return true
	})
}

type ctxPosRange struct{ lo, hi token.Pos }

// nilDefaultRegions finds the bodies of `if ctx == nil { ... }` guards —
// the one place a detached Background() is the documented default.
func nilDefaultRegions(pass *Pass, body *ast.BlockStmt) []ctxPosRange {
	var regions []ctxPosRange
	ast.Inspect(body, func(nd ast.Node) bool {
		ifs, ok := nd.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		isNil := func(e ast.Expr) bool {
			id, ok := unparen(e).(*ast.Ident)
			return ok && id.Name == "nil"
		}
		var other ast.Expr
		switch {
		case isNil(cond.X):
			other = cond.Y
		case isNil(cond.Y):
			other = cond.X
		default:
			return true
		}
		if isContextType(pass.Info.TypeOf(other)) {
			regions = append(regions, ctxPosRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return regions
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context"
}

// checkBlocking implements rule 2 for one serve function.
func checkBlocking(pp *ProgramPass, n *FuncNode) {
	pass := pp.PackagePass(n.Pkg)
	info := n.Pkg.Info
	selectComm := map[ast.Expr]bool{}
	selectSends := map[ast.Stmt]bool{}
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if s, ok := nd.(*ast.SelectStmt); ok {
			for _, cl := range s.Body.List {
				if cc := cl.(*ast.CommClause); cc.Comm != nil {
					markCommReceives(cc.Comm, selectComm)
					if snd, ok := cc.Comm.(*ast.SendStmt); ok {
						selectSends[snd] = true
					}
				}
			}
		}
		return true
	})
	report := func(node ast.Node, what string) {
		if pass.hasAnnotation(n.File, node, "fod:ctxok") {
			return
		}
		pp.Report(n.Pkg, node.Pos(),
			"%s in handler-reachable %s has no cancellation path (select on ctx.Done(), or annotate //fod:ctxok)",
			what, n.Decl.Name.Name)
	}
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.SendStmt:
			if !selectSends[s] {
				report(s, "channel send")
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && !selectComm[s] {
				report(s, "channel receive")
			}
		case *ast.SelectStmt:
			hasDefault, hasDone := false, false
			for _, cl := range s.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				if commHasDone(info, cc.Comm) {
					hasDone = true
				}
			}
			if !hasDefault && !hasDone {
				report(s, "select without default or ctx.Done() case")
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if si := info.Selections[sel]; si != nil && si.Obj().Pkg() != nil && si.Obj().Pkg().Path() == "sync" {
					report(s, recvTypeName(si)+".Wait")
				}
			}
		}
		return true
	})
}

// commHasDone reports whether a select comm statement receives from a
// Done()-shaped channel (a method call named Done on a context).
func commHasDone(info *types.Info, comm ast.Stmt) bool {
	found := false
	ast.Inspect(comm, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if isContextType(info.TypeOf(sel.X)) {
			found = true
		}
		return true
	})
	return found
}

// checkUncancellableLoop implements rule 3 for one engine function.
func checkUncancellableLoop(pp *ProgramPass, n *FuncNode) {
	if !ast.IsExported(n.Obj.Name()) {
		return
	}
	if funcHasAnnotation(n.Decl, "fod:hotpath") || funcHasAnnotation(n.Decl, "fod:ctxok") {
		return
	}
	info := n.Pkg.Info
	sig := n.Obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return
		}
	}
	// A function that mentions a context anywhere (field, option struct,
	// stored ctx) is considered threaded.
	mentionsCtx := false
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if e, ok := nd.(ast.Expr); ok && isContextType(info.TypeOf(e)) {
			mentionsCtx = true
			return false
		}
		return true
	})
	if mentionsCtx {
		return
	}
	// Loops whose body calls something — the enumeration shape.
	var loopPos token.Pos
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if loopPos != token.NoPos {
			return false
		}
		var body *ast.BlockStmt
		switch l := nd.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if _, ok := m.(*ast.CallExpr); ok {
				loopPos = nd.Pos()
				return false
			}
			return true
		})
		return true
	})
	if loopPos == token.NoPos {
		return
	}
	pp.Report(n.Pkg, loopPos,
		"%s is handler-reachable and loops over the enumeration machinery without a context — it cannot be cancelled mid-request (accept a ctx with a periodic checkpoint, or annotate //fod:ctxok)",
		n.Decl.Name.Name)
}
