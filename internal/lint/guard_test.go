package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// The LINT2_GUARD suite is verify.sh tier 3's self-lint gate: it loads
// the whole module the way cmd/fodlint does, demands that all seven
// analyzers come back clean modulo the reviewed baseline, and
// cross-checks the static hot closure against the functions the
// AllocsPerRun guards (LINT_GUARD / LOWDEG_GUARD suites) pin at
// 0 allocs/op. Loading and type-checking the full module from source
// takes several seconds, so the suite is opt-in via LINT2_GUARD=1.

func lint2Gate(t *testing.T) {
	t.Helper()
	if os.Getenv("LINT2_GUARD") == "" {
		t.Skip("set LINT2_GUARD=1 to run the self-lint guard suite")
	}
}

func loadModule(t *testing.T) (string, []*Package) {
	t.Helper()
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(moduleDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	return moduleDir, pkgs
}

// TestSelfLintClean runs every analyzer over every module package
// (internal/lint included) and requires zero findings outside the
// baseline, and zero stale baseline entries.
func TestSelfLintClean(t *testing.T) {
	lint2Gate(t)
	moduleDir, pkgs := loadModule(t)
	diags := RunAnalyzers(pkgs, All())
	b, err := LoadBaseline(filepath.Join(moduleDir, "lint.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed, unused := b.Filter(moduleDir, diags)
	for _, d := range kept {
		t.Errorf("unbaselined finding: %s", d)
	}
	for _, e := range unused {
		t.Errorf("stale baseline entry (matches nothing): %s %s %q", e.Analyzer, e.File, e.Message)
	}
	t.Logf("self-lint: %d packages, %d finding(s) suppressed by baseline", len(pkgs), suppressed)
}

// TestHotClosureMatchesAllocGuards pins the agreement between the two
// halves of the delay-bound check: every function a dynamic
// AllocsPerRun guard pins at 0 allocs/op must be a member of the static
// //fod:hotpath closure, in both engines. If one of these drops out of
// the closure, hotpath-transitive has silently stopped checking a
// function the benchmarks still rely on.
func TestHotClosureMatchesAllocGuards(t *testing.T) {
	lint2Gate(t)
	_, pkgs := loadModule(t)
	prog := BuildProgram(pkgs)
	closure := HotClosure(prog)

	pinned := []struct{ pkgFrag, name string }{
		// internal/core LINT_GUARD suite: Iterator.Next, Engine.Test,
		// Engine.NextLast and the primitives under them.
		{"internal/core", "Next"},
		{"internal/core", "nextGeq"},
		{"internal/core", "nextLast"},
		{"internal/core", "test"},
		{"internal/core", "localEval"},
		// internal/lowdeg LOWDEG_GUARD suite: same contract on the
		// low-degree engine.
		{"internal/lowdeg", "Next"},
		{"internal/lowdeg", "nextGeq"},
		{"internal/lowdeg", "nextLast"},
		{"internal/lowdeg", "test"},
		{"internal/lowdeg", "localEval"},
	}
	for _, p := range pinned {
		n := prog.LookupFunc(p.pkgFrag, p.name)
		if n == nil {
			t.Errorf("%s: no function %q in the call graph (guard target renamed?)", p.pkgFrag, p.name)
			continue
		}
		if !closure[n] {
			t.Errorf("%s is AllocsPerRun-pinned but outside the //fod:hotpath closure", n.Name())
		}
	}
	t.Logf("hot closure: %d members across %d packages", len(closure), len(pkgs))
}
