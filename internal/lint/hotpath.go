package lint

import (
	"go/ast"
	"go/types"
)

// This file holds the per-function-body checks of the hot-path contract:
// a function on the answering phase of Theorem 2.3 (NextGeq / Test /
// skip-pointer lookup / store successor search), whose per-call cost the
// paper bounds by a constant, must stay free of the constructs that
// silently break that bound:
//
//   - calls into package fmt (formatting allocates and reflects)
//   - time-dependent calls (time.Now, time.Since, …): the hot path must
//     not read clocks — instrumentation lives in un-annotated wrappers
//     behind the obs nil-check
//   - map or channel creation (make / literals): unbounded allocation
//   - string <-> []byte conversions (always allocate)
//   - append whose result lands anywhere but a plain local variable
//     (field, index or global targets amortize to heap growth)
//   - closures capturing loop variables (each iteration allocates)
//   - calls into log and log/slog (logging formats and locks; request
//     events belong in the serve layer, outside the enumeration loop)
//   - method calls on the tracing types (Span, Trace, Tracer, Ring) and
//     the span constructors Registry.Span / Registry.StartSpan: a span
//     reads the clock twice and may take a trace lock, so per-answer
//     tracing would turn O(1) delay into O(instrumentation)
//
// These checks used to ship as the per-function `hotpath` analyzer
// (PR 5); they are now the body-check half of `hotpath-transitive`
// (hotpathtrans.go), which runs them over every function in the call
// closure of a `//fod:hotpath` root, not just the annotated roots. The
// dynamic twin is the LINT_GUARD AllocsPerRun suite in internal/core,
// which pins Iterator.Next and Engine.Test at 0 allocs/op (see DESIGN.md
// "Static analysis").

// timeDependent are the clock-reading functions of package time.
var timeDependent = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	allowedAppends := localAppendTargets(pass, fn.Body)
	loopVars := loopVarObjects(pass, fn.Body)
	coldCalls := panicArgCalls(pass, fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !coldCalls[n] {
				checkHotCall(pass, fn, n, allowedAppends)
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Report(n.Pos(), "%s: map literal allocates on the hot path", fn.Name.Name)
				case *types.Chan:
					pass.Report(n.Pos(), "%s: channel literal on the hot path", fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			reportLoopCaptures(pass, fn, n, loopVars)
			return true
		}
		return true
	})
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, allowedAppends map[*ast.CallExpr]bool) {
	// Package-qualified calls: fmt.* and the time-dependent set.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg := packageOf(pass, sel.X); pkg != nil {
			switch pkg.Imported().Path() {
			case "fmt":
				pass.Report(call.Pos(), "%s: calls fmt.%s on the hot path (allocates; format outside //fod:hotpath)",
					fn.Name.Name, sel.Sel.Name)
			case "time":
				if timeDependent[sel.Sel.Name] {
					pass.Report(call.Pos(), "%s: calls time.%s on the hot path (clock reads belong in un-annotated instrumented wrappers)",
						fn.Name.Name, sel.Sel.Name)
				}
			case "log", "log/slog":
				pass.Report(call.Pos(), "%s: calls %s.%s on the hot path (logging formats and locks; emit events outside //fod:hotpath)",
					fn.Name.Name, pkg.Imported().Name(), sel.Sel.Name)
			}
		} else if recv, meth, ok := tracingMethod(pass, sel); ok {
			pass.Report(call.Pos(), "%s: calls %s.%s on the hot path (tracing reads clocks and locks; spans belong in un-annotated wrappers)",
				fn.Name.Name, recv, meth)
		}
	}
	// Builtins and conversions.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch obj := pass.Info.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				if len(call.Args) > 0 {
					if t := pass.Info.TypeOf(call.Args[0]); t != nil {
						switch t.Underlying().(type) {
						case *types.Map:
							pass.Report(call.Pos(), "%s: make(map) on the hot path", fn.Name.Name)
						case *types.Chan:
							pass.Report(call.Pos(), "%s: make(chan) on the hot path", fn.Name.Name)
						}
					}
				}
			case "append":
				if !allowedAppends[call] {
					pass.Report(call.Pos(), "%s: append escapes (result must be assigned to a plain local variable)", fn.Name.Name)
				}
			}
		}
	}
	// string <-> []byte conversions.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := pass.Info.TypeOf(call.Fun)
		from := pass.Info.TypeOf(call.Args[0])
		if isStringByteConv(to, from) {
			pass.Report(call.Pos(), "%s: string/[]byte conversion allocates on the hot path", fn.Name.Name)
		}
	}
}

func isStringByteConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// tracingTypes are the receiver type names whose every method is a
// tracing primitive; spanConstructors are the Registry methods that mint
// spans. Matching is by name, not import path, so the golden fixtures
// (which may only import stdlib) can declare look-alike types — and any
// future copy of the tracing vocabulary is caught too.
var tracingTypes = map[string]bool{
	"Span": true, "Trace": true, "Tracer": true, "Ring": true,
}

var spanConstructors = map[string]bool{
	"Span": true, "StartSpan": true,
}

// tracingMethod reports whether sel is a method call on one of the
// tracing types, or a span-constructor call on a Registry.
func tracingMethod(pass *Pass, sel *ast.SelectorExpr) (recv, meth string, ok bool) {
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", "", false
	}
	t := s.Recv()
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	name := named.Obj().Name()
	if tracingTypes[name] || (name == "Registry" && spanConstructors[sel.Sel.Name]) {
		return name, sel.Sel.Name, true
	}
	return "", "", false
}

// packageOf resolves expr to the *types.PkgName it names, or nil.
func packageOf(pass *Pass, expr ast.Expr) *types.PkgName {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	pkg, _ := pass.Info.Uses[id].(*types.PkgName)
	return pkg
}

// localAppendTargets collects the append calls whose result is assigned to
// a plain function-local variable — the only form whose amortized growth
// stays confined to the caller's frame logic (`buf = append(buf, x)`).
func localAppendTargets(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	allowed := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && isLocalVar(pass, id) {
				allowed[call] = true
			}
		}
		return true
	})
	return allowed
}

func isLocalVar(pass *Pass, id *ast.Ident) bool {
	if id.Name == "_" {
		return false
	}
	obj := pass.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-scope variables are globals; anything nested deeper is local.
	return v.Parent() != pass.Pkg.Scope()
}

// panicArgCalls collects the call expressions nested inside the
// arguments of panic(...) calls: a panic path is never taken on the
// success path the delay bound covers, so formatting the panic message
// (fmt.Sprintf and friends) is exempt from the hot-path rules.
func panicArgCalls(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	cold := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					cold[c] = true
				}
				return true
			})
		}
		return true
	})
	return cold
}

// loopVarObjects collects the objects declared as range/for loop variables
// anywhere in body.
func loopVarObjects(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	def := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			def(n.Key)
			def(n.Value)
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					def(lhs)
				}
			}
		}
		return true
	})
	return vars
}

// reportLoopCaptures flags a closure that references a loop variable of
// the enclosing function: such a closure cannot be allocated once and
// reused, so every loop iteration pays a heap allocation.
func reportLoopCaptures(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	if len(loopVars) == 0 {
		return
	}
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil && loopVars[obj] {
			// The loop variable must be declared outside the literal for
			// this to be a capture.
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				pass.Report(lit.Pos(), "%s: closure captures loop variable %q (allocates per iteration)", fn.Name.Name, id.Name)
				reported = true
			}
		}
		return true
	})
}
