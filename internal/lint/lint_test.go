package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-file suite: each testdata/src/<rule> directory is a
// standalone package type-checked by LoadDir under an import path that
// places it inside the analyzer's scope. Expected diagnostics are
// declared in the source itself with trailing `// want "regexp"`
// comments; the harness demands an exact line-for-line match in both
// directions (no missing findings, no extra ones).

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// goldenWants extracts the want expectations of every file in the
// package, keyed by file:line.
func goldenWants(t *testing.T, pkg *Package) map[string]*regexp.Regexp {
	t.Helper()
	wants := map[string]*regexp.Regexp{}
	for _, f := range pkg.Syntax {
		filename := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(filename)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", filename, i+1, m[1], err)
			}
			wants[posKey(filename, i+1)] = re
		}
	}
	return wants
}

func posKey(file string, line int) string {
	return file + ":" + strconvItoa(line)
}

func strconvItoa(n int) string {
	// tiny positive-int formatter; avoids importing strconv for one call
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func runGolden(t *testing.T, rule, pkgPath string, a *Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", rule), pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	wants := goldenWants(t, pkg)
	seen := map[string]bool{}
	for _, d := range diags {
		k := posKey(d.Pos.Filename, d.Pos.Line)
		re, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s: message %q does not match want %q", k, d.Message, re)
		}
		seen[k] = true
	}
	for k, re := range wants {
		if !seen[k] {
			t.Errorf("%s: expected diagnostic matching %q, got none", k, re)
		}
	}
}

func TestHotPathGolden(t *testing.T) {
	runGolden(t, "hotpath", "example.com/hot", HotPathTrans())
}

// TestHotPathTransGolden exercises the call-graph closure: interface
// dispatch, address-taken func values, generics, coldpath pruning.
func TestHotPathTransGolden(t *testing.T) {
	runGolden(t, "hotpathtrans", "example.com/engine", HotPathTrans())
}

// TestCtxFlowGolden loads the fixture under a path that is inside both
// the serve scope and (via its /reproroot suffix) the module-root scope,
// so all three ctxflow rules run against one package.
func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, "ctxflow", "example.com/internal/serve/reproroot", CtxFlow())
}

func TestLockHeldGolden(t *testing.T) {
	runGolden(t, "lockheld", "example.com/held", LockHeld())
}

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, "atomicmix", "example.com/mix", AtomicMix())
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, "maporder", "example.com/internal/core", MapOrder())
}

// TestMapOrderScope re-checks the maporder fixture under an import path
// outside the deterministic packages: every finding must vanish.
func TestMapOrderScope(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "maporder"), "example.com/internal/api")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{MapOrder()}); len(diags) != 0 {
		t.Fatalf("out-of-scope package got %d diagnostics: %v", len(diags), diags)
	}
}

func TestObsNilGolden(t *testing.T) {
	runGolden(t, "obsnil", "example.com/internal/obs", ObsNil())
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, "errdrop", "example.com/internal/serve", ErrDrop())
}

// TestErrDropCmdScope confirms the cmd/* scoping of errdrop.
func TestErrDropCmdScope(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "errdrop"), "example.com/cmd/handler")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{ErrDrop()})
	if len(diags) == 0 {
		t.Fatal("cmd/* package should be in errdrop scope")
	}
}

// TestErrDropSnapScope confirms the snapshot codec is in errdrop scope —
// a dropped io error there persists a truncated snapshot.
func TestErrDropSnapScope(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "errdrop"), "example.com/internal/snap")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{ErrDrop()})
	if len(diags) == 0 {
		t.Fatal("internal/snap package should be in errdrop scope")
	}
}

// TestAnalyzerDocs keeps every analyzer self-describing for -list, and
// enforces the Run/RunProgram exactly-one contract.
func TestAnalyzerDocs(t *testing.T) {
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is missing a name or doc", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunProgram", a.Name)
		}
	}
}
