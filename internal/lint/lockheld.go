package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld returns the interprocedural lock-discipline analyzer: while a
// sync.Mutex or sync.RWMutex is held, a function must not perform — or
// call anything that transitively performs — a channel operation
// (send, receive, close, blocking select, range over a channel), a Wait
// (sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep), I/O (calls into os,
// io, net, net/http, bufio, log, log/slog, encoding/json codecs,
// fmt.Fprint*), or a callback through a func value. Any of these can
// stall or re-enter for unbounded time, turning every other contender of
// the lock into a convoy — in the serving layer that is a liveness bug:
// the singleflight cache and the MVCC version chains sit on every
// request path.
//
// Effects propagate over the call graph: `f` holding a lock while
// calling `g` is flagged if anything reachable from `g` blocks, and the
// diagnostic carries the call chain down to the blocking operation.
// Goroutine launches (`go g()`) do not propagate — the launch itself is
// non-blocking. A deliberate, reviewed exception carries `//fod:lockok`
// on the offending line (with a justification), or an entry in the
// driver's baseline file.
func LockHeld() *Analyzer {
	return &Analyzer{
		Name:       "lockheld",
		Doc:        "no channel ops, Wait, I/O or callbacks while a mutex is held, checked across calls",
		RunProgram: runLockHeld,
	}
}

type effect uint8

const (
	effChan effect = 1 << iota
	effWait
	effIO
	effCallback
)

func (e effect) String() string {
	var parts []string
	if e&effChan != 0 {
		parts = append(parts, "channel ops")
	}
	if e&effWait != 0 {
		parts = append(parts, "waits")
	}
	if e&effIO != 0 {
		parts = append(parts, "I/O")
	}
	if e&effCallback != 0 {
		parts = append(parts, "func-value callbacks")
	}
	return strings.Join(parts, ", ")
}

var effectBits = []effect{effChan, effWait, effIO, effCallback}

// ioPackages are the packages whose calls count as I/O under a lock.
var ioPackages = map[string]bool{
	"os": true, "io": true, "net": true, "net/http": true,
	"bufio": true, "log": true, "log/slog": true,
}

// effectSite is one directly-performed effect inside a function body.
type effectSite struct {
	pos  token.Pos
	eff  effect
	desc string
}

type effectVia struct {
	callee *FuncNode
	site   *effectSite // set when the effect is direct in callee == nil
}

type lockAnalysis struct {
	pp     *ProgramPass
	direct map[*FuncNode][]effectSite
	bits   map[*FuncNode]effect
	// via[n][bit] records how n acquired bit: through a call to callee,
	// or (callee == nil) directly at site.
	via    map[*FuncNode]map[effect]effectVia
	goCall map[*FuncNode]map[*ast.CallExpr]bool
}

func runLockHeld(pp *ProgramPass) {
	la := &lockAnalysis{
		pp:     pp,
		direct: map[*FuncNode][]effectSite{},
		bits:   map[*FuncNode]effect{},
		via:    map[*FuncNode]map[effect]effectVia{},
		goCall: map[*FuncNode]map[*ast.CallExpr]bool{},
	}
	for _, n := range pp.Prog.Nodes {
		la.collectDirect(n)
	}
	la.fixpoint()
	for _, n := range pp.Prog.Nodes {
		la.checkRegions(n)
	}
}

// collectDirect finds the effects n's own body performs, plus its `go`
// launched calls (excluded from lock-held propagation).
func (la *lockAnalysis) collectDirect(n *FuncNode) {
	pass := la.pp.PackagePass(n.Pkg)
	info := n.Pkg.Info
	goCalls := map[*ast.CallExpr]bool{}
	// Receives that are select communication operands are accounted to
	// the select statement, not double-reported.
	selectComm := map[ast.Expr]bool{}
	var sites []effectSite
	add := func(pos token.Pos, eff effect, desc string) {
		sites = append(sites, effectSite{pos: pos, eff: eff, desc: desc})
	}
	dynamic := map[*ast.CallExpr]bool{}
	for _, site := range n.Calls {
		if site.Dynamic {
			dynamic[site.Call] = true
		}
	}
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.GoStmt:
			goCalls[s.Call] = true
		case *ast.SendStmt:
			add(s.Pos(), effChan, "channel send")
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && !selectComm[s] {
				add(s.Pos(), effChan, "channel receive")
			}
		case *ast.SelectStmt:
			blocking := true
			for _, cl := range s.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm == nil {
					blocking = false // default clause
					continue
				}
				markCommReceives(cc.Comm, selectComm)
			}
			if blocking {
				add(s.Pos(), effChan, "blocking select")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					add(s.Pos(), effChan, "range over channel")
				}
			}
		case *ast.CallExpr:
			if eff, desc, ok := callEffect(pass, s, dynamic[s]); ok {
				add(s.Pos(), eff, desc)
			}
		}
		return true
	})
	la.direct[n] = sites
	la.goCall[n] = goCalls
	var bits effect
	vias := map[effect]effectVia{}
	for i := range sites {
		s := &sites[i]
		if bits&s.eff == 0 {
			bits |= s.eff
			vias[s.eff] = effectVia{site: s}
		}
	}
	la.bits[n] = bits
	la.via[n] = vias
}

// markCommReceives records the receive expressions of a select comm
// statement so the body walk does not double-report them.
func markCommReceives(comm ast.Stmt, set map[ast.Expr]bool) {
	ast.Inspect(comm, func(nd ast.Node) bool {
		if u, ok := nd.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			set[u] = true
		}
		return true
	})
}

// callEffect classifies one call expression's direct effect.
func callEffect(pass *Pass, call *ast.CallExpr, dynamic bool) (effect, string, bool) {
	if dynamic {
		if isCancelFunc(pass.Info.TypeOf(call.Fun)) {
			// context.CancelFunc is documented non-blocking and idempotent;
			// invoking one under a lock cannot convoy.
			return 0, "", false
		}
		return effCallback, "func-value callback", true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
			return effChan, "channel close (wakes every waiter)", true
		}
	case *ast.SelectorExpr:
		if pkg := packageOf(pass, fun.X); pkg != nil {
			path := pkg.Imported().Path()
			switch {
			case path == "time" && fun.Sel.Name == "Sleep":
				return effWait, "time.Sleep", true
			case path == "fmt" && strings.HasPrefix(fun.Sel.Name, "Fprint"):
				return effIO, "fmt." + fun.Sel.Name, true
			case ioPackages[path]:
				return effIO, "call into " + path, true
			}
			return 0, "", false
		}
		s := pass.Info.Selections[fun]
		if s == nil || s.Kind() != types.MethodVal {
			return 0, "", false
		}
		obj := s.Obj()
		if obj.Pkg() == nil {
			return 0, "", false
		}
		switch obj.Pkg().Path() {
		case "sync":
			if fun.Sel.Name == "Wait" {
				return effWait, recvTypeName(s) + ".Wait", true
			}
		case "encoding/json":
			if fun.Sel.Name == "Encode" || fun.Sel.Name == "Decode" {
				return effIO, "json." + recvTypeName(s) + "." + fun.Sel.Name, true
			}
		default:
			if ioPackages[obj.Pkg().Path()] {
				return effIO, recvTypeName(s) + "." + fun.Sel.Name, true
			}
		}
	}
	return 0, "", false
}

// isCancelFunc reports whether t is the named type context.CancelFunc.
func isCancelFunc(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "CancelFunc"
}

func recvTypeName(s *types.Selection) string {
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.TypeString(t, func(*types.Package) string { return "" })
}

// fixpoint propagates effects over call edges until stable.
func (la *lockAnalysis) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, n := range la.pp.Prog.Nodes {
			goCalls := la.goCall[n]
			for _, site := range n.Calls {
				if goCalls[site.Call] || site.Dynamic {
					// Dynamic sites carry only signature-matched guesses;
					// propagating through them manufactures effect chains the
					// program may never execute. The direct effCallback bit
					// already covers the call itself.
					continue
				}
				for _, callee := range site.Callees {
					add := la.bits[callee] &^ la.bits[n]
					if add == 0 {
						continue
					}
					la.bits[n] |= add
					for _, bit := range effectBits {
						if add&bit != 0 {
							la.via[n][bit] = effectVia{callee: callee}
						}
					}
					changed = true
				}
			}
		}
	}
}

// chain renders the path from n down to the concrete operation carrying
// bit, e.g. "repro.(Index).ApplyEdits → par.Run → WaitGroup.Wait".
func (la *lockAnalysis) chain(n *FuncNode, bit effect) string {
	var parts []string
	for hop := 0; n != nil && hop < 8; hop++ {
		v, ok := la.via[n][bit]
		if !ok {
			break
		}
		if v.callee == nil {
			parts = append(parts, v.site.desc)
			break
		}
		parts = append(parts, v.callee.Name())
		n = v.callee
	}
	return strings.Join(parts, " → ")
}

// checkRegions reports the effects performed inside n's critical
// sections, directly or through calls.
func (la *lockAnalysis) checkRegions(n *FuncNode) {
	pass := la.pp.PackagePass(n.Pkg)
	regions := mutexRegions(pass, n.Decl)
	if len(regions) == 0 {
		return
	}
	goCalls := la.goCall[n]
	for _, reg := range regions {
		regLit := funcLitAt(n.Decl, reg.lockPos)
		inRegion := func(pos token.Pos) bool {
			for _, st := range reg.stmts {
				if within(pos, st) {
					return funcLitAt(n.Decl, pos) == regLit
				}
			}
			return false
		}
		for _, s := range la.direct[n] {
			if !inRegion(s.pos) {
				continue
			}
			if pass.hasAnnotation(n.File, fakeNode{s.pos}, "fod:lockok") {
				continue
			}
			la.pp.Report(n.Pkg, s.pos,
				"%s while %s is held in %s (no channel ops, waits, I/O or callbacks under a mutex)",
				s.desc, reg.mu, n.Decl.Name.Name)
		}
		for _, site := range n.Calls {
			if goCalls[site.Call] || site.Dynamic || !inRegion(site.Pos) {
				continue
			}
			if pass.hasAnnotation(n.File, site.Call, "fod:lockok") {
				continue
			}
			reported := effect(0)
			for _, callee := range site.Callees {
				bits := la.bits[callee] &^ reported
				if bits == 0 {
					continue
				}
				reported |= bits
				bit := firstBit(bits)
				la.pp.Report(n.Pkg, site.Pos,
					"call to %s while %s is held in %s: it transitively performs %s (%s)",
					callee.Name(), reg.mu, n.Decl.Name.Name, bits, la.chain(callee, bit))
			}
		}
	}
}

func firstBit(e effect) effect {
	for _, bit := range effectBits {
		if e&bit != 0 {
			return bit
		}
	}
	return 0
}

// fakeNode adapts a bare position to the hasAnnotation node interface.
type fakeNode struct{ pos token.Pos }

func (f fakeNode) Pos() token.Pos { return f.pos }
func (f fakeNode) End() token.Pos { return f.pos }
