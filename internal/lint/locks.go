package lint

// Critical-section discovery shared by the lockheld and atomicmix
// analyzers: a statically-delimited region of statements executed while a
// sync.Mutex / sync.RWMutex is held. Regions are found per statement
// list, which matches how the repo writes lock code (lock and unlock as
// siblings, or lock followed by `defer unlock`); a lock whose unlock the
// scanner cannot pair extends conservatively to the end of its list.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// critRegion is one mutex critical section.
type critRegion struct {
	mu      string     // printed receiver expression of the mutex, e.g. "c.mu"
	muObj   types.Object // the mutex field object, when sel.X selects a field
	read    bool       // RLock/RUnlock pair
	lockPos token.Pos
	stmts   []ast.Stmt // statements executed while held
}

// syncCallExpr reports whether call is recv.Lock/RLock/Unlock/RUnlock on
// a sync.Mutex or sync.RWMutex (embedded mutexes included: the selection
// resolves to the promoted sync method). muObj is the field or variable
// object the receiver expression names, when resolvable.
func syncCallExpr(pass *Pass, call *ast.CallExpr) (recv string, muObj types.Object, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", nil, "", false
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", nil, "", false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", nil, "", false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		muObj = pass.Info.Uses[x.Sel]
	case *ast.Ident:
		muObj = pass.Info.Uses[x]
	}
	return types.ExprString(sel.X), muObj, sel.Sel.Name, true
}

// syncCallStmt unwraps an expression statement to a sync lock call.
func syncCallStmt(pass *Pass, stmt ast.Stmt) (recv string, muObj types.Object, method string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", nil, "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", nil, "", false
	}
	return syncCallExpr(pass, call)
}

// mutexRegions finds the critical sections of fn.
func mutexRegions(pass *Pass, fn *ast.FuncDecl) []critRegion {
	var regions []critRegion
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i := 0; i < len(list); i++ {
			recv, muObj, meth, ok := syncCallStmt(pass, list[i])
			if !ok || (meth != "Lock" && meth != "RLock") {
				continue
			}
			unlock := "Unlock"
			if meth == "RLock" {
				unlock = "RUnlock"
			}
			reg := critRegion{mu: recv, muObj: muObj, read: meth == "RLock", lockPos: list[i].Pos()}
			j := i + 1
			deferred := false
			if j < len(list) {
				if d, isDefer := list[j].(*ast.DeferStmt); isDefer {
					if r2, _, m2, ok2 := syncCallExpr(pass, d.Call); ok2 && r2 == recv && m2 == unlock {
						deferred = true
						j++
					}
				}
			}
			if deferred {
				// Held until return; the rest of this list approximates it.
				reg.stmts = list[j:]
			} else {
				for ; j < len(list); j++ {
					if r2, _, m2, ok2 := syncCallStmt(pass, list[j]); ok2 && r2 == recv && m2 == unlock {
						break
					}
					if containsUnlock(pass, list[j], recv, unlock) {
						// An early-return branch unlocks inside this
						// statement (e.g. `if closed { mu.Unlock(); return }`);
						// whether the code after it runs locked depends on the
						// branch taken, so the region stops here rather than
						// claiming the statement and everything after it.
						break
					}
					reg.stmts = append(reg.stmts, list[j])
				}
			}
			regions = append(regions, reg)
		}
		return true
	})
	return regions
}

// containsUnlock reports whether stmt's subtree performs recv.unlock
// anywhere — used to stop a critical-section scan at branchy early
// unlocks the sibling pairing cannot see.
func containsUnlock(pass *Pass, stmt ast.Stmt, recv, unlock string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r2, _, m2, ok2 := syncCallExpr(pass, call); ok2 && r2 == recv && m2 == unlock {
			found = true
			return false
		}
		return true
	})
	return found
}

// within reports pos ∈ [node.Pos(), node.End()].
func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos <= node.End()
}

// funcLitAt returns the innermost function literal of fn containing pos,
// or nil. Region checks use it to keep a critical section from claiming
// statements that only run when a nested closure is later invoked.
func funcLitAt(fn *ast.FuncDecl, pos token.Pos) *ast.FuncLit {
	var best *ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if within(pos, lit) {
			if best == nil || (lit.Pos() >= best.Pos() && lit.End() <= best.End()) {
				best = lit
			}
		}
		return true
	})
	return best
}
