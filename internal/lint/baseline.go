package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The baseline file is the reviewed suppression mechanism of the driver:
// a finding that is understood, justified, and deliberately kept (e.g. a
// writer lock intentionally serializing mutations while the edit
// application fans out) lands here instead of an inline annotation when
// the justification is about a whole design, not one line. Entries are
// keyed by analyzer, repo-relative file and exact message — no line
// numbers, so unrelated edits to the file do not invalidate them — and
// the driver reports entries that no longer match anything, so the file
// cannot rot silently.

// BaselineEntry suppresses the diagnostics of one analyzer in one file
// with one exact message.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Reason   string `json:"reason,omitempty"`
}

// Baseline is the parsed suppression file (lint.baseline.json).
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads the baseline at path. A missing file is an empty
// baseline, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %v", err)
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %v", path, err)
	}
	return b, nil
}

// RelFile renders a diagnostic's file repo-relative with forward
// slashes — the form baseline entries and -json output use.
func RelFile(moduleDir, filename string) string {
	if rel, err := filepath.Rel(moduleDir, filename); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Filter splits diags into kept (not baselined) and suppressed, and
// reports the baseline entries that matched nothing (stale entries a
// reviewer should delete).
func (b *Baseline) Filter(moduleDir string, diags []Diagnostic) (kept []Diagnostic, suppressed int, unused []BaselineEntry) {
	matched := make([]bool, len(b.Findings))
	for _, d := range diags {
		file := RelFile(moduleDir, d.Pos.Filename)
		hit := false
		for i, e := range b.Findings {
			if e.Analyzer == d.Analyzer && e.File == file && e.Message == d.Message {
				matched[i] = true
				hit = true
			}
		}
		if hit {
			suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	for i, ok := range matched {
		if !ok {
			unused = append(unused, b.Findings[i])
		}
	}
	return kept, suppressed, unused
}
