package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix returns the analyzer guarding the repo's memory-model
// discipline around sync/atomic. Two rules:
//
//  1. A struct field passed to the old-style sync/atomic functions
//     (atomic.LoadInt64(&s.n), atomic.AddUint32(&s.c, 1), …) must never
//     also be read or written plainly: the plain access races with the
//     atomic one, and the race detector only catches it when both sides
//     fire concurrently in a test. (The typed atomics — atomic.Int64,
//     atomic.Pointer[T] — make this mistake impossible, which is why the
//     repo uses them; this rule keeps the old style from creeping back
//     half-converted.)
//
//  2. A struct mutex whose every critical section guards exactly one
//     plain scalar or pointer field is a hand-rolled atomic: replace the
//     mutex + field pair with the matching sync/atomic typed value. This
//     is both simpler and faster (no convoy on the lock), and it is how
//     the version-chain and abort-flag code is expected to be written.
//     Mutexes guarding multiple fields, non-scalar state (maps, slices),
//     or fields also accessed outside the lock are real mutexes and are
//     left alone.
//
// `//fod:atomicok` on the field (or its struct) acknowledges a reviewed
// exception.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "no field accessed both via sync/atomic and plainly; no mutex that is a hand-rolled atomic",
		Run:  runAtomicMix,
	}
}

func runAtomicMix(pass *Pass) {
	checkAtomicPlainMix(pass)
	checkHandRolledAtomics(pass)
}

// checkAtomicPlainMix implements rule 1.
func checkAtomicPlainMix(pass *Pass) {
	// Pass A: fields whose address flows into an old-style atomic call,
	// and the source ranges of those calls (accesses inside them are the
	// atomic accesses, not plain ones).
	atomicFields := map[*types.Var][]token.Pos{}
	type posRange struct{ lo, hi token.Pos }
	var atomicCalls []posRange
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := packageOf(pass, sel.X)
			if pkg == nil || pkg.Imported().Path() != "sync/atomic" {
				return true
			}
			atomicCalls = append(atomicCalls, posRange{call.Pos(), call.End()})
			for _, arg := range call.Args {
				u, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if f := fieldObjOf(pass, u.X); f != nil {
					atomicFields[f] = append(atomicFields[f], call.Pos())
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	inAtomicCall := func(pos token.Pos) bool {
		for _, r := range atomicCalls {
			if pos >= r.lo && pos <= r.hi {
				return true
			}
		}
		return false
	}
	// Pass B: plain accesses to those fields.
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldObjOf(pass, sel)
			if f == nil {
				return true
			}
			if _, isAtomic := atomicFields[f]; !isAtomic || inAtomicCall(sel.Pos()) {
				return true
			}
			if pass.hasAnnotation(file, sel, "fod:atomicok") {
				return true
			}
			pass.Report(sel.Pos(),
				"field %s is accessed via sync/atomic elsewhere but plainly here (races with the atomic access; use atomic everywhere or a typed atomic)",
				f.Name())
			return true
		})
	}
}

// fieldObjOf resolves expr to the struct field it selects, or nil.
func fieldObjOf(pass *Pass, expr ast.Expr) *types.Var {
	sel, ok := unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// checkHandRolledAtomics implements rule 2.
func checkHandRolledAtomics(pass *Pass) {
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if pass.hasAnnotation(file, ts, "fod:atomicok") || structSpecAnnotated(pass, file, ts) {
				return true
			}
			checkStructMutexes(pass, file, ts, st)
			return true
		})
	}
}

// structSpecAnnotated also honors an annotation on the enclosing type
// declaration's doc line (`//fod:atomicok` above `type x struct {`).
func structSpecAnnotated(pass *Pass, file *ast.File, ts *ast.TypeSpec) bool {
	return pass.hasAnnotation(file, ts.Name, "fod:atomicok")
}

func checkStructMutexes(pass *Pass, file *ast.File, ts *ast.TypeSpec, st *ast.StructType) {
	obj, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
	if obj == nil {
		return
	}
	// The struct's field objects, and its mutex-typed fields.
	fieldSet := map[*types.Var]*ast.Ident{}
	var mutexes []*types.Var
	for _, fl := range st.Fields.List {
		for _, name := range fl.Names {
			v, _ := pass.Info.Defs[name].(*types.Var)
			if v == nil {
				continue
			}
			fieldSet[v] = name
			if isSyncMutex(v.Type()) {
				mutexes = append(mutexes, v)
			}
		}
	}
	if len(mutexes) == 0 {
		return
	}

	methods := structMethods(pass, obj)
	for _, mu := range mutexes {
		if pass.hasAnnotation(file, fieldSet[mu], "fod:atomicok") {
			continue
		}
		sections := 0
		guarded := map[*types.Var]bool{}
		outside := map[*types.Var]bool{}
		for _, m := range methods {
			var regions []critRegion
			for _, reg := range mutexRegions(pass, m) {
				if reg.muObj == mu {
					regions = append(regions, reg)
					sections++
				}
			}
			inRegions := func(pos token.Pos) bool {
				for _, reg := range regions {
					for _, stmt := range reg.stmts {
						if within(pos, stmt) {
							return true
						}
					}
				}
				return false
			}
			ast.Inspect(m.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				f := fieldObjOf(pass, sel)
				if f == nil || f == mu {
					return true
				}
				if _, ours := fieldSet[f]; !ours {
					return true
				}
				if inRegions(sel.Pos()) {
					guarded[f] = true
				} else {
					outside[f] = true
				}
				return true
			})
		}
		if sections < 2 || len(guarded) != 1 {
			continue
		}
		var f *types.Var
		for g := range guarded {
			f = g
		}
		if outside[f] || !atomicReplaceable(f.Type()) {
			continue
		}
		if pass.hasAnnotation(file, fieldSet[f], "fod:atomicok") {
			continue
		}
		pass.Report(fieldSet[mu].Pos(),
			"mutex %s of %s guards only the scalar field %s across its %d critical sections — a hand-rolled atomic; use the matching sync/atomic typed value (or annotate //fod:atomicok)",
			mu.Name(), ts.Name.Name, f.Name(), sections)
	}
}

// structMethods finds the FuncDecls in this package whose receiver base
// type is obj.
func structMethods(pass *Pass, obj *types.TypeName) []*ast.FuncDecl {
	var methods []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			t := pass.Info.TypeOf(fn.Recv.List[0].Type)
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj() == obj {
				methods = append(methods, fn)
			}
		}
	}
	return methods
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" &&
		(o.Name() == "Mutex" || o.Name() == "RWMutex")
}

// atomicReplaceable reports whether a field's type has a drop-in
// sync/atomic replacement: bool, the fixed-width and platform integers,
// uintptr, or any single pointer.
func atomicReplaceable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Bool, types.Int, types.Int32, types.Int64,
			types.Uint, types.Uint32, types.Uint64, types.Uintptr:
			return true
		}
		return false
	case *types.Pointer:
		return true
	}
	return false
}
