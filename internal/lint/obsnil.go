package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsNil returns the analyzer protecting the disabled-metrics fast path:
// internal/obs documents that a nil *Counter / *Gauge / *Histogram /
// *Span / *Registry is a sink, so the engine's hot path can hold nil
// instruments and pay exactly one branch per call. That contract holds
// only if every exported pointer-receiver method of an exported obs type
// nil-guards its receiver before dereferencing it.
//
// A method that never dereferences the receiver — a pure delegator like
// Counter.Inc (which calls the guarded Add) or a constructor-shaped
// method like Registry.Span (which only stores the possibly-nil pointer)
// — is nil-safe by construction and therefore exempt. "Dereference" means
// a field access, an auto-dereferencing value-receiver method call, or an
// explicit *recv, textually before any `recv == nil` / `recv != nil`
// check.
//
// The dynamic twin is internal/obs's nil-receiver test, which calls every
// exported instrument method on a typed nil via reflection.
func ObsNil() *Analyzer {
	return &Analyzer{
		Name: "obsnil",
		Doc:  "exported obs pointer-receiver methods must nil-guard before dereferencing",
		Run:  runObsNil,
	}
}

func runObsNil(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path(), "internal/obs") {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recv := receiverIdent(fn)
			if recv == nil {
				continue // unnamed receiver: the body cannot dereference it
			}
			recvObj := pass.Info.Defs[recv]
			if recvObj == nil {
				continue
			}
			ptr, ok := recvObj.Type().(*types.Pointer)
			if !ok {
				continue // value receiver: nil cannot reach it
			}
			named, ok := ptr.Elem().(*types.Named)
			if !ok || !named.Obj().Exported() {
				continue
			}
			checkNilGuard(pass, fn, recvObj)
		}
	}
}

func receiverIdent(fn *ast.FuncDecl) *ast.Ident {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	id := fn.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// checkNilGuard reports when the receiver is dereferenced textually
// before its first nil comparison.
func checkNilGuard(pass *Pass, fn *ast.FuncDecl, recv types.Object) {
	guardPos := token.Pos(-1)
	derefPos := token.Pos(-1)
	var derefKind string

	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.Info.Uses[id] == recv
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) &&
				(isRecv(n.X) && isNil(pass, n.Y) || isRecv(n.Y) && isNil(pass, n.X)) {
				if guardPos < 0 || n.Pos() < guardPos {
					guardPos = n.Pos()
				}
			}
		case *ast.StarExpr:
			if isRecv(n.X) {
				recordDeref(&derefPos, &derefKind, n.Pos(), "*"+recv.Name())
			}
		case *ast.SelectorExpr:
			if !isRecv(n.X) {
				return true
			}
			sel, ok := pass.Info.Selections[n]
			if !ok {
				return true
			}
			switch sel.Kind() {
			case types.FieldVal:
				recordDeref(&derefPos, &derefKind, n.Pos(), "field "+n.Sel.Name)
			case types.MethodVal:
				// Calling a value-receiver method through the pointer
				// auto-dereferences; a pointer-receiver method is expected
				// to guard for itself (delegation is nil-safe).
				if f, ok := sel.Obj().(*types.Func); ok {
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, ptrRecv := sig.Recv().Type().(*types.Pointer); !ptrRecv {
							recordDeref(&derefPos, &derefKind, n.Pos(), "value-receiver call "+n.Sel.Name)
						}
					}
				}
			}
		}
		return true
	})

	if derefPos >= 0 && (guardPos < 0 || derefPos < guardPos) {
		pass.Report(derefPos,
			"%s.%s dereferences receiver %s (%s) before a nil guard — a nil instrument must be a no-op sink",
			typeNameOf(recv), fn.Name.Name, recv.Name(), derefKind)
	}
}

func recordDeref(pos *token.Pos, kind *string, at token.Pos, what string) {
	if *pos < 0 || at < *pos {
		*pos = at
		*kind = what
	}
}

func isNil(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.Info.Uses[id].(*types.Nil)
	return isNilConst
}

func typeNameOf(recv types.Object) string {
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
