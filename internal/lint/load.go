package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Imports    []string
}

// Load lists the packages matching patterns (relative to dir, e.g.
// "./..."), parses and fully type-checks them. It is the go/packages-style
// loader of the driver, built from the standard library alone: `go list`
// supplies file sets and the module import graph, module-internal imports
// are resolved from the already-checked set, and everything else (the
// standard library) is type-checked on demand by go/importer's source
// importer.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := &listPackage{}
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		byPath:  map[string]*listPackage{},
		checked: map[string]*Package{},
		source:  importer.ForCompiler(fset, "source", nil),
	}
	for _, p := range listed {
		ld.byPath[p.ImportPath] = p
	}
	var pkgs []*Package
	for _, p := range listed {
		cp, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, cp)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// loader type-checks the module packages in dependency order.
type loader struct {
	fset    *token.FileSet
	byPath  map[string]*listPackage
	checked map[string]*Package
	source  types.Importer
	stack   []string
}

// Import implements types.Importer: module-internal paths resolve to
// already-checked packages (the check order guarantees availability),
// everything else falls through to the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.checked[path]; ok {
		return p.Types, nil
	}
	if lp, ok := ld.byPath[path]; ok {
		cp, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		return cp.Types, nil
	}
	return ld.source.Import(path)
}

func (ld *loader) check(p *listPackage) (*Package, error) {
	if cp, ok := ld.checked[p.ImportPath]; ok {
		return cp, nil
	}
	for _, on := range ld.stack {
		if on == p.ImportPath {
			return nil, fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		}
	}
	ld.stack = append(ld.stack, p.ImportPath)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	for _, dep := range p.Imports {
		if lp, ok := ld.byPath[dep]; ok {
			if _, err := ld.check(lp); err != nil {
				return nil, err
			}
		}
	}
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		files[i] = filepath.Join(p.Dir, f)
	}
	cp, err := checkFiles(ld.fset, ld, p.ImportPath, p.Dir, files)
	if err != nil {
		return nil, err
	}
	ld.checked[p.ImportPath] = cp
	return cp, nil
}

// LoadDir parses and type-checks all .go files of a single directory as a
// package with the given import path (which the scoped analyzers match
// against). It is the loader of the golden-file test suite: testdata
// packages are outside the module, so `go list` never sees them, and the
// claimed import path places them inside an analyzer's scope at will.
func LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := &fallbackImporter{source: importer.ForCompiler(fset, "source", nil)}
	return checkFiles(fset, imp, pkgPath, dir, files)
}

// fallbackImporter serves stdlib imports for standalone testdata packages.
type fallbackImporter struct{ source types.Importer }

func (f *fallbackImporter) Import(path string) (*types.Package, error) {
	return f.source.Import(path)
}

func checkFiles(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Syntax:  syntax,
		Types:   tp,
		Info:    info,
	}, nil
}
