package lint

// The whole-program substrate of the v2 analyzers: a call graph over every
// loaded package, built from the standard library alone. The per-function
// analyzers of PR 5 (hotpath, maporder, obsnil, errdrop) see one package
// at a time; the interprocedural analyzers (hotpath-transitive, ctxflow,
// lockheld) run over a Program — the packages, every declared function as
// a FuncNode, and resolved call edges between them.
//
// Callee resolution is deliberately conservative (over-approximating):
//
//   - static calls (package functions, concrete-receiver methods) resolve
//     through go/types object identity, including promoted methods of
//     embedded fields and generic functions (the edge targets the generic
//     declaration; instantiations share its body);
//   - interface method calls resolve by class-hierarchy analysis: every
//     in-module method with the same name whose receiver type implements
//     the static interface of the call is a candidate callee. Methods on
//     type parameters dispatch the same way through their constraint
//     interface;
//   - calls through func values (variables, fields, parameters, results)
//     are "dynamic": the candidates are every address-taken in-module
//     function with an identical signature. A dynamic call with no
//     candidate stays in the graph with Dynamic=true so analyzers can
//     flag it instead of silently under-approximating;
//   - function-literal bodies are attributed to the enclosing declared
//     function: a closure's calls become the outer function's calls. This
//     over-approximates (the literal may escape and run elsewhere) in the
//     safe direction for every shipped analyzer.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncNode is one declared function or method of a loaded package.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	File *ast.File
	// Calls are the call sites inside the function body, including the
	// bodies of function literals declared within it.
	Calls []*CallSite
}

// Name renders the node as pkg.Func or pkg.(Type).Method for diagnostics.
func (n *FuncNode) Name() string {
	obj := n.Obj
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := types.TypeString(t, func(p *types.Package) string { return "" })
		return obj.Pkg().Name() + ".(" + name + ")." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// CallSite is one call expression inside a FuncNode, with its resolved
// in-module candidate callees.
type CallSite struct {
	Call *ast.CallExpr
	Pos  token.Pos
	// Callees are the resolved in-module candidates (exactly one for a
	// static call; possibly many for interface dispatch or func values;
	// empty for calls that leave the module).
	Callees []*FuncNode
	// Interface marks a call resolved by class-hierarchy analysis over an
	// interface (or type-parameter constraint) method set.
	Interface bool
	// Dynamic marks a call through a func value. Callees then holds the
	// address-taken signature-compatible candidates, possibly none.
	Dynamic bool
}

// Program is the whole-program view: every loaded package plus the call
// graph over their declared functions.
type Program struct {
	Pkgs  []*Package
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
}

// NodeOf returns the FuncNode of a declared function object, or nil for
// functions outside the loaded packages.
func (p *Program) NodeOf(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	// Generic instantiations share the declaration's node.
	if orig := obj.Origin(); orig != nil {
		obj = orig
	}
	return p.byObj[obj]
}

// LookupFunc finds a node by package-path fragment and function name
// (method name matches regardless of receiver). It is the entry point of
// the guard tests that pin closure membership.
func (p *Program) LookupFunc(pkgFrag, name string) *FuncNode {
	for _, n := range p.Nodes {
		if strings.Contains(n.Pkg.PkgPath, pkgFrag) && n.Obj.Name() == name {
			return n
		}
	}
	return nil
}

// BuildProgram constructs the call graph over the loaded packages. All
// packages must share one token.FileSet (Load guarantees this; LoadDir
// packages are single-package programs).
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		byObj: map[*types.Func]*FuncNode{},
	}
	// Pass 1: one node per declared function with a body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fn, Pkg: pkg, File: file}
				prog.Nodes = append(prog.Nodes, node)
				prog.byObj[obj] = node
			}
		}
	}
	sort.Slice(prog.Nodes, func(i, j int) bool {
		a, b := prog.Nodes[i], prog.Nodes[j]
		if a.Pkg.PkgPath != b.Pkg.PkgPath {
			return a.Pkg.PkgPath < b.Pkg.PkgPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})

	r := &resolver{
		prog:          prog,
		methodsByName: map[string][]*FuncNode{},
		takenBySig:    map[string][]*FuncNode{},
	}
	for _, n := range prog.Nodes {
		if sig := n.Obj.Type().(*types.Signature); sig.Recv() != nil {
			r.methodsByName[n.Obj.Name()] = append(r.methodsByName[n.Obj.Name()], n)
		}
	}
	r.indexAddressTaken()

	// Pass 2: resolve the call sites of every node body.
	for _, n := range prog.Nodes {
		r.resolveBody(n)
	}
	return prog
}

// resolver holds the indexes needed to resolve call edges.
type resolver struct {
	prog          *Program
	methodsByName map[string][]*FuncNode
	// takenBySig maps a signature key to the address-taken in-module
	// functions carrying it — the candidate set for func-value calls.
	takenBySig map[string][]*FuncNode
}

// sigKey renders a signature's parameter and result types (receiver
// dropped) into a comparable key.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	qual := func(p *types.Package) string { return p.Path() }
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	b.WriteByte(')')
	for i := 0; i < sig.Results().Len(); i++ {
		if i == 0 {
			b.WriteByte('(')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	if sig.Results().Len() > 0 {
		b.WriteByte(')')
	}
	return b.String()
}

// indexAddressTaken finds every in-module function referenced outside a
// direct call position — assigned, passed, stored, or bound as a method
// value — and indexes it by the signature of the resulting func value.
func (r *resolver) indexAddressTaken() {
	for _, pkg := range r.prog.Pkgs {
		for _, file := range pkg.Syntax {
			// Collect the expressions that occupy call-function position;
			// references elsewhere are value references.
			funPos := map[ast.Expr]bool{}
			ast.Inspect(file, func(nd ast.Node) bool {
				if call, ok := nd.(*ast.CallExpr); ok {
					funPos[unparen(call.Fun)] = true
					// Generic explicit instantiation: f[T](x).
					switch ix := unparen(call.Fun).(type) {
					case *ast.IndexExpr:
						funPos[unparen(ix.X)] = true
					case *ast.IndexListExpr:
						funPos[unparen(ix.X)] = true
					}
				}
				return true
			})
			ast.Inspect(file, func(nd ast.Node) bool {
				var obj types.Object
				var expr ast.Expr
				switch e := nd.(type) {
				case *ast.Ident:
					obj = pkg.Info.Uses[e]
					expr = e
				case *ast.SelectorExpr:
					obj = pkg.Info.Uses[e.Sel]
					expr = e
				default:
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || funPos[expr] {
					return true
				}
				node := r.prog.NodeOf(fn)
				if node == nil {
					return true
				}
				// The value signature of a method value drops the receiver;
				// Info.Types has the bound type for selector expressions.
				sig, _ := fn.Type().(*types.Signature)
				if tv, ok := pkg.Info.Types[expr]; ok {
					if s, ok := tv.Type.(*types.Signature); ok {
						sig = s
					}
				}
				if sig == nil {
					return true
				}
				key := sigKey(sig)
				for _, have := range r.takenBySig[key] {
					if have == node {
						return true
					}
				}
				r.takenBySig[key] = append(r.takenBySig[key], node)
				return true
			})
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// resolveBody walks the node's body (function literals included) and
// records a CallSite per call expression.
func (r *resolver) resolveBody(n *FuncNode) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		site := r.resolveCall(n.Pkg, call)
		if site != nil {
			n.Calls = append(n.Calls, site)
		}
		_ = info
		return true
	})
}

// resolveCall classifies one call expression. It returns nil for
// conversions, builtins and calls into packages outside the program that
// carry no dynamic behavior worth modeling.
func (r *resolver) resolveCall(pkg *Package, call *ast.CallExpr) *CallSite {
	info := pkg.Info
	fun := unparen(call.Fun)

	// Conversions (T(x)) are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil
	}

	// Explicit generic instantiation: f[T](x) / x.m[T](y).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if _, ok := info.Types[ix.X]; ok {
			if isFuncExpr(info, ix.X) {
				fun = unparen(ix.X)
			}
		}
	case *ast.IndexListExpr:
		fun = unparen(ix.X)
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			return nil
		case *types.Func:
			// Direct call of a package-level function (possibly generic).
			site := &CallSite{Call: call, Pos: call.Pos()}
			if node := r.prog.NodeOf(obj); node != nil {
				site.Callees = []*FuncNode{node}
			}
			return site
		case *types.Var:
			// Call through a func-typed variable or parameter.
			return r.dynamicSite(info, call, f)
		case nil:
			// Defs (rare: calling a just-declared func literal binding).
			if _, isFn := info.Defs[f].(*types.Func); isFn {
				return nil
			}
			return nil
		}
		return nil

	case *ast.SelectorExpr:
		if pkgName := packageOfInfo(info, f.X); pkgName != nil {
			// Package-qualified function call.
			if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
				site := &CallSite{Call: call, Pos: call.Pos()}
				if node := r.prog.NodeOf(obj); node != nil {
					site.Callees = []*FuncNode{node}
				}
				return site
			}
			// Package-level func variable (e.g. a hook).
			if _, ok := info.Uses[f.Sel].(*types.Var); ok {
				return r.dynamicSite(info, call, f)
			}
			return nil
		}
		sel := info.Selections[f]
		if sel == nil {
			return nil
		}
		switch sel.Kind() {
		case types.MethodVal:
			obj := sel.Obj().(*types.Func)
			recv := sel.Recv()
			if iface := interfaceOf(recv); iface != nil {
				return r.chaSite(call, obj.Name(), iface)
			}
			site := &CallSite{Call: call, Pos: call.Pos()}
			if node := r.prog.NodeOf(obj); node != nil {
				site.Callees = []*FuncNode{node}
			}
			return site
		case types.FieldVal:
			// Call through a func-typed struct field.
			return r.dynamicSite(info, call, f)
		case types.MethodExpr:
			return nil
		}
		return nil

	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already attributed to
		// the enclosing function.
		return nil

	case *ast.CallExpr, *ast.IndexExpr, *ast.TypeAssertExpr:
		// f()() and friends: a func value of unknown provenance.
		return r.dynamicSite(info, call, fun)
	}
	return nil
}

func isFuncExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// dynamicSite builds a call site through a func value: candidates are the
// address-taken functions with an identical value signature.
func (r *resolver) dynamicSite(info *types.Info, call *ast.CallExpr, fun ast.Expr) *CallSite {
	site := &CallSite{Call: call, Pos: call.Pos(), Dynamic: true}
	t := info.TypeOf(fun)
	if t == nil {
		return site
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return site
	}
	site.Callees = append(site.Callees, r.takenBySig[sigKey(sig)]...)
	return site
}

// interfaceOf returns the interface type a method call dispatches
// through: the receiver's interface, or a type parameter's constraint
// interface. Concrete receivers return nil.
func interfaceOf(recv types.Type) *types.Interface {
	switch t := recv.(type) {
	case *types.TypeParam:
		if iface, ok := t.Constraint().Underlying().(*types.Interface); ok {
			return iface
		}
		return nil
	}
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		return iface
	}
	return nil
}

// chaSite resolves an interface method call by class-hierarchy analysis:
// every in-module method with the call's name whose receiver type
// implements the interface is a candidate.
func (r *resolver) chaSite(call *ast.CallExpr, name string, iface *types.Interface) *CallSite {
	site := &CallSite{Call: call, Pos: call.Pos(), Interface: true}
	for _, m := range r.methodsByName[name] {
		sig := m.Obj.Type().(*types.Signature)
		recv := sig.Recv().Type()
		base := recv
		if p, ok := base.(*types.Pointer); ok {
			base = p.Elem()
		}
		if types.Implements(recv, iface) ||
			types.Implements(types.NewPointer(base), iface) {
			site.Callees = append(site.Callees, m)
		}
	}
	return site
}

// packageOfInfo is packageOf for contexts that carry an Info but no Pass.
func packageOfInfo(info *types.Info, expr ast.Expr) *types.PkgName {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	pkg, _ := info.Uses[id].(*types.PkgName)
	return pkg
}
