package lint

// HotPathTrans returns the whole-program successor of the PR 5 hotpath
// analyzer: instead of checking only the functions annotated
// `//fod:hotpath`, it computes the full call closure of every annotated
// root over the program call graph and applies the hot-path body rules
// (no fmt / clock reads / logging / tracing / map or chan allocation /
// string<->[]byte conversion / escaping append / loop-capturing closure;
// see hotpath.go) to every member — the constant-delay bound of
// Theorem 2.3 is a property of the whole dynamic extent of NextGeq/Test,
// not of the annotated frame alone.
//
// Closure construction:
//
//   - edges follow static calls, interface dispatch (every implementing
//     method is a candidate) and func-value calls (every address-taken
//     signature-compatible function is a candidate);
//   - a call annotated `//fod:coldpath` (on or above the call line), or a
//     callee whose doc comment carries `//fod:coldpath`, is a guarded
//     cold path and is not traversed — the annotation carries the
//     justification (e.g. "once per engine, behind a sync.Once");
//   - calls inside panic(...) arguments are automatically cold: the
//     success path the delay bound covers never executes them;
//   - a func-value call with no address-taken candidate anywhere in the
//     module is reported: the analyzer cannot see the callee, so the
//     0-alloc claim would rest on faith. Devirtualize it or annotate
//     `//fod:coldpath`.
//
// Diagnostics in unannotated closure members carry the call chain from
// the nearest annotated root, so a finding three calls deep is still
// actionable.
func HotPathTrans() *Analyzer {
	return &Analyzer{
		Name:       "hotpath-transitive",
		Doc:        "the full call closure of //fod:hotpath functions stays allocation- and clock-free",
		RunProgram: runHotPathTrans,
	}
}

func runHotPathTrans(pp *ProgramPass) {
	prog := pp.Prog
	visited := map[*FuncNode]bool{}
	parent := map[*FuncNode]*FuncNode{}
	var queue []*FuncNode
	for _, n := range prog.Nodes {
		if funcHasAnnotation(n.Decl, "fod:hotpath") {
			visited[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		pass := pp.PackagePass(n.Pkg)

		bodyPass := pass
		root := funcHasAnnotation(n.Decl, "fod:hotpath")
		if !root {
			bodyPass = pp.decoratedPass(n.Pkg, hotChainSuffix(parent, n))
		}
		checkHotFunc(bodyPass, n.Decl)

		cold := panicArgCalls(pass, n.Decl.Body)
		for _, site := range n.Calls {
			if cold[site.Call] || pass.hasAnnotation(n.File, site.Call, "fod:coldpath") {
				continue
			}
			if site.Dynamic && len(site.Callees) == 0 {
				bodyPass.Report(site.Pos,
					"%s: call through a func value with no visible target on the hot path (devirtualize or annotate //fod:coldpath)",
					n.Decl.Name.Name)
				continue
			}
			for _, callee := range site.Callees {
				if visited[callee] || funcHasAnnotation(callee.Decl, "fod:coldpath") {
					continue
				}
				visited[callee] = true
				parent[callee] = n
				queue = append(queue, callee)
			}
		}
	}
}

// HotClosure computes the //fod:hotpath call closure without reporting
// anything: same roots, same edges, same coldpath/panic-argument pruning
// as the analyzer traversal above. The LINT2_GUARD suite uses it to
// cross-check closure membership against the functions the AllocsPerRun
// guards pin at 0 allocs/op — the static and dynamic halves of the
// Theorem 2.3 delay bound must agree on what "the hot path" is.
func HotClosure(prog *Program) map[*FuncNode]bool {
	passes := map[*Package]*Pass{}
	passFor := func(pkg *Package) *Pass {
		if p, ok := passes[pkg]; ok {
			return p
		}
		p := &Pass{Fset: pkg.Fset, Files: pkg.Syntax, Pkg: pkg.Types, Info: pkg.Info}
		passes[pkg] = p
		return p
	}
	visited := map[*FuncNode]bool{}
	var queue []*FuncNode
	for _, n := range prog.Nodes {
		if funcHasAnnotation(n.Decl, "fod:hotpath") {
			visited[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		pass := passFor(n.Pkg)
		cold := panicArgCalls(pass, n.Decl.Body)
		for _, site := range n.Calls {
			if cold[site.Call] || pass.hasAnnotation(n.File, site.Call, "fod:coldpath") {
				continue
			}
			for _, callee := range site.Callees {
				if visited[callee] || funcHasAnnotation(callee.Decl, "fod:coldpath") {
					continue
				}
				visited[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return visited
}

// hotChainSuffix renders the call chain from the nearest //fod:hotpath
// root down to n, e.g. " [hot closure: core.(Engine).nextGeq → core.(Engine).localEval]".
func hotChainSuffix(parent map[*FuncNode]*FuncNode, n *FuncNode) string {
	var chain []string
	for at := n; at != nil; at = parent[at] {
		chain = append(chain, at.Name())
		if len(chain) > 6 {
			chain = append(chain, "…")
			break
		}
	}
	// Reverse: root first.
	s := " [hot closure: "
	for i := len(chain) - 1; i >= 0; i-- {
		s += chain[i]
		if i > 0 {
			s += " → "
		}
	}
	return s + "]"
}
