package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop returns the analyzer that forbids silently discarded error
// returns in the serving layer (internal/serve), the snapshot codec
// (internal/snap) and the CLIs (cmd/*): an HTTP handler that drops an
// encoder or Write error can emit a truncated or malformed body with a
// 200 status, a snapshot writer that drops an io error persists a
// truncated file that the next start will reject, and a CLI that drops a
// flush/close error reports success for an artifact that never hit disk.
//
// Flagged forms (unless the statement carries `//fod:errok` with a
// justification):
//
//	f()          // expression statement discarding an error result
//	defer f()    // deferred call discarding an error result
//	go f()       // goroutine call discarding an error result
//	_ = f()      // every error result assigned to blank
//
// Exemptions: the fmt.Print family writing to stdout/stderr (their error
// is the terminal going away) and writers documented to never fail
// ((*strings.Builder), (*bytes.Buffer)).
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "no discarded error returns in internal/serve, internal/snap and cmd/*",
		Run:  runErrDrop,
	}
}

func inErrDropScope(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/serve") ||
		strings.Contains(pkgPath, "internal/snap") ||
		strings.Contains(pkgPath, "internal/lint") || // the linter lints itself
		strings.Contains(pkgPath, "/cmd/")
}

func runErrDrop(pass *Pass) {
	if !inErrDropScope(pass.Pkg.Path()) {
		return
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	returnsError := func(call *ast.CallExpr) bool {
		tv, ok := pass.Info.Types[call]
		if !ok || tv.Type == nil {
			return false
		}
		switch t := tv.Type.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if types.Implements(t.At(i).Type(), errIface) {
					return true
				}
			}
			return false
		default:
			return types.Implements(t, errIface)
		}
	}

	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if ok && returnsError(call) && !exemptCall(pass, call) && !pass.hasAnnotation(file, n, "fod:errok") {
					pass.Report(n.Pos(), "error return of %s is discarded (handle it or annotate //fod:errok)", calleeName(pass, call))
				}
			case *ast.DeferStmt:
				if returnsError(n.Call) && !exemptCall(pass, n.Call) && !pass.hasAnnotation(file, n, "fod:errok") {
					pass.Report(n.Pos(), "deferred call %s discards its error (handle it or annotate //fod:errok)", calleeName(pass, n.Call))
				}
			case *ast.GoStmt:
				if returnsError(n.Call) && !exemptCall(pass, n.Call) && !pass.hasAnnotation(file, n, "fod:errok") {
					pass.Report(n.Pos(), "go statement %s discards its error (handle it or annotate //fod:errok)", calleeName(pass, n.Call))
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, file, n, returnsError, errIface)
			}
			return true
		})
	}
}

// checkBlankAssign flags `_ = f()` / `_, _ = f()` style statements where
// every error-typed result lands in a blank identifier.
func checkBlankAssign(pass *Pass, file *ast.File, as *ast.AssignStmt,
	returnsError func(*ast.CallExpr) bool, errIface *types.Interface) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !returnsError(call) || exemptCall(pass, call) || pass.hasAnnotation(file, as, "fod:errok") {
		return
	}
	// Find the error result positions and check whether every one of them
	// is blank-assigned.
	tv := pass.Info.Types[call]
	var errIdx []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Implements(t.At(i).Type(), errIface) {
				errIdx = append(errIdx, i)
			}
		}
	default:
		errIdx = []int{0}
	}
	if len(errIdx) == 0 || len(as.Lhs) <= errIdx[len(errIdx)-1] {
		return
	}
	for _, i := range errIdx {
		if id, ok := as.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
			return // at least one error result is bound to a real variable
		}
	}
	pass.Report(as.Pos(), "error return of %s is blank-discarded (handle it or annotate //fod:errok)", calleeName(pass, call))
}

// exemptCall reports callees whose error is conventionally meaningless:
// the fmt print family targeting stdout/stderr and never-failing writers.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg := packageOf(pass, sel.X); pkg != nil && pkg.Imported().Path() == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return isStdStream(pass, call.Args)
		}
		return false
	}
	// Methods on writers that are documented to never return an error.
	if selInfo, ok := pass.Info.Selections[sel]; ok {
		t := selInfo.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch t.String() {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	return false
}

// isStdStream reports whether the first argument is os.Stdout/os.Stderr.
func isStdStream(pass *Pass, args []ast.Expr) bool {
	if len(args) == 0 {
		return false
	}
	sel, ok := args[0].(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg := packageOf(pass, sel.X)
	return pkg != nil && pkg.Imported().Path() == "os" &&
		(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if pkg := packageOf(pass, fun.X); pkg != nil {
			return pkg.Name() + "." + fun.Sel.Name
		}
		if sel, ok := pass.Info.Selections[fun]; ok {
			t := sel.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				return n.Obj().Name() + "." + fun.Sel.Name
			}
		}
		return fun.Sel.Name
	}
	return "call"
}
