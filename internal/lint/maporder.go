package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapOrderScope lists the import-path fragments of the packages whose
// computations must be worker-count- and run-to-run-deterministic: the
// preprocessing pipeline guarantees a parallel build byte-identical to the
// sequential one, and every structure the answering phase reads (starter
// lists, skip pointers, covers, distance indexes) is compared across
// runs by the differential test harness. internal/graph joined the scope
// with the mutation layer: Patch promises a patched graph byte-identical
// to rebuilding the same edge and color sets, so its folds over edit
// deltas are determinism-bearing too. internal/lowdeg joined with the
// low-degree engine: its parallel ball build promises the same
// worker-count independence as core's, and its counting groups clauses
// through maps whose fold order must not leak into results.
// internal/serve and internal/snap joined in v2: the serve layer
// promises one deterministic response envelope per request (stats and
// query listings must not shuffle between calls), and the snapshot codec
// promises byte-identical files for identical indexes — any map fold on
// either path must be sorted or provably order-free.
var mapOrderScope = []string{
	"internal/core",
	"internal/cover",
	"internal/dist",
	"internal/graph",
	"internal/lowdeg",
	"internal/serve",
	"internal/skip",
	"internal/snap",
	"internal/store",
}

// MapOrder returns the analyzer protecting the determinism guarantee:
// `range` over a map iterates in randomized order, so inside the scoped
// packages every map range must either be rewritten over sorted keys or
// carry a `//fod:sorted` annotation on (or directly above) the range
// statement, asserting that the keys are sorted immediately after
// collection or that the fold is provably order-free (commutative min /
// max / set-union).
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "no unordered map iteration in deterministic packages",
		Run:  runMapOrder,
	}
}

func inMapOrderScope(pkgPath string) bool {
	for _, frag := range mapOrderScope {
		if strings.Contains(pkgPath, frag) {
			return true
		}
	}
	return false
}

func runMapOrder(pass *Pass) {
	if !inMapOrderScope(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.hasAnnotation(file, rng, "fod:sorted") {
				return true
			}
			pass.Report(rng.Pos(),
				"unordered range over map %s in deterministic package %s (sort the keys or annotate //fod:sorted)",
				types.TypeString(t, types.RelativeTo(pass.Pkg)), pass.Pkg.Path())
			return true
		})
	}
}
