// Package instrument is the obsnil golden case: exported
// pointer-receiver methods of an exported type must nil-guard before
// dereferencing. Guarded methods, delegators to guarded pointer-receiver
// methods, and unexported methods are all negative cases.
package instrument

// Gauge mimics an obs instrument: a nil *Gauge must be a no-op sink.
type Gauge struct{ v int64 }

// Bad reads a field before the guard.
func (g *Gauge) Bad() int64 {
	x := g.v // want "dereferences receiver g \(field v\) before a nil guard"
	if g == nil {
		return 0
	}
	return x
}

// Unguarded never checks the receiver at all.
func (g *Gauge) Unguarded() int64 {
	return g.v // want "dereferences receiver g \(field v\) before a nil guard"
}

// Explicit dereference trips the rule too.
func (g *Gauge) Clone() Gauge {
	return *g // want "dereferences receiver g \(\*g\) before a nil guard"
}

// Set guards first: the canonical pattern.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// Load guards first as well.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Inc only delegates to guarded pointer-receiver methods: nil-safe by
// induction, no guard of its own needed.
func (g *Gauge) Inc() { g.Set(g.Load() + 1) }

// internal is unexported: out of the contract's scope.
func (g *Gauge) internal() int64 { return g.v }

// Trace mimics the retained request trace: a nil *Trace (tracer disabled
// or request sampled out) must be a sink like any other instrument.
type Trace struct{ spans []int }

// Spans guards first: the canonical pattern.
func (t *Trace) Spans() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Detail forgets the guard.
func (t *Trace) Detail() int {
	return len(t.spans) // want "dereferences receiver t \(field spans\) before a nil guard"
}

// Ring mimics the lock-free trace ring.
type Ring struct{ head int }

// Len guards first.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return r.head
}

// Push forgets the guard.
func (r *Ring) Push() {
	r.head++ // want "dereferences receiver r \(field head\) before a nil guard"
}
