// Package hot is the hotpath golden case: bad() carries the annotation
// and trips every rule; the same constructs in plain() are ignored, and
// good() shows the allowed forms (slice make, local-variable append).
package hot

import (
	"fmt"
	"log"
	"log/slog"
	"time"
)

var sink any

// bad is annotated as hot and violates every hotpath rule.
//
//fod:hotpath
func bad(xs []int, out *[]int) {
	fmt.Println("boom")        // want "calls fmt.Println on the hot path"
	_ = time.Now()             // want "calls time.Now on the hot path"
	m := make(map[int]int)     // want "make\(map\) on the hot path"
	c := make(chan int)        // want "make\(chan\) on the hot path"
	l := map[int]bool{1: true} // want "map literal allocates on the hot path"
	*out = append(*out, 1)     // want "append escapes"
	b := []byte("convert")     // want "string/\[\]byte conversion allocates"
	for i := 0; i < len(xs); i++ {
		f := func() int { return xs[i] } // want "closure captures loop variable"
		sink = f
	}
	sink = m
	sink = c
	sink = l
	sink = b
}

// plain does the same things without the annotation: no findings.
func plain(xs []int, out *[]int) {
	fmt.Println("fine")
	_ = time.Now()
	m := make(map[int]int)
	*out = append(*out, 1)
	sink = m
}

// good is annotated and uses only the allowed forms.
//
//fod:hotpath
func good(xs []int) int {
	buf := make([]int, 0, len(xs)) // slice make is fine
	for _, x := range xs {
		if x > 0 {
			buf = append(buf, x) // append into a plain local is fine
		}
	}
	return len(buf)
}

// Look-alikes of the tracing vocabulary: the hotpath rule matches the
// receiver type NAME (Span, Trace, Tracer, Ring; Registry's span
// constructors), so the fixture needs no out-of-stdlib import.
type Span struct{ n int }

func (s *Span) End() {}

type Registry struct{ n int }

func (r *Registry) Span(name string) *Span      { return &Span{} }
func (r *Registry) StartSpan(name string) *Span { return &Span{} }
func (r *Registry) Names() int                  { return r.n }

// traced is annotated and calls every forbidden tracing/logging form.
//
//fod:hotpath
func traced(r *Registry, s *Span) {
	sp := r.Span("page")       // want "calls Registry.Span on the hot path"
	sp2 := r.StartSpan("page") // want "calls Registry.StartSpan on the hot path"
	sp.End()                   // want "calls Span.End on the hot path"
	sp2.End()                  // want "calls Span.End on the hot path"
	s.End()                    // want "calls Span.End on the hot path"
	slog.Info("event")         // want "calls slog.Info on the hot path"
	log.Println("event")       // want "calls log.Println on the hot path"
	_ = r.Names()              // Registry methods that mint no spans are fine
}

// untraced does the same without the annotation: no findings.
func untraced(r *Registry, s *Span) {
	sp := r.Span("page")
	sp.End()
	s.End()
	slog.Info("event")
	log.Println("event")
}
