// Package det is the maporder golden case: one raw map range (finding),
// one //fod:sorted-annotated range (suppressed), and one slice range
// (out of the rule's reach). The same file loaded under an import path
// outside the deterministic packages yields no findings at all.
package det

import "sort"

func unordered(m map[string]int) int {
	total := 0
	for _, v := range m { // want "unordered range over map"
		total += v
	}
	return total
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//fod:sorted — keys are sorted immediately after collection
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func overSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
