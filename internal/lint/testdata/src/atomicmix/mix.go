// Package mix is the atomicmix golden case: rule 1 catches fields
// accessed both through old-style sync/atomic calls and plainly; rule 2
// catches mutexes that are hand-rolled atomics. Typed atomics, real
// multi-field mutexes and annotated exceptions stay quiet.
package mix

import (
	"sync"
	"sync/atomic"
)

// mixed: c.hits goes through atomic.AddInt64 in Inc but is read plainly
// in Read — the race rule 1 exists for.
type mixed struct {
	hits int64
}

func (c *mixed) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *mixed) Read() int64 {
	return c.hits // want "accessed via sync/atomic elsewhere but plainly here"
}

// allAtomic uses the old style consistently: no finding.
type allAtomic struct {
	n int64
}

func (c *allAtomic) Inc() int64  { return atomic.AddInt64(&c.n, 1) }
func (c *allAtomic) Load() int64 { return atomic.LoadInt64(&c.n) }

// handRolled: the mutex guards exactly one bool across two critical
// sections and nothing touches the field outside them — rule 2.
type handRolled struct {
	mu  sync.Mutex // want "hand-rolled atomic"
	set bool
}

func (h *handRolled) Set() {
	h.mu.Lock()
	h.set = true
	h.mu.Unlock()
}

func (h *handRolled) Get() bool {
	h.mu.Lock()
	v := h.set
	h.mu.Unlock()
	return v
}

// realMutex guards two fields together — a real invariant, no finding.
type realMutex struct {
	mu   sync.Mutex
	head int
	tail int
}

func (r *realMutex) Push() {
	r.mu.Lock()
	r.head++
	r.tail++
	r.mu.Unlock()
}

func (r *realMutex) Len() int {
	r.mu.Lock()
	n := r.head - r.tail
	r.mu.Unlock()
	return n
}

// escapes guards one int, but the field is also read outside the lock —
// converting it would change behavior someone relies on; no finding.
type escapes struct {
	mu sync.Mutex
	n  int
}

func (e *escapes) Inc() {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
}

func (e *escapes) Dirty() int { return e.n }

func (e *escapes) Snap() int {
	e.mu.Lock()
	v := e.n
	e.mu.Unlock()
	return v
}

// sliceGuard protects a non-scalar: no sync/atomic replacement exists.
type sliceGuard struct {
	mu sync.Mutex
	xs []int
}

func (s *sliceGuard) Add(x int) {
	s.mu.Lock()
	s.xs = append(s.xs, x)
	s.mu.Unlock()
}

func (s *sliceGuard) Len() int {
	s.mu.Lock()
	n := len(s.xs)
	s.mu.Unlock()
	return n
}

// reviewed carries the annotation on the mutex field: no finding.
type reviewed struct {
	//fod:atomicok the mutex doubles as a fence for an external invariant
	mu   sync.Mutex
	flag bool
}

func (r *reviewed) Set() {
	r.mu.Lock()
	r.flag = true
	r.mu.Unlock()
}

func (r *reviewed) Get() bool {
	r.mu.Lock()
	v := r.flag
	r.mu.Unlock()
	return v
}
