// Package held is the lockheld golden case: direct effects under a
// mutex, transitive effects through calls, and the negative shapes the
// region scanner must not claim — goroutine launches, closures that only
// capture the mutex, early-unlock branches, CancelFunc calls.
package held

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"
)

type S struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	wg     sync.WaitGroup
	buf    chan int
	cb     func()
	closed bool
	n      int
}

// direct effects inside an explicit Lock/Unlock pair.
func (s *S) direct(ch chan int) {
	s.mu.Lock()
	ch <- 1        // want "channel send while s.mu is held"
	close(s.buf)   // want "channel close .* while s.mu is held"
	s.wg.Wait()    // want "WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

// deferred unlock: held until return.
func (s *S) deferred(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-ch // want "channel receive while s.mu is held"
}

// read lock: I/O under an RLock is still a convoy for writers.
func (s *S) readIO() {
	s.rw.RLock()
	fmt.Fprintln(os.Stdout, s.n) // want "fmt.Fprintln while s.rw is held"
	s.rw.RUnlock()
}

// callback through a func value under the lock: the callee is invisible,
// so the call itself is the hazard.
func (s *S) callback(f func()) {
	s.mu.Lock()
	f() // want "func-value callback while s.mu is held"
	s.mu.Unlock()
}

// cancel is the CancelFunc exemption: documented non-blocking.
func (s *S) cancel(c context.CancelFunc) {
	s.mu.Lock()
	c() // no finding: context.CancelFunc cannot convoy
	s.n = 0
	s.mu.Unlock()
}

// slowPath sleeps; on its own that is fine.
func (s *S) slowPath() {
	time.Sleep(time.Millisecond)
}

// transitive: the effect is two frames down, the diagnostic lands on the
// call made under the lock.
func (s *S) transitive() {
	s.mu.Lock()
	s.slowPath() // want "transitively performs waits"
	s.mu.Unlock()
}

// launched: a goroutine launch under the lock does not block the holder.
func (s *S) launched() {
	s.mu.Lock()
	go s.slowPath() // no finding: the launch itself is non-blocking
	s.mu.Unlock()
}

// registerCallback defines (but does not run) a closure inside the
// critical section: the Wait belongs to the closure's later caller.
func (s *S) registerCallback() {
	s.mu.Lock()
	s.cb = func() { s.wg.Wait() } // no finding: closure body runs later
	s.mu.Unlock()
}

// early returns unlock inside a branch; the code after the branch runs
// locked or not depending on the path, so the region scanner stops there.
func (s *S) early(ch chan int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ch <- 1 // no finding: runs after the branch unlocked
		return
	}
	s.mu.Unlock()
	ch <- 2 // no finding: lock already released
}

// annotated: a reviewed exception stays quiet.
func (s *S) annotated() {
	s.mu.Lock()
	//fod:lockok bounded: s.buf is buffered and owned by this struct
	s.buf <- 1
	s.mu.Unlock()
}
