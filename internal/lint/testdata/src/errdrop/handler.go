// Package handler is the errdrop golden case: discarded error returns in
// every statement form, against the exempt shapes (handled errors,
// //fod:errok acknowledgments, the fmt print family on std streams, and
// never-failing writers).
package handler

import (
	"fmt"
	"os"
	"strings"
)

func work() error { return nil }

func twoResults() (int, error) { return 0, nil }

func bad() {
	work()       // want "error return of work is discarded"
	defer work() // want "deferred call work discards its error"
	go work()    // want "go statement work discards its error"
	_ = work()   // want "error return of work is blank-discarded"
	_, _ = twoResults() // want "error return of twoResults is blank-discarded"
}

func good() error {
	if err := work(); err != nil {
		return err
	}
	work() //fod:errok — best-effort cleanup, failure is harmless here
	n, err := twoResults()
	if err != nil {
		return err
	}
	_ = n
	fmt.Println("ok")               // print family: exempt
	fmt.Fprintln(os.Stderr, "warn") // std stream: exempt
	var b strings.Builder
	b.WriteString("x") // documented never to fail: exempt
	_ = b.String()
	return nil
}
