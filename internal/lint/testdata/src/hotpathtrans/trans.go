// Package engine is the hotpath-transitive golden case: the closure of
// every //fod:hotpath root is computed over static calls, interface
// dispatch, func values and generic instantiations; //fod:coldpath (on a
// call line or a callee's doc) prunes edges, and panic arguments are
// automatically cold.
package engine

import "fmt"

// frob is dispatched through an interface below: every implementing
// method in the package is a closure candidate.
type frob interface{ frob(n int) int }

type fast struct{}

func (fast) frob(n int) int { return n + 1 }

type slow struct{}

func (slow) frob(n int) int {
	m := map[int]int{n: n} // want "map literal allocates on the hot path"
	return len(m)
}

// root is the annotated entry; everything it reaches is hot.
//
//fod:hotpath
func root(f frob, xs []int) int {
	total := f.frob(len(xs)) // interface dispatch: fast and slow both join
	total += helper(xs)      // static call: helper joins
	total += viaValue(xs)    // func-value call resolved by address-taken matching
	return total
}

// helper is not annotated; it is hot because root reaches it.
func helper(xs []int) int {
	m := make(map[int]int, len(xs)) // want "make\(map\) on the hot path"
	for i, x := range xs {
		m[x] = i
	}
	return len(m)
}

// addTaken is address-taken (see fn below); the f(xs) call in viaValue
// pairs with it by signature.
func addTaken(xs []int) int {
	b := []byte("key") // want "string/\[\]byte conversion allocates"
	return len(b) + len(xs)
}

var fn = addTaken

func viaValue(xs []int) int { return fn(xs) }

// blind calls through a func value no address-taken function matches:
// the analyzer cannot see the callee and says so.
//
//fod:hotpath
func blind(cb func(string) string) string {
	return cb("x") // want "call through a func value with no visible target"
}

// guarded prunes its slow branch with a call-line annotation: slowInit's
// allocation is never reported.
//
//fod:hotpath
func guarded(xs []int) int {
	if len(xs) == 0 {
		//fod:coldpath empty-input fallback, runs at most once per engine
		return slowInit(xs)
	}
	return len(xs)
}

func slowInit(xs []int) int {
	m := make(map[int]int) // cold: the only hot edge to here is annotated
	for i, x := range xs {
		m[x] = i
	}
	return len(m)
}

// memoCold is doc-annotated cold: reachable from a hot root, never
// traversed.
//
//fod:coldpath memoized, computed once behind a sync.Once
func memoCold() map[int]int { return map[int]int{} }

//fod:hotpath
func usesCold() int { return len(memoCold()) }

// guardArity shows the automatic panic-argument exemption: the fmt call
// only runs on the failure path the delay bound does not cover.
//
//fod:hotpath
func guardArity(k, n int) {
	if k != n {
		panic(fmt.Sprintf("arity %d, want %d", k, n))
	}
}

// mapify is generic; the closure follows the instantiation back to the
// origin declaration.
func mapify[T comparable](xs []T) map[T]int {
	m := make(map[T]int, len(xs)) // want "make\(map\) on the hot path"
	for i, x := range xs {
		m[x] = i
	}
	return m
}

//fod:hotpath
func genericRoot(xs []int) int { return len(mapify(xs)) }

// plain does hot-forbidden things but is reached by no annotated root:
// no findings.
func plain(xs []int) int {
	m := make(map[int]int)
	for i, x := range xs {
		m[x] = i
	}
	return len(m)
}
