// Package reproroot is the ctxflow golden case. The claimed import path
// (example.com/internal/serve/reproroot) puts the whole file in serve
// scope for rules 1 and 2 and, via the /reproroot suffix, in module-root
// scope for rule 3 — so one package can exercise every rule.
package reproroot

import (
	"context"
	"net/http"
	"sync"
)

// Engine mimics the enumeration machinery: next is the hot primitive.
type Engine struct{ n int }

//fod:hotpath
func (e *Engine) next(a int) (int, bool) { return a + 1, a < e.n }

// EnumerateAll is exported, handler-reachable, reaches the hot path
// through a loop and takes no context: rule 3 fires.
func (e *Engine) EnumerateAll(yield func(int) bool) {
	a := 0
	for { // want "cannot be cancelled mid-request"
		v, ok := e.next(a)
		if !ok || !yield(v) {
			return
		}
		a = v
	}
}

// CountAll is the same shape, annotated as deliberate.
//
//fod:ctxok the yield-style caller bounds the loop
func (e *Engine) CountAll() int {
	n := 0
	a := 0
	for {
		v, ok := e.next(a)
		if !ok {
			return n
		}
		n++
		a = v
	}
}

// CountCtx threads a context: no finding.
func (e *Engine) CountCtx(ctx context.Context) (int, error) {
	n := 0
	a := 0
	for {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		default:
		}
		v, ok := e.next(a)
		if !ok {
			return n, nil
		}
		n++
		a = v
	}
}

// Handler is the request-path root (takes *http.Request).
func Handler(w http.ResponseWriter, r *http.Request, e *Engine, ch chan int) {
	ctx := context.Background() // want "severs the request deadline"
	e.EnumerateAll(func(int) bool { return true })
	_ = e.CountAll()
	_, _ = e.CountCtx(r.Context())

	ch <- 1 // want "channel send in handler-reachable"
	<-ch    // want "channel receive in handler-reachable"

	select { // want "select without default or ctx.Done"
	case v := <-ch:
		_ = v
	}

	select { // a ctx.Done() case is a cancellation path: no finding
	case <-ctx.Done():
	case v := <-ch:
		_ = v
	}

	select { // a default case never blocks: no finding
	case v := <-ch:
		_ = v
	default:
	}

	var wg sync.WaitGroup
	wg.Wait() // want "WaitGroup.Wait in handler-reachable"
}

// defaulted shows the one allowed Background form: nil-defaulting for
// callers that opted out.
func defaulted(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // nil-default idiom: no finding
	}
	return ctx
}

// lifecycle shows the annotation escape hatch.
func lifecycle() context.Context {
	//fod:ctxok lifecycle context, detached by design
	return context.Background()
}
