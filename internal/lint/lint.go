// Package lint is the repository's custom static-analysis pass: a small,
// stdlib-only analyzer framework (go/ast + go/types, no x/tools
// dependency) plus the repo-specific analyzers that machine-check the
// invariants behind the paper's complexity claims — invariants that
// `go vet` and the race detector cannot see.
//
// The shipped analyzers (see DESIGN.md "Static analysis" for the mapping
// to paper claims):
//
//   - hotpath:  functions annotated `//fod:hotpath` must stay free of
//     allocation-prone and time-dependent constructs, protecting the
//     constant-delay guarantee of Theorem 2.3 / Corollary 2.5.
//   - maporder: no unordered `range` over a map in the deterministic
//     packages (core, cover, dist, skip, store) unless the statement
//     carries `//fod:sorted`, protecting the byte-identical
//     parallel-vs-sequential guarantee of the preprocessing pipeline.
//   - obsnil:   exported pointer-receiver methods of internal/obs must
//     nil-guard the receiver before dereferencing it, keeping the
//     disabled-metrics path (nil instruments as sinks) panic-free.
//   - errdrop:  no silently discarded error returns in internal/serve
//     and cmd/* (a `//fod:errok` annotation acknowledges a deliberate
//     discard).
//
// Annotation vocabulary (line comments, attached to the enclosing
// declaration or statement):
//
//	//fod:hotpath   this function is on the constant-delay hot path
//	//fod:sorted    this map iteration sorts keys (or is provably
//	                order-free); the determinism guarantee is preserved
//	//fod:errok     this error discard is deliberate and harmless
//
// The driver (cmd/fodlint) loads every package of the module, runs all
// analyzers, prints file:line diagnostics and exits non-zero when any
// invariant is violated. It runs in scripts/verify.sh tier 2.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects one package and reports violations through pass.Report.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	report   func(Diagnostic)

	comments map[*ast.File]commentIndex
}

// Report records a violation at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// commentIndex maps line numbers to the fod annotations present on them.
type commentIndex map[int][]string

// annotationsOnLine returns the fod annotations (e.g. "fod:sorted") whose
// comment sits on the given line of the file.
func (p *Pass) annotationsAt(file *ast.File, line int) []string {
	if p.comments == nil {
		p.comments = map[*ast.File]commentIndex{}
	}
	idx, ok := p.comments[file]
	if !ok {
		idx = commentIndex{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "fod:") {
					continue
				}
				// Keep only the directive word; trailing prose is a
				// human-facing justification.
				word := text
				if i := strings.IndexAny(word, " \t—-"); i > 0 {
					word = word[:i]
				}
				ln := p.Fset.Position(c.Pos()).Line
				idx[ln] = append(idx[ln], word)
			}
		}
		p.comments[file] = idx
	}
	return idx[line]
}

// hasAnnotation reports whether the node's first line, or the line
// directly above it, carries the given fod directive. Doc comments of
// declarations are therefore honored, as are end-of-line annotations on
// statements.
func (p *Pass) hasAnnotation(file *ast.File, node ast.Node, directive string) bool {
	line := p.Fset.Position(node.Pos()).Line
	for _, l := range []int{line, line - 1} {
		for _, a := range p.annotationsAt(file, l) {
			if a == directive {
				return true
			}
		}
	}
	return false
}

// funcHasAnnotation reports whether fn's doc comment carries the
// directive (any line of the doc block).
func funcHasAnnotation(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// All returns every shipped analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPath(),
		MapOrder(),
		ObsNil(),
		ErrDrop(),
	}
}

// RunAnalyzers runs the analyzers over every loaded package and returns
// the diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
