// Package lint is the repository's custom static-analysis pass: a small,
// stdlib-only analyzer framework (go/ast + go/types, no x/tools
// dependency) plus the repo-specific analyzers that machine-check the
// invariants behind the paper's complexity claims — invariants that
// `go vet` and the race detector cannot see.
//
// Since v2 the framework is whole-program: Load keeps every package in
// one FileSet, BuildProgram derives a call graph over them (static calls,
// interface dispatch by class-hierarchy analysis, func values by
// address-taken signature matching; see callgraph.go), and analyzers may
// be per-package (Run) or interprocedural (RunProgram).
//
// The shipped analyzers (see DESIGN.md "Static analysis" for the mapping
// to paper claims):
//
//   - hotpath-transitive: the entire call closure of every `//fod:hotpath`
//     function must stay free of allocation-prone and time-dependent
//     constructs, protecting the constant-delay guarantee of Theorem 2.3 /
//     Corollary 2.5 across calls, not just in the annotated frame.
//   - maporder: no unordered `range` over a map in the deterministic
//     packages (core, cover, dist, graph, lowdeg, serve, skip, snap,
//     store) unless the statement carries `//fod:sorted`, protecting the
//     byte-identical parallel-vs-sequential guarantee of the
//     preprocessing pipeline and the deterministic response/snapshot
//     promises of the serving layers.
//   - obsnil:   exported pointer-receiver methods of internal/obs must
//     nil-guard the receiver before dereferencing it, keeping the
//     disabled-metrics path (nil instruments as sinks) panic-free.
//   - errdrop:  no silently discarded error returns in internal/serve,
//     internal/snap, internal/lint and cmd/* (a `//fod:errok` annotation
//     acknowledges a deliberate discard).
//   - ctxflow:  request-path functions thread the request context — no
//     detached context.Background()/TODO(), no handler-reachable blocking
//     without a cancellation path, no uncancellable enumeration loop in a
//     handler-reachable exported engine entry point.
//   - lockheld: no channel operations, Waits, I/O or func-value callbacks
//     while a sync.Mutex/RWMutex is held, checked transitively over the
//     call graph — a serve-layer liveness invariant.
//   - atomicmix: no field accessed both through sync/atomic and plainly,
//     and no mutex whose only job is guarding one scalar a sync/atomic
//     type already covers.
//
// Annotation vocabulary (line comments, attached to the enclosing
// declaration or statement; trailing prose is the human justification):
//
//	//fod:hotpath   this function is on the constant-delay hot path
//	//fod:coldpath  this call/function is off the hot path (guarded,
//	                memoized, or error-only) — not traversed by
//	                hotpath-transitive
//	//fod:sorted    this map iteration sorts keys (or is provably
//	                order-free); the determinism guarantee is preserved
//	//fod:errok     this error discard is deliberate and harmless
//	//fod:ctxok     this detachment/block/loop is deliberate (lifecycle
//	                context, yield-bounded enumeration, ...)
//	//fod:lockok    this operation under a lock is deliberate and bounded
//	//fod:atomicok  this mixed/hand-rolled access pattern is deliberate
//
// The driver (cmd/fodlint) loads every package of the module, runs all
// analyzers, filters findings through the reviewed baseline file
// (lint.baseline.json), prints file:line diagnostics (or -json) and
// exits non-zero when any invariant is violated. It runs in
// scripts/verify.sh tier 2 — over every package, internal/lint included.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Per-package analyzers set Run;
// whole-program (interprocedural) analyzers set RunProgram and receive
// the shared call-graph substrate instead. Exactly one of the two is set.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects one package and reports violations through pass.Report.
	Run func(pass *Pass)
	// RunProgram inspects the whole program (all loaded packages plus the
	// call graph over them) in one pass.
	RunProgram func(pass *ProgramPass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	report   func(Diagnostic)

	comments map[*ast.File]commentIndex
}

// Report records a violation at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries one (analyzer, program) unit of work for the
// interprocedural analyzers.
type ProgramPass struct {
	Prog *Program

	analyzer *Analyzer
	report   func(Diagnostic)
	passes   map[*Package]*Pass
}

// PackagePass returns a per-package Pass wired to this program pass's
// analyzer and report sink, so program analyzers can reuse the
// annotation helpers and body checks of the per-package machinery.
func (pp *ProgramPass) PackagePass(pkg *Package) *Pass {
	if p, ok := pp.passes[pkg]; ok {
		return p
	}
	p := &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Syntax,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: pp.analyzer,
		report:   pp.report,
	}
	pp.passes[pkg] = p
	return p
}

// decoratedPass returns a Pass whose reports get suffix appended to the
// message — used to tag diagnostics with call-chain context.
func (pp *ProgramPass) decoratedPass(pkg *Package, suffix string) *Pass {
	return &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Syntax,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: pp.analyzer,
		report: func(d Diagnostic) {
			d.Message += suffix
			pp.report(d)
		},
	}
}

// Report records a violation at pos in the given package's file set.
func (pp *ProgramPass) Report(pkg *Package, pos token.Pos, format string, args ...any) {
	pp.report(Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: pp.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// commentIndex maps line numbers to the fod annotations present on them.
type commentIndex map[int][]string

// annotationsOnLine returns the fod annotations (e.g. "fod:sorted") whose
// comment sits on the given line of the file.
func (p *Pass) annotationsAt(file *ast.File, line int) []string {
	if p.comments == nil {
		p.comments = map[*ast.File]commentIndex{}
	}
	idx, ok := p.comments[file]
	if !ok {
		idx = commentIndex{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "fod:") {
					continue
				}
				// Keep only the directive word; trailing prose is a
				// human-facing justification.
				word := text
				if i := strings.IndexAny(word, " \t—-"); i > 0 {
					word = word[:i]
				}
				ln := p.Fset.Position(c.Pos()).Line
				idx[ln] = append(idx[ln], word)
			}
		}
		p.comments[file] = idx
	}
	return idx[line]
}

// hasAnnotation reports whether the node's first line, or the line
// directly above it, carries the given fod directive. Doc comments of
// declarations are therefore honored, as are end-of-line annotations on
// statements.
func (p *Pass) hasAnnotation(file *ast.File, node ast.Node, directive string) bool {
	line := p.Fset.Position(node.Pos()).Line
	for _, l := range []int{line, line - 1} {
		for _, a := range p.annotationsAt(file, l) {
			if a == directive {
				return true
			}
		}
	}
	return false
}

// funcHasAnnotation reports whether fn's doc comment carries the
// directive (any line of the doc block).
func funcHasAnnotation(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// All returns every shipped analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathTrans(),
		MapOrder(),
		ObsNil(),
		ErrDrop(),
		CtxFlow(),
		LockHeld(),
		AtomicMix(),
	}
}

// RunAnalyzers runs the analyzers over every loaded package and returns
// the diagnostics sorted by position. Per-package analyzers run once per
// package; program analyzers run once over the call graph built from all
// the packages together (which requires them to share one FileSet — Load
// guarantees this, and a single LoadDir package trivially satisfies it).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = BuildProgram(pkgs)
		}
		a.RunProgram(&ProgramPass{
			Prog:     prog,
			analyzer: a,
			report:   report,
			passes:   map[*Package]*Pass{},
		})
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
				report:   report,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
