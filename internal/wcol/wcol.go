// Package wcol implements the weak r-accessibility characterization of
// nowhere dense classes from Section 2 of the paper: a class C is nowhere
// dense iff for all r and ε there is an N such that every G ∈ C with
// |G| > N admits a linear order under which every vertex weakly
// r-accesses at most |G|^ε vertices. When the bound is a constant c_r the
// class has *bounded expansion* — the hypothesis of the earlier
// enumeration result [21] that this paper removes.
//
// A vertex b is weakly r-accessible from a (under an order <) if some
// path of length ≤ r connects a to b and b is smaller than a and than
// every other vertex on the path — the "weakly r-reachable set"
// WReach_r[a] of the generalized coloring number literature. The package
// provides a degeneracy (smallest-last) ordering, exact WReach counts,
// and the resulting weak coloring number wcol_r.
package wcol

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
)

// Stats reports how a WReachCounts computation ran.
type Stats struct {
	Workers int           // parallelism used for the per-source scans
	Wall    time.Duration // wall time of the scan
}

// DegeneracyOrder returns a smallest-last ordering: repeatedly remove a
// minimum-degree vertex; the removal sequence reversed is the order. The
// result maps rank → vertex; low ranks are "small" in the order. This is
// the standard O(n + m) bucket implementation.
func DegeneracyOrder(g *graph.Graph) []graph.V {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over degrees.
	buckets := make([][]graph.V, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	orderRev := make([]graph.V, 0, n)
	cur := 0
	for len(orderRev) < n {
		for cur > 0 && (cur > maxDeg || len(buckets[cur]) == 0) {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			// Stale bucket entry; the vertex moved to a lower bucket.
			continue
		}
		removed[v] = true
		orderRev = append(orderRev, v)
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], int(w))
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	// Reverse: vertices removed first are largest in the order.
	order := make([]graph.V, n)
	for i, v := range orderRev {
		order[n-1-i] = v
	}
	return order
}

// DegeneracyFast returns the graph's degeneracy in O(n + m) with the same
// bucket queue DegeneracyOrder uses: the answer is the maximum degree a
// vertex has at the moment it is removed by the smallest-last process.
// It always equals the quadratic reference Degeneracy below; the engine
// selection layer of the repro facade calls it on every auto-mode build,
// so it must stay linear.
func DegeneracyFast(g *graph.Graph) int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]graph.V, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	left, cur, d := n, 0, 0
	for left > 0 {
		for cur > 0 && (cur > maxDeg || len(buckets[cur]) == 0) {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			// Stale bucket entry; the vertex moved to a lower bucket.
			continue
		}
		removed[v] = true
		left--
		if cur > d {
			d = cur
		}
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], int(w))
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	return d
}

// Degeneracy returns the graph's degeneracy (the maximum min-degree over
// the removal sequence), a classic sparsity measure: wcol_1 equals it
// under the smallest-last order. It is the O(n²) reference implementation
// that DegeneracyFast is differential-tested against.
func Degeneracy(g *graph.Graph) int {
	n := g.N()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	removed := make([]bool, n)
	d := 0
	for it := 0; it < n; it++ {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > d {
			d = bestDeg
		}
		removed[best] = true
		for _, w := range g.Neighbors(best) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return d
}

// WReachCounts returns, for every vertex a, |WReach_r[a] \ {a}| under the
// given order: the number of vertices weakly r-accessible from a.
//
// Algorithm: process sources b in increasing rank; BFS from b restricted
// to vertices of larger rank up to depth r; every reached vertex a has
// b ∈ WReach_r[a]. Total cost Σ_b ‖restricted ball‖.
func WReachCounts(g *graph.Graph, order []graph.V, r int) []int {
	counts, _ := WReachCountsWorkers(g, order, r, 1)
	return counts
}

// wreachScratch holds one worker's restricted-BFS state plus its private
// counts accumulator; workers never share scratch, and the accumulators
// are summed afterwards (integer addition commutes, so the totals are
// independent of how sources were interleaved across workers).
type wreachScratch struct {
	counts []int
	depth  []int32
	epoch  []int32
	queue  []graph.V
}

// WReachCountsWorkers is WReachCounts with the per-source scans sharded
// across the given number of workers (≤ 0 selects GOMAXPROCS). The result
// is identical to the sequential computation for any worker count.
func WReachCountsWorkers(g *graph.Graph, order []graph.V, r, workers int) ([]int, Stats) {
	return WReachCountsObs(g, order, r, workers, nil)
}

// WReachCountsObs is WReachCountsWorkers with scan metrics recorded into
// reg (histogram wcol.wreach_ns, counter wcol.sources, gauge
// wcol.workers); a nil registry records nothing.
func WReachCountsObs(g *graph.Graph, order []graph.V, r, workers int, reg *obs.Registry) ([]int, Stats) {
	start := time.Now()
	n := g.N()
	if len(order) != n {
		panic(fmt.Sprintf("wcol: order has %d entries for %d vertices", len(order), n))
	}
	rank := make([]int, n)
	for i, v := range order {
		rank[v] = i
	}
	pool := par.NewPool(par.Resolve(workers))
	nw := pool.Workers()
	if nw > 1 && n < 256 {
		// Too little work to amortize per-worker scratch allocation.
		pool, nw = par.Sequential(), 1
	}
	scratch := make([]*wreachScratch, nw)
	for w := range scratch {
		sc := &wreachScratch{
			counts: make([]int, n),
			depth:  make([]int32, n),
			epoch:  make([]int32, n),
		}
		for i := range sc.epoch {
			sc.epoch[i] = -1
		}
		scratch[w] = sc
	}
	pool.ForEachWorker(n, func(wk, i int) {
		sc := scratch[wk]
		b := order[i]
		// BFS from b through vertices of rank > rank[b].
		sc.queue = sc.queue[:0]
		sc.queue = append(sc.queue, b)
		sc.epoch[b] = int32(i)
		sc.depth[b] = 0
		for head := 0; head < len(sc.queue); head++ {
			v := sc.queue[head]
			if int(sc.depth[v]) >= r {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if sc.epoch[w] == int32(i) || rank[w] <= i {
					continue
				}
				sc.epoch[w] = int32(i)
				sc.depth[w] = sc.depth[v] + 1
				sc.queue = append(sc.queue, int(w))
			}
		}
		for _, v := range sc.queue[1:] {
			sc.counts[v]++
		}
	})
	counts := scratch[0].counts
	for w := 1; w < nw; w++ {
		for v, c := range scratch[w].counts {
			counts[v] += c
		}
	}
	st := Stats{Workers: nw, Wall: time.Since(start)}
	if reg != nil {
		reg.Histogram("wcol.wreach_ns").Observe(st.Wall)
		reg.Counter("wcol.sources").Add(int64(n))
		reg.Gauge("wcol.workers").Set(int64(nw))
	}
	return counts, st
}

// WCol returns wcol_r(G, order) = max_a |WReach_r[a] \ {a}|.
func WCol(g *graph.Graph, order []graph.V, r int) int {
	max := 0
	for _, c := range WReachCounts(g, order, r) {
		if c > max {
			max = c
		}
	}
	return max
}
