// Package wcol implements the weak r-accessibility characterization of
// nowhere dense classes from Section 2 of the paper: a class C is nowhere
// dense iff for all r and ε there is an N such that every G ∈ C with
// |G| > N admits a linear order under which every vertex weakly
// r-accesses at most |G|^ε vertices. When the bound is a constant c_r the
// class has *bounded expansion* — the hypothesis of the earlier
// enumeration result [21] that this paper removes.
//
// A vertex b is weakly r-accessible from a (under an order <) if some
// path of length ≤ r connects a to b and b is smaller than a and than
// every other vertex on the path — the "weakly r-reachable set"
// WReach_r[a] of the generalized coloring number literature. The package
// provides a degeneracy (smallest-last) ordering, exact WReach counts,
// and the resulting weak coloring number wcol_r.
package wcol

import (
	"fmt"

	"repro/internal/graph"
)

// DegeneracyOrder returns a smallest-last ordering: repeatedly remove a
// minimum-degree vertex; the removal sequence reversed is the order. The
// result maps rank → vertex; low ranks are "small" in the order. This is
// the standard O(n + m) bucket implementation.
func DegeneracyOrder(g *graph.Graph) []graph.V {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over degrees.
	buckets := make([][]graph.V, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	orderRev := make([]graph.V, 0, n)
	cur := 0
	for len(orderRev) < n {
		for cur > 0 && (cur > maxDeg || len(buckets[cur]) == 0) {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			// Stale bucket entry; the vertex moved to a lower bucket.
			continue
		}
		removed[v] = true
		orderRev = append(orderRev, v)
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], int(w))
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	// Reverse: vertices removed first are largest in the order.
	order := make([]graph.V, n)
	for i, v := range orderRev {
		order[n-1-i] = v
	}
	return order
}

// Degeneracy returns the graph's degeneracy (the maximum min-degree over
// the removal sequence), a classic sparsity measure: wcol_1 equals it
// under the smallest-last order.
func Degeneracy(g *graph.Graph) int {
	n := g.N()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	removed := make([]bool, n)
	d := 0
	for it := 0; it < n; it++ {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > d {
			d = bestDeg
		}
		removed[best] = true
		for _, w := range g.Neighbors(best) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return d
}

// WReachCounts returns, for every vertex a, |WReach_r[a] \ {a}| under the
// given order: the number of vertices weakly r-accessible from a.
//
// Algorithm: process sources b in increasing rank; BFS from b restricted
// to vertices of larger rank up to depth r; every reached vertex a has
// b ∈ WReach_r[a]. Total cost Σ_b ‖restricted ball‖.
func WReachCounts(g *graph.Graph, order []graph.V, r int) []int {
	n := g.N()
	if len(order) != n {
		panic(fmt.Sprintf("wcol: order has %d entries for %d vertices", len(order), n))
	}
	rank := make([]int, n)
	for i, v := range order {
		rank[v] = i
	}
	counts := make([]int, n)
	depth := make([]int32, n)
	epoch := make([]int32, n)
	for i := range epoch {
		epoch[i] = -1
	}
	var queue []graph.V
	for i := 0; i < n; i++ {
		b := order[i]
		// BFS from b through vertices of rank > rank[b].
		queue = queue[:0]
		queue = append(queue, b)
		epoch[b] = int32(i)
		depth[b] = 0
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if int(depth[v]) >= r {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if epoch[w] == int32(i) || rank[w] <= i {
					continue
				}
				epoch[w] = int32(i)
				depth[w] = depth[v] + 1
				queue = append(queue, int(w))
			}
		}
		for _, v := range queue[1:] {
			counts[v]++
		}
	}
	return counts
}

// WCol returns wcol_r(G, order) = max_a |WReach_r[a] \ {a}|.
func WCol(g *graph.Graph, order []graph.V, r int) int {
	max := 0
	for _, c := range WReachCounts(g, order, r) {
		if c > max {
			max = c
		}
	}
	return max
}
