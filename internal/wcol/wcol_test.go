package wcol

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteWReach computes WReach counts directly from the definition: for
// every pair (a, b) check whether some path of length ≤ r connects them
// with b strictly smallest on the path.
func bruteWReach(g *graph.Graph, order []graph.V, r int) []int {
	n := g.N()
	rank := make([]int, n)
	for i, v := range order {
		rank[v] = i
	}
	counts := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if pathExists(g, rank, a, b, r) {
				counts[a]++
			}
		}
	}
	return counts
}

// pathExists checks for a path a→b of length ≤ r whose vertices other
// than b all have rank > rank[b] (a included).
func pathExists(g *graph.Graph, rank []int, a, b graph.V, r int) bool {
	if rank[a] <= rank[b] {
		return false
	}
	// BFS from b restricted to vertices of rank > rank[b].
	seen := map[graph.V]int{b: 0}
	queue := []graph.V{b}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if seen[v] >= r {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if _, ok := seen[int(w)]; ok || rank[w] <= rank[b] {
				continue
			}
			seen[int(w)] = seen[v] + 1
			queue = append(queue, int(w))
		}
	}
	_, ok := seen[a]
	return ok
}

func TestWReachAgainstBruteForce(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.Star, gen.Grid, gen.RandomTree, gen.SparseRandom} {
		g := gen.Generate(class, 60, gen.Options{Seed: 5})
		order := DegeneracyOrder(g)
		for _, r := range []int{1, 2, 3} {
			got := WReachCounts(g, order, r)
			want := bruteWReach(g, order, r)
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("%s r=%d vertex %d: %d vs brute %d", class, r, v, got[v], want[v])
				}
			}
		}
	}
}

func TestWReachRandomOrders(t *testing.T) {
	g := gen.Generate(gen.KingGrid, 49, gen.Options{Seed: 2})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		order := make([]graph.V, g.N())
		for i := range order {
			order[i] = i
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := WReachCounts(g, order, 2)
		want := bruteWReach(g, order, 2)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("trial %d vertex %d: %d vs %d", trial, v, got[v], want[v])
			}
		}
	}
}

func TestDegeneracyOrderValid(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.Grid, gen.Clique, gen.RandomTree} {
		g := gen.Generate(class, 100, gen.Options{Seed: 3})
		order := DegeneracyOrder(g)
		seen := make([]bool, g.N())
		for _, v := range order {
			if seen[v] {
				t.Fatalf("%s: vertex %d repeated", class, v)
			}
			seen[v] = true
		}
	}
}

func TestDegeneracyValues(t *testing.T) {
	cases := []struct {
		class gen.Class
		n     int
		want  int
	}{
		{gen.Path, 50, 1},
		{gen.Star, 50, 1},
		{gen.Cycle, 50, 2},
		{gen.BalancedTree, 50, 1},
		{gen.Grid, 49, 2},
		{gen.Clique, 12, 11},
	}
	for _, c := range cases {
		g := gen.Generate(c.class, c.n, gen.Options{})
		if d := Degeneracy(g); d != c.want {
			t.Errorf("%s: degeneracy %d, want %d", c.class, d, c.want)
		}
	}
}

// TestDegeneracyFastMatchesReference pins the O(n+m) bucket implementation
// (what the repro facade's auto engine selection runs on every build) to
// the quadratic reference on every sparse generator class plus a dense
// control, across sizes including the degenerate 0- and 1-vertex graphs.
func TestDegeneracyFastMatchesReference(t *testing.T) {
	classes := []gen.Class{
		gen.Path, gen.Cycle, gen.Star, gen.Caterpillar, gen.BalancedTree,
		gen.RandomTree, gen.Grid, gen.KingGrid, gen.BoundedDegree,
		gen.SparseRandom, gen.Clique,
	}
	for _, class := range classes {
		for _, n := range []int{1, 2, 17, 120} {
			g := gen.Generate(class, n, gen.Options{Seed: 11})
			want := Degeneracy(g)
			if got := DegeneracyFast(g); got != want {
				t.Fatalf("%s n=%d: DegeneracyFast = %d, reference Degeneracy = %d",
					class, n, got, want)
			}
		}
	}
	if d := DegeneracyFast(graph.NewBuilder(0, 0).Build()); d != 0 {
		t.Fatalf("zero-vertex graph: DegeneracyFast = %d, want 0", d)
	}
	// A triangle with a pendant vertex: degeneracy 2, max degree 3.
	b := graph.NewBuilder(4, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	if d := DegeneracyFast(b.Build()); d != 2 {
		t.Fatalf("triangle+pendant: DegeneracyFast = %d, want 2", d)
	}
}

// TestWColOnForests: under the smallest-last order, wcol_1 of a forest is
// its degeneracy (1), and the star has wcol_r = 1 for all r (only the hub
// is accessed).
func TestWColOnForests(t *testing.T) {
	star := gen.Generate(gen.Star, 100, gen.Options{})
	order := DegeneracyOrder(star)
	if w := WCol(star, order, 1); w != 1 {
		t.Fatalf("star wcol_1 = %d, want 1", w)
	}
	// For r ≥ 2 every leaf also weakly reaches the smallest leaf through
	// the hub, so wcol_r = 2 — still a constant, as bounded expansion
	// demands.
	for r := 2; r <= 3; r++ {
		if w := WCol(star, order, r); w != 2 {
			t.Fatalf("star wcol_%d = %d, want 2", r, w)
		}
	}
	tree := gen.Generate(gen.RandomTree, 200, gen.Options{Seed: 4})
	order = DegeneracyOrder(tree)
	if w := WCol(tree, order, 1); w != 1 {
		t.Fatalf("tree wcol_1 = %d, want 1", w)
	}
}

// TestWColSeparatesSparseFromDense: the paper's §2 characterization in
// miniature — wcol_2 stays small on nowhere dense classes and explodes on
// the dense control.
func TestWColSeparatesSparseFromDense(t *testing.T) {
	n := 400
	sparseMax := 0
	for _, class := range []gen.Class{gen.Path, gen.Grid, gen.KingGrid, gen.BalancedTree} {
		g := gen.Generate(class, n, gen.Options{Seed: 6})
		if w := WCol(g, DegeneracyOrder(g), 2); w > sparseMax {
			sparseMax = w
		}
	}
	dense := gen.Generate(gen.DenseRandom, n, gen.Options{Seed: 6})
	wd := WCol(dense, DegeneracyOrder(dense), 2)
	if wd <= 2*sparseMax {
		t.Fatalf("dense wcol_2 = %d not well above sparse max %d", wd, sparseMax)
	}
}
