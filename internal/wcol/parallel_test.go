package wcol

import (
	"reflect"
	"testing"

	"repro/internal/gen"
)

// TestWReachCountsWorkersIdentical asserts sharded scans produce exactly
// the sequential counts for every worker count.
func TestWReachCountsWorkersIdentical(t *testing.T) {
	ns := []int{40, 700}
	if testing.Short() {
		ns = []int{40, 160}
	}
	for _, class := range []gen.Class{gen.Path, gen.Grid, gen.RandomTree,
		gen.BoundedDegree, gen.SparseRandom, gen.Clique} {
		for _, n := range ns {
			g := gen.Generate(class, n, gen.Options{Seed: 2})
			order := DegeneracyOrder(g)
			for _, r := range []int{1, 2, 3} {
				want := WReachCounts(g, order, r)
				for _, workers := range []int{2, 4, 7} {
					got, st := WReachCountsWorkers(g, order, r, workers)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s n=%d r=%d w=%d: counts differ", class, n, r, workers)
					}
					if st.Workers < 1 {
						t.Fatalf("Stats.Workers = %d", st.Workers)
					}
				}
			}
		}
	}
}
