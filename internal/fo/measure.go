package fo

import "sort"

// FreeVars returns the free variables of f, sorted lexicographically.
func FreeVars(f Formula) []Var {
	set := map[Var]bool{}
	collectFree(f, map[Var]bool{}, set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectFree(f Formula, bound, free map[Var]bool) {
	switch f := f.(type) {
	case Truth:
	case Edge:
		addFree(f.X, bound, free)
		addFree(f.Y, bound, free)
	case HasColor:
		addFree(f.X, bound, free)
	case Eq:
		addFree(f.X, bound, free)
		addFree(f.Y, bound, free)
	case DistLeq:
		addFree(f.X, bound, free)
		addFree(f.Y, bound, free)
	case Rel:
		for _, a := range f.Args {
			addFree(a, bound, free)
		}
	case Not:
		collectFree(f.F, bound, free)
	case And:
		for _, g := range f.Fs {
			collectFree(g, bound, free)
		}
	case Or:
		for _, g := range f.Fs {
			collectFree(g, bound, free)
		}
	case Exists:
		collectQuantified(f.V, f.F, bound, free)
	case Forall:
		collectQuantified(f.V, f.F, bound, free)
	}
}

func collectQuantified(v Var, body Formula, bound, free map[Var]bool) {
	was := bound[v]
	bound[v] = true
	collectFree(body, bound, free)
	bound[v] = was
}

func addFree(v Var, bound, free map[Var]bool) {
	if !bound[v] {
		free[v] = true
	}
}

// Size returns the number of AST nodes of f, the |q| of the paper (up to a
// constant factor on the textual symbol count).
func Size(f Formula) int {
	switch f := f.(type) {
	case Not:
		return 1 + Size(f.F)
	case And:
		s := 1
		for _, g := range f.Fs {
			s += Size(g)
		}
		return s
	case Or:
		s := 1
		for _, g := range f.Fs {
			s += Size(g)
		}
		return s
	case Exists:
		return 1 + Size(f.F)
	case Forall:
		return 1 + Size(f.F)
	default:
		return 1
	}
}

// QuantifierRank returns the maximal nesting depth of quantifiers.
func QuantifierRank(f Formula) int {
	switch f := f.(type) {
	case Not:
		return QuantifierRank(f.F)
	case And:
		r := 0
		for _, g := range f.Fs {
			if q := QuantifierRank(g); q > r {
				r = q
			}
		}
		return r
	case Or:
		r := 0
		for _, g := range f.Fs {
			if q := QuantifierRank(g); q > r {
				r = q
			}
		}
		return r
	case Exists:
		return 1 + QuantifierRank(f.F)
	case Forall:
		return 1 + QuantifierRank(f.F)
	default:
		return 0
	}
}

// FQ computes f_q(ℓ) = (4q)^{q+ℓ} from Section 5.1.2, the locality radius
// associated with q-rank ℓ. It saturates at a large cap to avoid overflow
// (the paper's constants are astronomically large anyway; callers clamp).
func FQ(q, ell int) int {
	const limit = 1 << 30
	v := 1
	base := 4 * q
	for i := 0; i < q+ell; i++ {
		if v > limit/base {
			return limit
		}
		v *= base
	}
	return v
}

// QRankAtMost reports whether f has q-rank at most ℓ (Section 5.1.2): the
// quantifier rank is ≤ ℓ and every distance atom dist(x,y) ≤ d occurring in
// the scope of i ≤ ℓ quantifiers satisfies d ≤ (4q)^{q+ℓ−i}.
func QRankAtMost(f Formula, q, ell int) bool {
	return qrankOK(f, q, ell, 0)
}

func qrankOK(f Formula, q, ell, depth int) bool {
	switch f := f.(type) {
	case DistLeq:
		return f.D <= FQ(q, ell-depth)
	case Not:
		return qrankOK(f.F, q, ell, depth)
	case And:
		for _, g := range f.Fs {
			if !qrankOK(g, q, ell, depth) {
				return false
			}
		}
		return true
	case Or:
		for _, g := range f.Fs {
			if !qrankOK(g, q, ell, depth) {
				return false
			}
		}
		return true
	case Exists:
		return depth < ell && qrankOK(f.F, q, ell, depth+1)
	case Forall:
		return depth < ell && qrankOK(f.F, q, ell, depth+1)
	default:
		return true
	}
}

// Rename returns f with every free occurrence of variable from replaced by
// to. Quantifiers binding `from` shadow the renaming as usual.
func Rename(f Formula, from, to Var) Formula {
	r := func(v Var) Var {
		if v == from {
			return to
		}
		return v
	}
	switch f := f.(type) {
	case Truth:
		return f
	case Edge:
		return Edge{r(f.X), r(f.Y)}
	case HasColor:
		return HasColor{f.C, r(f.X)}
	case Eq:
		return Eq{r(f.X), r(f.Y)}
	case DistLeq:
		return DistLeq{r(f.X), r(f.Y), f.D}
	case Rel:
		args := make([]Var, len(f.Args))
		for i, a := range f.Args {
			args[i] = r(a)
		}
		return Rel{f.Name, args}
	case Not:
		return Not{Rename(f.F, from, to)}
	case And:
		fs := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			fs[i] = Rename(g, from, to)
		}
		return And{fs}
	case Or:
		fs := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			fs[i] = Rename(g, from, to)
		}
		return Or{fs}
	case Exists:
		if f.V == from {
			return f
		}
		return Exists{f.V, Rename(f.F, from, to)}
	case Forall:
		if f.V == from {
			return f
		}
		return Forall{f.V, Rename(f.F, from, to)}
	}
	return f
}

// MaxDistConstant returns the largest d of any dist(·,·) ≤ d atom in f, or
// 0 if there is none. It determines the locality radius the enumeration
// engine must cover.
func MaxDistConstant(f Formula) int {
	switch f := f.(type) {
	case DistLeq:
		return f.D
	case Not:
		return MaxDistConstant(f.F)
	case And:
		d := 0
		for _, g := range f.Fs {
			if e := MaxDistConstant(g); e > d {
				d = e
			}
		}
		return d
	case Or:
		d := 0
		for _, g := range f.Fs {
			if e := MaxDistConstant(g); e > d {
				d = e
			}
		}
		return d
	case Exists:
		return MaxDistConstant(f.F)
	case Forall:
		return MaxDistConstant(f.F)
	default:
		return 0
	}
}
