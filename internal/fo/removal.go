package fo

import (
	"fmt"

	"repro/internal/graph"
)

// Removal implements the Removal Lemma (Lemma 5.5): given a colored graph
// G, a vertex s, and a bound maxD on distance constants, it produces a
// recoloring H of G \ {s} with fresh color classes
//
//	D_i = { w ≠ s : dist_G(w, s) ≤ i }   for i = 1..maxD
//
// such that any FO⁺ formula φ can be rewritten (Rewrite) into a formula φ′
// over the extended schema with
//
//	G ⊨ φ(b̄)  ⟺  H ⊨ φ′(b̄_{∖I})
//
// for all tuples b̄ whose s-positions are exactly the designated variables.
// This is the mechanism Step 4 of Proposition 4.2 and Steps 8–11 of the
// main algorithm use to recurse along the splitter game.
type Removal struct {
	// H is G \ {s} with the D_i color classes appended.
	H *graph.Graph
	// Sub maps H's vertices to G's (H keeps G's relative vertex order).
	Sub *graph.Sub

	g    *graph.Graph
	s    graph.V
	maxD int
	base int // first D_i color index; D_i has color base+i-1
}

// NewRemoval builds the recolored graph H for removing s, supporting
// rewritten distance constants up to maxD.
func NewRemoval(g *graph.Graph, s graph.V, maxD int) *Removal {
	if maxD < 1 {
		maxD = 1
	}
	rest := make([]graph.V, 0, g.N()-1)
	for v := 0; v < g.N(); v++ {
		if v != s {
			rest = append(rest, v)
		}
	}
	sub := graph.Induce(g, rest)
	// Distance classes around s, computed in G.
	bfs := graph.NewBFS(g)
	classes := make([][]graph.V, maxD)
	for _, w := range bfs.Ball(s, maxD) {
		d := bfs.Dist(int(w))
		if d == 0 {
			continue
		}
		lw := sub.Local(int(w))
		for i := d; i <= maxD; i++ {
			classes[i-1] = append(classes[i-1], lw)
		}
	}
	h := graph.AddColors(sub.G, classes...)
	return &Removal{
		H: h, Sub: sub, g: g, s: s, maxD: maxD, base: sub.G.NumColors(),
	}
}

// DistColor returns the color index of the class D_i (1 ≤ i ≤ maxD).
func (r *Removal) DistColor(i int) int {
	if i < 1 || i > r.maxD {
		panic(fmt.Sprintf("fo: D_%d outside [1,%d]", i, r.maxD))
	}
	return r.base + i - 1
}

// Rewrite produces φ′ for the designated variables sVars (the variables
// whose positions carry s in the lemma's statement). All distance
// constants of φ must be ≤ maxD.
func (r *Removal) Rewrite(phi Formula, sVars []Var) (Formula, error) {
	s := map[Var]bool{}
	for _, v := range sVars {
		s[v] = true
	}
	return r.rewrite(phi, s)
}

func (r *Removal) rewrite(f Formula, sv map[Var]bool) (Formula, error) {
	switch f := f.(type) {
	case Truth:
		return f, nil
	case Edge:
		switch {
		case sv[f.X] && sv[f.Y]:
			return Truth{false}, nil // no self loops
		case sv[f.X]:
			return r.distAtom(f.Y, 1)
		case sv[f.Y]:
			return r.distAtom(f.X, 1)
		}
		return f, nil
	case Eq:
		switch {
		case sv[f.X] && sv[f.Y]:
			return Truth{true}, nil
		case sv[f.X] || sv[f.Y]:
			return Truth{false}, nil // the other side ranges over H ∌ s
		}
		return f, nil
	case HasColor:
		if sv[f.X] {
			return Truth{r.g.HasColor(r.s, f.C)}, nil
		}
		return f, nil
	case DistLeq:
		switch {
		case sv[f.X] && sv[f.Y]:
			return Truth{f.D >= 0}, nil
		case sv[f.X]:
			return r.distAtom(f.Y, f.D)
		case sv[f.Y]:
			return r.distAtom(f.X, f.D)
		}
		// dist_G(x,y) ≤ d ⟺ dist_H(x,y) ≤ d ∨ the path goes through s:
		// ∃ i+j ≤ d with dist(x,s) ≤ i and dist(s,y) ≤ j.
		if f.D > r.maxD {
			return nil, fmt.Errorf("fo: distance constant %d exceeds removal bound %d", f.D, r.maxD)
		}
		out := []Formula{f}
		for i := 1; i+1 <= f.D; i++ {
			j := f.D - i
			out = append(out, AndOf(
				HasColor{r.DistColor(i), f.X},
				HasColor{r.DistColor(j), f.Y},
			))
		}
		return OrOf(out...), nil
	case Rel:
		return nil, fmt.Errorf("fo: removal rewriting applies to colored-graph formulas only")
	case Not:
		g, err := r.rewrite(f.F, sv)
		if err != nil {
			return nil, err
		}
		return NotOf(g), nil
	case And:
		out := make([]Formula, 0, len(f.Fs))
		for _, g := range f.Fs {
			h, err := r.rewrite(g, sv)
			if err != nil {
				return nil, err
			}
			out = append(out, h)
		}
		return AndOf(out...), nil
	case Or:
		out := make([]Formula, 0, len(f.Fs))
		for _, g := range f.Fs {
			h, err := r.rewrite(g, sv)
			if err != nil {
				return nil, err
			}
			out = append(out, h)
		}
		return OrOf(out...), nil
	case Exists:
		// ∃z over G splits: the witness is s, or it lives in H.
		wasS := sv[f.V]
		sv[f.V] = false
		inH, err := r.rewrite(f.F, sv)
		if err != nil {
			return nil, err
		}
		sv[f.V] = true
		isS, err := r.rewrite(f.F, sv)
		sv[f.V] = wasS
		if err != nil {
			return nil, err
		}
		return OrOf(Exists{f.V, inH}, bindFresh(f.V, isS)), nil
	case Forall:
		wasS := sv[f.V]
		sv[f.V] = false
		inH, err := r.rewrite(f.F, sv)
		if err != nil {
			return nil, err
		}
		sv[f.V] = true
		isS, err := r.rewrite(f.F, sv)
		sv[f.V] = wasS
		if err != nil {
			return nil, err
		}
		return AndOf(Forall{f.V, inH}, bindFresh(f.V, isS)), nil
	}
	return nil, fmt.Errorf("fo: cannot rewrite %T", f)
}

// distAtom rewrites dist(x, s) ≤ d into the color atom D_d(x).
func (r *Removal) distAtom(x Var, d int) (Formula, error) {
	if d < 1 {
		return Truth{false}, nil // dist(x,s) ≤ 0 with x ≠ s
	}
	if d > r.maxD {
		return nil, fmt.Errorf("fo: distance constant %d exceeds removal bound %d", d, r.maxD)
	}
	return HasColor{r.DistColor(d), x}, nil
}

// bindFresh closes any residual free occurrence of v in the "witness = s"
// branch. After substitution the branch should not mention v; if atoms
// slipped through (they cannot, by construction), quantify them away
// harmlessly.
func bindFresh(v Var, f Formula) Formula {
	for _, fv := range FreeVars(f) {
		if fv == v {
			return Exists{v, f}
		}
	}
	return f
}
