package fo

import "testing"

// fuzzCorpus seeds FuzzParseQuery with every query that appears in
// EXPERIMENTS.md and the rest of the repository's query corpus (examples,
// benchmarks, tests), so `go test` alone already exercises the round-trip
// property on the full corpus.
var fuzzCorpus = []string{
	// EXPERIMENTS.md (E6 Example-2 query, E13 relational corpus).
	"dist(x,y) > 2 & C0(y)",
	"Cites(x,y) & Old(y)",
	// Examples and tests.
	"C0(x)",
	"C0(x) & C0(y) & dist(x,y) > 2",
	"C0(x) & exists z (E(x,z) & C1(z))",
	"C0(x) & exists z C1(z)",
	"C0(x) & ~(exists z (dist(x,z) <= 2 & C1(z)))",
	"C1(x) & C1(y) & dist(x,y) > 4",
	"Cites(x,y) & Seminal(y)",
	"E(x,y)",
	"E(x,y) & C0(x)",
	"E(x,y) & exists x C0(x)",
	"R(x,y)",
	"dist(x,y) <= 1 & C1(x) | dist(x,y) > 2 & C0(x) | dist(x,y) > 2 & C1(y)",
	"dist(x,y) <= 2",
	"dist(x,y) <= 3 & C0(x)",
	"dist(x,y) <= 5 | exists z (dist(z,y) <= 7)",
	"dist(x,y) > 2 & C0(x)",
	"dist(x,z) > 2 & dist(y,z) > 2 & C0(z)",
	"exists z (C0(z) | E(x,z))",
	"exists z (Cites(x,z) & Cites(z,y)) & Seminal(y)",
	"exists z (E(x,z) & E(z,y)) & C0(x)",
	"exists z (E(x,z) & E(z,y)) | E(x,y) | x = y",
	"exists z (E(x,z) & exists w E(z,w)) | C0(x)",
	"exists z (E(x,z) | E(y,z))",
	"exists z (dist(x,z) <= 2 & C0(z)) & dist(x,y) > 3",
	"exists z C0(z)",
	"exists z exists w E(z,w)",
	"forall z (E(x,z) | x = z)",
	"~(exists z (dist(x,z) <= 2 & C0(z)))",
	"true", "false", "x = y", "x != y",
	// Adversarial shapes: atom-named / uppercase quantified variables.
	"exists X (C0(X))",
	"exists dist (E(dist,y))",
	"exists E (E(E,E))",
	"~~x = y",
	"((x = y))",
}

// FuzzParseQuery asserts two properties of the query-language parser:
//
//  1. Parse never panics, whatever bytes it is fed.
//  2. For every formula the parser accepts, parse → String() → reparse is
//     a fixed point: the printed form parses back to a formula that prints
//     identically. (String() is the canonical form the serving layer keys
//     its index cache on, so this is a correctness property of the cache,
//     not just cosmetics.)
func FuzzParseQuery(f *testing.F) {
	for _, q := range fuzzCorpus {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, src string) {
		phi, err := Parse(src)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		s := phi.String()
		phi2, err := Parse(s)
		if err != nil {
			t.Fatalf("String() output does not reparse:\n  src  = %q\n  str  = %q\n  err  = %v", src, s, err)
		}
		if s2 := phi2.String(); s2 != s {
			t.Fatalf("parse→String→reparse not a fixed point:\n  src  = %q\n  str1 = %q\n  str2 = %q", src, s, s2)
		}
	})
}
