package fo

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a formula in the query language used by the cmd/ tools:
//
//	formula  := or
//	or       := and { "|" and }
//	and      := unary { "&" unary }
//	unary    := "~" unary | quantifier | "(" formula ")" | atom
//	quantifier := ("exists" | "forall") var {var} unary
//	atom     := "E" "(" var "," var ")"
//	          | "C" int "(" var ")"
//	          | "dist" "(" var "," var ")" ("<=" | ">") int
//	          | var ("=" | "!=") var
//	          | "true" | "false"
//
// Examples:
//
//	E(x,y) & C0(x)
//	dist(x,y) > 2 & C1(y)
//	exists z (E(x,z) & E(z,y)) | x = y
func Parse(input string) (Formula, error) {
	p := &parser{toks: lex(input)}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("fo: unexpected %q after formula", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokLParen
	tokRParen
	tokComma
	tokEq
	tokNeq
	tokLeq
	tokGt
	tokAnd
	tokOr
	tokNot
	tokBad
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case c == '&':
			toks = append(toks, token{tokAnd, "&"})
			i++
		case c == '|':
			toks = append(toks, token{tokOr, "|"})
			i++
		case c == '~':
			toks = append(toks, token{tokNot, "~"})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "="})
			i++
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!="})
				i += 2
			} else {
				toks = append(toks, token{tokBad, "!"})
				i++
			}
		case c == '<':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokLeq, "<="})
				i += 2
			} else {
				toks = append(toks, token{tokBad, "<"})
				i++
			}
		case c == '>':
			toks = append(toks, token{tokGt, ">"})
			i++
		case unicode.IsDigit(c):
			j := i
			for j < len(s) && unicode.IsDigit(rune(s[j])) {
				j++
			}
			toks = append(toks, token{tokInt, s[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		default:
			toks = append(toks, token{tokBad, string(c)})
			i++
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEnd() bool { return p.peek().kind == tokEOF }
func (p *parser) accept(k tokKind) bool {
	if p.peek().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("fo: expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) parseOr() (Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	fs := []Formula{f}
	for p.accept(tokOr) {
		g, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		fs = append(fs, g)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return Or{fs}, nil
}

func (p *parser) parseAnd() (Formula, error) {
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	fs := []Formula{f}
	for p.accept(tokAnd) {
		g, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, g)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return And{fs}, nil
}

func (p *parser) parseUnary() (Formula, error) {
	switch t := p.peek(); t.kind {
	case tokNot:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{f}, nil
	case tokLParen:
		p.next()
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent:
		switch t.text {
		case "exists", "forall":
			return p.parseQuantifier(t.text)
		case "true":
			p.next()
			return Truth{true}, nil
		case "false":
			p.next()
			return Truth{false}, nil
		case "dist":
			return p.parseDist()
		case "E":
			if p.toks[p.pos+1].kind == tokLParen {
				return p.parseEdge()
			}
		}
		if c, ok := colorIndex(t.text); ok && p.toks[p.pos+1].kind == tokLParen {
			return p.parseColor(c)
		}
		if isRelName(t.text) && p.toks[p.pos+1].kind == tokLParen {
			return p.parseRel()
		}
		return p.parseEquality()
	}
	return nil, fmt.Errorf("fo: unexpected %q", p.peek().text)
}

func colorIndex(ident string) (int, bool) {
	if len(ident) < 2 || ident[0] != 'C' {
		return 0, false
	}
	c, err := strconv.Atoi(ident[1:])
	if err != nil || c < 0 {
		return 0, false
	}
	return c, true
}

func (p *parser) parseQuantifier(kw string) (Formula, error) {
	p.next() // keyword
	var vars []Var
	for p.peek().kind == tokIdent && !isKeyword(p.peek().text) {
		// Stop collecting variables once the next token starts the body:
		// an equality atom (ident = / !=), or an atom name followed by '('
		// (E, C<k>, dist, or an uppercase relation name — variables are
		// lowercase by convention).
		next := p.toks[p.pos+1].kind
		if next == tokEq || next == tokNeq {
			break
		}
		// An atom head only ends the variable list once at least one
		// variable has been collected: a quantifier needs ≥ 1 variable, so
		// the first identifier is always a variable even when it collides
		// with an atom name ("exists X (C0(X))", "exists dist (E(dist,y))").
		// Without this, String() output quantifying an uppercase or
		// atom-named variable would not reparse.
		if next == tokLParen && len(vars) > 0 {
			txt := p.peek().text
			_, isColor := colorIndex(txt)
			if isColor || txt == "E" || txt == "dist" || isRelName(txt) {
				break
			}
		}
		vars = append(vars, Var(p.next().text))
	}
	if len(vars) == 0 {
		return nil, fmt.Errorf("fo: %s without variables", kw)
	}
	body, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for i := len(vars) - 1; i >= 0; i-- {
		if kw == "exists" {
			body = Exists{vars[i], body}
		} else {
			body = Forall{vars[i], body}
		}
	}
	return body, nil
}

// isRelName reports whether an identifier names a relation: by convention
// relation names start with an uppercase letter (E, C<k> and dist are
// handled separately), variables with a lowercase letter.
func isRelName(s string) bool {
	return len(s) > 0 && s[0] >= 'A' && s[0] <= 'Z'
}

func (p *parser) parseRel() (Formula, error) {
	name := p.next().text
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []Var
	for {
		v, err := p.expect(tokIdent, "variable")
		if err != nil {
			return nil, err
		}
		args = append(args, Var(v.text))
		if p.accept(tokComma) {
			continue
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return Rel{Name: name, Args: args}, nil
	}
}

func isKeyword(s string) bool {
	switch s {
	case "exists", "forall", "true", "false":
		return true
	}
	return false
}

func (p *parser) parseEdge() (Formula, error) {
	p.next() // E
	x, y, err := p.parseVarPair()
	if err != nil {
		return nil, err
	}
	return Edge{x, y}, nil
}

func (p *parser) parseColor(c int) (Formula, error) {
	p.next() // Ck
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	v, err := p.expect(tokIdent, "variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return HasColor{c, Var(v.text)}, nil
}

func (p *parser) parseDist() (Formula, error) {
	p.next() // dist
	x, y, err := p.parseVarPair()
	if err != nil {
		return nil, err
	}
	op := p.next()
	if op.kind != tokLeq && op.kind != tokGt {
		return nil, fmt.Errorf("fo: expected '<=' or '>' after dist, got %q", op.text)
	}
	d, err := p.expect(tokInt, "integer distance")
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(d.text)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("fo: bad distance %q", d.text)
	}
	if op.kind == tokLeq {
		return DistLeq{x, y, n}, nil
	}
	return Not{DistLeq{x, y, n}}, nil
}

func (p *parser) parseVarPair() (Var, Var, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return "", "", err
	}
	x, err := p.expect(tokIdent, "variable")
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect(tokComma, "','"); err != nil {
		return "", "", err
	}
	y, err := p.expect(tokIdent, "variable")
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return "", "", err
	}
	return Var(x.text), Var(y.text), nil
}

func (p *parser) parseEquality() (Formula, error) {
	x, err := p.expect(tokIdent, "variable")
	if err != nil {
		return nil, err
	}
	if strings.ContainsAny(x.text, "(") {
		return nil, fmt.Errorf("fo: bad variable %q", x.text)
	}
	op := p.next()
	switch op.kind {
	case tokEq:
		y, err := p.expect(tokIdent, "variable")
		if err != nil {
			return nil, err
		}
		return Eq{Var(x.text), Var(y.text)}, nil
	case tokNeq:
		y, err := p.expect(tokIdent, "variable")
		if err != nil {
			return nil, err
		}
		return Not{Eq{Var(x.text), Var(y.text)}}, nil
	}
	return nil, fmt.Errorf("fo: expected '=' or '!=' after %q, got %q", x.text, op.text)
}
