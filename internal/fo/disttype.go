package fo

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// DistTester answers dist(a,b) ≤ r queries for a fixed graph; both the
// naive BFS tester and the index of Proposition 4.2 implement it.
type DistTester interface {
	// Within reports whether dist(a, b) ≤ r.
	Within(a, b graph.V, r int) bool
}

// BFSDistTester is the naive DistTester backed by truncated BFS.
type BFSDistTester struct{ bfs *graph.BFS }

// NewBFSDistTester returns a BFS-backed distance tester for g.
func NewBFSDistTester(g *graph.Graph) *BFSDistTester {
	return &BFSDistTester{bfs: graph.NewBFS(g)}
}

// Within reports whether dist(a,b) ≤ r by truncated BFS.
func (t *BFSDistTester) Within(a, b graph.V, r int) bool {
	return t.bfs.Distance(a, b, r) >= 0
}

// DistType is the r-distance type τ_r^G(ā) of a k-tuple (Section 5.1.2):
// the undirected graph on positions 1..k with an edge {i,j} iff
// dist(a_i, a_j) ≤ r. Positions here are 0-based.
type DistType struct {
	K   int
	adj []bool // k×k symmetric matrix, diagonal true
}

// NewDistType returns the edgeless distance type on k positions.
func NewDistType(k int) *DistType {
	t := &DistType{K: k, adj: make([]bool, k*k)}
	for i := 0; i < k; i++ {
		t.adj[i*k+i] = true
	}
	return t
}

// SetClose marks positions i and j as being within distance r.
func (t *DistType) SetClose(i, j int) {
	t.adj[i*t.K+j] = true
	t.adj[j*t.K+i] = true
}

// Close reports whether positions i and j are within distance r in the type.
func (t *DistType) Close(i, j int) bool { return t.adj[i*t.K+j] }

// Equal reports whether two distance types coincide.
func (t *DistType) Equal(u *DistType) bool {
	if t.K != u.K {
		return false
	}
	for i := range t.adj {
		if t.adj[i] != u.adj[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for map indexing.
func (t *DistType) Key() string {
	var sb strings.Builder
	for i := 0; i < t.K; i++ {
		for j := i + 1; j < t.K; j++ {
			if t.Close(i, j) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}

// Components returns the connected components of the type as sorted
// position lists, ordered by smallest position.
func (t *DistType) Components() [][]int {
	seen := make([]bool, t.K)
	var comps [][]int
	for s := 0; s < t.K; s++ {
		if seen[s] {
			continue
		}
		stack := []int{s}
		seen[s] = true
		var comp []int
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, i)
			for j := 0; j < t.K; j++ {
				if !seen[j] && t.Close(i, j) {
					seen[j] = true
					stack = append(stack, j)
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

func (t *DistType) String() string {
	var edges []string
	for i := 0; i < t.K; i++ {
		for j := i + 1; j < t.K; j++ {
			if t.Close(i, j) {
				edges = append(edges, fmt.Sprintf("{%d,%d}", i, j))
			}
		}
	}
	if len(edges) == 0 {
		return fmt.Sprintf("τ(k=%d, discrete)", t.K)
	}
	return fmt.Sprintf("τ(k=%d, %s)", t.K, strings.Join(edges, " "))
}

// TypeOf computes τ_r^G(ā) using the given distance tester.
func TypeOf(d DistTester, a []graph.V, r int) *DistType {
	t := NewDistType(len(a))
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			if d.Within(a[i], a[j], r) {
				t.SetClose(i, j)
			}
		}
	}
	return t
}

// AllDistTypes enumerates all 2^(k(k-1)/2) distance types on k positions
// (the set 𝒯_k of the paper). For the small arities used in practice this
// is tiny.
func AllDistTypes(k int) []*DistType {
	pairs := k * (k - 1) / 2
	out := make([]*DistType, 0, 1<<uint(pairs))
	for mask := 0; mask < 1<<uint(pairs); mask++ {
		t := NewDistType(k)
		p := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if mask&(1<<uint(p)) != 0 {
					t.SetClose(i, j)
				}
				p++
			}
		}
		out = append(out, t)
	}
	return out
}

// Consistent reports whether the type is closed under the triangle-ish
// constraint it can never violate for an actual tuple: closeness is not
// transitive in general, so every type is realizable; Consistent only
// rejects types whose diagonal was corrupted. It exists to document that,
// unlike equality types, all distance types are admissible.
func (t *DistType) Consistent() bool {
	for i := 0; i < t.K; i++ {
		if !t.Close(i, i) {
			return false
		}
	}
	return true
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
