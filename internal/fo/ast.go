// Package fo implements first-order logic with distance atoms (the logic
// FO⁺ of Section 5 of the paper) over colored graphs: atoms E(x,y), C_i(x),
// x=y and dist(x,y)≤d, the Boolean connectives, and quantifiers. It
// provides a parser for a small textual query language, structural measures
// (size, quantifier rank, q-rank), naive evaluation (the correctness oracle
// used by tests and baselines), and r-distance types of tuples.
package fo

import (
	"fmt"
	"strings"
)

// Var is a first-order variable.
type Var string

// Formula is a FO⁺ formula over the schema σ_c of colored graphs.
type Formula interface {
	fmt.Stringer
	formula()
}

// Truth is the constant ⊤ (Value=true) or ⊥ (Value=false).
type Truth struct{ Value bool }

// Edge is the atom E(X, Y); E is symmetric.
type Edge struct{ X, Y Var }

// HasColor is the atom C_c(X).
type HasColor struct {
	C int
	X Var
}

// Eq is the atom X = Y.
type Eq struct{ X, Y Var }

// DistLeq is the FO⁺ atom dist(X, Y) ≤ D, interpreted in the Gaifman graph
// (which for colored graphs is the graph itself). D must be ≥ 0.
type DistLeq struct {
	X, Y Var
	D    int
}

// Not is negation.
type Not struct{ F Formula }

// And is conjunction of zero or more formulas (empty = ⊤).
type And struct{ Fs []Formula }

// Or is disjunction of zero or more formulas (empty = ⊥).
type Or struct{ Fs []Formula }

// Exists is existential quantification ∃V F.
type Exists struct {
	V Var
	F Formula
}

// Forall is universal quantification ∀V F.
type Forall struct {
	V Var
	F Formula
}

func (Truth) formula()    {}
func (Edge) formula()     {}
func (HasColor) formula() {}
func (Eq) formula()       {}
func (DistLeq) formula()  {}
func (Not) formula()      {}
func (And) formula()      {}
func (Or) formula()       {}
func (Exists) formula()   {}
func (Forall) formula()   {}

func (f Truth) String() string {
	if f.Value {
		return "true"
	}
	return "false"
}
func (f Edge) String() string     { return fmt.Sprintf("E(%s,%s)", f.X, f.Y) }
func (f HasColor) String() string { return fmt.Sprintf("C%d(%s)", f.C, f.X) }
func (f Eq) String() string       { return fmt.Sprintf("%s = %s", f.X, f.Y) }
func (f DistLeq) String() string  { return fmt.Sprintf("dist(%s,%s) <= %d", f.X, f.Y, f.D) }
func (f Not) String() string      { return "~(" + f.F.String() + ")" }

func (f And) String() string { return joinFormulas(f.Fs, " & ", "true") }
func (f Or) String() string  { return joinFormulas(f.Fs, " | ", "false") }

func (f Exists) String() string { return fmt.Sprintf("exists %s (%s)", f.V, f.F) }
func (f Forall) String() string { return fmt.Sprintf("forall %s (%s)", f.V, f.F) }

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Convenience constructors.

// AndOf returns the conjunction of fs, flattening nested Ands and dropping
// ⊤ conjuncts; it returns ⊥ if any conjunct is ⊥.
func AndOf(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f := f.(type) {
		case Truth:
			if !f.Value {
				return Truth{false}
			}
		case And:
			out = append(out, f.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return Truth{true}
	case 1:
		return out[0]
	}
	return And{out}
}

// OrOf returns the disjunction of fs, flattening nested Ors and dropping ⊥
// disjuncts; it returns ⊤ if any disjunct is ⊤.
func OrOf(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f := f.(type) {
		case Truth:
			if f.Value {
				return Truth{true}
			}
		case Or:
			out = append(out, f.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return Truth{false}
	case 1:
		return out[0]
	}
	return Or{out}
}

// NotOf returns the negation of f, collapsing double negation.
func NotOf(f Formula) Formula {
	switch f := f.(type) {
	case Not:
		return f.F
	case Truth:
		return Truth{!f.Value}
	}
	return Not{f}
}

// DistGreater returns the formula dist(x,y) > d, i.e. ¬(dist(x,y) ≤ d).
func DistGreater(x, y Var, d int) Formula { return Not{DistLeq{x, y, d}} }

// DistQuery returns the pure-FO definition of dist(x,y) ≤ r from
// Definition 4.1: dist≤0 is x=y, dist≤(r+1)(x,y) = ∃z (E(x,z) ∧ dist≤r(z,y)) ∨ dist≤r(x,y).
// It is used to cross-check the FO⁺ distance atom against plain FO.
func DistQuery(x, y Var, r int) Formula {
	if r == 0 {
		return Eq{x, y}
	}
	z := Var(fmt.Sprintf("_d%d", r))
	return OrOf(
		Exists{z, AndOf(Edge{x, z}, DistQuery(z, y, r-1))},
		DistQuery(x, y, r-1),
	)
}
