package fo

import (
	"fmt"

	"repro/internal/graph"
)

// Evaluator evaluates FO⁺ formulas on a colored graph by direct recursion
// (∃/∀ loop over the whole domain, distance atoms run a truncated BFS).
// This is the semantics oracle: exponential in the quantifier rank, used by
// tests and by the naive baselines, never by the index structures.
//
// An Evaluator is not safe for concurrent use.
type Evaluator struct {
	g   *graph.Graph
	bfs *graph.BFS

	// distCache, when enabled, memoizes full BFS distance arrays per
	// source so that repeated distance atoms (typical inside quantifier
	// loops) cost O(1) after the first evaluation. Enable it only on
	// small graphs (induced neighborhoods): the cache can grow to
	// O(sources·n) integers.
	distCache map[graph.V][]int32

	// domain, when non-nil, restricts quantifier ranges (EvalRestricted);
	// domainList, when non-nil, replaces the range entirely (EvalOver).
	domain     func(graph.V) bool
	domainList []graph.V

	// stamp/epoch provide O(1) domainList membership for the witness
	// guards (allocated lazily on first EvalOver).
	stamp []int32
	epoch int32

	// distTester, when non-nil, answers distance atoms instead of BFS —
	// typically the constant-time index of Proposition 4.2.
	distTester DistTester
}

// UseDistTester makes distance atoms delegate to t (e.g. a dist.Index)
// instead of running truncated BFS.
func (e *Evaluator) UseDistTester(t DistTester) { e.distTester = t }

// NewEvaluator returns an evaluator for g.
func NewEvaluator(g *graph.Graph) *Evaluator {
	return &Evaluator{g: g, bfs: graph.NewBFS(g)}
}

// NewCachedEvaluator returns an evaluator with per-source distance
// caching, intended for the small induced neighborhoods the enumeration
// engine evaluates local formulas on.
func NewCachedEvaluator(g *graph.Graph) *Evaluator {
	return &Evaluator{g: g, bfs: graph.NewBFS(g), distCache: map[graph.V][]int32{}}
}

// distLeq answers dist(a,b) ≤ d, through the tester or cache when enabled.
func (e *Evaluator) distLeq(a, b graph.V, d int) bool {
	if e.distTester != nil {
		return e.distTester.Within(a, b, d)
	}
	if e.distCache == nil {
		return e.bfs.Distance(a, b, d) >= 0
	}
	da, ok := e.distCache[a]
	if !ok {
		if db, ok := e.distCache[b]; ok {
			return db[a] >= 0 && int(db[a]) <= d
		}
		da = make([]int32, e.g.N())
		for i := range da {
			da[i] = -1
		}
		for _, w := range e.bfs.Ball(a, e.g.N()) {
			da[w] = int32(e.bfs.Dist(int(w)))
		}
		e.distCache[a] = da
	}
	return da[b] >= 0 && int(da[b]) <= d
}

// Graph returns the graph the evaluator works on.
func (e *Evaluator) Graph() *graph.Graph { return e.g }

// Env is a partial assignment of variables to vertices.
type Env map[Var]graph.V

// EvalRestricted is Eval with quantifiers ranging only over the vertices
// accepted by allowed. For formulas whose quantifiers are guarded within
// the allowed region (certified by the compiler's witness-reach analysis),
// this agrees with Eval over the whole graph while touching far fewer
// vertices.
func (e *Evaluator) EvalRestricted(f Formula, env Env, allowed func(graph.V) bool) bool {
	old := e.domain
	e.domain = allowed
	res := e.Eval(f, env)
	e.domain = old
	return res
}

// EvalOver is Eval with quantifiers iterating only the listed vertices —
// the engine's hot path: the list is a precomputed neighborhood, so a
// quantifier costs O(|domain|) instead of O(n).
func (e *Evaluator) EvalOver(f Formula, env Env, domain []graph.V) bool {
	if e.domainList != nil {
		panic("fo: nested EvalOver is not supported")
	}
	if e.stamp == nil {
		e.stamp = make([]int32, e.g.N())
	}
	e.epoch++
	for _, v := range domain {
		e.stamp[v] = e.epoch
	}
	e.domainList = domain
	res := e.Eval(f, env)
	e.domainList = nil
	return res
}

// inDomainList reports membership in the active EvalOver domain in O(1).
func (e *Evaluator) inDomainList(v graph.V) bool {
	return e.stamp[v] == e.epoch
}

// Eval reports whether G ⊨ f under the assignment env. All free variables
// of f must be assigned; otherwise Eval panics (a programming error).
func (e *Evaluator) Eval(f Formula, env Env) bool {
	switch f := f.(type) {
	case Truth:
		return f.Value
	case Edge:
		return e.g.HasEdge(e.lookup(f.X, env), e.lookup(f.Y, env))
	case HasColor:
		return e.g.HasColor(e.lookup(f.X, env), f.C)
	case Eq:
		return e.lookup(f.X, env) == e.lookup(f.Y, env)
	case DistLeq:
		return e.distLeq(e.lookup(f.X, env), e.lookup(f.Y, env), f.D)
	case Not:
		return !e.Eval(f.F, env)
	case And:
		for _, g := range f.Fs {
			if !e.Eval(g, env) {
				return false
			}
		}
		return true
	case Or:
		for _, g := range f.Fs {
			if e.Eval(g, env) {
				return true
			}
		}
		return false
	case Exists:
		old, had := env[f.V]
		res := false
		e.eachWitness(f.V, f.F, env, func(v graph.V) bool {
			env[f.V] = v
			if e.Eval(f.F, env) {
				res = true
				return false
			}
			return true
		})
		restore(env, f.V, old, had)
		return res
	case Forall:
		old, had := env[f.V]
		res := true
		e.eachDomainVertex(func(v graph.V) bool {
			env[f.V] = v
			if !e.Eval(f.F, env) {
				res = false
				return false
			}
			return true
		})
		restore(env, f.V, old, had)
		return res
	}
	panic(fmt.Sprintf("fo: unknown formula type %T", f))
}

// EvalTuple evaluates f with the free variables vars bound to the tuple a
// (positionally).
func (e *Evaluator) EvalTuple(f Formula, vars []Var, a []graph.V) bool {
	if len(vars) != len(a) {
		panic(fmt.Sprintf("fo: %d variables but %d values", len(vars), len(a)))
	}
	env := make(Env, len(vars))
	for i, v := range vars {
		env[v] = a[i]
	}
	return e.Eval(f, env)
}

func (e *Evaluator) lookup(v Var, env Env) graph.V {
	x, ok := env[v]
	if !ok {
		panic(fmt.Sprintf("fo: unbound variable %s", v))
	}
	return x
}

// eachWitness iterates candidate witnesses for ∃v body: when a top-level
// conjunct of the body is an edge atom E(v, w) (or an equality) whose other
// side is already bound, only the neighbors of that vertex (or the single
// equal vertex) can satisfy the body, so the loop shrinks from the whole
// domain to a degree-sized set. Purely an iteration-order optimization —
// every candidate is still checked against the full body.
func (e *Evaluator) eachWitness(v Var, body Formula, env Env, yield func(graph.V) bool) {
	conjuncts := []Formula{body}
	if and, ok := body.(And); ok {
		conjuncts = and.Fs
	}
	inRange := func(x graph.V) bool {
		if e.domain != nil && !e.domain(x) {
			return false
		}
		return e.domainList == nil || e.inDomainList(x)
	}
	for _, c := range conjuncts {
		switch c := c.(type) {
		case Eq:
			var other Var
			switch {
			case c.X == v && c.Y != v:
				other = c.Y
			case c.Y == v && c.X != v:
				other = c.X
			default:
				continue
			}
			if w, ok := env[other]; ok {
				if inRange(w) {
					yield(w)
				}
				return
			}
		case Edge:
			var other Var
			switch {
			case c.X == v && c.Y != v:
				other = c.Y
			case c.Y == v && c.X != v:
				other = c.X
			default:
				continue
			}
			if w, ok := env[other]; ok {
				for _, u := range e.g.Neighbors(w) {
					if !inRange(int(u)) {
						continue
					}
					if !yield(int(u)) {
						return
					}
				}
				return
			}
		}
	}
	e.eachDomainVertex(yield)
}

// eachDomainVertex iterates the quantifier range (domainList, or all
// vertices filtered by domain); yield returning false stops the iteration.
func (e *Evaluator) eachDomainVertex(yield func(graph.V) bool) {
	if e.domainList != nil {
		for _, v := range e.domainList {
			if e.domain != nil && !e.domain(v) {
				continue
			}
			if !yield(v) {
				return
			}
		}
		return
	}
	for v := 0; v < e.g.N(); v++ {
		if e.domain != nil && !e.domain(v) {
			continue
		}
		if !yield(v) {
			return
		}
	}
}

func restore(env Env, v Var, old graph.V, had bool) {
	if had {
		env[v] = old
	} else {
		delete(env, v)
	}
}
