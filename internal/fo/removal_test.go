package fo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomColored(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 2)
	for i := 0; i < 2*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.4 {
			b.SetColor(v, 0)
		}
		if rng.Float64() < 0.4 {
			b.SetColor(v, 1)
		}
	}
	return b.Build()
}

var removalCorpus = []string{
	"E(x,y)",
	"x = y",
	"C0(x) & C1(y)",
	"dist(x,y) <= 2",
	"dist(x,y) <= 3 & ~(E(x,y))",
	"exists z (E(x,z) & E(z,y))",
	"exists z (dist(x,z) <= 2 & C0(z))",
	"forall z (~(E(x,z)) | C1(z))",
	"exists z w (E(x,z) & E(z,w) & C0(w) & dist(w,y) <= 2)",
}

// TestRemovalLemma is the statement of Lemma 5.5 with no designated
// variables: for tuples avoiding s, G ⊨ φ(b̄) iff H ⊨ φ′(b̄).
func TestRemovalLemma(t *testing.T) {
	g := randomColored(14, 3)
	for s := 0; s < g.N(); s += 5 {
		r := NewRemoval(g, s, 4)
		gev := NewEvaluator(g)
		hev := NewEvaluator(r.H)
		for _, src := range removalCorpus {
			phi := MustParse(src)
			psi, err := r.Rewrite(phi, nil)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			for x := 0; x < g.N(); x++ {
				for y := 0; y < g.N(); y++ {
					if x == s || y == s {
						continue
					}
					want := gev.Eval(phi, Env{"x": x, "y": y})
					got := hev.Eval(psi, Env{"x": r.Sub.Local(x), "y": r.Sub.Local(y)})
					if got != want {
						t.Fatalf("s=%d %s at (%d,%d): H says %v, G says %v",
							s, src, x, y, got, want)
					}
				}
			}
		}
	}
}

// TestRemovalLemmaDesignated exercises the designated-variable form: the
// variable y is semantically pinned to s and removed from the rewritten
// formula's free variables.
func TestRemovalLemmaDesignated(t *testing.T) {
	g := randomColored(14, 9)
	s := 6
	r := NewRemoval(g, s, 4)
	gev := NewEvaluator(g)
	hev := NewEvaluator(r.H)
	for _, src := range []string{
		"E(x,y)",
		"dist(x,y) <= 2",
		"C0(y) & C1(x)",
		"exists z (E(y,z) & E(z,x))",
	} {
		phi := MustParse(src)
		psi, err := r.Rewrite(phi, []Var{"y"})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, fv := range FreeVars(psi) {
			if fv == "y" {
				t.Fatalf("%s: rewritten formula still mentions the designated variable", src)
			}
		}
		for x := 0; x < g.N(); x++ {
			if x == s {
				continue
			}
			want := gev.Eval(phi, Env{"x": x, "y": s})
			got := hev.Eval(psi, Env{"x": r.Sub.Local(x)})
			if got != want {
				t.Fatalf("%s at x=%d (y=s=%d): H says %v, G says %v", src, x, s, got, want)
			}
		}
	}
}

// TestRemovalExample1C replays Example 1-C of the paper: rewriting the
// distance-2 query under removal of a node uses exactly the R_1/R_2
// recoloring disjunction.
func TestRemovalExample1C(t *testing.T) {
	// A star: removing the hub must turn dist ≤ 2 into the R_1∧R_1 test.
	n := 10
	b := graph.NewBuilder(n, 0)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	r := NewRemoval(g, 0, 2)
	psi, err := r.Rewrite(MustParse("dist(x,y) <= 2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	hev := NewEvaluator(r.H)
	// All leaf pairs were at distance 2 through the hub; H is edgeless,
	// so only the D_1 ∧ D_1 disjunct can witness them.
	for x := 1; x < n; x++ {
		for y := 1; y < n; y++ {
			got := hev.Eval(psi, Env{"x": r.Sub.Local(x), "y": r.Sub.Local(y)})
			if !got {
				t.Fatalf("leaf pair (%d,%d) lost its distance-2 certificate", x, y)
			}
		}
	}
}

func TestRemovalRejectsOversizedConstant(t *testing.T) {
	g := randomColored(8, 1)
	r := NewRemoval(g, 0, 2)
	if _, err := r.Rewrite(MustParse("dist(x,y) <= 5"), nil); err == nil {
		t.Fatal("expected an error for d > maxD")
	}
}
