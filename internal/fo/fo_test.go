package fo

import (
	"testing"

	"repro/internal/graph"
)

// pathGraph returns a path 0–1–…–(n−1) with color 0 on even vertices.
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, 2)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	for v := 0; v < n; v += 2 {
		b.SetColor(v, 0)
	}
	return b.Build()
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"E(x,y)",
		"C0(x) & C1(y)",
		"dist(x,y) <= 3",
		"dist(x,y) > 2 & C0(y)",
		"exists z (E(x,z) & E(z,y)) | E(x,y) | x = y",
		"~(E(x,y)) & x != y",
		"forall z (~(E(x,z)) | C0(z))",
		"true | false",
		"exists z w (E(z,w) & C1(z))",
		"R(x,y) & U(x)",
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		// Reparsing the printed form must yield the same string.
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", f.String(), err)
		}
		if f.String() != g.String() {
			t.Fatalf("round trip: %q vs %q", f.String(), g.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"E(x)",
		"E(x,y",
		"dist(x,y) = 2",
		"dist(x,y) <= -1",
		"exists (E(x,y))",
		"C0(x) &",
		"x <",
		"(E(x,y)",
		"E(x,y) extra",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestFreeVars(t *testing.T) {
	f := MustParse("exists z (E(x,z) & E(z,y)) & C0(x)")
	fv := FreeVars(f)
	if len(fv) != 2 || fv[0] != "x" || fv[1] != "y" {
		t.Fatalf("FreeVars = %v", fv)
	}
	if fv := FreeVars(MustParse("exists z C0(z)")); len(fv) != 0 {
		t.Fatalf("sentence has free vars %v", fv)
	}
	// Shadowing: the inner bound z hides the outer free z.
	f = Exists{"z", Edge{"z", "w"}}
	fv = FreeVars(f)
	if len(fv) != 1 || fv[0] != "w" {
		t.Fatalf("shadowing: FreeVars = %v", fv)
	}
}

func TestQuantifierRankAndSize(t *testing.T) {
	f := MustParse("exists z (E(x,z) & exists w E(z,w)) | C0(x)")
	if q := QuantifierRank(f); q != 2 {
		t.Fatalf("rank = %d, want 2", q)
	}
	if s := Size(f); s < 6 {
		t.Fatalf("size = %d, too small", s)
	}
	if QuantifierRank(MustParse("E(x,y)")) != 0 {
		t.Fatal("atom has rank 0")
	}
}

func TestQRank(t *testing.T) {
	// q-rank: a distance atom under i quantifiers must satisfy
	// d ≤ (4q)^{q+ℓ−i}.
	q, ell := 2, 2
	if FQ(q, ell) != 4096 { // (4·2)^(2+2)
		t.Fatalf("FQ(2,2) = %d", FQ(q, ell))
	}
	ok := MustParse("exists z (dist(x,z) <= 8)")
	if !QRankAtMost(ok, 1, 1) { // depth 1 atom: d ≤ (4)^{1+1-1} = 4? No: 8 > 4
		// (4·1)^(1+1−1) = 4 < 8, so this must actually fail.
		t.Log("as expected")
	} else {
		t.Fatal("q-rank bound should reject d=8 at depth 1 for q=ℓ=1")
	}
	if !QRankAtMost(MustParse("dist(x,y) <= 4"), 1, 1) {
		t.Fatal("top-level d=4 is within (4)^2 = 16")
	}
	if QRankAtMost(MustParse("exists z exists w E(z,w)"), 1, 1) {
		t.Fatal("quantifier rank 2 exceeds ℓ=1")
	}
}

func TestEvaluatorBasics(t *testing.T) {
	g := pathGraph(10)
	ev := NewEvaluator(g)
	cases := []struct {
		src  string
		env  Env
		want bool
	}{
		{"E(x,y)", Env{"x": 0, "y": 1}, true},
		{"E(x,y)", Env{"x": 0, "y": 2}, false},
		{"dist(x,y) <= 3", Env{"x": 0, "y": 3}, true},
		{"dist(x,y) <= 2", Env{"x": 0, "y": 3}, false},
		{"dist(x,y) > 2", Env{"x": 0, "y": 9}, true},
		{"C0(x)", Env{"x": 4}, true},
		{"C0(x)", Env{"x": 5}, false},
		{"x = y", Env{"x": 3, "y": 3}, true},
		{"exists z (E(x,z) & E(z,y))", Env{"x": 0, "y": 2}, true},
		{"exists z (E(x,z) & E(z,y))", Env{"x": 0, "y": 3}, false},
		{"forall z (~(E(x,z)) | C0(z))", Env{"x": 1}, true}, // neighbors of 1: 0, 2 (even)
		{"forall z (~(E(x,z)) | C0(z))", Env{"x": 2}, false},
	}
	for _, c := range cases {
		if got := ev.Eval(MustParse(c.src), c.env); got != c.want {
			t.Errorf("%s under %v = %v, want %v", c.src, c.env, got, c.want)
		}
	}
}

func TestCachedEvaluatorAgrees(t *testing.T) {
	g := pathGraph(30)
	plain := NewEvaluator(g)
	cached := NewCachedEvaluator(g)
	f := MustParse("exists z (dist(x,z) <= 2 & C0(z)) & dist(x,y) > 3")
	for x := 0; x < 30; x += 3 {
		for y := 0; y < 30; y += 4 {
			env := Env{"x": x, "y": y}
			if plain.Eval(f, env) != cached.Eval(f, env) {
				t.Fatalf("cache divergence at x=%d y=%d", x, y)
			}
		}
	}
}

func TestDistQueryMatchesAtom(t *testing.T) {
	// Definition 4.1: the pure-FO dist formula equals the FO⁺ atom.
	g := pathGraph(12)
	ev := NewEvaluator(g)
	for r := 0; r <= 3; r++ {
		fopure := DistQuery("x", "y", r)
		atom := DistLeq{"x", "y", r}
		for x := 0; x < 12; x++ {
			for y := 0; y < 12; y++ {
				env := Env{"x": x, "y": y}
				if ev.Eval(fopure, env) != ev.Eval(atom, env) {
					t.Fatalf("r=%d (%d,%d): FO definition and atom disagree", r, x, y)
				}
			}
		}
	}
}

func TestRename(t *testing.T) {
	f := MustParse("E(x,y) & exists x C0(x)")
	g := Rename(f, "x", "u")
	// The free x is renamed; the bound x is untouched.
	want := "(E(u,y)) & (exists x (C0(x)))"
	if g.String() != want {
		t.Fatalf("Rename = %q, want %q", g.String(), want)
	}
}

func TestDistTypeComponents(t *testing.T) {
	typ := NewDistType(4)
	typ.SetClose(0, 2)
	typ.SetClose(2, 3)
	comps := typ.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][1] != 2 || comps[0][2] != 3 {
		t.Fatalf("component 0 = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 1 {
		t.Fatalf("component 1 = %v", comps[1])
	}
}

func TestDistTypeOf(t *testing.T) {
	g := pathGraph(10)
	tester := NewBFSDistTester(g)
	typ := TypeOf(tester, []graph.V{0, 1, 9}, 2)
	if !typ.Close(0, 1) || typ.Close(0, 2) || typ.Close(1, 2) {
		t.Fatalf("wrong type: %v", typ)
	}
}

func TestAllDistTypes(t *testing.T) {
	ts := AllDistTypes(3)
	if len(ts) != 8 {
		t.Fatalf("|T_3| = %d, want 8", len(ts))
	}
	seen := map[string]bool{}
	for _, typ := range ts {
		if !typ.Consistent() {
			t.Fatal("inconsistent type generated")
		}
		if seen[typ.Key()] {
			t.Fatal("duplicate type")
		}
		seen[typ.Key()] = true
	}
}

func TestMaxDistConstant(t *testing.T) {
	if d := MaxDistConstant(MustParse("dist(x,y) <= 5 | exists z (dist(z,y) <= 7)")); d != 7 {
		t.Fatalf("MaxDistConstant = %d", d)
	}
	if d := MaxDistConstant(MustParse("E(x,y)")); d != 0 {
		t.Fatalf("MaxDistConstant = %d", d)
	}
}

// TestQuickPrintParseRoundTrip: printing any randomly generated formula
// and reparsing it yields a formula with the same print form and the same
// semantics on a fixed graph.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	g := pathGraph(8)
	ev := NewEvaluator(g)
	for seed := int64(0); seed < 60; seed++ {
		rng := &randSource{state: uint64(seed*2654435761 + 1)}
		f := genf(rng, 3)
		reparsed, err := Parse(f.String())
		if err != nil {
			t.Fatalf("seed %d: reparse %q: %v", seed, f.String(), err)
		}
		if reparsed.String() != f.String() {
			t.Fatalf("seed %d: %q vs %q", seed, f.String(), reparsed.String())
		}
		env := Env{}
		for _, v := range FreeVars(f) {
			env[v] = int(rng.next() % 8)
		}
		if ev.Eval(f, env) != ev.Eval(reparsed, env) {
			t.Fatalf("seed %d: semantics changed across round trip for %s", seed, f)
		}
	}
}

type randSource struct{ state uint64 }

func (r *randSource) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *randSource) v() Var {
	return Var([]string{"x", "y", "z"}[r.next()%3])
}

func genf(rng *randSource, depth int) Formula {
	if depth == 0 {
		switch rng.next() % 4 {
		case 0:
			return Edge{rng.v(), rng.v()}
		case 1:
			return HasColor{int(rng.next() % 2), rng.v()}
		case 2:
			return Eq{rng.v(), rng.v()}
		default:
			return DistLeq{rng.v(), rng.v(), int(rng.next()%3) + 1}
		}
	}
	switch rng.next() % 5 {
	case 0:
		return AndOf(genf(rng, depth-1), genf(rng, depth-1))
	case 1:
		return OrOf(genf(rng, depth-1), genf(rng, depth-1))
	case 2:
		return Not{genf(rng, depth-1)}
	case 3:
		return Exists{rng.v(), genf(rng, depth-1)}
	default:
		return Forall{rng.v(), genf(rng, depth-1)}
	}
}

func TestAndOrSimplification(t *testing.T) {
	if f := AndOf(Truth{true}, Truth{true}); f.String() != "true" {
		t.Fatalf("AndOf(⊤,⊤) = %s", f)
	}
	if f := AndOf(Edge{"x", "y"}, Truth{false}); f.String() != "false" {
		t.Fatalf("AndOf(E,⊥) = %s", f)
	}
	if f := OrOf(Truth{false}, Edge{"x", "y"}); f.String() != "E(x,y)" {
		t.Fatalf("OrOf(⊥,E) = %s", f)
	}
	if f := NotOf(NotOf(Edge{"x", "y"})); f.String() != "E(x,y)" {
		t.Fatalf("double negation not collapsed: %s", f)
	}
}
