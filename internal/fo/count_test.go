package fo

import (
	"strings"
	"testing"
)

func TestParseCount(t *testing.T) {
	vars, phi, err := ParseCount("#x,y: dist(x,y) > 2 & C0(y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Fatalf("vars = %v", vars)
	}
	if got, want := phi.String(), MustParse("dist(x,y) > 2 & C0(y)").String(); got != want {
		t.Fatalf("body = %q, want %q", got, want)
	}

	// Unused head variables are allowed (they range freely).
	vars, _, err = ParseCount(" #x, y, z : C0(x)")
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestParseCountErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // expected error fragment
	}{
		{"dist(x,y) > 2", "must start with '#'"},
		{"#x C0(x)", "missing the ':'"},
		{"#: C0(x)", "empty variable"},
		{"#x,,y: C0(x)", "empty variable"},
		{"#x,x: C0(x)", "repeated"},
		{"#x: C0(y)", "not declared"},
		{"#E: true", "not a variable name"},
		{"#1x: true", "not a variable name"},
		{"#x: C0(x", "fo:"}, // body parse error propagates
	}
	for _, c := range cases {
		if _, _, err := ParseCount(c.src); err == nil {
			t.Errorf("ParseCount(%q): expected error", c.src)
		} else if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseCount(%q): error %q does not mention %q", c.src, err, c.frag)
		}
	}
}
