package fo

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseCount parses a counting query in the `#x̄: φ` syntax of
// Grohe & Schweikardt, "First-Order Query Evaluation with Cardinality
// Conditions" (the [18] companion of the enumeration paper):
//
//	#x: C0(x)
//	#x,y: dist(x,y) > 2 & C0(y)
//
// The head `#x,y:` declares the counted tuple and its column order; the
// body after the colon is an ordinary FO⁺ formula in the Parse language.
// Every free variable of the body must be declared in the head (head
// variables may go unused — they then range freely, multiplying the
// count by |G| each, exactly as the semantics demands).
func ParseCount(input string) ([]Var, Formula, error) {
	s := strings.TrimSpace(input)
	if !strings.HasPrefix(s, "#") {
		return nil, nil, fmt.Errorf("fo: counting query must start with '#', got %q", input)
	}
	head, body, ok := strings.Cut(s[1:], ":")
	if !ok {
		return nil, nil, fmt.Errorf("fo: counting query %q is missing the ':' after its variables", input)
	}
	var vars []Var
	seen := map[Var]bool{}
	for _, name := range strings.Split(head, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, nil, fmt.Errorf("fo: empty variable in counting head %q", head)
		}
		if !validVarName(name) {
			return nil, nil, fmt.Errorf("fo: %q is not a variable name", name)
		}
		v := Var(name)
		if seen[v] {
			return nil, nil, fmt.Errorf("fo: variable %s repeated in counting head", v)
		}
		seen[v] = true
		vars = append(vars, v)
	}
	phi, err := Parse(body)
	if err != nil {
		return nil, nil, err
	}
	for _, v := range FreeVars(phi) {
		if !seen[v] {
			return nil, nil, fmt.Errorf("fo: free variable %s of the body is not declared in the counting head", v)
		}
	}
	return vars, phi, nil
}

// validVarName reports whether s is a lower-case identifier the query
// language accepts as a variable (a letter followed by letters, digits or
// underscores; the upper-case relation names E and C are reserved).
func validVarName(s string) bool {
	for i, r := range s {
		if i == 0 {
			if !unicode.IsLetter(r) || unicode.IsUpper(r) {
				return false
			}
			continue
		}
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return true
}
