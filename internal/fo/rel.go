package fo

import (
	"fmt"
	"strings"
)

// Rel is a relational atom R(x_1,…,x_j) over an arbitrary relational
// schema. Colored-graph evaluators do not interpret it; the rel package
// translates it into the σ_c vocabulary via Lemma 2.2 and provides a
// direct evaluator for relational structures.
type Rel struct {
	Name string
	Args []Var
}

func (Rel) formula() {}

func (f Rel) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = string(a)
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ","))
}
