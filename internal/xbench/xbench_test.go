package xbench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestFitExponentLinear(t *testing.T) {
	ns := []int{1000, 2000, 4000, 8000}
	ts := make([]time.Duration, len(ns))
	for i, n := range ns {
		ts[i] = time.Duration(n) * time.Microsecond // t = c·n
	}
	if a := FitExponent(ns, ts); math.Abs(a-1.0) > 0.01 {
		t.Fatalf("linear fit exponent = %f", a)
	}
}

func TestFitExponentQuadratic(t *testing.T) {
	ns := []int{100, 200, 400, 800}
	ts := make([]time.Duration, len(ns))
	for i, n := range ns {
		ts[i] = time.Duration(n*n) * time.Nanosecond
	}
	if a := FitExponent(ns, ts); math.Abs(a-2.0) > 0.01 {
		t.Fatalf("quadratic fit exponent = %f", a)
	}
}

func TestFitExponentConstant(t *testing.T) {
	ns := []int{100, 1000, 10000}
	ts := []time.Duration{time.Microsecond, time.Microsecond, time.Microsecond}
	if a := FitExponent(ns, ts); math.Abs(a) > 0.01 {
		t.Fatalf("constant fit exponent = %f", a)
	}
}

func TestFitExponentDegenerate(t *testing.T) {
	if !math.IsNaN(FitExponent([]int{5}, []time.Duration{1})) {
		t.Fatal("single point should yield NaN")
	}
	if !math.IsNaN(FitExponent([]int{5, 5}, []time.Duration{1, 2})) {
		t.Fatal("identical n should yield NaN")
	}
}

func TestSummarizeDelays(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	st := SummarizeDelays(ds)
	if st.Count != 100 || st.Max != 100*time.Millisecond {
		t.Fatalf("summary: %+v", st)
	}
	if st.P50 != 51*time.Millisecond || st.P99 != 100*time.Millisecond {
		t.Fatalf("percentiles: %+v", st)
	}
	if st.Mean != 50500*time.Microsecond {
		t.Fatalf("mean: %v", st.Mean)
	}
	empty := SummarizeDelays(nil)
	if empty.Count != 0 || empty.Max != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestMeasureDelays(t *testing.T) {
	calls := 0
	st := MeasureDelays(10, func() bool {
		calls++
		return calls < 5
	})
	if st.Count != 4 {
		t.Fatalf("count = %d, want 4 (the failing call is excluded)", st.Count)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value", "time")
	tb.Add("foo", 3.14159, 2500*time.Nanosecond)
	tb.Add("longer-name", 42, time.Second+time.Second/2)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "3.142") {
		t.Fatalf("float not formatted: %q", lines[2])
	}
	if !strings.Contains(lines[2], "2.50µs") {
		t.Fatalf("duration not formatted: %q", lines[2])
	}
	if !strings.Contains(lines[3], "1.50s") {
		t.Fatalf("seconds not formatted: %q", lines[3])
	}
}

func TestTimeN(t *testing.T) {
	d := TimeN(time.Millisecond, func() { time.Sleep(100 * time.Microsecond) })
	if d < 50*time.Microsecond {
		t.Fatalf("TimeN returned implausible %v", d)
	}
}
