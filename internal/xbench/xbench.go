// Package xbench contains the small measurement harness used by
// cmd/fodbench and the benchmarks: wall-clock timing, log–log exponent
// fitting (to verify pseudo-linear scaling empirically), delay statistics
// for enumeration, and plain-text table rendering.
package xbench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Time runs f once and returns the elapsed wall-clock time.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// TimeN runs f repeatedly until at least minDur has elapsed and returns
// the mean duration per run.
func TimeN(minDur time.Duration, f func()) time.Duration {
	var total time.Duration
	runs := 0
	for total < minDur {
		total += Time(f)
		runs++
	}
	return total / time.Duration(runs)
}

// FitExponent fits t ≈ c·n^α by least squares on (log n, log t) and
// returns α. It is the scaling verdict of the experiments: α ≈ 1 means
// (pseudo-)linear, α ≈ 0 means constant.
func FitExponent(ns []int, ts []time.Duration) float64 {
	if len(ns) != len(ts) || len(ns) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range ns {
		x := math.Log(float64(ns[i]))
		y := math.Log(float64(ts[i]) + 1)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(ns))
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// FitExponentF is FitExponent for float measurements (e.g. sizes).
func FitExponentF(ns []int, ys []float64) float64 {
	ts := make([]time.Duration, len(ys))
	for i, y := range ys {
		ts[i] = time.Duration(y * float64(time.Second))
	}
	return FitExponent(ns, ts)
}

// DelayStats summarizes the inter-solution delays of an enumeration run.
type DelayStats struct {
	Count int
	Max   time.Duration
	P50   time.Duration
	P99   time.Duration
	Mean  time.Duration
}

// MeasureDelays runs next() repeatedly (returning false at exhaustion or
// when limit results were produced) and records per-call latencies.
func MeasureDelays(limit int, next func() bool) DelayStats {
	var delays []time.Duration
	for len(delays) < limit {
		start := time.Now()
		ok := next()
		d := time.Since(start)
		if !ok {
			break
		}
		delays = append(delays, d)
	}
	return SummarizeDelays(delays)
}

// SummarizeDelays computes the summary of a delay series.
func SummarizeDelays(delays []time.Duration) DelayStats {
	st := DelayStats{Count: len(delays)}
	if len(delays) == 0 {
		return st
	}
	sorted := append([]time.Duration(nil), delays...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	st.Max = sorted[len(sorted)-1]
	st.P50 = sorted[len(sorted)/2]
	st.P99 = sorted[len(sorted)*99/100]
	st.Mean = total / time.Duration(len(sorted))
	return st
}

// Table renders rows with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given header.
func NewTable(cols ...string) *Table { return &Table{Header: cols} }

// Add appends a row; values are rendered with %v.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch v := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = formatDur(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
