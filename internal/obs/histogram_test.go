package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{1 << 38, 39},
		{1 << 39, NumBuckets - 1}, // overflow bucket
		{1 << 50, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's upper edge must map back into that bucket, and the
	// next nanosecond into the next bucket.
	for b := 0; b < NumBuckets-1; b++ {
		edge := bucketUpper(b)
		if got := bucketOf(edge); got != b {
			t.Errorf("bucketOf(upper(%d)=%d) = %d", b, edge, got)
		}
		if got := bucketOf(edge + 1); got != b+1 {
			t.Errorf("bucketOf(upper(%d)+1) = %d, want %d", b, got, b+1)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 values: 50× 10ns, 40× 100ns, 9× 1000ns, 1× 5000ns.
	for i := 0; i < 50; i++ {
		h.ObserveNS(10)
	}
	for i := 0; i < 40; i++ {
		h.ObserveNS(100)
	}
	for i := 0; i < 9; i++ {
		h.ObserveNS(1000)
	}
	h.ObserveNS(5000)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	if s.Max != 5000 {
		t.Fatalf("max %d, want 5000", s.Max)
	}
	wantSum := int64(50*10 + 40*100 + 9*1000 + 5000)
	if s.Sum != wantSum {
		t.Fatalf("sum %d, want %d", s.Sum, wantSum)
	}
	// Quantiles are bucket upper edges: p50 lands in the 10ns bucket
	// [8,15], p90 in the 100ns bucket [64,127], p99 in the 1000ns bucket
	// [512,1023].
	if s.P50 != 15 {
		t.Errorf("p50 %d, want 15", s.P50)
	}
	if s.P90 != 127 {
		t.Errorf("p90 %d, want 127", s.P90)
	}
	if s.P99 != 1023 {
		t.Errorf("p99 %d, want 1023", s.P99)
	}
	// The quantile must never be below the true value's bucket lower edge
	// nor above Max; the top bucket reports the exact maximum.
	if q := h.Quantile(1.0); q != 5000 {
		t.Errorf("p100 %d, want exact max 5000", q)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for ns := int64(1); ns < 1<<20; ns *= 3 {
		h.ObserveNS(ns)
	}
	prev := int64(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %.2f = %d < previous %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Max != 0 || s.P99 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	var nh *Histogram
	nh.Observe(time.Second) // must not panic
	nh.ObserveNS(5)
	if nh.Count() != 0 {
		t.Fatal("nil histogram counted")
	}
	if s := nh.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveNS(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count %d, want %d", got, workers*per)
	}
	if s := h.Snapshot(); s.Max != workers*1000-1000+per-1 {
		t.Fatalf("max %d, want %d", s.Max, workers*1000-1000+per-1)
	}
}
