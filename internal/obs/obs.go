// Package obs is the observability substrate of the repository: atomic
// counters and gauges, lock-free log-bucket latency histograms, a span
// API for phase tracing, and a Registry that exports everything as a JSON
// snapshot and via expvar.
//
// The paper's headline results are complexity claims — pseudo-linear
// preprocessing (Theorem 2.3) and constant delay between consecutive
// answers (Corollary 2.5) — and this package is how the reproduction
// *evidences* them at runtime: the engine records per-answer delay and
// per-call NextGeq/Test latency into histograms, the preprocessing phases
// (dist → cover → kernel → starter → skip) are traced as nested spans,
// and cmd/fodbench turns the histograms into tracked BENCH_*.json
// artifacts.
//
// Design constraints, in order of importance:
//
//  1. Standard library only (the gostore lib discipline): no imports
//     outside std, so every package in the module can depend on obs.
//  2. Near-zero disabled overhead. Every hot-path instrument is reached
//     through a nil check: a nil *Registry hands out nil instruments, and
//     every method of a nil *Counter/*Gauge/*Histogram/*Span is a no-op.
//     Callers keep a single `if h != nil` (or rely on the receiver check)
//     and pay one predictable branch when metrics are off.
//  3. Lock-free recording. Counter/Gauge/Histogram writes are single
//     atomic operations; snapshots read the atomics without stopping
//     writers (a snapshot is consistent per instrument, not across
//     instruments — fine for monitoring).
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so structs can embed Counter by value and register it
// later; a nil *Counter is a sink (every method is a no-op).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, utilization, bag
// count). Zero value ready; nil receiver is a sink.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc increments the gauge by one (e.g. a request entering flight).
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one (e.g. a request leaving flight).
func (g *Gauge) Dec() { g.Add(-1) }

// Max raises the gauge to n if n is larger (atomic CAS loop).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of instruments. Instruments are created
// on first use (Counter/Gauge/Histogram are get-or-create) or attached
// with the Register* methods when a caller owns the instrument itself
// (e.g. the engine's always-on answering counters).
//
// A nil *Registry is valid everywhere and hands out nil instruments — the
// disabled fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil
// receiver returns nil (a sink).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterCounter attaches a caller-owned counter under name (replacing
// any previous registration), so always-on counters (engine answering
// statistics) can be exported without double counting.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// RegisterGauge attaches a caller-owned gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// Snapshot is a point-in-time JSON-serializable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument. Each instrument is read atomically;
// the snapshot as a whole is not a consistent cut across instruments.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns the sorted instrument names, for stable listings.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// expvarPublished guards against double expvar registration (expvar
// panics on duplicate names; tests and multi-command processes may call
// Publish repeatedly).
var expvarMu sync.Mutex

// Publish exports the registry under the given expvar name (served at
// /debug/vars). The export is live: every scrape re-snapshots. Publishing
// the same name twice rebinds it to the latest registry.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if v := expvar.Get(name); v != nil {
		if f, ok := v.(*rebindableVar); ok {
			f.set(r)
		}
		return
	}
	v := &rebindableVar{}
	v.set(r)
	expvar.Publish(name, v)
}

// rebindableVar is an expvar.Var whose backing registry can be swapped,
// working around expvar's publish-once restriction.
type rebindableVar struct {
	reg atomic.Pointer[Registry]
}

func (v *rebindableVar) set(r *Registry) {
	v.reg.Store(r)
}

func (v *rebindableVar) String() string {
	b, err := json.Marshal(v.reg.Load().Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}
