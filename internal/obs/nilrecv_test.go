package obs

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// TestNilReceiversAreSinks is the dynamic twin of the fodlint obsnil
// analyzer: the package contract says a nil instrument is a no-op sink,
// so every exported method of every exported pointer-receiver type must
// tolerate a typed-nil receiver. Reflection enumerates the methods, so a
// newly added instrument method is covered the moment it exists.
func TestNilReceiversAreSinks(t *testing.T) {
	targets := []any{
		(*Counter)(nil),
		(*Gauge)(nil),
		(*Histogram)(nil),
		(*Span)(nil),
		(*Registry)(nil),
		(*Tracer)(nil),
		(*Trace)(nil),
		(*Ring)(nil),
	}
	writerT := reflect.TypeOf((*io.Writer)(nil)).Elem()
	for _, target := range targets {
		v := reflect.ValueOf(target)
		tp := v.Type()
		for i := 0; i < tp.NumMethod(); i++ {
			m := tp.Method(i)
			args := make([]reflect.Value, 0, m.Type.NumIn()-1)
			for j := 1; j < m.Type.NumIn(); j++ {
				in := m.Type.In(j)
				if in == writerT {
					// A live writer, so a buggy method that reaches the
					// write still exercises its own nil handling, not the
					// writer's.
					args = append(args, reflect.ValueOf(io.Writer(&bytes.Buffer{})))
					continue
				}
				args = append(args, reflect.Zero(in))
			}
			name := tp.Elem().Name() + "." + m.Name
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s on a nil receiver panicked: %v", name, r)
					}
				}()
				v.Method(i).Call(args)
			}()
		}
	}
}
