package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file adds request-scoped tracing on top of the aggregate
// instruments: a Tracer mints one Trace per request, spans started through
// Registry.StartSpan/Span.Child record themselves into the trace's span
// tree (in addition to the usual span.<path>_ns histograms), and finished
// traces land in a fixed-size lock-free Ring with tail-based sampling —
// error traces and traces over the latency threshold are always kept, the
// fast successful bulk is sampled 1-in-N. The histograms answer "how slow
// is p99"; a kept trace answers "which phase of THIS request was slow".
//
// The disabled path stays the nil-sink contract of the package: a nil
// *Tracer starts nil *Traces, a context without a SpanCtx leaves spans
// untraced, and every method on a nil receiver is a no-op.

// TraceID is the 16-byte W3C trace-context trace id.
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex digits (the wire form).
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses 32 hex digits; ok is false for malformed or all-zero
// input.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !isHex(s) { // isHex: lowercase only, per W3C trace context
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	if id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// randomTraceID returns a fresh non-zero id from crypto/rand.
func randomTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		rand.Read(id[:]) //fod:errok crypto/rand.Read never fails on supported platforms
	}
	return id
}

// ParseTraceparent parses a W3C traceparent header,
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>". ok is false —
// and the caller should mint a fresh trace id — when the header is absent
// or malformed: wrong shape, non-hex fields, all-zero ids, or the reserved
// version ff.
func ParseTraceparent(h string) (id TraceID, parent string, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, "", false
	}
	if !isHex(h[:2]) || h[:2] == "ff" {
		return TraceID{}, "", false
	}
	id, ok = ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, "", false
	}
	parent = h[36:52]
	if !isHex(parent) || parent == "0000000000000000" {
		return TraceID{}, "", false
	}
	if !isHex(h[53:55]) {
		return TraceID{}, "", false
	}
	return id, parent, true
}

// FormatTraceparent renders a version-00 traceparent header for the given
// trace and span, with the sampled flag set.
func FormatTraceparent(id TraceID, span uint64) string {
	return fmt.Sprintf("00-%s-%016x-01", id, span)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SpanCtx names a position inside a live trace: the trace itself and the
// span that becomes the parent of any span started from here. It travels
// through context.Context (ContextWithSpan / SpanFromContext); the zero
// value means "no trace" and is what every lookup returns when tracing is
// off, so call sites stay at one branch.
type SpanCtx struct {
	Trace *Trace
	Span  uint64
}

// Active reports whether the position belongs to a live trace.
func (sc SpanCtx) Active() bool { return sc.Trace != nil }

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc. A nil ctx is treated as
// context.Background so the result is always usable.
func ContextWithSpan(ctx context.Context, sc SpanCtx) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the trace position carried by ctx, or the zero
// SpanCtx when there is none (including a nil ctx).
func SpanFromContext(ctx context.Context) SpanCtx {
	if ctx == nil {
		return SpanCtx{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(SpanCtx)
	return sc
}

// SpanRecord is one finished span inside a trace. Start is an offset from
// the trace's start so records are meaningful without the wall clock.
type SpanRecord struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Trace is one request's span tree under construction and, once kept by
// the tracer, at rest in the ring. Spans may still end after Finish (a
// singleflight index build outlives the request that started it); they
// append under the same lock the readers take, so late phases show up in
// /debug/traces/{id} once they complete.
type Trace struct {
	tracer *Tracer
	id     TraceID
	name   string
	remote string // parent span id of an incoming traceparent, "" when root
	start  time.Time
	nextID atomic.Uint64

	mu       sync.Mutex
	spans    []SpanRecord
	durNS    int64
	status   int
	errMsg   string
	finished bool
}

// ID returns the trace id (zero on a nil receiver).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Name returns the trace's operation name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Traceparent renders the header to emit downstream (and on the HTTP
// response): this trace's id with the root span as parent.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return FormatTraceparent(t.id, 1)
}

// newSpanID allocates the next span id (root span = 1).
func (t *Trace) newSpanID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// record appends a finished span.
func (t *Trace) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Finish seals the trace with the request's terminal status (HTTP status
// code, or 0 for non-HTTP callers) and optional error text, hands it to
// the tracer's tail sampler, and returns the trace duration. Only the
// first call seals; later calls return the sealed duration.
func (t *Trace) Finish(status int, errMsg string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	if t.finished {
		d := t.durNS
		t.mu.Unlock()
		return time.Duration(d)
	}
	t.finished = true
	t.durNS = time.Since(t.start).Nanoseconds()
	t.status = status
	t.errMsg = errMsg
	d := t.durNS
	t.mu.Unlock()
	t.tracer.keep(t, d, status, errMsg)
	return time.Duration(d)
}

// Status returns the terminal status set by Finish (0 before).
func (t *Trace) Status() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Spans returns a copy of the recorded spans, in end order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// TraceSummary is the list-view JSON form of a trace.
type TraceSummary struct {
	ID     string    `json:"trace_id"`
	Name   string    `json:"name"`
	Status int       `json:"status"`
	Error  string    `json:"error,omitempty"`
	Start  time.Time `json:"start"`
	DurNS  int64     `json:"dur_ns"`
	Spans  int       `json:"spans"`
	Remote string    `json:"remote_parent,omitempty"`
}

// SpanNode is one node of the rendered span tree.
type SpanNode struct {
	Name     string      `json:"name"`
	StartNS  int64       `json:"start_ns"`
	DurNS    int64       `json:"dur_ns"`
	Children []*SpanNode `json:"children,omitempty"`
}

// TraceDetail is the full JSON form: summary plus the span tree.
type TraceDetail struct {
	TraceSummary
	Tree []*SpanNode `json:"tree"`
}

// Summary captures the trace's list-view fields.
func (t *Trace) Summary() TraceSummary {
	if t == nil {
		return TraceSummary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dur := t.durNS
	if !t.finished {
		dur = time.Since(t.start).Nanoseconds()
	}
	return TraceSummary{
		ID:     t.id.String(),
		Name:   t.name,
		Status: t.status,
		Error:  t.errMsg,
		Start:  t.start,
		DurNS:  dur,
		Spans:  len(t.spans),
		Remote: t.remote,
	}
}

// Detail renders the trace with its span tree. Spans whose parent has not
// ended (or never will) surface as roots, so partial trees stay visible.
func (t *Trace) Detail() TraceDetail {
	if t == nil {
		return TraceDetail{}
	}
	d := TraceDetail{TraceSummary: t.Summary()}
	t.mu.Lock()
	recs := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	nodes := make(map[uint64]*SpanNode, len(recs))
	for i := range recs {
		nodes[recs[i].ID] = &SpanNode{Name: recs[i].Name, StartNS: recs[i].StartNS, DurNS: recs[i].DurNS}
	}
	for i := range recs {
		n := nodes[recs[i].ID]
		if p, ok := nodes[recs[i].Parent]; ok && recs[i].Parent != recs[i].ID {
			p.Children = append(p.Children, n)
		} else {
			d.Tree = append(d.Tree, n)
		}
	}
	var sortChildren func(ns []*SpanNode)
	sortChildren = func(ns []*SpanNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].StartNS < ns[j].StartNS })
		for _, n := range ns {
			sortChildren(n.Children)
		}
	}
	sortChildren(d.Tree)
	return d
}

// TracerConfig sizes a Tracer. The zero value gives the defaults noted on
// each field.
type TracerConfig struct {
	// Buffer is the ring capacity in traces (default 256).
	Buffer int
	// Slow is the latency threshold at or above which a trace is always
	// kept (default 100ms). Negative keeps every trace.
	Slow time.Duration
	// SampleN keeps 1 in N fast, successful traces (default 16). Negative
	// keeps none of them — only slow and error traces survive.
	SampleN int
}

// Tracer mints request traces and retains a tail-sampled window of them in
// a lock-free ring. A nil *Tracer is the disabled path: Start returns a
// nil *Trace and everything downstream no-ops.
type Tracer struct {
	ring    *Ring
	slow    time.Duration
	sampleN int64
	seq     atomic.Int64

	started Counter
	kept    Counter
	dropped Counter
}

// NewTracer builds a tracer from cfg (see TracerConfig for defaults).
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	if cfg.Slow == 0 {
		cfg.Slow = 100 * time.Millisecond
	}
	if cfg.SampleN == 0 {
		cfg.SampleN = 16
	}
	return &Tracer{ring: NewRing(cfg.Buffer), slow: cfg.Slow, sampleN: int64(cfg.SampleN)}
}

// Register exports the tracer's counters (trace.started, trace.kept,
// trace.dropped) through reg.
func (t *Tracer) Register(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.RegisterCounter("trace.started", &t.started)
	reg.RegisterCounter("trace.kept", &t.kept)
	reg.RegisterCounter("trace.dropped", &t.dropped)
}

// Start begins a trace named name. A zero id mints a fresh random one;
// a non-zero id (from an incoming traceparent) is adopted together with
// remoteParent, the caller's span id. Nil receiver returns nil.
func (t *Tracer) Start(name string, id TraceID, remoteParent string) *Trace {
	if t == nil {
		return nil
	}
	if id.IsZero() {
		id = randomTraceID()
		remoteParent = ""
	}
	t.started.Inc()
	return &Trace{tracer: t, id: id, name: name, remote: remoteParent, start: time.Now()}
}

// keep is the tail-sampling decision at Finish time: error traces and
// traces at/over the slow threshold always survive; the fast successful
// bulk survives 1-in-sampleN.
func (t *Tracer) keep(tr *Trace, durNS int64, status int, errMsg string) {
	if t == nil || tr == nil {
		return
	}
	retain := status >= 400 || errMsg != "" || durNS >= t.slow.Nanoseconds()
	if !retain && t.sampleN > 0 {
		retain = t.seq.Add(1)%t.sampleN == 1 || t.sampleN == 1
	}
	if retain {
		t.kept.Inc()
		t.ring.Push(tr)
		return
	}
	t.dropped.Inc()
}

// Slow returns the tracer's always-keep latency threshold.
func (t *Tracer) Slow() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// Traces returns the retained traces, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	return t.ring.Snapshot()
}

// Get returns the retained trace with the given id, or nil.
func (t *Tracer) Get(id TraceID) *Trace {
	if t == nil {
		return nil
	}
	for _, tr := range t.ring.Snapshot() {
		if tr.ID() == id {
			return tr
		}
	}
	return nil
}
