package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugMux returns an http.Handler serving the standard debug surface:
//
//	/debug/vars        expvar (includes every registry published with Publish)
//	/debug/metrics     indented JSON snapshot of reg
//	/debug/pprof/...   net/http/pprof profiles (cpu, heap, goroutine, …)
//
// A private mux is used instead of http.DefaultServeMux so importing this
// package never mutates global handler state.
func DebugMux(reg *Registry) *http.ServeMux {
	return DebugMuxTraced(reg, nil)
}

// DebugMuxTraced is DebugMux plus, when t is non-nil, the trace explorer:
//
//	/debug/traces      list of retained traces; query params status=ok|error,
//	                   min_ms=N (minimum duration), limit=N (default 100)
//	/debug/traces/{id} one trace as a full span tree
func DebugMuxTraced(reg *Registry, t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if t != nil {
		RegisterTraceHandlers(mux, t)
	}
	return mux
}

// RegisterTraceHandlers mounts the trace explorer endpoints on mux.
func RegisterTraceHandlers(mux *http.ServeMux, t *Tracer) {
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		writeTraceList(w, r, t)
	})
	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeTraceDetail(w, r, t)
	})
}

func writeTraceList(w http.ResponseWriter, r *http.Request, t *Tracer) {
	q := r.URL.Query()
	limit := 100
	if s := q.Get("limit"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			limit = n
		}
	}
	var minDur time.Duration
	if s := q.Get("min_ms"); s != "" {
		if ms, err := strconv.ParseFloat(s, 64); err == nil && ms > 0 {
			minDur = time.Duration(ms * float64(time.Millisecond))
		}
	}
	status := q.Get("status") // "", "ok", "error"
	out := struct {
		Traces []TraceSummary `json:"traces"`
	}{Traces: []TraceSummary{}}
	for _, tr := range t.Traces() {
		s := tr.Summary()
		if s.DurNS < minDur.Nanoseconds() {
			continue
		}
		isErr := s.Status >= 400 || s.Error != ""
		if status == "error" && !isErr || status == "ok" && isErr {
			continue
		}
		out.Traces = append(out.Traces, s)
		if len(out.Traces) >= limit {
			break
		}
	}
	writeDebugJSON(w, out)
}

func writeTraceDetail(w http.ResponseWriter, r *http.Request, t *Tracer) {
	id, ok := ParseTraceID(r.PathValue("id"))
	if !ok {
		http.Error(w, "malformed trace id", http.StatusBadRequest)
		return
	}
	tr := t.Get(id)
	if tr == nil {
		http.Error(w, "trace not retained (sampled out, overwritten, or never seen)", http.StatusNotFound)
		return
	}
	writeDebugJSON(w, tr.Detail())
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ServeDebug publishes reg under the expvar name "repro" and serves
// DebugMux on addr (e.g. "localhost:6060"; use ":0" for an ephemeral
// port) in a background goroutine. It returns the bound listener so the
// caller can report the actual address. The server lives until the
// process exits or the listener is closed.
func ServeDebug(addr string, reg *Registry) (net.Listener, error) {
	reg.Publish("repro")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
