package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns an http.Handler serving the standard debug surface:
//
//	/debug/vars        expvar (includes every registry published with Publish)
//	/debug/metrics     indented JSON snapshot of reg
//	/debug/pprof/...   net/http/pprof profiles (cpu, heap, goroutine, …)
//
// A private mux is used instead of http.DefaultServeMux so importing this
// package never mutates global handler state.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug publishes reg under the expvar name "repro" and serves
// DebugMux on addr (e.g. "localhost:6060"; use ":0" for an ephemeral
// port) in a background goroutine. It returns the bound listener so the
// caller can report the actual address. The server lives until the
// process exits or the listener is closed.
func ServeDebug(addr string, reg *Registry) (net.Listener, error) {
	reg.Publish("repro")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
