package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0 holds
// exact zeros; bucket b (1 ≤ b < NumBuckets−1) holds values in
// [2^(b−1), 2^b − 1] nanoseconds; the last bucket is the overflow bucket.
// 2^(NumBuckets−2) ns ≈ 4.6 minutes, far beyond any per-answer delay.
const NumBuckets = 40

// Histogram is a fixed-size, log₂-spaced latency histogram over
// nanoseconds. Recording is lock-free: one atomic add into the value's
// bucket, one atomic add to the running sum, and a CAS loop that tracks
// the exact maximum. The zero value is ready to use; a nil *Histogram is
// a sink.
//
// Quantiles are extracted from the bucket counts and are therefore upper
// bounds with ≤ 2× resolution (the bucket's upper edge) — exactly the
// fidelity needed to tell "constant delay" from "growing delay", which is
// what the Corollary 2.5 profiler asks of it.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	// exemplars[b] remembers the last traced observation that landed in
	// bucket b, linking the latency distribution back to concrete request
	// traces. Written only by ObserveTraced, so the plain Observe path —
	// the one on the answering hot loop — is untouched.
	exemplars [NumBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links a histogram bucket to the last trace whose value landed
// in it (see Histogram.ObserveTraced).
type Exemplar struct {
	Trace TraceID
	NS    int64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) // ns in [2^(b-1), 2^b - 1]
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper edge of bucket b in ns.
func bucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return int64(1)<<62 - 1
	}
	return int64(1)<<b - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(d.Nanoseconds()) }

// ObserveNS records one nanosecond value.
func (h *Histogram) ObserveNS(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveTraced records ns like ObserveNS and, when id is non-zero,
// stamps the value's bucket with the trace id, so a latency tail in
// /debug/metrics points at an actual trace in /debug/traces. Exemplar
// upkeep is one extra allocation and pointer store per traced call —
// callers on request-scoped paths only.
func (h *Histogram) ObserveTraced(ns int64, id TraceID) {
	if h == nil {
		return
	}
	h.ObserveNS(ns)
	if id.IsZero() {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.exemplars[bucketOf(ns)].Store(&Exemplar{Trace: id, NS: ns})
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Snapshot captures the histogram with derived quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	counts := make([]int64, NumBuckets)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / s.Count
	s.P50 = quantile(counts, s.Count, s.Max, 0.50)
	s.P90 = quantile(counts, s.Count, s.Max, 0.90)
	s.P99 = quantile(counts, s.Count, s.Max, 0.99)
	for b, n := range counts {
		if n != 0 {
			bk := Bucket{LE: bucketUpper(b), N: n}
			if e := h.exemplars[b].Load(); e != nil {
				bk.Trace = e.Trace.String()
			}
			s.Buckets = append(s.Buckets, bk)
		}
	}
	return s
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) in ns.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	counts := make([]int64, NumBuckets)
	for _, b := range s.Buckets {
		counts[bucketOf(b.LE)] = b.N
	}
	return quantile(counts, s.Count, s.Max, q)
}

// quantile walks the cumulative bucket counts and returns the upper edge
// of the bucket where the q-quantile lands; the top occupied bucket
// reports the exact maximum instead of its (looser) edge.
func quantile(counts []int64, total, max int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	top := 0
	for b, n := range counts {
		if n > 0 {
			top = b
		}
	}
	for b, n := range counts {
		cum += n
		if cum >= target {
			if b == top {
				return max
			}
			return bucketUpper(b)
		}
	}
	return max
}

// Bucket is one occupied histogram bucket: N values ≤ LE nanoseconds
// (and greater than the previous bucket's edge). Trace, when present, is
// the id of the last traced observation that landed here — the exemplar.
type Bucket struct {
	LE    int64  `json:"le"`
	N     int64  `json:"n"`
	Trace string `json:"trace_id,omitempty"`
}

// HistogramSnapshot is the JSON form of a histogram. All durations are
// nanoseconds. Quantiles are bucket-resolution upper bounds; Max is exact.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum_ns"`
	Mean    int64    `json:"mean_ns"`
	Max     int64    `json:"max_ns"`
	P50     int64    `json:"p50_ns"`
	P90     int64    `json:"p90_ns"`
	P99     int64    `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}
