package obs

import "sync/atomic"

// Ring is a fixed-capacity lock-free overwrite buffer of finished traces.
// Push claims a slot with one atomic add and stores the trace with one
// atomic pointer store, so writers never block each other or the readers;
// once the ring is full the oldest retained trace is overwritten. Snapshot
// reads the slots without stopping writers — it is consistent per slot,
// which is all a debug listing needs. A nil *Ring is a sink.
type Ring struct {
	slots []atomic.Pointer[Trace]
	head  atomic.Uint64 // total pushes ever; next slot = head % len(slots)
}

// NewRing returns a ring holding the last n traces (n < 1 is clamped to 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], n)}
}

// Push retains tr, overwriting the oldest entry when full.
func (r *Ring) Push(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	i := r.head.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(tr)
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Len returns the number of retained traces.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	h := r.head.Load()
	if h > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(h)
}

// Snapshot returns the retained traces, newest push first. Concurrent
// pushes may overwrite a slot mid-walk; each returned trace is still a
// complete, finished trace.
func (r *Ring) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	h := r.head.Load()
	n := uint64(len(r.slots))
	if h < n {
		n = h
	}
	out := make([]*Trace, 0, n)
	for k := uint64(0); k < n; k++ {
		if tr := r.slots[(h-1-k)%uint64(len(r.slots))].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}
