package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	id, ok := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok {
		t.Fatal("ParseTraceID rejected a valid id")
	}
	h := FormatTraceparent(id, 1)
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000001-01"
	if h != want {
		t.Fatalf("FormatTraceparent = %q, want %q", h, want)
	}
	gotID, parent, ok := ParseTraceparent(h)
	if !ok || gotID != id || parent != "0000000000000001" {
		t.Fatalf("ParseTraceparent(%q) = (%s, %q, %v)", h, gotID, parent, ok)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000001", // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000001-011", // too long
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000001-01",  // non-hex version
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000001-01",  // reserved version
		"00-00000000000000000000000000000000-0000000000000001-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero parent
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-0000000000000001-01",  // uppercase hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-0000000000000001-01",  // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-0000000000000001-01",  // non-hex id
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
}

func TestRandomTraceIDsDistinct(t *testing.T) {
	a, b := randomTraceID(), randomTraceID()
	if a.IsZero() || b.IsZero() || a == b {
		t.Fatalf("random ids not distinct non-zero: %s %s", a, b)
	}
}

// TestTraceSpanTree checks that spans started through contexts nest into
// the expected tree and still feed the registry histograms under their
// usual names.
func TestTraceSpanTree(t *testing.T) {
	reg := New()
	tc := NewTracer(TracerConfig{Slow: -1})
	tr := tc.Start("req", TraceID{}, "")
	ctx := ContextWithSpan(context.Background(), SpanCtx{Trace: tr})

	root := reg.StartSpan(ctx, "http.query")
	rctx := root.Attach(ctx)
	build := reg.StartSpan(rctx, "preprocess")
	child := build.Child("dist")
	child.End()
	build.End()
	root.End()
	tr.Finish(200, "")

	if got := reg.Histogram("span.preprocess.dist_ns").Count(); got != 1 {
		t.Fatalf("histogram span.preprocess.dist_ns count = %d, want 1", got)
	}
	kept := tc.Get(tr.ID())
	if kept == nil {
		t.Fatal("finished trace not retained with Slow < 0")
	}
	d := kept.Detail()
	if len(d.Tree) != 1 || d.Tree[0].Name != "http.query" {
		t.Fatalf("tree roots = %+v, want single http.query", d.Tree)
	}
	n := d.Tree[0]
	if len(n.Children) != 1 || n.Children[0].Name != "preprocess" {
		t.Fatalf("http.query children = %+v", n.Children)
	}
	if len(n.Children[0].Children) != 1 || n.Children[0].Children[0].Name != "preprocess.dist" {
		t.Fatalf("preprocess children = %+v", n.Children[0].Children)
	}
	if d.Spans != 3 {
		t.Fatalf("summary span count = %d, want 3", d.Spans)
	}
}

// TestTraceDisabledPath: with no tracer (nil) and no SpanCtx, the same
// call sites behave exactly as before.
func TestTraceDisabledPath(t *testing.T) {
	var tc *Tracer
	tr := tc.Start("req", TraceID{}, "")
	if tr != nil {
		t.Fatal("nil tracer started a trace")
	}
	tr.Finish(500, "boom") // must not panic
	reg := New()
	sp := reg.StartSpan(context.Background(), "phase")
	if sp.TraceID() != (TraceID{}) {
		t.Fatal("span without trace reports a trace id")
	}
	sp.End()
	if got := reg.Histogram("span.phase_ns").Count(); got != 1 {
		t.Fatalf("untraced span did not feed histogram: count = %d", got)
	}
}

func TestTailSampling(t *testing.T) {
	tc := NewTracer(TracerConfig{Buffer: 64, Slow: time.Hour, SampleN: -1})
	slow := tc.Start("slow", TraceID{}, "")
	slow.mu.Lock()
	slow.start = time.Now().Add(-2 * time.Hour)
	slow.mu.Unlock()
	slow.Finish(200, "")

	errTr := tc.Start("err", TraceID{}, "")
	errTr.Finish(500, "kaboom")

	for i := 0; i < 10; i++ {
		tc.Start(fmt.Sprintf("fast%d", i), TraceID{}, "").Finish(200, "")
	}

	if tc.Get(slow.ID()) == nil {
		t.Error("slow trace was not retained")
	}
	if tc.Get(errTr.ID()) == nil {
		t.Error("error trace was not retained")
	}
	if got := len(tc.Traces()); got != 2 {
		t.Errorf("retained %d traces, want 2 (fast ones sampled out)", got)
	}
	if k, d := tc.kept.Load(), tc.dropped.Load(); k != 2 || d != 10 {
		t.Errorf("kept/dropped = %d/%d, want 2/10", k, d)
	}
}

func TestTailSamplingOneInN(t *testing.T) {
	tc := NewTracer(TracerConfig{Buffer: 64, Slow: time.Hour, SampleN: 4})
	for i := 0; i < 16; i++ {
		tc.Start("fast", TraceID{}, "").Finish(200, "")
	}
	if got := len(tc.Traces()); got != 4 {
		t.Fatalf("retained %d of 16 fast traces with SampleN=4, want 4", got)
	}
}

func TestHistogramExemplar(t *testing.T) {
	var h Histogram
	id1, _ := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	id2, _ := ParseTraceID("aabbccddeeff00112233445566778899")
	h.ObserveTraced(100, id1)
	h.ObserveTraced(120, id2) // same bucket: last write wins
	h.ObserveTraced(1<<20, id1)
	h.ObserveNS(130) // untraced: must not clear the exemplar
	s := h.Snapshot()
	byLE := map[int64]Bucket{}
	for _, b := range s.Buckets {
		byLE[b.LE] = b
	}
	if b := byLE[127]; b.Trace != id2.String() {
		t.Errorf("bucket ≤127ns exemplar = %q, want %s", b.Trace, id2)
	}
	if b := byLE[1<<21-1]; b.Trace != id1.String() {
		t.Errorf("bucket ≤2^21-1 exemplar = %q, want %s", b.Trace, id1)
	}
	var plain Histogram
	plain.ObserveNS(100)
	for _, b := range plain.Snapshot().Buckets {
		if b.Trace != "" {
			t.Errorf("untraced histogram grew an exemplar: %+v", b)
		}
	}
}

// TestRingConcurrent hammers the ring with concurrent writers and readers;
// run under -race this is the lock-freedom proof for the trace buffer.
func TestRingConcurrent(t *testing.T) {
	tc := NewTracer(TracerConfig{Buffer: 8, Slow: -1})
	const writers, perWriter, readers = 8, 200, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range tc.Traces() {
					tr.Summary()
					tr.Detail()
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				tr := tc.Start(fmt.Sprintf("w%d-%d", w, i), TraceID{}, "")
				sp := &Span{tr: tr, id: tr.newSpanID(), start: time.Now()}
				sp.End()
				tr.Finish(200, "")
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	if got := tc.ring.Len(); got != 8 {
		t.Fatalf("ring holds %d traces, want full capacity 8", got)
	}
	seen := map[string]bool{}
	for _, tr := range tc.Traces() {
		if !strings.HasPrefix(tr.Name(), "w") {
			t.Fatalf("unexpected trace %q", tr.Name())
		}
		if seen[tr.ID().String()] {
			t.Fatalf("trace %s returned twice from one snapshot", tr.ID())
		}
		seen[tr.ID().String()] = true
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRing(4)
	var last *Trace
	for i := 0; i < 10; i++ {
		last = &Trace{name: fmt.Sprintf("t%d", i)}
		r.Push(last)
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(got))
	}
	if got[0] != last {
		t.Fatalf("newest trace = %q, want t9", got[0].Name())
	}
	for i, tr := range got {
		if want := fmt.Sprintf("t%d", 9-i); tr.Name() != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, tr.Name(), want)
		}
	}
}
