package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("bumps")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter %d, want %d", got, workers*per)
	}
	// Get-or-create must return the same instrument.
	if r.Counter("bumps") != c {
		t.Fatal("Counter(name) did not return the existing instrument")
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge %d, want 4", g.Load())
	}
	g.Max(10)
	g.Max(2)
	if g.Load() != 10 {
		t.Fatalf("gauge after Max %d, want 10", g.Load())
	}
}

func TestNilRegistryIsSink(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Gauge("y").Set(5)
	r.Histogram("z").Observe(time.Second)
	sp := r.Span("phase")
	if d := sp.End(); d < 0 {
		t.Fatal("nil-registry span returned negative duration")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry produced instruments")
	}
	var nilSpan *Span
	if nilSpan.End() != 0 || nilSpan.Path() != "" {
		t.Fatal("nil span misbehaved")
	}
	r.RegisterCounter("c", &Counter{})
	r.Publish("nil-reg") // must not panic
}

func TestSpanNesting(t *testing.T) {
	r := New()
	root := r.Span("preprocess")
	for _, phase := range []string{"dist", "cover", "kernel", "starter", "skip"} {
		sp := root.Child(phase)
		time.Sleep(time.Millisecond)
		if d := sp.End(); d < time.Millisecond {
			t.Fatalf("span %s measured %v", phase, d)
		}
	}
	if d := root.End(); d < 5*time.Millisecond {
		t.Fatalf("root span measured %v, want ≥ 5ms", d)
	}
	s := r.Snapshot()
	for _, name := range []string{
		"span.preprocess_ns",
		"span.preprocess.dist_ns",
		"span.preprocess.cover_ns",
		"span.preprocess.kernel_ns",
		"span.preprocess.starter_ns",
		"span.preprocess.skip_ns",
	} {
		h, ok := s.Histograms[name]
		if !ok || h.Count != 1 {
			t.Fatalf("missing span histogram %q (snapshot names: %v)", name, r.Names())
		}
	}
	if s.Counters["span.preprocess.dist_count"] != 1 {
		t.Fatal("span counter not bumped")
	}
	// Children sum to less than the root.
	var childSum int64
	for name, h := range s.Histograms {
		if strings.HasPrefix(name, "span.preprocess.") {
			childSum += h.Sum
		}
	}
	if root := s.Histograms["span.preprocess_ns"].Sum; childSum > root {
		t.Fatalf("children (%d ns) exceed root (%d ns)", childSum, root)
	}
}

func TestRegisterCounterExports(t *testing.T) {
	r := New()
	var own Counter
	own.Add(42)
	r.RegisterCounter("engine.candidates", &own)
	if got := r.Snapshot().Counters["engine.candidates"]; got != 42 {
		t.Fatalf("registered counter exported %d, want 42", got)
	}
	own.Add(1)
	if got := r.Snapshot().Counters["engine.candidates"]; got != 43 {
		t.Fatalf("registered counter is not live: %d", got)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-7)
	r.Histogram("c_ns").ObserveNS(100)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if s.Counters["a"] != 3 || s.Gauges["b"] != -7 || s.Histograms["c_ns"].Count != 1 {
		t.Fatalf("round trip mismatch: %+v", s)
	}
}

func TestPublishRebind(t *testing.T) {
	r1 := New()
	r1.Counter("x").Add(1)
	r1.Publish("obs-test-rebind")
	r2 := New()
	r2.Counter("x").Add(2)
	r2.Publish("obs-test-rebind") // must not panic, rebinds to r2
}

func TestServeDebug(t *testing.T) {
	r := New()
	r.Counter("hits").Add(9)
	r.Histogram("lat_ns").ObserveNS(1234)
	ln, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := fmt.Sprintf("http://%s", ln.Addr())

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if vars := get("/debug/vars"); !strings.Contains(vars, `"repro"`) {
		t.Fatalf("/debug/vars missing published registry:\n%.400s", vars)
	}
	metrics := get("/debug/metrics")
	var s Snapshot
	if err := json.Unmarshal([]byte(metrics), &s); err != nil {
		t.Fatalf("/debug/metrics is not JSON: %v", err)
	}
	if s.Counters["hits"] != 9 || s.Histograms["lat_ns"].Count != 1 {
		t.Fatalf("unexpected /debug/metrics snapshot: %+v", s)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%.200s", idx)
	}
}
