package obs

import "time"

// Span measures one traced phase. Spans nest by name: a child's path is
// "parent.child", and ending a span records its wall time into the
// registry histogram "span.<path>_ns" (so repeated phases accumulate a
// latency distribution) and bumps the counter "span.<path>_count".
//
// The engine's preprocessing pipeline traces as
//
//	preprocess
//	├── preprocess.dist
//	├── preprocess.cover
//	├── preprocess.kernel
//	├── preprocess.starter
//	└── preprocess.skip
//
// Spans always measure time — End returns the duration even without a
// registry — so callers can both trace and fill their own Stats structs
// from one clock read. A span created from a nil *Registry (or a nil
// *Span) records nowhere but still times correctly; a nil *Span's End
// returns 0.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// Span starts a root span. Valid on a nil registry.
func (r *Registry) Span(name string) *Span {
	return &Span{reg: r, path: name, start: time.Now()}
}

// Child starts a nested span named "<parent path>.<name>".
func (s *Span) Child(name string) *Span {
	if s == nil {
		return &Span{path: name, start: time.Now()}
	}
	return &Span{reg: s.reg, path: s.path + "." + name, start: time.Now()}
}

// End stops the span, records it, and returns its wall time.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.reg != nil {
		s.reg.Histogram("span." + s.path + "_ns").Observe(d)
		s.reg.Counter("span." + s.path + "_count").Inc()
	}
	return d
}

// Path returns the span's dotted path.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}
