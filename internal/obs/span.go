package obs

import (
	"context"
	"time"
)

// Span measures one traced phase. Spans nest by name: a child's path is
// "parent.child", and ending a span records its wall time into the
// registry histogram "span.<path>_ns" (so repeated phases accumulate a
// latency distribution) and bumps the counter "span.<path>_count".
//
// The engine's preprocessing pipeline traces as
//
//	preprocess
//	├── preprocess.dist
//	├── preprocess.cover
//	├── preprocess.kernel
//	├── preprocess.starter
//	└── preprocess.skip
//
// A span additionally belongs to at most one request Trace: StartSpan
// adopts the trace carried by its context (see SpanCtx), Child inherits
// the parent's trace, and End appends a SpanRecord to it — so the same
// call sites feed both the aggregate histograms and the per-request span
// tree, with the untraced case costing one nil check.
//
// Spans always measure time — End returns the duration even without a
// registry — so callers can both trace and fill their own Stats structs
// from one clock read. A span created from a nil *Registry (or a nil
// *Span) records nowhere but still times correctly; a nil *Span's End
// returns 0.
type Span struct {
	reg   *Registry
	path  string
	start time.Time

	tr     *Trace
	id     uint64
	parent uint64
}

// Span starts a root span. Valid on a nil registry.
func (r *Registry) Span(name string) *Span {
	return &Span{reg: r, path: name, start: time.Now()}
}

// StartSpan starts a root span like Span and, when ctx carries an active
// trace position (ContextWithSpan), enrolls the span in that trace as a
// child of the position's span. Valid on a nil registry and a nil or
// trace-less ctx — the span then only feeds the histograms.
func (r *Registry) StartSpan(ctx context.Context, name string) *Span {
	s := &Span{reg: r, path: name, start: time.Now()}
	if sc := SpanFromContext(ctx); sc.Trace != nil {
		s.tr = sc.Trace
		s.parent = sc.Span
		s.id = sc.Trace.newSpanID()
	}
	return s
}

// Child starts a nested span named "<parent path>.<name>", in the same
// trace (if any) as its parent.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return &Span{path: name, start: time.Now()}
	}
	c := &Span{reg: s.reg, path: s.path + "." + name, start: time.Now()}
	if s.tr != nil {
		c.tr = s.tr
		c.parent = s.id
		c.id = s.tr.newSpanID()
	}
	return c
}

// Attach returns ctx positioned at this span, so spans started from the
// returned context (StartSpan) become its children. Without a trace the
// context is returned unchanged.
func (s *Span) Attach(ctx context.Context) context.Context {
	if s == nil || s.tr == nil {
		return ctx
	}
	return ContextWithSpan(ctx, SpanCtx{Trace: s.tr, Span: s.id})
}

// End stops the span, records it, and returns its wall time.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.reg != nil {
		s.reg.Histogram("span." + s.path + "_ns").Observe(d)
		s.reg.Counter("span." + s.path + "_count").Inc()
	}
	if s.tr != nil {
		s.tr.record(SpanRecord{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.path,
			StartNS: s.start.Sub(s.tr.start).Nanoseconds(),
			DurNS:   d.Nanoseconds(),
		})
	}
	return d
}

// Path returns the span's dotted path.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// TraceID returns the id of the trace the span belongs to (zero when
// untraced).
func (s *Span) TraceID() TraceID {
	if s == nil || s.tr == nil {
		return TraceID{}
	}
	return s.tr.ID()
}
