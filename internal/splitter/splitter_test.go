package splitter

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSplitterWinsOnEdgeless(t *testing.T) {
	g := graph.NewBuilder(20, 0).Build()
	res := Play(g, 2, BallCenter{}, MaxDegreeConnector{}, 5)
	if !res.SplitterWon || res.Rounds != 1 {
		t.Fatalf("edgeless: %+v, want a 1-round win", res)
	}
}

func TestSplitterWinsOnStarInTwoRounds(t *testing.T) {
	g := gen.Generate(gen.Star, 200, gen.Options{})
	res := Play(g, 2, BallCenter{}, MaxDegreeConnector{}, 5)
	if !res.SplitterWon || res.Rounds > 2 {
		t.Fatalf("star: %+v, want a ≤2-round win", res)
	}
}

func TestSplitterWinsOnNowhereDenseClasses(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.Cycle, gen.Caterpillar,
		gen.BalancedTree, gen.RandomTree, gen.Grid, gen.KingGrid,
		gen.BoundedDegree, gen.SparseRandom} {
		g := gen.Generate(class, 500, gen.Options{Seed: 7})
		lam := Lambda(g, 2, BallCenter{}, 64)
		if lam >= 64 {
			t.Errorf("%s: Splitter did not win within 64 rounds", class)
		}
	}
}

// TestSplitterLambdaIndependentOfN is the heart of Theorem 4.6: λ(r) must
// not grow with the graph, for fixed r, on a nowhere dense class.
func TestSplitterLambdaIndependentOfN(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.BalancedTree, gen.Grid} {
		small := Lambda(gen.Generate(class, 200, gen.Options{Seed: 1}), 2, BallCenter{}, 64)
		large := Lambda(gen.Generate(class, 3200, gen.Options{Seed: 1}), 2, BallCenter{}, 64)
		if large > small+2 {
			t.Errorf("%s: λ grew from %d (n=200) to %d (n=3200)", class, small, large)
		}
	}
}

// TestSplitterStruggleOnClique: on K_n the arena loses one vertex per
// round, so Connector survives any fixed budget once n is large — the
// negative control for the game characterization.
func TestSplitterStruggleOnClique(t *testing.T) {
	g := gen.Generate(gen.Clique, 40, gen.Options{})
	res := Play(g, 1, BallCenter{}, MaxDegreeConnector{}, 10)
	if res.SplitterWon {
		t.Fatalf("Splitter should not clear K_40 within 10 rounds: %+v", res)
	}
}

func TestForestDepthStrategy(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.BalancedTree, gen.RandomTree, gen.Caterpillar, gen.Star} {
		g := gen.Generate(class, 400, gen.Options{Seed: 3})
		strat := NewForestDepth(g)
		res := Play(g, 2, strat, MaxDegreeConnector{}, 64)
		if !res.SplitterWon {
			t.Errorf("%s: forest strategy failed to win", class)
		}
	}
}

func TestMaxDegreeStrategyOnStar(t *testing.T) {
	g := gen.Generate(gen.Star, 100, gen.Options{})
	res := Play(g, 2, MaxDegree{}, MaxDegreeConnector{}, 3)
	if !res.SplitterWon || res.Rounds > 2 {
		t.Fatalf("star with MaxDegree: %+v", res)
	}
}

func TestStrategyAnswerInBall(t *testing.T) {
	for _, class := range []gen.Class{gen.Grid, gen.RandomTree, gen.SparseRandom} {
		g := gen.Generate(class, 300, gen.Options{Seed: 5})
		bfs := graph.NewBFS(g)
		for _, s := range []Strategy{BallCenter{}, MaxDegree{}} {
			for c := 0; c < g.N(); c += 37 {
				ans := s.Answer(g, c, 2)
				if bfs.Distance(c, ans, 2) < 0 {
					t.Fatalf("%s: answer %d outside N_2(%d)", class, ans, c)
				}
			}
		}
	}
}
