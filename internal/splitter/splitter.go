// Package splitter implements the (λ, r)-splitter game of Definition 4.5
// and Theorem 4.6: Connector picks a vertex c, Splitter answers with a
// vertex s ∈ N_r(c), and the game continues on G[N_r(c) \ {s}]; Splitter
// wins when the arena becomes empty. A class of graphs is nowhere dense iff
// Splitter wins in a number of rounds λ(r) independent of the graph.
//
// The paper assumes a per-class strategy oracle (Remark 4.7). We provide a
// provably optimal strategy for forests (remove the shallowest vertex of
// the ball, which strictly decreases the arena's tree height-structure) and
// a generic double-BFS ball-center heuristic that empirically wins in an
// n-independent number of rounds on the nowhere dense generator classes.
// Correctness of the structures built on top never depends on the strategy;
// only the measured recursion depth does (see DESIGN.md §3).
package splitter

import (
	"math/rand"

	"repro/internal/graph"
)

// Strategy is Splitter's move oracle: given the current arena and
// Connector's choice c, it returns a vertex of N_r^arena(c) to delete.
type Strategy interface {
	Answer(arena *graph.Graph, c graph.V, r int) graph.V
}

// Connector is the adversary: it picks the next center in the arena.
type Connector interface {
	Pick(arena *graph.Graph) graph.V
}

// BallCenter is the default Splitter strategy: it induces the ball
// N_r(c), locates an approximate center by a double BFS sweep (farthest
// vertex u from c, farthest vertex w from u, midpoint of a shortest u–w
// path), and returns it, breaking ties toward high degree. Its cost is
// linear in ‖N_r(c)‖ (up to sorting), as Remark 4.7 requires.
type BallCenter struct{}

// Answer implements Strategy.
func (BallCenter) Answer(arena *graph.Graph, c graph.V, r int) graph.V {
	bfs := graph.NewBFS(arena)
	ball := bfs.Ball(c, r)
	if len(ball) == 1 {
		return c
	}
	vs := make([]graph.V, len(ball))
	for i, v := range ball {
		vs[i] = int(v)
	}
	sub := graph.Induce(arena, vs)
	sb := graph.NewBFS(sub.G)
	lc := sub.Local(c)
	u, _ := sb.FarthestWithin(lc, 2*r)
	// BFS from u, record parents to walk back to the midpoint of the path
	// to the farthest vertex w.
	parent := make([]int, sub.G.N())
	for i := range parent {
		parent[i] = -1
	}
	order := sb.Ball(u, 2*r)
	for _, v := range order {
		for _, w := range sub.G.Neighbors(int(v)) {
			if parent[w] == -1 && int(w) != u && sb.Dist(int(w)) == sb.Dist(int(v))+1 {
				parent[w] = int(v)
			}
		}
	}
	w := int(order[len(order)-1])
	d := sb.Dist(w)
	mid := w
	for i := 0; i < d/2 && parent[mid] >= 0; i++ {
		mid = parent[mid]
	}
	// Hub short-circuit: if the ball has a dominating high-degree vertex,
	// deleting it collapses the arena faster than deleting the center.
	hub, hubDeg := -1, -1
	for v := 0; v < sub.G.N(); v++ {
		if d := sub.G.Degree(v); d > hubDeg {
			hub, hubDeg = v, d
		}
	}
	if hubDeg >= sub.G.N()/2 {
		return sub.Orig[hub]
	}
	return sub.Orig[mid]
}

// MaxDegree is a simple strategy deleting the highest-degree vertex of the
// ball. It is optimal for stars and other hub-dominated graphs.
type MaxDegree struct{}

// Answer implements Strategy.
func (MaxDegree) Answer(arena *graph.Graph, c graph.V, r int) graph.V {
	bfs := graph.NewBFS(arena)
	best, bestDeg := c, -1
	for _, v := range bfs.Ball(c, r) {
		if d := arena.Degree(int(v)); d > bestDeg {
			best, bestDeg = int(v), d
		}
	}
	return best
}

// ForestDepth is the provably winning strategy for forests: with respect to
// a fixed rooting of the original forest it deletes the vertex of minimal
// root-depth in the ball. Every vertex of the ball lies below (or at) that
// vertex in its tree, so after deletion the ball splits into subtrees of
// strictly smaller height reachable within r, and the game ends in O(r)
// rounds. The strategy carries the original depths through arena renamings
// via the Depths slice indexed by original vertex.
type ForestDepth struct {
	Depths []int // depth of each original vertex in its rooted tree
	// OrigOf maps the arena's vertices to original vertices. The Game
	// maintains it; standalone users may leave it nil (identity).
	OrigOf []graph.V
}

// NewForestDepth roots every tree of the forest g at its smallest vertex
// and records depths.
func NewForestDepth(g *graph.Graph) *ForestDepth {
	depths := make([]int, g.N())
	bfs := graph.NewBFS(g)
	seen := make([]bool, g.N())
	for root := 0; root < g.N(); root++ {
		if seen[root] {
			continue
		}
		for _, v := range bfs.Ball(root, g.N()) {
			seen[v] = true
			depths[v] = bfs.Dist(int(v))
		}
	}
	return &ForestDepth{Depths: depths}
}

// Answer implements Strategy.
func (f *ForestDepth) Answer(arena *graph.Graph, c graph.V, r int) graph.V {
	bfs := graph.NewBFS(arena)
	orig := func(v graph.V) graph.V {
		if f.OrigOf == nil {
			return v
		}
		return f.OrigOf[v]
	}
	best, bestDepth := c, f.Depths[orig(c)]
	for _, v := range bfs.Ball(c, r) {
		if d := f.Depths[orig(int(v))]; d < bestDepth {
			best, bestDepth = int(v), d
		}
	}
	return best
}

// MaxDegreeConnector is the greedy adversary picking the densest center.
type MaxDegreeConnector struct{}

// Pick implements Connector.
func (MaxDegreeConnector) Pick(arena *graph.Graph) graph.V {
	best, bestDeg := 0, -1
	for v := 0; v < arena.N(); v++ {
		if d := arena.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// RandomConnector picks uniformly random centers.
type RandomConnector struct{ Rng *rand.Rand }

// Pick implements Connector.
func (c RandomConnector) Pick(arena *graph.Graph) graph.V {
	return c.Rng.Intn(arena.N())
}

// Result records the outcome of one play of the game.
type Result struct {
	Rounds      int  // rounds actually played
	SplitterWon bool // true if the arena emptied within MaxRounds
}

// Play runs the (maxRounds, r)-splitter game on g. OrigOf bookkeeping for
// ForestDepth strategies is maintained automatically.
func Play(g *graph.Graph, r int, s Strategy, conn Connector, maxRounds int) Result {
	arena := g
	origOf := make([]graph.V, g.N())
	for i := range origOf {
		origOf[i] = i
	}
	if fd, ok := s.(*ForestDepth); ok {
		fd.OrigOf = origOf
	}
	for round := 1; round <= maxRounds; round++ {
		if arena.N() == 0 {
			return Result{Rounds: round - 1, SplitterWon: true}
		}
		c := conn.Pick(arena)
		sv := s.Answer(arena, c, r)
		bfs := graph.NewBFS(arena)
		ball := bfs.Ball(c, r)
		next := make([]graph.V, 0, len(ball))
		for _, v := range ball {
			if int(v) != sv {
				next = append(next, int(v))
			}
		}
		if len(next) == 0 {
			return Result{Rounds: round, SplitterWon: true}
		}
		sub := graph.Induce(arena, next)
		newOrig := make([]graph.V, sub.G.N())
		for i, v := range sub.Orig {
			newOrig[i] = origOf[v]
		}
		arena, origOf = sub.G, newOrig
		if fd, ok := s.(*ForestDepth); ok {
			fd.OrigOf = origOf
		}
	}
	return Result{Rounds: maxRounds, SplitterWon: false}
}

// Lambda estimates λ(r) for g: the maximum number of rounds Splitter (with
// strategy s) needs against the max-degree adversary and several random
// adversaries. It returns maxRounds if Splitter failed to win.
func Lambda(g *graph.Graph, r int, s Strategy, maxRounds int) int {
	worst := 0
	adversaries := []Connector{
		MaxDegreeConnector{},
		RandomConnector{Rng: rand.New(rand.NewSource(1))},
		RandomConnector{Rng: rand.New(rand.NewSource(2))},
		RandomConnector{Rng: rand.New(rand.NewSource(3))},
	}
	for _, conn := range adversaries {
		res := Play(g, r, s, conn, maxRounds)
		if !res.SplitterWon {
			return maxRounds
		}
		if res.Rounds > worst {
			worst = res.Rounds
		}
	}
	return worst
}
