package dist

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func randomEdgeEdits(rng *rand.Rand, g *graph.Graph, count int) ([]graph.Edit, []graph.V) {
	edits := make([]graph.Edit, 0, count)
	var srcs []graph.V
	seen := map[graph.V]bool{}
	for len(edits) < count {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		op := graph.AddEdge
		if g.HasEdge(u, v) || rng.Intn(2) == 0 {
			op = graph.RemoveEdge
		}
		edits = append(edits, graph.Edit{Op: op, U: u, V: v})
		for _, w := range []graph.V{u, v} {
			if !seen[w] {
				seen[w] = true
				srcs = append(srcs, w)
			}
		}
	}
	return edits, srcs
}

// TestPatchDifferential: a patched index answers Within exactly like a
// fresh build on the edited graph, across classes, radii, and edit sizes.
func TestPatchDifferential(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.Grid, gen.RandomTree, gen.BoundedDegree, gen.SparseRandom} {
		for _, r := range []int{2, 4} {
			g := gen.Generate(class, 400, gen.Options{Seed: 7})
			ix := New(g, r, Options{})
			rng := rand.New(rand.NewSource(int64(r) * 31))
			edits, srcs := randomEdgeEdits(rng, g, 1+rng.Intn(5))
			gNew, err := graph.Patch(g, edits)
			if err != nil {
				t.Fatal(err)
			}
			patched, ok := Patch(ix, g, gNew, srcs)
			if !ok {
				// Layout not patchable (recursive splitter etc.) — the
				// caller rebuilds; nothing to differential-test.
				continue
			}
			bfs := graph.NewBFS(gNew)
			for q := 0; q < 2000; q++ {
				a, b := rng.Intn(g.N()), rng.Intn(g.N())
				rr := 1 + rng.Intn(r)
				want := bfs.Distance(a, b, rr) >= 0
				if got := patched.Within(a, b, rr); got != want {
					t.Fatalf("%s r=%d: patched Within(%d,%d,%d)=%v want %v",
						class, r, a, b, rr, got, want)
				}
			}
		}
	}
}

// TestPatchSmallTableByteIdentical: when both the original and the edited
// graph sit in the smallTable regime, the spliced CSR rows must be
// byte-identical to a from-scratch newSmallTable — the property that makes
// patched and rebuilt indexes indistinguishable downstream.
func TestPatchSmallTableByteIdentical(t *testing.T) {
	g := gen.Generate(gen.Grid, 400, gen.Options{Seed: 3})
	r := 3
	ix := New(g, r, Options{})
	if ix.small == nil {
		t.Skip("grid did not take the smallTable layout")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		edits, srcs := randomEdgeEdits(rng, g, 1+rng.Intn(4))
		gNew, err := graph.Patch(g, edits)
		if err != nil {
			t.Fatal(err)
		}
		patched, ok := Patch(ix, g, gNew, srcs)
		if !ok {
			t.Fatalf("trial %d: small-table patch refused", trial)
		}
		want := newSmallTable(gNew, r, par.Sequential())
		if !reflect.DeepEqual(patched.small.off, want.off) ||
			!reflect.DeepEqual(patched.small.ball, want.ball) ||
			!reflect.DeepEqual(patched.small.d, want.d) {
			t.Fatalf("trial %d: patched table differs from rebuilt table", trial)
		}
	}
}

// TestPatchColorOnlyShares: a batch with no edge endpoints shares the
// table outright.
func TestPatchColorOnlyShares(t *testing.T) {
	g := gen.Generate(gen.Grid, 200, gen.Options{Seed: 5, Colors: 1})
	ix := New(g, 2, Options{})
	if ix.small == nil {
		t.Skip("needs the smallTable layout")
	}
	gNew, err := graph.Patch(g, []graph.Edit{{Op: graph.AddColor, U: 3, Color: 0}})
	if err != nil {
		t.Fatal(err)
	}
	patched, ok := Patch(ix, g, gNew, nil)
	if !ok {
		t.Fatal("color-only patch refused")
	}
	if patched.small != ix.small {
		t.Fatal("color-only patch rebuilt the distance table")
	}
}

// TestPatchBailouts: layout transitions and avalanche edits refuse to
// patch instead of guessing.
func TestPatchBailouts(t *testing.T) {
	// Edgeless gaining an edge is a layout transition.
	empty := graph.NewBuilder(10, 0).Build()
	ix := New(empty, 2, Options{})
	gNew, err := graph.Patch(empty, []graph.Edit{{Op: graph.AddEdge, U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Patch(ix, empty, gNew, []graph.V{0, 1}); ok {
		t.Fatal("edgeless→edged transition should refuse to patch")
	}
	// Removing the only edge keeps edgeless patchable.
	gBack, err := graph.Patch(gNew, []graph.Edit{{Op: graph.RemoveEdge, U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix2 := New(gNew, 2, Options{})
	if ix2.small == nil {
		t.Skip("tiny graph did not take the smallTable layout")
	}
	if p, ok := Patch(ix2, gNew, gBack, []graph.V{0, 1}); !ok {
		t.Fatal("edge removal on smallTable should patch")
	} else if p.Within(0, 1, 2) {
		t.Fatal("removed edge still within distance 2")
	}
}
