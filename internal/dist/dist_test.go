package dist

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/splitter"
)

func testClasses() []gen.Class {
	return []gen.Class{gen.Path, gen.Cycle, gen.Star, gen.Caterpillar,
		gen.BalancedTree, gen.RandomTree, gen.Grid, gen.KingGrid,
		gen.BoundedDegree, gen.SparseRandom}
}

// TestIndexAgainstBFS cross-checks every Within answer against truncated
// BFS on random vertex pairs, for all classes and radii, including query
// radii strictly below the index radius.
func TestIndexAgainstBFS(t *testing.T) {
	for _, class := range testClasses() {
		for _, r := range []int{2, 4} {
			g := gen.Generate(class, 500, gen.Options{Seed: 13})
			ix := New(g, r, Options{})
			bfs := graph.NewBFS(g)
			rng := rand.New(rand.NewSource(int64(r)))
			for q := 0; q < 2000; q++ {
				a, b := rng.Intn(g.N()), rng.Intn(g.N())
				rr := 1 + rng.Intn(r)
				want := bfs.Distance(a, b, rr) >= 0
				if got := ix.Within(a, b, rr); got != want {
					t.Fatalf("%s r=%d: Within(%d,%d,%d)=%v want %v",
						class, r, a, b, rr, got, want)
				}
			}
		}
	}
}

// TestIndexAdjacentPairs checks all actual edges and some distance-2 pairs,
// which stress the bag-boundary logic more than random pairs do.
func TestIndexAdjacentPairs(t *testing.T) {
	g := gen.Generate(gen.Grid, 400, gen.Options{})
	ix := New(g, 3, Options{})
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if !ix.Within(v, int(w), 1) {
				t.Fatalf("edge (%d,%d) not within distance 1", v, w)
			}
			for _, u := range g.Neighbors(int(w)) {
				if !ix.Within(v, int(u), 2) {
					t.Fatalf("(%d,%d) not within distance 2", v, u)
				}
			}
		}
	}
}

// TestIndexSplitterRecursion forces the recursive path with a tiny
// SmallThreshold and checks correctness survives deep recursion.
func TestIndexSplitterRecursion(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.RandomTree, gen.Star, gen.Grid} {
		g := gen.Generate(class, 300, gen.Options{Seed: 2})
		ix := New(g, 2, Options{SmallThreshold: 8, DisableBallTable: true})
		if ix.Stats().Bags == 0 {
			t.Fatalf("%s: recursion not exercised (no bags)", class)
		}
		bfs := graph.NewBFS(g)
		rng := rand.New(rand.NewSource(4))
		for q := 0; q < 1500; q++ {
			a, b := rng.Intn(g.N()), rng.Intn(g.N())
			want := bfs.Distance(a, b, 2) >= 0
			if got := ix.Within(a, b, 2); got != want {
				t.Fatalf("%s: Within(%d,%d,2)=%v want %v", class, a, b, got, want)
			}
		}
	}
}

// TestIndexForestStrategy plugs in the provably correct forest strategy.
func TestIndexForestStrategy(t *testing.T) {
	g := gen.Generate(gen.RandomTree, 400, gen.Options{Seed: 9})
	strat := splitter.NewForestDepth(g)
	// The arenas inside the index are induced subgraphs with renumbered
	// vertices, so the depth table cannot be carried through; fall back to
	// the generic strategy for inner levels by wrapping.
	ix := New(g, 2, Options{Strategy: strat, SmallThreshold: 16})
	bfs := graph.NewBFS(g)
	rng := rand.New(rand.NewSource(10))
	for q := 0; q < 1000; q++ {
		a, b := rng.Intn(g.N()), rng.Intn(g.N())
		want := bfs.Distance(a, b, 2) >= 0
		if got := ix.Within(a, b, 2); got != want {
			t.Fatalf("Within(%d,%d,2)=%v want %v", a, b, got, want)
		}
	}
}

func TestIndexSelfAndOutOfRange(t *testing.T) {
	g := gen.Generate(gen.Path, 100, gen.Options{})
	ix := New(g, 2, Options{})
	if !ix.Within(5, 5, 0) {
		t.Fatal("Within(v,v,0) must hold")
	}
	if ix.Within(0, 99, 2) {
		t.Fatal("path endpoints are far apart")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rr > R")
		}
	}()
	ix.Within(0, 1, 3)
}

func TestIndexEdgeless(t *testing.T) {
	b := graph.NewBuilder(50, 0)
	g := b.Build()
	ix := New(g, 2, Options{})
	if ix.Within(1, 2, 2) {
		t.Fatal("edgeless graph has no close pairs")
	}
	if !ix.Within(3, 3, 1) {
		t.Fatal("Within(v,v) must hold")
	}
}

func TestIndexStatsNoFallbackOnSparse(t *testing.T) {
	// Classes with uniformly small balls at r=2; the small-world random
	// classes legitimately trigger the budget fallback at larger radii
	// because their 4-balls cover most of the graph.
	for _, class := range []gen.Class{gen.Path, gen.Cycle, gen.Star,
		gen.Caterpillar, gen.BalancedTree, gen.Grid, gen.KingGrid} {
		g := gen.Generate(class, 800, gen.Options{Seed: 21})
		ix := New(g, 2, Options{})
		if f := ix.Stats().Fallbacks; f != 0 {
			t.Errorf("%s: %d fallbacks on a nowhere dense input", class, f)
		}
	}
}

func TestIndexWorkBudgetDegradesGracefully(t *testing.T) {
	// A tiny budget must still give correct answers via the BFS fallback.
	g := gen.Generate(gen.Grid, 600, gen.Options{})
	ix := New(g, 2, Options{WorkBudget: 1})
	if ix.Stats().Fallbacks == 0 {
		t.Fatal("expected the budget fallback to trigger")
	}
	bfs := graph.NewBFS(g)
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 500; q++ {
		a, b := rng.Intn(g.N()), rng.Intn(g.N())
		want := bfs.Distance(a, b, 2) >= 0
		if got := ix.Within(a, b, 2); got != want {
			t.Fatalf("Within(%d,%d,2)=%v want %v", a, b, got, want)
		}
	}
}
