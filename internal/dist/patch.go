package dist

import (
	"sort"

	"repro/internal/graph"
)

// Patch derives the distance index of the edited graph gNew from ix,
// recomputing only what the edits can reach. sources are the vertices
// whose incident edges changed (edit endpoints); gOld is the graph ix was
// built on. ok=false means the layout cannot be patched locally (the
// recursive splitter layout, or a layout transition such as an edgeless
// graph gaining edges) and the caller must rebuild with New — correctness
// over cleverness, exactly as the budget fallbacks of the builder.
//
// The patchable layouts:
//
//   - smallTable (the bounded-ball fast path — the whole index on grids
//     and bounded-degree graphs): dist_G(x, ·) truncated at R changes only
//     for x within R of a source in the old or new graph, so those CSR
//     rows are recomputed on gNew and spliced between the untouched rows.
//     Cost O(n + Σ_{x∈A} ‖N_R(x)‖) for the affected set A — the paper's
//     n^ε update regime when balls are bounded.
//   - fallback (on-demand BFS): nothing is precomputed; the patched index
//     is a fresh BFS pool over gNew.
//
// Color edits never reach this function (distances are color-blind); the
// caller passes only edge-edit endpoints.
func Patch(ix *Index, gOld, gNew *graph.Graph, sources []graph.V) (*Index, bool) {
	if gNew.N() != gOld.N() {
		return nil, false
	}
	switch {
	case ix.fallback != nil:
		out := &Index{g: gNew, R: ix.R, stats: ix.stats}
		out.fallback = newBFSPool(gNew)
		return out, true
	case ix.small != nil:
		if len(sources) == 0 {
			// Color-only mutation batches: distances are untouched; share
			// the table outright.
			out := &Index{g: gNew, R: ix.R, small: ix.small, stats: ix.stats}
			return out, true
		}
		tbl, ok := patchSmallTable(ix.small, gOld, gNew, ix.R, sources)
		if !ok {
			return nil, false
		}
		return &Index{g: gNew, R: ix.R, small: tbl, stats: ix.stats}, true
	case ix.edgeless:
		if gNew.M() == 0 {
			out := &Index{g: gNew, R: ix.R, edgeless: true, stats: ix.stats}
			return out, true
		}
		return nil, false // layout transition: rebuild
	default:
		return nil, false // recursive splitter layout: rebuild
	}
}

// patchSmallTable recomputes the ball rows of every vertex within R of a
// source (in the old or the new graph) and splices them into a new CSR
// table; rows of unaffected vertices are copied verbatim, so the result is
// byte-identical to newSmallTable(gNew, R).
func patchSmallTable(t *smallTable, gOld, gNew *graph.Graph, r int, sources []graph.V) (*smallTable, bool) {
	n := gNew.N()
	affected := make([]bool, n)
	count := 0
	mark := func(bfs *graph.BFS) {
		for _, w := range bfs.BallMulti(sources, r) {
			if !affected[w] {
				affected[w] = true
				count++
			}
		}
	}
	mark(graph.NewBFS(gOld))
	mark(graph.NewBFS(gNew))
	// An edit avalanche touching most rows is no cheaper than a rebuild;
	// bail out and let the caller take the builder path (which also keeps
	// the 24·‖G‖ cell-cap decision of the fast path authoritative).
	if count > n/2 {
		return nil, false
	}

	// Fresh rows for the affected vertices, in gNew.
	bfs := graph.NewBFS(gNew)
	type pair struct {
		v int32
		d int8
	}
	rows := make(map[graph.V][]pair, count)
	var scratch []pair
	for v := 0; v < n; v++ {
		if !affected[v] {
			continue
		}
		scratch = scratch[:0]
		for _, w := range bfs.Ball(v, r) {
			scratch = append(scratch, pair{w, int8(bfs.Dist(int(w)))})
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i].v < scratch[j].v })
		rows[v] = append([]pair(nil), scratch...)
	}

	out := &smallTable{off: make([]int32, n+1)}
	total := len(t.ball)
	for v := 0; v < n; v++ { //fod:sorted — reads rows by ascending vertex id, not map order
		if affected[v] {
			total += len(rows[v]) - int(t.off[v+1]-t.off[v])
		}
	}
	out.ball = make([]int32, 0, total)
	out.d = make([]int8, 0, total)
	for v := 0; v < n; v++ { //fod:sorted — reads rows by ascending vertex id, not map order
		out.off[v] = int32(len(out.ball))
		if !affected[v] {
			lo, hi := t.off[v], t.off[v+1]
			out.ball = append(out.ball, t.ball[lo:hi]...)
			out.d = append(out.d, t.d[lo:hi]...)
			continue
		}
		for _, p := range rows[v] {
			out.ball = append(out.ball, p.v)
			out.d = append(out.d, p.d)
		}
	}
	out.off[n] = int32(len(out.ball))
	return out, true
}
