package dist

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// equalIndexes compares two indexes structurally — layout choice, table
// contents, cover shape, splitter vertices, Step-4 distances, and the
// recursive sub-indexes. It deliberately ignores runtime-only state (the
// fallback BFS pool and stats pointers).
func equalIndexes(t *testing.T, path string, a, b *Index) {
	t.Helper()
	if a.R != b.R {
		t.Fatalf("%s: radius %d vs %d", path, a.R, b.R)
	}
	if a.edgeless != b.edgeless {
		t.Fatalf("%s: edgeless %v vs %v", path, a.edgeless, b.edgeless)
	}
	if (a.small == nil) != (b.small == nil) {
		t.Fatalf("%s: small-table layout %v vs %v", path, a.small != nil, b.small != nil)
	}
	if a.small != nil && !reflect.DeepEqual(a.small, b.small) {
		t.Fatalf("%s: small tables differ", path)
	}
	if (a.fallback == nil) != (b.fallback == nil) {
		t.Fatalf("%s: fallback layout %v vs %v", path, a.fallback != nil, b.fallback != nil)
	}
	if (a.cov == nil) != (b.cov == nil) {
		t.Fatalf("%s: cover layout %v vs %v", path, a.cov != nil, b.cov != nil)
	}
	if a.cov == nil {
		return
	}
	if a.cov.NumBags() != b.cov.NumBags() {
		t.Fatalf("%s: %d vs %d bags", path, a.cov.NumBags(), b.cov.NumBags())
	}
	for i := 0; i < a.cov.NumBags(); i++ {
		if !reflect.DeepEqual(a.cov.Bag(i), b.cov.Bag(i)) {
			t.Fatalf("%s: bag %d members differ", path, i)
		}
		if a.cov.Center(i) != b.cov.Center(i) {
			t.Fatalf("%s: bag %d center %d vs %d", path, i, a.cov.Center(i), b.cov.Center(i))
		}
		ba, bb := a.bags[i], b.bags[i]
		if ba.sX != bb.sX {
			t.Fatalf("%s: bag %d splitter %d vs %d", path, i, ba.sX, bb.sX)
		}
		if !reflect.DeepEqual(ba.distS, bb.distS) {
			t.Fatalf("%s: bag %d distS differs", path, i)
		}
		equalIndexes(t, fmt.Sprintf("%s/bag%d", path, i), ba.inner, bb.inner)
	}
}

// TestParallelIndexByteIdentical asserts that Workers=N builds exactly the
// structure Workers=1 builds, across graph classes including dense ones
// that exercise the splitter recursion, and that the deterministic budget
// accounting agrees too.
func TestParallelIndexByteIdentical(t *testing.T) {
	cases := []struct {
		class gen.Class
		n     int
		opt   Options
	}{
		{gen.Path, 400, Options{}},
		{gen.Grid, 900, Options{}},
		{gen.RandomTree, 700, Options{}},
		{gen.BoundedDegree, 600, Options{}},
		{gen.SparseRandom, 500, Options{}},
		// DisableBallTable forces the cover + splitter recursion.
		{gen.Grid, 900, Options{DisableBallTable: true}},
		{gen.RandomTree, 700, Options{DisableBallTable: true}},
		{gen.Caterpillar, 500, Options{DisableBallTable: true}},
		// Dense classes drive deep recursion and budget pressure.
		{gen.Clique, 60, Options{DisableBallTable: true}},
		{gen.DenseRandom, 120, Options{DisableBallTable: true}},
		// Tight budget: fallback decisions must still match.
		{gen.Grid, 400, Options{DisableBallTable: true, WorkBudget: 4000}},
		{gen.DenseRandom, 120, Options{DisableBallTable: true, WorkBudget: 2000}},
	}
	for _, tc := range cases {
		for _, r := range []int{1, 2} {
			g := gen.Generate(tc.class, tc.n, gen.Options{Seed: 11})
			seqOpt, parOpt := tc.opt, tc.opt
			seqOpt.Workers = 1
			seq := New(g, r, seqOpt)
			for _, workers := range []int{2, 5} {
				parOpt.Workers = workers
				p := New(g, r, parOpt)
				label := fmt.Sprintf("%s n=%d r=%d w=%d", tc.class, tc.n, r, workers)
				equalIndexes(t, label, seq, p)
				ss, ps := seq.Stats(), p.Stats()
				ss.Workers, ps.Workers = 0, 0
				ss.BuildWall, ps.BuildWall = 0, 0
				if !reflect.DeepEqual(ss, ps) {
					t.Fatalf("%s: stats differ: %+v vs %+v", label, ss, ps)
				}
			}
		}
	}
}

// TestParallelIndexAnswers cross-checks a parallel-built index against the
// BFS oracle on every queried pair.
func TestParallelIndexAnswers(t *testing.T) {
	for _, class := range []gen.Class{gen.Grid, gen.RandomTree, gen.SparseRandom} {
		g := gen.Generate(class, 500, gen.Options{Seed: 7})
		ix := New(g, 3, Options{Workers: 4})
		bfs := graph.NewBFS(g)
		for a := 0; a < g.N(); a += 13 {
			for b := 0; b < g.N(); b += 17 {
				for rr := 0; rr <= 3; rr++ {
					want := bfs.Distance(a, b, rr) >= 0
					if got := ix.Within(a, b, rr); got != want {
						t.Fatalf("%s: Within(%d,%d,%d) = %v, oracle %v", class, a, b, rr, got, want)
					}
				}
			}
		}
	}
}

// TestConcurrentWithin hammers one shared index — including one forced
// into the BFS-fallback layout, whose scratch is pooled — from many
// goroutines; run with -race.
func TestConcurrentWithin(t *testing.T) {
	for _, opt := range []Options{
		{Workers: 4},
		{Workers: 4, WorkBudget: 1}, // whole index degenerates to fallback BFS
	} {
		g := gen.Generate(gen.Grid, 900, gen.Options{Seed: 9})
		ix := New(g, 2, opt)
		bfs := graph.NewBFS(g)
		type q struct {
			a, b, rr int
			want     bool
		}
		var qs []q
		for a := 0; a < g.N(); a += 31 {
			for b := 0; b < g.N(); b += 37 {
				rr := (a + b) % 3
				qs = append(qs, q{a, b, rr, bfs.Distance(a, b, rr) >= 0})
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(qs); i += 2 {
					if got := ix.Within(qs[i].a, qs[i].b, qs[i].rr); got != qs[i].want {
						t.Errorf("Within(%d,%d,%d) = %v, want %v",
							qs[i].a, qs[i].b, qs[i].rr, got, qs[i].want)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
}

// TestManyWorkersSmallGraph is a regression test: when workers*4 chunks
// exceed √n, ceil-division chunking used to produce a trailing chunk with
// lo > n and panic on a negative-length makeslice. Oversubscribed pools
// must degrade to empty shards instead.
func TestManyWorkersSmallGraph(t *testing.T) {
	g := gen.Generate(gen.Grid, 1936, gen.Options{Seed: 11})
	seq := New(g, 2, Options{Workers: 1})
	for _, workers := range []int{16, 64, 300} {
		p := New(g, 2, Options{Workers: workers})
		equalIndexes(t, fmt.Sprintf("grid n=1936 w=%d", workers), seq, p)
	}
}
