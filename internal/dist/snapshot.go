package dist

import (
	"fmt"

	"repro/internal/cover"
	"repro/internal/graph"
)

// Node kinds of the serialized recursion tree (NodeParts.Kind).
const (
	NodeEdgeless  = 1 // λ=1 base case: dist(a,b) ≤ r iff a = b
	NodeSmall     = 2 // truncated ball-list table (CSR)
	NodeFallback  = 3 // on-demand truncated BFS
	NodeRecursive = 4 // cover + per-bag splitter data + child per bag
)

// maxSnapshotDepth bounds the accepted recursion depth. Builds never
// exceed Options.MaxDepth (default 24); the cap protects the restorer
// from stack exhaustion on corrupted snapshots.
const maxSnapshotDepth = 64

// NodeParts is one arena of the serialized Proposition 4.2 recursion.
// Small nodes carry their truncated distance table verbatim; recursive
// nodes carry the level's cover, the per-bag splitter vertex and Step-4
// distance column, and one child per bag. The arena graphs themselves are
// NOT serialized: each level's G[X] and X′ = G[X \ {s_X}] are
// reconstructed by the same graph.Induce calls the builder ran, which is
// deterministic and skips every BFS the build paid for.
type NodeParts struct {
	Kind int

	// NodeSmall:
	SmallOff  []int32
	SmallBall []int32
	SmallD    []int8

	// NodeRecursive:
	Cover cover.Parts
	Bags  []BagParts
}

// BagParts is the per-bag payload of a recursive node.
type BagParts struct {
	SX    int32   // splitter vertex, local to the bag's induced subgraph
	DistS []int32 // dist_{G[X]}(v, s_X) truncated at R+1, local
	Inner *NodeParts
}

// Parts is the serialized form of a distance index: the radius, the
// structural counters (so Stats/Explain survive a round trip), and the
// recursion tree.
type Parts struct {
	R    int
	Root *NodeParts

	Bags, MaxDepth, SmallLeaves, Fallbacks, TableCells, Work int
}

// Parts returns the serialized form of the index.
func (ix *Index) Parts() Parts {
	st := ix.Stats()
	return Parts{
		R: ix.R, Root: nodeParts(ix),
		Bags: st.Bags, MaxDepth: st.MaxDepth, SmallLeaves: st.SmallLeaves,
		Fallbacks: st.Fallbacks, TableCells: st.TableCells, Work: st.Work,
	}
}

func nodeParts(ix *Index) *NodeParts {
	switch {
	case ix.edgeless:
		return &NodeParts{Kind: NodeEdgeless}
	case ix.small != nil:
		return &NodeParts{Kind: NodeSmall, SmallOff: ix.small.off, SmallBall: ix.small.ball, SmallD: ix.small.d}
	case ix.fallback != nil:
		return &NodeParts{Kind: NodeFallback}
	}
	np := &NodeParts{Kind: NodeRecursive, Cover: ix.cov.Parts(false), Bags: make([]BagParts, len(ix.bags))}
	for i, b := range ix.bags {
		np.Bags[i] = BagParts{SX: int32(b.sX), DistS: b.distS, Inner: nodeParts(b.inner)}
	}
	return np
}

// FromParts reconstructs the index for g. Covers, splitter vertices and
// distance columns come from the snapshot; the arena subgraphs are
// re-induced (pure renumbering, no BFS), so the restored index is
// structurally identical to the built one.
func FromParts(g *graph.Graph, p Parts) (*Index, error) {
	if p.R < 1 {
		return nil, fmt.Errorf("dist: snapshot radius %d < 1", p.R)
	}
	stats := &Stats{
		Bags: p.Bags, MaxDepth: p.MaxDepth, SmallLeaves: p.SmallLeaves,
		Fallbacks: p.Fallbacks, TableCells: p.TableCells, Work: p.Work,
	}
	return fromNode(g, p.R, p.Root, stats, 0)
}

func fromNode(g *graph.Graph, r int, np *NodeParts, stats *Stats, depth int) (*Index, error) {
	if np == nil {
		return nil, fmt.Errorf("dist: missing recursion node at depth %d", depth)
	}
	if depth > maxSnapshotDepth {
		return nil, fmt.Errorf("dist: recursion deeper than %d", maxSnapshotDepth)
	}
	ix := &Index{g: g, R: r, stats: stats}
	switch np.Kind {
	case NodeEdgeless:
		ix.edgeless = true
	case NodeSmall:
		t, err := smallFromParts(np, g.N())
		if err != nil {
			return nil, err
		}
		ix.small = t
	case NodeFallback:
		ix.fallback = newBFSPool(g)
	case NodeRecursive:
		cov, err := cover.FromParts(g, np.Cover)
		if err != nil {
			return nil, err
		}
		if cov.R != r {
			return nil, fmt.Errorf("dist: level cover has radius %d, index has %d", cov.R, r)
		}
		if len(np.Bags) != cov.NumBags() {
			return nil, fmt.Errorf("dist: %d bag payloads for %d bags", len(np.Bags), cov.NumBags())
		}
		ix.cov = cov
		ix.bags = make([]*bagIndex, len(np.Bags))
		for i := range np.Bags {
			bp := &np.Bags[i]
			sub := graph.Induce(g, cov.Bag(i))
			if int(bp.SX) < 0 || int(bp.SX) >= sub.G.N() {
				return nil, fmt.Errorf("dist: splitter %d of bag %d outside its %d-vertex arena", bp.SX, i, sub.G.N())
			}
			if len(bp.DistS) != sub.G.N() {
				return nil, fmt.Errorf("dist: bag %d distance column has %d entries for %d vertices", i, len(bp.DistS), sub.G.N())
			}
			b := &bagIndex{sub: sub, sX: int(bp.SX), distS: bp.DistS}
			rest := make([]graph.V, 0, sub.G.N()-1)
			for v := 0; v < sub.G.N(); v++ {
				if v != b.sX {
					rest = append(rest, v)
				}
			}
			b.prime = graph.Induce(sub.G, rest)
			inner, err := fromNode(b.prime.G, r, bp.Inner, stats, depth+1)
			if err != nil {
				return nil, err
			}
			b.inner = inner
			ix.bags[i] = b
		}
	default:
		return nil, fmt.Errorf("dist: unknown recursion node kind %d", np.Kind)
	}
	return ix, nil
}

func smallFromParts(np *NodeParts, n int) (*smallTable, error) {
	t := &smallTable{off: np.SmallOff, ball: np.SmallBall, d: np.SmallD}
	if len(t.off) != n+1 || (n >= 0 && (len(t.off) == 0 || t.off[0] != 0)) {
		return nil, fmt.Errorf("dist: ball table has %d offsets for %d vertices", len(t.off), n)
	}
	if int(t.off[n]) != len(t.ball) || len(t.d) != len(t.ball) {
		return nil, fmt.Errorf("dist: ball table columns disagree (%d offsets end, %d ids, %d distances)",
			t.off[n], len(t.ball), len(t.d))
	}
	for i := 0; i < n; i++ {
		if t.off[i] > t.off[i+1] {
			return nil, fmt.Errorf("dist: ball table offsets of vertex %d out of order", i)
		}
		prev := int32(-1)
		for _, w := range t.ball[t.off[i]:t.off[i+1]] {
			if w <= prev || int(w) >= n {
				return nil, fmt.Errorf("dist: ball list of vertex %d not a sorted vertex list", i)
			}
			prev = w
		}
	}
	return t, nil
}
