// Package dist implements Proposition 4.2 of the paper: after a
// pseudo-linear preprocessing of a colored graph G and a radius r, queries
// dist(a, b) ≤ r′ (for any r′ ≤ r) are answered in constant time.
//
// The construction follows Section 4.2. An (r, 2r)-neighborhood cover 𝒳 is
// computed; testing reduces to the bag 𝒳(a) (if b ∉ 𝒳(a) the answer is
// "no"). Within a bag X the splitter vertex s_X (Splitter's answer when
// Connector plays the bag center c_X) is removed; distances to s_X (the
// sets R_i of Step 4) are precomputed by BFS, and distances avoiding s_X
// are answered by a recursively built index on X′ = G[X \ {s_X}], whose
// splitter-game depth is one smaller. The recursion bottoms out at edgeless
// or small arenas, where truncated distance matrices are stored directly.
//
// If the plugged-in Splitter strategy fails to shrink an arena within
// MaxDepth levels (which does not happen on nowhere dense inputs), the
// index falls back to on-demand truncated BFS; correctness is preserved
// and the event is counted in Stats.
//
// # Parallel construction
//
// Per-bag work (graph.Induce, the splitter answer, the Step-4 BFS, and the
// whole recursive sub-index) depends only on the graph, the cover, and the
// bag — bags are independent, so Options.Workers > 1 builds them
// concurrently with an ordered fan-in. To keep the parallel index
// byte-identical to the sequential one, the work budget is split
// deterministically *before* the fan-out: every bag subtree receives a
// share of the remaining budget proportional to its size, instead of the
// old first-come-first-served draw from a global counter (whose outcome
// would depend on completion order). Sequential construction uses the
// same per-subtree budgeting, so Workers=1 and Workers=N produce the same
// structure decision for decision. The bounded-ball fast path (the whole
// index for grids and bounded-degree graphs) shards its per-vertex ball
// scans across workers in contiguous vertex ranges and stitches the CSR
// arrays back in order.
package dist

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/splitter"
)

// Options tunes index construction.
type Options struct {
	// Strategy is Splitter's strategy (default BallCenter).
	Strategy splitter.Strategy
	// SmallThreshold is the arena size at which recursion stops and a
	// truncated distance table is stored (default 8·(2r+1), at least 256).
	SmallThreshold int
	// MaxDepth bounds the splitter recursion (default 24).
	MaxDepth int
	// DisableBallTable turns off the bounded-ball fast path, forcing the
	// splitter-game recursion even on arenas whose ball lists are linear.
	// Used by tests and the ablation benchmarks.
	DisableBallTable bool
	// WorkBudget bounds the total vertices+edges processed across all
	// recursion levels (default 256·‖G‖ + 2^20). It is split
	// deterministically across recursion branches; when a branch's share
	// is exhausted — which happens only when the input is not nowhere
	// dense at the requested radius, so the splitter recursion stops
	// shrinking arenas — that branch falls back to on-demand BFS.
	// Correctness is unaffected; Stats.Fallbacks counts the occurrences.
	WorkBudget int
	// Workers bounds the construction parallelism. 0 and 1 select the
	// sequential path; any value produces a byte-identical index.
	Workers int
	// Obs, when non-nil, receives the aggregate build metrics: counters
	// dist.bags / dist.fallbacks / dist.small_leaves / dist.table_cells /
	// dist.work, the histogram dist.build_ns, and pool metrics under
	// dist.pool.*. The recursive sub-builds are folded into these
	// aggregates (they share the Stats), not reported per level. Nil
	// disables all recording at zero cost.
	Obs *obs.Registry
}

func (o Options) withDefaults(r int, g *graph.Graph) Options {
	if o.Strategy == nil {
		o.Strategy = splitter.BallCenter{}
	}
	if o.SmallThreshold == 0 {
		o.SmallThreshold = 8 * (2*r + 1)
		if o.SmallThreshold < 256 {
			o.SmallThreshold = 256
		}
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 24
	}
	if o.WorkBudget == 0 {
		o.WorkBudget = 256*g.Size() + 1<<20
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Stats reports structural facts about a built index.
type Stats struct {
	Bags        int           // total bags over all recursion levels
	MaxDepth    int           // deepest recursion level used
	SmallLeaves int           // arenas solved by truncated distance tables
	Fallbacks   int           // arenas that exhausted MaxDepth or the work budget
	TableCells  int           // total entries of all truncated distance tables
	Work        int           // vertices+edges processed across all levels
	Workers     int           // construction parallelism used
	BuildWall   time.Duration // wall time of New
}

// merge folds a sub-build's counters into s (ordered fan-in: callers merge
// in bag order, so the totals are deterministic).
func (s *Stats) merge(o *Stats) {
	s.Bags += o.Bags
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	s.SmallLeaves += o.SmallLeaves
	s.Fallbacks += o.Fallbacks
	s.TableCells += o.TableCells
	s.Work += o.Work
}

// Index answers dist(a,b) ≤ r′ queries for all r′ ≤ R in constant time.
// Once built it is safe for concurrent use.
type Index struct {
	g *graph.Graph
	R int

	// Exactly one of the following four layouts is active.
	edgeless bool         // λ=1 base case: dist(a,b) ≤ rr iff a = b
	small    *smallTable  // truncated distance table
	fallback *bfsPool     // MaxDepth/budget exhausted: on-demand BFS
	cov      *cover.Cover // recursive layout
	bags     []*bagIndex

	stats *Stats
}

type bagIndex struct {
	sub   *graph.Sub // G[X] with local numbering
	sX    int        // splitter vertex, local to sub
	distS []int32    // dist_{G[X]}(v, s_X) truncated at R+1, local to sub
	prime *graph.Sub // X′ = sub minus sX, local to sub
	inner *Index     // recursive index on prime.G
}

// bfsPool hands out per-goroutine BFS scratch for the on-demand fallback,
// so concurrent Within calls do not share mutable search state.
type bfsPool struct {
	g *graph.Graph
	p sync.Pool
}

func newBFSPool(g *graph.Graph) *bfsPool {
	bp := &bfsPool{g: g}
	bp.p.New = func() any { return graph.NewBFS(g) }
	return bp
}

func (bp *bfsPool) distance(a, b graph.V, max int) int {
	bfs := bp.p.Get().(*graph.BFS)
	d := bfs.Distance(a, b, max)
	bp.p.Put(bfs)
	return d
}

// smallTable stores, per vertex of a small arena, the sorted list of
// (vertex, distance) pairs of its r-ball — CSR layout, so the space is the
// sum of ball sizes rather than n².
type smallTable struct {
	off  []int32
	ball []int32 // neighbor ids, sorted per source
	d    []int8  // distances, aligned with ball
}

func newSmallTable(g *graph.Graph, r int, pool *par.Pool) *smallTable {
	t, _ := newSmallTableCapped(g, r, 1<<62, pool)
	return t
}

// newSmallTableCapped builds the ball-list table but aborts (returning
// ok=false) once more than maxCells cells would be stored. Sequentially
// the abort costs at most O(maxCells) wasted work; in parallel each shard
// aborts against the same cap, so waste stays O(workers·maxCells). The
// abort decision — "the total cell count exceeds maxCells" — is a property
// of g and r alone, and the CSR arrays are stitched in vertex order, so
// the result is independent of the worker count.
func newSmallTableCapped(g *graph.Graph, r, maxCells int, pool *par.Pool) (*smallTable, bool) {
	if pool == nil || pool.Workers() <= 1 || g.N() < 1024 {
		return smallTableRange(g, r, maxCells, 0, g.N(), nil)
	}
	nchunks := pool.Workers() * 4
	if nchunks > g.N() {
		nchunks = g.N()
	}
	chunkLen := (g.N() + nchunks - 1) / nchunks
	type shard struct {
		t  *smallTable
		ok bool
	}
	shards := make([]shard, nchunks)
	var abort abortFlag
	pool.ForEach(nchunks, func(ci int) {
		lo := ci * chunkLen
		hi := lo + chunkLen
		// ceil division can overshoot n when nchunks² > n; clamp both ends
		// so trailing chunks degenerate to empty shards instead of lo > hi.
		if lo > g.N() {
			lo = g.N()
		}
		if hi > g.N() {
			hi = g.N()
		}
		t, ok := smallTableRange(g, r, maxCells, lo, hi, &abort)
		shards[ci] = shard{t, ok}
		if !ok {
			abort.set()
		}
	})
	total := 0
	for _, sh := range shards {
		if !sh.ok {
			return nil, false
		}
		total += len(sh.t.ball)
	}
	if total > maxCells {
		return nil, false
	}
	out := &smallTable{
		off:  make([]int32, g.N()+1),
		ball: make([]int32, 0, total),
		d:    make([]int8, 0, total),
	}
	v := 0
	for _, sh := range shards {
		base := int32(len(out.ball))
		out.ball = append(out.ball, sh.t.ball...)
		out.d = append(out.d, sh.t.d...)
		for i := 1; i < len(sh.t.off); i++ {
			v++
			out.off[v] = base + sh.t.off[i]
		}
	}
	return out, true
}

// abortFlag lets shards cut each other's losses once any shard overflows
// the cell cap; it only ever turns an already-doomed computation short, so
// checking it cannot change the (deterministic) outcome.
type abortFlag struct {
	flag atomic.Bool
}

func (a *abortFlag) set() {
	a.flag.Store(true)
}

func (a *abortFlag) get() bool {
	return a.flag.Load()
}

// smallTableRange builds the ball lists for vertices [lo, hi); off is
// local (off[0] = 0 at vertex lo).
func smallTableRange(g *graph.Graph, r, maxCells, lo, hi int, abort *abortFlag) (*smallTable, bool) {
	t := &smallTable{off: make([]int32, hi-lo+1)}
	bfs := graph.NewBFS(g)
	type pair struct {
		v int32
		d int8
	}
	var scratch []pair
	for v := lo; v < hi; v++ {
		if abort != nil && abort.get() {
			return nil, false
		}
		scratch = scratch[:0]
		for _, w := range bfs.Ball(v, r) {
			scratch = append(scratch, pair{w, int8(bfs.Dist(int(w)))})
		}
		if len(t.ball)+len(scratch) > maxCells {
			return nil, false
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i].v < scratch[j].v })
		for _, p := range scratch {
			t.ball = append(t.ball, p.v)
			t.d = append(t.d, p.d)
		}
		t.off[v-lo+1] = int32(len(t.ball))
	}
	return t, true
}

func (t *smallTable) cells() int { return len(t.ball) }

func (t *smallTable) within(a, b graph.V, rr int) bool {
	lo, hi := t.off[a], t.off[a+1]
	seg := t.ball[lo:hi]
	i := sort.Search(len(seg), func(i int) bool { return seg[i] >= int32(b) })
	return i < len(seg) && seg[i] == int32(b) && int(t.d[lo+int32(i)]) <= rr
}

// New builds the distance index for radius r.
func New(g *graph.Graph, r int, opt Options) *Index {
	if r < 1 {
		panic(fmt.Sprintf("dist: radius %d < 1", r))
	}
	start := time.Now()
	opt = opt.withDefaults(r, g)
	pool := par.NewPool(opt.Workers).WithMetrics(par.NewMetrics(opt.Obs, "dist.pool"))
	stats := &Stats{}
	ix := build(g, r, opt, 0, stats, opt.WorkBudget, pool)
	ix.stats = stats
	stats.Workers = pool.Workers()
	stats.BuildWall = time.Since(start)
	if reg := opt.Obs; reg != nil {
		reg.Counter("dist.bags").Add(int64(stats.Bags))
		reg.Counter("dist.fallbacks").Add(int64(stats.Fallbacks))
		reg.Counter("dist.small_leaves").Add(int64(stats.SmallLeaves))
		reg.Counter("dist.table_cells").Add(int64(stats.TableCells))
		reg.Counter("dist.work").Add(int64(stats.Work))
		reg.Gauge("dist.max_depth").Max(int64(stats.MaxDepth))
		reg.Histogram("dist.build_ns").Observe(stats.BuildWall)
	}
	return ix
}

// build constructs the index for one arena with the given work budget.
// The pool is only used at depth 0 (bag fan-out and ball-table sharding);
// recursive calls inside parallel bag tasks run sequentially.
func build(g *graph.Graph, r int, opt Options, depth int, stats *Stats, budget int, pool *par.Pool) *Index {
	if depth > stats.MaxDepth {
		stats.MaxDepth = depth
	}
	ix := &Index{g: g, R: r, stats: stats}
	if graph.IsEdgeless(g) {
		ix.edgeless = true
		stats.SmallLeaves++
		return ix
	}
	stats.Work += g.Size()
	budget -= g.Size()
	if depth >= opt.MaxDepth || budget < 0 {
		ix.fallback = newBFSPool(g)
		stats.Fallbacks++
		return ix
	}
	if g.N() <= opt.SmallThreshold {
		ix.small = newSmallTable(g, r, pool)
		stats.SmallLeaves++
		stats.TableCells += ix.small.cells()
		stats.Work += ix.small.cells()
		return ix
	}
	// Bounded-ball fast path: when Σ_v |N_r(v)| is linear in ‖G‖ (bounded
	// degree, grids, …), a single ball-list table is the whole index. The
	// attempt aborts after O(‖G‖) wasted work on hub-dominated graphs,
	// which then proceed through the splitter recursion.
	if !opt.DisableBallTable {
		if tbl, ok := newSmallTableCapped(g, r, 24*g.Size(), pool); ok {
			ix.small = tbl
			stats.SmallLeaves++
			stats.TableCells += tbl.cells()
			stats.Work += tbl.cells()
			return ix
		}
		stats.Work += 24 * g.Size() // cost of the aborted attempt
		budget -= 24 * g.Size()
	}
	coverWorkers := 1
	if depth == 0 {
		coverWorkers = pool.Workers()
	}
	ix.cov = cover.ComputeWith(g, r, cover.Options{Workers: coverWorkers})
	stats.Work += ix.cov.SumBagSizes()
	budget -= ix.cov.SumBagSizes()
	if budget < 0 {
		// The cover is too heavy (overlapping near-whole-graph bags): the
		// recursion cannot make progress within budget. Truncated BFS per
		// query costs O(‖N_r(a)‖), which on such arenas is of the same
		// order as the table chain would have been.
		ix.cov = nil
		ix.fallback = newBFSPool(g)
		stats.Fallbacks++
		return ix
	}
	nb := ix.cov.NumBags()
	stats.Bags += nb
	// Deterministic budget split: each bag subtree receives a share of the
	// remaining budget proportional to its size (every bag has ≥ 1 vertex,
	// and Σ shares ≤ budget).
	shares := make([]int, nb)
	total := ix.cov.SumBagSizes()
	for i := 0; i < nb; i++ {
		shares[i] = int(int64(budget) * int64(len(ix.cov.Bag(i))) / int64(total))
	}
	if pool.Workers() > 1 && nb > 1 && depth == 0 {
		type sub struct {
			b  *bagIndex
			st Stats
		}
		subs := par.Map(pool, nb, func(i int) sub {
			var st Stats
			return sub{buildBag(g, ix.cov, i, r, opt, depth, &st, shares[i], par.Sequential()), st}
		})
		ix.bags = make([]*bagIndex, nb)
		for i := range subs {
			ix.bags[i] = subs[i].b
			stats.merge(&subs[i].st)
		}
		return ix
	}
	ix.bags = make([]*bagIndex, nb)
	for i := 0; i < nb; i++ {
		ix.bags[i] = buildBag(g, ix.cov, i, r, opt, depth, stats, shares[i], pool)
	}
	return ix
}

func buildBag(g *graph.Graph, cov *cover.Cover, i, r int, opt Options, depth int, stats *Stats, budget int, pool *par.Pool) *bagIndex {
	sub := graph.Induce(g, cov.Bag(i))
	stats.Work += sub.G.Size()
	budget -= sub.G.Size()
	// Splitter's answer when Connector plays the bag center in the
	// (λ, 2r)-game on G — evaluated inside the bag, which contains
	// N_{2r}(c_X) ∩ X; the strategy only needs a vertex of the ball.
	cLocal := sub.Local(cov.Center(i))
	sLocal := opt.Strategy.Answer(sub.G, cLocal, 2*r)
	b := &bagIndex{sub: sub, sX: sLocal}

	// Step 4: distances to s_X inside G[X], truncated at r.
	b.distS = make([]int32, sub.G.N())
	for v := range b.distS {
		b.distS[v] = int32(r) + 1
	}
	bfs := graph.NewBFS(sub.G)
	for _, w := range bfs.Ball(sLocal, r) {
		b.distS[w] = int32(bfs.Dist(int(w)))
	}

	// Step 5: recursive index on X′ = G[X \ {s_X}].
	rest := make([]graph.V, 0, sub.G.N()-1)
	for v := 0; v < sub.G.N(); v++ {
		if v != sLocal {
			rest = append(rest, v)
		}
	}
	b.prime = graph.Induce(sub.G, rest)
	b.inner = build(b.prime.G, r, opt, depth+1, stats, budget, pool)
	return b
}

// Stats returns construction statistics.
func (ix *Index) Stats() Stats { return *ix.stats }

// Radius returns the maximum supported radius R.
func (ix *Index) Radius() int { return ix.R }

// Within reports whether dist_G(a, b) ≤ rr, for any rr ≤ R. It implements
// fo.DistTester and is safe for concurrent use. Every distance-type test
// of the answering phase lands here, so the formatted panic lives in the
// un-annotated badRadius helper.
//
//fod:hotpath
func (ix *Index) Within(a, b graph.V, rr int) bool {
	if rr > ix.R {
		ix.badRadius(rr)
	}
	if rr < 0 {
		return false
	}
	if a == b {
		return true
	}
	switch {
	case ix.edgeless:
		return false // a ≠ b and there are no edges
	case ix.small != nil:
		return ix.small.within(a, b, rr)
	case ix.fallback != nil:
		return ix.fallback.distance(a, b, rr) >= 0
	}
	x := ix.cov.Assign(a)
	bag := ix.bags[x]
	la, lb := bag.sub.Local(a), bag.sub.Local(b)
	if lb < 0 {
		// b ∉ 𝒳(a) ⊇ N_R(a) ⊇ N_rr(a), hence dist(a,b) > rr.
		return false
	}
	return bag.within(la, lb, rr)
}

func (ix *Index) badRadius(rr int) {
	panic(fmt.Sprintf("dist: query radius %d exceeds index radius %d", rr, ix.R))
}

// within answers inside G[X] with local coordinates (Section 4.2.2's case
// analysis).
func (b *bagIndex) within(a, bb graph.V, rr int) bool {
	switch {
	case a == b.sX && bb == b.sX:
		return true
	case a == b.sX:
		return int(b.distS[bb]) <= rr
	case bb == b.sX:
		return int(b.distS[a]) <= rr
	}
	// Path through s_X …
	if int(b.distS[a])+int(b.distS[bb]) <= rr {
		return true
	}
	// … or path avoiding s_X, answered by the recursive index on X′.
	pa, pb := b.prime.Local(a), b.prime.Local(bb)
	return b.inner.Within(pa, pb, rr)
}
