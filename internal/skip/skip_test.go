package skip

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteSkip is the definition of SKIP(b, S), evaluated directly.
func bruteSkip(cov *cover.Cover, L []graph.V, n int, b graph.V, S []int) graph.V {
	inL := make([]bool, n)
	for _, v := range L {
		inL[v] = true
	}
	for v := b; v < n; v++ {
		if !inL[v] {
			continue
		}
		bad := false
		for _, x := range S {
			if cov.InKernel(x, v) {
				bad = true
				break
			}
		}
		if !bad {
			return v
		}
	}
	return None
}

func buildFixture(t *testing.T, class gen.Class, n, r int, seed int64) (*graph.Graph, *cover.Cover, []graph.V) {
	t.Helper()
	g := gen.Generate(class, n, gen.Options{Seed: seed, Colors: 1, ColorProb: 0.4})
	cov := cover.Compute(g, r)
	cov.ComputeKernels(r)
	var L []graph.V
	for v := 0; v < g.N(); v++ {
		if g.HasColor(v, 0) {
			L = append(L, v)
		}
	}
	return g, cov, L
}

func TestSkipAgainstBruteForce(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.Grid, gen.RandomTree, gen.BoundedDegree, gen.Star} {
		g, cov, L := buildFixture(t, class, 300, 2, 17)
		for _, k := range []int{1, 2, 3} {
			p := New(g, cov, k, L)
			rng := rand.New(rand.NewSource(int64(k)))
			for q := 0; q < 500; q++ {
				b := rng.Intn(g.N())
				S := make([]int, 0, k)
				for len(S) < rng.Intn(k+1) {
					S = append(S, rng.Intn(cov.NumBags()))
				}
				got := p.Query(b, S)
				want := bruteSkip(cov, L, g.N(), b, S)
				if got != want {
					t.Fatalf("%s k=%d: SKIP(%d, %v) = %d, want %d", class, k, b, S, got, want)
				}
			}
		}
	}
}

// TestSkipCanonicalBags queries with the bag sets the enumeration engine
// actually uses: the canonical bags 𝒳(a) of random tuples.
func TestSkipCanonicalBags(t *testing.T) {
	g, cov, L := buildFixture(t, gen.KingGrid, 400, 2, 3)
	p := New(g, cov, 3, L)
	rng := rand.New(rand.NewSource(8))
	for q := 0; q < 400; q++ {
		S := []int{}
		for i := 0; i < 3; i++ {
			S = append(S, cov.Assign(rng.Intn(g.N())))
		}
		b := rng.Intn(g.N())
		if got, want := p.Query(b, S), bruteSkip(cov, L, g.N(), b, S); got != want {
			t.Fatalf("SKIP(%d, %v) = %d, want %d", b, S, got, want)
		}
	}
}

func TestSkipEmptySet(t *testing.T) {
	g, cov, L := buildFixture(t, gen.Cycle, 100, 2, 5)
	p := New(g, cov, 2, L)
	for b := 0; b < g.N(); b++ {
		want := None
		for _, v := range L {
			if v >= b {
				want = v
				break
			}
		}
		if got := p.Query(b, nil); got != want {
			t.Fatalf("SKIP(%d, ∅) = %d, want %d", b, got, want)
		}
	}
}

func TestSkipEmptyL(t *testing.T) {
	g := gen.Generate(gen.Path, 50, gen.Options{})
	cov := cover.Compute(g, 2)
	cov.ComputeKernels(2)
	p := New(g, cov, 2, nil)
	if got := p.Query(0, []int{0}); got != None {
		t.Fatalf("SKIP over empty L = %d, want None", got)
	}
}

func TestSkipDuplicateBagsInS(t *testing.T) {
	g, cov, L := buildFixture(t, gen.Grid, 200, 2, 9)
	p := New(g, cov, 3, L)
	x := cov.Assign(10)
	a := p.Query(0, []int{x})
	b := p.Query(0, []int{x, x, x})
	if a != b {
		t.Fatalf("duplicate bags changed the answer: %d vs %d", a, b)
	}
}

func TestSkipRejectsOversizedSet(t *testing.T) {
	g, cov, L := buildFixture(t, gen.Path, 60, 2, 1)
	p := New(g, cov, 1, L)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for |S| > k")
		}
	}()
	p.Query(0, []int{0, 1})
}

func TestSkipPointerTableIsSubquadratic(t *testing.T) {
	// Claim 5.10: Σ_b |SC(b)| = O(n·degree^k); verify the table does not
	// approach n² on a sparse class.
	g, cov, L := buildFixture(t, gen.Grid, 2500, 2, 2)
	p := New(g, cov, 2, L)
	if p.Size() > g.N()*cov.Degree()*cov.Degree()*2 {
		t.Fatalf("table size %d exceeds n·d² bound (n=%d, d=%d)",
			p.Size(), g.N(), cov.Degree())
	}
}
