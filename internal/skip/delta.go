// Delta overlays: answering SKIP queries for a *mutated* index without
// rebuilding the SC pointer tables.
//
// After a batch of edits the eligibility predicate behind SKIP,
//
//	elig(v, S) = v ∈ L′ and v ∉ ∪_{X∈S} K′_r(X),
//
// changes only at vertices whose ingredients changed: the starter-list
// diff L △ L′, the vertices whose kernel membership changed in any bag
// (cover.PatchInfo.KernelDelta), and every kernel member of a bag created
// by the patch. Call that sorted set the delta D. For v ∉ D the old and
// new predicates agree — for every bag of S: preexisting bags keep v's
// membership, and for bag ids created by the patch the base cover's
// InKernel binary-searches v's (old) kernel list and correctly reports
// false, which matches v ∉ K′ since all members of new-bag kernels are
// in D.
//
// A query therefore splits exactly:
//
//	SKIP′(b, S) = min( chase(b, S) skipping results in D,  first d ∈ D,
//	                   d ≥ b, with elig′(d, S) )
//
// The first candidate comes from the *old* pointer tables (Claim 5.9
// chases, each hop constant time, at most |D|+1 of them); the second from
// a linear scan of D cut off at the first candidate. Both sides are
// allocation-free, so the answering loop keeps its zero-allocation
// guarantee; the extra cost is O(|D|) in the worst case — the mutation
// regime of the Storing Theorem §3, not the enumeration regime — and the
// engine rebuilds the tables outright once D outgrows RebuildThreshold.
package skip

import (
	"sort"

	"repro/internal/cover"
	"repro/internal/graph"
)

// RebuildThreshold is the delta size (relative to n) beyond which chained
// overlays stop paying: callers should fall back to New. Kept here so the
// policy has one home.
func RebuildThreshold(n int) int {
	t := n / 16
	if t < 32 {
		t = 32
	}
	return t
}

// WithDelta returns skip pointers for the mutated index: the receiver's
// tables remain the base (and keep serving the receiver's version
// unchanged), while queries against the result are answered under the new
// cover newCov and new restriction list newL, exact for every (b, S).
//
// delta must contain every vertex whose eligibility ingredients changed,
// sorted ascending: the L-diff, KernelDelta of the cover patch, and the
// kernel members of bags the patch created. Chaining WithDelta on an
// already-overlaid Pointers accumulates: the base stays the original
// table and the deltas union (a vertex whose eligibility changed
// base→v1 or v1→v2 is in one of them).
func (p *Pointers) WithDelta(newCov *cover.Cover, newL []graph.V, delta []graph.V) *Pointers {
	out := &Pointers{
		cov: p.cov, k: p.k,
		sortedL:  p.sortedL,
		inL:      p.inL,
		nextGeqL: p.nextGeqL,
		table:    p.table,
		size:     p.size,
		newCov:   newCov,
	}
	n := len(p.inL)
	out.newInL = make([]bool, n)
	out.newSortedL = make([]graph.V, 0, len(newL))
	for _, v := range newL {
		if !out.newInL[v] {
			out.newInL[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if out.newInL[v] {
			out.newSortedL = append(out.newSortedL, v)
		}
	}
	if p.delta == nil {
		out.delta = make([]int32, len(delta))
		for i, v := range delta {
			out.delta[i] = int32(v)
		}
		return out
	}
	// Chained overlay: union the accumulated delta with the new one.
	out.delta = make([]int32, 0, len(p.delta)+len(delta))
	i, j := 0, 0
	for i < len(p.delta) || j < len(delta) {
		switch {
		case j == len(delta) || (i < len(p.delta) && p.delta[i] < int32(delta[j])):
			out.delta = append(out.delta, p.delta[i])
			i++
		case i == len(p.delta) || p.delta[i] > int32(delta[j]):
			out.delta = append(out.delta, int32(delta[j]))
			j++
		default:
			out.delta = append(out.delta, p.delta[i])
			i++
			j++
		}
	}
	return out
}

// DeltaLen returns the size of the accumulated delta (0 for a base table),
// the quantity callers compare against RebuildThreshold.
func (p *Pointers) DeltaLen() int { return len(p.delta) }

// inDelta reports v ∈ D by binary search.
//
//fod:hotpath
func (p *Pointers) inDelta(v graph.V) bool {
	d := p.delta
	i := sort.Search(len(d), func(i int) bool { return d[i] >= int32(v) })
	return i < len(d) && d[i] == int32(v)
}

//fod:hotpath
func (p *Pointers) inKernelsNew(v graph.V, S []int32) bool {
	for _, x := range S {
		if p.newCov.InKernel(int(x), v) {
			return true
		}
	}
	return false
}

// queryDelta answers SKIP′(b, S) under the overlay; see the package
// comment of this file for the exactness argument.
//
//fod:hotpath
func (p *Pointers) queryDelta(b graph.V, S []int32) graph.V {
	// Candidate 1: the base chase, filtered — any result inside D has
	// unknown new-eligibility, so hop past it; the first result outside D
	// is new-eligible by the agreement argument.
	v := p.resolve(b, S)
	for v != None && p.inDelta(v) {
		v = p.resolve(v+1, S)
	}
	// Candidate 2: the first new-eligible delta vertex in [b, v).
	d := p.delta
	i := sort.Search(len(d), func(i int) bool { return d[i] >= int32(b) })
	for ; i < len(d); i++ {
		w := graph.V(d[i])
		if v != None && w >= v {
			break
		}
		if p.newInL[w] && !p.inKernelsNew(w, S) {
			return w
		}
	}
	return v
}
