// Package skip implements the skip pointers of Lemma 5.8: after a
// pseudo-linear preprocessing over a neighborhood cover 𝒳 with r-kernels
// and a vertex list L, queries
//
//	SKIP(b, S) = min{ b′ ∈ L : b′ ≥ b and b′ ∉ ∪_{X∈S} K_r(X) }
//
// for any set S of at most k bags are answered in constant time.
//
// Following the paper, only the pointers for the inductively defined
// families SC(b) are materialized: SC(b) starts from the singletons {X}
// with b ∈ K_r(X) and is closed under S ↦ S ∪ {X} whenever |S| < k and
// SKIP(b, S) ∈ K_r(X). The pointers are computed for b from largest to
// smallest; an arbitrary query (b, S) is resolved by the constant-length
// pointer chase of Claim 5.9.
package skip

import (
	"fmt"
	"sort"

	"repro/internal/cover"
	"repro/internal/graph"
)

// MaxSetSize is the largest supported |S| (the k of Lemma 5.8). Queries of
// arity up to MaxSetSize+1 are enough for all shipped examples and
// benchmarks; raise the array size below to extend it.
const MaxSetSize = 4

// entry is one materialized pointer: the sorted bag set S (padded with -1)
// and SKIP(b, S) (-1 encodes Null).
type entry struct {
	bags [MaxSetSize]int32
	val  int32
}

// Pointers answers SKIP queries for one (cover, kernel radius, L) triple.
type Pointers struct {
	cov *cover.Cover
	k   int // maximum |S|

	sortedL  []graph.V
	inL      []bool
	nextGeqL []int32 // per vertex: min{x ∈ L : x ≥ v}, n entries; -1 = none

	// table[b] holds the pointers for all S ∈ SC(b). The families are
	// small (≤ δ(𝒳)^k), so lookups scan the slice — faster and leaner
	// than hashing the composite key.
	table [][]entry
	size  int

	// Delta overlay (nil on a freshly built table): when a mutation patched
	// the index, cov/inL/table above stay the *base* version and queries
	// are answered under newCov/newInL with the correction set delta; see
	// delta.go.
	newCov     *cover.Cover
	newInL     []bool
	newSortedL []graph.V
	delta      []int32 // sorted vertices whose eligibility may differ from base
}

// None is returned by Query when no element qualifies.
const None = graph.V(-1)

// New computes the skip pointers. The cover must have kernels computed
// (cov.ComputeKernels); k ≤ MaxSetSize bounds the query set size; L is the
// restriction list (any order, duplicates allowed).
func New(g *graph.Graph, cov *cover.Cover, k int, L []graph.V) *Pointers {
	if k < 1 || k > MaxSetSize {
		panic(fmt.Sprintf("skip: set size %d outside [1, %d]", k, MaxSetSize))
	}
	if cov.KernelP() < 0 {
		panic("skip: cover kernels not computed")
	}
	p := &Pointers{cov: cov, k: k, table: make([][]entry, g.N())}
	p.buildL(g.N(), L)

	// Downward sweep: for each b from large to small, generate SC(b)
	// breadth-first by set size and record SKIP(b, S) for each member.
	// Per-vertex entry lists are kept sorted so resolve can binary-search.
	var queue [][MaxSetSize]int32
	seen := map[[MaxSetSize]int32]struct{}{}
	for b := g.N() - 1; b >= 0; b-- {
		kernels := cov.KernelsOf(b)
		if len(kernels) == 0 {
			continue
		}
		queue = queue[:0]
		clear(seen)
		for _, x := range kernels {
			var s [MaxSetSize]int32
			s[0] = x
			for i := 1; i < MaxSetSize; i++ {
				s[i] = -1
			}
			queue = append(queue, s)
			seen[s] = struct{}{}
		}
		for head := 0; head < len(queue); head++ {
			s := queue[head]
			v := p.resolve(b, s[:setLen(s)])
			p.table[b] = append(p.table[b], entry{bags: s, val: int32(v)})
			p.size++
			if v == None {
				continue
			}
			if sl := setLen(s); sl < p.k {
				for _, y := range cov.KernelsOf(v) {
					ns, ok := setAdd(s, y)
					if !ok {
						continue
					}
					if _, dup := seen[ns]; dup {
						continue
					}
					seen[ns] = struct{}{}
					queue = append(queue, ns)
				}
			}
		}
		sort.Slice(p.table[b], func(i, j int) bool {
			return bagsLess(p.table[b][i].bags, p.table[b][j].bags)
		})
	}
	return p
}

func bagsLess(a, b [MaxSetSize]int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// lookup finds the stored SKIP(c, s), which must exist for s ∈ SC(c).
//
//fod:hotpath
func (p *Pointers) lookup(c int32, s [MaxSetSize]int32) (int32, bool) {
	es := p.table[c]
	i := sort.Search(len(es), func(i int) bool { return !bagsLess(es[i].bags, s) })
	if i < len(es) && es[i].bags == s {
		return es[i].val, true
	}
	return 0, false
}

func (p *Pointers) buildL(n int, L []graph.V) {
	p.inL = make([]bool, n)
	for _, v := range L {
		p.inL[v] = true
	}
	for v := 0; v < n; v++ {
		if p.inL[v] {
			p.sortedL = append(p.sortedL, v)
		}
	}
	p.nextGeqL = make([]int32, n)
	next := int32(-1)
	for v := n - 1; v >= 0; v-- {
		if p.inL[v] {
			next = int32(v)
		}
		p.nextGeqL[v] = next
	}
}

// L returns the sorted restriction list.
func (p *Pointers) L() []graph.V { return p.sortedL }

// Size returns the number of materialized pointers (the Σ_b |SC(b)| of
// Claim 5.10).
func (p *Pointers) Size() int { return p.size }

// Query returns SKIP(b, S) in constant time, or None. S may be in any
// order and must contain at most k bag indices. It is called per
// candidate inside the answering loop, so the sorted copy of S lives in a
// fixed-size stack array (insertion sort over ≤ MaxSetSize elements)
// rather than an allocated slice.
//
//fod:hotpath
func (p *Pointers) Query(b graph.V, S []int) graph.V {
	if len(S) > p.k {
		panic("skip: query set size exceeds the preprocessed k")
	}
	var bags [MaxSetSize]int32
	for n, x := range S {
		i := n
		for i > 0 && bags[i-1] > int32(x) {
			bags[i] = bags[i-1]
			i--
		}
		bags[i] = int32(x)
	}
	if p.delta != nil {
		return p.queryDelta(b, bags[:len(S)])
	}
	return p.resolve(b, bags[:len(S)])
}

// resolve implements Claim 5.9: it answers SKIP(b, S) using only pointers
// stored for vertices > b (during preprocessing) or any vertices (at query
// time, when the table is complete).
//
//fod:hotpath
func (p *Pointers) resolve(b graph.V, S []int32) graph.V {
	// Case 1: b itself qualifies.
	if b < len(p.inL) && p.inL[b] && !p.inKernels(b, S) {
		return b
	}
	// Case 2: hop to the next element of L strictly after b.
	if b+1 >= len(p.nextGeqL) {
		return None
	}
	c := p.nextGeqL[b+1]
	if c < 0 {
		return None
	}
	if !p.inKernels(int(c), S) {
		return int(c)
	}
	// c sits in some kernel of S; chase the stored pointers, growing S′
	// maximally (each growth step is justified by the SC closure rule).
	var sp [MaxSetSize]int32
	for i := range sp {
		sp[i] = -1
	}
	// Seed with one bag of S whose kernel contains c.
	seeded := false
	for _, x := range S {
		if p.cov.InKernel(int(x), int(c)) {
			sp[0] = x
			seeded = true
			break
		}
	}
	if !seeded {
		panic("skip: inKernels inconsistent")
	}
	for {
		v, ok := p.lookup(c, sp)
		if !ok {
			panic("skip: missing pointer in the SC table")
		}
		if v < 0 {
			return None
		}
		grown := false
		if setLen(sp) < len(S) {
			for _, y := range S {
				if setHas(sp, y) {
					continue
				}
				if p.cov.InKernel(int(y), int(v)) {
					sp, _ = setAdd(sp, y)
					grown = true
					break
				}
			}
		}
		if !grown {
			return int(v)
		}
	}
}

//fod:hotpath
func (p *Pointers) inKernels(v graph.V, S []int32) bool {
	for _, x := range S {
		if p.cov.InKernel(int(x), v) {
			return true
		}
	}
	return false
}

// setLen returns the number of used entries of a padded sorted set.
//
//fod:hotpath
func setLen(s [MaxSetSize]int32) int {
	n := 0
	for _, x := range s {
		if x >= 0 {
			n++
		}
	}
	return n
}

func setHas(s [MaxSetSize]int32, y int32) bool {
	for _, x := range s {
		if x == y {
			return true
		}
	}
	return false
}

// setAdd inserts y keeping the used prefix sorted; ok=false if full or
// already present.
func setAdd(s [MaxSetSize]int32, y int32) ([MaxSetSize]int32, bool) {
	n := setLen(s)
	if n == MaxSetSize || setHas(s, y) {
		return s, false
	}
	i := n
	for i > 0 && s[i-1] > y {
		s[i] = s[i-1]
		i--
	}
	s[i] = y
	return s, true
}
