package skip

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cover"
	"repro/internal/gen"
	"repro/internal/graph"
)

// mutateFixture applies a random edit batch to (g, cov, L) and returns the
// new graph, the patched cover, the new starter list, and the eligibility
// delta exactly as the engine's mutation path assembles it: the L-diff
// unioned with the cover patch's KernelDelta.
func mutateFixture(t *testing.T, rng *rand.Rand, g *graph.Graph, cov *cover.Cover, L []graph.V) (*graph.Graph, *cover.Cover, []graph.V, []graph.V, bool) {
	t.Helper()
	var edits []graph.Edit
	var srcs []graph.V
	seen := map[graph.V]bool{}
	for len(edits) < 1+rng.Intn(4) {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		op := graph.AddEdge
		if g.HasEdge(u, v) || rng.Intn(2) == 0 {
			op = graph.RemoveEdge
		}
		edits = append(edits, graph.Edit{Op: op, U: u, V: v})
		for _, w := range []graph.V{u, v} {
			if !seen[w] {
				seen[w] = true
				srcs = append(srcs, w)
			}
		}
	}
	// Plus a few color flips to change the starter list.
	for i := 0; i < rng.Intn(4); i++ {
		v := rng.Intn(g.N())
		op := graph.AddColor
		if g.HasColor(v, 0) {
			op = graph.RemoveColor
		}
		edits = append(edits, graph.Edit{Op: op, U: v, Color: 0})
	}
	sort.Ints(srcs)
	gNew, err := graph.Patch(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	covNew, info, ok := cov.Patch(g, gNew, srcs)
	if !ok {
		return nil, nil, nil, nil, false
	}
	var newL []graph.V
	for v := 0; v < gNew.N(); v++ {
		if gNew.HasColor(v, 0) {
			newL = append(newL, v)
		}
	}
	// Eligibility delta: L-diff ∪ KernelDelta.
	deltaSet := map[graph.V]bool{}
	inOld := make([]bool, g.N())
	for _, v := range L {
		inOld[v] = true
	}
	inNew := make([]bool, g.N())
	for _, v := range newL {
		inNew[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if inOld[v] != inNew[v] {
			deltaSet[v] = true
		}
	}
	for _, v := range info.KernelDelta {
		deltaSet[v] = true
	}
	delta := make([]graph.V, 0, len(deltaSet))
	for v := range deltaSet { //fod:sorted — sorted immediately below
		delta = append(delta, v)
	}
	sort.Ints(delta)
	return gNew, covNew, newL, delta, true
}

// TestDeltaAgainstBruteForce: an overlaid table answers every (b, S) under
// the new cover and list exactly like the definition — and exactly like a
// from-scratch rebuild on the mutated structures.
func TestDeltaAgainstBruteForce(t *testing.T) {
	for _, class := range []gen.Class{gen.Path, gen.Grid, gen.RandomTree, gen.BoundedDegree} {
		g, cov, L := buildFixture(t, class, 300, 2, 29)
		for _, k := range []int{1, 2, 3} {
			base := New(g, cov, k, L)
			rng := rand.New(rand.NewSource(int64(k) * 13))
			gNew, covNew, newL, delta, ok := mutateFixture(t, rng, g, cov, L)
			if !ok {
				continue
			}
			overlay := base.WithDelta(covNew, newL, delta)
			rebuilt := New(gNew, covNew, k, newL)
			for q := 0; q < 800; q++ {
				b := rng.Intn(g.N())
				S := make([]int, 0, k)
				for len(S) < rng.Intn(k+1) {
					S = append(S, rng.Intn(covNew.NumBags()))
				}
				want := bruteSkip(covNew, newL, g.N(), b, S)
				if got := overlay.Query(b, S); got != want {
					t.Fatalf("%s k=%d: overlay SKIP(%d, %v) = %d, want %d (delta size %d)",
						class, k, b, S, got, want, len(delta))
				}
				if got := rebuilt.Query(b, S); got != want {
					t.Fatalf("%s k=%d: rebuilt SKIP(%d, %v) = %d, want %d",
						class, k, b, S, got, want)
				}
			}
			// The base table still answers for the old version.
			for q := 0; q < 200; q++ {
				b := rng.Intn(g.N())
				S := []int{rng.Intn(cov.NumBags())}
				if got, want := base.Query(b, S), bruteSkip(cov, L, g.N(), b, S); got != want {
					t.Fatalf("%s k=%d: base SKIP(%d, %v) = %d, want %d after overlay",
						class, k, b, S, got, want)
				}
			}
		}
	}
}

// TestDeltaChained: overlay-on-overlay accumulates deltas and stays exact
// across several mutation generations.
func TestDeltaChained(t *testing.T) {
	g, cov, L := buildFixture(t, gen.Grid, 300, 2, 31)
	k := 2
	p := New(g, cov, k, L)
	rng := rand.New(rand.NewSource(57))
	for gen := 0; gen < 4; gen++ {
		var gNew *graph.Graph
		var covNew *cover.Cover
		var newL, delta []graph.V
		ok := false
		for attempt := 0; attempt < 10 && !ok; attempt++ {
			gNew, covNew, newL, delta, ok = mutateFixture(t, rng, g, cov, L)
		}
		if !ok {
			t.Fatalf("generation %d: cover patch refused 10 batches in a row", gen)
		}
		p = p.WithDelta(covNew, newL, delta)
		g, cov, L = gNew, covNew, newL
		for q := 0; q < 400; q++ {
			b := rng.Intn(g.N())
			S := make([]int, 0, k)
			for len(S) < rng.Intn(k+1) {
				S = append(S, rng.Intn(cov.NumBags()))
			}
			want := bruteSkip(cov, L, g.N(), b, S)
			if got := p.Query(b, S); got != want {
				t.Fatalf("generation %d: SKIP(%d, %v) = %d, want %d (delta %d)",
					gen, b, S, got, want, p.DeltaLen())
			}
		}
	}
	if p.DeltaLen() == 0 {
		t.Fatal("chained overlays accumulated no delta")
	}
}

func TestRebuildThreshold(t *testing.T) {
	if RebuildThreshold(16) != 32 {
		t.Fatalf("floor: got %d", RebuildThreshold(16))
	}
	if RebuildThreshold(16000) != 1000 {
		t.Fatalf("n/16: got %d", RebuildThreshold(16000))
	}
}
