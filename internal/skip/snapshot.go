package skip

import (
	"fmt"
	"time"

	"repro/internal/cover"
	"repro/internal/obs"
)

// Parts is the flat serialized form of the skip pointers: the Lemma 5.8
// SC-table in CSR layout over vertices. The restriction list L is NOT
// included — it is always the owning component's starter list, which the
// engine snapshot already carries; FromParts takes it as input and
// rebuilds the derived inL/nextGeqL arrays from it.
//
// Rows are K+1 words wide, not MaxSetSize+1: a set never holds more than
// the preprocessed K bags, so the remaining words are always the -1
// padding and serializing them would only bloat the file (for k=1 it
// would more than double it).
type Parts struct {
	K        int
	TableOff []int32 // len n+1, prefix sums of per-vertex entry counts
	TableRow []int32 // K+1 words per entry: bags[K], val
}

// The k=1 fast path of FromParts spells out all MaxSetSize padding words;
// this trips a compile error if the constant ever changes.
const _ = uint(MaxSetSize-4) + uint(4-MaxSetSize)

// Parts returns the serialized form of the pointers.
func (p *Pointers) Parts() Parts {
	out := Parts{K: p.k, TableOff: make([]int32, len(p.table)+1)}
	total := 0
	for i, es := range p.table {
		total += len(es)
		out.TableOff[i+1] = int32(total)
	}
	out.TableRow = make([]int32, 0, total*(p.k+1))
	for _, es := range p.table {
		for _, e := range es {
			out.TableRow = append(out.TableRow, e.bags[:p.k]...)
			out.TableRow = append(out.TableRow, e.val)
		}
	}
	return out
}

// FromParts reconstructs the pointers over cov for the restriction list L
// (the component's starter list, sorted ascending). It validates every
// index the constant-time resolve path chases — bag ids against the
// cover, values against the vertex universe, per-vertex sort order for
// the binary search of lookup — so corrupted snapshots error instead of
// panicking mid-query.
func FromParts(cov *cover.Cover, L []int, parts Parts) (*Pointers, error) {
	return FromPartsObs(cov, L, parts, nil)
}

// FromPartsObs is FromParts with restore instrumentation through reg (nil
// reg records nothing): wall time into the "skip.restore_ns" histogram,
// restored entry counts into "skip.restore_pointers", and rejected
// snapshots into "skip.restore_errors".
func FromPartsObs(cov *cover.Cover, L []int, parts Parts, reg *obs.Registry) (*Pointers, error) {
	start := time.Now()
	p, err := fromParts(cov, L, parts)
	reg.Histogram("skip.restore_ns").Observe(time.Since(start))
	if err != nil {
		reg.Counter("skip.restore_errors").Inc()
		return nil, err
	}
	reg.Counter("skip.restore_pointers").Add(int64(p.Size()))
	return p, nil
}

func fromParts(cov *cover.Cover, L []int, parts Parts) (*Pointers, error) {
	if parts.K < 1 || parts.K > MaxSetSize {
		return nil, fmt.Errorf("skip: snapshot set size %d outside [1, %d]", parts.K, MaxSetSize)
	}
	if cov.KernelP() < 0 {
		return nil, fmt.Errorf("skip: restored cover has no kernels")
	}
	n := len(parts.TableOff) - 1
	if n < 0 || parts.TableOff[0] != 0 {
		return nil, fmt.Errorf("skip: snapshot table offsets malformed")
	}
	nbags := cov.NumBags()
	p := &Pointers{cov: cov, k: parts.K, table: make([][]entry, n)}
	for _, v := range L {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("skip: restriction-list vertex %d outside [0,%d)", v, n)
		}
	}
	p.buildL(n, L)
	width := parts.K + 1
	if int(parts.TableOff[n])*width != len(parts.TableRow) {
		return nil, fmt.Errorf("skip: table holds %d words, offsets claim %d entries", len(parts.TableRow), parts.TableOff[n])
	}
	// All entries live in one backing array; table rows are subslices.
	// The per-vertex allocation this replaces dominated restore time.
	flat := make([]entry, int(parts.TableOff[n]))
	for b := 0; b < n; b++ {
		lo, hi := parts.TableOff[b], parts.TableOff[b+1]
		if lo > hi {
			return nil, fmt.Errorf("skip: table offsets of vertex %d out of order", b)
		}
		cnt := int(hi - lo)
		if cnt == 0 {
			continue
		}
		es := flat[lo:hi:hi]
		if width == 2 {
			// Specialized k=1 path: each row is (bag, val). Same checks as
			// the general loop below — bag in range, val in range, strictly
			// increasing bag order (bagsLess over singleton sets).
			rows := parts.TableRow[int(lo)*2 : int(hi)*2]
			for i := 0; i < cnt; i++ {
				bag, val := rows[2*i], rows[2*i+1]
				if bag < 0 || int(bag) >= nbags {
					return nil, fmt.Errorf("skip: entry of vertex %d names bag %d of %d", b, bag, nbags)
				}
				if val < -1 || int(val) >= n {
					return nil, fmt.Errorf("skip: entry of vertex %d points at %d outside [-1,%d)", b, val, n)
				}
				if i > 0 && rows[2*i-2] >= bag {
					return nil, fmt.Errorf("skip: entries of vertex %d not sorted", b)
				}
				e := &es[i]
				e.bags[0], e.bags[1], e.bags[2], e.bags[3] = bag, -1, -1, -1
				e.val = val
			}
			p.table[b] = es
			p.size += cnt
			continue
		}
		for i := 0; i < cnt; i++ {
			row := parts.TableRow[(int(lo)+i)*width : (int(lo)+i+1)*width]
			e := &es[i]
			// Only the K serialized words carry data; the padding up to
			// MaxSetSize is synthesized here, never read from input.
			used := 0
			for j := 0; j < parts.K; j++ {
				x := row[j]
				if x < -1 {
					return nil, fmt.Errorf("skip: entry of vertex %d has padding word %d (want -1)", b, x)
				}
				if x >= 0 {
					if int(x) >= nbags {
						return nil, fmt.Errorf("skip: entry of vertex %d names bag %d of %d", b, x, nbags)
					}
					if j > used {
						return nil, fmt.Errorf("skip: entry of vertex %d has a gap in its bag set", b)
					}
					if j > 0 && row[j-1] >= x {
						return nil, fmt.Errorf("skip: entry of vertex %d has an unsorted bag set", b)
					}
					used = j + 1
				}
				e.bags[j] = x
			}
			for j := parts.K; j < MaxSetSize; j++ {
				e.bags[j] = -1
			}
			if used == 0 {
				return nil, fmt.Errorf("skip: entry of vertex %d has set size %d outside [1,%d]", b, used, p.k)
			}
			if e.val = row[parts.K]; int(e.val) >= n || e.val < -1 {
				return nil, fmt.Errorf("skip: entry of vertex %d points at %d outside [-1,%d)", b, e.val, n)
			}
			if i > 0 && !bagsLess(es[i-1].bags, e.bags) {
				return nil, fmt.Errorf("skip: entries of vertex %d not sorted", b)
			}
		}
		p.table[b] = es
		p.size += cnt
	}
	return p, nil
}
