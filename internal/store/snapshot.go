package store

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Parts is the flat serialized form of a Store: the trie parameters plus
// the register file split into its two columns (Delta and R), ready to be
// laid out as fixed-width snapshot sections. The slices alias the store's
// register file — treat them as read-only and do not mutate the store
// while a snapshot write is in progress.
type Parts struct {
	N    int // universe size
	K    int // arity
	D    int // trie degree ⌈n^ε⌉
	H    int // digits per coordinate
	Size int // |Dom(f)|

	Delta []int8  // cells[1:free].Delta
	R     []int64 // cells[1:free].R
}

// Parts returns the serialized form of the store.
func (s *Store) Parts() Parts {
	p := Parts{N: s.n, K: s.k, D: s.d, H: s.h, Size: s.size,
		Delta: make([]int8, s.free-1), R: make([]int64, s.free-1)}
	for i := int64(1); i < s.free; i++ {
		p.Delta[i-1] = s.cells[i].Delta
		p.R[i-1] = s.cells[i].R
	}
	return p
}

// FromParts reconstructs a Store from its serialized form. It validates
// the trie invariants that the constant-time read path relies on (block
// granularity, child pointers landing on block starts inside the register
// file) so that a corrupted snapshot yields an error instead of an
// out-of-range panic in Access.
func FromParts(p Parts) (*Store, error) {
	return FromPartsObs(p, nil)
}

// FromPartsObs is FromParts with restore instrumentation through reg (nil
// reg records nothing): wall time — dominated by the block-pointer
// validation walk — into the "store.restore_ns" histogram, restored
// register counts into "store.restore_registers", and rejected snapshots
// into "store.restore_errors".
func FromPartsObs(p Parts, reg *obs.Registry) (*Store, error) {
	start := time.Now()
	s, err := fromParts(p)
	reg.Histogram("store.restore_ns").Observe(time.Since(start))
	if err != nil {
		reg.Counter("store.restore_errors").Inc()
		return nil, err
	}
	reg.Counter("store.restore_registers").Add(int64(len(p.Delta)))
	return s, nil
}

func fromParts(p Parts) (*Store, error) {
	if p.N < 1 || p.K < 1 || p.D < 2 || p.H < 1 {
		return nil, fmt.Errorf("store: invalid snapshot parameters n=%d k=%d d=%d h=%d", p.N, p.K, p.D, p.H)
	}
	if len(p.Delta) != len(p.R) {
		return nil, fmt.Errorf("store: snapshot column lengths differ: %d deltas, %d registers", len(p.Delta), len(p.R))
	}
	kh := p.K * p.H
	if kh > 1024 {
		return nil, fmt.Errorf("store: snapshot depth k·h = %d implausibly large", kh)
	}
	block := p.D + 1
	if len(p.Delta) < block || len(p.Delta)%block != 0 {
		return nil, fmt.Errorf("store: %d registers is not a positive multiple of the block size %d", len(p.Delta), block)
	}
	s := &Store{
		n: p.N, k: p.K, d: p.D, h: p.H, kh: kh,
		size: p.Size,
		dig1: make([]int, kh),
		dig2: make([]int, kh),
	}
	s.cells = make([]Cell, 1+len(p.Delta))
	for i := range p.Delta {
		s.cells[1+i] = Cell{Delta: p.Delta[i], R: p.R[i]}
	}
	s.free = int64(len(s.cells))
	if err := s.validateBlocks(); err != nil {
		return nil, err
	}
	return s, nil
}

// validateBlocks walks the trie from the root and checks every child
// pointer: Delta = 1 cells above the leaf level must point at the start
// of a block inside the register file, and the walk must respect the trie
// depth. Unreachable garbage blocks are tolerated (reads never visit
// them); dangling pointers are not.
func (s *Store) validateBlocks() error {
	type frame struct {
		l     int64
		depth int
	}
	stack := []frame{{1, 0}}
	seen := map[int64]bool{1: true}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := 0; c < s.d; c++ {
			cell := s.cells[fr.l+int64(c)]
			if cell.Delta != 1 {
				continue
			}
			if fr.depth == s.kh-1 {
				continue // leaf level: R holds the stored value
			}
			child := cell.R
			if child < 1 || child+int64(s.d) >= s.free || (child-1)%int64(s.d+1) != 0 {
				return fmt.Errorf("store: child pointer %d at register %d is not a valid block start", child, fr.l+int64(c))
			}
			if seen[child] {
				return fmt.Errorf("store: block %d reachable twice (cycle or shared subtree)", child)
			}
			seen[child] = true
			if fr.depth+1 >= s.kh {
				return fmt.Errorf("store: trie deeper than k·h = %d", s.kh)
			}
			stack = append(stack, frame{child, fr.depth + 1})
		}
	}
	return nil
}
