package store

// Clone returns an independent copy of the store: same contents, separate
// register file and scratch, so mutations of either side are invisible to
// the other. This is the copy-on-write primitive of the mutation path —
// a patched index clones an already-materialized Storing-Theorem structure
// and then applies the O(n^ε) Set/Delete deltas of Theorem 3.1, instead of
// re-inserting all |Dom(f)| pairs.
func (s *Store) Clone() *Store {
	c := &Store{
		n: s.n, k: s.k, d: s.d, h: s.h, kh: s.kh,
		free: s.free, size: s.size,
		dig1: make([]int, s.kh),
		dig2: make([]int, s.kh),
	}
	c.cells = make([]Cell, len(s.cells), cap(s.cells))
	copy(c.cells, s.cells)
	return c
}
