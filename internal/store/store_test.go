package store

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refModel is a trivially correct implementation of the same interface,
// used as the oracle for property tests.
type refModel struct {
	n, k int
	m    map[int64]int64
}

func newRef(n, k int) *refModel { return &refModel{n: n, k: k, m: map[int64]int64{}} }

func (r *refModel) set(key, v int64) { r.m[key] = v }
func (r *refModel) del(key int64)    { delete(r.m, key) }
func (r *refModel) get(key int64) (int64, bool) {
	v, ok := r.m[key]
	return v, ok
}

func (r *refModel) succ(key int64) (int64, bool) { // min{x ∈ Dom : x > key}
	best := int64(-1)
	for k := range r.m {
		if k > key && (best == -1 || k < best) {
			best = k
		}
	}
	return best, best != -1
}

func TestStoreBasic(t *testing.T) {
	s := New(100, 1, 0.5)
	if s.Len() != 0 {
		t.Fatalf("empty store Len = %d", s.Len())
	}
	if _, _, ok := s.Min(); ok {
		t.Fatal("empty store has a Min")
	}
	s.Set([]int{42}, 7)
	if v, ok := s.Get([]int{42}); !ok || v != 7 {
		t.Fatalf("Get(42) = %d,%v want 7,true", v, ok)
	}
	if _, ok := s.Get([]int{41}); ok {
		t.Fatal("Get(41) should miss")
	}
	key, v, ok := s.Min()
	if !ok || key[0] != 42 || v != 7 {
		t.Fatalf("Min = %v,%d,%v", key, v, ok)
	}
	s.Set([]int{42}, 9)
	if v, _ := s.Get([]int{42}); v != 9 {
		t.Fatalf("update failed: got %d", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after update = %d", s.Len())
	}
	s.Delete([]int{42})
	if s.Len() != 0 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
	if _, ok := s.Get([]int{42}); ok {
		t.Fatal("Get after delete should miss")
	}
}

func TestStoreDeleteMissingIsNoop(t *testing.T) {
	s := New(50, 2, 0.4)
	s.Set([]int{3, 4}, 1)
	before := s.Registers()
	s.Delete([]int{3, 5})
	if s.Len() != 1 || s.Registers() != before {
		t.Fatal("deleting a missing key changed the store")
	}
}

func TestStoreLookupSuccessor(t *testing.T) {
	s := New(1000, 1, 0.34)
	for _, x := range []int{10, 20, 30, 500, 999} {
		s.Set([]int{x}, int64(x))
	}
	cases := []struct {
		q    int
		succ int
		has  bool
	}{
		{0, 10, true}, {9, 10, true}, {11, 20, true}, {25, 30, true},
		{31, 500, true}, {500, 0, false} /* in dom */, {501, 999, true},
		{999, 0, false}, /* in dom */
	}
	for _, c := range cases {
		v, found, succ, ok := s.Lookup([]int{c.q})
		if found {
			if v != int64(c.q) {
				t.Errorf("Lookup(%d) value = %d", c.q, v)
			}
			continue
		}
		if !c.has {
			t.Errorf("Lookup(%d): unexpected dom-membership state", c.q)
		}
		if !ok || succ[0] != c.succ {
			t.Errorf("Lookup(%d) succ = %v,%v want %d", c.q, succ, ok, c.succ)
		}
	}
	if _, found, _, ok := s.Lookup([]int{999}); !found && ok {
		t.Error("999 should be in the domain")
	}
	s.Delete([]int{999})
	if _, found, _, ok := s.Lookup([]int{999}); found || ok {
		t.Error("Lookup past the maximum should report no successor")
	}
}

func TestStoreNextGeqGt(t *testing.T) {
	s := New(64, 2, 0.34)
	s.Set([]int{1, 5}, 15)
	s.Set([]int{2, 0}, 20)
	s.Set([]int{2, 63}, 263)
	if k, v, ok := s.NextGeq([]int{1, 5}); !ok || k[0] != 1 || k[1] != 5 || v != 15 {
		t.Fatalf("NextGeq in-domain = %v,%d,%v", k, v, ok)
	}
	if k, _, ok := s.NextGt([]int{1, 5}); !ok || k[0] != 2 || k[1] != 0 {
		t.Fatalf("NextGt = %v,%v", k, ok)
	}
	if k, _, ok := s.NextGeq([]int{2, 1}); !ok || k[0] != 2 || k[1] != 63 {
		t.Fatalf("NextGeq(2,1) = %v,%v", k, ok)
	}
	if _, _, ok := s.NextGt([]int{2, 63}); ok {
		t.Fatal("NextGt past maximum should fail")
	}
	if _, _, ok := s.NextGt([]int{63, 63}); ok {
		t.Fatal("NextGt at key-space maximum should fail")
	}
}

// TestStoreAgainstModel drives random Set/Delete/Lookup traffic and checks
// every observable against the reference model.
func TestStoreAgainstModel(t *testing.T) {
	for _, cfg := range []struct {
		n, k  int
		eps   float64
		steps int
	}{
		{27, 1, 1.0 / 3.0, 2000},
		{100, 1, 0.5, 2000},
		{30, 2, 0.25, 3000},
		{12, 3, 0.4, 3000},
		{1000, 2, 0.2, 1500},
		{7, 4, 0.5, 2000},
	} {
		s := New(cfg.n, cfg.k, cfg.eps)
		ref := newRef(cfg.n, cfg.k)
		rng := rand.New(rand.NewSource(int64(cfg.n*31 + cfg.k)))
		tuple := func() []int {
			a := make([]int, cfg.k)
			for i := range a {
				a[i] = rng.Intn(cfg.n)
			}
			return a
		}
		for step := 0; step < cfg.steps; step++ {
			a := tuple()
			key := s.EncodeKey(a)
			switch rng.Intn(4) {
			case 0, 1: // set
				v := int64(rng.Intn(1 << 20))
				s.Set(a, v)
				ref.set(key, v)
			case 2: // delete
				s.Delete(a)
				ref.del(key)
			case 3: // nothing; just probe below
			}
			// Probe a random tuple.
			q := tuple()
			qk := s.EncodeKey(q)
			wantV, wantIn := ref.get(qk)
			v, found, succ, ok := s.Lookup(q)
			if found != wantIn {
				t.Fatalf("n=%d k=%d step %d: Lookup(%v) found=%v want %v",
					cfg.n, cfg.k, step, q, found, wantIn)
			}
			if found && v != wantV {
				t.Fatalf("n=%d k=%d step %d: Lookup(%v) = %d want %d",
					cfg.n, cfg.k, step, q, v, wantV)
			}
			if !found {
				wantSucc, wantHas := ref.succ(qk)
				if ok != wantHas {
					t.Fatalf("n=%d k=%d step %d: Lookup(%v) succ ok=%v want %v (dom size %d)",
						cfg.n, cfg.k, step, q, ok, wantHas, len(ref.m))
				}
				if ok && s.EncodeKey(succ) != wantSucc {
					t.Fatalf("n=%d k=%d step %d: Lookup(%v) succ=%v (key %d) want key %d",
						cfg.n, cfg.k, step, q, succ, s.EncodeKey(succ), wantSucc)
				}
			}
			if s.Len() != len(ref.m) {
				t.Fatalf("n=%d k=%d step %d: Len=%d want %d", cfg.n, cfg.k, step, s.Len(), len(ref.m))
			}
		}
	}
}

// TestStoreEnumerationOrder checks that iterating with NextGt visits the
// domain in exactly increasing key order.
func TestStoreEnumerationOrder(t *testing.T) {
	s := New(500, 2, 0.3)
	ref := newRef(500, 2)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 800; i++ {
		a := []int{rng.Intn(500), rng.Intn(500)}
		s.Set(a, 1)
		ref.set(s.EncodeKey(a), 1)
	}
	var want []int64
	for k := range ref.m {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	var got []int64
	cur, _, ok := s.Min()
	for ok {
		got = append(got, s.EncodeKey(cur))
		cur, _, ok = s.NextGt(cur)
	}
	if len(got) != len(want) {
		t.Fatalf("enumerated %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestStoreSpaceBound checks the Theorem 3.1 space invariant
// registers ≤ c·|Dom|·n^ε at every step of a grow-then-shrink workload,
// and that space returns to the empty footprint after removing everything.
func TestStoreSpaceBound(t *testing.T) {
	n, k, eps := 4096, 2, 0.25
	s := New(n, k, eps)
	base := s.Registers()
	rng := rand.New(rand.NewSource(5))
	var keys [][]int
	for i := 0; i < 3000; i++ {
		a := []int{rng.Intn(n), rng.Intn(n)}
		s.Set(a, 1)
		keys = append(keys, a)
		// Per-element footprint: at most kh blocks of d+1 registers each.
		bound := base + s.Len()*s.Depth()*(s.Degree()+1)
		if s.Registers() > bound {
			t.Fatalf("space %d exceeds bound %d at size %d", s.Registers(), bound, s.Len())
		}
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, a := range keys {
		s.Delete(a)
		bound := base + (s.Len()+1)*s.Depth()*(s.Degree()+1)
		if s.Registers() > bound {
			t.Fatalf("space %d exceeds bound %d at size %d after deletes", s.Registers(), bound, s.Len())
		}
	}
	if s.Len() != 0 {
		t.Fatalf("store not empty after deleting all keys: %d", s.Len())
	}
	if s.Registers() != base {
		t.Fatalf("space after emptying = %d, want %d", s.Registers(), base)
	}
}

// TestFigure1Layout reproduces Figure 1 of the paper: n=27, ε=1/3 (d=3,
// h=3), f = identity on {2, 4, 5, 19, 24, 25}. It checks every register
// property the figure's caption states in an allocation-independent way.
func TestFigure1Layout(t *testing.T) {
	s := New(27, 1, 1.0/3.0)
	if s.Degree() != 3 || s.Depth() != 3 {
		t.Fatalf("d=%d h·k=%d, want 3 and 3", s.Degree(), s.Depth())
	}
	dom := []int{2, 4, 5, 19, 24, 25}
	for _, x := range dom {
		s.Set([]int{x}, int64(x))
	}
	cells := s.Cells()

	// "R_1 is the first register representing the root ... its content is
	// (1, R') where R' is the first register of the root's first child."
	if cells[1].Delta != 1 {
		t.Fatalf("R_1 = %+v, want a child pointer", cells[1])
	}
	child0 := cells[1].R
	// "...the last register representing that child contains (-1, 1)."
	last := cells[child0+int64(s.Degree())]
	if last.Delta != -1 || last.R != 1 {
		t.Fatalf("backpointer of first child = %+v, want (-1, 1)", last)
	}
	// "The second register representing the root is R_2 whose content is
	// (0, 19) because the second child of the root is a leaf and 19 is the
	// smallest element of the domain whose decomposition starts with 2."
	if cells[2].Delta != 0 || cells[2].R != 19 {
		t.Fatalf("R_2 = %+v, want (0, 19)", cells[2])
	}
	// "R_19-like register: the third register encoding the second child of
	// the first child of the root represents 012 = 5 and contains (1, f(5))."
	child01 := cells[child0+1].R // node "01"
	if cells[child0+1].Delta != 1 {
		t.Fatalf("node 01 pointer = %+v", cells[child0+1])
	}
	leaf5 := cells[child01+2] // digit 2 → string 012 → 5
	if leaf5.Delta != 1 || leaf5.R != 5 {
		t.Fatalf("leaf 012 = %+v, want (1, 5)", leaf5)
	}

	// Semantics over the whole universe.
	for q := 0; q < 27; q++ {
		v, found, succ, ok := s.Lookup([]int{q})
		inDom := false
		for _, x := range dom {
			if x == q {
				inDom = true
			}
		}
		if found != inDom {
			t.Fatalf("Lookup(%d) found=%v", q, found)
		}
		if found && v != int64(q) {
			t.Fatalf("Lookup(%d) = %d", q, v)
		}
		if !found {
			wantSucc, has := -1, false
			for _, x := range dom {
				if x > q && (!has || x < wantSucc) {
					wantSucc, has = x, true
				}
			}
			if ok != has || (ok && succ[0] != wantSucc) {
				t.Fatalf("Lookup(%d) succ=%v,%v want %d,%v", q, succ, ok, wantSucc, has)
			}
		}
	}

	// The removal example of Section 7.3: removing 19 relocates the freed
	// block and rewrites the stale (0, 19) pointers to (0, 24).
	regsBefore := s.Registers()
	s.Delete([]int{19})
	if s.Registers() >= regsBefore {
		t.Fatalf("removal of 19 did not shrink the register file: %d -> %d",
			regsBefore, s.Registers())
	}
	if cells := s.Cells(); cells[2].Delta != 0 || cells[2].R != 24 {
		t.Fatalf("after removing 19, R_2 = %+v, want (0, 24)", cells[2])
	}
	if _, found, succ, ok := s.Lookup([]int{6}); found || !ok || succ[0] != 24 {
		t.Fatalf("Lookup(6) after removal = %v,%v", succ, ok)
	}
}

// TestStoreQuickEncodeDecode is a testing/quick property: DecodeKey is the
// inverse of EncodeKey and both preserve order.
func TestStoreQuickEncodeDecode(t *testing.T) {
	s := New(97, 3, 0.3)
	f := func(a0, a1, a2, b0, b1, b2 uint8) bool {
		a := []int{int(a0) % 97, int(a1) % 97, int(a2) % 97}
		b := []int{int(b0) % 97, int(b1) % 97, int(b2) % 97}
		ka, kb := s.EncodeKey(a), s.EncodeKey(b)
		da := s.DecodeKey(ka)
		for i := range a {
			if da[i] != a[i] {
				return false
			}
		}
		return lexLess(a, b) == (ka < kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestStoreQuickSuccessor is a testing/quick property: for a random small
// domain the lookup successor always matches the sorted-slice oracle.
func TestStoreQuickSuccessor(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		const n = 512
		s := New(n, 1, 0.34)
		ref := map[int]bool{}
		for _, r := range raw {
			x := int(r) % n
			s.Set([]int{x}, int64(x))
			ref[x] = true
		}
		q := int(probe) % n
		_, found, succ, ok := s.Lookup([]int{q})
		if found != ref[q] {
			return false
		}
		if found {
			return true
		}
		want, has := -1, false
		for x := range ref {
			if x > q && (!has || x < want) {
				want, has = x, true
			}
		}
		return ok == has && (!ok || succ[0] == want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreParameterValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(0, 1, 0.5) },
		func() { New(10, 0, 0.5) },
		func() { New(10, 1, 0) },
		func() { New(1<<40, 2, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid parameters")
				}
			}()
			bad()
		}()
	}
}

func TestStoreTinyUniverse(t *testing.T) {
	s := New(2, 1, 0.9)
	s.Set([]int{0}, 10)
	s.Set([]int{1}, 11)
	if v, ok := s.Get([]int{1}); !ok || v != 11 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	s.Delete([]int{0})
	if k, v, ok := s.Min(); !ok || k[0] != 1 || v != 11 {
		t.Fatalf("Min = %v,%d,%v", k, v, ok)
	}
	s.Delete([]int{1})
	if _, _, ok := s.Min(); ok {
		t.Fatal("store should be empty")
	}
}
