// Package store implements the Storing Theorem (Theorem 3.1) of the paper:
// a data structure holding a k-ary partial function f with domain ⊆ [n]^k
// that supports
//
//   - initialization in O(|Dom(f)|·n^ε),
//   - insertion and removal of a pair (ā, b) in O(n^ε),
//   - constant-time lookup which, for ā ∉ Dom(f), additionally returns the
//     successor min{x̄ ∈ Dom(f) : x̄ > ā},
//
// using O(|Dom(f)|·n^ε) registers at any point in time.
//
// The implementation follows Appendix 7 of the paper at the register level:
// the trie T(f) of depth k·h and degree d (d = ⌈n^ε⌉, h minimal with
// d^h ≥ n) is laid out as blocks of d+1 consecutive registers, each holding
// a pair (δ, r) with δ ∈ {−1, 0, 1}: child pointers (1, R′), leaf values
// (1, f(ā)) at the bottom level, successor pointers (0, b̄) for absent
// subtrees, and a parent backpointer (−1, R) in the last register of each
// block. Register 0 plays the role of the paper's R_0 (next free register).
// Removal compacts storage by moving the last block into the hole, exactly
// as the paper's Cut procedure.
//
// The paper obtains predecessors from a dual structure on the reversed
// order; we instead compute predecessors by a single O(d·k·h) downward walk
// in the primary structure. Predecessors are only needed inside updates, so
// this keeps the update bound O(n^ε) without doubling the space.
package store

import (
	"fmt"
	"math"
)

// Cell is one register: a pair (Delta, R) as in Figure 1 of the paper.
// Delta = 1: R is a child block start, or the stored value at the bottom
// level. Delta = 0: the subtree is absent and R is the encoded successor
// key (or -1 for Null). Delta = -1: R is the register in the parent block
// pointing to this block.
type Cell struct {
	Delta int8
	R     int64
}

// Store is the Storing-Theorem structure for one k-ary partial function.
// It is not safe for concurrent mutation; once built, the read operations
// (Get, Lookup, NextGeq, NextGt, Min) are safe for concurrent use.
type Store struct {
	n  int // universe size: coordinates range over [0, n)
	k  int // arity
	d  int // trie degree, ⌈n^ε⌉ (at least 2)
	h  int // digits per coordinate, minimal with d^h ≥ n
	kh int // total depth

	cells []Cell // register file; index 0 unused (R_0 is nextFree)
	free  int64  // R_0: next unused register
	size  int    // |Dom(f)|

	// scratch buffers (avoid allocation on the hot paths)
	dig1, dig2 []int
}

// New returns an empty store for k-ary functions over [0,n)^k with trie
// parameter ε. It panics if n^k does not fit in an int64 key (the RAM-model
// assumption of the paper: tuples fit in O(1) registers).
func New(n, k int, epsilon float64) *Store {
	if n < 1 || k < 1 {
		panic(fmt.Sprintf("store: invalid n=%d k=%d", n, k))
	}
	if epsilon <= 0 {
		panic("store: epsilon must be positive")
	}
	if float64(k)*math.Log2(float64(n)) >= 62 {
		panic(fmt.Sprintf("store: key space n^k too large (n=%d, k=%d)", n, k))
	}
	d := int(math.Ceil(math.Pow(float64(n), epsilon)))
	if d < 2 {
		d = 2
	}
	if d > n {
		d = n
		if d < 2 {
			d = 2
		}
	}
	h := 1
	for p := d; p < n; p *= d {
		h++
	}
	s := &Store{
		n: n, k: k, d: d, h: h, kh: k * h,
		dig1: make([]int, k*h),
		dig2: make([]int, k*h),
	}
	s.init()
	return s
}

func (s *Store) init() {
	// Root block occupies registers 1..d+1 (paper's Init).
	s.cells = make([]Cell, 1, 1+(s.d+1)*4)
	for j := 0; j < s.d; j++ {
		s.cells = append(s.cells, Cell{0, nullKey})
	}
	s.cells = append(s.cells, Cell{-1, 0})
	s.free = int64(len(s.cells))
	s.size = 0
}

const nullKey = int64(-1)

// N returns the universe size n.
func (s *Store) N() int { return s.n }

// K returns the arity k.
func (s *Store) K() int { return s.k }

// Degree returns the trie degree d = ⌈n^ε⌉.
func (s *Store) Degree() int { return s.d }

// Depth returns the trie depth k·h.
func (s *Store) Depth() int { return s.kh }

// Len returns |Dom(f)|.
func (s *Store) Len() int { return s.size }

// Registers returns the number of registers currently in use, the space
// measure of Theorem 3.1.
func (s *Store) Registers() int { return int(s.free) }

// Cells exposes the raw register file (index 0 unused). It is used by the
// Figure-1 reproduction test and by space accounting; callers must not
// modify it.
func (s *Store) Cells() []Cell { return s.cells[:s.free] }

// EncodeKey packs a tuple into its integer key Σ a_i·n^{k−1−i}. Keys order
// exactly as tuples do lexicographically.
func (s *Store) EncodeKey(a []int) int64 {
	if len(a) != s.k {
		panic(fmt.Sprintf("store: tuple arity %d, want %d", len(a), s.k))
	}
	key := int64(0)
	for _, x := range a {
		if x < 0 || x >= s.n {
			panic(fmt.Sprintf("store: coordinate %d out of [0,%d)", x, s.n))
		}
		key = key*int64(s.n) + int64(x)
	}
	return key
}

// DecodeKey unpacks an integer key into a tuple.
func (s *Store) DecodeKey(key int64) []int {
	a := make([]int, s.k)
	for i := s.k - 1; i >= 0; i-- {
		a[i] = int(key % int64(s.n))
		key /= int64(s.n)
	}
	return a
}

// decompose writes the base-d digit string of the tuple with integer key
// `key` into out (coordinate-wise, most significant digit first), the
// Decomposition procedure of Algorithm 1.
func (s *Store) decompose(key int64, out []int) {
	a := key
	// Extract coordinates (least significant first), then digits.
	for i := s.k - 1; i >= 0; i-- {
		x := int(a % int64(s.n))
		a /= int64(s.n)
		base := i * s.h
		for j := s.h - 1; j >= 0; j-- {
			out[base+j] = x % s.d
			x /= s.d
		}
	}
}

// maxKey is the largest valid key, n^k − 1.
func (s *Store) maxKey() int64 {
	m := int64(1)
	for i := 0; i < s.k; i++ {
		m *= int64(s.n)
	}
	return m - 1
}

// access performs the Access procedure of Algorithm 2: it follows the
// search path of key. It returns (true, value, 0) if key ∈ Dom(f), and
// (false, 0, succ) otherwise, where succ = min{x ∈ Dom : x > key} (or
// nullKey). It is the constant-time successor search of Theorem 3.1.
//
//fod:hotpath
func (s *Store) access(key int64) (bool, int64, int64) {
	// The read path must not touch the shared dig1/dig2 scratch: lookups
	// may run from many goroutines at once (bag membership and kernel
	// tests during parallel preprocessing and concurrent query answering),
	// and only mutations are documented as single-threaded. A small stack
	// buffer keeps Access allocation-free for every practical depth.
	var buf [64]int
	var dig []int
	if s.kh <= len(buf) {
		dig = buf[:s.kh]
	} else {
		dig = make([]int, s.kh)
	}
	s.decompose(key, dig)
	l := int64(1)
	for i := 0; i < s.kh; i++ {
		c := s.cells[l+int64(dig[i])]
		if c.Delta == 0 {
			return false, 0, c.R
		}
		if i == s.kh-1 {
			return true, c.R, 0
		}
		l = c.R
	}
	panic("store: unreachable")
}

// Get returns f(ā) if ā ∈ Dom(f).
func (s *Store) Get(a []int) (int64, bool) {
	found, v, _ := s.access(s.EncodeKey(a))
	return v, found
}

// Lookup is the lookup of Theorem 3.1: if ā ∈ Dom(f) it returns its value;
// otherwise it returns the successor min{x̄ ∈ Dom(f) : x̄ > ā}, or ok=false
// if no such tuple exists.
func (s *Store) Lookup(a []int) (value int64, found bool, succ []int, ok bool) {
	f, v, sk := s.access(s.EncodeKey(a))
	if f {
		return v, true, nil, false
	}
	if sk == nullKey {
		return 0, false, nil, false
	}
	return 0, false, s.DecodeKey(sk), true
}

// NextGeq returns the smallest tuple ā′ ∈ Dom(f) with ā′ ≥ ā together with
// its value, or ok=false if none exists. This is the "smallest next
// solution" primitive the enumeration algorithms are built on.
func (s *Store) NextGeq(a []int) (key []int, value int64, ok bool) {
	k := s.EncodeKey(a)
	found, v, succ := s.access(k)
	if found {
		return append([]int(nil), a...), v, true
	}
	if succ == nullKey {
		return nil, 0, false
	}
	f2, v2, _ := s.access(succ)
	if !f2 {
		panic("store: successor pointer stale")
	}
	return s.DecodeKey(succ), v2, true
}

// NextGt returns the smallest tuple strictly greater than ā in Dom(f).
func (s *Store) NextGt(a []int) (key []int, value int64, ok bool) {
	k := s.EncodeKey(a)
	if k == s.maxKey() {
		return nil, 0, false
	}
	return s.NextGeq(s.DecodeKey(k + 1))
}

// Min returns the smallest tuple of Dom(f), or ok=false if f is empty.
func (s *Store) Min() (key []int, value int64, ok bool) {
	return s.NextGeq(make([]int, s.k))
}

// predecessor returns max{x ∈ Dom : x < key}, or nullKey, by a downward
// walk recording, at every level of the search path, the largest present
// sibling subtree to the left, then descending its rightmost branch.
func (s *Store) predecessor(key int64) int64 {
	s.decompose(key, s.dig1)
	l := int64(1)
	bestBlock := int64(-1)
	bestDigit := -1
	bestLevel := -1
	for i := 0; i < s.kh; i++ {
		for c := s.dig1[i] - 1; c >= 0; c-- {
			if s.cells[l+int64(c)].Delta == 1 {
				bestBlock, bestDigit, bestLevel = l, c, i
				break
			}
		}
		cell := s.cells[l+int64(s.dig1[i])]
		if cell.Delta != 1 || i == s.kh-1 {
			break
		}
		l = cell.R
	}
	if bestLevel < 0 {
		return nullKey
	}
	// Reconstruct the predecessor's digits: the search-path prefix, the
	// chosen smaller digit, then always the largest present child.
	digs := s.dig2
	copy(digs, s.dig1[:bestLevel])
	digs[bestLevel] = bestDigit
	l = bestBlock
	for i := bestLevel; i < s.kh-1; i++ {
		l = s.cells[l+int64(digs[i])].R
		found := false
		for c := s.d - 1; c >= 0; c-- {
			if s.cells[l+int64(c)].Delta == 1 {
				digs[i+1] = c
				found = true
				break
			}
		}
		if !found {
			panic("store: empty block reached during predecessor walk")
		}
	}
	return s.composeDigits(digs)
}

// composeDigits is the inverse of decompose.
func (s *Store) composeDigits(digs []int) int64 {
	key := int64(0)
	for i := 0; i < s.k; i++ {
		x := 0
		for j := 0; j < s.h; j++ {
			x = x*s.d + digs[i*s.h+j]
		}
		key = key*int64(s.n) + int64(x)
	}
	return key
}

// successorStrict returns min{x ∈ Dom : x > key}, or nullKey.
//
//fod:hotpath
func (s *Store) successorStrict(key int64) int64 {
	if key >= s.maxKey() {
		return nullKey
	}
	found, _, succ := s.access(key + 1)
	if found {
		return key + 1
	}
	return succ
}

// Set inserts (ā, value) into f, or updates the value if ā ∈ Dom(f).
// This is the Add procedure of Algorithm 4.
func (s *Store) Set(a []int, value int64) {
	key := s.EncodeKey(a)
	if found, _, _ := s.access(key); found {
		// Pure value update: rewalk and overwrite the leaf register.
		s.decompose(key, s.dig1)
		l := int64(1)
		for i := 0; i < s.kh-1; i++ {
			l = s.cells[l+int64(s.dig1[i])].R
		}
		s.cells[l+int64(s.dig1[s.kh-1])] = Cell{1, value}
		return
	}
	pred := s.predecessor(key)
	succ := s.successorStrict(key)

	// Insert (Algorithm 5): create the path top-down.
	s.decompose(key, s.dig1)
	l := int64(1)
	for i := 0; i < s.kh-1; i++ {
		reg := l + int64(s.dig1[i])
		if s.cells[reg].Delta == 1 {
			l = s.cells[reg].R
			continue
		}
		nf := s.free
		s.cells[reg] = Cell{1, nf}
		for j := 0; j < s.d; j++ {
			s.cells = append(s.cells, Cell{0, 0}) // fixed by Clean below
		}
		s.cells = append(s.cells, Cell{-1, reg})
		s.free = int64(len(s.cells))
		l = nf
	}
	s.cells[l+int64(s.dig1[s.kh-1])] = Cell{1, value}
	s.size++

	s.clean(pred, key)
	s.clean(key, succ)
}

// Delete removes ā from Dom(f); it is a no-op if ā ∉ Dom(f). This is the
// Remove procedure of Algorithm 10.
func (s *Store) Delete(a []int) {
	key := s.EncodeKey(a)
	if found, _, _ := s.access(key); !found {
		return
	}
	pred := s.predecessor(key)
	succ := s.successorStrict(key)

	s.decompose(key, s.dig1)
	l := int64(1)
	for i := 0; i < s.kh-1; i++ {
		l = s.cells[l+int64(s.dig1[i])].R
	}
	s.cells[l+int64(s.dig1[s.kh-1])] = Cell{0, succ}
	s.size--

	s.cut(l)
	s.clean(pred, succ)
}

// cut implements Algorithm 12: if the block starting at register l contains
// no present children it is removed, the last block of the register file is
// moved into the hole, pointers are patched, and the parent block is
// examined in turn.
func (s *Store) cut(l int64) {
	for {
		if l == 1 {
			return // never remove the root block
		}
		for c := 0; c < s.d; c++ {
			if s.cells[l+int64(c)].Delta == 1 {
				return // block still carries domain elements
			}
		}
		parentReg := s.cells[l+int64(s.d)].R
		s.cells[parentReg] = Cell{0, 0} // corrected later by Clean

		lastStart := s.free - int64(s.d+1)
		if lastStart != l {
			movedDepth := s.blockDepth(lastStart)
			copy(s.cells[l:l+int64(s.d)+1], s.cells[lastStart:s.free])
			// Patch the parent's child pointer to the moved block.
			pr := s.cells[l+int64(s.d)].R
			s.cells[pr] = Cell{1, l}
			// Patch the children's backpointers (only real child blocks;
			// at the bottom level the (1, r) cells hold values).
			if movedDepth < s.kh-1 {
				for c := 0; c < s.d; c++ {
					if s.cells[l+int64(c)].Delta == 1 {
						child := s.cells[l+int64(c)].R
						s.cells[child+int64(s.d)] = Cell{-1, l + int64(c)}
					}
				}
			}
			if s.blockStart(parentReg) == lastStart {
				// The parent block itself was the block we just moved.
				parentReg = l + (parentReg - lastStart)
			}
		}
		s.cells = s.cells[:lastStart]
		s.free = lastStart

		l = s.blockStart(parentReg)
	}
}

// blockStart returns the first register of the block containing register r.
// All blocks have size d+1 and are allocated contiguously from register 1.
func (s *Store) blockStart(r int64) int64 {
	return (r-1)/int64(s.d+1)*int64(s.d+1) + 1
}

// blockDepth returns the depth of the block starting at register l by
// walking parent backpointers up to the root.
func (s *Store) blockDepth(l int64) int {
	depth := 0
	for l != 1 {
		parentReg := s.cells[l+int64(s.d)].R
		l = s.blockStart(parentReg)
		depth++
	}
	return depth
}

// clean implements Algorithm 6: every register of the form (0, x) lying
// strictly between the search paths of k1 and k2 is rewritten to (0, k2).
// k1 = nullKey means "from the beginning", k2 = nullKey means "to the end"
// (rewriting to (0, Null)).
func (s *Store) clean(k1, k2 int64) {
	switch {
	case k1 == nullKey && k2 == nullKey:
		// Domain became empty: reset the root's children.
		for c := 0; c < s.d; c++ {
			s.cells[1+int64(c)] = Cell{0, nullKey}
		}
	case k1 == nullKey:
		s.decompose(k2, s.dig2)
		s.fillLeft(1, 0, k2)
	case k2 == nullKey:
		s.decompose(k1, s.dig1)
		s.fillRight(1, 0, nullKey)
	default:
		s.decompose(k1, s.dig1)
		s.decompose(k2, s.dig2)
		s.fill(1, 0, k2)
	}
}

// fillRight (Algorithm 7) rewrites, in the subtree rooted at block l of
// depth i, every register to the right of the search path dig1 to (0, val).
func (s *Store) fillRight(l int64, i int, val int64) {
	for {
		for c := s.dig1[i] + 1; c < s.d; c++ {
			if s.cells[l+int64(c)].Delta == 0 {
				s.cells[l+int64(c)] = Cell{0, val}
			}
		}
		if i >= s.kh-1 {
			return
		}
		cell := s.cells[l+int64(s.dig1[i])]
		if cell.Delta != 1 {
			return
		}
		l = cell.R
		i++
	}
}

// fillLeft (Algorithm 8) rewrites every register to the left of the search
// path dig2 to (0, val).
func (s *Store) fillLeft(l int64, i int, val int64) {
	for {
		for c := 0; c < s.dig2[i]; c++ {
			if s.cells[l+int64(c)].Delta == 0 {
				s.cells[l+int64(c)] = Cell{0, val}
			}
		}
		if i >= s.kh-1 {
			return
		}
		cell := s.cells[l+int64(s.dig2[i])]
		if cell.Delta != 1 {
			return
		}
		l = cell.R
		i++
	}
}

// fill (Algorithm 9) descends the common prefix of the two paths, rewrites
// the registers strictly between them at the divergence level, and then
// fills rightwards along path 1 and leftwards along path 2.
func (s *Store) fill(l int64, i int, val int64) {
	for i < s.kh && s.dig1[i] == s.dig2[i] {
		cell := s.cells[l+int64(s.dig1[i])]
		if cell.Delta != 1 || i == s.kh-1 {
			return
		}
		l = cell.R
		i++
	}
	if i >= s.kh {
		return
	}
	for c := s.dig1[i] + 1; c < s.dig2[i]; c++ {
		if s.cells[l+int64(c)].Delta == 0 {
			s.cells[l+int64(c)] = Cell{0, val}
		}
	}
	if i < s.kh-1 {
		if c1 := s.cells[l+int64(s.dig1[i])]; c1.Delta == 1 {
			s.fillRight(c1.R, i+1, val)
		}
		if c2 := s.cells[l+int64(s.dig2[i])]; c2.Delta == 1 {
			s.fillLeft(c2.R, i+1, val)
		}
	}
}
