package rel

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format for relational structures is line oriented:
//
//	db <n>
//	rel <Name> <arity>
//	t <Name> <e1> <e2> ...
//
// Blank lines and lines starting with '#' are ignored. Elements are
// 0-based. This is the interchange format of cmd/fodrel.

// Write serializes s in the text format.
func Write(w io.Writer, s *Structure) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "db %d\n", s.N())
	for _, name := range s.Relations() {
		fmt.Fprintf(bw, "rel %s %d\n", name, s.Arity(name))
	}
	for _, name := range s.Relations() {
		for _, tup := range s.Tuples(name) {
			fmt.Fprintf(bw, "t %s", name)
			for _, x := range tup {
				fmt.Fprintf(bw, " %d", x)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// Read parses a relational structure in the text format.
func Read(r io.Reader) (*Structure, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var s *Structure
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		f := strings.Fields(txt)
		switch f[0] {
		case "db":
			if s != nil {
				return nil, fmt.Errorf("rel: line %d: duplicate header", line)
			}
			if len(f) != 2 {
				return nil, fmt.Errorf("rel: line %d: want 'db <n>'", line)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("rel: line %d: bad domain size %q", line, f[1])
			}
			s = NewStructure(n)
		case "rel":
			if s == nil {
				return nil, fmt.Errorf("rel: line %d: relation before header", line)
			}
			if len(f) != 3 {
				return nil, fmt.Errorf("rel: line %d: want 'rel <Name> <arity>'", line)
			}
			ar, err := strconv.Atoi(f[2])
			if err != nil || ar < 1 {
				return nil, fmt.Errorf("rel: line %d: bad arity %q", line, f[2])
			}
			s.AddRelation(f[1], ar)
		case "t":
			if s == nil {
				return nil, fmt.Errorf("rel: line %d: tuple before header", line)
			}
			if len(f) < 3 {
				return nil, fmt.Errorf("rel: line %d: want 't <Name> <elements...>'", line)
			}
			name := f[1]
			ar, ok := s.arity[name]
			if !ok {
				return nil, fmt.Errorf("rel: line %d: unknown relation %q", line, name)
			}
			if len(f)-2 != ar {
				return nil, fmt.Errorf("rel: line %d: %q expects arity %d", line, name, ar)
			}
			tup := make([]int, ar)
			for i := 0; i < ar; i++ {
				x, err := strconv.Atoi(f[2+i])
				if err != nil || x < 0 || x >= s.N() {
					return nil, fmt.Errorf("rel: line %d: bad element %q", line, f[2+i])
				}
				tup[i] = x
			}
			s.Insert(name, tup...)
		default:
			return nil, fmt.Errorf("rel: line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("rel: missing 'db <n>' header")
	}
	return s, nil
}
