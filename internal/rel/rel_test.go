package rel

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/fo"
)

// randomStructure builds a sparse two-relation database: a binary Edge-like
// relation R and a unary mark relation U.
func randomStructure(n int, seed int64) *Structure {
	s := NewStructure(n)
	s.AddRelation("R", 2)
	s.AddRelation("U", 1)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2*n; i++ {
		s.Insert("R", rng.Intn(n), rng.Intn(n))
	}
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.3 {
			s.Insert("U", v)
		}
	}
	return s
}

func TestAdjacencyGraphShape(t *testing.T) {
	s := NewStructure(3)
	s.AddRelation("R", 2)
	s.Insert("R", 0, 1)
	s.Insert("R", 1, 2)
	enc := s.AdjacencyGraph()
	// 3 elements + 2 tuple nodes + 4 subdivision nodes.
	if enc.Graph.N() != 9 {
		t.Fatalf("|A'(D)| = %d, want 9", enc.Graph.N())
	}
	// Each incidence contributes 2 edges.
	if enc.Graph.M() != 8 {
		t.Fatalf("‖edges‖ = %d, want 8", enc.Graph.M())
	}
	for v := 0; v < 3; v++ {
		if !enc.Graph.HasColor(v, enc.ElemColor) {
			t.Fatalf("element %d missing element color", v)
		}
	}
}

// TestLemma22 is the statement of Lemma 2.2: φ(D) = ψ(A′(D)) for every
// query of the corpus, with solutions compared element-wise (element
// vertices keep their ids in A′(D)).
func TestLemma22(t *testing.T) {
	queries := []struct {
		src  string
		vars []fo.Var
	}{
		{"R(x,y)", []fo.Var{"x", "y"}},
		{"R(x,y) & U(x)", []fo.Var{"x", "y"}},
		{"exists z (R(x,z) & R(z,y))", []fo.Var{"x", "y"}},
		{"~(R(x,y)) & U(y)", []fo.Var{"x", "y"}},
		{"forall z (~(R(x,z)) | U(z))", []fo.Var{"x"}},
		{"U(x) & exists z R(z,x)", []fo.Var{"x"}},
		{"x = y | R(x,y)", []fo.Var{"x", "y"}},
	}
	s := randomStructure(12, 7)
	enc := s.AdjacencyGraph()
	dev := NewEvaluator(s)
	gev := fo.NewEvaluator(enc.Graph)
	for _, tc := range queries {
		phi := fo.MustParse(tc.src)
		psi, err := enc.TranslateQuery(phi, tc.vars)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		// Compare over all element tuples.
		k := len(tc.vars)
		tuple := make([]int, k)
		var rec func(i int)
		var fail string
		rec = func(i int) {
			if fail != "" {
				return
			}
			if i == k {
				env := fo.Env{}
				for j, v := range tc.vars {
					env[v] = tuple[j]
				}
				want := dev.Eval(phi, env)
				got := gev.Eval(psi, env)
				if got != want {
					fail = tc.src
					t.Errorf("%s at %v: graph says %v, structure says %v", tc.src, tuple, got, want)
				}
				return
			}
			for v := 0; v < s.N(); v++ {
				tuple[i] = v
				rec(i + 1)
			}
		}
		rec(0)
	}
}

// TestLemma22NonElementVertices: translated queries must never accept
// tuple or subdivision vertices as solutions.
func TestLemma22NonElementVertices(t *testing.T) {
	s := randomStructure(8, 3)
	enc := s.AdjacencyGraph()
	gev := fo.NewEvaluator(enc.Graph)
	psi, err := enc.TranslateQuery(fo.MustParse("R(x,y)"), []fo.Var{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	for v := s.N(); v < enc.Graph.N(); v++ {
		if gev.Eval(psi, fo.Env{"x": v, "y": 0}) {
			t.Fatalf("non-element vertex %d accepted as a solution", v)
		}
	}
}

// TestDistanceScaling: dist_D(a,b) ≤ d iff dist_{A′(D)}(a,b) ≤ 4d.
func TestDistanceScaling(t *testing.T) {
	s := NewStructure(5)
	s.AddRelation("R", 2)
	s.Insert("R", 0, 1)
	s.Insert("R", 1, 2)
	s.Insert("R", 2, 3)
	enc := s.AdjacencyGraph()
	dev := NewEvaluator(s)
	gev := fo.NewEvaluator(enc.Graph)
	for d := 0; d <= 4; d++ {
		phi := fo.DistLeq{X: "x", Y: "y", D: d}
		psi, err := enc.Translate(phi)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 5; a++ {
			for b := 0; b < 5; b++ {
				env := fo.Env{"x": a, "y": b}
				if got, want := gev.Eval(psi, env), dev.Eval(phi, env); got != want {
					t.Fatalf("d=%d (%d,%d): graph %v, structure %v", d, a, b, got, want)
				}
			}
		}
	}
}

func TestStructureBasics(t *testing.T) {
	s := NewStructure(4)
	s.AddRelation("R", 2)
	s.Insert("R", 0, 1)
	s.Insert("R", 0, 1) // duplicate
	if len(s.Tuples("R")) != 1 {
		t.Fatal("duplicate tuple not ignored")
	}
	if !s.Holds("R", []int{0, 1}) || s.Holds("R", []int{1, 0}) {
		t.Fatal("Holds mismatch")
	}
	if s.MaxArity() != 2 {
		t.Fatal("MaxArity mismatch")
	}
}

func TestRelIORoundTrip(t *testing.T) {
	s := randomStructure(15, 11)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.N() != s.N() {
		t.Fatalf("domain %d vs %d", s2.N(), s.N())
	}
	for _, name := range s.Relations() {
		if len(s2.Tuples(name)) != len(s.Tuples(name)) {
			t.Fatalf("%s: %d vs %d tuples", name, len(s2.Tuples(name)), len(s.Tuples(name)))
		}
		for _, tup := range s.Tuples(name) {
			if !s2.Holds(name, tup) {
				t.Fatalf("%s: lost tuple %v", name, tup)
			}
		}
	}
}

func TestRelReadErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"t R 0 1",
		"db x",
		"db 3\nt R 0 1",
		"db 3\nrel R 2\nt R 0",
		"db 3\nrel R 2\nt R 0 9",
		"db 3\nbogus",
		"db 3\ndb 3",
	} {
		if _, err := Read(bytes.NewBufferString(src)); err == nil {
			t.Errorf("Read(%q): expected error", src)
		}
	}
}

func TestGaifmanGraph(t *testing.T) {
	s := NewStructure(4)
	s.AddRelation("T", 3)
	s.Insert("T", 0, 1, 2)
	ev := NewEvaluator(s)
	g := ev.Gaifman()
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if !g.HasEdge(pair[0], pair[1]) {
			t.Fatalf("Gaifman edge %v missing", pair)
		}
	}
	if g.HasEdge(0, 3) {
		t.Fatal("spurious Gaifman edge")
	}
}
