// Package rel implements relational structures (databases) and their
// reduction to colored graphs from Section 2 of the paper: the adjacency
// graph A(D), its colored 1-subdivision A′(D), and the query translation of
// Lemma 2.2. This is what extends the colored-graph results to arbitrary
// relational databases.
package rel

import (
	"fmt"
	"sort"

	"repro/internal/fo"
	"repro/internal/graph"
)

// Structure is a finite relational structure with domain {0, …, n−1}.
type Structure struct {
	n      int
	names  []string // relation names, insertion order
	arity  map[string]int
	tuples map[string][][]int
	seen   map[string]map[string]bool // per relation: dedup set
}

// NewStructure returns an empty structure with an n-element domain.
func NewStructure(n int) *Structure {
	return &Structure{
		n:      n,
		arity:  map[string]int{},
		tuples: map[string][][]int{},
		seen:   map[string]map[string]bool{},
	}
}

// AddRelation declares a relation symbol.
func (s *Structure) AddRelation(name string, arity int) {
	if _, dup := s.arity[name]; dup {
		panic(fmt.Sprintf("rel: duplicate relation %q", name))
	}
	if arity < 1 {
		panic(fmt.Sprintf("rel: relation %q has arity %d", name, arity))
	}
	s.names = append(s.names, name)
	s.arity[name] = arity
	s.seen[name] = map[string]bool{}
}

// Insert adds a tuple to a relation (duplicates are ignored).
func (s *Structure) Insert(name string, tuple ...int) {
	ar, ok := s.arity[name]
	if !ok {
		panic(fmt.Sprintf("rel: unknown relation %q", name))
	}
	if len(tuple) != ar {
		panic(fmt.Sprintf("rel: %q expects arity %d, got %d", name, ar, len(tuple)))
	}
	for _, x := range tuple {
		if x < 0 || x >= s.n {
			panic(fmt.Sprintf("rel: element %d outside domain [0,%d)", x, s.n))
		}
	}
	key := fmt.Sprint(tuple)
	if s.seen[name][key] {
		return
	}
	s.seen[name][key] = true
	s.tuples[name] = append(s.tuples[name], append([]int(nil), tuple...))
}

// N returns the domain size.
func (s *Structure) N() int { return s.n }

// Relations returns the declared relation names in insertion order.
func (s *Structure) Relations() []string { return s.names }

// Arity returns the arity of a relation.
func (s *Structure) Arity(name string) int { return s.arity[name] }

// Tuples returns the tuples of a relation (shared; do not modify).
func (s *Structure) Tuples(name string) [][]int { return s.tuples[name] }

// Holds reports whether the tuple belongs to the relation.
func (s *Structure) Holds(name string, tuple []int) bool {
	return s.seen[name][fmt.Sprint(tuple)]
}

// MaxArity returns the largest declared arity (the k of Lemma 2.2).
func (s *Structure) MaxArity() int {
	k := 0
	for _, a := range s.arity {
		if a > k {
			k = a
		}
	}
	return k
}

// Encoding is the colored graph A′(D) together with the color layout used
// by the translation: colors 0..k−1 are the position colors C_1..C_k (the
// paper's 1-based C_i is color i−1 here), color k+ri is P_R for the ri-th
// relation, and the last color marks the original domain elements (used to
// relativize quantifiers so that graph solutions range over elements only).
type Encoding struct {
	Graph *graph.Graph
	// K is the maximal arity.
	K int
	// RelColor maps a relation name to its P_R color.
	RelColor map[string]int
	// ElemColor marks original domain elements; they are graph vertices
	// 0..n−1, so tuples over the structure and over the graph coincide.
	ElemColor int
}

// AdjacencyGraph builds A′(D): the domain of D (vertices 0..n−1, preserving
// the element order), one vertex per relation tuple colored P_R, and one
// C_i-colored subdivision vertex per (tuple, position) incidence.
func (s *Structure) AdjacencyGraph() *Encoding {
	k := s.MaxArity()
	nTuples, nIncidence := 0, 0
	for _, name := range s.names {
		nTuples += len(s.tuples[name])
		nIncidence += len(s.tuples[name]) * s.arity[name]
	}
	total := s.n + nTuples + nIncidence
	ncolors := k + len(s.names) + 1
	elemColor := ncolors - 1

	b := graph.NewBuilder(total, ncolors)
	relColor := map[string]int{}
	sortedNames := append([]string(nil), s.names...)
	sort.Strings(sortedNames)
	for i, name := range sortedNames {
		relColor[name] = k + i
	}
	for v := 0; v < s.n; v++ {
		b.SetColor(v, elemColor)
	}
	tnode := s.n
	snode := s.n + nTuples
	for _, name := range s.names {
		for _, tup := range s.tuples[name] {
			b.SetColor(tnode, relColor[name])
			for i, a := range tup {
				b.SetColor(snode, i) // C_{i+1} of the paper
				b.AddEdge(a, snode)
				b.AddEdge(snode, tnode)
				snode++
			}
			tnode++
		}
	}
	return &Encoding{Graph: b.Build(), K: k, RelColor: relColor, ElemColor: elemColor}
}

// Translate implements Lemma 2.2: it rewrites a relational FO⁺ query φ
// into a query ψ over the colored graph A′(D) such that φ(D) = ψ(A′(D)).
// Relational atoms become the ∃t(P_R(t) ∧ ⋀_i ∃z(C_i(z) ∧ E(x_i,z) ∧
// E(z,t))) pattern; quantifiers are relativized to domain elements; and
// distance atoms are scaled by 4, because one Gaifman edge of D becomes a
// length-4 path in A′(D).
func (enc *Encoding) Translate(phi fo.Formula) (fo.Formula, error) {
	var fresh int
	return enc.translate(phi, &fresh)
}

func (enc *Encoding) translate(f fo.Formula, fresh *int) (fo.Formula, error) {
	switch f := f.(type) {
	case fo.Truth, fo.Eq:
		return f, nil
	case fo.Edge:
		return nil, fmt.Errorf("rel: raw E atoms are not part of the relational schema")
	case fo.HasColor:
		return nil, fmt.Errorf("rel: raw color atoms are not part of the relational schema")
	case fo.DistLeq:
		return fo.DistLeq{X: f.X, Y: f.Y, D: 4 * f.D}, nil
	case fo.Rel:
		color, ok := enc.RelColor[f.Name]
		if !ok {
			return nil, fmt.Errorf("rel: unknown relation %q", f.Name)
		}
		// The Lemma 2.2 pattern, with the quantifiers ordered so that each
		// is guarded by an edge atom on an already-bound variable (first
		// the subdivision vertex of argument 1, then the tuple vertex,
		// then the remaining subdivision vertices): logically identical to
		// ∃t(P_R(t) ∧ ⋀_i ∃z(C_i(z) ∧ E(a_i,z) ∧ E(z,t))), but the
		// evaluator's witness guards shrink every loop to a degree.
		*fresh++
		t := fo.Var(fmt.Sprintf("_t%d", *fresh))
		conj := []fo.Formula{fo.HasColor{C: color, X: t}}
		for i := 1; i < len(f.Args); i++ {
			*fresh++
			z := fo.Var(fmt.Sprintf("_z%d", *fresh))
			conj = append(conj, fo.Exists{V: z, F: fo.AndOf(
				fo.Edge{X: z, Y: t},
				fo.HasColor{C: i, X: z},
				fo.Edge{X: f.Args[i], Y: z},
			)})
		}
		*fresh++
		z1 := fo.Var(fmt.Sprintf("_z%d", *fresh))
		return fo.Exists{V: z1, F: fo.AndOf(
			fo.Edge{X: f.Args[0], Y: z1},
			fo.HasColor{C: 0, X: z1},
			fo.Exists{V: t, F: fo.AndOf(append([]fo.Formula{
				fo.Edge{X: z1, Y: t}}, conj...)...)},
		)}, nil
	case fo.Not:
		g, err := enc.translate(f.F, fresh)
		if err != nil {
			return nil, err
		}
		return fo.Not{F: g}, nil
	case fo.And:
		out := make([]fo.Formula, len(f.Fs))
		for i, g := range f.Fs {
			h, err := enc.translate(g, fresh)
			if err != nil {
				return nil, err
			}
			out[i] = h
		}
		return fo.And{Fs: out}, nil
	case fo.Or:
		out := make([]fo.Formula, len(f.Fs))
		for i, g := range f.Fs {
			h, err := enc.translate(g, fresh)
			if err != nil {
				return nil, err
			}
			out[i] = h
		}
		return fo.Or{Fs: out}, nil
	case fo.Exists:
		g, err := enc.translate(f.F, fresh)
		if err != nil {
			return nil, err
		}
		return fo.Exists{V: f.V, F: fo.AndOf(
			fo.HasColor{C: enc.ElemColor, X: f.V}, g)}, nil
	case fo.Forall:
		g, err := enc.translate(f.F, fresh)
		if err != nil {
			return nil, err
		}
		return fo.Forall{V: f.V, F: fo.OrOf(
			fo.Not{F: fo.HasColor{C: enc.ElemColor, X: f.V}}, g)}, nil
	}
	return nil, fmt.Errorf("rel: cannot translate %T", f)
}

// FreeVarGuard returns the conjunction of element-color guards for the
// free variables of a translated query; solutions of the translated query
// must be restricted to element vertices.
func (enc *Encoding) FreeVarGuard(vars []fo.Var) fo.Formula {
	var gs []fo.Formula
	for _, v := range vars {
		gs = append(gs, fo.HasColor{C: enc.ElemColor, X: v})
	}
	return fo.AndOf(gs...)
}

// TranslateQuery is the full Lemma 2.2 pipeline for a query with free
// variables vars: translate and guard the free variables.
func (enc *Encoding) TranslateQuery(phi fo.Formula, vars []fo.Var) (fo.Formula, error) {
	psi, err := enc.Translate(phi)
	if err != nil {
		return nil, err
	}
	return fo.AndOf(enc.FreeVarGuard(vars), psi), nil
}

// Evaluator evaluates relational FO⁺ directly on a Structure — the oracle
// side of Lemma 2.2. Distance atoms use the Gaifman graph of the structure.
type Evaluator struct {
	s   *Structure
	gf  *graph.Graph // Gaifman graph
	bfs *graph.BFS
}

// NewEvaluator builds the Gaifman graph and returns an evaluator.
func NewEvaluator(s *Structure) *Evaluator {
	b := graph.NewBuilder(s.n, 0)
	for _, name := range s.names {
		for _, tup := range s.tuples[name] {
			for i := range tup {
				for j := i + 1; j < len(tup); j++ {
					if tup[i] != tup[j] {
						b.AddEdge(tup[i], tup[j])
					}
				}
			}
		}
	}
	g := b.Build()
	return &Evaluator{s: s, gf: g, bfs: graph.NewBFS(g)}
}

// Gaifman returns the Gaifman graph of the structure.
func (e *Evaluator) Gaifman() *graph.Graph { return e.gf }

// Eval reports whether D ⊨ f under env.
func (e *Evaluator) Eval(f fo.Formula, env fo.Env) bool {
	switch f := f.(type) {
	case fo.Truth:
		return f.Value
	case fo.Eq:
		return env[f.X] == env[f.Y]
	case fo.DistLeq:
		return e.bfs.Distance(env[f.X], env[f.Y], f.D) >= 0
	case fo.Rel:
		tup := make([]int, len(f.Args))
		for i, a := range f.Args {
			tup[i] = env[a]
		}
		return e.s.Holds(f.Name, tup)
	case fo.Not:
		return !e.Eval(f.F, env)
	case fo.And:
		for _, g := range f.Fs {
			if !e.Eval(g, env) {
				return false
			}
		}
		return true
	case fo.Or:
		for _, g := range f.Fs {
			if e.Eval(g, env) {
				return true
			}
		}
		return false
	case fo.Exists:
		old, had := env[f.V]
		defer restoreEnv(env, f.V, old, had)
		for v := 0; v < e.s.n; v++ {
			env[f.V] = v
			if e.Eval(f.F, env) {
				return true
			}
		}
		return false
	case fo.Forall:
		old, had := env[f.V]
		defer restoreEnv(env, f.V, old, had)
		for v := 0; v < e.s.n; v++ {
			env[f.V] = v
			if !e.Eval(f.F, env) {
				return false
			}
		}
		return true
	}
	panic(fmt.Sprintf("rel: cannot evaluate %T", f))
}

func restoreEnv(env fo.Env, v fo.Var, old int, had bool) {
	if had {
		env[v] = old
	} else {
		delete(env, v)
	}
}
