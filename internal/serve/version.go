package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
)

// graphState is one served graph's MVCC write side: an immutable chain of
// graph versions, mutated through POST /v1/mutate. It mirrors
// repro.LiveIndex one level up — the server versions *graphs* (shared by
// every query registered against them) and keys its index cache by
// (graph, version, query), so each index snapshot is immutable and
// version-pinned cursors keep reading a consistent stream while the head
// moves on.
//
// Writers are serialized per graph; readers resolve versions wait-free off
// the head pointer and only take the lock for the retained ring. A bounded
// window of past versions stays resolvable so in-flight cursors survive a
// few mutations; beyond it, At reports gone and the API answers 410
// version_gone.
type graphState struct {
	name string
	head atomic.Pointer[graphVersion]

	mu       sync.Mutex      // serializes Mutate; guards retained
	retained []*graphVersion // past versions, oldest first (excludes head)
	retain   int
}

// graphVersion is one immutable point in a graph's edit history. edits is
// the batch that produced this version from its predecessor (nil for
// version 0): the index cache replays it to migrate a resident index
// forward instead of rebuilding.
type graphVersion struct {
	g       *repro.Graph
	version int
	edits   []repro.Edit
}

func newGraphState(name string, g *repro.Graph, retain int) *graphState {
	gs := &graphState{name: name, retain: retain}
	gs.head.Store(&graphVersion{g: g, version: 0})
	return gs
}

// Head returns the current version, wait-free.
func (gs *graphState) Head() *graphVersion { return gs.head.Load() }

// At resolves a version number: the head or one of the retained past
// versions. ok=false means never published or garbage-collected.
func (gs *graphState) At(version int) (*graphVersion, bool) {
	if head := gs.head.Load(); head.version == version {
		return head, true
	}
	gs.mu.Lock()
	defer gs.mu.Unlock()
	// Re-check the head under the lock (a writer may have published since),
	// then the retention ring.
	if head := gs.head.Load(); head.version == version {
		return head, true
	}
	for _, gv := range gs.retained {
		if gv.version == version {
			return gv, true
		}
	}
	return nil, false
}

// editsSince returns the edit batches leading from version `from`
// (exclusive) to version `to` (inclusive), in application order. ok=false
// when any link of the chain has left the retention window.
func (gs *graphState) editsSince(from, to int) ([][]repro.Edit, bool) {
	if from >= to {
		return nil, false
	}
	batches := make([][]repro.Edit, 0, to-from)
	for v := from + 1; v <= to; v++ {
		gv, ok := gs.At(v)
		if !ok {
			return nil, false
		}
		batches = append(batches, gv.edits)
	}
	return batches, true
}

// Mutate validates and applies the edit batch, publishing a new head
// version. A batch that nets out to the identity publishes nothing and
// returns the unchanged head with noop=true.
func (gs *graphState) Mutate(edits []repro.Edit) (gv *graphVersion, noop bool, err error) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	cur := gs.head.Load()
	for _, e := range edits {
		if err := e.Validate(cur.g); err != nil {
			return nil, false, err
		}
	}
	if !editsEffective(cur.g, edits) {
		return cur, true, nil
	}
	gNew, err := repro.PatchGraph(cur.g, edits)
	if err != nil {
		return nil, false, err
	}
	next := &graphVersion{
		g:       gNew,
		version: cur.version + 1,
		edits:   append([]repro.Edit(nil), edits...),
	}
	gs.retained = append(gs.retained, cur)
	if len(gs.retained) > gs.retain {
		gs.retained = gs.retained[1:]
	}
	gs.head.Store(next)
	return next, false, nil
}

// Retained lists the versions currently resolvable through At, oldest
// first, head last.
func (gs *graphState) Retained() []int {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	out := make([]int, 0, len(gs.retained)+1)
	for _, gv := range gs.retained {
		out = append(out, gv.version)
	}
	return append(out, gs.head.Load().version)
}

// editsEffective reports whether the batch changes the graph at all:
// later edits win per edge/color key, and a net intent that matches the
// present state is a no-op (mirroring the facade, where an identity batch
// returns the receiver index without a version bump).
func editsEffective(g *repro.Graph, edits []repro.Edit) bool {
	type key struct{ kind, a, b int }
	final := make(map[key]bool) // desired presence after the batch
	for _, e := range edits {
		switch e.Op {
		case repro.OpAddEdge, repro.OpRemoveEdge:
			if e.U == e.V {
				continue
			}
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			final[key{0, u, v}] = e.Op == repro.OpAddEdge
		default:
			final[key{1, e.U, e.Color}] = e.Op == repro.OpAddColor
		}
	}
	for k, want := range final { //fod:sorted — order-free any-fold: first difference decides, and existence is order-independent
		have := false
		if k.kind == 0 {
			have = g.HasEdge(k.a, k.b)
		} else {
			have = g.HasColor(k.a, k.b)
		}
		if have != want {
			return true
		}
	}
	return false
}

// versionGoneError marks an index acquisition that failed because the
// requested graph version left the retention window between cursor decode
// and build; writeCacheErr maps it to 410 version_gone.
type versionGoneError struct {
	graph   string
	version int
}

func (e *versionGoneError) Error() string {
	return fmt.Sprintf("version %d of graph %q is no longer retained", e.version, e.graph)
}
