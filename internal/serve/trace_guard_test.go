package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// The trace guards are the tier-3 twin of the OBS_GUARD metrics guard:
// tracing must cost one branch per call site when disabled, and even when
// a request trace is live the per-answer loop (Iterator.Next, Index.Test)
// must stay at 0 allocs/op — spans wrap pages and phases, never answers.
// Enabled only under TRACE_GUARD=1 (timing asserts are too flaky for the
// default run); verify.sh tier 3 runs them with -count=1.

func traceGuardGate(t *testing.T) {
	t.Helper()
	if os.Getenv("TRACE_GUARD") == "" {
		t.Skip("set TRACE_GUARD=1 to run the tracing guards")
	}
}

// buildTracedIndex builds the E15 configuration with a live trace in the
// build context and the tracer's instruments registered — the serve
// layer's worst case.
func buildTracedIndex(t *testing.T) (*repro.Index, *obs.Trace, int) {
	t.Helper()
	reg := obs.New()
	tracer := obs.NewTracer(obs.TracerConfig{Buffer: 16, Slow: -1})
	tracer.Register(reg)
	tr := tracer.Start("trace-guard", obs.TraceID{}, "")
	ctx := obs.ContextWithSpan(context.Background(), obs.SpanCtx{Trace: tr})
	g := repro.Generate("grid", 2000, repro.GenOptions{Seed: 7, Colors: 1})
	q := repro.MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := repro.BuildIndexCtx(ctx, g, q, repro.IndexOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return ix, tr, g.N()
}

// TestTracedIteratorNextZeroAllocs pins the constant-delay step at
// 0 allocs/op while tracing is ENABLED: the trace wraps the request, the
// enumeration loop never sees it.
func TestTracedIteratorNextZeroAllocs(t *testing.T) {
	traceGuardGate(t)
	ix, tr, _ := buildTracedIndex(t)
	it := ix.Iterator()
	if _, ok := it.Next(); !ok {
		t.Fatal("traced index produced no solutions")
	}
	zero := make([]int, ix.Arity())
	allocs := testing.AllocsPerRun(2000, func() {
		if _, ok := it.Next(); !ok {
			it.Seek(zero)
		}
	})
	tr.Finish(200, "")
	if allocs != 0 {
		t.Errorf("Iterator.Next with tracing enabled = %.2f allocs/op, want 0", allocs)
	}
}

// TestTracedEngineTestZeroAllocs does the same for the O(1) membership
// test of Corollary 2.4.
func TestTracedEngineTestZeroAllocs(t *testing.T) {
	traceGuardGate(t)
	ix, tr, n := buildTracedIndex(t)
	a := make([]int, ix.Arity())
	v := 0
	allocs := testing.AllocsPerRun(2000, func() {
		a[0], a[1] = v%n, (v*31)%n
		ix.Test(a)
		v += 17
	})
	tr.Finish(200, "")
	if allocs != 0 {
		t.Errorf("Index.Test with tracing enabled = %.2f allocs/op, want 0", allocs)
	}
}

// TestTraceDisabledOverheadGuard checks the one-branch contract end to
// end: a server with tracing disabled must serve an enumeration page no
// slower (beyond noise) than the same server paying for trace start, span
// recording, tail sampling and exemplars on every request.
func TestTraceDisabledOverheadGuard(t *testing.T) {
	traceGuardGate(t)
	mkServer := func(tracer *obs.Tracer) *Server {
		return NewServer(Config{
			Graphs: map[string]*repro.Graph{
				"g": repro.Generate("grid", 900, repro.GenOptions{Colors: 2, Seed: 11}),
			},
			Metrics: obs.New(),
			Tracer:  tracer,
		})
	}
	plain := mkServer(nil)
	traced := mkServer(obs.NewTracer(obs.TracerConfig{Buffer: 64, Slow: -1}))

	measure := func(s *Server) time.Duration {
		h := s.Handler()
		ts := httptest.NewServer(h)
		defer ts.Close()
		qr := registerQuery(t, ts.URL, "g", "dist(x,y) <= 2", "x", "y")
		url := "/v1/enumerate?query=" + qr.ID + "&limit=100"
		req := httptest.NewRequest("GET", url, nil)
		run := func() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("enumerate: %d: %s", rec.Code, rec.Body.String())
			}
		}
		const perRound = 64
		run() // warm the index cache
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 5; round++ {
			start := time.Now()
			for i := 0; i < perRound; i++ {
				run()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best / perRound
	}
	enabled := measure(traced)
	disabled := measure(plain)
	t.Logf("enumerate page per request: disabled %v, enabled %v", disabled, enabled)
	// Mirrors TestMetricsOverheadGuard: the disabled path does a strict
	// subset of the enabled path's work, so beyond scheduler noise it must
	// not be slower. The absolute term absorbs JSON-encoding jitter.
	if disabled > enabled*3/2+20*time.Microsecond {
		t.Fatalf("trace-disabled request (%v) slower than traced (%v) beyond noise — the one-branch disabled path regressed", disabled, enabled)
	}
}
