package serve

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
)

// A cursor is the pagination token of /v1/enumerate. Because the index
// answers "smallest solution ≥ ā" in constant time (Theorem 2.3), a
// cursor needs no server-side state at all: it is just the last tuple the
// page returned, bound to its query id. Resuming seeks to that tuple and
// skips it — constant startup cost per page, at any depth into the
// stream, even when the cached index was evicted and rebuilt in between
// (the rebuilt index is identical, and the cursor never referenced the
// old one).
//
// Wire format: base64url(raw) of "v1 <query-id> <t0> <t1> ... <tk-1>".
// The encoding is versioned so a future format can coexist; clients must
// treat the string as opaque.

const cursorVersion = "v1"

func encodeCursor(queryID string, last []int) string {
	var b strings.Builder
	b.WriteString(cursorVersion)
	b.WriteByte(' ')
	b.WriteString(queryID)
	for _, v := range last {
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(v))
	}
	return base64.RawURLEncoding.EncodeToString([]byte(b.String()))
}

func decodeCursor(s string) (queryID string, last []int, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return "", nil, fmt.Errorf("cursor is not base64url: %v", err)
	}
	fields := strings.Fields(string(raw))
	if len(fields) < 3 || fields[0] != cursorVersion {
		return "", nil, fmt.Errorf("cursor has unsupported format")
	}
	queryID = fields[1]
	last = make([]int, len(fields)-2)
	for i, f := range fields[2:] {
		v, err := strconv.Atoi(f)
		if err != nil {
			return "", nil, fmt.Errorf("cursor component %q is not an integer", f)
		}
		last[i] = v
	}
	return queryID, last, nil
}
