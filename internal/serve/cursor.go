package serve

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
)

// A cursor is the pagination token of /v1/enumerate. Because the index
// answers "smallest solution ≥ ā" in constant time (Theorem 2.3), a
// cursor needs no server-side state at all: it is just the last tuple the
// page returned, bound to its query id and — since graphs became mutable —
// to the graph version the page was served at. Resuming seeks to that
// tuple and skips it — constant startup cost per page, at any depth into
// the stream, even when the cached index was evicted and rebuilt in
// between (the rebuilt index is identical, and the cursor never referenced
// the old one).
//
// The pinned version is what makes paging under concurrent mutation sane:
// every page of one enumeration is served from the same immutable
// snapshot, so the client sees one consistent lexicographic stream — no
// skipped or duplicated tuples — however the graph changes mid-stream.
// Versions are retained for a bounded window; resuming one that has been
// garbage-collected answers 410 version_gone.
//
// Wire format: base64url(raw) of "v2 <query-id> <version> <t0> ... <tk-1>".
// The previous format "v1 <query-id> <t0> ... <tk-1>" predates versioned
// graphs and is still accepted; it resumes at the current head (the exact
// semantics it had when every graph had a single eternal version 0).
// Clients must treat the string as opaque.

const (
	cursorV1 = "v1"
	cursorV2 = "v2"
)

// cursorHead is the decoded version of a v1 cursor: "whatever the head is
// now", the pre-mutation behavior.
const cursorHead = -1

func encodeCursor(queryID string, version int, last []int) string {
	var b strings.Builder
	b.WriteString(cursorV2)
	b.WriteByte(' ')
	b.WriteString(queryID)
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(version))
	for _, v := range last {
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(v))
	}
	return base64.RawURLEncoding.EncodeToString([]byte(b.String()))
}

// decodeCursor parses either cursor format. version is cursorHead for a
// legacy v1 cursor.
func decodeCursor(s string) (queryID string, version int, last []int, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return "", 0, nil, fmt.Errorf("cursor is not base64url: %v", err)
	}
	fields := strings.Fields(string(raw))
	var tuple []string
	switch {
	case len(fields) >= 4 && fields[0] == cursorV2:
		version, err = strconv.Atoi(fields[2])
		if err != nil || version < 0 {
			return "", 0, nil, fmt.Errorf("cursor version %q is not a graph version", fields[2])
		}
		queryID, tuple = fields[1], fields[3:]
	case len(fields) >= 3 && fields[0] == cursorV1:
		queryID, version, tuple = fields[1], cursorHead, fields[2:]
	default:
		return "", 0, nil, fmt.Errorf("cursor has unsupported format")
	}
	last = make([]int, len(tuple))
	for i, f := range tuple {
		v, err := strconv.Atoi(f)
		if err != nil {
			return "", 0, nil, fmt.Errorf("cursor component %q is not an integer", f)
		}
		last[i] = v
	}
	return queryID, version, last, nil
}
