package serve

import (
	"container/list"
	"context"

	"sync"

	"repro"
	"repro/internal/obs"
)

// cacheKey identifies one index: a graph id, the graph version the index
// answers over, and the canonical query text (repro.Query.Canonical,
// stable under reparsing). Version is part of the key because an index is
// immutable — mutating a graph publishes a new version whose indexes are
// separate cache entries, derived on first use (see Server.buildIndex);
// indexes of versions that left the retention window simply age out of
// the LRU.
type cacheKey struct {
	graph     string
	version   int
	canonical string
}

// indexCache is an LRU over built indexes with singleflight deduplication:
// N concurrent Get calls for the same uncached key trigger exactly one
// build; the other N−1 wait on the flight and share its result. A waiter
// whose context expires leaves immediately (the request fails with the
// context error); when the last waiter of a flight has left, the build
// itself is canceled through the core's phase checkpoints. Successful
// builds are inserted even if every waiter has gone — the work is done,
// the next request should profit.
type indexCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recently used; Value = *cacheEntry
	flights map[cacheKey]*flight

	baseCtx context.Context // parent of every build; canceled on shutdown
	build   func(ctx context.Context, key cacheKey) (*repro.Index, error)
	reg     *obs.Registry // span source; nil means no tracing/metrics

	// Optional second cache tier (disk snapshots). loadSnap is consulted
	// on every memory miss before building; storeSnap persists a freshly
	// built index. Both run inside the singleflight flight, so concurrent
	// misses share one disk probe and one build across BOTH tiers. The ctx
	// is the flight's: it carries the trace of the request that opened the
	// flight, and is canceled when the last waiter leaves.
	loadSnap  func(ctx context.Context, key cacheKey) (*repro.Index, bool)
	storeSnap func(ctx context.Context, key cacheKey, ix *repro.Index) bool

	// migrate is the incremental tier, consulted after the disk tier and
	// before a full build: derive the index from a resident index of an
	// older version of the same graph by replaying the edit log
	// (Index.ApplyEdits). Like the disk tier it runs inside the flight,
	// so concurrent misses share one migration.
	migrate func(ctx context.Context, key cacheKey) (*repro.Index, bool)

	// Owned instruments; registered in the obs registry when present so
	// /v1/stats and /debug/metrics read the same numbers.
	hits       obs.Counter
	misses     obs.Counter
	evictions  obs.Counter
	builds     obs.Counter
	shared     obs.Counter // waiters that joined an existing flight
	snapHits   obs.Counter // memory misses served from the disk tier
	snapWrites obs.Counter // snapshots written back after a build
	migrations obs.Counter // misses served by ApplyEdits from an older version
	size       obs.Gauge
}

type cacheEntry struct {
	key cacheKey
	ix  *repro.Index
}

type flight struct {
	waiters int
	cancel  context.CancelFunc
	done    chan struct{}
	ix      *repro.Index
	err     error
}

func newIndexCache(baseCtx context.Context, capacity int, reg *obs.Registry,
	build func(ctx context.Context, key cacheKey) (*repro.Index, error)) *indexCache {
	if capacity < 1 {
		capacity = 1
	}
	c := &indexCache{
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
		flights: make(map[cacheKey]*flight),
		baseCtx: baseCtx,
		build:   build,
		reg:     reg,
	}
	if reg != nil {
		reg.RegisterCounter("serve.cache.hits", &c.hits)
		reg.RegisterCounter("serve.cache.misses", &c.misses)
		reg.RegisterCounter("serve.cache.evictions", &c.evictions)
		reg.RegisterCounter("serve.cache.builds", &c.builds)
		reg.RegisterCounter("serve.cache.flight_shared", &c.shared)
		reg.RegisterCounter("serve.cache.snapshot_hits", &c.snapHits)
		reg.RegisterCounter("serve.cache.snapshot_writes", &c.snapWrites)
		reg.RegisterCounter("serve.cache.migrations", &c.migrations)
		reg.RegisterGauge("serve.cache.size", &c.size)
	}
	return c
}

// Get returns the index for key, building it (once, however many callers
// arrive concurrently) on a miss. hit reports whether the index was
// already resident. ctx bounds only this caller's wait; the build keeps
// running for the remaining waiters.
func (c *indexCache) Get(ctx context.Context, key cacheKey) (ix *repro.Index, hit bool, err error) {
	sp := c.reg.StartSpan(ctx, "cache.lookup")
	ix, hit, err = c.lookup(sp.Attach(ctx), key)
	sp.End()
	return ix, hit, err
}

// Peek returns the resident index for key without building, blocking on a
// flight, or touching the LRU order. Used by the migration path: a miss on
// (graph, v, q) first peeks for (graph, v-1, q) and replays the edit log
// instead of rebuilding.
func (c *indexCache) Peek(key cacheKey) (*repro.Index, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*cacheEntry).ix, true
	}
	return nil, false
}

func (c *indexCache) lookup(ctx context.Context, key cacheKey) (ix *repro.Index, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		ix := el.Value.(*cacheEntry).ix
		c.mu.Unlock()
		c.hits.Inc()
		return ix, true, nil
	}
	f, ok := c.flights[key]
	if ok {
		f.waiters++
		c.shared.Inc()
	} else {
		bctx, cancel := context.WithCancel(c.baseCtx)
		// The flight outlives this request's context (other waiters may
		// still need the build), but its spans should land in the trace of
		// the request that opened it — carry the SpanCtx over explicitly.
		bctx = obs.ContextWithSpan(bctx, obs.SpanFromContext(ctx))
		f = &flight{waiters: 1, cancel: cancel, done: make(chan struct{})}
		c.flights[key] = f
		c.misses.Inc()
		go c.run(bctx, key, f)
	}
	c.mu.Unlock()

	select {
	case <-f.done:
		return f.ix, false, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			select {
			case <-f.done: // build already finished; nothing to cancel
			default:
				f.cancel()
			}
		}
		c.mu.Unlock()
		return nil, false, ctx.Err()
	}
}

func (c *indexCache) run(ctx context.Context, key cacheKey, f *flight) {
	fl := c.reg.StartSpan(ctx, "cache.flight")
	ctx = fl.Attach(ctx)
	var ix *repro.Index
	var err error
	fromDisk := false
	if c.loadSnap != nil {
		sp := c.reg.StartSpan(ctx, "cache.snapshot_load")
		loaded, ok := c.loadSnap(sp.Attach(ctx), key)
		sp.End()
		if ok {
			ix, fromDisk = loaded, true
			c.snapHits.Inc()
		}
	}
	migrated := false
	if !fromDisk && c.migrate != nil {
		sp := c.reg.StartSpan(ctx, "cache.migrate")
		derived, ok := c.migrate(sp.Attach(ctx), key)
		sp.End()
		if ok {
			ix, migrated = derived, true
			c.migrations.Inc()
		}
	}
	if !fromDisk && !migrated {
		c.builds.Inc()
		sp := c.reg.StartSpan(ctx, "cache.build")
		ix, err = c.build(sp.Attach(ctx), key)
		sp.End()
		if err == nil && c.storeSnap != nil {
			sp = c.reg.StartSpan(ctx, "cache.snapshot_write")
			ok := c.storeSnap(sp.Attach(ctx), key, ix)
			sp.End()
			if ok {
				c.snapWrites.Inc()
			}
		}
	}
	fl.End()
	f.cancel() // release the context's resources
	c.mu.Lock()
	f.ix, f.err = ix, err
	delete(c.flights, key)
	if err == nil {
		c.insertLocked(key, ix)
	}
	c.mu.Unlock()
	// Wake the waiters only after the lock is dropped: close wakes every
	// blocked lookup at once, and each of them immediately re-takes c.mu —
	// closing inside the section would stampede them straight into the
	// held lock. f.ix/f.err are written before the close in program order,
	// so waiters still observe them.
	close(f.done)
}

func (c *indexCache) insertLocked(key cacheKey, ix *repro.Index) {
	if el, ok := c.entries[key]; ok { // lost a (cross-key) race; refresh
		el.Value.(*cacheEntry).ix = ix
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, ix: ix})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.size.Set(int64(c.lru.Len()))
}

// Flush drops every cached index (in-progress flights keep running and
// re-insert on completion). Returns the number of dropped entries.
func (c *indexCache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.lru.Len()
	c.lru.Init()
	clear(c.entries)
	c.size.Set(0)
	return n
}

// CacheStats is a point-in-time view of the cache, served by /v1/stats.
type CacheStats struct {
	Capacity     int   `json:"capacity"`
	Size         int   `json:"size"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
	Builds       int64 `json:"builds"`
	FlightShared int64 `json:"flight_shared"`
	// SnapshotHits counts memory misses answered by loading a disk
	// snapshot instead of building; SnapshotWrites counts write-backs of
	// freshly built indexes. Both stay 0 without Config.SnapshotDir.
	SnapshotHits   int64 `json:"snapshot_hits"`
	SnapshotWrites int64 `json:"snapshot_writes"`
	// Migrations counts misses served by replaying an edit log onto a
	// resident index of an older graph version (ApplyEdits) instead of
	// building from scratch.
	Migrations int64 `json:"migrations"`
}

func (c *indexCache) Stats() CacheStats {
	c.mu.Lock()
	size := c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Capacity:       c.cap,
		Size:           size,
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Builds:         c.builds.Load(),
		FlightShared:   c.shared.Load(),
		SnapshotHits:   c.snapHits.Load(),
		SnapshotWrites: c.snapWrites.Load(),
		Migrations:     c.migrations.Load(),
	}
}
