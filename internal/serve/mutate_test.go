package serve

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro"
)

// encodeLegacyCursor builds a pre-versioning "v1" cursor, as clients from
// before the mutation API would still hold.
func encodeLegacyCursor(queryID string, last []int) string {
	fields := []string{"v1", queryID}
	for _, v := range last {
		fields = append(fields, strconv.Itoa(v))
	}
	return base64.RawURLEncoding.EncodeToString([]byte(strings.Join(fields, " ")))
}

// mutateGraph asks the server to apply an edit batch and returns the
// response, failing on non-200.
func mutateGraph(t *testing.T, base, graph string, edits []EditSpec) MutateResponse {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/mutate", MutateRequest{Graph: graph, Edits: edits})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, data)
	}
	return mustDecode[MutateResponse](t, data)
}

// drainStream pages through /v1/enumerate from the given cursor (or the
// head when empty) and returns the concatenated solutions.
func drainStream(t *testing.T, base, id, cursor string, pageSize int) [][]int {
	t.Helper()
	var got [][]int
	for {
		url := fmt.Sprintf("%s/v1/enumerate?query=%s&limit=%d", base, id, pageSize)
		if cursor != "" {
			url = fmt.Sprintf("%s/v1/enumerate?cursor=%s&limit=%d", base, cursor, pageSize)
		}
		resp, data := getJSON(t, url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("enumerate: status %d: %s", resp.StatusCode, data)
		}
		page := mustDecode[EnumerateResponse](t, data)
		got = append(got, page.Solutions...)
		if page.Done {
			return got
		}
		cursor = page.NextCursor
	}
}

// TestMutateEndpoint: an effective batch publishes a new version whose
// answers match a from-scratch build on the patched graph, served through
// the incremental migration path rather than a rebuild.
func TestMutateEndpoint(t *testing.T) {
	s, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "E(x,y)", "x", "y")
	if qr.Version != 0 {
		t.Fatalf("fresh registration at version %d, want 0", qr.Version)
	}

	edits := []EditSpec{
		{Op: "remove_edge", U: 3, V: 4},
		{Op: "add_edge", U: 0, V: 7},
	}
	mr := mutateGraph(t, ts.URL, "path", edits)
	if mr.Version != 1 || mr.NoOp || mr.Applied != 2 {
		t.Fatalf("mutate response: %+v", mr)
	}

	// Oracle: a fresh index over the same edits applied out of band.
	g := repro.Generate("path", 80, repro.GenOptions{Colors: 2, Seed: 11})
	gNew, err := repro.PatchGraph(g, []repro.Edit{repro.RemoveEdge(3, 4), repro.AddEdge(0, 7)})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := repro.BuildIndex(gNew, repro.MustParseQuery("E(x,y)", "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	var want [][]int
	ix.Enumerate(func(sol []int) bool {
		want = append(want, append([]int(nil), sol...))
		return true
	})

	got := drainStream(t, ts.URL, qr.ID, "", 7)
	if !reflect.DeepEqual(norm(got), norm(want)) {
		t.Fatalf("post-mutation stream diverged from rebuild: got %d sols, want %d", len(got), len(want))
	}

	// The head index must have been derived by edit-log replay from the
	// resident version-0 index, not rebuilt: registration was the only
	// full build.
	cs := s.cache.Stats()
	if cs.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1 (stats %+v)", cs.Migrations, cs)
	}
	if cs.Builds != 1 {
		t.Fatalf("builds = %d, want 1 — the mutated version should migrate, not rebuild", cs.Builds)
	}

	// /v1/test and /v1/next answer at the new head.
	_, data := postJSON(t, ts.URL+"/v1/test", TupleRequest{ID: qr.ID, Tuple: []int{3, 4}})
	if tr := mustDecode[TestResponse](t, data); tr.Solution || tr.Version != 1 {
		t.Fatalf("test after removal: %+v", tr)
	}
	_, data = postJSON(t, ts.URL+"/v1/test", TupleRequest{ID: qr.ID, Tuple: []int{0, 7}})
	if tr := mustDecode[TestResponse](t, data); !tr.Solution {
		t.Fatalf("test after insertion: %+v", tr)
	}

	// Stats carries the version and retention window.
	_, data = getJSON(t, ts.URL+"/v1/stats")
	st := mustDecode[StatsResponse](t, data)
	if gst := st.Graphs["path"]; gst.Version != 1 || !reflect.DeepEqual(gst.Retained, []int{0, 1}) {
		t.Fatalf("stats graph state: %+v", gst)
	}
	if st.Graphs["path"].M != mr.M {
		t.Fatalf("stats M=%d, mutate reported M=%d", st.Graphs["path"].M, mr.M)
	}
}

// TestMutateCursorPinsVersion: a cursor minted before a mutation keeps
// paging the old snapshot — the combined stream is byte-identical to the
// unmutated stream — while cursorless requests see the new head.
func TestMutateCursorPinsVersion(t *testing.T) {
	_, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "E(x,y)", "x", "y")

	before := drainStream(t, ts.URL, qr.ID, "", 1<<20)

	// Take one small page, hold its cursor across a mutation.
	resp, data := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first page: %d: %s", resp.StatusCode, data)
	}
	first := mustDecode[EnumerateResponse](t, data)
	if first.Done || first.NextCursor == "" || first.Version != 0 {
		t.Fatalf("first page: %+v", first)
	}

	mutateGraph(t, ts.URL, "path", []EditSpec{{Op: "remove_edge", U: 10, V: 11}})

	rest := drainStream(t, ts.URL, qr.ID, first.NextCursor, 7)
	combined := append(append([][]int(nil), first.Solutions...), rest...)
	if !reflect.DeepEqual(norm(combined), norm(before)) {
		t.Fatalf("pinned stream drifted under mutation: got %d sols, want %d", len(combined), len(before))
	}

	// A cursorless enumeration reads the mutated head: the removed edge
	// is gone.
	head := drainStream(t, ts.URL, qr.ID, "", 1<<20)
	if len(head) != len(before)-2 { // undirected edge = two ordered tuples
		t.Fatalf("head stream has %d sols, want %d", len(head), len(before)-2)
	}
}

// TestMutateVersionGone: a cursor whose version has left the retention
// window answers 410 version_gone; a legacy v1 cursor (no version) is
// still accepted and resumes at the head.
func TestMutateVersionGone(t *testing.T) {
	_, ts := testServer(t, func(c *Config) { c.RetainVersions = 1 })
	qr := registerQuery(t, ts.URL, "path", "E(x,y)", "x", "y")

	resp, data := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first page: %d: %s", resp.StatusCode, data)
	}
	pinned := mustDecode[EnumerateResponse](t, data).NextCursor
	if pinned == "" {
		t.Fatal("no cursor to pin")
	}

	// Two effective mutations push version 0 out of a retain=1 window.
	mutateGraph(t, ts.URL, "path", []EditSpec{{Op: "remove_edge", U: 20, V: 21}})
	mutateGraph(t, ts.URL, "path", []EditSpec{{Op: "remove_edge", U: 30, V: 31}})

	resp, data = getJSON(t, ts.URL+"/v1/enumerate?cursor="+pinned)
	if resp.StatusCode != http.StatusGone || errCode(t, data) != ErrVersionGone {
		t.Fatalf("GC'd version: status %d, %s (want 410 %s)", resp.StatusCode, data, ErrVersionGone)
	}

	// The same position as a v1 cursor resumes — at the current head.
	_, _, last, err := decodeCursor(pinned)
	if err != nil {
		t.Fatal(err)
	}
	v1 := encodeLegacyCursor(qr.ID, last)
	resp, data = getJSON(t, ts.URL+"/v1/enumerate?cursor="+v1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 cursor: status %d: %s", resp.StatusCode, data)
	}
	if page := mustDecode[EnumerateResponse](t, data); page.Version != 2 {
		t.Fatalf("v1 cursor served at version %d, want head 2", page.Version)
	}
}

// TestMutateNoOpAndErrors: identity batches publish nothing; malformed
// batches are rejected with 400/404 before any state changes.
func TestMutateNoOpAndErrors(t *testing.T) {
	_, ts := testServer(t, nil)

	// Identity: removing an absent edge plus an add/remove pair.
	mr := mutateGraph(t, ts.URL, "path", []EditSpec{
		{Op: "remove_edge", U: 0, V: 50},
		{Op: "add_edge", U: 5, V: 60},
		{Op: "remove_edge", U: 5, V: 60},
	})
	if !mr.NoOp || mr.Version != 0 {
		t.Fatalf("identity batch: %+v", mr)
	}

	cases := []struct {
		name    string
		body    any
		status  int
		errcode string
	}{
		{"unknown graph", MutateRequest{Graph: "nope", Edits: []EditSpec{{Op: "add_edge", U: 0, V: 1}}}, http.StatusNotFound, ErrUnknownGraph},
		{"empty batch", MutateRequest{Graph: "path"}, http.StatusBadRequest, ErrBadRequest},
		{"unknown op", MutateRequest{Graph: "path", Edits: []EditSpec{{Op: "recolor", U: 0}}}, http.StatusBadRequest, ErrBadRequest},
		{"vertex out of range", MutateRequest{Graph: "path", Edits: []EditSpec{{Op: "add_edge", U: 0, V: 9999}}}, http.StatusBadRequest, ErrBadRequest},
		{"color out of range", MutateRequest{Graph: "path", Edits: []EditSpec{{Op: "add_color", U: 0, Color: 99}}}, http.StatusBadRequest, ErrBadRequest},
		{"malformed JSON", `{"graph": `, http.StatusBadRequest, ErrBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/mutate", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			if c := errCode(t, data); c != tc.errcode {
				t.Fatalf("error code %q, want %q", c, tc.errcode)
			}
		})
	}

	// A rejected batch must not have bumped the version.
	_, data := getJSON(t, ts.URL+"/v1/stats")
	if st := mustDecode[StatsResponse](t, data); st.Graphs["path"].Version != 0 {
		t.Fatalf("rejected batches changed the version: %+v", st.Graphs["path"])
	}
}

// TestMutateConcurrentReadersAndWriters hammers reads across writer
// version bumps; under -race this is the versioned serving layer's
// concurrency audit. Readers paging with pinned cursors tolerate 410
// (their version may expire) but never see a malformed stream.
func TestMutateConcurrentReadersAndWriters(t *testing.T) {
	_, ts := testServer(t, func(c *Config) { c.CacheSize = 16 })
	qr := registerQuery(t, ts.URL, "sparse", "E(x,y)", "x", "y")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cursor := ""
			for j := 0; j < 20; j++ {
				if w%2 == 0 { // pinned pagers
					url := ts.URL + "/v1/enumerate?query=" + qr.ID + "&limit=3"
					if cursor != "" {
						url = ts.URL + "/v1/enumerate?cursor=" + cursor + "&limit=3"
					}
					resp, data := getJSON(t, url)
					switch resp.StatusCode {
					case http.StatusOK:
						page := mustDecode[EnumerateResponse](t, data)
						cursor = page.NextCursor
						if page.Done {
							cursor = ""
						}
					case http.StatusGone:
						cursor = "" // version expired mid-stream: restart at head
					default:
						t.Errorf("enumerate: %d: %s", resp.StatusCode, data)
						return
					}
				} else { // point probes at the head
					resp, data := postJSON(t, ts.URL+"/v1/test", TupleRequest{ID: qr.ID, Tuple: []int{j % 60, (j * 7) % 60}})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("test: %d: %s", resp.StatusCode, data)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		u, v := (i*13)%60, (i*29+1)%60
		if u == v {
			continue
		}
		resp, data := postJSON(t, ts.URL+"/v1/mutate",
			MutateRequest{Graph: "sparse", Edits: []EditSpec{{Op: "add_edge", U: u, V: v}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: %d: %s", i, resp.StatusCode, data)
		}
	}
	wg.Wait()
}
