package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// testServer spins up a Server over a standard set of small graphs behind
// an httptest listener.
func testServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Graphs: map[string]*repro.Graph{
			"path":   repro.Generate("path", 80, repro.GenOptions{Colors: 2, Seed: 11}),
			"sparse": repro.Generate("sparserandom", 60, repro.GenOptions{Colors: 2, Seed: 5}),
			"big":    repro.Generate("grid", 3600, repro.GenOptions{Colors: 1, Seed: 3}),
		},
		Metrics: obs.New(),
	}
	if mut != nil {
		mut(&cfg)
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s) // raw payloads for malformed-JSON tests
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// mustDecode unwraps the uniform {data, error, trace_id} envelope and
// returns the typed payload, failing on error responses.
func mustDecode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var env struct {
		Data  T        `json:"data"`
		Error *errBody `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	if env.Error != nil {
		t.Fatalf("error envelope where data was expected: %s", data)
	}
	return env.Data
}

func errCode(t *testing.T, data []byte) string {
	t.Helper()
	var env struct {
		Data  json.RawMessage `json:"data"`
		Error *errBody        `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	if env.Error == nil {
		t.Fatalf("success envelope where an error was expected: %s", data)
	}
	if len(env.Data) > 0 {
		t.Fatalf("envelope carries both data and error: %s", data)
	}
	return env.Error.Code
}

// registerQuery registers a query and returns its id.
func registerQuery(t *testing.T, base, graph, query string, vars ...string) QueryResponse {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/query", QueryRequest{Graph: graph, Query: query, Vars: vars})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %q: status %d: %s", query, resp.StatusCode, data)
	}
	return mustDecode[QueryResponse](t, data)
}

func TestQueryRegisterHappyPath(t *testing.T) {
	_, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "dist(x,y) > 2 & C0(y)", "x", "y")
	if qr.Arity != 2 || qr.ID == "" || qr.Graph != "path" {
		t.Fatalf("bad response: %+v", qr)
	}
	if qr.Cached {
		t.Fatal("first registration reported cached")
	}
	// Same query, different spelling: same deterministic id, now cached.
	qr2 := registerQuery(t, ts.URL, "path", "dist(x , y)>2&C0(y)", "x", "y")
	if qr2.ID != qr.ID {
		t.Fatalf("canonicalization failed: %q vs %q", qr2.ID, qr.ID)
	}
	if !qr2.Cached {
		t.Fatal("re-registration did not hit the cache")
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := testServer(t, nil)
	cases := []struct {
		name    string
		body    any
		status  int
		errcode string
	}{
		{"malformed JSON", `{"graph": "path", `, http.StatusBadRequest, ErrBadRequest},
		{"unknown field", `{"graph":"path","nope":1}`, http.StatusBadRequest, ErrBadRequest},
		{"missing fields", QueryRequest{Graph: "path"}, http.StatusBadRequest, ErrBadRequest},
		{"unknown graph", QueryRequest{Graph: "nope", Query: "C0(x)", Vars: []string{"x"}}, http.StatusNotFound, ErrUnknownGraph},
		{"parse error", QueryRequest{Graph: "path", Query: "C0(x", Vars: []string{"x"}}, http.StatusBadRequest, ErrBadRequest},
		{"compile error", QueryRequest{Graph: "path", Query: "C0(x)", Vars: []string{"x", "x"}}, http.StatusBadRequest, ErrBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/query", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			if c := errCode(t, data); c != tc.errcode {
				t.Fatalf("error code %q, want %q", c, tc.errcode)
			}
		})
	}
}

func TestEnumerateHappyAndErrors(t *testing.T) {
	_, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "E(x,y) & C0(x)", "x", "y")

	resp, data := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	page := mustDecode[EnumerateResponse](t, data)
	if page.Count != len(page.Solutions) || page.Limit != 5 {
		t.Fatalf("bad page bookkeeping: %+v", page)
	}
	if !page.Done && page.NextCursor == "" {
		t.Fatal("undrained page without cursor")
	}

	// Unknown query id.
	resp, data = getJSON(t, ts.URL+"/v1/enumerate?query=deadbeef")
	if resp.StatusCode != http.StatusNotFound || errCode(t, data) != ErrUnknownQuery {
		t.Fatalf("unknown query: status %d, %s", resp.StatusCode, data)
	}
	// No query, no cursor.
	resp, data = getJSON(t, ts.URL+"/v1/enumerate")
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != ErrBadRequest {
		t.Fatalf("missing query: status %d, %s", resp.StatusCode, data)
	}
	// Undecodable cursor.
	resp, data = getJSON(t, ts.URL+"/v1/enumerate?cursor=%21%21%21")
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != ErrInvalidCursor {
		t.Fatalf("bad cursor: status %d, %s", resp.StatusCode, data)
	}
	// Cursor bound to a different query id than ?query=.
	other := registerQuery(t, ts.URL, "path", "C0(x)", "x")
	cur := encodeCursor(other.ID, 0, []int{0})
	resp, data = getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&cursor="+cur)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != ErrInvalidCursor {
		t.Fatalf("cross-query cursor: status %d, %s", resp.StatusCode, data)
	}
	// Cursor with wrong arity.
	cur = encodeCursor(qr.ID, 0, []int{1, 2, 3})
	resp, data = getJSON(t, ts.URL+"/v1/enumerate?cursor="+cur)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != ErrInvalidCursor {
		t.Fatalf("wrong-arity cursor: status %d, %s", resp.StatusCode, data)
	}
	// Bad limit.
	resp, data = getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=zzz")
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != ErrBadRequest {
		t.Fatalf("bad limit: status %d, %s", resp.StatusCode, data)
	}
}

func TestEnumerateLimitCap(t *testing.T) {
	_, ts := testServer(t, func(c *Config) { c.MaxLimit = 7 })
	qr := registerQuery(t, ts.URL, "path", "E(x,y)", "x", "y")
	resp, data := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=1000000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	page := mustDecode[EnumerateResponse](t, data)
	if page.Limit != 7 || len(page.Solutions) > 7 {
		t.Fatalf("limit cap not applied: limit=%d count=%d", page.Limit, page.Count)
	}
	if page.Done || page.NextCursor == "" {
		t.Fatalf("a path with 80 vertices has > 7 edges; page claims done=%v", page.Done)
	}
}

func TestTestAndNextEndpoints(t *testing.T) {
	_, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "E(x,y)", "x", "y")

	// On the path graph, (0,1) is an edge, (0,2) is not.
	resp, data := postJSON(t, ts.URL+"/v1/test", TupleRequest{ID: qr.ID, Tuple: []int{0, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("test: status %d: %s", resp.StatusCode, data)
	}
	if tr := mustDecode[TestResponse](t, data); !tr.Solution {
		t.Fatal("(0,1) should be a solution of E(x,y) on a path")
	}
	_, data = postJSON(t, ts.URL+"/v1/test", TupleRequest{ID: qr.ID, Tuple: []int{0, 2}})
	if tr := mustDecode[TestResponse](t, data); tr.Solution {
		t.Fatal("(0,2) should not be a solution of E(x,y) on a path")
	}

	resp, data = postJSON(t, ts.URL+"/v1/next", TupleRequest{ID: qr.ID, Tuple: []int{0, 0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("next: status %d: %s", resp.StatusCode, data)
	}
	nr := mustDecode[NextResponse](t, data)
	if !nr.Found || len(nr.Solution) != 2 {
		t.Fatalf("next(0,0): %+v", nr)
	}
	if nr.Solution[0] != 0 || nr.Solution[1] != 1 {
		t.Fatalf("next(0,0) = %v, want [0 1]", nr.Solution)
	}

	// Errors: unknown id, wrong arity, out-of-range component.
	resp, data = postJSON(t, ts.URL+"/v1/test", TupleRequest{ID: "nope", Tuple: []int{0, 1}})
	if resp.StatusCode != http.StatusNotFound || errCode(t, data) != ErrUnknownQuery {
		t.Fatalf("unknown id: status %d, %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/test", TupleRequest{ID: qr.ID, Tuple: []int{0}})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != ErrBadRequest {
		t.Fatalf("wrong arity: status %d, %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/next", TupleRequest{ID: qr.ID, Tuple: []int{0, 10_000}})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != ErrBadRequest {
		t.Fatalf("out of range: status %d, %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/next", `{"id": 5}`)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != ErrBadRequest {
		t.Fatalf("malformed body: status %d, %s", resp.StatusCode, data)
	}
}

func TestStatsAndFlush(t *testing.T) {
	_, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "C0(x)", "x")

	resp, data := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", resp.StatusCode, data)
	}
	st := mustDecode[StatsResponse](t, data)
	if _, ok := st.Graphs["path"]; !ok || len(st.Graphs) != 3 {
		t.Fatalf("stats graphs: %+v", st.Graphs)
	}
	if len(st.Queries) != 1 || st.Queries[0].ID != qr.ID {
		t.Fatalf("stats queries: %+v", st.Queries)
	}
	if st.Cache.Builds != 1 || st.Cache.Size != 1 {
		t.Fatalf("stats cache: %+v", st.Cache)
	}
	if len(st.Metrics) == 0 || !strings.Contains(string(st.Metrics), "serve.http.query_ns") {
		t.Fatal("stats is missing the metrics snapshot")
	}

	resp, data = postJSON(t, ts.URL+"/v1/cache/flush", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d: %s", resp.StatusCode, data)
	}
	if fr := mustDecode[FlushResponse](t, data); fr.Flushed != 1 {
		t.Fatalf("flushed %d entries, want 1", fr.Flushed)
	}
	// The query survives the flush; the next page transparently rebuilds.
	resp, data = getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-flush enumerate: status %d: %s", resp.StatusCode, data)
	}
}

func TestDebugMetricsExposed(t *testing.T) {
	_, ts := testServer(t, nil)
	resp, data := getJSON(t, ts.URL+"/debug/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/metrics: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("/debug/metrics is not a snapshot: %v", err)
	}
}

// TestDeadlineExceededDuringBuild: a request whose deadline is far shorter
// than the build aborts with 504 deadline_exceeded, and — its flight
// having lost its only waiter — the underlying build is canceled through
// the core checkpoints. A later request rebuilds successfully.
func TestDeadlineExceededDuringBuild(t *testing.T) {
	_, ts := testServer(t, nil)
	body := QueryRequest{Graph: "big", Query: "dist(x,y) > 2 & C0(y)", Vars: []string{"x", "y"}}
	resp, data := postJSON(t, ts.URL+"/v1/query?timeout_ms=1", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
	if c := errCode(t, data); c != ErrDeadlineExceeded {
		t.Fatalf("error code %q, want %q", c, ErrDeadlineExceeded)
	}
	// The canceled flight must not poison the key: an unhurried retry
	// succeeds and builds fresh.
	resp, data = postJSON(t, ts.URL+"/v1/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after canceled build: status %d: %s", resp.StatusCode, data)
	}
}

// TestSingleflightStress: N concurrent registrations of the same uncached
// query must trigger exactly one build.
func TestSingleflightStress(t *testing.T) {
	s, ts := testServer(t, nil)
	const clients = 24
	body, _ := json.Marshal(QueryRequest{Graph: "big", Query: "E(x,y) & C0(x)", Vars: []string{"x", "y"}})

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	start.Done()
	done.Wait()

	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("client %d: status %d", i, c)
		}
	}
	cs := s.cache.Stats()
	if cs.Builds != 1 {
		t.Fatalf("singleflight failed: %d builds for %d concurrent clients (stats %+v)", cs.Builds, clients, cs)
	}
	if cs.FlightShared+cs.Hits != clients-1 {
		t.Fatalf("accounting: shared %d + hits %d != %d", cs.FlightShared, cs.Hits, clients-1)
	}
}

// TestConcurrentMixedTraffic hammers every endpoint at once; run under
// -race this doubles as the serving layer's concurrency audit.
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts := testServer(t, func(c *Config) { c.CacheSize = 2 })
	q1 := registerQuery(t, ts.URL, "path", "E(x,y)", "x", "y")
	q2 := registerQuery(t, ts.URL, "sparse", "C0(x)", "x")
	q3 := registerQuery(t, ts.URL, "path", "dist(x,y) > 2 & C0(y)", "x", "y")
	ids := []string{q1.ID, q2.ID, q3.ID}

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i%len(ids)]
			for j := 0; j < 15; j++ {
				switch j % 5 {
				case 0:
					resp, _ := getJSON(t, ts.URL+"/v1/enumerate?query="+id+"&limit=4")
					if resp.StatusCode != http.StatusOK {
						t.Errorf("enumerate: %d", resp.StatusCode)
					}
				case 1:
					resp, _ := postJSON(t, ts.URL+"/v1/test", TupleRequest{ID: id, Tuple: make([]int, lenOf(id, ids, 2, 1, 2))})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("test: %d", resp.StatusCode)
					}
				case 2:
					resp, _ := getJSON(t, ts.URL+"/v1/stats")
					if resp.StatusCode != http.StatusOK {
						t.Errorf("stats: %d", resp.StatusCode)
					}
				case 3:
					resp, _ := postJSON(t, ts.URL+"/v1/cache/flush", `{}`)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("flush: %d", resp.StatusCode)
					}
				case 4:
					resp, _ := postJSON(t, ts.URL+"/v1/next", TupleRequest{ID: id, Tuple: make([]int, lenOf(id, ids, 2, 1, 2))})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("next: %d", resp.StatusCode)
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// lenOf maps a query id back to its arity for tuple construction.
func lenOf(id string, ids []string, arities ...int) int {
	for i, x := range ids {
		if x == id {
			return arities[i]
		}
	}
	return 1
}

// TestGracefulShutdown: requests in flight before Shutdown complete;
// requests after it get 503 shutting_down.
func TestGracefulShutdown(t *testing.T) {
	s, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "E(x,y)", "x", "y")

	// Occupy the server with a slow-ish page stream, then shut down.
	done := make(chan int, 1)
	go func() {
		resp, _ := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=100000")
		done <- resp.StatusCode
	}()
	time.Sleep(20 * time.Millisecond) // let the request enter

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code := <-done; code != http.StatusOK && code != http.StatusServiceUnavailable {
		t.Fatalf("in-flight request: status %d", code)
	}
	resp, data := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, data) != ErrShuttingDown {
		t.Fatalf("post-shutdown request: status %d, %s", resp.StatusCode, data)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

