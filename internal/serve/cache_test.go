package serve

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// stubIndex returns a trivially buildable index for cache unit tests.
func stubIndex(t *testing.T) *repro.Index {
	t.Helper()
	g := repro.Generate("path", 10, repro.GenOptions{Colors: 1, Seed: 1})
	ix, err := repro.BuildIndex(g, repro.MustParseQuery("C0(x)", "x"))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestCacheLRUEviction(t *testing.T) {
	ix := stubIndex(t)
	var builds atomic.Int64
	c := newIndexCache(context.Background(), 2, nil, func(ctx context.Context, key cacheKey) (*repro.Index, error) {
		builds.Add(1)
		return ix, nil
	})
	key := func(i int) cacheKey { return cacheKey{graph: "g", canonical: fmt.Sprint(i)} }

	get := func(i int) bool {
		t.Helper()
		_, hit, err := c.Get(context.Background(), key(i))
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	get(1) // miss: {1}
	get(2) // miss: {2 1}
	if !get(1) {
		t.Fatal("1 should be cached") // {1 2}
	}
	get(3) // miss, evicts 2: {3 1}
	if get(2) {
		t.Fatal("2 should have been the LRU victim")
	}
	st := c.Stats()
	if st.Builds != 4 || st.Evictions != 2 || st.Size != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if c.Flush() != 2 {
		t.Fatal("flush should drop both entries")
	}
	if c.Stats().Size != 0 {
		t.Fatal("size after flush")
	}
	if get(1) {
		t.Fatal("1 should rebuild after flush")
	}
}

func TestCacheSingleflightSharesOneBuild(t *testing.T) {
	ix := stubIndex(t)
	var builds atomic.Int64
	release := make(chan struct{})
	c := newIndexCache(context.Background(), 4, nil, func(ctx context.Context, key cacheKey) (*repro.Index, error) {
		builds.Add(1)
		<-release
		return ix, nil
	})

	const waiters = 10
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := c.Get(context.Background(), cacheKey{graph: "g", canonical: "q"})
			if err != nil || got != ix {
				t.Errorf("Get: %v %v", got, err)
			}
		}()
	}
	// Wait until every goroutine joined the flight, then release the build.
	deadline := time.After(2 * time.Second)
	for c.Stats().FlightShared < waiters-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d waiters joined", c.Stats().FlightShared)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds, want 1", n)
	}
}

// TestCacheBuildCanceledWhenAllWaitersLeave: once the last waiter's
// context expires, the build context is canceled; the failed flight is
// not cached and a retry rebuilds.
func TestCacheBuildCanceledWhenAllWaitersLeave(t *testing.T) {
	ix := stubIndex(t)
	var builds atomic.Int64
	canceled := make(chan struct{})
	c := newIndexCache(context.Background(), 4, nil, func(ctx context.Context, key cacheKey) (*repro.Index, error) {
		if builds.Add(1) == 1 {
			<-ctx.Done() // simulate a long build interrupted at a checkpoint
			close(canceled)
			return nil, ctx.Err()
		}
		return ix, nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.Get(ctx, cacheKey{graph: "g", canonical: "q"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter error %v, want DeadlineExceeded", err)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("build context was never canceled")
	}
	// Retry rebuilds (the canceled flight did not poison the key).
	got, _, err := c.Get(context.Background(), cacheKey{graph: "g", canonical: "q"})
	if err != nil || got != ix {
		t.Fatalf("retry: %v %v", got, err)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("%d builds, want 2", n)
	}
}

// TestCacheAbandonedSuccessIsCached: a build whose waiters all left but
// which completes before noticing cancellation still lands in the cache.
func TestCacheAbandonedSuccessIsCached(t *testing.T) {
	ix := stubIndex(t)
	var builds atomic.Int64
	started := make(chan struct{})
	finish := make(chan struct{})
	c := newIndexCache(context.Background(), 4, nil, func(ctx context.Context, key cacheKey) (*repro.Index, error) {
		builds.Add(1)
		close(started)
		<-finish // ignore ctx: a build between checkpoints can't be stopped
		return ix, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel() // abandon the only waiter
	}()
	if _, _, err := c.Get(ctx, cacheKey{graph: "g", canonical: "q"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error %v, want Canceled", err)
	}
	close(finish)
	// The orphaned result must become visible as a cache hit.
	deadline := time.After(2 * time.Second)
	for {
		_, hit, err := c.Get(context.Background(), cacheKey{graph: "g", canonical: "q"})
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			break
		}
		select {
		case <-deadline:
			t.Fatal("orphaned successful build never cached")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if n := builds.Load(); n > 2 {
		t.Fatalf("%d builds for one abandoned flight + polling hits", n)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	for _, tup := range [][]int{{0}, {1, 2}, {0, 0, 0}, {999999, 0, 31}} {
		for _, ver := range []int{0, 1, 37} {
			cur := encodeCursor("abc123", ver, tup)
			id, gotVer, got, err := decodeCursor(cur)
			if err != nil {
				t.Fatalf("decode(%v@%d): %v", tup, ver, err)
			}
			if id != "abc123" || gotVer != ver || !tupleEqual(got, tup) {
				t.Fatalf("round trip %v@%d -> %q @%d %v", tup, ver, id, gotVer, got)
			}
		}
	}
	// Legacy v1 cursors ("v1 <id> <tuple...>") decode to cursorHead: they
	// predate versioned graphs and resume at the current head.
	v1 := base64.RawURLEncoding.EncodeToString([]byte("v1 abc123 4 7"))
	id, ver, got, err := decodeCursor(v1)
	if err != nil {
		t.Fatalf("v1 cursor rejected: %v", err)
	}
	if id != "abc123" || ver != cursorHead || !tupleEqual(got, []int{4, 7}) {
		t.Fatalf("v1 cursor decoded to %q @%d %v", id, ver, got)
	}
	for _, bad := range []string{
		"", "!!!", "djEgYQ",
		encodeCursor("q", 0, nil),                                 // v2 with no tuple
		base64.RawURLEncoding.EncodeToString([]byte("v2 q -3 1")), // negative version
		base64.RawURLEncoding.EncodeToString([]byte("v3 q 0 1")),  // unknown format
	} {
		if _, _, _, err := decodeCursor(bad); err == nil {
			t.Fatalf("decode(%q) accepted", bad)
		}
	}
}
