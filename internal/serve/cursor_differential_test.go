package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro"
	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/graph"
)

// TestCursorPagingDifferential is the cursor correctness property test:
// for a grid of random graphs and queries, paging through /v1/enumerate
// with page sizes 1, 2, 7 and ∞ — flushing the index cache mid-stream so
// the cursor must survive eviction and rebuild — reproduces exactly the
// Index.Enumerate stream, which itself is checked against the naive
// materialize-everything oracle.
func TestCursorPagingDifferential(t *testing.T) {
	graphs := map[string]*repro.Graph{
		"path":   repro.Generate("path", 60, repro.GenOptions{Colors: 2, Seed: 3}),
		"sparse": repro.Generate("sparserandom", 48, repro.GenOptions{Colors: 2, Seed: 9}),
		"tree":   repro.Generate("btree", 63, repro.GenOptions{Colors: 2, Seed: 4}),
		"tiny":   repro.Generate("cycle", 24, repro.GenOptions{Colors: 2, Seed: 8}),
	}
	queries := []struct {
		src  string
		vars []string
	}{
		{"C0(x)", []string{"x"}},
		{"E(x,y)", []string{"x", "y"}},
		{"dist(x,y) > 2 & C0(y)", []string{"x", "y"}},
		{"C0(x) & ~(exists z (dist(x,z) <= 2 & C1(z)))", []string{"x"}},
		{"exists z (E(x,z) & E(z,y)) | x = y", []string{"x", "y"}},
	}
	// Arity-3 only on the smallest graph: the oracle is Θ(n³·eval).
	triple := struct {
		src  string
		vars []string
	}{"dist(x,z) > 2 & dist(y,z) > 2 & C0(z)", []string{"x", "y", "z"}}

	cfg := Config{Graphs: graphs, CacheSize: 2, MaxLimit: 1 << 30, DefaultLimit: 50}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pageSizes := []int{1, 2, 7, 1 << 29} // 1<<29 ≡ ∞: one page swallows everything

	for gname, g := range graphs {
		for _, qc := range queries {
			t.Run(fmt.Sprintf("%s/%s", gname, qc.src), func(t *testing.T) {
				checkPaging(t, ts.URL, s, g, gname, qc.src, qc.vars, pageSizes)
			})
		}
	}
	t.Run("tiny/"+triple.src, func(t *testing.T) {
		checkPaging(t, ts.URL, s, graphs["tiny"], "tiny", triple.src, triple.vars, pageSizes)
	})
}

// facadeEngine adapts *repro.Index to the conformance kit's engine
// contract (the facade names Theorem 2.3 "Next" where the internal
// engines say "NextGeq").
type facadeEngine struct{ ix *repro.Index }

func (f facadeEngine) NextGeq(a []graph.V) ([]graph.V, bool) { return f.ix.Next(a) }
func (f facadeEngine) Test(a []graph.V) bool                 { return f.ix.Test(a) }
func (f facadeEngine) Enumerate(y func([]graph.V) bool)      { f.ix.Enumerate(y) }
func (f facadeEngine) Count() int                            { return f.ix.Count() }
func (f facadeEngine) NextLast(p []graph.V, b graph.V) (graph.V, bool) {
	return f.ix.NextLast(p, b)
}

func checkPaging(t *testing.T, base string, s *Server, g *repro.Graph, gname, src string, vars []string, pageSizes []int) {
	// Oracle: the shared conformance kit ties the facade index all the way
	// back to the formula semantics (naive materialization) across the full
	// engine contract, then its sorted solution list is the acceptance bar
	// the paged HTTP stream must reproduce byte for byte.
	q := repro.MustParseQuery(src, vars...)
	fvars := make([]fo.Var, len(vars))
	for i, v := range vars {
		fvars[i] = fo.Var(v)
	}
	lq, err := core.Compile(q.Phi, fvars, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := repro.BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	want := conform.NewNaive(g, lq).Solutions()
	sys := conform.System{
		Name: gname + "/facade", Engine: facadeEngine{ix}, K: len(vars), N: g.N(),
		NewCursor: func(a []graph.V) conform.Cursor { return ix.IteratorFrom(a) },
	}
	if err := conform.CheckAll(sys, want); err != nil {
		t.Fatal(err)
	}

	qr := registerQuery(t, base, gname, src, vars...)
	for _, pageSize := range pageSizes {
		var got [][]int
		cursor := ""
		pages := 0
		for {
			url := fmt.Sprintf("%s/v1/enumerate?query=%s&limit=%d", base, qr.ID, pageSize)
			if cursor != "" {
				url += "&cursor=" + cursor
			}
			resp, data := getJSON(t, url)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("page %d: status %d: %s", pages, resp.StatusCode, data)
			}
			page := mustDecode[EnumerateResponse](t, data)
			got = append(got, page.Solutions...)
			pages++
			if page.Done {
				break
			}
			if page.NextCursor == "" {
				t.Fatalf("page %d: not done but no cursor", pages)
			}
			cursor = page.NextCursor
			// Every third page boundary, drop every cached index: the
			// resumed cursor must survive eviction + rebuild bit for bit.
			if pages%3 == 0 {
				s.cache.Flush()
			}
			if pages > len(want)+2 {
				t.Fatalf("paging does not terminate (%d pages for %d solutions)", pages, len(want))
			}
		}
		if !reflect.DeepEqual(norm(got), norm(want)) {
			t.Fatalf("page size %d: paged stream (%d sols) != Enumerate stream (%d sols)\n got: %v\nwant: %v",
				pageSize, len(got), len(want), got, want)
		}
	}
}

// norm maps nil to an empty slice so DeepEqual compares streams, not
// JSON-decoding artifacts.
func norm(s [][]int) [][]int {
	if s == nil {
		return [][]int{}
	}
	return s
}
