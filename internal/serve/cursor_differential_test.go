package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro"
	"repro/internal/fo"
	"repro/internal/naive"
)

// TestCursorPagingDifferential is the cursor correctness property test:
// for a grid of random graphs and queries, paging through /v1/enumerate
// with page sizes 1, 2, 7 and ∞ — flushing the index cache mid-stream so
// the cursor must survive eviction and rebuild — reproduces exactly the
// Index.Enumerate stream, which itself is checked against the naive
// materialize-everything oracle.
func TestCursorPagingDifferential(t *testing.T) {
	graphs := map[string]*repro.Graph{
		"path":   repro.Generate("path", 60, repro.GenOptions{Colors: 2, Seed: 3}),
		"sparse": repro.Generate("sparserandom", 48, repro.GenOptions{Colors: 2, Seed: 9}),
		"tree":   repro.Generate("btree", 63, repro.GenOptions{Colors: 2, Seed: 4}),
		"tiny":   repro.Generate("cycle", 24, repro.GenOptions{Colors: 2, Seed: 8}),
	}
	queries := []struct {
		src  string
		vars []string
	}{
		{"C0(x)", []string{"x"}},
		{"E(x,y)", []string{"x", "y"}},
		{"dist(x,y) > 2 & C0(y)", []string{"x", "y"}},
		{"C0(x) & ~(exists z (dist(x,z) <= 2 & C1(z)))", []string{"x"}},
		{"exists z (E(x,z) & E(z,y)) | x = y", []string{"x", "y"}},
	}
	// Arity-3 only on the smallest graph: the oracle is Θ(n³·eval).
	triple := struct {
		src  string
		vars []string
	}{"dist(x,z) > 2 & dist(y,z) > 2 & C0(z)", []string{"x", "y", "z"}}

	cfg := Config{Graphs: graphs, CacheSize: 2, MaxLimit: 1 << 30, DefaultLimit: 50}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pageSizes := []int{1, 2, 7, 1 << 29} // 1<<29 ≡ ∞: one page swallows everything

	for gname, g := range graphs {
		for _, qc := range queries {
			t.Run(fmt.Sprintf("%s/%s", gname, qc.src), func(t *testing.T) {
				checkPaging(t, ts.URL, s, g, gname, qc.src, qc.vars, pageSizes)
			})
		}
	}
	t.Run("tiny/"+triple.src, func(t *testing.T) {
		checkPaging(t, ts.URL, s, graphs["tiny"], "tiny", triple.src, triple.vars, pageSizes)
	})
}

func checkPaging(t *testing.T, base string, s *Server, g *repro.Graph, gname, src string, vars []string, pageSizes []int) {
	// Oracle 1: the index's own Enumerate stream (the acceptance bar:
	// byte-identical pagination).
	q := repro.MustParseQuery(src, vars...)
	ix, err := repro.BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]int
	ix.Enumerate(func(sol []int) bool {
		want = append(want, append([]int(nil), sol...))
		return true
	})

	// Oracle 2: naive materialization agrees with Enumerate (ties the API
	// stream all the way back to the formula semantics).
	fvars := make([]fo.Var, len(vars))
	for i, v := range vars {
		fvars[i] = fo.Var(v)
	}
	naiveSols := naive.Solutions(g, q.Phi, fvars)
	if len(naiveSols) != len(want) {
		t.Fatalf("Enumerate (%d sols) disagrees with naive oracle (%d sols)", len(want), len(naiveSols))
	}
	for i := range want {
		if !tupleEqual(want[i], naiveSols[i]) {
			t.Fatalf("solution %d: Enumerate %v != naive %v", i, want[i], naiveSols[i])
		}
	}

	qr := registerQuery(t, base, gname, src, vars...)
	for _, pageSize := range pageSizes {
		var got [][]int
		cursor := ""
		pages := 0
		for {
			url := fmt.Sprintf("%s/v1/enumerate?query=%s&limit=%d", base, qr.ID, pageSize)
			if cursor != "" {
				url += "&cursor=" + cursor
			}
			resp, data := getJSON(t, url)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("page %d: status %d: %s", pages, resp.StatusCode, data)
			}
			page := mustDecode[EnumerateResponse](t, data)
			got = append(got, page.Solutions...)
			pages++
			if page.Done {
				break
			}
			if page.NextCursor == "" {
				t.Fatalf("page %d: not done but no cursor", pages)
			}
			cursor = page.NextCursor
			// Every third page boundary, drop every cached index: the
			// resumed cursor must survive eviction + rebuild bit for bit.
			if pages%3 == 0 {
				s.cache.Flush()
			}
			if pages > len(want)+2 {
				t.Fatalf("paging does not terminate (%d pages for %d solutions)", pages, len(want))
			}
		}
		if !reflect.DeepEqual(norm(got), norm(want)) {
			t.Fatalf("page size %d: paged stream (%d sols) != Enumerate stream (%d sols)\n got: %v\nwant: %v",
				pageSize, len(got), len(want), got, want)
		}
	}
}

// norm maps nil to an empty slice so DeepEqual compares streams, not
// JSON-decoding artifacts.
func norm(s [][]int) [][]int {
	if s == nil {
		return [][]int{}
	}
	return s
}
