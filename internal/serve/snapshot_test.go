package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
	"repro/internal/obs"
)

// The disk-tier tests drive the full HTTP surface against a server with
// Config.SnapshotDir set, checking the three-tier contract: memory LRU →
// disk snapshot → build, with the singleflight covering both lower tiers
// and write-back after every build.

// snapGraph regenerates the exact graph snapTestServer serves, for
// out-of-band index builds that must fingerprint-match it.
func snapGraph() *repro.Graph {
	return repro.Generate("path", 80, repro.GenOptions{Colors: 2, Seed: 11})
}

func snapTestServer(t *testing.T, dir string) (*Server, string) {
	t.Helper()
	s := NewServer(Config{
		Graphs:      map[string]*repro.Graph{"path": snapGraph()},
		SnapshotDir: dir,
		Metrics:     obs.New(),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

const snapTestQuery = "dist(x,y) > 2 & C0(y)"

// TestSnapshotTierWriteBack: a cold registration on an empty directory
// builds once and persists the snapshot for the next process.
func TestSnapshotTierWriteBack(t *testing.T) {
	dir := t.TempDir()
	s, ts := snapTestServer(t, dir)
	qr := registerQuery(t, ts, "path", snapTestQuery, "x", "y")

	st := s.cache.Stats()
	if st.Builds != 1 || st.SnapshotHits != 0 || st.SnapshotWrites != 1 {
		t.Fatalf("cold register: builds=%d snapHits=%d snapWrites=%d, want 1/0/1",
			st.Builds, st.SnapshotHits, st.SnapshotWrites)
	}
	path := filepath.Join(dir, qr.ID+".fodsnap")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("write-back left no snapshot at %s: %v", path, err)
	}
	// The written file is keyed by the same deterministic id the API
	// returned, and round-trips through the out-of-band loader.
	if _, err := repro.LoadIndexSnapshot(path); err != nil {
		t.Fatalf("written snapshot does not load: %v", err)
	}
}

// TestSnapshotTierColdStart: a directory seeded by a previous run (here:
// an out-of-band build, as fodsnap build would produce) serves the first
// request from disk — zero builds.
func TestSnapshotTierColdStart(t *testing.T) {
	dir := t.TempDir()
	q, err := repro.ParseQuery(snapTestQuery, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := repro.BuildIndex(snapGraph(), q)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, queryID("path", q.Canonical())+".fodsnap")
	if err := repro.SaveIndexSnapshot(ix, path); err != nil {
		t.Fatal(err)
	}

	s, ts := snapTestServer(t, dir)
	registerQuery(t, ts, "path", snapTestQuery, "x", "y")
	st := s.cache.Stats()
	if st.Builds != 0 || st.SnapshotHits != 1 {
		t.Fatalf("seeded cold start: builds=%d snapHits=%d, want 0/1", st.Builds, st.SnapshotHits)
	}

	// The disk-loaded index must answer exactly like a fresh build.
	var want [][]int
	ix.Enumerate(func(sol []int) bool {
		want = append(want, append([]int(nil), sol...))
		return len(want) < 50
	})
	resp, data := getJSON(t, ts+"/v1/enumerate?query="+queryID("path", q.Canonical())+"&limit=50")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enumerate over loaded index: status %d: %s", resp.StatusCode, data)
	}
	er := mustDecode[EnumerateResponse](t, data)
	if len(er.Solutions) != len(want) {
		t.Fatalf("loaded index returned %d solutions, fresh build %d", len(er.Solutions), len(want))
	}
	for i := range want {
		if !tupleEqual(er.Solutions[i], want[i]) {
			t.Fatalf("solution %d: loaded %v, fresh %v", i, er.Solutions[i], want[i])
		}
	}
}

// TestSnapshotTierConcurrentSingleflight: N concurrent registrations of
// the same uncached query share one flight across BOTH lower tiers — one
// disk probe, one build, one write-back.
func TestSnapshotTierConcurrentSingleflight(t *testing.T) {
	dir := t.TempDir()
	s, ts := snapTestServer(t, dir)

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts+"/v1/query",
				QueryRequest{Graph: "path", Query: snapTestQuery, Vars: []string{"x", "y"}})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := s.cache.Stats()
	if st.Builds != 1 {
		t.Fatalf("%d concurrent registrations ran %d builds, want 1", n, st.Builds)
	}
	if st.SnapshotWrites != 1 {
		t.Fatalf("%d concurrent registrations wrote %d snapshots, want 1", n, st.SnapshotWrites)
	}
	if st.Misses != 1 {
		t.Fatalf("%d concurrent registrations counted %d misses, want 1 (singleflight)", n, st.Misses)
	}
}

// TestSnapshotTierFlushKeepsDisk: flushing the memory tier does not touch
// the disk tier — the next request reloads from the snapshot instead of
// rebuilding.
func TestSnapshotTierFlushKeepsDisk(t *testing.T) {
	dir := t.TempDir()
	s, ts := snapTestServer(t, dir)
	registerQuery(t, ts, "path", snapTestQuery, "x", "y")

	resp, data := postJSON(t, ts+"/v1/cache/flush", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d: %s", resp.StatusCode, data)
	}
	if fr := mustDecode[FlushResponse](t, data); fr.Flushed != 1 {
		t.Fatalf("flushed %d entries, want 1", fr.Flushed)
	}

	registerQuery(t, ts, "path", snapTestQuery, "x", "y")
	st := s.cache.Stats()
	if st.Builds != 1 {
		t.Fatalf("post-flush registration rebuilt (builds=%d), want disk reload", st.Builds)
	}
	if st.SnapshotHits != 1 {
		t.Fatalf("post-flush registration had %d snapshot hits, want 1", st.SnapshotHits)
	}
}

// TestSnapshotTierRejectsForeignAndCorrupt: a snapshot from a different
// graph and a corrupted file are both refused and fall back to building —
// never served, and counted under distinct metrics.
func TestSnapshotTierRejectsForeignAndCorrupt(t *testing.T) {
	t.Run("foreign graph", func(t *testing.T) {
		dir := t.TempDir()
		q, err := repro.ParseQuery(snapTestQuery, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		other := repro.Generate("path", 80, repro.GenOptions{Colors: 2, Seed: 12}) // different seed
		ix, err := repro.BuildIndex(other, q)
		if err != nil {
			t.Fatal(err)
		}
		if err := repro.SaveIndexSnapshot(ix, filepath.Join(dir, queryID("path", q.Canonical())+".fodsnap")); err != nil {
			t.Fatal(err)
		}

		s, ts := snapTestServer(t, dir)
		registerQuery(t, ts, "path", snapTestQuery, "x", "y")
		st := s.cache.Stats()
		if st.Builds != 1 || st.SnapshotHits != 0 {
			t.Fatalf("foreign snapshot: builds=%d snapHits=%d, want 1/0", st.Builds, st.SnapshotHits)
		}
		if got := s.reg.Counter("serve.snapshot.mismatch").Load(); got != 1 {
			t.Fatalf("mismatch counter = %d, want 1", got)
		}
	})

	t.Run("corrupt file", func(t *testing.T) {
		dir := t.TempDir()
		q, err := repro.ParseQuery(snapTestQuery, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, queryID("path", q.Canonical())+".fodsnap")
		if err := os.WriteFile(path, []byte("FODSNAP1 but then garbage"), 0o644); err != nil {
			t.Fatal(err)
		}

		s, ts := snapTestServer(t, dir)
		registerQuery(t, ts, "path", snapTestQuery, "x", "y")
		st := s.cache.Stats()
		if st.Builds != 1 || st.SnapshotHits != 0 {
			t.Fatalf("corrupt snapshot: builds=%d snapHits=%d, want 1/0", st.Builds, st.SnapshotHits)
		}
		if got := s.reg.Counter("serve.snapshot.corrupt").Load(); got != 1 {
			t.Fatalf("corrupt counter = %d, want 1", got)
		}
		// The build must have overwritten the bad file with a good one.
		if _, err := repro.LoadIndexSnapshot(path); err != nil {
			t.Fatalf("write-back did not repair the corrupt file: %v", err)
		}
	})
}
