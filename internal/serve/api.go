package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
)

// The wire types of the /v1 JSON API. Every error response is the
// envelope {"error": {"code": ..., "message": ...}} with a matching HTTP
// status; every success response is one of the *Response types below.

// QueryRequest registers (and warms) a query against a loaded graph.
type QueryRequest struct {
	// Graph names a graph loaded or generated at server start.
	Graph string `json:"graph"`
	// Query is the FO⁺ query text, e.g. "dist(x,y) > 2 & C0(y)".
	Query string `json:"query"`
	// Vars fixes the output-column order, e.g. ["x","y"].
	Vars []string `json:"vars"`
}

// QueryResponse describes a registered query. ID is deterministic — the
// same (graph, canonical query) always yields the same id, across
// restarts — so clients can hold on to ids and cursors statelessly.
type QueryResponse struct {
	ID        string `json:"id"`
	Graph     string `json:"graph"`
	Canonical string `json:"canonical"`
	Arity     int    `json:"arity"`
	// Cached reports whether the index was already resident; BuildNS is
	// the wall time this request spent obtaining it (≈0 on a cache hit,
	// shared across concurrent requests by singleflight on a miss).
	Cached  bool  `json:"cached"`
	BuildNS int64 `json:"build_ns"`
}

// EnumerateResponse is one page of the solution stream in lexicographic
// order. NextCursor is opaque; pass it back to /v1/enumerate to resume
// after the last tuple of this page in constant time (Theorem 2.3). Done
// means the stream is exhausted (NextCursor empty).
type EnumerateResponse struct {
	ID         string  `json:"id"`
	Solutions  [][]int `json:"solutions"`
	Count      int     `json:"count"`
	Limit      int     `json:"limit"`
	NextCursor string  `json:"next_cursor,omitempty"`
	Done       bool    `json:"done"`
}

// TupleRequest addresses one tuple of a registered query (for /v1/test
// and /v1/next).
type TupleRequest struct {
	ID    string `json:"id"`
	Tuple []int  `json:"tuple"`
}

// TestResponse answers Corollary 2.4: is the tuple a solution?
type TestResponse struct {
	ID       string `json:"id"`
	Tuple    []int  `json:"tuple"`
	Solution bool   `json:"solution"`
}

// NextResponse answers Theorem 2.3: the smallest solution ≥ the tuple.
type NextResponse struct {
	ID       string `json:"id"`
	Solution []int  `json:"solution,omitempty"`
	Found    bool   `json:"found"`
}

// FlushResponse reports how many cached indexes POST /v1/cache/flush
// dropped.
type FlushResponse struct {
	Flushed int `json:"flushed"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	Graphs  map[string]GraphStats `json:"graphs"`
	Queries []QueryStats          `json:"queries"`
	Cache   CacheStats            `json:"cache"`
	// Metrics is the full obs registry snapshot (per-endpoint latency
	// histograms, cache counters, in-flight gauge, engine internals of
	// resident indexes); omitted when the server runs unmetered.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// GraphStats describes one loaded graph.
type GraphStats struct {
	N      int `json:"n"`
	M      int `json:"m"`
	Colors int `json:"colors"`
}

// QueryStats describes one registered query.
type QueryStats struct {
	ID        string `json:"id"`
	Graph     string `json:"graph"`
	Canonical string `json:"canonical"`
	Arity     int    `json:"arity"`
}

// Error codes of the API.
const (
	ErrBadRequest       = "bad_request"       // malformed JSON, bad params, bad tuple
	ErrUnknownGraph     = "unknown_graph"     // graph name not loaded
	ErrUnknownQuery     = "unknown_query"     // query id never registered
	ErrInvalidCursor    = "invalid_cursor"    // cursor undecodable or for another query
	ErrDeadlineExceeded = "deadline_exceeded" // request deadline hit (build or page)
	ErrShuttingDown     = "shutting_down"     // server is draining
	ErrInternal         = "internal"          // build failure or other server error
)

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errEnvelope struct {
	Error errBody `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode to a buffer first: a marshal failure discovered after
	// WriteHeader would leave the client a truncated 200 body.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes()) //fod:errok — the client hung up; there is no one left to tell
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errEnvelope{Error: errBody{Code: code, Message: msg}})
}
