package serve

import (
	"bytes"
	"encoding/json"
	"net/http"

	"repro"
	"repro/internal/obs"
)

// The wire types of the /v1 JSON API. Every response — success or failure —
// is the uniform envelope
//
//	{"data": <payload>, "trace_id": "..."}            on success
//	{"error": {"code": ..., "message": ...}, "trace_id": "..."}  on failure
//
// with a matching HTTP status. trace_id is the request's trace (present
// whenever the server runs with a Tracer), so a client error report can be
// joined against /debug/traces and the structured log without guesswork.
// The payload of a success is one of the *Response types below.

// QueryRequest registers (and warms) a query against a loaded graph.
type QueryRequest struct {
	// Graph names a graph loaded or generated at server start.
	Graph string `json:"graph"`
	// Query is the FO⁺ query text, e.g. "dist(x,y) > 2 & C0(y)".
	Query string `json:"query"`
	// Vars fixes the output-column order, e.g. ["x","y"].
	Vars []string `json:"vars"`
}

// QueryResponse describes a registered query. ID is deterministic — the
// same (graph, canonical query) always yields the same id, across
// restarts — so clients can hold on to ids and cursors statelessly.
type QueryResponse struct {
	ID        string `json:"id"`
	Graph     string `json:"graph"`
	Canonical string `json:"canonical"`
	Arity     int    `json:"arity"`
	// Version is the graph version the warmed index answers over (the
	// head at registration time).
	Version int `json:"version"`
	// Cached reports whether the index was already resident; BuildNS is
	// the wall time this request spent obtaining it (≈0 on a cache hit,
	// shared across concurrent requests by singleflight on a miss).
	Cached  bool  `json:"cached"`
	BuildNS int64 `json:"build_ns"`
}

// EnumerateResponse is one page of the solution stream in lexicographic
// order. NextCursor is opaque; pass it back to /v1/enumerate to resume
// after the last tuple of this page in constant time (Theorem 2.3). The
// cursor pins the graph version this page was served at, so a paging
// client sees one consistent snapshot even while the graph is mutated
// under it; resuming a version that has since left the retention window
// fails with 410 version_gone. Done means the stream is exhausted
// (NextCursor empty).
type EnumerateResponse struct {
	ID        string  `json:"id"`
	Version   int     `json:"version"`
	Solutions [][]int `json:"solutions"`
	Count     int     `json:"count"`
	Limit     int     `json:"limit"`

	NextCursor string `json:"next_cursor,omitempty"`
	Done       bool   `json:"done"`
}

// TupleRequest addresses one tuple of a registered query (for /v1/test
// and /v1/next).
type TupleRequest struct {
	ID    string `json:"id"`
	Tuple []int  `json:"tuple"`
}

// TestResponse answers Corollary 2.4: is the tuple a solution? Version is
// the graph version the answer is valid for (the head at request time).
type TestResponse struct {
	ID       string `json:"id"`
	Version  int    `json:"version"`
	Tuple    []int  `json:"tuple"`
	Solution bool   `json:"solution"`
}

// NextResponse answers Theorem 2.3: the smallest solution ≥ the tuple.
type NextResponse struct {
	ID       string `json:"id"`
	Version  int    `json:"version"`
	Solution []int  `json:"solution,omitempty"`
	Found    bool   `json:"found"`
}

// EditSpec is one graph mutation on the wire. Op is the edit kind
// ("add_edge", "remove_edge", "add_color", "remove_color"); U and V are
// vertex ids (V ignored for color edits); Color is the color relation
// touched by the color edits.
type EditSpec struct {
	Op    string `json:"op"`
	U     int    `json:"u"`
	V     int    `json:"v,omitempty"`
	Color int    `json:"color,omitempty"`
}

// MutateRequest applies an edit batch to a graph. The batch is atomic:
// either every edit lands and one new version is published, or none are.
type MutateRequest struct {
	Graph string     `json:"graph"`
	Edits []EditSpec `json:"edits"`
}

// MutateResponse reports the published graph version. NoOp means the batch
// netted out to the identity (adding present edges, add+remove pairs …):
// no new version was published and Version is the unchanged head. Indexes
// over the new version are derived lazily, on first use, from resident
// older versions via the incremental update path (or rebuilt when the
// edits are not local).
type MutateResponse struct {
	Graph   string `json:"graph"`
	Version int    `json:"version"`
	// Applied is the number of edits in the accepted batch.
	Applied int  `json:"applied"`
	NoOp    bool `json:"no_op"`
	// N and M describe the graph after the batch.
	N int `json:"n"`
	M int `json:"m"`
}

// CountRequest evaluates a counting query `#x̄ φ` (Grohe–Schweikardt).
// Either ID names an already registered query, or Graph + Query register
// one inline using the counting syntax, e.g.
//
//	{"graph": "g", "query": "#x,y: dist(x,y) > 2 & C0(y)"}
//
// The inline form registers the query exactly like POST /v1/query would
// (same deterministic id), so a later /v1/enumerate can stream the tuples
// that were counted.
type CountRequest struct {
	ID    string `json:"id,omitempty"`
	Graph string `json:"graph,omitempty"`
	Query string `json:"query,omitempty"`
}

// CountResponse is the solution count at the graph's head version. Fast
// reports whether the engine's sub-enumeration counting path produced the
// number (rather than a full enumeration); Engine names the engine that
// backs the counted index ("core" or "lowdeg").
type CountResponse struct {
	ID      string `json:"id"`
	Version int    `json:"version"`
	Count   int    `json:"count"`
	Fast    bool   `json:"fast"`
	Engine  string `json:"engine"`
}

// FlushResponse reports how many cached indexes POST /v1/cache/flush
// dropped.
type FlushResponse struct {
	Flushed int `json:"flushed"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	Graphs  map[string]GraphStats `json:"graphs"`
	Queries []QueryStats          `json:"queries"`
	Cache   CacheStats            `json:"cache"`
	// Engine is the configured engine mode ("core", "lowdeg" or "auto";
	// "core" when the server was configured with the default).
	Engine string `json:"engine"`
	// Metrics is the full obs registry snapshot (per-endpoint latency
	// histograms, cache counters, in-flight gauge, engine internals of
	// resident indexes); omitted when the server runs unmetered.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// GraphStats describes one loaded graph at its current head version.
type GraphStats struct {
	N      int `json:"n"`
	M      int `json:"m"`
	Colors int `json:"colors"`
	// Version is the head version (0 until the first effective mutation);
	// Retained lists the versions currently resumable by cursors, oldest
	// first, head last.
	Version  int   `json:"version"`
	Retained []int `json:"retained"`
}

// QueryStats describes one registered query. Engine and Selection
// describe the index resident at the graph's head version — which engine
// backs it and the degree/degeneracy estimates that routed it there; both
// are omitted while no head index is resident (nothing to report without
// forcing a build from a stats scrape).
type QueryStats struct {
	ID        string `json:"id"`
	Graph     string `json:"graph"`
	Canonical string `json:"canonical"`
	Arity     int    `json:"arity"`

	Engine    string           `json:"engine,omitempty"`
	Selection *repro.Selection `json:"selection,omitempty"`
}

// Error codes of the API.
const (
	ErrBadRequest       = "bad_request"       // malformed JSON, bad params, bad tuple or edit
	ErrUnknownGraph     = "unknown_graph"     // graph name not loaded
	ErrUnknownQuery     = "unknown_query"     // query id never registered
	ErrInvalidCursor    = "invalid_cursor"    // cursor undecodable or for another query
	ErrVersionGone      = "version_gone"      // cursor pins a graph version outside the retention window
	ErrDeadlineExceeded = "deadline_exceeded" // request deadline hit (build or page)
	ErrShuttingDown     = "shutting_down"     // server is draining
	ErrInternal         = "internal"          // build failure or other server error
)

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// envelope is the uniform response wrapper: exactly one of Data / Error is
// set; TraceID is present whenever the request ran under a Tracer.
type envelope struct {
	Data    any      `json:"data,omitempty"`
	Error   *errBody `json:"error,omitempty"`
	TraceID string   `json:"trace_id,omitempty"`
}

// traceIDFrom recovers the request's trace id for the response envelope
// (empty without a Tracer).
func traceIDFrom(r *http.Request) string {
	if sc := obs.SpanFromContext(r.Context()); sc.Trace != nil {
		return sc.Trace.ID().String()
	}
	return ""
}

func writeEnvelope(w http.ResponseWriter, status int, env envelope) {
	// Encode to a buffer first: a marshal failure discovered after
	// WriteHeader would leave the client a truncated 200 body.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes()) //fod:errok — the client hung up; there is no one left to tell
}

// writeData answers a successful request with the enveloped payload.
func writeData(w http.ResponseWriter, r *http.Request, status int, v any) {
	writeEnvelope(w, status, envelope{Data: v, TraceID: traceIDFrom(r)})
}

// writeErr answers a failed request with the enveloped error.
func writeErr(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeEnvelope(w, status, envelope{Error: &errBody{Code: code, Message: msg}, TraceID: traceIDFrom(r)})
}
