package serve

import (
	"net/http"
	"os"
	"testing"

	"repro"
)

// The /v1/count endpoint and the engine-mode configuration: counting by
// registered id and by inline `#x,y: φ` form, agreement with the
// enumerated stream, engine routing surfaced through /v1/stats, and the
// cross-engine identity of the served counts.

// TestCountByRegisteredID: count an id registered through /v1/query and
// cross-check against a full enumeration of the same query.
func TestCountByRegisteredID(t *testing.T) {
	_, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "dist(x,y) > 2 & C0(y)", "x", "y")

	resp, data := postJSON(t, ts.URL+"/v1/count", CountRequest{ID: qr.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	cr := mustDecode[CountResponse](t, data)
	if cr.ID != qr.ID || cr.Version != 0 || cr.Engine != string(repro.EngineCore) {
		t.Fatalf("unexpected count envelope: %+v", cr)
	}

	_, edata := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=10000")
	er := mustDecode[EnumerateResponse](t, edata)
	if !er.Done {
		t.Fatal("enumeration not exhausted at limit 10000")
	}
	if cr.Count != len(er.Solutions) {
		t.Fatalf("count %d != %d enumerated solutions", cr.Count, len(er.Solutions))
	}
	if !cr.Fast {
		t.Fatalf("binary far query should count via the fast path: %+v", cr)
	}
}

// TestCountInlineForm: the `#x,y: φ` body registers the query with the
// same deterministic id /v1/query would assign, so both routes converge.
func TestCountInlineForm(t *testing.T) {
	_, ts := testServer(t, nil)
	resp, data := postJSON(t, ts.URL+"/v1/count",
		CountRequest{Graph: "path", Query: "#x,y: dist(x,y) > 2 & C0(y)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	cr := mustDecode[CountResponse](t, data)

	qr := registerQuery(t, ts.URL, "path", "dist(x,y) > 2 & C0(y)", "x", "y")
	if cr.ID != qr.ID {
		t.Fatalf("inline count id %q != registered id %q", cr.ID, qr.ID)
	}
	if !qr.Cached {
		t.Fatal("inline count should have warmed the index the registration then hits")
	}

	// Same id counts again, now by reference.
	_, data2 := postJSON(t, ts.URL+"/v1/count", CountRequest{ID: cr.ID})
	if cr2 := mustDecode[CountResponse](t, data2); cr2.Count != cr.Count {
		t.Fatalf("count by id %d != inline count %d", cr2.Count, cr.Count)
	}
}

// TestCountErrors walks the failure surface: missing parameters, unknown
// graph and id, and a malformed counting form.
func TestCountErrors(t *testing.T) {
	_, ts := testServer(t, nil)
	for _, c := range []struct {
		name string
		req  any
		code string
	}{
		{"empty request", CountRequest{}, ErrBadRequest},
		{"unknown graph", CountRequest{Graph: "nope", Query: "#x: C0(x)"}, ErrUnknownGraph},
		{"unknown id", CountRequest{ID: "deadbeefdeadbeef"}, ErrUnknownQuery},
		{"missing hash", CountRequest{Graph: "path", Query: "C0(x)"}, ErrBadRequest},
		{"undeclared variable", CountRequest{Graph: "path", Query: "#x: C0(y)"}, ErrBadRequest},
		{"malformed body", `{"graph": }`, ErrBadRequest},
	} {
		resp, data := postJSON(t, ts.URL+"/v1/count", c.req)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: unexpectedly succeeded: %s", c.name, data)
		}
		if got := errCode(t, data); got != c.code {
			t.Fatalf("%s: error code %q, want %q", c.name, got, c.code)
		}
	}
}

// TestCountAfterMutation: counts follow the head version — a mutation
// changes the answer set and the next count reflects it against a fresh
// naive-free cross-check (the enumerated stream of the new head).
func TestCountAfterMutation(t *testing.T) {
	_, ts := testServer(t, nil)
	qr := registerQuery(t, ts.URL, "path", "E(x,y) & C0(x)", "x", "y")
	_, d0 := postJSON(t, ts.URL+"/v1/count", CountRequest{ID: qr.ID})
	before := mustDecode[CountResponse](t, d0)

	resp, mdata := postJSON(t, ts.URL+"/v1/mutate", MutateRequest{
		Graph: "path",
		Edits: []EditSpec{{Op: "add_edge", U: 0, V: 40}, {Op: "add_color", U: 0, Color: 0}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %s", mdata)
	}

	_, d1 := postJSON(t, ts.URL+"/v1/count", CountRequest{ID: qr.ID})
	after := mustDecode[CountResponse](t, d1)
	if after.Version != 1 {
		t.Fatalf("count answered at version %d, want the new head 1", after.Version)
	}
	_, edata := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=10000")
	er := mustDecode[EnumerateResponse](t, edata)
	if after.Count != len(er.Solutions) {
		t.Fatalf("post-mutation count %d != %d enumerated", after.Count, len(er.Solutions))
	}
	if after.Count == before.Count {
		t.Fatalf("adding an edge and a color left the count at %d; the mutation cannot have reached the index", before.Count)
	}
}

// TestServeEngineModes runs the same query under all three engine
// configurations and demands identical counts and pages, with the routing
// decision surfaced in /v1/stats.
func TestServeEngineModes(t *testing.T) {
	query, vars := "dist(x,y) > 2 & C0(y)", []string{"x", "y"}
	type result struct {
		count CountResponse
		first EnumerateResponse
	}
	results := map[repro.EngineKind]result{}
	for _, mode := range []repro.EngineKind{"", repro.EngineLowDeg, repro.EngineAuto} {
		_, ts := testServer(t, func(c *Config) { c.Engine = mode })
		qr := registerQuery(t, ts.URL, "path", query, vars...)
		_, cdata := postJSON(t, ts.URL+"/v1/count", CountRequest{ID: qr.ID})
		cr := mustDecode[CountResponse](t, cdata)
		_, edata := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=25")
		er := mustDecode[EnumerateResponse](t, edata)

		_, sdata := getJSON(t, ts.URL+"/v1/stats")
		st := mustDecode[StatsResponse](t, sdata)
		wantMode := mode
		if wantMode == "" {
			wantMode = repro.EngineCore
		}
		if st.Engine != string(wantMode) {
			t.Fatalf("mode %q: stats engine %q", mode, st.Engine)
		}
		if len(st.Queries) != 1 {
			t.Fatalf("mode %q: %d queries in stats", mode, len(st.Queries))
		}
		qs := st.Queries[0]
		if qs.Engine != cr.Engine {
			t.Fatalf("mode %q: stats engine %q != count engine %q", mode, qs.Engine, cr.Engine)
		}
		if qs.Selection == nil || qs.Selection.Chosen != repro.EngineKind(qs.Engine) {
			t.Fatalf("mode %q: selection not surfaced: %+v", mode, qs.Selection)
		}
		// The path graph has degree ≤ 2: lowdeg and auto must land on the
		// low-degree engine, the default on core.
		switch mode {
		case "":
			if qs.Engine != string(repro.EngineCore) {
				t.Fatalf("default mode routed to %q", qs.Engine)
			}
		case repro.EngineLowDeg, repro.EngineAuto:
			if qs.Engine != string(repro.EngineLowDeg) {
				t.Fatalf("mode %q routed to %q", mode, qs.Engine)
			}
		}
		if mode == repro.EngineAuto && (qs.Selection.MaxDegree < 1 || qs.Selection.MaxDegree > 2) {
			t.Fatalf("auto selection measured degree %d on a path", qs.Selection.MaxDegree)
		}
		results[mode] = result{count: cr, first: er}
	}
	base := results[""]
	for mode, r := range results {
		if r.count.Count != base.count.Count {
			t.Fatalf("mode %q count %d != default %d", mode, r.count.Count, base.count.Count)
		}
		if len(r.first.Solutions) != len(base.first.Solutions) {
			t.Fatalf("mode %q page size %d != default %d", mode, len(r.first.Solutions), len(base.first.Solutions))
		}
		for i := range r.first.Solutions {
			for j := range r.first.Solutions[i] {
				if r.first.Solutions[i][j] != base.first.Solutions[i][j] {
					t.Fatalf("mode %q solution %d differs: %v vs %v", mode, i, r.first.Solutions[i], base.first.Solutions[i])
				}
			}
		}
	}
}

// TestServeLowdegSkipsSnapshotTier: with a snapshot directory configured,
// an auto server whose graph routes to lowdeg must serve correctly and
// never write a snapshot file for it.
func TestServeLowdegSkipsSnapshotTier(t *testing.T) {
	dir := t.TempDir()
	s, ts := testServer(t, func(c *Config) {
		c.Engine = repro.EngineAuto
		c.SnapshotDir = dir
	})
	qr := registerQuery(t, ts.URL, "path", "dist(x,y) > 2 & C0(y)", "x", "y")
	_, data := postJSON(t, ts.URL+"/v1/count", CountRequest{ID: qr.ID})
	cr := mustDecode[CountResponse](t, data)
	if cr.Engine != string(repro.EngineLowDeg) {
		t.Fatalf("auto on a path graph served by %q", cr.Engine)
	}
	if n := s.reg.Counter("serve.snapshot.skip_lowdeg").Load(); n == 0 {
		t.Fatal("lowdeg snapshot write was not skipped (counter is zero)")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("a snapshot file appeared for a lowdeg-backed index: %v", entries)
	}
}
