// Package serve is the concurrent query-serving layer: an HTTP/JSON API
// over the repro facade that turns the paper's answering primitives into
// a stateless pagination contract.
//
// The key observation (Theorem 2.3 / Corollary 2.5): after one
// pseudo-linear preprocessing, NextGeq answers "smallest solution ≥ ā" in
// constant time, so a pagination cursor needs no server-side state — it
// is just the last tuple returned, and resuming costs O(1) wherever the
// client stopped, even across index eviction and rebuild.
//
// Graphs are mutable through POST /v1/mutate (the n^ε update regime of
// the paper's §3): each effective edit batch publishes a new immutable
// graph version, indexes are cached per (graph, version, query) and
// derived from resident older versions by replaying the edit log through
// Index.ApplyEdits, and cursors pin the version they started on — a
// paging client keeps reading one consistent snapshot while the head
// moves, until the version leaves the bounded retention window and
// resuming answers 410 version_gone.
//
// Endpoints:
//
//	POST /v1/query          register/compile a query, warm its index
//	GET  /v1/enumerate      one page of solutions + opaque resume cursor
//	POST /v1/test           Corollary 2.4: constant-time membership
//	POST /v1/next           Theorem 2.3: smallest solution ≥ tuple
//	POST /v1/count          counting query `#x̄ φ` (Grohe–Schweikardt)
//	POST /v1/mutate         apply an edit batch, publish a new graph version
//	GET  /v1/stats          graphs (with versions), queries, cache, metrics
//	POST /v1/cache/flush    drop all cached indexes (ops/testing)
//	GET  /debug/metrics     obs JSON snapshot (plus /debug/vars, /debug/pprof)
//
// Every /v1 response — success or failure — is the uniform envelope
// {"data": ...} / {"error": {"code", "message"}} plus the request's
// trace_id; see api.go.
//
// Behind the handlers sits an LRU index cache keyed by (graph id, graph
// version, canonical query) with singleflight deduplication: N concurrent
// requests for the same uncached query trigger exactly one parallel
// build (or one edit-log replay). Every request carries a deadline
// (default or ?timeout_ms=…, capped) threaded through build and page
// enumeration; shutdown drains in-flight requests before canceling
// outstanding builds.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/snap"
)

// Config tunes a Server. The zero value of every field selects a sensible
// default.
type Config struct {
	// Graphs are the served graphs, keyed by the name clients use in
	// QueryRequest.Graph. Each becomes version 0 of a mutable graph state;
	// POST /v1/mutate publishes later versions. The map itself is
	// read-only after NewServer (the set of graph names is fixed).
	Graphs map[string]*repro.Graph
	// RetainVersions bounds how many past graph versions stay resumable
	// by version-pinned cursors after mutations; older versions answer
	// 410 version_gone. Default repro.DefaultRetainVersions.
	RetainVersions int
	// CacheSize bounds the number of resident indexes (LRU beyond it).
	// Default 8.
	CacheSize int
	// DefaultLimit and MaxLimit shape /v1/enumerate pages: an absent or
	// non-positive limit becomes DefaultLimit (default 100); anything
	// above MaxLimit (default 10000) is clamped to it.
	DefaultLimit int
	MaxLimit     int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout bounds a request that names no ?timeout_ms
	// (default 30s); MaxTimeout caps client-requested deadlines
	// (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Parallelism forwards to IndexOptions.Parallelism for cache builds.
	Parallelism int
	// Engine selects the enumeration engine for every index this server
	// builds: repro.EngineCore (also the "" default — existing deployments
	// are unchanged), repro.EngineLowDeg, or repro.EngineAuto, which
	// routes each graph on its measured degree and degeneracy. The chosen
	// engine and its selection inputs are surfaced per query in /v1/stats.
	Engine repro.EngineKind
	// SnapshotDir, when non-empty, enables the disk cache tier: on a
	// memory miss the server first tries to load the index from a
	// snapshot file in this directory (written by a previous run or by
	// fodsnap build), and after a successful build it writes the snapshot
	// back. Files are keyed by the deterministic query id and validated
	// against the served graph's fingerprint before use, so stale or
	// foreign snapshots are ignored, never served. The directory must
	// exist and be writable.
	SnapshotDir string
	// BaseContext, when non-nil, parents every background index build and
	// the server's drain lifecycle; canceling it aborts in-flight builds
	// exactly as Shutdown does. Nil means the server owns its lifecycle
	// outright (context.Background), which suits tests and single-server
	// binaries; a process hosting several servers passes its run context
	// here so one signal tears all of them down.
	BaseContext context.Context
	// Metrics, when non-nil, instruments the server (per-endpoint latency
	// histograms, cache hit/miss counters, in-flight gauge) and every
	// index it builds, and is served at /debug/metrics.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one span tree per request — cache
	// lookup, singleflight build or snapshot load phase by phase, cursor
	// resume, page scan — retains them with tail sampling (errors and slow
	// requests always, the fast bulk 1-in-N), and serves them at
	// /debug/traces. Incoming W3C traceparent headers are honored and the
	// response carries one. Nil disables tracing at the cost of one branch
	// per request.
	Tracer *obs.Tracer
	// Logger, when non-nil, emits one structured access-log record per
	// request plus index-build and snapshot-tier events, each carrying the
	// request's trace id when Tracer is set. Nil disables logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 8
	}
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 100
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 10000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetainVersions <= 0 {
		c.RetainVersions = repro.DefaultRetainVersions
	}
	return c
}

// Server is the query-serving layer. Create with NewServer, mount
// Handler(), stop with Shutdown.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	tracer *obs.Tracer
	log    *slog.Logger
	cache  *indexCache

	// graphs is the versioned state of every served graph (map read-only
	// after NewServer; each graphState handles its own synchronization).
	graphs map[string]*graphState

	mu      sync.Mutex // guards queries
	queries map[string]*queryEntry

	baseCtx context.Context // canceled after drain; parent of all builds
	cancel  context.CancelFunc

	shutMu   sync.RWMutex // closed-flag vs. in-flight registration
	closed   bool
	inflight sync.WaitGroup

	// graphFP caches each served graph's snapshot fingerprint (hex), used
	// to validate disk-tier files; nil unless SnapshotDir is set.
	graphFP map[string]string

	inflightG obs.Gauge
}

// queryEntry is one registered query. The compiled *repro.Query is shared
// by every request (safe: compilation is behind a sync.Once) while the
// built index lives in the cache and may be evicted independently.
type queryEntry struct {
	id        string
	graph     string
	canonical string
	q         *repro.Query
	arity     int
}

// NewServer validates cfg and returns a ready Server.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		tracer:  cfg.Tracer,
		log:     cfg.Logger,
		graphs:  make(map[string]*graphState, len(cfg.Graphs)),
		queries: make(map[string]*queryEntry),
		baseCtx: ctx,
		cancel:  cancel,
	}
	//fod:sorted order-free: key-addressed map-to-map copy, no fold state
	for name, g := range cfg.Graphs {
		s.graphs[name] = newGraphState(name, g, cfg.RetainVersions)
	}
	s.tracer.Register(cfg.Metrics)
	s.cache = newIndexCache(ctx, cfg.CacheSize, cfg.Metrics, s.buildIndex)
	s.cache.migrate = s.migrateIndex
	if cfg.SnapshotDir != "" && cfg.Engine != repro.EngineLowDeg {
		// The disk tier holds core-engine snapshots. Under the forced
		// lowdeg mode nothing could ever be written or validly restored, so
		// the tier is not installed at all; under auto the tier still works
		// for core-routed graphs, and writeSnapshot skips lowdeg-backed
		// indexes individually.
		s.graphFP = make(map[string]string, len(cfg.Graphs))
		//fod:sorted order-free: key-addressed map-to-map copy, no fold state
		for name, g := range cfg.Graphs {
			s.graphFP[name] = snap.FingerprintString(snap.Fingerprint(g))
		}
		s.cache.loadSnap = s.loadSnapshot
		s.cache.storeSnap = s.writeSnapshot
	}
	if s.reg != nil {
		s.reg.RegisterGauge("serve.http.in_flight", &s.inflightG)
	}
	return s
}

// snapshotPath is the disk-tier file of one (graph, query) pair, keyed by
// the same deterministic id the API exposes.
func (s *Server) snapshotPath(key cacheKey) string {
	return filepath.Join(s.cfg.SnapshotDir, queryID(key.graph, key.canonical)+".fodsnap")
}

// loadSnapshot is the disk tier of the index cache. It validates cheaply
// first — metadata canonical text and graph fingerprint against the
// served graph — and only then pays for the full restore. Any failure
// (missing file, corruption, foreign graph) falls back to building; the
// error classes are counted separately so operators can tell a cold
// directory from a corrupted one.
func (s *Server) loadSnapshot(ctx context.Context, key cacheKey) (*repro.Index, bool) {
	if key.version != 0 {
		// The disk tier holds only version-0 indexes: snapshot files are
		// fingerprinted against the graph as configured at startup, and
		// mutated versions are cheaper to derive by edit-log replay than
		// to persist (they change with every batch).
		return nil, false
	}
	data, err := os.ReadFile(s.snapshotPath(key))
	if err != nil {
		return nil, false // cold tier: no snapshot yet
	}
	start := time.Now()
	reject := func(counter, reason string) (*repro.Index, bool) {
		s.reg.Counter(counter).Inc()
		// Rejections pay real latency (read + parse + validate) that the
		// success histogram must not absorb; they get their own.
		s.reg.Histogram("serve.snapshot.reject_ns").Observe(time.Since(start))
		s.logEvent(ctx, slog.LevelWarn, "snapshot_reject",
			slog.String("query_id", queryID(key.graph, key.canonical)),
			slog.String("reason", reason))
		return nil, false
	}
	f, err := snap.Parse(data)
	if err != nil {
		return reject("serve.snapshot.corrupt", "corrupt: "+err.Error())
	}
	meta, err := snap.ReadMeta(f)
	if err != nil {
		return reject("serve.snapshot.corrupt", "corrupt: "+err.Error())
	}
	if meta.Canonical != key.canonical || meta.GraphFingerprint != s.graphFP[key.graph] {
		return reject("serve.snapshot.mismatch", "foreign graph or query")
	}
	ix, err := repro.ReadIndexSnapshotCtx(ctx, data, repro.IndexOptions{Parallelism: s.cfg.Parallelism, Metrics: s.reg})
	if err != nil {
		return reject("serve.snapshot.corrupt", "restore: "+err.Error())
	}
	d := time.Since(start)
	s.reg.Histogram("serve.snapshot.load_ns").Observe(d)
	s.logEvent(ctx, slog.LevelInfo, "snapshot_load",
		slog.String("query_id", queryID(key.graph, key.canonical)),
		slog.Int64("dur_us", d.Microseconds()),
		slog.Int("bytes", len(data)))
	return ix, true
}

// writeSnapshot persists a freshly built index for the next cold start.
// Failures are counted and swallowed — the build already succeeded, so
// the request must not fail because the disk tier is unhappy.
func (s *Server) writeSnapshot(ctx context.Context, key cacheKey, ix *repro.Index) bool {
	if key.version != 0 {
		return false // disk tier is version-0 only; see loadSnapshot
	}
	if ix.Engine() == repro.EngineLowDeg {
		// The snapshot format serializes core-engine structures; the lowdeg
		// build is linear anyway, so persisting buys nothing.
		s.reg.Counter("serve.snapshot.skip_lowdeg").Inc()
		return false
	}
	start := time.Now()
	if err := repro.SaveIndexSnapshotObs(ctx, ix, s.snapshotPath(key), s.reg); err != nil {
		s.reg.Counter("serve.snapshot.write_errors").Inc()
		s.logEvent(ctx, slog.LevelWarn, "snapshot_write_failed",
			slog.String("query_id", queryID(key.graph, key.canonical)),
			slog.String("error", err.Error()))
		return false
	}
	d := time.Since(start)
	s.reg.Histogram("serve.snapshot.write_ns").Observe(d)
	s.logEvent(ctx, slog.LevelInfo, "snapshot_write",
		slog.String("query_id", queryID(key.graph, key.canonical)),
		slog.Int64("dur_us", d.Microseconds()))
	return true
}

// logEvent emits one structured event record with the trace id of the
// request (or build flight) the context belongs to. No-op without Logger.
func (s *Server) logEvent(ctx context.Context, lvl slog.Level, msg string, attrs ...slog.Attr) {
	if s.log == nil {
		return
	}
	tid := ""
	if sc := obs.SpanFromContext(ctx); sc.Trace != nil {
		tid = sc.Trace.ID().String()
	}
	attrs = append(attrs, slog.String("trace_id", tid))
	s.log.LogAttrs(ctx, lvl, msg, attrs...)
}

// migrateIndex is the cache's incremental tier: on a miss for
// (graph, version, query) it looks for a resident index of an older
// retained version of the same graph and advances it by replaying the
// intervening edit batches through Index.ApplyEdits, which recomputes
// only the structure the edits touched — the n^ε update route the
// mutation layer exists for. ok=false (chain broken, replay failed, no
// resident ancestor) falls back to a full build.
func (s *Server) migrateIndex(ctx context.Context, key cacheKey) (*repro.Index, bool) {
	gs, ok := s.graphs[key.graph]
	if !ok || key.version == 0 {
		return nil, false
	}
	qid := queryID(key.graph, key.canonical)
	start := time.Now()
	for v := key.version - 1; v >= 0; v-- {
		old, ok := s.cache.Peek(cacheKey{graph: key.graph, version: v, canonical: key.canonical})
		if !ok {
			continue
		}
		batches, ok := gs.editsSince(v, key.version)
		if !ok {
			return nil, false // chain broken: a link left the retention window
		}
		ix, err := old, error(nil)
		for _, batch := range batches {
			if ix, err = ix.ApplyEdits(ctx, batch); err != nil {
				break
			}
		}
		if err != nil {
			s.logEvent(ctx, slog.LevelWarn, "index_migrate_failed",
				slog.String("graph", key.graph),
				slog.String("query_id", qid),
				slog.Int("from_version", v),
				slog.Int("to_version", key.version),
				slog.String("error", err.Error()))
			return nil, false // fall back to a full build
		}
		s.logEvent(ctx, slog.LevelInfo, "index_migrate",
			slog.String("graph", key.graph),
			slog.String("query_id", qid),
			slog.Int("from_version", v),
			slog.Int("to_version", key.version),
			slog.Int64("dur_us", time.Since(start).Microseconds()))
		return ix, true
	}
	return nil, false
}

// buildIndex is the cache's build-from-scratch function: it resolves the
// key back to the registered query and the pinned graph version and runs
// the context-bounded parallel build.
func (s *Server) buildIndex(ctx context.Context, key cacheKey) (*repro.Index, error) {
	gs, ok := s.graphs[key.graph]
	if !ok {
		return nil, fmt.Errorf("serve: graph %q disappeared", key.graph)
	}
	gv, ok := gs.At(key.version)
	if !ok {
		// The version left the retention window between cursor decode and
		// this flight.
		return nil, &versionGoneError{graph: key.graph, version: key.version}
	}
	s.mu.Lock()
	var q *repro.Query
	//fod:sorted order-free: (graph, canonical) identifies at most one entry, so the scan's first hit is its only hit
	for _, e := range s.queries {
		if e.graph == key.graph && e.canonical == key.canonical {
			q = e.q
			break
		}
	}
	s.mu.Unlock()
	if q == nil {
		return nil, fmt.Errorf("serve: query %q not registered", key.canonical)
	}

	qid := queryID(key.graph, key.canonical)
	start := time.Now()
	ix, err := repro.BuildIndexCtx(ctx, gv.g, q, repro.IndexOptions{
		Parallelism: s.cfg.Parallelism,
		Metrics:     s.reg,
		Engine:      s.cfg.Engine,
	})
	if err != nil {
		s.logEvent(ctx, slog.LevelWarn, "index_build_failed",
			slog.String("graph", key.graph),
			slog.String("query_id", qid),
			slog.Int("version", key.version),
			slog.String("error", err.Error()))
		return nil, err
	}
	s.logEvent(ctx, slog.LevelInfo, "index_build",
		slog.String("graph", key.graph),
		slog.String("query_id", qid),
		slog.Int("version", key.version),
		slog.String("engine", string(ix.Engine())),
		slog.Int64("dur_us", time.Since(start).Microseconds()))
	return ix, nil
}

// queryID derives the deterministic id of a (graph, canonical) pair.
func queryID(graph, canonical string) string {
	h := sha256.Sum256([]byte(graph + "\x00" + canonical))
	return hex.EncodeToString(h[:8])
}

// Handler returns the full HTTP surface: the /v1 API plus the /debug
// observability endpoints when the server is metered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("GET /v1/enumerate", s.instrument("enumerate", s.handleEnumerate))
	mux.HandleFunc("POST /v1/test", s.instrument("test", s.handleTest))
	mux.HandleFunc("POST /v1/next", s.instrument("next", s.handleNext))
	mux.HandleFunc("POST /v1/count", s.instrument("count", s.handleCount))
	mux.HandleFunc("POST /v1/mutate", s.instrument("mutate", s.handleMutate))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("POST /v1/cache/flush", s.instrument("flush", s.handleFlush))
	if s.reg != nil || s.tracer != nil {
		mux.Handle("/debug/", obs.DebugMuxTraced(s.reg, s.tracer))
	}
	return mux
}

// Shutdown drains: new requests are rejected with 503 shutting_down,
// in-flight requests (including long enumeration pages) run to
// completion or until ctx expires, then outstanding builds are canceled.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutMu.Lock()
	already := s.closed
	s.closed = true
	s.shutMu.Unlock()
	if already {
		return nil
	}
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.cancel()
	return err
}

// instrument wraps a handler with the serving middleware: shutdown
// rejection, in-flight tracking (WaitGroup for draining, gauge for
// scrapes), the per-request deadline, per-endpoint latency/error
// instruments, and — when configured — the request trace (traceparent
// honored on the way in, emitted on the way out, span tree finished and
// tail-sampled on completion, latency bucket stamped with the trace id)
// and the structured access-log record.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("serve.http." + name + "_ns")
	reqs := s.reg.Counter("serve.http." + name + "_requests")
	errs := s.reg.Counter("serve.http." + name + "_errors")
	return func(w http.ResponseWriter, r *http.Request) {
		s.shutMu.RLock()
		if s.closed {
			s.shutMu.RUnlock()
			writeErr(w, r, http.StatusServiceUnavailable, ErrShuttingDown, "server is draining")
			return
		}
		s.inflight.Add(1)
		s.shutMu.RUnlock()
		defer s.inflight.Done()
		s.inflightG.Inc()
		defer s.inflightG.Dec()

		ctx, cancel := s.requestContext(r)
		defer cancel()
		var tr *obs.Trace
		var root *obs.Span
		if s.tracer != nil {
			// A well-formed incoming traceparent is adopted (the caller's
			// trace continues here); anything malformed mints a fresh id.
			id, remote, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
			tr = s.tracer.Start(r.Method+" "+r.URL.Path, id, remote)
			w.Header().Set("traceparent", tr.Traceparent())
			ctx = obs.ContextWithSpan(ctx, obs.SpanCtx{Trace: tr})
			root = s.reg.StartSpan(ctx, "http."+name)
			ctx = root.Attach(ctx)
		}
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}

		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		d := time.Since(start)
		if tr != nil {
			root.End()
			hist.ObserveTraced(d.Nanoseconds(), tr.ID())
			tr.Finish(sw.code, "")
		} else {
			hist.Observe(d)
		}
		reqs.Inc()
		if sw.code >= 400 {
			errs.Inc()
		}
		if s.log != nil {
			lvl := slog.LevelInfo
			switch {
			case sw.code >= 500:
				lvl = slog.LevelError
			case sw.code >= 400:
				lvl = slog.LevelWarn
			}
			tid := ""
			if tr != nil {
				tid = tr.ID().String()
			}
			s.log.LogAttrs(ctx, lvl, "request",
				slog.String("method", r.Method),
				slog.String("endpoint", name),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.code),
				slog.Int64("dur_us", d.Microseconds()),
				slog.String("trace_id", tid))
		}
	}
}

// requestContext derives the per-request deadline: ?timeout_ms=… capped
// at MaxTimeout, else DefaultTimeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Graph == "" || req.Query == "" || len(req.Vars) == 0 {
		writeErr(w, r, http.StatusBadRequest, ErrBadRequest, "graph, query and vars are required")
		return
	}
	gs, ok := s.graphs[req.Graph]
	if !ok {
		writeErr(w, r, http.StatusNotFound, ErrUnknownGraph, fmt.Sprintf("graph %q is not loaded", req.Graph))
		return
	}
	q, err := repro.ParseQuery(req.Query, req.Vars...)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, ErrBadRequest, err.Error())
		return
	}
	// Compile now so malformed queries fail at registration, not first use.
	if _, err := q.Plan(); err != nil {
		writeErr(w, r, http.StatusBadRequest, ErrBadRequest, err.Error())
		return
	}
	canonical := q.Canonical()
	id := queryID(req.Graph, canonical)

	s.mu.Lock()
	entry, ok := s.queries[id]
	if !ok {
		entry = &queryEntry{id: id, graph: req.Graph, canonical: canonical, q: q, arity: q.Arity()}
		s.queries[id] = entry
	}
	s.mu.Unlock()

	// Warm the index at the current head version through the cache
	// (singleflight dedups concurrent registrations; a hit returns
	// immediately).
	gv := gs.Head()
	start := time.Now()
	_, cached, err := s.cache.Get(r.Context(), cacheKey{graph: entry.graph, version: gv.version, canonical: entry.canonical})
	if err != nil {
		writeCacheErr(w, r, err)
		return
	}
	wall := time.Since(start)

	writeData(w, r, http.StatusOK, QueryResponse{
		ID:        entry.id,
		Graph:     entry.graph,
		Canonical: entry.canonical,
		Arity:     entry.arity,
		Version:   gv.version,
		Cached:    cached,
		BuildNS:   wall.Nanoseconds(),
	})
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	id := qs.Get("query")
	cursor := qs.Get("cursor")

	var start []int
	version := cursorHead
	skipFirst := false
	if cursor != "" {
		cid, cver, last, err := decodeCursor(cursor)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, ErrInvalidCursor, err.Error())
			return
		}
		if id != "" && id != cid {
			writeErr(w, r, http.StatusBadRequest, ErrInvalidCursor, "cursor belongs to a different query")
			return
		}
		id = cid
		version = cver
		start = last
		skipFirst = true
	}
	if id == "" {
		writeErr(w, r, http.StatusBadRequest, ErrBadRequest, "query or cursor is required")
		return
	}
	entry, ok := s.lookupQuery(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, ErrUnknownQuery, fmt.Sprintf("query %q is not registered", id))
		return
	}
	// A fresh enumeration (or a legacy v1 cursor) reads the current head;
	// a v2 cursor stays pinned to the version its stream started on, for
	// one consistent snapshot across pages — 410 once that version has
	// been garbage-collected.
	gs := s.graphs[entry.graph]
	var gv *graphVersion
	if version == cursorHead {
		gv = gs.Head()
	} else if gv, ok = gs.At(version); !ok {
		writeErr(w, r, http.StatusGone, ErrVersionGone,
			fmt.Sprintf("version %d of graph %q is no longer retained; restart the enumeration without a cursor", version, entry.graph))
		return
	}
	if start == nil {
		start = make([]int, entry.arity)
	} else if err := validateTuple(start, entry.arity, gv.g.N()); err != nil {
		writeErr(w, r, http.StatusBadRequest, ErrInvalidCursor, err.Error())
		return
	}

	limit := s.cfg.DefaultLimit
	if v := qs.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, ErrBadRequest, fmt.Sprintf("bad limit %q", v))
			return
		}
		if n > 0 {
			limit = n
		}
	}
	if limit > s.cfg.MaxLimit {
		limit = s.cfg.MaxLimit // cap, don't error: the cursor loses nothing
	}

	ix, _, err := s.cache.Get(r.Context(), cacheKey{graph: entry.graph, version: gv.version, canonical: entry.canonical})
	if err != nil {
		writeCacheErr(w, r, err)
		return
	}

	// Two spans, matching the paper's split: the O(1) cursor resume (Seek
	// Lemma / NextGeq positioning) and the constant-delay page scan.
	ctx := r.Context()
	sp := s.reg.StartSpan(ctx, "enumerate.resume")
	it := ix.IteratorFrom(start)
	sp.End()
	sp = s.reg.StartSpan(ctx, "enumerate.scan")
	sols := make([][]int, 0, min(limit, 1024))
	for len(sols) < limit {
		if len(sols)%64 == 0 && ctx.Err() != nil {
			sp.End()
			writeCacheErr(w, r, ctx.Err())
			return
		}
		sol, ok := it.Next()
		if !ok {
			break
		}
		if skipFirst {
			skipFirst = false
			if tupleEqual(sol, start) {
				continue // the cursor tuple itself was already served
			}
		}
		// The iterator reuses its buffer across Next calls; copy.
		cp := make([]int, len(sol))
		copy(cp, sol)
		sols = append(sols, cp)
	}
	sp.End()

	resp := EnumerateResponse{
		ID:        entry.id,
		Version:   gv.version,
		Solutions: sols,
		Count:     len(sols),
		Limit:     limit,
		Done:      !it.HasNext(),
	}
	if !resp.Done && len(sols) > 0 {
		resp.NextCursor = encodeCursor(entry.id, gv.version, sols[len(sols)-1])
	}
	writeData(w, r, http.StatusOK, resp)
}

func (s *Server) handleTest(w http.ResponseWriter, r *http.Request) {
	entry, tuple, ix, ver, ok := s.tupleEndpoint(w, r)
	if !ok {
		return
	}
	writeData(w, r, http.StatusOK, TestResponse{ID: entry.id, Version: ver, Tuple: tuple, Solution: ix.Test(tuple)})
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	entry, tuple, ix, ver, ok := s.tupleEndpoint(w, r)
	if !ok {
		return
	}
	sol, found := ix.Next(tuple)
	writeData(w, r, http.StatusOK, NextResponse{ID: entry.id, Version: ver, Solution: sol, Found: found})
}

// tupleEndpoint factors the shared decode/validate/index-fetch path of
// /v1/test and /v1/next. Point lookups always answer at the current head
// version (they carry no cursor to pin an older one); the version they
// answered at is returned for the response.
func (s *Server) tupleEndpoint(w http.ResponseWriter, r *http.Request) (*queryEntry, []int, *repro.Index, int, bool) {
	var req TupleRequest
	if !decodeBody(w, r, &req) {
		return nil, nil, nil, 0, false
	}
	entry, ok := s.lookupQuery(req.ID)
	if !ok {
		writeErr(w, r, http.StatusNotFound, ErrUnknownQuery, fmt.Sprintf("query %q is not registered", req.ID))
		return nil, nil, nil, 0, false
	}
	gv := s.graphs[entry.graph].Head()
	if err := validateTuple(req.Tuple, entry.arity, gv.g.N()); err != nil {
		writeErr(w, r, http.StatusBadRequest, ErrBadRequest, err.Error())
		return nil, nil, nil, 0, false
	}
	ix, _, err := s.cache.Get(r.Context(), cacheKey{graph: entry.graph, version: gv.version, canonical: entry.canonical})
	if err != nil {
		writeCacheErr(w, r, err)
		return nil, nil, nil, 0, false
	}
	return entry, req.Tuple, ix, gv.version, true
}

// handleCount evaluates a counting query `#x̄ φ` at the graph's head
// version. The count itself is served from the index (cached per index
// value — an index is an immutable snapshot of one graph version, so the
// number can never go stale) through the engine's sub-enumeration
// counting path when the query shape supports one, full enumeration
// otherwise; Fast in the response tells the two apart.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req CountRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := req.ID
	if id == "" {
		// Inline registration from the `#x,y: φ` counting form.
		if req.Graph == "" || req.Query == "" {
			writeErr(w, r, http.StatusBadRequest, ErrBadRequest, "id, or graph and a '#vars: formula' query, are required")
			return
		}
		if _, ok := s.graphs[req.Graph]; !ok {
			writeErr(w, r, http.StatusNotFound, ErrUnknownGraph, fmt.Sprintf("graph %q is not loaded", req.Graph))
			return
		}
		q, err := repro.ParseCountQuery(req.Query)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, ErrBadRequest, err.Error())
			return
		}
		if _, err := q.Plan(); err != nil {
			writeErr(w, r, http.StatusBadRequest, ErrBadRequest, err.Error())
			return
		}
		canonical := q.Canonical()
		id = queryID(req.Graph, canonical)
		s.mu.Lock()
		if _, ok := s.queries[id]; !ok {
			s.queries[id] = &queryEntry{id: id, graph: req.Graph, canonical: canonical, q: q, arity: q.Arity()}
		}
		s.mu.Unlock()
	}
	entry, ok := s.lookupQuery(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, ErrUnknownQuery, fmt.Sprintf("query %q is not registered", id))
		return
	}
	gv := s.graphs[entry.graph].Head()
	ix, _, err := s.cache.Get(r.Context(), cacheKey{graph: entry.graph, version: gv.version, canonical: entry.canonical})
	if err != nil {
		writeCacheErr(w, r, err)
		return
	}
	sp := s.reg.StartSpan(r.Context(), "count.eval")
	n, fast, err := ix.SolutionCountCtx(r.Context())
	sp.End()
	if err != nil {
		writeCacheErr(w, r, err)
		return
	}
	writeData(w, r, http.StatusOK, CountResponse{
		ID:      entry.id,
		Version: gv.version,
		Count:   n,
		Fast:    fast,
		Engine:  string(ix.Engine()),
	})
}

// handleMutate applies one edit batch to a graph and publishes the
// resulting version. The mutation itself is O(patched graph) — indexes
// over the new version are derived lazily, on first request, from
// resident older versions through the incremental ApplyEdits path (see
// buildIndex), so a mutation's cost is never multiplied by the number of
// registered queries up front.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Graph == "" || len(req.Edits) == 0 {
		writeErr(w, r, http.StatusBadRequest, ErrBadRequest, "graph and a non-empty edits batch are required")
		return
	}
	gs, ok := s.graphs[req.Graph]
	if !ok {
		writeErr(w, r, http.StatusNotFound, ErrUnknownGraph, fmt.Sprintf("graph %q is not loaded", req.Graph))
		return
	}
	edits := make([]repro.Edit, len(req.Edits))
	for i, spec := range req.Edits {
		op, err := graph.ParseEditOp(spec.Op)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, ErrBadRequest,
				fmt.Sprintf("edit %d: unknown op %q (want add_edge, remove_edge, add_color or remove_color)", i, spec.Op))
			return
		}
		edits[i] = repro.Edit{Op: op, U: spec.U, V: spec.V, Color: spec.Color}
	}
	sp := s.reg.StartSpan(r.Context(), "mutate.publish")
	gv, noop, err := gs.Mutate(edits)
	sp.End()
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, ErrBadRequest, err.Error())
		return
	}
	if !noop {
		s.logEvent(r.Context(), slog.LevelInfo, "graph_mutate",
			slog.String("graph", req.Graph),
			slog.Int("version", gv.version),
			slog.Int("edits", len(edits)))
	}
	writeData(w, r, http.StatusOK, MutateResponse{
		Graph:   req.Graph,
		Version: gv.version,
		Applied: len(edits),
		NoOp:    noop,
		N:       gv.g.N(),
		M:       gv.g.M(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	engine := s.cfg.Engine
	if engine == "" {
		engine = repro.EngineCore
	}
	resp := StatsResponse{
		Graphs: make(map[string]GraphStats, len(s.graphs)),
		Cache:  s.cache.Stats(),
		Engine: string(engine),
	}
	//fod:sorted order-free: key-addressed fill of the response map; the JSON encoder emits map keys sorted
	for name, gs := range s.graphs {
		gv := gs.Head()
		resp.Graphs[name] = GraphStats{
			N:        gv.g.N(),
			M:        gv.g.M(),
			Colors:   gv.g.NumColors(),
			Version:  gv.version,
			Retained: gs.Retained(),
		}
	}
	s.mu.Lock()
	//fod:sorted the collected slice is sorted by ID immediately after this fold (below)
	for _, e := range s.queries {
		qs := QueryStats{
			ID: e.id, Graph: e.graph, Canonical: e.canonical, Arity: e.arity,
		}
		// Peek (never build) at the head index to report which engine backs
		// it and the selection inputs that routed it there.
		gv := s.graphs[e.graph].Head()
		if ix, ok := s.cache.Peek(cacheKey{graph: e.graph, version: gv.version, canonical: e.canonical}); ok {
			sel := ix.Selection()
			qs.Engine = string(ix.Engine())
			qs.Selection = &sel
		}
		resp.Queries = append(resp.Queries, qs)
	}
	s.mu.Unlock()
	sort.Slice(resp.Queries, func(i, j int) bool { return resp.Queries[i].ID < resp.Queries[j].ID })
	if s.reg != nil {
		var b strings.Builder
		if err := s.reg.WriteJSON(&b); err == nil {
			resp.Metrics = json.RawMessage(b.String())
		}
	}
	writeData(w, r, http.StatusOK, resp)
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	writeData(w, r, http.StatusOK, FlushResponse{Flushed: s.cache.Flush()})
}

// --- helpers ----------------------------------------------------------

func (s *Server) lookupQuery(id string) (*queryEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.queries[id]
	return e, ok
}

// decodeBody parses the JSON body into v, answering 400 on malformed or
// oversized input. Returns false when the request was already answered.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, r, http.StatusRequestEntityTooLarge, ErrBadRequest,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeErr(w, r, http.StatusBadRequest, ErrBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// writeCacheErr maps index-acquisition errors to API errors.
func writeCacheErr(w http.ResponseWriter, r *http.Request, err error) {
	var gone *versionGoneError
	switch {
	case errors.As(err, &gone):
		writeErr(w, r, http.StatusGone, ErrVersionGone,
			gone.Error()+"; restart the enumeration without a cursor")
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, r, http.StatusGatewayTimeout, ErrDeadlineExceeded, "request deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeErr(w, r, http.StatusServiceUnavailable, ErrShuttingDown, "request canceled")
	default:
		writeErr(w, r, http.StatusInternalServerError, ErrInternal, err.Error())
	}
}

func validateTuple(tuple []int, arity, n int) error {
	if len(tuple) != arity {
		return fmt.Errorf("tuple has %d components, query arity is %d", len(tuple), arity)
	}
	for i, v := range tuple {
		if v < 0 || v >= n {
			return fmt.Errorf("tuple component %d = %d out of range [0,%d)", i, v, n)
		}
	}
	return nil
}

func tupleEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
