package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer guards the slog sink: the singleflight flight goroutine and
// the request goroutine both emit events.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// traceIDOf extracts the trace id from a traceparent response header.
func traceIDOf(t *testing.T, resp *http.Response) string {
	t.Helper()
	tp := resp.Header.Get("traceparent")
	parts := strings.Split(tp, "-")
	if len(parts) != 4 {
		t.Fatalf("malformed traceparent response header %q", tp)
	}
	return parts[1]
}

func TestTraceparentPropagation(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{Buffer: 16, Slow: -1})
	_, ts := testServer(t, func(c *Config) { c.Tracer = tracer })

	const remote = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, _ := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set("traceparent", remote)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := traceIDOf(t, resp); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("propagated trace id not reused: got %s", got)
	}

	// Malformed header: the server mints a fresh id instead of failing.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set("traceparent", "00-UPPERCASEID0000000000000000000000-b7ad6b7169203331-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fresh := traceIDOf(t, resp)
	if _, ok := obs.ParseTraceID(fresh); !ok {
		t.Fatalf("fresh trace id %q does not parse", fresh)
	}
	if fresh == "0af7651916cd43dd8448eb211c80319c" {
		t.Fatal("malformed traceparent should not reuse the previous id")
	}
}

func TestTraceTailRetention(t *testing.T) {
	// Nothing is slow enough and sampling is off: only errors survive.
	tracer := obs.NewTracer(obs.TracerConfig{Buffer: 16, Slow: time.Hour, SampleN: -1})
	_, ts := testServer(t, func(c *Config) { c.Tracer = tracer })

	for i := 0; i < 5; i++ {
		resp, _ := getJSON(t, ts.URL+"/v1/stats")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats: %d", resp.StatusCode)
		}
	}
	resp, _ := getJSON(t, ts.URL+"/v1/enumerate?query=bogus")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus query: want 404, got %d", resp.StatusCode)
	}
	errID := traceIDOf(t, resp)

	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	_, data := getJSON(t, ts.URL+"/debug/traces")
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	if len(list.Traces) != 1 {
		t.Fatalf("want exactly the error trace retained, got %d: %s", len(list.Traces), data)
	}
	if list.Traces[0].ID != errID || list.Traces[0].Status != http.StatusNotFound {
		t.Fatalf("retained trace mismatch: %+v (want id %s status 404)", list.Traces[0], errID)
	}

	// The status filter hides it; the ok filter shows nothing.
	_, data = getJSON(t, ts.URL+"/debug/traces?status=ok")
	list.Traces = nil
	if err := json.Unmarshal(data, &list); err != nil || len(list.Traces) != 0 {
		t.Fatalf("status=ok should hide the error trace: %s (err %v)", data, err)
	}
}

// TestColdBuildTraceExplorer is the end-to-end acceptance path: a cold
// index build behind GET /v1/enumerate is retained by the slow-trace
// rule, its span tree walks cache lookup → singleflight build →
// preprocessing phases → enumeration, and the structured access log
// carries the same trace id.
func TestColdBuildTraceExplorer(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{Buffer: 16, Slow: time.Millisecond, SampleN: -1})
	sink := &syncBuffer{}
	_, ts := testServer(t, func(c *Config) {
		c.Tracer = tracer
		c.Logger = slog.New(slog.NewJSONHandler(sink, nil))
	})

	qr := registerQuery(t, ts.URL, "big", "dist(x,y) <= 2", "x", "y")
	if resp, data := postJSON(t, ts.URL+"/v1/cache/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, data)
	}

	resp, _ := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enumerate: %d", resp.StatusCode)
	}
	id := traceIDOf(t, resp)

	resp, data := getJSON(t, ts.URL+"/debug/traces/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold build trace not retained: %d: %s", resp.StatusCode, data)
	}
	var det obs.TraceDetail
	if err := json.Unmarshal(data, &det); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	names := map[string]bool{}
	var walk func(ns []*obs.SpanNode)
	walk = func(ns []*obs.SpanNode) {
		for _, n := range ns {
			names[n.Name] = true
			walk(n.Children)
		}
	}
	walk(det.Tree)
	for _, want := range []string{
		"http.enumerate",
		"cache.lookup", "cache.flight", "cache.build",
		"preprocess", "preprocess.dist", "preprocess.cover",
		"enumerate.resume", "enumerate.scan",
	} {
		if !names[want] {
			t.Errorf("span %q missing from cold-build trace (have %v)", want, names)
		}
	}

	// The access log line and the build event share the trace id.
	var sawRequest, sawBuild bool
	for _, line := range sink.Lines() {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["trace_id"] != id {
			continue
		}
		switch rec["msg"] {
		case "request":
			if rec["endpoint"] == "enumerate" {
				sawRequest = true
			}
		case "index_build":
			sawBuild = true
		}
	}
	if !sawRequest || !sawBuild {
		t.Fatalf("log correlation incomplete: request=%v build=%v (trace %s)\n%s",
			sawRequest, sawBuild, id, strings.Join(sink.Lines(), "\n"))
	}
}

// TestRequestHistogramExemplar checks the histogram→trace bridge at the
// serve layer: after a traced request, the endpoint latency histogram
// remembers a trace id in the bucket the request landed in.
func TestRequestHistogramExemplar(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{Buffer: 16, Slow: -1})
	var reg *obs.Registry
	_, ts := testServer(t, func(c *Config) {
		c.Tracer = tracer
		reg = c.Metrics
	})

	resp, _ := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	id := traceIDOf(t, resp)

	snap := reg.Histogram("serve.http.stats_ns").Snapshot()
	found := false
	for _, bk := range snap.Buckets {
		if bk.Trace == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("no bucket of serve.http.stats_ns remembers trace %s: %+v", id, snap.Buckets)
	}
}
