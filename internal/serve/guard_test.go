package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"repro"
)

// TestColdResumeGuard is the tier-3 CI guard for the cursor contract:
// resuming a page is O(1) in stream position, warm or cold.
//
// Two assertions, each comparing medians over several trials with a
// generous constant factor (HTTP jitter, scheduler noise):
//
//  1. Warm: a page resumed deep into the stream costs no more than a
//     constant factor of the first page — NextGeq seeks in constant
//     time, so cursor depth is free.
//  2. Cold: after flushing the cache, a deep resume (rebuild + seek)
//     costs no more than a constant factor of a cold first page
//     (rebuild + seek) — the rebuild dominates both identically, and
//     the deep seek adds only O(1) on top.
//
// Gated behind SERVE_GUARD=1 (scripts/verify.sh tier 3) so ordinary test
// runs are not timing-sensitive.
func TestColdResumeGuard(t *testing.T) {
	if os.Getenv("SERVE_GUARD") == "" {
		t.Skip("set SERVE_GUARD=1 to run the cold-resume latency guard (scripts/verify.sh 3)")
	}
	const (
		factor   = 25.0
		trials   = 9
		pageSize = 64
	)
	g := repro.Generate("path", 6000, repro.GenOptions{Colors: 1, Seed: 2})
	s := NewServer(Config{
		Graphs:   map[string]*repro.Graph{"g": g},
		MaxLimit: 1 << 30,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qr := registerQuery(t, ts.URL, "g", "E(x,y)", "x", "y")

	// Fetch the whole stream once to place a cursor one page before the
	// end (the deepest resumable position).
	resp, data := getJSON(t, ts.URL+"/v1/enumerate?query="+qr.ID+"&limit=1000000000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full fetch: status %d: %s", resp.StatusCode, data)
	}
	all := mustDecode[EnumerateResponse](t, data)
	if len(all.Solutions) < 4*pageSize {
		t.Fatalf("only %d solutions; guard needs a deeper stream", len(all.Solutions))
	}
	deepCursor := encodeCursor(qr.ID, 0, all.Solutions[len(all.Solutions)-pageSize-1])

	firstURL := fmt.Sprintf("%s/v1/enumerate?query=%s&limit=%d", ts.URL, qr.ID, pageSize)
	deepURL := fmt.Sprintf("%s/v1/enumerate?cursor=%s&limit=%d", ts.URL, deepCursor, pageSize)

	timePage := func(url string, flushFirst bool) time.Duration {
		if flushFirst {
			s.cache.Flush()
		}
		start := time.Now()
		resp, data := getJSON(t, url)
		d := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page: status %d: %s", resp.StatusCode, data)
		}
		return d
	}
	median := func(url string, flushFirst bool) time.Duration {
		ds := make([]time.Duration, trials)
		for i := range ds {
			ds[i] = timePage(url, flushFirst)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[trials/2]
	}

	warmFirst := median(firstURL, false)
	warmDeep := median(deepURL, false)
	coldFirst := median(firstURL, true)
	coldDeep := median(deepURL, true)

	t.Logf("warm: first=%v deep=%v   cold: first=%v deep=%v", warmFirst, warmDeep, coldFirst, coldDeep)

	// Sub-millisecond medians are in HTTP-jitter territory; floor the
	// denominators so the ratios stay meaningful.
	floor := 200 * time.Microsecond
	if warmDeep > factor*max(warmFirst, floor) {
		t.Errorf("warm deep resume %v exceeds %.0f× warm first page %v — seek is not O(1)",
			warmDeep, factor, warmFirst)
	}
	if coldDeep > factor*max(coldFirst, floor) {
		t.Errorf("cold deep resume %v exceeds %.0f× cold first page %v — resume after rebuild is not O(1)",
			coldDeep, factor, coldFirst)
	}
}
