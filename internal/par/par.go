// Package par provides the bounded worker pool behind the parallel
// preprocessing pipeline (neighborhood covers, distance indexes, weak
// reachability scans, engine starter lists).
//
// Design constraints, in order of importance:
//
//  1. Determinism. Results are written by index (ordered fan-in), so a
//     computation parallelized with Map/ForEach produces byte-identical
//     output to its sequential counterpart whenever each task is a pure
//     function of its index. The differential tests in internal/core
//     enforce this end to end.
//  2. Bounded concurrency. At most Workers() tasks run at any moment;
//     excess tasks queue behind an atomic cursor.
//  3. Panic propagation. A panic inside a task aborts the remaining
//     queue and is re-raised in the caller as a *WorkerPanic carrying
//     the original value and the worker's stack.
//
// A Pool with one worker degrades to a plain inline loop (no goroutines,
// no synchronization), which is how `Parallelism: 1` reproduces the
// sequential path bit-for-bit at zero overhead.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool is a bounded worker pool. It is stateless between calls and may be
// reused for any number of ForEach/Map invocations, including from
// multiple goroutines.
type Pool struct {
	workers int
	m       *Metrics // nil = uninstrumented (the default fast path)
}

// Metrics instruments a Pool. All fields come from one obs.Registry; a
// batch is one ForEach/Map invocation. Utilization is the fraction of the
// worker-seconds of the last parallel batch actually spent in tasks — the
// rest is ramp-up/tail idle time — reported in per mille so it fits an
// integer gauge.
type Metrics struct {
	Tasks       *obs.Counter // tasks executed across all batches
	Batches     *obs.Counter // ForEach/Map invocations
	QueueDepth  *obs.Gauge   // unclaimed tasks of the batch in flight
	BusyNS      *obs.Counter // summed per-worker busy time
	WallNS      *obs.Counter // summed batch wall time
	Utilization *obs.Gauge   // busy/(wall·workers) of the last batch, ‰
}

// NewMetrics creates pool instruments named <prefix>.tasks,
// <prefix>.batches, <prefix>.queue_depth, <prefix>.busy_ns,
// <prefix>.wall_ns, and <prefix>.utilization_permille in reg. A nil
// registry yields a Metrics of sinks, which WithMetrics treats as "off".
func NewMetrics(reg *obs.Registry, prefix string) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Tasks:       reg.Counter(prefix + ".tasks"),
		Batches:     reg.Counter(prefix + ".batches"),
		QueueDepth:  reg.Gauge(prefix + ".queue_depth"),
		BusyNS:      reg.Counter(prefix + ".busy_ns"),
		WallNS:      reg.Counter(prefix + ".wall_ns"),
		Utilization: reg.Gauge(prefix + ".utilization_permille"),
	}
}

// WithMetrics returns a copy of the pool that records into m (nil m
// returns the pool unchanged). The uninstrumented pool pays a single nil
// check per batch, not per task.
func (p *Pool) WithMetrics(m *Metrics) *Pool {
	if m == nil {
		return p
	}
	return &Pool{workers: p.workers, m: m}
}

// Resolve normalizes a parallelism knob: values ≤ 0 mean "use all
// available CPUs" (runtime.GOMAXPROCS(0)).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// NewPool returns a pool with the given worker bound; workers ≤ 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	return &Pool{workers: Resolve(workers)}
}

// Sequential is the one-worker pool: every ForEach/Map call runs inline.
func Sequential() *Pool { return &Pool{workers: 1} }

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// WorkerPanic wraps a panic raised inside a pool task; it is re-panicked
// in the caller of ForEach/Map. Value is the original panic value and
// Stack the panicking worker's stack trace.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (w *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", w.Value, w.Stack)
}

// ForEach runs fn(i) for every i in [0, n), using at most Workers()
// concurrent goroutines. Tasks are handed out in index order; completion
// order is unspecified, so fn must only write to index-owned state. With
// one worker (or n ≤ 1) it runs inline, in order, on the caller's
// goroutine.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachWorker(n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the executing worker's id (in
// [0, Workers())) passed to fn, so callers can maintain per-worker scratch
// buffers: two tasks with the same worker id never run concurrently.
func (p *Pool) ForEachWorker(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	m := p.m
	if m != nil {
		m.Batches.Inc()
		m.Tasks.Add(int64(n))
	}
	if w <= 1 {
		if m == nil {
			for i := 0; i < n; i++ {
				fn(0, i)
			}
			return
		}
		// Inline batch: one worker is busy for the whole wall time.
		start := time.Now()
		for i := 0; i < n; i++ {
			m.QueueDepth.Set(int64(n - i))
			fn(0, i)
		}
		m.QueueDepth.Set(0)
		busy := time.Since(start).Nanoseconds()
		m.BusyNS.Add(busy)
		m.WallNS.Add(busy)
		m.Utilization.Set(1000)
		return
	}
	var (
		cursor  atomic.Int64
		aborted atomic.Bool
		once    sync.Once
		wp      *WorkerPanic
		wg      sync.WaitGroup
		busyNS  atomic.Int64
	)
	batchStart := time.Now()
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			if m != nil {
				workerStart := time.Now()
				defer func() { busyNS.Add(time.Since(workerStart).Nanoseconds()) }()
			}
			defer func() {
				if r := recover(); r != nil {
					aborted.Store(true)
					once.Do(func() {
						wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
					})
				}
			}()
			for !aborted.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if m != nil {
					m.QueueDepth.Set(int64(n - 1 - i))
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
	if m != nil {
		wall := time.Since(batchStart).Nanoseconds()
		m.QueueDepth.Set(0)
		m.BusyNS.Add(busyNS.Load())
		m.WallNS.Add(wall)
		if denom := wall * int64(w); denom > 0 {
			m.Utilization.Set(1000 * busyNS.Load() / denom)
		}
	}
	if wp != nil {
		panic(wp)
	}
}

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order (deterministic fan-in regardless of scheduling).
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
