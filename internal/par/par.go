// Package par provides the bounded worker pool behind the parallel
// preprocessing pipeline (neighborhood covers, distance indexes, weak
// reachability scans, engine starter lists).
//
// Design constraints, in order of importance:
//
//  1. Determinism. Results are written by index (ordered fan-in), so a
//     computation parallelized with Map/ForEach produces byte-identical
//     output to its sequential counterpart whenever each task is a pure
//     function of its index. The differential tests in internal/core
//     enforce this end to end.
//  2. Bounded concurrency. At most Workers() tasks run at any moment;
//     excess tasks queue behind an atomic cursor.
//  3. Panic propagation. A panic inside a task aborts the remaining
//     queue and is re-raised in the caller as a *WorkerPanic carrying
//     the original value and the worker's stack.
//
// A Pool with one worker degrades to a plain inline loop (no goroutines,
// no synchronization), which is how `Parallelism: 1` reproduces the
// sequential path bit-for-bit at zero overhead.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. It is stateless between calls and may be
// reused for any number of ForEach/Map invocations, including from
// multiple goroutines.
type Pool struct {
	workers int
}

// Resolve normalizes a parallelism knob: values ≤ 0 mean "use all
// available CPUs" (runtime.GOMAXPROCS(0)).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// NewPool returns a pool with the given worker bound; workers ≤ 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	return &Pool{workers: Resolve(workers)}
}

// Sequential is the one-worker pool: every ForEach/Map call runs inline.
func Sequential() *Pool { return &Pool{workers: 1} }

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// WorkerPanic wraps a panic raised inside a pool task; it is re-panicked
// in the caller of ForEach/Map. Value is the original panic value and
// Stack the panicking worker's stack trace.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (w *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", w.Value, w.Stack)
}

// ForEach runs fn(i) for every i in [0, n), using at most Workers()
// concurrent goroutines. Tasks are handed out in index order; completion
// order is unspecified, so fn must only write to index-owned state. With
// one worker (or n ≤ 1) it runs inline, in order, on the caller's
// goroutine.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachWorker(n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the executing worker's id (in
// [0, Workers())) passed to fn, so callers can maintain per-worker scratch
// buffers: two tasks with the same worker id never run concurrently.
func (p *Pool) ForEachWorker(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		cursor  atomic.Int64
		aborted atomic.Bool
		once    sync.Once
		wp      *WorkerPanic
		wg      sync.WaitGroup
	)
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					aborted.Store(true)
					once.Do(func() {
						wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
					})
				}
			}()
			for !aborted.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
	if wp != nil {
		panic(wp)
	}
}

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order (deterministic fan-in regardless of scheduling).
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
