package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

// TestMapOrderedFanIn checks that results land at their own index no
// matter how tasks are scheduled.
func TestMapOrderedFanIn(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		p := NewPool(workers)
		for trial := 0; trial < 20; trial++ {
			n := 1 + trial*13
			out := Map(p, n, func(i int) int { return i * i })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d n=%d: out[%d] = %d, want %d", workers, n, i, v, i*i)
				}
			}
		}
	}
}

// TestForEachCoversEveryIndexOnce counts task executions per index.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	p := NewPool(4)
	n := 10_000
	counts := make([]atomic.Int32, n)
	p.ForEach(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

// TestBoundedConcurrency asserts the number of simultaneously running
// tasks never exceeds the worker bound.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var running, peak atomic.Int32
	p.ForEach(200, func(int) {
		cur := running.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		runtime.Gosched()
		running.Add(-1)
	})
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", peak.Load(), workers)
	}
}

// TestForEachWorkerScratchExclusivity verifies two tasks with the same
// worker id never overlap, so per-worker scratch needs no locking.
func TestForEachWorkerScratchExclusivity(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	busy := make([]atomic.Bool, workers)
	p.ForEachWorker(2000, func(wk, i int) {
		if wk < 0 || wk >= workers {
			t.Errorf("worker id %d out of range", wk)
		}
		if !busy[wk].CompareAndSwap(false, true) {
			t.Errorf("worker %d entered concurrently", wk)
		}
		runtime.Gosched()
		busy[wk].Store(false)
	})
}

// TestPanicPropagation checks that a task panic resurfaces in the caller
// with the original value attached.
func TestPanicPropagation(t *testing.T) {
	p := NewPool(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", r)
		}
		if wp.Value != "boom-17" {
			t.Fatalf("panic value %v, want boom-17", wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Fatal("worker stack not captured")
		}
	}()
	p.ForEach(100, func(i int) {
		if i == 17 {
			panic("boom-17")
		}
	})
}

// TestPanicPropagationSequential covers the inline (one-worker) path,
// where the panic flows through undisturbed Go panicking.
func TestPanicPropagationSequential(t *testing.T) {
	p := Sequential()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate on the inline path")
		}
	}()
	p.ForEach(3, func(i int) {
		if i == 1 {
			panic("inline")
		}
	})
}

// TestPoolReuse runs many rounds through one pool, including concurrent
// use of the same pool from several goroutines.
func TestPoolReuse(t *testing.T) {
	p := NewPool(3)
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.ForEach(100, func(i int) { total.Add(int64(i)) })
	}
	want := int64(50 * (100 * 99 / 2))
	if total.Load() != want {
		t.Fatalf("total %d, want %d", total.Load(), want)
	}

	var wg sync.WaitGroup
	var grand atomic.Int64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				s := Map(p, 64, func(i int) int64 { return int64(i) })
				var sum int64
				for _, v := range s {
					sum += v
				}
				grand.Add(sum)
			}
		}()
	}
	wg.Wait()
	if want := int64(4 * 20 * (64 * 63 / 2)); grand.Load() != want {
		t.Fatalf("concurrent reuse total %d, want %d", grand.Load(), want)
	}
}

// TestZeroAndTinyN covers the degenerate sizes.
func TestZeroAndTinyN(t *testing.T) {
	p := NewPool(8)
	p.ForEach(0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	p.ForEach(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

// TestPoolMetrics checks the instrumented paths: task/batch counters,
// busy/wall accounting, and that results are unchanged by instrumentation.
func TestPoolMetrics(t *testing.T) {
	reg := obs.New()
	m := NewMetrics(reg, "pool")

	// Parallel batch.
	p := NewPool(4).WithMetrics(m)
	var sum atomic.Int64
	p.ForEach(100, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 100*99/2 {
		t.Fatalf("instrumented ForEach sum %d", sum.Load())
	}
	if got := m.Tasks.Load(); got != 100 {
		t.Fatalf("tasks %d, want 100", got)
	}
	if got := m.Batches.Load(); got != 1 {
		t.Fatalf("batches %d, want 1", got)
	}
	if m.WallNS.Load() <= 0 || m.BusyNS.Load() <= 0 {
		t.Fatalf("wall %d / busy %d not recorded", m.WallNS.Load(), m.BusyNS.Load())
	}
	if m.QueueDepth.Load() != 0 {
		t.Fatalf("queue depth %d after batch, want 0", m.QueueDepth.Load())
	}
	u := m.Utilization.Load()
	if u < 0 || u > 1000 {
		t.Fatalf("utilization %d‰ out of range", u)
	}

	// Inline (sequential) batch accumulates into the same instruments.
	s := Sequential().WithMetrics(m)
	s.ForEach(10, func(int) {})
	if got := m.Tasks.Load(); got != 110 {
		t.Fatalf("tasks %d, want 110", got)
	}
	if got := m.Batches.Load(); got != 2 {
		t.Fatalf("batches %d, want 2", got)
	}
	if got := m.Utilization.Load(); got != 1000 {
		t.Fatalf("inline utilization %d‰, want 1000", got)
	}

	// The registry export sees the same numbers.
	snap := reg.Snapshot()
	if snap.Counters["pool.tasks"] != 110 {
		t.Fatalf("registry export %v", snap.Counters)
	}
}

// TestWithMetricsNil keeps the uninstrumented pool untouched.
func TestWithMetricsNil(t *testing.T) {
	p := NewPool(4)
	if p.WithMetrics(nil) != p {
		t.Fatal("WithMetrics(nil) must return the receiver")
	}
	if NewMetrics(nil, "x") != nil {
		t.Fatal("NewMetrics(nil reg) must be nil")
	}
}
