package conform_test

import (
	"context"
	"testing"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/graph"
	"repro/internal/lowdeg"
)

// compileCase compiles a conformance case's query into the decomposed
// LocalQuery both engines consume.
func compileCase(t *testing.T, c conform.Case) *core.LocalQuery {
	t.Helper()
	phi := fo.MustParse(c.Query)
	vars := make([]fo.Var, len(c.Vars))
	for i, v := range c.Vars {
		vars[i] = fo.Var(v)
	}
	q, err := core.Compile(phi, vars, core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: compile: %v", c.Name, err)
	}
	return q
}

// systems builds the three engines for one (graph, query) instance and
// wraps them for the conformance checks.
func systems(t *testing.T, g *graph.Graph, q *core.LocalQuery, name string) ([]conform.System, *conform.NaiveEngine) {
	t.Helper()
	ce, err := core.Preprocess(g, q, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("%s: core preprocess: %v", name, err)
	}
	le, err := lowdeg.Preprocess(g, q, lowdeg.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("%s: lowdeg preprocess: %v", name, err)
	}
	ne := conform.NewNaive(g, q)
	return []conform.System{
		{Name: name + "/core", Engine: ce, K: q.K, N: g.N(),
			NewCursor: func(a []graph.V) conform.Cursor { return ce.IteratorFrom(a) }},
		{Name: name + "/lowdeg", Engine: le, K: q.K, N: g.N(),
			NewCursor: func(a []graph.V) conform.Cursor { return le.IteratorFrom(a) }},
		{Name: name + "/naive", Engine: ne, K: q.K, N: g.N(), NewCursor: ne.Cursor},
	}, ne
}

// TestCrossEngineBattery is the headline differential battery: every
// conformance case is answered by the core engine, the lowdeg engine and
// the naive oracle, and all three must agree on every face of the
// contract (enumeration order, NextGeq resume points, Test membership,
// counts, cursor paging, NextLast).
func TestCrossEngineBattery(t *testing.T) {
	for _, c := range conform.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			g := c.Graph()
			q := compileCase(t, c)
			syss, ne := systems(t, g, q, c.Name)
			want := ne.Solutions()
			if c.Empty && len(want) != 0 {
				t.Fatalf("case %s marked Empty but the oracle found %d solutions", c.Name, len(want))
			}
			if !c.Empty && len(want) == 0 {
				t.Fatalf("case %s has an empty answer set; it exercises nothing", c.Name)
			}
			for _, sys := range syss {
				if err := conform.CheckAll(sys, want); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestCrossEngineMutation drives the same edit batch through each
// engine's mutation path — core's incremental ApplyEdits, lowdeg's
// documented rebuild fallback — and checks both against the oracle on
// the patched graph.
func TestCrossEngineMutation(t *testing.T) {
	for _, c := range conform.Cases()[:4] {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			g := c.Graph()
			q := compileCase(t, c)
			ce, err := core.Preprocess(g, q, core.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			le, err := lowdeg.Preprocess(g, q, lowdeg.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			edits := []graph.Edit{
				{Op: graph.AddEdge, U: 0, V: g.N() / 2},
				{Op: graph.RemoveEdge, U: 0, V: 1},
				{Op: graph.AddColor, U: g.N() - 1, Color: 0},
			}
			g2, err := graph.Patch(g, edits)
			if err != nil {
				t.Fatal(err)
			}
			ce2, err := ce.ApplyEdits(context.Background(), edits)
			if err != nil {
				t.Fatalf("core ApplyEdits: %v", err)
			}
			le2, err := le.ApplyEdits(context.Background(), edits)
			if err != nil {
				t.Fatalf("lowdeg ApplyEdits: %v", err)
			}
			if le2 == le {
				t.Fatal("lowdeg ApplyEdits returned the same engine for a non-identity batch")
			}
			want := conform.NewNaive(g2, q).Solutions()
			for _, sys := range []conform.System{
				{Name: c.Name + "/core+edits", Engine: ce2, K: q.K, N: g2.N(),
					NewCursor: func(a []graph.V) conform.Cursor { return ce2.IteratorFrom(a) }},
				{Name: c.Name + "/lowdeg+edits", Engine: le2, K: q.K, N: g2.N(),
					NewCursor: func(a []graph.V) conform.Cursor { return le2.IteratorFrom(a) }},
			} {
				if err := conform.CheckAll(sys, want); err != nil {
					t.Error(err)
				}
			}
			// An edit batch that nets out to the identity must return the
			// lowdeg receiver unchanged (graph.Equal, not fingerprints).
			undo := []graph.Edit{
				{Op: graph.AddEdge, U: 2, V: 4},
				{Op: graph.RemoveEdge, U: 2, V: 4},
			}
			if g.HasEdge(2, 4) {
				undo = []graph.Edit{
					{Op: graph.RemoveEdge, U: 2, V: 4},
					{Op: graph.AddEdge, U: 2, V: 4},
				}
			}
			le3, err := le.ApplyEdits(context.Background(), undo)
			if err != nil {
				t.Fatal(err)
			}
			if le3 != le {
				t.Error("lowdeg ApplyEdits rebuilt for an identity batch")
			}
		})
	}
}
