// Package conform is the engine-contract conformance kit: one shared set
// of query cases and one shared set of checks that every enumeration
// engine in the repo — the nowhere-dense core engine, the low-degree
// lowdeg engine and the naive Θ(n^k) oracle — must pass identically.
//
// The checks cover the full answering contract: enumeration order and
// completeness, NextGeq resume points (zero tuple, every solution, every
// successor, past-end), Test membership on a deterministic tuple grid,
// Count/FastCount agreement, cursor paging with mid-stream re-Seek, and
// NextLast partner stepping. All helpers return errors instead of taking
// a *testing.T so the fuzz harness can reuse them verbatim.
package conform

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/naive"
)

// Case is one conformance scenario: a generated graph and a query, with
// Empty marking cases whose answer set is empty by construction (the
// query demands color C1 on a graph generated with a single color).
type Case struct {
	Name   string
	Class  gen.Class
	N      int
	Seed   int64
	Colors int
	Query  string
	Vars   []string
	Empty  bool
}

// Cases returns the shared battery: the differential scenarios that every
// engine must agree on, plus explicit empty-answer-set cases.
func Cases() []Case {
	return []Case{
		{Name: "path-far", Class: gen.Path, N: 60, Seed: 1, Colors: 2,
			Query: "dist(x,y) > 2 & C0(y)", Vars: []string{"x", "y"}},
		{Name: "grid-far-colored", Class: gen.Grid, N: 64, Seed: 1, Colors: 2,
			Query: "dist(x,y) > 1 & C0(x) & C1(y)", Vars: []string{"x", "y"}},
		{Name: "tree-edge", Class: gen.RandomTree, N: 70, Seed: 1, Colors: 2,
			Query: "E(x,y) & C0(x)", Vars: []string{"x", "y"}},
		{Name: "caterpillar-witness", Class: gen.Caterpillar, N: 50, Seed: 1, Colors: 2,
			Query: "dist(x,y) > 2 & (exists z (E(x,z) & C0(z)))", Vars: []string{"x", "y"}},
		{Name: "sparse-far", Class: gen.SparseRandom, N: 55, Seed: 1, Colors: 2,
			Query: "dist(x,y) > 2 & C0(x)", Vars: []string{"x", "y"}},
		{Name: "bdeg-ternary", Class: gen.BoundedDegree, N: 48, Seed: 1, Colors: 2,
			Query: "dist(x,y) > 1 & dist(y,z) > 1 & dist(x,z) > 1 & C0(x)", Vars: []string{"x", "y", "z"}},
		{Name: "star-mixed", Class: gen.Star, N: 40, Seed: 1, Colors: 2,
			Query: "C0(x) & C1(y) & dist(x,y) > 1", Vars: []string{"x", "y"}},
		{Name: "cycle-close", Class: gen.Cycle, N: 45, Seed: 1, Colors: 2,
			Query: "dist(x,y) <= 2 & C0(x)", Vars: []string{"x", "y"}},
		// Empty answer sets: C1 can never hold on a 1-color graph
		// (Bitset.Has is bounds-checked), so these are empty regardless of
		// the generator's probabilistic coloring.
		{Name: "empty-unary", Class: gen.Path, N: 30, Seed: 2, Colors: 1,
			Query: "C1(x)", Vars: []string{"x"}, Empty: true},
		{Name: "empty-far", Class: gen.Path, N: 30, Seed: 2, Colors: 1,
			Query: "C1(x) & dist(x,y) > 2", Vars: []string{"x", "y"}, Empty: true},
		{Name: "empty-close", Class: gen.Cycle, N: 24, Seed: 2, Colors: 1,
			Query: "C1(y) & dist(x,y) <= 2", Vars: []string{"x", "y"}, Empty: true},
	}
}

// Graph generates the case's input graph.
func (c Case) Graph() *graph.Graph {
	return gen.Generate(c.Class, c.N, gen.Options{Seed: c.Seed, Colors: c.Colors})
}

// Engine is the answering contract shared by core.Engine, lowdeg.Engine
// and the naive oracle adapter. (Arity and graph size travel in System —
// the engines expose them through different APIs.)
type Engine interface {
	NextGeq(a []graph.V) ([]graph.V, bool)
	Test(a []graph.V) bool
	Enumerate(yield func([]graph.V) bool)
	Count() int
}

// FastCounter is the optional sublinear counting face.
type FastCounter interface {
	FastCount() (int, bool)
}

// NextLaster is the optional Lemma 5.2 face.
type NextLaster interface {
	NextLast(prefix []graph.V, b graph.V) (graph.V, bool)
}

// Cursor is the pull-iterator face (core.Iterator, lowdeg.Iterator, or
// the materialized naive cursor).
type Cursor interface {
	Seek(a []graph.V)
	HasNext() bool
	Next() ([]graph.V, bool)
}

// System binds an engine instance to the checks: the engine, its arity
// and graph size, and a constructor for a cursor positioned at the
// smallest solution ≥ a.
type System struct {
	Name      string
	Engine    Engine
	K         int
	N         int
	NewCursor func(a []graph.V) Cursor
}

// Materialize drains the engine's Enumerate into an owned slice.
func Materialize(e Engine) [][]graph.V {
	var out [][]graph.V
	e.Enumerate(func(sol []graph.V) bool {
		out = append(out, append([]graph.V(nil), sol...))
		return true
	})
	return out
}

// CheckAll runs every conformance check of sys against the expected
// solution list (lexicographically sorted, deduplicated).
func CheckAll(sys System, want [][]graph.V) error {
	if err := CheckEnumeration(sys, want); err != nil {
		return err
	}
	if err := CheckNextGeq(sys, want); err != nil {
		return err
	}
	if err := CheckTest(sys, want); err != nil {
		return err
	}
	if err := CheckCounts(sys, want); err != nil {
		return err
	}
	if err := CheckCursor(sys, want); err != nil {
		return err
	}
	return CheckNextLast(sys, want)
}

// CheckEnumeration verifies Enumerate yields exactly want, in order, and
// that early termination by the yield callback is honored.
func CheckEnumeration(sys System, want [][]graph.V) error {
	got := Materialize(sys.Engine)
	if len(got) != len(want) {
		return fmt.Errorf("%s: enumeration yielded %d solutions, want %d", sys.Name, len(got), len(want))
	}
	for i := range got {
		if !tupleEq(got[i], want[i]) {
			return fmt.Errorf("%s: solution %d = %v, want %v", sys.Name, i, got[i], want[i])
		}
	}
	if len(want) > 1 {
		n := 0
		sys.Engine.Enumerate(func([]graph.V) bool { n++; return n < 2 })
		if n != 2 {
			return fmt.Errorf("%s: yield-false stopped after %d solutions, want 2", sys.Name, n)
		}
	}
	return nil
}

// CheckNextGeq probes the resume-point contract: the zero tuple resumes
// at the first solution, every solution resumes at itself, every
// successor resumes at the next solution, and a probe past the last
// solution (or on an empty answer set) reports exhaustion.
func CheckNextGeq(sys System, want [][]graph.V) error {
	if sys.N == 0 {
		return nil
	}
	zero := make([]graph.V, sys.K)
	if len(want) == 0 {
		if sol, ok := sys.Engine.NextGeq(zero); ok {
			return fmt.Errorf("%s: NextGeq(zero) = %v on an empty answer set", sys.Name, sol)
		}
		return nil
	}
	if sol, ok := sys.Engine.NextGeq(zero); !ok || !tupleEq(sol, want[0]) {
		return fmt.Errorf("%s: NextGeq(zero) = %v,%v, want %v", sys.Name, sol, ok, want[0])
	}
	for i, w := range want {
		if sol, ok := sys.Engine.NextGeq(w); !ok || !tupleEq(sol, w) {
			return fmt.Errorf("%s: NextGeq(%v) = %v,%v, want itself", sys.Name, w, sol, ok)
		}
		succ, carry := incTuple(w, sys.N)
		if !carry {
			continue // w is the maximum tuple; nothing is above it
		}
		if i+1 < len(want) {
			if sol, ok := sys.Engine.NextGeq(succ); !ok || !tupleEq(sol, want[i+1]) {
				return fmt.Errorf("%s: NextGeq(%v) = %v,%v, want %v", sys.Name, succ, sol, ok, want[i+1])
			}
		} else if sol, ok := sys.Engine.NextGeq(succ); ok {
			return fmt.Errorf("%s: NextGeq(%v) past the last solution = %v", sys.Name, succ, sol)
		}
	}
	return nil
}

// CheckTest probes membership on every solution and on a deterministic
// stride grid over the whole tuple space (at most ~600 negative probes).
func CheckTest(sys System, want [][]graph.V) error {
	in := map[string]bool{}
	for _, w := range want {
		in[fmt.Sprint(w)] = true
		if !sys.Engine.Test(w) {
			return fmt.Errorf("%s: Test(%v) = false on a solution", sys.Name, w)
		}
	}
	total := 1
	for i := 0; i < sys.K; i++ {
		total *= sys.N
	}
	stride := total/600 + 1
	tuple := make([]graph.V, sys.K)
	for idx := 0; idx < total; idx += stride {
		x := idx
		for p := sys.K - 1; p >= 0; p-- {
			tuple[p] = x % sys.N
			x /= sys.N
		}
		if got, member := sys.Engine.Test(tuple), in[fmt.Sprint(tuple)]; got != member {
			return fmt.Errorf("%s: Test(%v) = %v, want %v", sys.Name, tuple, got, member)
		}
	}
	return nil
}

// CheckCounts verifies Count and, when the engine supports it, FastCount.
func CheckCounts(sys System, want [][]graph.V) error {
	if got := sys.Engine.Count(); got != len(want) {
		return fmt.Errorf("%s: Count = %d, want %d", sys.Name, got, len(want))
	}
	if fc, ok := sys.Engine.(FastCounter); ok {
		if got, supported := fc.FastCount(); supported && got != len(want) {
			return fmt.Errorf("%s: FastCount = %d, want %d", sys.Name, got, len(want))
		}
	}
	return nil
}

// CheckCursor pages through the cursor face at several page sizes (the
// pages must concatenate to exactly the solution list), re-Seeks
// mid-stream, and checks the empty/past-end cursor reports no next.
func CheckCursor(sys System, want [][]graph.V) error {
	if sys.NewCursor == nil {
		return nil
	}
	zero := make([]graph.V, sys.K)
	for _, page := range []int{1, 3, 7} {
		it := sys.NewCursor(zero)
		var got [][]graph.V
		for it.HasNext() {
			for i := 0; i < page && it.HasNext(); i++ {
				sol, ok := it.Next()
				if !ok {
					return fmt.Errorf("%s: cursor Next = false while HasNext", sys.Name)
				}
				got = append(got, append([]graph.V(nil), sol...))
			}
		}
		if _, ok := it.Next(); ok {
			return fmt.Errorf("%s: drained cursor produced another solution", sys.Name)
		}
		if len(got) != len(want) {
			return fmt.Errorf("%s: cursor(page=%d) yielded %d solutions, want %d", sys.Name, page, len(got), len(want))
		}
		for i := range got {
			if !tupleEq(got[i], want[i]) {
				return fmt.Errorf("%s: cursor(page=%d) solution %d = %v, want %v", sys.Name, page, i, got[i], want[i])
			}
		}
	}
	// Mid-stream re-Seek: position at the middle solution and drain.
	if len(want) > 1 {
		mid := len(want) / 2
		it := sys.NewCursor(zero)
		it.Seek(want[mid])
		for i := mid; i < len(want); i++ {
			sol, ok := it.Next()
			if !ok || !tupleEq(sol, want[i]) {
				return fmt.Errorf("%s: re-seek cursor at %d = %v,%v, want %v", sys.Name, i, sol, ok, want[i])
			}
		}
		if it.HasNext() {
			return fmt.Errorf("%s: re-seek cursor did not drain", sys.Name)
		}
	}
	return nil
}

// CheckNextLast exercises the Lemma 5.2 face on engines that have one:
// for every solution, its (k−1)-prefix must step through exactly its
// partner list.
func CheckNextLast(sys System, want [][]graph.V) error {
	nl, ok := sys.Engine.(NextLaster)
	if !ok || sys.K < 2 || sys.N == 0 {
		return nil
	}
	// partners[prefix] = sorted last coordinates.
	partners := map[string][]graph.V{}
	var prefixes [][]graph.V
	for _, w := range want {
		key := fmt.Sprint(w[:sys.K-1])
		if _, seen := partners[key]; !seen {
			prefixes = append(prefixes, append([]graph.V(nil), w[:sys.K-1]...))
		}
		partners[key] = append(partners[key], w[sys.K-1])
	}
	for _, prefix := range prefixes {
		key := fmt.Sprint(prefix)
		b := graph.V(0)
		for _, wantB := range partners[key] {
			got, ok := nl.NextLast(prefix, b)
			if !ok || got != wantB {
				return fmt.Errorf("%s: NextLast(%v, %d) = %v,%v, want %d", sys.Name, prefix, b, got, ok, wantB)
			}
			b = got + 1
			if b >= sys.N {
				break
			}
		}
		last := partners[key][len(partners[key])-1]
		if last+1 < sys.N {
			if got, ok := nl.NextLast(prefix, last+1); ok {
				return fmt.Errorf("%s: NextLast(%v, %d) past the last partner = %d", sys.Name, prefix, last+1, got)
			}
		}
	}
	// A prefix with no partners at all must answer false immediately.
	noSol := make([]graph.V, sys.K-1)
	for v := 0; v < sys.N; v++ {
		noSol[0] = v
		if _, seen := partners[fmt.Sprint(noSol)]; !seen {
			if got, ok := nl.NextLast(noSol, 0); ok {
				return fmt.Errorf("%s: NextLast(%v, 0) = %d on a partnerless prefix", sys.Name, noSol, got)
			}
			break
		}
	}
	return nil
}

// NaiveEngine adapts the Θ(n^k) reference oracle to the Engine contract
// by materializing naive.SolutionsLocal once and answering from the
// sorted list. It exists so the conformance checks themselves are
// validated against an implementation with no shared code or data
// structures with either real engine.
type NaiveEngine struct {
	sols [][]graph.V
	k, n int
}

// NewNaive builds the oracle adapter for q over g.
func NewNaive(g *graph.Graph, q *core.LocalQuery) *NaiveEngine {
	sols := naive.SolutionsLocal(g, q)
	sort.Slice(sols, func(i, j int) bool { return lexLess(sols[i], sols[j]) })
	return &NaiveEngine{sols: sols, k: q.K, n: g.N()}
}

// Solutions returns the materialized solution list (sorted, owned by the
// adapter) — the `want` input for the checks.
func (e *NaiveEngine) Solutions() [][]graph.V { return e.sols }

func (e *NaiveEngine) NextGeq(a []graph.V) ([]graph.V, bool) {
	i := sort.Search(len(e.sols), func(i int) bool { return !lexLess(e.sols[i], a) })
	if i == len(e.sols) {
		return nil, false
	}
	return e.sols[i], true
}

func (e *NaiveEngine) Test(a []graph.V) bool {
	i := sort.Search(len(e.sols), func(i int) bool { return !lexLess(e.sols[i], a) })
	return i < len(e.sols) && tupleEq(e.sols[i], a)
}

func (e *NaiveEngine) Enumerate(yield func([]graph.V) bool) {
	for _, s := range e.sols {
		if !yield(s) {
			return
		}
	}
}

func (e *NaiveEngine) Count() int { return len(e.sols) }

func (e *NaiveEngine) NextLast(prefix []graph.V, b graph.V) (graph.V, bool) {
	for _, s := range e.sols {
		if tupleEq(s[:e.k-1], prefix) && s[e.k-1] >= b {
			return s[e.k-1], true
		}
	}
	return 0, false
}

// naiveCursor pages over the materialized list.
type naiveCursor struct {
	e   *NaiveEngine
	idx int
}

// Cursor returns a cursor positioned at the smallest solution ≥ a.
func (e *NaiveEngine) Cursor(a []graph.V) Cursor {
	c := &naiveCursor{e: e}
	c.Seek(a)
	return c
}

func (c *naiveCursor) Seek(a []graph.V) {
	c.idx = sort.Search(len(c.e.sols), func(i int) bool { return !lexLess(c.e.sols[i], a) })
}

func (c *naiveCursor) HasNext() bool { return c.idx < len(c.e.sols) }

func (c *naiveCursor) Next() ([]graph.V, bool) {
	if c.idx >= len(c.e.sols) {
		return nil, false
	}
	s := c.e.sols[c.idx]
	c.idx++
	return s, true
}

func tupleEq(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lexLess(a, b []graph.V) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// incTuple returns the lexicographic successor of a over [0,n)^k.
func incTuple(a []graph.V, n int) ([]graph.V, bool) {
	out := append([]graph.V(nil), a...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i]+1 < n {
			out[i]++
			return out, true
		}
		out[i] = 0
	}
	return nil, false
}
