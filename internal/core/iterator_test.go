package core

import (
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestIteratorMatchesEnumerate(t *testing.T) {
	q := buildQ2(t)
	g := gen.Generate(gen.Grid, 144, gen.Options{Seed: 4, Colors: 1, ColorProb: 0.3})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := materializeEngine(e)
	it := e.Iterator()
	var got [][]graph.V
	for {
		s, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, append([]graph.V(nil), s...))
	}
	if _, ok := tuplesEqual(got, want); !ok {
		t.Fatalf("iterator produced %d tuples, enumerate %d", len(got), len(want))
	}
	if it.HasNext() {
		t.Fatal("exhausted iterator claims more")
	}
	if _, ok := it.Next(); ok {
		t.Fatal("exhausted iterator yielded")
	}
}

func TestIteratorSeek(t *testing.T) {
	q := buildQ2(t)
	g := gen.Generate(gen.Caterpillar, 120, gen.Options{Seed: 5, Colors: 1, ColorProb: 0.3})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all := materializeEngine(e)
	if len(all) < 10 {
		t.Skip("too few solutions for a seek test")
	}
	mid := all[len(all)/2]
	it := e.IteratorFrom(mid)
	s, ok := it.Next()
	if !ok || s[0] != mid[0] || s[1] != mid[1] {
		t.Fatalf("IteratorFrom(%v) first = %v,%v", mid, s, ok)
	}
	// Seek backwards works too.
	it.Seek(all[2])
	s, ok = it.Next()
	if !ok || s[0] != all[2][0] || s[1] != all[2][1] {
		t.Fatalf("Seek(%v) -> %v,%v", all[2], s, ok)
	}
}

// TestIteratorMultiClauseMerge drives the k-way merge across a query that
// compiles into several clauses with overlapping solutions.
func TestIteratorMultiClauseMerge(t *testing.T) {
	phi := fo.MustParse("dist(x,y) <= 1 & C1(x) | dist(x,y) > 2 & C0(x) | dist(x,y) > 2 & C1(y)")
	q, err := Compile(phi, []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.KingGrid, 100, gen.Options{Seed: 7, Colors: 2, ColorProb: 0.3})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := materializeEngine(e)
	it := e.Iterator()
	var got [][]graph.V
	for {
		s, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, append([]graph.V(nil), s...))
	}
	if i, ok := tuplesEqual(got, want); !ok {
		t.Fatalf("merge mismatch near %d: %d vs %d tuples (%v vs %v)",
			i, len(got), len(want), safeIndex(got, i), safeIndex(want, i))
	}
	// No duplicates even when clauses share tuples.
	for i := 1; i < len(got); i++ {
		if !lexLess(got[i-1], got[i]) {
			t.Fatalf("duplicate or disorder at %d: %v, %v", i, got[i-1], got[i])
		}
	}
}

func TestIteratorEmptyResult(t *testing.T) {
	q := buildQ2(t)
	g := gen.Generate(gen.Grid, 36, gen.Options{}) // uncolored: no solutions
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	it := e.Iterator()
	if it.HasNext() {
		t.Fatal("empty result has next")
	}
}

// TestIteratorProperties: Next(a) ≥ a, Test(Next(a)) holds, and NextGeq is
// idempotent on its own output.
func TestIteratorProperties(t *testing.T) {
	q := buildQ2(t)
	g := gen.Generate(gen.RandomTree, 200, gen.Options{Seed: 6, Colors: 1, ColorProb: 0.2})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		a := []graph.V{(trial * 13) % g.N(), (trial * 29) % g.N()}
		s, ok := e.NextGeq(a)
		if !ok {
			continue
		}
		if lexLess(s, a) {
			t.Fatalf("NextGeq(%v) = %v < input", a, s)
		}
		if !e.Test(s) {
			t.Fatalf("NextGeq(%v) = %v is not a solution", a, s)
		}
		again, ok2 := e.NextGeq(s)
		if !ok2 || again[0] != s[0] || again[1] != s[1] {
			t.Fatalf("NextGeq not idempotent at %v: %v,%v", s, again, ok2)
		}
	}
}
