package core

import (
	"math/rand"
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestNextLastMatchesMaterialized checks Lemma 5.2 against the
// materialized answer set: for random prefixes and thresholds, NextLast
// returns exactly the first completion ≥ b.
func TestNextLastMatchesMaterialized(t *testing.T) {
	for _, src := range []string{
		"dist(x,y) > 2 & C0(y)",
		"dist(x,y) <= 2 & C0(x) & C1(y)",
		"dist(x,y) <= 1 & C1(x) | dist(x,y) > 2 & C0(y)",
	} {
		q, err := Compile(fo.MustParse(src), []fo.Var{"x", "y"}, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		g := gen.Generate(gen.KingGrid, 120, gen.Options{Seed: 3, Colors: 2, ColorProb: 0.3})
		e, err := Preprocess(g, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sols := materializeEngine(e)
		// Index solutions by prefix for the oracle.
		byPrefix := map[graph.V][]graph.V{}
		for _, s := range sols {
			byPrefix[s[0]] = append(byPrefix[s[0]], s[1])
		}
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 800; trial++ {
			a := rng.Intn(g.N())
			b := rng.Intn(g.N())
			want, has := graph.V(-1), false
			for _, y := range byPrefix[a] { // sorted by construction
				if y >= b {
					want, has = y, true
					break
				}
			}
			got, ok := e.NextLast([]graph.V{a}, b)
			if ok != has || (ok && got != want) {
				t.Fatalf("%s: NextLast(%d, %d) = %d,%v want %d,%v",
					src, a, b, got, ok, want, has)
			}
		}
	}
}

// TestNextLastArity3 exercises the prefix checks (internal pattern and
// completed components) with a 2-element prefix.
func TestNextLastArity3(t *testing.T) {
	src := "dist(x,z) > 2 & dist(y,z) > 2 & C0(z)"
	q, err := Compile(fo.MustParse(src), []fo.Var{"x", "y", "z"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.Grid, 36, gen.Options{Seed: 9, Colors: 1, ColorProb: 0.4})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sols := materializeEngine(e)
	type pfx struct{ x, y graph.V }
	byPrefix := map[pfx][]graph.V{}
	for _, s := range sols {
		byPrefix[pfx{s[0], s[1]}] = append(byPrefix[pfx{s[0], s[1]}], s[2])
	}
	for x := 0; x < g.N(); x += 5 {
		for y := 0; y < g.N(); y += 7 {
			for b := 0; b < g.N(); b += 11 {
				want, has := graph.V(-1), false
				for _, z := range byPrefix[pfx{x, y}] {
					if z >= b {
						want, has = z, true
						break
					}
				}
				got, ok := e.NextLast([]graph.V{x, y}, b)
				if ok != has || (ok && got != want) {
					t.Fatalf("NextLast(%d,%d; %d) = %d,%v want %d,%v", x, y, b, got, ok, want, has)
				}
			}
		}
	}
}
