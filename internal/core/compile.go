package core

import (
	"fmt"

	"repro/internal/fo"
)

// CompileOptions tunes Compile.
type CompileOptions struct {
	// R overrides the distance-type threshold (default: the largest
	// distance constant of the formula, at least 1).
	R int
	// LocalRadius overrides ρ (default: (qrank+1)·maxAtomDistance, at
	// least R). It must be large enough that every quantified witness of
	// the residual local formulas lies within distance ρ of the free
	// variables; Compile cannot verify this for arbitrary quantification —
	// see DESIGN.md §3.
	LocalRadius int
}

// Compile translates an FO⁺ query φ(x̄) into the decomposed LocalQuery form
// consumed by the engine — the role the Rank-Preserving Normal Form Theorem
// (Theorem 5.4) plays in the paper. vars fixes the tuple positions: vars[p]
// is the variable of position p.
//
// The supported fragment: Boolean combinations of (i) atoms over the free
// variables (E, colors, =, dist ≤ d), (ii) subformulas (possibly
// quantified) whose free variables all fall into one connected component of
// the distance type under consideration, and (iii) sentences (which become
// clause guards). A formula whose quantified subformulas straddle
// components, or whose distance atoms cross components with a constant
// above the threshold R, is rejected.
func Compile(phi fo.Formula, vars []fo.Var, opt CompileOptions) (*LocalQuery, error) {
	k := len(vars)
	if k < 1 {
		return nil, fmt.Errorf("core: need at least one position variable")
	}
	free := fo.FreeVars(phi)
	posOf := map[fo.Var]int{}
	for p, v := range vars {
		if _, dup := posOf[v]; dup {
			return nil, fmt.Errorf("core: duplicate position variable %s", v)
		}
		posOf[v] = p
	}
	for _, v := range free {
		if _, ok := posOf[v]; !ok {
			return nil, fmt.Errorf("core: free variable %s is not a position variable", v)
		}
	}
	maxAtom := fo.MaxDistConstant(phi)
	if maxAtom < 1 {
		maxAtom = 1
	}
	r := opt.R
	if r == 0 {
		r = maxAtom
		// Quantified subformulas that tie free variables together (e.g.
		// ∃z (E(x,z) ∧ E(z,y)) implies dist(x,y) ≤ 2) need a threshold at
		// least as large as the implied bound so the type can decide them.
		if b := maxQuantifiedUnitBound(phi); b > r {
			r = b
		}
	}
	rho := opt.LocalRadius
	if rho == 0 {
		// Witness-reach analysis: the smallest ρ such that evaluating the
		// residual local formulas in G[N_ρ(ā_I)] agrees with global
		// semantics — every quantified witness is anchored within ρ of
		// the free variables.
		wr, ok := WitnessReach(phi, vars)
		if !ok {
			return nil, fmt.Errorf(
				"core: cannot bound the witness distance of a quantifier in %s; "+
					"the query is not local — set CompileOptions.LocalRadius explicitly "+
					"if you know a bound", phi)
		}
		rho = wr
		if rho < r {
			rho = r
		}
	}

	// Rename positions to the canonical x0..x(k-1) names.
	body := phi
	for p, v := range vars {
		if v != PosVar(p) {
			body = fo.Rename(body, v, PosVar(p))
		}
	}

	q := &LocalQuery{K: k, R: r, LocalRadius: rho, Guarded: opt.LocalRadius == 0}
	var guards []*Guard
	anyGuard := false
	for _, typ := range fo.AllDistTypes(k) {
		cc := &compileCtx{k: k, r: r, typ: typ, posOf: posOfCanonical(k)}
		cc.computeComponents()
		disjuncts, err := cc.split(body)
		if err != nil {
			return nil, err
		}
		for _, d := range disjuncts {
			cl := Clause{Type: typ, Locals: make([]ComponentFormula, len(cc.comps))}
			for i, comp := range cc.comps {
				f := d.perComp[i]
				if f == nil {
					f = fo.Truth{Value: true}
				}
				cl.Locals[i] = ComponentFormula{Positions: comp, Psi: f}
			}
			q.Clauses = append(q.Clauses, cl)
			if d.guard != nil {
				guards = append(guards, &Guard{Sentence: d.guard})
				anyGuard = true
			} else {
				guards = append(guards, nil)
			}
		}
	}
	if anyGuard {
		q.Guards = guards
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core: compiled query invalid: %v", err)
	}
	return q, nil
}

func posOfCanonical(k int) map[fo.Var]int {
	m := make(map[fo.Var]int, k)
	for p := 0; p < k; p++ {
		m[PosVar(p)] = p
	}
	return m
}

type compileCtx struct {
	k     int
	r     int
	typ   *fo.DistType
	posOf map[fo.Var]int

	comps  [][]int
	compOf []int
	hop    []int // k×k hop distances in the type graph; -1 = disconnected
}

func (cc *compileCtx) computeComponents() {
	cc.comps = cc.typ.Components()
	cc.compOf = make([]int, cc.k)
	for ci, comp := range cc.comps {
		for _, p := range comp {
			cc.compOf[p] = ci
		}
	}
	cc.hop = make([]int, cc.k*cc.k)
	for i := range cc.hop {
		cc.hop[i] = -1
	}
	for s := 0; s < cc.k; s++ {
		cc.hop[s*cc.k+s] = 0
		queue := []int{s}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for v := 0; v < cc.k; v++ {
				if u != v && cc.typ.Close(u, v) && cc.hop[s*cc.k+v] < 0 {
					cc.hop[s*cc.k+v] = cc.hop[s*cc.k+u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
}

// disjunct is one conjunctive branch: a formula per component plus an
// optional sentence guard.
type disjunct struct {
	perComp map[int]fo.Formula
	guard   fo.Formula
}

func (d disjunct) clone() disjunct {
	nd := disjunct{perComp: make(map[int]fo.Formula, len(d.perComp)), guard: d.guard}
	//fod:sorted — plain map copy; each entry is independent of iteration order
	for k, v := range d.perComp {
		nd.perComp[k] = v
	}
	return nd
}

// split decomposes f into a disjunction of per-component conjunctions,
// under the knowledge encoded by the distance type.
func (cc *compileCtx) split(f fo.Formula) ([]disjunct, error) {
	switch f := f.(type) {
	case fo.Truth:
		if f.Value {
			return []disjunct{{perComp: map[int]fo.Formula{}}}, nil
		}
		return nil, nil
	case fo.And:
		acc := []disjunct{{perComp: map[int]fo.Formula{}}}
		for _, g := range f.Fs {
			ds, err := cc.split(g)
			if err != nil {
				return nil, err
			}
			var next []disjunct
			for _, a := range acc {
				for _, b := range ds {
					next = append(next, mergeDisjuncts(a, b))
				}
			}
			acc = next
			if len(acc) == 0 {
				return nil, nil
			}
		}
		return acc, nil
	case fo.Or:
		var acc []disjunct
		for _, g := range f.Fs {
			ds, err := cc.split(g)
			if err != nil {
				return nil, err
			}
			acc = append(acc, ds...)
		}
		return acc, nil
	case fo.Not:
		return cc.splitNot(f.F)
	default:
		return cc.splitLeaf(f, false)
	}
}

func (cc *compileCtx) splitNot(f fo.Formula) ([]disjunct, error) {
	switch f := f.(type) {
	case fo.Truth:
		return cc.split(fo.Truth{Value: !f.Value})
	case fo.Not:
		return cc.split(f.F)
	case fo.And: // De Morgan
		var negs []fo.Formula
		for _, g := range f.Fs {
			negs = append(negs, fo.Not{F: g})
		}
		return cc.split(fo.Or{Fs: negs})
	case fo.Or:
		var negs []fo.Formula
		for _, g := range f.Fs {
			negs = append(negs, fo.Not{F: g})
		}
		return cc.split(fo.And{Fs: negs})
	default:
		return cc.splitLeaf(f, true)
	}
}

// splitLeaf handles atoms and quantified subformulas (possibly negated).
func (cc *compileCtx) splitLeaf(f fo.Formula, negated bool) ([]disjunct, error) {
	// Type-decided atoms first.
	if dec, ok, err := cc.decide(f); err != nil {
		return nil, err
	} else if ok {
		if dec != negated {
			return []disjunct{{perComp: map[int]fo.Formula{}}}, nil
		}
		return nil, nil
	}
	unit := f
	if negated {
		unit = fo.Not{F: f}
	}
	free := fo.FreeVars(unit)
	if len(free) == 0 {
		return []disjunct{{perComp: map[int]fo.Formula{}, guard: unit}}, nil
	}
	comp := -1
	spans := false
	for _, v := range free {
		p, ok := cc.posOf[v]
		if !ok {
			return nil, fmt.Errorf("core: unbound non-position variable %s in %s", v, unit)
		}
		ci := cc.compOf[p]
		if comp == -1 {
			comp = ci
		} else if comp != ci {
			spans = true
		}
	}
	if spans {
		// A component-spanning unit is admissible only if the locality
		// analysis proves it unsatisfiable under the type: some pair of
		// its free variables in different components is forced within
		// distance ≤ R, contradicting the type's "far" requirement.
		bounds := impliedBounds(f)
		//fod:sorted — existential scan; every matching entry yields the same return
		for k, d := range bounds {
			pi, oki := cc.posOf[k[0]]
			pj, okj := cc.posOf[k[1]]
			if oki && okj && cc.compOf[pi] != cc.compOf[pj] && d <= cc.r {
				if negated {
					return []disjunct{{perComp: map[int]fo.Formula{}}}, nil
				}
				return nil, nil
			}
		}
		return nil, fmt.Errorf(
			"core: subformula %s spans distance-type components; not compilable at R=%d", unit, cc.r)
	}
	return []disjunct{{perComp: map[int]fo.Formula{comp: unit}}}, nil
}

// decide resolves atoms over free position variables whose truth is forced
// by the distance type: (true-value, decided, error).
func (cc *compileCtx) decide(f fo.Formula) (bool, bool, error) {
	switch f := f.(type) {
	case fo.Eq:
		pi, oki := cc.posOf[f.X]
		pj, okj := cc.posOf[f.Y]
		if !oki || !okj {
			return false, false, nil
		}
		if pi == pj {
			return true, true, nil
		}
		if cc.compOf[pi] != cc.compOf[pj] {
			return false, true, nil // equal elements are at distance 0 ≤ R
		}
		return false, false, nil
	case fo.Edge:
		pi, oki := cc.posOf[f.X]
		pj, okj := cc.posOf[f.Y]
		if !oki || !okj {
			return false, false, nil
		}
		if pi == pj {
			return false, true, nil // no self-loops
		}
		if cc.compOf[pi] != cc.compOf[pj] {
			return false, true, nil // adjacent elements are at distance 1 ≤ R
		}
		return false, false, nil
	case fo.DistLeq:
		pi, oki := cc.posOf[f.X]
		pj, okj := cc.posOf[f.Y]
		if !oki || !okj {
			return false, false, nil
		}
		if pi == pj {
			return true, true, nil
		}
		if cc.compOf[pi] != cc.compOf[pj] {
			if f.D <= cc.r {
				return false, true, nil // the type forces dist > R ≥ d
			}
			return false, false, fmt.Errorf(
				"core: atom %s crosses components with constant %d > R=%d; recompile with a larger R",
				f, f.D, cc.r)
		}
		if h := cc.hop[pi*cc.k+pj]; h >= 0 && f.D >= cc.r*h {
			return true, true, nil // the type forces dist ≤ R·hops ≤ d
		}
		return false, false, nil
	}
	return false, false, nil
}

func mergeDisjuncts(a, b disjunct) disjunct {
	out := a.clone()
	//fod:sorted — per-key merge; out.perComp[ci] depends only on a and b at ci
	for ci, f := range b.perComp {
		if g, ok := out.perComp[ci]; ok {
			out.perComp[ci] = fo.AndOf(g, f)
		} else {
			out.perComp[ci] = f
		}
	}
	if b.guard != nil {
		if out.guard != nil {
			out.guard = fo.AndOf(out.guard, b.guard)
		} else {
			out.guard = b.guard
		}
	}
	return out
}
