package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
)

// queryGen generates random FO⁺ queries inside the compilable fragment:
// Boolean combinations of atoms over the position variables and guarded
// quantified subformulas anchored at a single position variable.
type queryGen struct {
	rng    *rand.Rand
	vars   []fo.Var
	colors int
	fresh  int
}

func (qg *queryGen) variable() fo.Var { return qg.vars[qg.rng.Intn(len(qg.vars))] }

func (qg *queryGen) formula(depth int) fo.Formula {
	if depth == 0 {
		return qg.atom()
	}
	switch qg.rng.Intn(6) {
	case 0:
		return fo.AndOf(qg.formula(depth-1), qg.formula(depth-1))
	case 1:
		return fo.OrOf(qg.formula(depth-1), qg.formula(depth-1))
	case 2:
		return fo.NotOf(qg.formula(depth - 1))
	case 3:
		return qg.guardedExists()
	default:
		return qg.atom()
	}
}

func (qg *queryGen) atom() fo.Formula {
	x, y := qg.variable(), qg.variable()
	switch qg.rng.Intn(5) {
	case 0:
		return fo.Edge{X: x, Y: y}
	case 1:
		return fo.HasColor{C: qg.rng.Intn(qg.colors), X: x}
	case 2:
		return fo.Eq{X: x, Y: y}
	case 3:
		return fo.DistLeq{X: x, Y: y, D: 1 + qg.rng.Intn(2)}
	default:
		return fo.NotOf(fo.DistLeq{X: x, Y: y, D: 1 + qg.rng.Intn(2)})
	}
}

// guardedExists produces ∃z (dist(x, z) ≤ d ∧ body(z, x)) — a witness
// anchored at one position variable, which keeps the query local.
func (qg *queryGen) guardedExists() fo.Formula {
	qg.fresh++
	z := fo.Var(fmt.Sprintf("w%d", qg.fresh))
	x := qg.variable()
	guard := fo.DistLeq{X: x, Y: z, D: 1 + qg.rng.Intn(2)}
	var body fo.Formula
	switch qg.rng.Intn(3) {
	case 0:
		body = fo.HasColor{C: qg.rng.Intn(qg.colors), X: z}
	case 1:
		body = fo.Edge{X: z, Y: x}
	default:
		body = fo.NotOf(fo.HasColor{C: qg.rng.Intn(qg.colors), X: z})
	}
	f := fo.Exists{V: z, F: fo.AndOf(guard, body)}
	if qg.rng.Intn(2) == 0 {
		return fo.NotOf(f)
	}
	return f
}

// TestFuzzEngineAgainstNaive is the differential fuzzer: random queries of
// arities 1 and 2 over random sparse graphs, engine results compared
// against direct FO evaluation tuple by tuple.
func TestFuzzEngineAgainstNaive(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 25
	}
	classes := []gen.Class{gen.Path, gen.Star, gen.RandomTree, gen.Grid, gen.BoundedDegree}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		arity := 1 + rng.Intn(2)
		vars := []fo.Var{"x", "y"}[:arity]
		qg := &queryGen{rng: rng, vars: vars, colors: 2}
		phi := qg.formula(2 + rng.Intn(2))

		q, err := Compile(phi, vars, CompileOptions{})
		if err != nil {
			// Outside the fragment (e.g. an unanchored pattern slipped
			// through): rejection is the documented behaviour, not a bug.
			continue
		}
		class := classes[rng.Intn(len(classes))]
		n := 40 + rng.Intn(40)
		g := gen.Generate(class, n, gen.Options{Seed: int64(trial), Colors: 2, ColorProb: 0.35})
		e, err := Preprocess(g, q, Options{})
		if err != nil {
			t.Fatalf("trial %d (%s): preprocess: %v", trial, phi, err)
		}
		got := materializeEngine(e)
		want := naiveSolutions(g, phi, vars)
		if i, ok := tuplesEqual(got, want); !ok {
			t.Fatalf("trial %d: query %s on %s (n=%d): engine %d vs naive %d tuples (diff near %v vs %v)",
				trial, phi, class, g.N(), len(got), len(want), safeIndex(got, i), safeIndex(want, i))
		}
		// Also probe Test and NextGeq on random tuples.
		for probe := 0; probe < 20; probe++ {
			a := make([]int, arity)
			for i := range a {
				a[i] = rng.Intn(g.N())
			}
			ev := fo.NewEvaluator(g)
			if got, want := e.Test(a), ev.EvalTuple(phi, vars, a); got != want {
				t.Fatalf("trial %d: Test(%v) = %v, want %v for %s", trial, a, got, want, phi)
			}
		}
	}
}

// FuzzParallelVsSequentialPreprocess round-trips fuzzed graph inputs
// through both preprocessing pipelines and requires identical enumeration
// output and identical membership answers. The fuzzer steers the graph
// class, size, seed, and query; `go test -fuzz=FuzzParallelVsSequential`
// explores further from the seed corpus, and the corpus entries run as
// regression tests under plain `go test`.
func FuzzParallelVsSequentialPreprocess(f *testing.F) {
	f.Add(uint8(0), uint8(40), int64(1), uint8(0))
	f.Add(uint8(3), uint8(64), int64(7), uint8(1))
	f.Add(uint8(5), uint8(90), int64(42), uint8(2))
	f.Add(uint8(9), uint8(33), int64(-3), uint8(3))
	f.Add(uint8(12), uint8(120), int64(999), uint8(4))
	classes := []gen.Class{gen.Path, gen.Cycle, gen.Star, gen.Caterpillar,
		gen.BalancedTree, gen.RandomTree, gen.Grid, gen.KingGrid,
		gen.BoundedDegree, gen.SparseRandom, gen.PartialKTree,
		gen.Outerplanar, gen.Clique}
	queries := []struct {
		src  string
		vars []fo.Var
	}{
		{"dist(x,y) > 2 & C0(y)", []fo.Var{"x", "y"}},
		{"E(x,y) & C0(x)", []fo.Var{"x", "y"}},
		{"dist(x,y) > 1 & C0(x) & C1(y)", []fo.Var{"x", "y"}},
		{"C0(x) & (exists z (E(x,z) & C1(z)))", []fo.Var{"x"}},
		{"dist(x,y) <= 2 & ~C0(y)", []fo.Var{"x", "y"}},
	}
	f.Fuzz(func(t *testing.T, classByte, nByte uint8, seed int64, queryByte uint8) {
		class := classes[int(classByte)%len(classes)]
		n := 2 + int(nByte)%150
		qc := queries[int(queryByte)%len(queries)]
		g := gen.Generate(class, n, gen.Options{Seed: seed, Colors: 2, ColorProb: 0.35})
		q, err := Compile(fo.MustParse(qc.src), qc.vars, CompileOptions{})
		if err != nil {
			t.Fatalf("fixed query rejected: %v", err)
		}
		seq, err := Preprocess(g, q, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("sequential preprocess: %v", err)
		}
		par, err := Preprocess(g, q, Options{Parallelism: 3})
		if err != nil {
			t.Fatalf("parallel preprocess: %v", err)
		}
		got, want := materializeEngine(par), materializeEngine(seq)
		if i, ok := tuplesEqual(got, want); !ok {
			t.Fatalf("%s n=%d seed=%d %q: parallel %d vs sequential %d tuples (diff near %v vs %v)",
				class, n, seed, qc.src, len(got), len(want), safeIndex(got, i), safeIndex(want, i))
		}
		rng := rand.New(rand.NewSource(seed))
		probe := make([]int, len(qc.vars))
		for trial := 0; trial < 10; trial++ {
			for i := range probe {
				probe[i] = rng.Intn(g.N())
			}
			if sq, pq := seq.Test(probe), par.Test(probe); sq != pq {
				t.Fatalf("%s n=%d seed=%d %q: Test(%v) sequential %v, parallel %v",
					class, n, seed, qc.src, probe, sq, pq)
			}
		}
	})
}

// TestFuzzArity3 runs a smaller arity-3 fuzz (naive evaluation is n³).
func TestFuzzArity3(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		vars := []fo.Var{"x", "y", "z"}
		qg := &queryGen{rng: rng, vars: vars, colors: 2}
		phi := qg.formula(2)
		q, err := Compile(phi, vars, CompileOptions{})
		if err != nil {
			continue
		}
		g := gen.Generate(gen.RandomTree, 18+rng.Intn(10), gen.Options{Seed: int64(trial), Colors: 2, ColorProb: 0.4})
		e, err := Preprocess(g, q, Options{})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, phi, err)
		}
		got := materializeEngine(e)
		want := naiveSolutions(g, phi, vars)
		if i, ok := tuplesEqual(got, want); !ok {
			t.Fatalf("trial %d: query %s: engine %d vs naive %d (diff near %v vs %v)",
				trial, phi, len(got), len(want), safeIndex(got, i), safeIndex(want, i))
		}
	}
}
