package core_test

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/obs"
)

func buildObsEngine(t *testing.T, reg *obs.Registry) *core.Engine {
	t.Helper()
	g := gen.Generate("grid", 900, gen.Options{Seed: 7, Colors: 1, ColorProb: 0.1})
	lq, err := core.Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"), []fo.Var{"x", "y"}, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Preprocess(g, lq, core.Options{Parallelism: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestStatsSnapshotIsolation is the regression test for the StarterSizes
// aliasing bug: the snapshot used to copy the slice header, so callers
// shared the engine's backing array.
func TestStatsSnapshotIsolation(t *testing.T) {
	e := buildObsEngine(t, nil)
	s1 := e.Stats()
	if len(s1.StarterSizes) == 0 {
		t.Fatal("expected at least one starter list")
	}
	orig := append([]int(nil), s1.StarterSizes...)
	for i := range s1.StarterSizes {
		s1.StarterSizes[i] = -999
	}
	s2 := e.Stats()
	for i, v := range s2.StarterSizes {
		if v != orig[i] {
			t.Fatalf("snapshot mutation leaked into the engine: StarterSizes[%d] = %d, want %d", i, v, orig[i])
		}
	}
	s2.StarterSizes[0] = -1
	if s3 := e.Stats(); s3.StarterSizes[0] == -1 {
		t.Fatal("snapshots share a backing array")
	}
}

// TestEngineInstrumented checks the registry-backed instruments end to
// end: phase spans, exported counters, and the answering histograms.
func TestEngineInstrumented(t *testing.T) {
	reg := obs.New()
	e := buildObsEngine(t, reg)
	if e.Obs() != reg {
		t.Fatal("engine does not report its registry")
	}

	// Preprocessing spans must be recorded for every phase.
	snap := reg.Snapshot()
	for _, name := range []string{
		"span.preprocess_ns",
		"span.preprocess.dist_ns",
		"span.preprocess.cover_ns",
		"span.preprocess.kernel_ns",
		"span.preprocess.starter_ns",
		"span.preprocess.skip_ns",
	} {
		if h, ok := snap.Histograms[name]; !ok || h.Count == 0 {
			t.Errorf("missing phase span %q", name)
		}
	}
	if snap.Gauges["engine.cover_bags"] == 0 {
		t.Error("engine.cover_bags gauge not set")
	}

	// Answering-phase instruments: counters and histograms must advance
	// together with Stats().
	n := 0
	e.Enumerate(func([]int) bool { n++; return n < 200 })
	if n == 0 {
		t.Fatal("no solutions enumerated")
	}
	for i := 0; i < 50; i++ {
		e.NextGeq([]int{i, i})
		e.Test([]int{i, i + 1})
	}
	snap = reg.Snapshot()
	if got := snap.Histograms["engine.delay_ns"]; got.Count != int64(n) {
		t.Errorf("delay histogram count %d, want %d", got.Count, n)
	}
	if got := snap.Histograms["engine.next_geq_ns"]; got.Count != 50 {
		t.Errorf("next_geq histogram count %d, want 50", got.Count)
	}
	if got := snap.Histograms["engine.test_ns"]; got.Count != 50 {
		t.Errorf("test histogram count %d, want 50", got.Count)
	}
	if snap.Counters["engine.candidates"] != int64(e.Stats().Candidates) {
		t.Errorf("exported candidates %d != Stats %d",
			snap.Counters["engine.candidates"], e.Stats().Candidates)
	}
	if snap.Counters["engine.candidates"] == 0 {
		t.Error("candidates counter never bumped")
	}
	// The delay histogram carries real, positive timings.
	if d := snap.Histograms["engine.delay_ns"]; d.Max <= 0 || d.P99 > d.Max {
		t.Errorf("implausible delay stats: %+v", d)
	}
}

// TestInstrumentedAnswersIdentical guards the instrumentation against
// changing any answer: the same engine built with and without a registry
// must enumerate byte-identical solutions.
func TestInstrumentedAnswersIdentical(t *testing.T) {
	plain := buildObsEngine(t, nil)
	inst := buildObsEngine(t, obs.New())
	var a, b [][]int
	plain.Enumerate(func(s []int) bool { a = append(a, append([]int(nil), s...)); return len(a) < 500 })
	inst.Enumerate(func(s []int) bool { b = append(b, append([]int(nil), s...)); return len(b) < 500 })
	if len(a) != len(b) {
		t.Fatalf("solution counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatalf("solution %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestMetricsOverheadGuard is the CI guard of scripts/verify.sh tier 3:
// the uninstrumented NextGeq path must not pay for the observability
// layer. Because a pre-PR wall-clock baseline is not available inside CI,
// the guard checks the property that implies "within noise of the
// baseline": the disabled path does at most what the enabled path does
// minus the timing work, so its per-op cost must not exceed the enabled
// path's (with generous headroom for scheduler noise), and must stay in
// the sub-microsecond regime the README reports for this query class.
//
// Enabled only when OBS_GUARD=1 (timing asserts are too flaky for the
// default test run).
func TestMetricsOverheadGuard(t *testing.T) {
	if os.Getenv("OBS_GUARD") != "1" {
		t.Skip("set OBS_GUARD=1 to run the metrics-overhead guard")
	}
	plain := buildObsEngine(t, nil)
	inst := buildObsEngine(t, obs.New())
	tuples := make([][]int, 512)
	for i := range tuples {
		tuples[i] = []int{(i * 37) % 900, (i * 101) % 900}
	}
	measure := func(e *core.Engine) time.Duration {
		// Warm up caches, then take the best of 5 rounds to shed noise.
		for _, a := range tuples {
			e.NextGeq(a)
		}
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 5; round++ {
			start := time.Now()
			for _, a := range tuples {
				e.NextGeq(a)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best / time.Duration(len(tuples))
	}
	disabled := measure(plain)
	enabled := measure(inst)
	t.Logf("NextGeq per op: disabled %v, enabled %v", disabled, enabled)
	if disabled > enabled*3/2+2*time.Microsecond {
		t.Fatalf("disabled-metrics NextGeq (%v/op) is slower than instrumented (%v/op) beyond noise — the nil-sink fast path regressed", disabled, enabled)
	}
	if disabled > 20*time.Microsecond {
		t.Fatalf("disabled-metrics NextGeq %v/op exceeds the 20µs sanity cap", disabled)
	}
}
