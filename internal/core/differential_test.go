// Differential test harness: every query runs through two independently
// built engines — Parallelism 1 (the sequential reference) and
// Parallelism 4 — plus the naive evaluator as ground truth. All three must
// agree on the full enumeration, on membership probes, and on counts;
// the two engines must additionally agree on their preprocessing shape
// (cover validity, bag count, starter sizes).
package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/naive"
)

type diffCase struct {
	class gen.Class
	n     int
	query string
	vars  []fo.Var
}

func diffCases() []diffCase {
	xy := []fo.Var{"x", "y"}
	xyz := []fo.Var{"x", "y", "z"}
	return []diffCase{
		{gen.Path, 60, "dist(x,y) > 2 & C0(y)", xy},
		{gen.Grid, 64, "dist(x,y) > 1 & C0(x) & C1(y)", xy},
		{gen.RandomTree, 70, "E(x,y) & C0(x)", xy},
		{gen.Caterpillar, 50, "dist(x,y) > 2 & (exists z (E(x,z) & C0(z)))", xy},
		{gen.SparseRandom, 55, "dist(x,y) > 2 & C0(x)", xy},
		{gen.BoundedDegree, 48, "dist(x,y) > 1 & dist(y,z) > 1 & dist(x,z) > 1 & C0(x)", xyz},
		{gen.Star, 40, "C0(x) & C1(y) & dist(x,y) > 1", xy},
		{gen.Cycle, 45, "dist(x,y) <= 2 & C0(x)", xy},
	}
}

func buildEngines(t *testing.T, tc diffCase, seed int64) (*graph.Graph, *core.Engine, *core.Engine, *core.LocalQuery) {
	t.Helper()
	g := gen.Generate(tc.class, tc.n, gen.Options{Seed: seed, Colors: 2})
	lq, err := core.Compile(fo.MustParse(tc.query), tc.vars, core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: compile: %v", tc.query, err)
	}
	seq, err := core.Preprocess(g, lq, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("%s: sequential preprocess: %v", tc.query, err)
	}
	par, err := core.Preprocess(g, lq, core.Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("%s: parallel preprocess: %v", tc.query, err)
	}
	return g, seq, par, lq
}

func materialize(e *core.Engine) [][]graph.V {
	var out [][]graph.V
	e.Enumerate(func(s []graph.V) bool {
		out = append(out, append([]graph.V(nil), s...))
		return true
	})
	return out
}

// TestDifferentialParallelVsSequential is the main differential check:
// identical enumeration output from both engines, and both matching the
// naive oracle.
func TestDifferentialParallelVsSequential(t *testing.T) {
	for _, tc := range diffCases() {
		for seed := int64(1); seed <= 3; seed++ {
			label := fmt.Sprintf("%s/%s/seed%d", tc.class, tc.query, seed)
			g, seq, par, lq := buildEngines(t, tc, seed)
			want := naive.SolutionsLocal(g, lq)
			gotSeq := materialize(seq)
			gotPar := materialize(par)
			if !reflect.DeepEqual(gotSeq, gotPar) {
				t.Fatalf("%s: parallel enumeration diverged from sequential (%d vs %d tuples)",
					label, len(gotSeq), len(gotPar))
			}
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(gotSeq, want) {
				t.Fatalf("%s: engine enumeration diverged from naive oracle (%d vs %d tuples)",
					label, len(gotSeq), len(want))
			}
			// Preprocessing shape must agree too.
			ss, ps := seq.Stats(), par.Stats()
			if ss.CoverBags != ps.CoverBags || ss.CoverRadius != ps.CoverRadius ||
				!reflect.DeepEqual(ss.StarterSizes, ps.StarterSizes) ||
				ss.SkipPointers != ps.SkipPointers {
				t.Fatalf("%s: preprocessing shape differs: %+v vs %+v", label, ss, ps)
			}
		}
	}
}

// TestDifferentialMembership probes Test on a grid of tuples against both
// engines and the naive semantics.
func TestDifferentialMembership(t *testing.T) {
	for _, tc := range diffCases()[:4] {
		g, seq, par, lq := buildEngines(t, tc, 7)
		sols := naive.SolutionsLocal(g, lq)
		inSol := map[string]bool{}
		for _, s := range sols {
			inSol[fmt.Sprint(s)] = true
		}
		k := len(tc.vars)
		probe := make([]graph.V, k)
		var walk func(i int)
		walk = func(i int) {
			if i == k {
				want := inSol[fmt.Sprint(probe)]
				if got := seq.Test(probe); got != want {
					t.Fatalf("%s: sequential Test(%v) = %v, naive %v", tc.query, probe, got, want)
				}
				if got := par.Test(probe); got != want {
					t.Fatalf("%s: parallel Test(%v) = %v, naive %v", tc.query, probe, got, want)
				}
				return
			}
			for v := 0; v < g.N(); v += 5 {
				probe[i] = v
				walk(i + 1)
			}
		}
		walk(0)
	}
}

// TestDifferentialCover checks that the cover underlying both engines is
// valid and identical — Validate() runs the cover axioms brute-force.
func TestDifferentialCover(t *testing.T) {
	for _, class := range []gen.Class{gen.Grid, gen.RandomTree, gen.SparseRandom} {
		g := gen.Generate(class, 300, gen.Options{Seed: 4})
		for _, r := range []int{1, 2} {
			seq := cover.ComputeWith(g, r, cover.Options{Workers: 1})
			par := cover.ComputeWith(g, r, cover.Options{Workers: 4})
			if err := seq.Validate(); err != nil {
				t.Fatalf("%s r=%d: sequential cover invalid: %v", class, r, err)
			}
			if err := par.Validate(); err != nil {
				t.Fatalf("%s r=%d: parallel cover invalid: %v", class, r, err)
			}
			if seq.NumBags() != par.NumBags() {
				t.Fatalf("%s r=%d: bag counts differ: %d vs %d", class, r, seq.NumBags(), par.NumBags())
			}
			for i := 0; i < seq.NumBags(); i++ {
				if !reflect.DeepEqual(seq.Bag(i), par.Bag(i)) || seq.Center(i) != par.Center(i) {
					t.Fatalf("%s r=%d: bag %d differs", class, r, i)
				}
			}
		}
	}
}

// TestDifferentialDistances cross-checks parallel-built distance indexes
// against the BFS oracle, for every radius up to the index radius.
func TestDifferentialDistances(t *testing.T) {
	for _, class := range []gen.Class{gen.Grid, gen.Caterpillar, gen.BoundedDegree} {
		g := gen.Generate(class, 250, gen.Options{Seed: 6})
		seq := dist.New(g, 3, dist.Options{Workers: 1})
		par := dist.New(g, 3, dist.Options{Workers: 4})
		bfs := graph.NewBFS(g)
		for a := 0; a < g.N(); a += 7 {
			for b := 0; b < g.N(); b += 11 {
				for rr := 0; rr <= 3; rr++ {
					want := bfs.Distance(a, b, rr) >= 0
					if got := seq.Within(a, b, rr); got != want {
						t.Fatalf("%s: sequential Within(%d,%d,%d) = %v, oracle %v", class, a, b, rr, got, want)
					}
					if got := par.Within(a, b, rr); got != want {
						t.Fatalf("%s: parallel Within(%d,%d,%d) = %v, oracle %v", class, a, b, rr, got, want)
					}
				}
			}
		}
	}
}
