// Differential test harness: every conformance case runs through two
// independently built engines — Parallelism 1 (the sequential reference)
// and Parallelism 4 — plus the naive evaluator as ground truth. The
// engine-contract assertions live in internal/conform (shared with the
// cross-engine battery and the lowdeg fuzz harness); this file adds the
// core-specific checks: the two builds must agree on their preprocessing
// shape (cover validity, bag count, starter sizes), and the cover and
// distance-index layers are validated against brute force.
package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// diffCases returns the non-empty conformance cases: the empty-answer-set
// cases are exercised by the cross-engine battery; here they would only
// skip the shape comparison.
func diffCases() []conform.Case {
	var out []conform.Case
	for _, c := range conform.Cases() {
		if !c.Empty {
			out = append(out, c)
		}
	}
	return out
}

// materialize drains an engine's enumeration (shared helper, also used by
// the mutation tests).
func materialize(e *core.Engine) [][]graph.V {
	return conform.Materialize(e)
}

func buildEngines(t *testing.T, tc conform.Case, seed int64) (*graph.Graph, *core.Engine, *core.Engine, *core.LocalQuery) {
	t.Helper()
	g := gen.Generate(tc.Class, tc.N, gen.Options{Seed: seed, Colors: tc.Colors})
	vars := make([]fo.Var, len(tc.Vars))
	for i, v := range tc.Vars {
		vars[i] = fo.Var(v)
	}
	lq, err := core.Compile(fo.MustParse(tc.Query), vars, core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: compile: %v", tc.Query, err)
	}
	seq, err := core.Preprocess(g, lq, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("%s: sequential preprocess: %v", tc.Query, err)
	}
	par, err := core.Preprocess(g, lq, core.Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("%s: parallel preprocess: %v", tc.Query, err)
	}
	return g, seq, par, lq
}

// TestDifferentialParallelVsSequential is the main differential check:
// both builds must pass the full conformance contract against the naive
// oracle, agree with each other, and agree on preprocessing shape.
func TestDifferentialParallelVsSequential(t *testing.T) {
	for _, tc := range diffCases() {
		for seed := int64(1); seed <= 3; seed++ {
			label := fmt.Sprintf("%s/%s/seed%d", tc.Class, tc.Query, seed)
			g, seq, par, lq := buildEngines(t, tc, seed)
			want := conform.NewNaive(g, lq).Solutions()
			for name, e := range map[string]*core.Engine{"seq": seq, "par": par} {
				e := e
				sys := conform.System{
					Name: label + "/" + name, Engine: e, K: lq.K, N: g.N(),
					NewCursor: func(a []graph.V) conform.Cursor { return e.IteratorFrom(a) },
				}
				if err := conform.CheckEnumeration(sys, want); err != nil {
					t.Fatal(err)
				}
				if err := conform.CheckCounts(sys, want); err != nil {
					t.Fatal(err)
				}
			}
			// Preprocessing shape must agree too.
			ss, ps := seq.Stats(), par.Stats()
			if ss.CoverBags != ps.CoverBags || ss.CoverRadius != ps.CoverRadius ||
				!reflect.DeepEqual(ss.StarterSizes, ps.StarterSizes) ||
				ss.SkipPointers != ps.SkipPointers {
				t.Fatalf("%s: preprocessing shape differs: %+v vs %+v", label, ss, ps)
			}
		}
	}
}

// TestDifferentialMembership probes Test and NextGeq on both engines
// through the shared conformance checks.
func TestDifferentialMembership(t *testing.T) {
	for _, tc := range diffCases()[:4] {
		g, seq, par, lq := buildEngines(t, tc, 7)
		want := conform.NewNaive(g, lq).Solutions()
		for name, e := range map[string]*core.Engine{"seq": seq, "par": par} {
			sys := conform.System{Name: tc.Name + "/" + name, Engine: e, K: lq.K, N: g.N()}
			if err := conform.CheckTest(sys, want); err != nil {
				t.Fatal(err)
			}
			if err := conform.CheckNextGeq(sys, want); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDifferentialCover checks that the cover underlying both engines is
// valid and identical — Validate() runs the cover axioms brute-force.
func TestDifferentialCover(t *testing.T) {
	for _, class := range []gen.Class{gen.Grid, gen.RandomTree, gen.SparseRandom} {
		g := gen.Generate(class, 300, gen.Options{Seed: 4})
		for _, r := range []int{1, 2} {
			seq := cover.ComputeWith(g, r, cover.Options{Workers: 1})
			par := cover.ComputeWith(g, r, cover.Options{Workers: 4})
			if err := seq.Validate(); err != nil {
				t.Fatalf("%s r=%d: sequential cover invalid: %v", class, r, err)
			}
			if err := par.Validate(); err != nil {
				t.Fatalf("%s r=%d: parallel cover invalid: %v", class, r, err)
			}
			if seq.NumBags() != par.NumBags() {
				t.Fatalf("%s r=%d: bag counts differ: %d vs %d", class, r, seq.NumBags(), par.NumBags())
			}
			for i := 0; i < seq.NumBags(); i++ {
				if !reflect.DeepEqual(seq.Bag(i), par.Bag(i)) || seq.Center(i) != par.Center(i) {
					t.Fatalf("%s r=%d: bag %d differs", class, r, i)
				}
			}
		}
	}
}

// TestDifferentialDistances cross-checks parallel-built distance indexes
// against the BFS oracle, for every radius up to the index radius.
func TestDifferentialDistances(t *testing.T) {
	for _, class := range []gen.Class{gen.Grid, gen.Caterpillar, gen.BoundedDegree} {
		g := gen.Generate(class, 250, gen.Options{Seed: 6})
		seq := dist.New(g, 3, dist.Options{Workers: 1})
		par := dist.New(g, 3, dist.Options{Workers: 4})
		bfs := graph.NewBFS(g)
		for a := 0; a < g.N(); a += 7 {
			for b := 0; b < g.N(); b += 11 {
				for rr := 0; rr <= 3; rr++ {
					want := bfs.Distance(a, b, rr) >= 0
					if got := seq.Within(a, b, rr); got != want {
						t.Fatalf("%s: sequential Within(%d,%d,%d) = %v, oracle %v", class, a, b, rr, got, want)
					}
					if got := par.Within(a, b, rr); got != want {
						t.Fatalf("%s: parallel Within(%d,%d,%d) = %v, oracle %v", class, a, b, rr, got, want)
					}
				}
			}
		}
	}
}
