package core

import (
	"context"
	"fmt"

	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/fo"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/skip"
)

// EngineParts is the serialized form of a preprocessed engine: everything
// Preprocess computes by search (distance recursion, cover and kernels,
// guard outcomes, starter lists, SC-tables), and nothing it can rederive
// cheaply. The query itself is NOT part of it — snapshots carry the query
// source and recompile it, so RestoreEngine takes the query as input and
// revalidates the parts against it.
type EngineParts struct {
	// LiveIdx are the indices into the query's clause list that survived
	// their guards at build time, in increasing order. Restoring replays
	// this decision instead of re-running the guard sentences.
	LiveIdx []int
	Cover   cover.Parts
	Dist    dist.Parts
	// Clauses is indexed parallel to LiveIdx; each entry holds one
	// CompParts per component of that clause.
	Clauses [][]CompParts
}

// CompParts is the per-component payload: the starter list (Step 12 of
// the paper) and, for arity ≥ 2, the Lemma 5.8 skip-pointer table built
// over it.
type CompParts struct {
	Starter []int32     // sorted vertices that can open the component
	Skip    *skip.Parts // nil for unary queries
}

// SnapshotParts extracts the serialized form of the engine. The cover's
// lazy Storing-Theorem membership structures are deliberately NOT
// included: the answering hot path reads the memberOf/kernelOf inverted
// lists (rebuilt from the bag CSRs at restore), the stores are only the
// paper-faithful alternate access path, and their registers are 2–3× the
// size of everything else combined. The restored cover rebuilds them
// lazily under the same sync.Once a fresh build uses, so behavior is
// identical either way.
//
//fod:ctxok the loops here are over the query's clauses and components
// (query-size-bounded); the expensive part-extraction calls inside are
// single passes over already-built structures, and the serve snapshot
// tier checks its ctx between tiers, not inside the codec.
func (e *Engine) SnapshotParts() EngineParts {
	p := EngineParts{
		LiveIdx: append([]int(nil), e.liveIdx...),
		Cover:   e.cov.Parts(false),
		Dist:    e.dix.Parts(),
	}
	for _, rt := range e.clauses {
		comps := make([]CompParts, len(rt.comps))
		for i, c := range rt.comps {
			cp := CompParts{Starter: make([]int32, len(c.starter))}
			for j, v := range c.starter {
				cp.Starter[j] = int32(v)
			}
			if c.skip != nil {
				sp := c.skip.Parts()
				cp.Skip = &sp
			}
			comps[i] = cp
		}
		p.Clauses = append(p.Clauses, comps)
	}
	return p
}

// RestoreEngine rebuilds a ready-to-answer engine for (g, q) from its
// serialized parts. It reruns only the cheap deterministic derivations
// (induced subgraphs, inverted lists, kernel intersections) and skips
// every search phase of Preprocess — distance BFS, cover construction,
// guard evaluation, starter evaluation, and the SC sweep — so restoring
// is linear in the snapshot with small constants. All cross-structure
// invariants the answering phase relies on are revalidated against g and
// q, so a snapshot from a different graph or query errors out instead of
// producing wrong answers or panics.
func RestoreEngine(g *graph.Graph, q *LocalQuery, p EngineParts, opt Options) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.K > skip.MaxSetSize+1 {
		return nil, fmt.Errorf("core: arity %d exceeds supported maximum %d", q.K, skip.MaxSetSize+1)
	}
	e := &Engine{g: g, q: q, k: q.K, r: q.R, rho: q.LocalRadius, obsReg: opt.Obs}
	workers := par.Resolve(opt.Parallelism)
	pool := par.NewPool(workers).WithMetrics(par.NewMetrics(opt.Obs, "engine.pool"))
	e.stats.Workers = workers
	e.gbfs = newScratchPool(g)
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// The restore phases mirror Preprocess's span tree under "restore"
	// instead of "preprocess", so a trace shows at a glance whether a
	// request paid for a disk load or a full build.
	root := opt.Obs.StartSpan(ctx, "restore")

	distR := e.r
	for ci := range q.Clauses {
		for li := range q.Clauses[ci].Locals {
			if d := fo.MaxDistConstant(q.Clauses[ci].Locals[li].Psi); d > distR {
				distR = d
			}
		}
	}
	sp := root.Child("dist")
	dix, err := dist.FromParts(g, p.Dist)
	sp.End()
	if err != nil {
		return nil, err
	}
	if dix.R != distR {
		return nil, fmt.Errorf("core: snapshot distance index has radius %d, query needs %d", dix.R, distR)
	}
	e.dix = dix
	e.evPool.New = func() any {
		ev := fo.NewEvaluator(g)
		ev.UseDistTester(e.dix)
		return ev
	}
	e.envPool.New = func() any { return fo.Env{} }

	coverR := 2 * e.r
	if !q.Guarded {
		if alt := e.r*e.k + e.rho; alt > coverR {
			coverR = alt
		}
	}
	sp = root.Child("cover")
	cov, err := cover.FromPartsObs(g, p.Cover, opt.Obs)
	sp.End()
	if err != nil {
		return nil, err
	}
	if cov.R != coverR {
		return nil, fmt.Errorf("core: snapshot cover has radius %d, query needs %d", cov.R, coverR)
	}
	if cov.KernelP() != e.r {
		return nil, fmt.Errorf("core: snapshot kernels have radius %d, query needs %d", cov.KernelP(), e.r)
	}
	e.cov = cov
	e.stats.CoverRadius = coverR
	e.stats.CoverBags = cov.NumBags()
	e.stats.CoverDegree = cov.Degree()

	if !q.Guarded {
		e.bagSubs = par.Map(pool, cov.NumBags(), func(i int) *graph.Sub {
			return graph.Induce(g, cov.Bag(i))
		})
		e.bagBFS = make([]*scratchPool, len(e.bagSubs))
		for i := range e.bagBFS {
			e.bagBFS[i] = newScratchPool(e.bagSubs[i].G)
		}
	}

	if len(p.LiveIdx) != len(p.Clauses) {
		return nil, fmt.Errorf("core: snapshot has %d live indices for %d clause payloads", len(p.LiveIdx), len(p.Clauses))
	}
	sp = root.Child("clauses")
	prev := -1
	for i, ci := range p.LiveIdx {
		if ci <= prev || ci >= len(q.Clauses) {
			sp.End()
			return nil, fmt.Errorf("core: snapshot live-clause indices not increasing within the query's %d clauses", len(q.Clauses))
		}
		prev = ci
		rt, err := e.restoreClause(&q.Clauses[ci], p.Clauses[i], pool)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: clause %d: %w", ci, err)
		}
		e.clauses = append(e.clauses, rt)
		e.liveIdx = append(e.liveIdx, ci)
	}
	sp.End()
	root.End()
	e.exportInstruments(opt.Obs)
	return e, nil
}

// restoreClause mirrors buildClause with the starter evaluation and SC
// sweep replaced by snapshot data.
func (e *Engine) restoreClause(cl *Clause, parts []CompParts, pool *par.Pool) (*clauseRT, error) {
	if len(parts) != len(cl.Locals) {
		return nil, fmt.Errorf("%d component payloads for %d components", len(parts), len(cl.Locals))
	}
	rt := &clauseRT{
		clause:  cl,
		compOf:  make([]int, e.k),
		firstOf: make([]int, e.k),
	}
	for li := range cl.Locals {
		lf := &cl.Locals[li]
		cp := &parts[li]
		c := &compRT{
			positions: lf.Positions,
			typ:       cl.Type,
			psi:       lf.Psi,
			last:      lf.Positions[len(lf.Positions)-1],
		}
		for _, p := range lf.Positions {
			c.vars = append(c.vars, PosVar(p))
			rt.compOf[p] = li
			rt.firstOf[p] = lf.Positions[0]
		}
		c.inStart = make([]bool, e.g.N())
		c.starter = make([]graph.V, len(cp.Starter))
		prev := int32(-1)
		for i, v := range cp.Starter {
			if v <= prev || int(v) >= e.g.N() {
				return nil, fmt.Errorf("component %d starter list not a sorted vertex list", li)
			}
			prev = v
			c.starter[i] = int(v)
			c.inStart[v] = true
		}
		if len(c.positions) == 1 {
			c.starterReady = true
		}
		e.stats.StarterSizes = append(e.stats.StarterSizes, len(c.starter))
		if e.k >= 2 {
			if cp.Skip == nil {
				return nil, fmt.Errorf("component %d misses its skip table (arity %d)", li, e.k)
			}
			if cp.Skip.K != e.k-1 {
				return nil, fmt.Errorf("component %d skip table has set size %d, arity needs %d", li, cp.Skip.K, e.k-1)
			}
			sk, err := skip.FromPartsObs(e.cov, c.starter, *cp.Skip, e.obsReg)
			if err != nil {
				return nil, err
			}
			c.skip = sk
			e.stats.SkipPointers += sk.Size()
		}
		e.buildKernelLists(c, pool)
		rt.comps = append(rt.comps, c)
	}
	return rt, nil
}
