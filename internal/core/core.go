package core
