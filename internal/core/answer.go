package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/skip"
)

// NextGeq is the main primitive of Theorem 2.3: it returns the
// lexicographically smallest solution ā′ ≥ ā, or ok=false if none exists.
// Per the paper's answering phase, the smallest matching tuple is computed
// for every clause (τ, i) and the minimum is returned. When the engine is
// instrumented, every call's latency lands in the engine.next_geq_ns
// histogram; uninstrumented engines pay one nil check.
//
// The arity check and the clock reads live here, in the un-annotated
// wrapper; the inner nextGeq is the //fod:hotpath part.
func (e *Engine) NextGeq(a []graph.V) ([]graph.V, bool) {
	if len(a) != e.k {
		panic(fmt.Sprintf("core: tuple arity %d, want %d", len(a), e.k))
	}
	if h := e.instr.nextGeq; h != nil {
		start := time.Now()
		sol, ok := e.nextGeq(a)
		h.Observe(time.Since(start))
		return sol, ok
	}
	return e.nextGeq(a)
}

// nextGeq computes NextGeq for a correctly-sized tuple.
//
//fod:hotpath
func (e *Engine) nextGeq(a []graph.V) ([]graph.V, bool) {
	if e.g.N() == 0 {
		return nil, false
	}
	var best []graph.V
	for _, rt := range e.clauses {
		cand := e.nextClause(rt, a)
		if cand != nil && (best == nil || lexLess(cand, best)) {
			best = cand
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// NextGt returns the smallest solution strictly greater than ā.
func (e *Engine) NextGt(a []graph.V) ([]graph.V, bool) {
	succ, ok := incrementTuple(a, e.g.N())
	if !ok {
		return nil, false
	}
	return e.NextGeq(succ)
}

// NextLast implements Lemma 5.2; see nextLast. Instrumented engines
// record per-call latency into engine.next_last_ns.
func (e *Engine) NextLast(prefix []graph.V, b graph.V) (graph.V, bool) {
	if len(prefix) != e.k-1 {
		panic(fmt.Sprintf("core: prefix arity %d, want %d", len(prefix), e.k-1))
	}
	if h := e.instr.nextLast; h != nil {
		start := time.Now()
		v, ok := e.nextLast(prefix, b)
		h.Observe(time.Since(start))
		return v, ok
	}
	return e.nextLast(prefix, b)
}

// nextLast implements Lemma 5.2: for a fixed (k−1)-prefix ā it returns
// the smallest b′ ≥ b with (ā, b′) ∈ q(G), in constant time. This is the
// induction step the paper nests with Theorem 5.1, and the natural
// "page through partners of ā" primitive for applications.
//
//fod:hotpath
func (e *Engine) nextLast(prefix []graph.V, b graph.V) (graph.V, bool) {
	if b < 0 {
		b = 0
	}
	best := graph.V(-1)
	for _, rt := range e.clauses {
		if !e.prefixMatches(rt, prefix) {
			continue
		}
		if v := e.nextCandidate(rt, e.k-1, prefix, b); v >= 0 && (best < 0 || v < best) {
			best = v
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// prefixMatches checks the clause constraints that involve only the
// prefix: the distance pattern among its positions and the component
// formulas of components fully contained in it.
//
//fod:hotpath
func (e *Engine) prefixMatches(rt *clauseRT, prefix []graph.V) bool {
	for i := range prefix {
		for j := i + 1; j < len(prefix); j++ {
			if e.dix.Within(prefix[i], prefix[j], e.r) != rt.clause.Type.Close(i, j) {
				return false
			}
		}
	}
	for _, c := range rt.comps {
		if c.last >= len(prefix) {
			continue
		}
		if c.starterReady {
			// Singleton component: the starter bitmap answers in O(1).
			if !c.inStart[prefix[c.positions[0]]] {
				return false
			}
			continue
		}
		vals := make([]graph.V, len(c.positions))
		for i, p := range c.positions {
			vals[i] = prefix[p]
		}
		if !e.localEval(c, vals) {
			return false
		}
	}
	return true
}

// Test implements Corollary 2.4: constant-time membership of ā in the
// query result. Instrumented engines record per-call latency into
// engine.test_ns. The arity check and the clock reads live in this
// un-annotated wrapper.
func (e *Engine) Test(a []graph.V) bool {
	if len(a) != e.k {
		panic(fmt.Sprintf("core: tuple arity %d, want %d", len(a), e.k))
	}
	if h := e.instr.test; h != nil {
		start := time.Now()
		ok := e.test(a)
		h.Observe(time.Since(start))
		return ok
	}
	return e.test(a)
}

// test is the Corollary 2.4 membership check proper; the LINT_GUARD
// AllocsPerRun suite pins it at 0 allocs/op on singleton-component
// queries.
//
//fod:hotpath
func (e *Engine) test(a []graph.V) bool {
	for _, rt := range e.clauses {
		if e.testClause(rt, a) {
			return true
		}
	}
	return false
}

//fod:hotpath
func (e *Engine) testClause(rt *clauseRT, a []graph.V) bool {
	for i := 0; i < e.k; i++ {
		for j := i + 1; j < e.k; j++ {
			if e.dix.Within(a[i], a[j], e.r) != rt.clause.Type.Close(i, j) {
				return false
			}
		}
	}
	for _, c := range rt.comps {
		if c.starterReady {
			// Singleton component: the starter bitmap answers in O(1)
			// without materializing the component tuple.
			if !c.inStart[a[c.positions[0]]] {
				return false
			}
			continue
		}
		vals := make([]graph.V, len(c.positions))
		for i, p := range c.positions {
			vals[i] = a[p]
		}
		if !e.localEval(c, vals) {
			return false
		}
	}
	return true
}

// Enumerate implements Corollary 2.5: it yields every solution exactly
// once, in increasing lexicographic order, until exhaustion or until yield
// returns false. The tuple passed to yield is reused; copy it to retain it.
//
// On an instrumented engine every iteration's answer-production time (the
// NextGeq step — the paper's "delay", excluding the caller's yield body)
// is recorded into the engine.delay_ns histogram, which is what the
// fodbench delay profiler reports against the constant-delay claim.
//
//fod:ctxok the yield callback is the cancellation path: any caller that
// must honor a deadline returns false from yield (CountCtx does exactly
// that); a ctx parameter here would put a select on the constant-delay
// loop of every caller, cancellable or not.
func (e *Engine) Enumerate(yield func([]graph.V) bool) {
	if e.g.N() == 0 {
		return
	}
	h := e.instr.delay
	cur := make([]graph.V, e.k)
	for {
		var sol []graph.V
		var ok bool
		if h != nil {
			start := time.Now()
			sol, ok = e.nextGeq(cur)
			h.Observe(time.Since(start))
		} else {
			sol, ok = e.nextGeq(cur)
		}
		if !ok {
			return
		}
		if !yield(sol) {
			return
		}
		next, ok := incrementTuple(sol, e.g.N())
		if !ok {
			return
		}
		cur = next
	}
}

// Count returns |q(G)| by full enumeration.
func (e *Engine) Count() int {
	n := 0
	e.Enumerate(func([]graph.V) bool { n++; return true })
	return n
}

// countCheckEvery is how many answers a cancellable count produces
// between ctx polls: frequent enough that a canceled request stops after
// a bounded number of constant-delay steps, rare enough that the poll
// cost vanishes against the enumeration itself.
const countCheckEvery = 4096

// CountCtx counts by full enumeration with cooperative cancellation,
// polling ctx every countCheckEvery answers. It returns ctx.Err() if the
// context was canceled before the solution set was exhausted.
func (e *Engine) CountCtx(ctx context.Context) (int, error) {
	n := 0
	canceled := false
	e.Enumerate(func([]graph.V) bool {
		n++
		if n%countCheckEvery == 0 {
			select {
			case <-ctx.Done():
				canceled = true
				return false
			default:
			}
		}
		return true
	})
	if canceled {
		return 0, ctx.Err()
	}
	return n, nil
}

// nextClause returns the smallest tuple ≥ a matching the clause, or nil.
//
//fod:hotpath
func (e *Engine) nextClause(rt *clauseRT, a []graph.V) []graph.V {
	tuple := make([]graph.V, e.k)
	if e.nextClauseInto(rt, a, tuple) {
		return tuple
	}
	return nil
}

// nextClauseInto writes the smallest tuple ≥ a matching the clause into
// tuple (len(tuple) == k) and reports whether one exists. It is a
// lexicographic backtracking search whose per-level candidate generators
// are the paper's Case I (new component: skip pointers over the starter
// list plus kernel scans) and Case II (ball scan around the component's
// first element). The recursion is a method, not a closure, so a steady-
// state caller that supplies the buffer (the Iterator) allocates nothing.
//
//fod:hotpath
func (e *Engine) nextClauseInto(rt *clauseRT, a, tuple []graph.V) bool {
	return e.nextClauseRec(rt, a, tuple, 0, true)
}

// nextClauseRec places position j of tuple; tight means the prefix equals
// a's, so position j is still bounded below by a[j].
//
//fod:hotpath
func (e *Engine) nextClauseRec(rt *clauseRT, a, tuple []graph.V, j int, tight bool) bool {
	if j == e.k {
		return true
	}
	var lower graph.V
	if tight {
		lower = a[j]
	}
	for v := e.nextCandidate(rt, j, tuple[:j], lower); v >= 0; {
		tuple[j] = v
		e.ctr.candidates.Add(1)
		if e.nextClauseRec(rt, a, tuple, j+1, tight && v == a[j]) {
			return true
		}
		e.ctr.deadEnds.Add(1)
		if v+1 >= e.g.N() {
			break
		}
		v = e.nextCandidate(rt, j, tuple[:j], v+1)
	}
	return false
}

// nextCandidate returns the smallest v ≥ lower that is admissible for
// position j given the placed prefix, or -1.
//
//fod:hotpath
func (e *Engine) nextCandidate(rt *clauseRT, j int, prefix []graph.V, lower graph.V) graph.V {
	if lower >= e.g.N() {
		return -1
	}
	c := rt.comps[rt.compOf[j]]
	if rt.firstOf[j] == j {
		return e.nextOpening(rt, c, j, prefix, lower)
	}
	return e.nextWithinComponent(rt, c, j, prefix, lower)
}

// nextOpening handles a position that opens a new component: the candidate
// must come from the component's starter list and be at distance > R from
// every prefix element (all of which belong to other components). This is
// the paper's Case I: the answer is the minimum of the skip-pointer
// candidate (outside every kernel of the prefix's canonical bags, hence
// automatically far) and one scan per canonical bag kernel.
//
//fod:hotpath
func (e *Engine) nextOpening(rt *clauseRT, c *compRT, j int, prefix []graph.V, lower graph.V) graph.V {
	if len(prefix) == 0 {
		i := sort.SearchInts(c.starter, lower)
		if i == len(c.starter) {
			return -1
		}
		return c.starter[i]
	}
	// Canonical bags of the prefix elements, deduplicated. The prefix has
	// ≤ k−1 ≤ skip.MaxSetSize elements (Preprocess enforces the arity
	// bound), so a fixed-size stack array holds the set without
	// allocating.
	var bagArr [skip.MaxSetSize]int
	bags := bagArr[:0]
	for _, p := range prefix {
		x := e.cov.Assign(p)
		dup := false
		for _, y := range bags {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			bags = append(bags, x)
		}
	}
	best := graph.V(-1)
	if c.skip != nil {
		if v := c.skip.Query(lower, bags); v != skip.None {
			best = v
		}
	}
	// Scan starter ∩ K_R(X) for each canonical bag X, rejecting candidates
	// within distance R of some prefix element. Rejections are confined to
	// the R-balls of the ≤ k−1 prefix elements, hence pseudo-constant on
	// nowhere dense inputs.
	for _, x := range bags {
		lst := c.byKernel[x]
		i := sort.SearchInts(lst, lower)
		for ; i < len(lst); i++ {
			v := lst[i]
			if best >= 0 && v >= best {
				break
			}
			if e.farFromAll(v, prefix) {
				best = v
				break
			}
		}
	}
	return best
}

//fod:hotpath
func (e *Engine) farFromAll(v graph.V, prefix []graph.V) bool {
	for _, p := range prefix {
		if e.dix.Within(v, p, e.r) {
			return false
		}
	}
	return true
}

// nextWithinComponent handles a position whose component already has a
// placed element (Case II): candidates live in the ball of radius R(k−1)
// around the component's first element; each is checked against the full
// distance pattern to the prefix, and the component formula is evaluated
// when the component completes at this position.
//
//fod:hotpath
func (e *Engine) nextWithinComponent(rt *clauseRT, c *compRT, j int, prefix []graph.V, lower graph.V) graph.V {
	anchor := prefix[rt.firstOf[j]]
	ball := e.cachedBall(anchor)
	i := sort.SearchInts(ball, lower)
	for ; i < len(ball); i++ {
		v := ball[i]
		if !e.patternOK(rt, j, prefix, v) {
			continue
		}
		if j == c.last && !e.componentHolds(c, prefix, v) {
			continue
		}
		return v
	}
	return -1
}

// patternOK verifies dist(prefix[i], v) ≤ R exactly matches the clause's
// distance type for every placed position i.
//
//fod:hotpath
func (e *Engine) patternOK(rt *clauseRT, j int, prefix []graph.V, v graph.V) bool {
	for i, p := range prefix {
		if e.dix.Within(p, v, e.r) != rt.clause.Type.Close(i, j) {
			return false
		}
	}
	return true
}

// componentHolds evaluates ψ_I with the component completed by v at its
// last position.
//
//fod:hotpath
func (e *Engine) componentHolds(c *compRT, prefix []graph.V, v graph.V) bool {
	if c.starterReady {
		// Singleton component: the starter bitmap answers in O(1).
		return c.inStart[v]
	}
	vals := make([]graph.V, len(c.positions))
	for i, p := range c.positions[:len(c.positions)-1] {
		vals[i] = prefix[p]
	}
	vals[len(vals)-1] = v
	return e.localEval(c, vals)
}

// cachedBall memoizes componentBall per anchor vertex. Concurrent callers
// may compute the same ball twice; both results are identical and the
// losing store is harmless.
func (e *Engine) cachedBall(anchor graph.V) []graph.V {
	if b, ok := e.ballCache.Load(anchor); ok {
		return b.([]graph.V)
	}
	b := e.componentBall(anchor)
	e.ballCache.Store(anchor, b)
	return b
}

//fod:hotpath
func lexLess(a, b []graph.V) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// incrementTupleInto writes the successor of a in the lexicographic order
// on [0,n)^k into dst (len(dst) == len(a)); ok=false at the maximum.
//
//fod:hotpath
func incrementTupleInto(dst, a []graph.V, n int) bool {
	copy(dst, a)
	for i := len(dst) - 1; i >= 0; i-- {
		if dst[i]+1 < n {
			dst[i]++
			return true
		}
		dst[i] = 0
	}
	return false
}

// incrementTuple returns the successor of a in the lexicographic order on
// [0,n)^k, or ok=false at the maximum.
func incrementTuple(a []graph.V, n int) ([]graph.V, bool) {
	out := make([]graph.V, len(a))
	if !incrementTupleInto(out, a, n) {
		return nil, false
	}
	return out, true
}
