package core

import (
	"sort"

	"repro/internal/graph"
)

// FastCount returns |q(G)| without enumerating the result set, in
// pseudo-linear time, for queries of arity 1 and 2 — the companion result
// to the paper (Grohe & Schweikardt, "First-order query evaluation with
// cardinality conditions", cited as [18]) states that counting FO answers
// over nowhere dense classes is pseudo-linear. ok=false means the arity is
// not supported and the caller should fall back to Count().
//
// Arity 1: the clause starter lists are exact solution lists; count their
// union. Arity 2: group clauses by distance type; close-type groups are
// counted by scanning R-balls, far-type groups by inclusion–exclusion
//
//	#far(L0, L1) = |L0|·|L1| − #close(L0, L1),
//
// with the close-pair term again a ball scan. Both scans cost Σ_a ‖N_R(a)‖.
//
// Higher arities are supported when every live clause's distance type is
// connected (a single component): each solution then lives inside the
// radius-R(k−1) ball of its first element and fastCountConnected counts
// by one bounded recursion per vertex.
func (e *Engine) FastCount() (int, bool) {
	switch e.k {
	case 1:
		return e.fastCount1(), true
	case 2:
		return e.fastCount2(), true
	}
	if e.allConnected() {
		return e.fastCountConnected(), true
	}
	return 0, false
}

func (e *Engine) fastCount1() int {
	seen := make([]bool, e.g.N())
	total := 0
	for _, rt := range e.clauses {
		for _, v := range rt.comps[0].starter {
			if !seen[v] {
				seen[v] = true
				total++
			}
		}
	}
	return total
}

func (e *Engine) fastCount2() int {
	groups, order := e.groupByType()
	total := 0
	for _, key := range order {
		g := groups[key]
		if g[0].clause.Type.Close(0, 1) {
			total += e.countCloseGroup(g)
		} else {
			total += e.countFarGroup(g)
		}
	}
	return total
}

// groupByType buckets the live clauses by distance type, preserving first-
// appearance order so the count is deterministic. Distinct type keys have
// distinct close matrices, hence disjoint tuple sets — group counts add.
func (e *Engine) groupByType() (map[string][]*clauseRT, []string) {
	groups := map[string][]*clauseRT{}
	var order []string
	for _, rt := range e.clauses {
		k := rt.clause.Type.Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], rt)
	}
	return groups, order
}

// allConnected reports whether every live clause's distance type has a
// single component, i.e. the query only asserts "close"-connected tuples.
func (e *Engine) allConnected() bool {
	for _, rt := range e.clauses {
		if len(rt.comps) != 1 {
			return false
		}
	}
	return true
}

// fastCountConnected counts the solutions of an all-connected query of
// arity ≥ 3: every solution lives inside the radius-R(k−1) ball of its
// first element, so the count is one ball-confined recursion per vertex.
// A tuple is counted once per type group via first-match evaluation.
func (e *Engine) fastCountConnected() int {
	groups, order := e.groupByType()
	total := 0
	tuple := make([]graph.V, e.k)
	for _, key := range order {
		g := groups[key]
		for a := 0; a < e.g.N(); a++ {
			tuple[0] = a
			total += e.countConnectedRec(g, tuple, 1)
		}
	}
	return total
}

// countConnectedRec extends tuple[:j] over the ball of tuple[0], checking
// the distance pattern incrementally, and counts the completions matching
// at least one clause of the group.
func (e *Engine) countConnectedRec(group []*clauseRT, tuple []graph.V, j int) int {
	typ := group[0].clause.Type
	if j == e.k {
		for _, rt := range group {
			if e.localEval(rt.comps[0], tuple) {
				return 1
			}
		}
		return 0
	}
	count := 0
	for _, w := range e.cachedBall(tuple[0]) {
		ok := true
		for i := 0; i < j; i++ {
			if e.dix.Within(tuple[i], w, e.r) != typ.Close(i, j) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		tuple[j] = w
		count += e.countConnectedRec(group, tuple, j+1)
	}
	return count
}

// countCloseGroup counts pairs (a, b) with dist(a,b) ≤ R whose component
// formula holds for at least one clause of the group.
func (e *Engine) countCloseGroup(group []*clauseRT) int {
	count := 0
	vals := make([]graph.V, 2)
	for a := 0; a < e.g.N(); a++ {
		for _, b := range e.cachedBall(a) {
			vals[0], vals[1] = a, b
			for _, rt := range group {
				if e.localEval(rt.comps[0], vals) {
					count++
					break
				}
			}
		}
	}
	return count
}

// countFarGroup counts pairs (a, b) with dist(a,b) > R matching at least
// one clause, by inclusion–exclusion over the group's clauses: for each
// non-empty subset S, the tuples matching all clauses of S are pairs from
// the starter-list intersections, minus the close ones.
func (e *Engine) countFarGroup(group []*clauseRT) int {
	m := len(group)
	total := 0
	for mask := 1; mask < 1<<uint(m); mask++ {
		var l0, l1 []graph.V
		first := true
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if first {
				l0 = group[i].comps[0].starter
				l1 = group[i].comps[1].starter
				first = false
			} else {
				l0 = intersectSorted(l0, group[i].comps[0].starter)
				l1 = intersectSorted(l1, group[i].comps[1].starter)
			}
		}
		far := len(l0)*len(l1) - e.closePairs(l0, l1)
		if popcount(mask)%2 == 1 {
			total += far
		} else {
			total -= far
		}
	}
	return total
}

// closePairs counts pairs (a, b) with a ∈ A, b ∈ B, dist(a,b) ≤ R, via an
// R-ball scan per element of A.
func (e *Engine) closePairs(A, B []graph.V) int {
	if len(A) == 0 || len(B) == 0 {
		return 0
	}
	inB := make(map[graph.V]bool, len(B))
	for _, b := range B {
		inB[b] = true
	}
	count := 0
	for _, a := range A {
		for _, b := range e.ballR(a) {
			if inB[b] {
				count++
			}
		}
	}
	return count
}

// ballR returns the exact N_R(a), memoized. (cachedBall uses radius
// R·(k−1), which equals R only for k=2, so keep a dedicated cache.)
func (e *Engine) ballR(a graph.V) []graph.V {
	if b, ok := e.ballRCache.Load(a); ok {
		return b.([]graph.V)
	}
	var out []graph.V
	if e.q.Guarded {
		bfs := e.gbfs.get()
		ball := bfs.Ball(a, e.r)
		out = make([]graph.V, len(ball))
		for i, w := range ball {
			out[i] = int(w)
		}
		e.gbfs.put(bfs)
	} else {
		bag := e.cov.Assign(a)
		sub := e.bagSubs[bag]
		bfs := e.bagBFS[bag].get()
		ball := bfs.Ball(sub.Local(a), e.r)
		out = make([]graph.V, len(ball))
		for i, w := range ball {
			out[i] = sub.Orig[int(w)]
		}
		e.bagBFS[bag].put(bfs)
	}
	sort.Ints(out)
	e.ballRCache.Store(a, out)
	return out
}

func intersectSorted(a, b []graph.V) []graph.V {
	var out []graph.V
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
