// Differential and fuzz tests of the mutation path: an engine evolved via
// ApplyEdits must enumerate byte-identically to an engine preprocessed
// from scratch on the edited graph, and both must match the naive oracle.
package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/naive"
)

// randomEditBatch draws a mixed batch of edge/color edits, biased so that
// about half the edge edits hit existing edges (removals that do
// something) and color flips toggle real colors.
func randomEditBatch(rng *rand.Rand, g *graph.Graph, count int) []graph.Edit {
	edits := make([]graph.Edit, 0, count)
	for len(edits) < count {
		switch rng.Intn(4) {
		case 0, 1: // edge add/remove
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u == v {
				continue
			}
			op := graph.AddEdge
			if g.HasEdge(u, v) || rng.Intn(2) == 0 {
				op = graph.RemoveEdge
			}
			edits = append(edits, graph.Edit{Op: op, U: u, V: v})
		default: // color flip
			if g.NumColors() == 0 {
				continue
			}
			v, c := rng.Intn(g.N()), rng.Intn(g.NumColors())
			op := graph.AddColor
			if g.HasColor(v, c) {
				op = graph.RemoveColor
			}
			edits = append(edits, graph.Edit{Op: op, U: v, Color: c})
		}
	}
	return edits
}

type mutateCase struct {
	class gen.Class
	n     int
	query string
	vars  []fo.Var
}

func mutateCases() []mutateCase {
	xy := []fo.Var{"x", "y"}
	return []mutateCase{
		// Large enough that single edits are genuinely local (the patched
		// path is taken, see TestMutatePatchedPathTaken).
		{gen.Grid, 400, "dist(x,y) > 2 & C0(y)", xy},
		{gen.Path, 300, "dist(x,y) > 1 & C0(x) & C1(y)", xy},
		{gen.RandomTree, 250, "E(x,y) & C0(x)", xy},
		{gen.BoundedDegree, 200, "dist(x,y) > 2 & C0(x)", xy},
		// Small graphs stress the fallback and repair paths.
		{gen.Caterpillar, 50, "dist(x,y) > 2 & (exists z (E(x,z) & C0(z)))", xy},
		{gen.Star, 40, "C0(x) & C1(y) & dist(x,y) > 1", xy},
	}
}

// TestMutateDifferential chains several edit generations and, after each,
// compares the mutated engine against a from-scratch build and the naive
// oracle — full enumeration, membership probes, and counts.
func TestMutateDifferential(t *testing.T) {
	for _, tc := range mutateCases() {
		t.Run(fmt.Sprintf("%s/%s", tc.class, tc.query), func(t *testing.T) {
			g := gen.Generate(tc.class, tc.n, gen.Options{Seed: 5, Colors: 2})
			lq, err := core.Compile(fo.MustParse(tc.query), tc.vars, core.CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			eng, err := core.Preprocess(g, lq, core.Options{Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(tc.n)))
			for generation := 0; generation < 5; generation++ {
				edits := randomEditBatch(rng, g, 1+rng.Intn(5))
				mutated, err := eng.ApplyEdits(nil, edits)
				if err != nil {
					t.Fatalf("generation %d: ApplyEdits: %v", generation, err)
				}
				gNew, err := graph.Patch(g, edits)
				if err != nil {
					t.Fatal(err)
				}
				rebuiltEng, err := core.Preprocess(gNew, lq, core.Options{Parallelism: 2})
				if err != nil {
					t.Fatalf("generation %d: rebuild: %v", generation, err)
				}
				got := materialize(mutated)
				want := materialize(rebuiltEng)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("generation %d: mutated enumeration diverged from rebuild (%d vs %d tuples)",
						generation, len(got), len(want))
				}
				oracle := naive.SolutionsLocal(gNew, lq)
				if len(oracle) == 0 {
					oracle = nil
				}
				if !reflect.DeepEqual(got, oracle) {
					t.Fatalf("generation %d: mutated enumeration diverged from naive oracle (%d vs %d tuples)",
						generation, len(got), len(oracle))
				}
				// Membership probes on random tuples.
				for q := 0; q < 200; q++ {
					a := []graph.V{rng.Intn(gNew.N()), rng.Intn(gNew.N())}
					if mutated.Test(a) != rebuiltEng.Test(a) {
						t.Fatalf("generation %d: Test(%v) disagrees with rebuild", generation, a)
					}
				}
				g, eng = gNew, mutated
			}
		})
	}
}

// TestMutateSnapshotIsolation: the old engine keeps answering with its old
// results after (and while) a mutation derives the next version.
func TestMutateSnapshotIsolation(t *testing.T) {
	g := gen.Generate(gen.Grid, 400, gen.Options{Seed: 8, Colors: 2})
	lq, err := core.Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"), []fo.Var{"x", "y"}, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Preprocess(g, lq, core.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := materialize(eng)
	rng := rand.New(rand.NewSource(3))

	// Readers hammer the old engine while writers chain mutations off it.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := []graph.V{r.Intn(g.N()), r.Intn(g.N())}
				eng.Test(a)
				eng.NextGeq(a)
			}
		}(int64(w))
	}
	cur := eng
	for i := 0; i < 3; i++ {
		edits := randomEditBatch(rng, cur.Graph(), 3)
		next, err := cur.ApplyEdits(nil, edits)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	close(stop)
	wg.Wait()
	after := materialize(eng)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("old engine's enumeration changed after mutations")
	}
}

// TestMutatePatchedPathTaken guards against the patch silently degrading
// into rebuild-always: on a large grid with a single-edge edit, the
// incremental path (not the Preprocess fallback) must serve the mutation.
func TestMutatePatchedPathTaken(t *testing.T) {
	g := gen.Generate(gen.Grid, 900, gen.Options{Seed: 2, Colors: 1})
	lq, err := core.Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"), []fo.Var{"x", "y"}, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Preprocess(g, lq, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := eng.ApplyEdits(nil, []graph.Edit{{Op: graph.RemoveEdge, U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	st := mutated.Stats()
	if st.Mutations != 1 {
		t.Fatalf("Mutations = %d, want 1", st.Mutations)
	}
	if st.MutRebuilds != 0 {
		t.Fatalf("single-edge edit fell back to a full rebuild (MutRebuilds = %d)", st.MutRebuilds)
	}
	if st.MutAffected == 0 || st.MutAffected > g.N()/2 {
		t.Fatalf("MutAffected = %d, want a small nonzero region of n=%d", st.MutAffected, g.N())
	}
	// A no-op batch returns the engine itself.
	same, err := mutated.ApplyEdits(nil, []graph.Edit{{Op: graph.AddEdge, U: 0, V: 500}, {Op: graph.RemoveEdge, U: 0, V: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if same != mutated {
		t.Fatal("identity edit batch should return the receiver engine")
	}
}

// FuzzMutateVsRebuild drives random interleavings of edits and
// enumerations from fuzz-provided bytes: every prefix of the edit stream
// must enumerate byte-identically on the mutated engine, a from-scratch
// rebuild, and the naive oracle.
func FuzzMutateVsRebuild(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x40, 0x80, 0x13})
	f.Add(int64(7), []byte{0xff, 0x00, 0x31, 0x62, 0x05, 0x99})
	f.Add(int64(42), []byte{0x10, 0x20, 0x30})
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		if len(program) == 0 || len(program) > 64 {
			t.Skip()
		}
		g := gen.Generate(gen.SparseRandom, 60, gen.Options{Seed: seed, Colors: 2})
		lq, err := core.Compile(fo.MustParse("dist(x,y) > 1 & C0(x)"), []fo.Var{"x", "y"}, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.Preprocess(g, lq, core.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		n := g.N()
		for i := 0; i+2 < len(program); i += 3 {
			op := program[i] % 5
			u := int(program[i+1]) % n
			v := int(program[i+2]) % n
			var edit graph.Edit
			switch op {
			case 0:
				edit = graph.Edit{Op: graph.AddEdge, U: u, V: (v + 1) % n}
				if u == edit.V {
					continue
				}
			case 1:
				edit = graph.Edit{Op: graph.RemoveEdge, U: u, V: (v + 1) % n}
				if u == edit.V {
					continue
				}
			case 2:
				edit = graph.Edit{Op: graph.AddColor, U: u, Color: v % 2}
			case 3:
				edit = graph.Edit{Op: graph.RemoveColor, U: u, Color: v % 2}
			default:
				// Enumerate checkpoint without editing.
				edit = graph.Edit{Op: graph.AddEdge, U: u, V: u} // no-op
			}
			mutated, err := eng.ApplyEdits(nil, []graph.Edit{edit})
			if err != nil {
				t.Fatal(err)
			}
			gNew, err := graph.Patch(g, []graph.Edit{edit})
			if err != nil {
				t.Fatal(err)
			}
			rebuiltEng, err := core.Preprocess(gNew, lq, core.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			got := materialize(mutated)
			want := materialize(rebuiltEng)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d (%v): mutated %d tuples, rebuild %d tuples", i/3, edit, len(got), len(want))
			}
			oracle := naive.SolutionsLocal(gNew, lq)
			if len(oracle) == 0 {
				oracle = nil
			}
			if !reflect.DeepEqual(got, oracle) {
				t.Fatalf("step %d (%v): mutated diverged from naive oracle", i/3, edit)
			}
			g, eng = gNew, mutated
		}
	})
}
