package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fo"
	"repro/internal/gen"
)

// TestPreprocessCanceled: a context that is already done makes Preprocess
// fail fast with the context error, before any phase runs.
func TestPreprocessCanceled(t *testing.T) {
	g := gen.Generate(gen.Path, 50, gen.Options{Colors: 1, Seed: 1})
	lq, err := Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"), []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Preprocess(g, lq, Options{Ctx: ctx})
	if err == nil {
		t.Fatal("Preprocess with canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// TestPreprocessDeadline: an expired deadline surfaces as
// context.DeadlineExceeded through the phase checkpoints.
func TestPreprocessDeadline(t *testing.T) {
	g := gen.Generate(gen.Path, 2000, gen.Options{Colors: 1, Seed: 1})
	lq, err := Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"), []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = Preprocess(g, lq, Options{Ctx: ctx})
	if err == nil {
		t.Fatal("Preprocess with expired deadline succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestPreprocessNilCtx: the zero Options keep working (no deadline).
func TestPreprocessNilCtx(t *testing.T) {
	g := gen.Generate(gen.Path, 50, gen.Options{Colors: 1, Seed: 1})
	lq, err := Compile(fo.MustParse("C0(x)"), []fo.Var{"x"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Preprocess(g, lq, Options{}); err != nil {
		t.Fatalf("Preprocess without ctx: %v", err)
	}
}
