package core

import (
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// compileQueries is the corpus of FO⁺ queries the compiler must handle;
// each is compared against direct FO evaluation on whole graphs, so any
// locality mistake in the compilation pipeline shows up as a diff.
var compileQueries = []struct {
	name string
	src  string
	vars []fo.Var
}{
	{"edge", "E(x,y)", []fo.Var{"x", "y"}},
	{"close2", "dist(x,y) <= 2", []fo.Var{"x", "y"}},
	{"far2-blue", "dist(x,y) > 2 & C0(y)", []fo.Var{"x", "y"}},
	{"example1A", "exists z (E(x,z) & E(z,y)) | E(x,y) | x = y", []fo.Var{"x", "y"}},
	{"neq-adjacent", "E(x,y) & x != y & C0(x)", []fo.Var{"x", "y"}},
	{"guarded-exists", "C0(x) & dist(x,y) > 1 & exists z (E(y,z) & C1(z))", []fo.Var{"x", "y"}},
	{"negated-local", "dist(x,y) > 2 & ~(exists z (E(x,z) & C0(z)))", []fo.Var{"x", "y"}},
	{"disjunction-mixed", "dist(x,y) <= 1 & C1(x) | dist(x,y) > 2 & C0(x) & C0(y)", []fo.Var{"x", "y"}},
	{"unary-dominator", "exists z (E(x,z) & C0(z)) | C0(x)", []fo.Var{"x"}},
	{"with-sentence-guard", "C0(x) & exists z w (E(z,w) & C1(z) & C1(w))", []fo.Var{"x"}},
	{"triple-far-blue", "dist(x,z) > 2 & dist(y,z) > 2 & C0(z)", []fo.Var{"x", "y", "z"}},
	{"triple-path", "E(x,y) & E(y,z) & x != z", []fo.Var{"x", "y", "z"}},
}

func TestCompileMatchesDirectFOEvaluation(t *testing.T) {
	for _, tc := range compileQueries {
		phi := fo.MustParse(tc.src)
		q, err := Compile(phi, tc.vars, CompileOptions{})
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		n := 60
		if len(tc.vars) >= 3 {
			n = 24 // naive is n^3·eval
		}
		for _, class := range []gen.Class{gen.Path, gen.Star, gen.RandomTree, gen.Grid} {
			g := gen.Generate(class, n, gen.Options{Seed: 31, Colors: 2, ColorProb: 0.35})
			e, err := Preprocess(g, q, Options{})
			if err != nil {
				t.Fatalf("%s/%s: preprocess: %v", tc.name, class, err)
			}
			got := materializeEngine(e)
			want := naiveSolutions(g, phi, tc.vars)
			if i, ok := tuplesEqual(got, want); !ok {
				t.Fatalf("%s/%s: mismatch (engine %d vs direct %d tuples, first diff %v vs %v)",
					tc.name, class, len(got), len(want), safeIndex(got, i), safeIndex(want, i))
			}
		}
	}
}

// naiveSolutions is a local copy of naive.Solutions (the naive package
// imports core, so core's tests cannot import it back).
func naiveSolutions(g *graph.Graph, phi fo.Formula, vars []fo.Var) [][]graph.V {
	ev := fo.NewEvaluator(g)
	var out [][]graph.V
	tuple := make([]graph.V, len(vars))
	env := fo.Env{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			if ev.Eval(phi, env) {
				out = append(out, append([]graph.V(nil), tuple...))
			}
			return
		}
		for v := 0; v < g.N(); v++ {
			tuple[i] = v
			env[vars[i]] = v
			rec(i + 1)
		}
		delete(env, vars[i])
	}
	rec(0)
	return out
}

func TestCompileRejectsCrossComponentQuantifier(t *testing.T) {
	// ∃z (E(x,z) ∧ E(z,y)) under a far type spans both components... but
	// at R ≥ 2 the subformula implies dist(x,y) ≤ 2 ≤ R, so with the
	// default R it is decided by closeness — whereas an explicit big
	// cross-component distance atom cannot be.
	phi := fo.MustParse("dist(x,y) <= 9")
	if _, err := Compile(phi, []fo.Var{"x", "y"}, CompileOptions{R: 2}); err == nil {
		t.Fatal("expected a compile error for a cross-component atom with d > R")
	}
}

func TestCompileSpanningSubformulaRejected(t *testing.T) {
	// ∃z (E(x,z) ∨ E(y,z)) gives no distance bound between x and y, so no
	// threshold can decide it under a far type.
	phi := fo.MustParse("exists z (E(x,z) | E(y,z))")
	if _, err := Compile(phi, []fo.Var{"x", "y"}, CompileOptions{}); err == nil {
		t.Fatal("expected a compile error for a component-spanning subformula")
	}
}

func TestCompileImpliedBoundDecidesSpanningUnit(t *testing.T) {
	// ∃z (E(x,z) ∧ E(z,y)) implies dist(x,y) ≤ 2, so with R = 2 it is
	// false under far types and stays local under close types.
	phi := fo.MustParse("exists z (E(x,z) & E(z,y))")
	q, err := Compile(phi, []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if q.R != 2 {
		t.Fatalf("default R = %d, want the implied bound 2", q.R)
	}
}

func TestCompileDefaultRadii(t *testing.T) {
	phi := fo.MustParse("dist(x,y) <= 3 & C0(x)")
	q, err := Compile(phi, []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if q.R != 3 {
		t.Fatalf("default R = %d, want 3", q.R)
	}
	if q.LocalRadius < 3 {
		t.Fatalf("LocalRadius %d < R", q.LocalRadius)
	}
}

func TestCompileGuardSentences(t *testing.T) {
	phi := fo.MustParse("C0(x) & exists z C1(z)")
	q, err := Compile(phi, []fo.Var{"x"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Guards == nil {
		t.Fatal("expected a guard for the sentence conjunct")
	}
	// Graph without color-1 vertices → guard fails → empty result even
	// though color-0 vertices exist.
	b := graph.NewBuilder(30, 2)
	for v := 0; v+1 < 30; v++ {
		b.AddEdge(v, v+1)
	}
	b.SetColor(5, 0)
	g := b.Build()
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 {
		t.Fatal("guard should suppress all solutions")
	}
}
