// Engine mutation: ApplyEdits derives the Theorem 2.3 index of an edited
// graph from the existing one, recomputing only what the edits can reach.
//
// The paper's dynamic claim (§3, Storing Theorem, and the n^ε update
// discussion) is that a single edit invalidates only the structure within
// a bounded radius of its endpoints. ApplyEdits realizes that layer by
// layer:
//
//   - graph: CSR rows of the endpoints are respliced (graph.Patch).
//   - distance index: ball rows within distR of an endpoint (dist.Patch).
//   - cover: containment repairs and exact kernel recomputation for bags
//     within reach of an endpoint (cover.Patch), with materialized
//     Storing-Theorem structures cloned and delta-updated via the O(n^ε)
//     Set/Delete of Theorem 3.1.
//   - starters: inStart[v] depends only on structure within
//     R(k−1) + ρ + distR of v (the component completion search spans
//     R(k−1), local evaluation adds ρ, distance atoms add distR), so only
//     vertices within D = Rk + ρ + distR of an edited vertex are re-tested.
//   - skip pointers: served through the delta overlay of internal/skip —
//     the old SC tables stay the base; the eligibility delta is the
//     starter diff ∪ the cover patch's KernelDelta.
//
// Every derived structure is copy-on-write: the receiver engine is never
// modified and keeps answering for its own version with byte-identical
// results — this is the MVCC read side the repro facade builds on.
//
// When an edit is not local — the cover or distance layouts refuse to
// patch, a clause guard flips, the accumulated skip delta outgrows its
// threshold, or the query is a hand-built non-guarded one — ApplyEdits
// falls back to a full Preprocess. Correctness never depends on the patch
// being taken; the differential and fuzz tests in this package compare
// both paths against each other.
package core

import (
	"context"
	"sort"
	"time"

	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/fo"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/skip"
)

// ApplyEdits returns a new engine answering the query over the edited
// graph. The receiver is unchanged and remains fully usable (snapshot
// isolation); the two engines share every structure the edits did not
// reach. Enumeration over the result is byte-identical to enumeration
// over Preprocess(Patch(g, edits), q).
func (e *Engine) ApplyEdits(ctx context.Context, edits []graph.Edit) (*Engine, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	gOld := e.g
	gNew, err := graph.Patch(gOld, edits)
	if err != nil {
		return nil, err
	}

	// Effective touch sets: edits that net to no-ops reach nothing.
	edgeSrcs, colorChanged := effectiveTouch(gOld, gNew, edits)
	if len(edgeSrcs) == 0 && len(colorChanged) == 0 {
		// The batch nets out to the identity; the current engine IS the
		// engine of the "new" version.
		return e, nil
	}

	if !e.q.Guarded {
		// Hand-built queries evaluate inside materialized bag subgraphs
		// (bagSubs); patching those buys little over rebuilding. They are
		// also outside the compiler's certification, so take the simple
		// correct path.
		return e.rebuilt(ctx, gNew, start)
	}

	// Clause guards (the ξ^i_τ sentences of Theorem 5.4) are evaluated
	// per version; if the edit flips any guard the clause set changes
	// structurally and a patched engine has no frame to patch into.
	if e.q.Guards != nil {
		var live []int
		for ci := range e.q.Clauses {
			if gd := e.q.Guards[ci]; gd != nil {
				holds := fo.NewEvaluator(gNew).Eval(gd.Sentence, fo.Env{})
				if holds == gd.Negated {
					continue
				}
			}
			live = append(live, ci)
		}
		if !equalInts(live, e.liveIdx) {
			return e.rebuilt(ctx, gNew, start)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Distance index. distR is a function of the query alone, recomputed
	// exactly as Preprocess derives it.
	distR := e.r
	for ci := range e.q.Clauses {
		for li := range e.q.Clauses[ci].Locals {
			if d := fo.MaxDistConstant(e.q.Clauses[ci].Locals[li].Psi); d > distR {
				distR = d
			}
		}
	}
	dixNew, ok := dist.Patch(e.dix, gOld, gNew, edgeSrcs)
	if !ok {
		dixNew = dist.New(gNew, distR, dist.Options{Workers: e.stats.Workers})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Cover with exact kernels. A refusal (edit avalanche) means the edit
	// is not local at cover scale; rebuilding everything is then honest.
	covNew, info, ok := e.cov.Patch(gOld, gNew, edgeSrcs)
	if !ok {
		return e.rebuilt(ctx, gNew, start)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	e2 := &Engine{
		g: gNew, q: e.q, k: e.k, r: e.r, rho: e.rho,
		dix: dixNew, cov: covNew, obsReg: e.obsReg,
	}
	e2.gbfs = newScratchPool(gNew)
	e2.evPool.New = func() any {
		ev := fo.NewEvaluator(gNew)
		ev.UseDistTester(e2.dix)
		return ev
	}
	e2.envPool.New = func() any { return fo.Env{} }
	e2.liveIdx = append([]int(nil), e.liveIdx...)
	e2.stats = Stats{
		CoverRadius: e.stats.CoverRadius,
		CoverBags:   covNew.NumBags(),
		CoverDegree: covNew.Degree(),
		Workers:     e.stats.Workers,
		Mutations:   e.stats.Mutations + 1,
		MutRebuilds: e.stats.MutRebuilds,
	}

	// Starter-affected region: D = Rk + ρ + distR around every effectively
	// edited vertex, in the old and the new graph (R(k−1) + ρ + distR is
	// the exact reach; the extra R is safety margin at negligible cost).
	touched := append(append([]graph.V(nil), edgeSrcs...), colorChanged...)
	sort.Ints(touched)
	D := e.r*e.k + e.rho + distR
	n := gNew.N()
	inAffected := make([]bool, n)
	var affected []graph.V
	for _, g := range []*graph.Graph{gOld, gNew} {
		bfs := graph.NewBFS(g)
		for _, w := range bfs.BallMulti(touched, D) {
			if !inAffected[w] {
				inAffected[w] = true
				affected = append(affected, int(w))
			}
		}
	}
	sort.Ints(affected)
	e2.stats.MutAffected = len(affected)

	pool := par.NewPool(e.stats.Workers)
	for _, rt := range e.clauses {
		rt2 := &clauseRT{clause: rt.clause, compOf: rt.compOf, firstOf: rt.firstOf}
		for _, c := range rt.comps {
			c2, err := e2.patchComp(ctx, c, covNew, info, affected, pool)
			if err != nil {
				return nil, err
			}
			rt2.comps = append(rt2.comps, c2)
			e2.stats.StarterSizes = append(e2.stats.StarterSizes, len(c2.starter))
			if c2.skip != nil {
				e2.stats.SkipPointers += c2.skip.Size()
			}
		}
		e2.clauses = append(e2.clauses, rt2)
	}
	e2.stats.MutWall = time.Since(start)
	e2.exportInstruments(e.obsReg)
	return e2, nil
}

// patchComp derives the runtime of one component for the mutated engine:
// re-test starters in the affected region, overlay (or rebuild) the skip
// pointers, and resplice the per-kernel starter lists.
func (e2 *Engine) patchComp(ctx context.Context, c *compRT, covNew *cover.Cover, info *cover.PatchInfo, affected []graph.V, pool *par.Pool) (*compRT, error) {
	c2 := &compRT{
		positions: c.positions,
		typ:       c.typ,
		psi:       c.psi,
		vars:      c.vars,
		last:      c.last,
	}
	// Copy-on-write starter bitmap; only the affected slots are re-tested.
	// starterReady stays false during the recompute so localEval cannot
	// short-circuit through the half-updated bitmap.
	c2.inStart = append([]bool(nil), c.inStart...)
	singleton := len(c2.positions) == 1
	pool.ForEach(len(affected), func(i int) {
		v := affected[i]
		if singleton {
			c2.inStart[v] = e2.localEval(c2, []graph.V{v})
		} else {
			c2.inStart[v] = e2.completesComponent(c2, []graph.V{v})
		}
	})
	var starterDiff []graph.V
	for _, v := range affected {
		if c.inStart[v] != c2.inStart[v] {
			starterDiff = append(starterDiff, v)
		}
	}
	c2.starter = make([]graph.V, 0, len(c.starter)+len(starterDiff))
	for v, in := range c2.inStart {
		if in {
			c2.starter = append(c2.starter, v)
		}
	}
	c2.starterReady = singleton
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Skip pointers: overlay while the accumulated delta stays small,
	// rebuild past the threshold (the overlay's scan cost is O(|delta|)).
	if e2.k >= 2 {
		delta := mergeSortedV(starterDiff, info.KernelDelta)
		if c.skip != nil && c.skip.DeltaLen()+len(delta) <= skip.RebuildThreshold(e2.g.N()) {
			c2.skip = c.skip.WithDelta(covNew, c2.starter, delta)
		} else {
			c2.skip = skip.New(e2.g, covNew, e2.k-1, c2.starter)
		}
	}

	// byKernel rows change only for bags whose kernel changed, bags the
	// patch created, and bags whose kernel contains a starter-diff vertex.
	nb := covNew.NumBags()
	c2.byKernel = make([][]graph.V, nb)
	copy(c2.byKernel, c.byKernel)
	redo := make(map[int]bool, len(info.KernelChanged)+len(info.NewBags))
	for _, b := range info.KernelChanged {
		redo[b] = true
	}
	for _, b := range info.NewBags {
		redo[b] = true
	}
	for _, v := range starterDiff {
		for _, b := range covNew.KernelsOf(v) {
			redo[int(b)] = true
		}
	}
	redoList := make([]int, 0, len(redo))
	for b := range redo { //fod:sorted — sorted immediately below
		redoList = append(redoList, b)
	}
	sort.Ints(redoList)
	for _, b := range redoList {
		var row []graph.V
		for _, v := range covNew.Kernel(b) {
			if c2.inStart[v] {
				row = append(row, v)
			}
		}
		c2.byKernel[b] = row
	}
	return c2, nil
}

// rebuilt is the full-Preprocess fallback, carrying the mutation counters
// forward so Stats still reports the engine's history.
func (e *Engine) rebuilt(ctx context.Context, gNew *graph.Graph, start time.Time) (*Engine, error) {
	e2, err := Preprocess(gNew, e.q, Options{
		Parallelism: e.stats.Workers,
		Ctx:         ctx,
		Obs:         e.obsReg,
	})
	if err != nil {
		return nil, err
	}
	e2.stats.Mutations = e.stats.Mutations + 1
	e2.stats.MutRebuilds = e.stats.MutRebuilds + 1
	e2.stats.MutWall = time.Since(start)
	return e2, nil
}

// effectiveTouch compares old and new graphs at the edited positions and
// returns the endpoints of edges that actually changed and the vertices
// whose color set actually changed, each sorted and deduplicated.
func effectiveTouch(gOld, gNew *graph.Graph, edits []graph.Edit) (edgeSrcs, colorChanged []graph.V) {
	es := map[graph.V]bool{}
	cs := map[graph.V]bool{}
	for _, ed := range edits {
		switch ed.Op {
		case graph.AddEdge, graph.RemoveEdge:
			if gOld.HasEdge(ed.U, ed.V) != gNew.HasEdge(ed.U, ed.V) {
				es[ed.U] = true
				es[ed.V] = true
			}
		case graph.AddColor, graph.RemoveColor:
			if gOld.HasColor(ed.U, ed.Color) != gNew.HasColor(ed.U, ed.Color) {
				cs[ed.U] = true
			}
		}
	}
	for v := range es { //fod:sorted — sorted immediately below
		edgeSrcs = append(edgeSrcs, v)
	}
	for v := range cs { //fod:sorted — sorted immediately below
		if !es[v] {
			colorChanged = append(colorChanged, v)
		}
	}
	sort.Ints(edgeSrcs)
	sort.Ints(colorChanged)
	return edgeSrcs, colorChanged
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeSortedV unions two sorted vertex lists.
func mergeSortedV(a, b []graph.V) []graph.V {
	out := make([]graph.V, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
