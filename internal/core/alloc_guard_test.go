package core

import (
	"os"
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The allocation guards are the dynamic twin of the fodlint hotpath
// analyzer: the analyzer forbids the allocation-prone constructs it can
// see statically, and these tests pin the end-to-end answering loop at
// 0 allocs/op on the fodbench E15 configuration (Example 2 of the paper
// on the grid class). They run in verify.sh tier 3 under LINT_GUARD=1
// with -count=1, so a regression cannot hide behind the test cache.

func guardGate(t *testing.T) {
	t.Helper()
	if os.Getenv("LINT_GUARD") == "" {
		t.Skip("set LINT_GUARD=1 to run the allocation guards")
	}
}

// buildE15Engine reproduces the fodbench E15 setup: the Example-2 query
// dist(x,y) > 2 ∧ C0(y) compiled for (x, y) over a colored grid.
func buildE15Engine(t *testing.T) *Engine {
	t.Helper()
	phi := fo.MustParse("dist(x,y) > 2 & C0(y)")
	lq, err := Compile(phi, []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.Grid, 2000, gen.Options{Seed: 7, Colors: 1, ColorProb: 0.05})
	e, err := Preprocess(g, lq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIteratorNextZeroAllocs pins the constant-delay enumeration step
// (Corollary 2.5) at zero allocations per answer in steady state.
func TestIteratorNextZeroAllocs(t *testing.T) {
	guardGate(t)
	e := buildE15Engine(t)
	it := e.Iterator()
	if !it.HasNext() {
		t.Fatal("E15 engine produced no solutions")
	}
	zero := make([]graph.V, e.k)
	allocs := testing.AllocsPerRun(2000, func() {
		if _, ok := it.Next(); !ok {
			it.Seek(zero)
		}
	})
	if allocs != 0 {
		t.Errorf("Iterator.Next = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}
}

// TestEngineTestZeroAllocs pins the constant-time membership test
// (Corollary 2.4) at zero allocations per call, probing solutions and
// non-solutions alike.
func TestEngineTestZeroAllocs(t *testing.T) {
	guardGate(t)
	e := buildE15Engine(t)
	var probes [][]graph.V
	e.Enumerate(func(a []graph.V) bool {
		probes = append(probes, append([]graph.V(nil), a...))
		return len(probes) < 64
	})
	if len(probes) == 0 {
		t.Fatal("E15 engine produced no solutions")
	}
	// Interleave guaranteed non-solutions (diagonal tuples are never far
	// from themselves).
	for i := 0; i < 64; i++ {
		v := (i * 31) % e.g.N()
		probes = append(probes, []graph.V{v, v})
	}
	a := make([]graph.V, e.k)
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		p := probes[i%len(probes)]
		copy(a, p)
		e.Test(a)
		i++
	})
	if allocs != 0 {
		t.Errorf("Engine.Test = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}
}

// TestNextLastZeroAllocs pins the Lemma 5.2 partner primitive at zero
// allocations per call on prefixes with and without partners.
func TestNextLastZeroAllocs(t *testing.T) {
	guardGate(t)
	e := buildE15Engine(t)
	prefix := make([]graph.V, e.k-1)
	v := 0
	allocs := testing.AllocsPerRun(2000, func() {
		prefix[0] = v % e.g.N()
		e.NextLast(prefix, 0)
		v += 17
	})
	if allocs != 0 {
		t.Errorf("Engine.NextLast = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}
}
