package core

import (
	"sort"

	"repro/internal/fo"
)

// distBounds maps ordered variable pairs to an upper bound on their
// distance in any satisfying assignment. It is the syntactic locality
// analysis the compiler uses to decide quantified subformulas that span
// distance-type components: if a unit implies dist(x_i, x_j) ≤ b and the
// type forces dist > R ≥ b, the unit is unsatisfiable under that type.
type distBounds map[[2]fo.Var]int

func pairKey(x, y fo.Var) [2]fo.Var {
	if x > y {
		x, y = y, x
	}
	return [2]fo.Var{x, y}
}

func (b distBounds) upd(x, y fo.Var, d int) {
	if x == y {
		return
	}
	k := pairKey(x, y)
	if old, ok := b[k]; !ok || d < old {
		b[k] = d
	}
}

// impliedBounds computes distance bounds between the free variables of f
// that hold in every model. The analysis is conservative: absence of a
// bound never causes wrong answers, only compile failures.
func impliedBounds(f fo.Formula) distBounds {
	switch f := f.(type) {
	case fo.Edge:
		b := distBounds{}
		b.upd(f.X, f.Y, 1)
		return b
	case fo.Eq:
		b := distBounds{}
		b.upd(f.X, f.Y, 0)
		return b
	case fo.DistLeq:
		b := distBounds{}
		b.upd(f.X, f.Y, f.D)
		return b
	case fo.And:
		b := distBounds{}
		for _, g := range f.Fs {
			//fod:sorted — upd is a commutative min-fold; the result is order-free
			for k, d := range impliedBounds(g) {
				b.upd(k[0], k[1], d)
			}
		}
		return closure(b)
	case fo.Or:
		if len(f.Fs) == 0 {
			return distBounds{}
		}
		// A bound survives a disjunction only if every branch implies it.
		acc := impliedBounds(f.Fs[0])
		for _, g := range f.Fs[1:] {
			bg := impliedBounds(g)
			next := distBounds{}
			//fod:sorted — per-key intersection with max; each entry is independent
			for k, d := range acc {
				if dg, ok := bg[k]; ok {
					if dg > d {
						d = dg
					}
					next[k] = d
				}
			}
			acc = next
		}
		return acc
	case fo.Exists:
		return eliminate(impliedBounds(f.F), f.V)
	}
	// Not, Forall, Truth, HasColor: no positive distance information.
	return distBounds{}
}

// closure completes bounds under the triangle inequality
// (Floyd–Warshall over the variables; mid plays the role of k).
func closure(b distBounds) distBounds {
	vars := map[fo.Var]bool{}
	//fod:sorted — set collection; the keys are sorted below before use
	for k := range b {
		vars[k[0]] = true
		vars[k[1]] = true
	}
	vs := make([]fo.Var, 0, len(vars))
	//fod:sorted — collected into vs, which is sorted on the next line
	for v := range vars {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, mid := range vs {
		for _, x := range vs {
			for _, y := range vs {
				if x == y || x == mid || y == mid {
					continue
				}
				dx, okx := b[pairKey(x, mid)]
				dy, oky := b[pairKey(mid, y)]
				if okx && oky {
					b.upd(x, y, dx+dy)
				}
			}
		}
	}
	return b
}

// eliminate removes variable v, keeping bounds it mediated.
func eliminate(b distBounds, v fo.Var) distBounds {
	b = closure(b)
	out := distBounds{}
	//fod:sorted — per-key filter copy; each entry is independent
	for k, d := range b {
		if k[0] != v && k[1] != v {
			out[k] = d
		}
	}
	return out
}

// unbounded is the sentinel for "no finite witness distance derivable".
const unbounded = 1 << 29

// reach computes an upper bound on the locality radius ρ needed to
// evaluate f correctly inside G[N_ρ(ā)]: every quantified witness and
// every path certifying a distance atom must lie within ρ of the free
// anchors. ecc maps each currently-free variable to an upper bound on its
// distance from the anchors (position variables start at 0). It returns
// `unbounded` when a quantifier has no derivable anchor — the caller then
// falls back to a coarse default.
func reach(f fo.Formula, ecc map[fo.Var]int) int {
	switch f := f.(type) {
	case fo.Truth:
		return 0
	case fo.HasColor:
		return eccOf(ecc, f.X)
	case fo.Eq:
		return maxInt(eccOf(ecc, f.X), eccOf(ecc, f.Y))
	case fo.Edge:
		return maxInt(eccOf(ecc, f.X), eccOf(ecc, f.Y))
	case fo.DistLeq:
		// The certifying path of length ≤ D starts at the closer endpoint.
		base := eccOf(ecc, f.X)
		if e := eccOf(ecc, f.Y); e < base {
			base = e
		}
		return minCap(base + f.D)
	case fo.Not:
		return reach(f.F, ecc)
	case fo.And:
		r := 0
		for _, g := range f.Fs {
			r = maxInt(r, reach(g, ecc))
		}
		return r
	case fo.Or:
		r := 0
		for _, g := range f.Fs {
			r = maxInt(r, reach(g, ecc))
		}
		return r
	case fo.Exists:
		if len(fo.FreeVars(f)) == 0 {
			return 0 // a sentence: extracted as a clause guard, evaluated globally
		}
		return reachQuantified(f.V, f.F, f.F, ecc)
	case fo.Forall:
		if len(fo.FreeVars(f)) == 0 {
			return 0
		}
		// ∀z φ ≡ ¬∃z ¬φ: witnesses are the z falsifying φ; anchor them
		// through the implied bounds of ¬φ in negation normal form.
		return reachQuantified(f.V, f.F, nnfNeg(f.F), ecc)
	}
	return unbounded
}

func reachQuantified(v fo.Var, body, witnessBody fo.Formula, ecc map[fo.Var]int) int {
	bounds := impliedBounds(witnessBody)
	ev := unbounded
	//fod:sorted — commutative min-fold over anchor eccentricities
	for other, e := range ecc {
		if d, ok := bounds[pairKey(v, other)]; ok && e+d < ev {
			ev = e + d
		}
	}
	if ev >= unbounded {
		// Unanchored quantifier over a variable that does not occur freely
		// below is harmless; otherwise the reach is unknown.
		if !occursFree(body, v) {
			ev = 0
		} else {
			return unbounded
		}
	}
	old, had := ecc[v]
	ecc[v] = ev
	r := reach(body, ecc)
	if had {
		ecc[v] = old
	} else {
		delete(ecc, v)
	}
	return maxInt(r, ev)
}

// nnfNeg returns a negation-normal-ish form of ¬f, good enough for the
// impliedBounds analysis (which ignores negative literals anyway).
func nnfNeg(f fo.Formula) fo.Formula {
	switch f := f.(type) {
	case fo.Truth:
		return fo.Truth{Value: !f.Value}
	case fo.Not:
		return f.F
	case fo.And:
		out := make([]fo.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = nnfNeg(g)
		}
		return fo.Or{Fs: out}
	case fo.Or:
		out := make([]fo.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = nnfNeg(g)
		}
		return fo.And{Fs: out}
	case fo.Exists:
		return fo.Forall{V: f.V, F: nnfNeg(f.F)}
	case fo.Forall:
		return fo.Exists{V: f.V, F: nnfNeg(f.F)}
	}
	return fo.Not{F: f}
}

func occursFree(f fo.Formula, v fo.Var) bool {
	for _, fv := range fo.FreeVars(f) {
		if fv == v {
			return true
		}
	}
	return false
}

func eccOf(ecc map[fo.Var]int, v fo.Var) int {
	if e, ok := ecc[v]; ok {
		return e
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minCap(x int) int {
	if x > unbounded {
		return unbounded
	}
	return x
}

// WitnessReach computes the locality radius needed for φ with the given
// anchor variables, or ok=false when no finite bound is derivable.
func WitnessReach(phi fo.Formula, anchors []fo.Var) (int, bool) {
	ecc := map[fo.Var]int{}
	for _, v := range anchors {
		ecc[v] = 0
	}
	r := reach(phi, ecc)
	if r >= unbounded {
		return 0, false
	}
	return r, true
}

// maxQuantifiedUnitBound returns the largest finite pairwise bound implied
// by any quantified subformula of f, used to pick a default distance-type
// threshold R big enough to decide cross-component units.
func maxQuantifiedUnitBound(f fo.Formula) int {
	best := 0
	var walk func(g fo.Formula)
	walk = func(g fo.Formula) {
		switch g := g.(type) {
		case fo.Not:
			walk(g.F)
		case fo.And:
			for _, h := range g.Fs {
				walk(h)
			}
		case fo.Or:
			for _, h := range g.Fs {
				walk(h)
			}
		case fo.Exists:
			//fod:sorted — commutative max-fold
			for _, d := range impliedBounds(g) {
				if d > best {
					best = d
				}
			}
			walk(g.F)
		case fo.Forall:
			walk(g.F)
		}
	}
	walk(f)
	return best
}
