// Stress test: one shared Engine hammered by concurrent goroutines mixing
// Test probes, NextGeq walks, NextLast paging, and FastCount — the
// concurrency contract the Engine doc promises. Run with -race; the
// expected answers are precomputed single-threaded so any divergence under
// contention is a real bug, not a flaky oracle.
package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestConcurrentEngineQueries(t *testing.T) {
	n := 400
	goroutines := 8
	if testing.Short() {
		n, goroutines = 150, 4
	}
	g := gen.Generate(gen.Grid, n, gen.Options{Seed: 11, Colors: 2})
	lq, err := core.Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"),
		[]fo.Var{"x", "y"}, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Preprocess(g, lq, core.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Precompute expected answers single-threaded on a second engine, so
	// the oracle never shares state with the engine under stress.
	ref, err := core.Preprocess(g, lq, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		a, b graph.V
		want bool
	}
	var probes []probe
	for a := 0; a < g.N(); a += 3 {
		for b := 0; b < g.N(); b += 17 {
			probes = append(probes, probe{a, b, ref.Test([]graph.V{a, b})})
		}
	}
	type page struct {
		prefix graph.V
		from   graph.V
		want   graph.V
		ok     bool
	}
	var pages []page
	for a := 0; a < g.N(); a += 5 {
		from := graph.V((a * 7) % g.N())
		v, ok := ref.NextLast([]graph.V{a}, from)
		pages = append(pages, page{a, from, v, ok})
	}
	type walkStep struct {
		start []graph.V
		want  []graph.V
		ok    bool
	}
	var walks []walkStep
	for a := 0; a < g.N(); a += 25 {
		start := []graph.V{a, (a * 3) % g.N()}
		sol, ok := ref.NextGeq(start)
		var cp []graph.V
		if ok {
			cp = append([]graph.V(nil), sol...)
		}
		walks = append(walks, walkStep{start, cp, ok})
	}
	wantCount, fastOK := ref.FastCount()
	if !fastOK {
		t.Fatal("FastCount unsupported for arity 2")
	}

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := w; i < len(probes); i += 2 {
					p := probes[i]
					if got := e.Test([]graph.V{p.a, p.b}); got != p.want {
						t.Errorf("Test(%d,%d) = %v, want %v", p.a, p.b, got, p.want)
						return
					}
				}
				for i := w; i < len(pages); i += 2 {
					pg := pages[i]
					v, ok := e.NextLast([]graph.V{pg.prefix}, pg.from)
					if ok != pg.ok || (ok && v != pg.want) {
						t.Errorf("NextLast(%d, %d) = (%d, %v), want (%d, %v)",
							pg.prefix, pg.from, v, ok, pg.want, pg.ok)
						return
					}
				}
				for i := w; i < len(walks); i += 2 {
					ws := walks[i]
					sol, ok := e.NextGeq(ws.start)
					if ok != ws.ok {
						t.Errorf("NextGeq(%v) ok = %v, want %v", ws.start, ok, ws.ok)
						return
					}
					if ok {
						for j := range sol {
							if sol[j] != ws.want[j] {
								t.Errorf("NextGeq(%v) = %v, want %v", ws.start, sol, ws.want)
								return
							}
						}
					}
				}
				if w%2 == 0 {
					if got, ok := e.FastCount(); !ok || got != wantCount {
						t.Errorf("FastCount = (%d, %v), want (%d, true)", got, ok, wantCount)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The stressed engine's counters must have moved and must snapshot
	// without tearing (the read itself is the assertion under -race).
	st := e.Stats()
	if st.Candidates == 0 {
		t.Fatal("stress run examined no candidates")
	}
}

// TestConcurrentEnumerators runs several independent full enumerations on
// one shared engine simultaneously; each must see the complete solution
// set in order.
func TestConcurrentEnumerators(t *testing.T) {
	g := gen.Generate(gen.RandomTree, 200, gen.Options{Seed: 13, Colors: 2})
	lq, err := core.Compile(fo.MustParse("dist(x,y) > 2 & C0(x)"),
		[]fo.Var{"x", "y"}, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Preprocess(g, lq, core.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]graph.V
	e.Enumerate(func(s []graph.V) bool {
		want = append(want, append([]graph.V(nil), s...))
		return true
	})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			okAll := true
			e.Enumerate(func(s []graph.V) bool {
				if i >= len(want) || s[0] != want[i][0] || s[1] != want[i][1] {
					okAll = false
					return false
				}
				i++
				return true
			})
			if !okAll || i != len(want) {
				t.Errorf("concurrent enumeration diverged at tuple %d of %d", i, len(want))
			}
		}()
	}
	wg.Wait()
}
