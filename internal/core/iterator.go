package core

import "repro/internal/graph"

// Iterator is the pull-style face of Corollary 2.5: a cursor over the
// solution set in lexicographic order with constant-delay Next calls.
//
// Internally it keeps one cursor per clause (τ, i) and advances them as a
// k-way merge: each Next pops the minimal per-clause candidate and only
// re-advances the clauses that produced it, so a query compiled into many
// disjuncts does not pay for all of them on every step (NextGeq, by
// contrast, is a one-shot primitive and probes every clause).
//
// The iterator owns every buffer it hands out, keeping steady-state Next
// calls allocation-free (the LINT_GUARD AllocsPerRun suite pins Next at
// 0 allocs/op): the slice returned by Next is valid only until the
// following Next or Seek call — copy it to retain it, exactly as with
// Enumerate.
//
// An Iterator borrows the Engine and must not be used concurrently with
// other Engine calls.
type Iterator struct {
	e     *Engine
	nexts [][]graph.V // per clause: candidate ≥ cursor (aliases bufs), nil = drained
	bufs  [][]graph.V // per-clause candidate buffers
	cur   []graph.V   // the next solution to hand out
	prev  []graph.V   // the previously handed-out solution (swap partner of cur)
	succ  []graph.V   // successor scratch
	has   bool
}

// Iterator returns a cursor positioned at the first solution.
func (e *Engine) Iterator() *Iterator {
	it := &Iterator{e: e}
	it.Seek(make([]graph.V, e.k))
	return it
}

// IteratorFrom returns a cursor positioned at the smallest solution ≥ a.
func (e *Engine) IteratorFrom(a []graph.V) *Iterator {
	it := &Iterator{e: e}
	it.Seek(a)
	return it
}

// Seek repositions the cursor at the smallest solution ≥ a (Theorem 2.3:
// constant time per clause). Buffers are created on first use and reused
// by every later Seek and Next.
//
//fod:ctxok the loop is over the compiled query's clauses — work bounded
// by query size, not by the graph or the solution set, so there is
// nothing to cancel mid-way.
func (it *Iterator) Seek(a []graph.V) {
	if it.bufs == nil {
		n := len(it.e.clauses)
		it.nexts = make([][]graph.V, n)
		it.bufs = make([][]graph.V, n)
		for i := range it.bufs {
			it.bufs[i] = make([]graph.V, it.e.k)
		}
		it.cur = make([]graph.V, it.e.k)
		it.prev = make([]graph.V, it.e.k)
		it.succ = make([]graph.V, it.e.k)
	}
	it.has = false
	if it.e.g.N() == 0 {
		for i := range it.nexts {
			it.nexts[i] = nil
		}
		return
	}
	for i, rt := range it.e.clauses {
		if it.e.nextClauseInto(rt, a, it.bufs[i]) {
			it.nexts[i] = it.bufs[i]
		} else {
			it.nexts[i] = nil
		}
	}
	it.settle()
}

// settle copies the overall minimum of the per-clause candidates into
// it.cur.
//
//fod:hotpath
func (it *Iterator) settle() {
	var best []graph.V
	for _, cand := range it.nexts {
		if cand != nil && (best == nil || lexLess(cand, best)) {
			best = cand
		}
	}
	if best == nil {
		it.has = false
		return
	}
	copy(it.cur, best)
	it.has = true
}

// HasNext reports whether another solution is available.
func (it *Iterator) HasNext() bool { return it.has }

// Next returns the current solution and advances the cursor. The returned
// slice is valid until the next call to Next or Seek; copy it to retain
// it. ok=false signals exhaustion.
//
//fod:hotpath
func (it *Iterator) Next() ([]graph.V, bool) {
	if !it.has {
		return nil, false
	}
	// Hand out cur and flip the buffer pair, so settle below writes the
	// upcoming solution without clobbering the slice being returned.
	out := it.cur
	it.cur, it.prev = it.prev, it.cur
	if !incrementTupleInto(it.succ, out, it.e.g.N()) {
		it.has = false
		return out, true
	}
	// Advance exactly the clauses whose candidate was consumed (several
	// clauses may share a solution tuple).
	for i, cand := range it.nexts {
		if cand != nil && !lexLess(out, cand) { // cand ≤ out, i.e. cand == out
			if it.e.nextClauseInto(it.e.clauses[i], it.succ, it.bufs[i]) {
				it.nexts[i] = it.bufs[i]
			} else {
				it.nexts[i] = nil
			}
		}
	}
	it.settle()
	return out, true
}
