package core

import "repro/internal/graph"

// Iterator is the pull-style face of Corollary 2.5: a cursor over the
// solution set in lexicographic order with constant-delay Next calls.
//
// Internally it keeps one cursor per clause (τ, i) and advances them as a
// k-way merge: each Next pops the minimal per-clause candidate and only
// re-advances the clauses that produced it, so a query compiled into many
// disjuncts does not pay for all of them on every step (NextGeq, by
// contrast, is a one-shot primitive and probes every clause).
//
// An Iterator borrows the Engine and must not be used concurrently with
// other Engine calls.
type Iterator struct {
	e       *Engine
	nexts   [][]graph.V // per clause: next candidate ≥ cursor, nil = drained
	current []graph.V   // overall next solution, nil when exhausted
}

// Iterator returns a cursor positioned at the first solution.
func (e *Engine) Iterator() *Iterator {
	it := &Iterator{e: e}
	it.Seek(make([]graph.V, e.k))
	return it
}

// IteratorFrom returns a cursor positioned at the smallest solution ≥ a.
func (e *Engine) IteratorFrom(a []graph.V) *Iterator {
	it := &Iterator{e: e}
	it.Seek(a)
	return it
}

// Seek repositions the cursor at the smallest solution ≥ a (Theorem 2.3:
// constant time per clause).
func (it *Iterator) Seek(a []graph.V) {
	it.nexts = make([][]graph.V, len(it.e.clauses))
	it.current = nil
	if it.e.g.N() == 0 {
		return
	}
	for i, rt := range it.e.clauses {
		it.nexts[i] = it.e.nextClause(rt, a)
	}
	it.settle()
}

// settle recomputes the overall minimum of the per-clause candidates.
func (it *Iterator) settle() {
	it.current = nil
	for _, cand := range it.nexts {
		if cand != nil && (it.current == nil || lexLess(cand, it.current)) {
			it.current = cand
		}
	}
}

// HasNext reports whether another solution is available.
func (it *Iterator) HasNext() bool { return it.current != nil }

// Next returns the current solution and advances the cursor. The returned
// slice is owned by the caller. ok=false signals exhaustion.
func (it *Iterator) Next() ([]graph.V, bool) {
	if it.current == nil {
		return nil, false
	}
	out := it.current
	succ, ok := incrementTuple(out, it.e.g.N())
	if !ok {
		it.current = nil
		return out, true
	}
	// Advance exactly the clauses whose candidate was consumed (several
	// clauses may share a solution tuple).
	for i, cand := range it.nexts {
		if cand != nil && !lexLess(out, cand) { // cand ≤ out, i.e. cand == out
			it.nexts[i] = it.e.nextClause(it.e.clauses[i], succ)
		}
	}
	it.settle()
	return out, true
}
