package core

import (
	"strings"
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
)

func TestLocalQueryString(t *testing.T) {
	q, err := Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"), []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"k=2", "R=2", "guarded", "clause 0", "C0(x1)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan missing %q:\n%s", want, s)
		}
	}
}

func TestEngineExplain(t *testing.T) {
	q, err := Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"), []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.Grid, 100, gen.Options{Seed: 1, Colors: 1, ColorProb: 0.3})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Explain()
	for _, want := range []string{"cover:", "distance index:", "live clauses", "|starter|="} {
		if !strings.Contains(s, want) {
			t.Fatalf("explain missing %q:\n%s", want, s)
		}
	}
}
