package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
)

func TestFastCountMatchesEnumerationUnary(t *testing.T) {
	phi := fo.MustParse("C0(x) & exists z (E(x,z) & C1(z))")
	q, err := Compile(phi, []fo.Var{"x"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []gen.Class{gen.Path, gen.Grid, gen.RandomTree} {
		g := gen.Generate(class, 300, gen.Options{Seed: 3, Colors: 2, ColorProb: 0.4})
		e, err := Preprocess(g, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fast, ok := e.FastCount()
		if !ok {
			t.Fatal("unary FastCount unsupported")
		}
		if slow := e.Count(); fast != slow {
			t.Fatalf("%s: FastCount %d != Count %d", class, fast, slow)
		}
	}
}

func TestFastCountMatchesEnumerationBinary(t *testing.T) {
	queries := []string{
		"dist(x,y) > 2 & C0(y)",
		"dist(x,y) <= 2 & C0(x) & C1(y)",
		"dist(x,y) > 2 & C0(x) | dist(x,y) > 2 & C1(y)", // two far clauses → inclusion–exclusion
		"E(x,y)",
		"dist(x,y) <= 1 | dist(x,y) > 2 & C0(x)", // mixed types
	}
	for _, src := range queries {
		phi := fo.MustParse(src)
		q, err := Compile(phi, []fo.Var{"x", "y"}, CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, class := range []gen.Class{gen.Grid, gen.Caterpillar, gen.BoundedDegree} {
			g := gen.Generate(class, 150, gen.Options{Seed: 5, Colors: 2, ColorProb: 0.3})
			e, err := Preprocess(g, q, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", src, class, err)
			}
			fast, ok := e.FastCount()
			if !ok {
				t.Fatal("binary FastCount unsupported")
			}
			if slow := e.Count(); fast != slow {
				t.Fatalf("%s on %s: FastCount %d != Count %d", src, class, fast, slow)
			}
		}
	}
}

// TestFastCountConnectedTernary: arity-3 queries whose compiled clause
// types are all connected take the fastCountConnected path; pin it to the
// enumeration count.
func TestFastCountConnectedTernary(t *testing.T) {
	queries := []string{
		"dist(x,y) <= 1 & dist(y,z) <= 1 & C0(x)",
		"E(x,y) & E(y,z) & C1(z)",
	}
	for _, src := range queries {
		phi := fo.MustParse(src)
		q, err := Compile(phi, []fo.Var{"x", "y", "z"}, CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, class := range []gen.Class{gen.Grid, gen.BoundedDegree, gen.Caterpillar} {
			g := gen.Generate(class, 90, gen.Options{Seed: 9, Colors: 2, ColorProb: 0.3})
			e, err := Preprocess(g, q, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", src, class, err)
			}
			fast, ok := e.FastCount()
			if !ok {
				t.Fatalf("%s on %s: connected ternary FastCount unsupported", src, class)
			}
			if slow := e.Count(); fast != slow {
				t.Fatalf("%s on %s: FastCount %d != Count %d", src, class, fast, slow)
			}
		}
	}
}

// TestCountCtx pins the cancellable count: equal to Count under a live
// context, and a typed error (not a partial count) once the context is
// canceled. The far query has ~n² answers, far past the poll interval.
func TestCountCtx(t *testing.T) {
	phi := fo.MustParse("dist(x,y) > 2 & C0(y)")
	q, err := Compile(phi, []fo.Var{"x", "y"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.Grid, 300, gen.Options{Seed: 7, Colors: 1})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.CountCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := e.Count(); n != want {
		t.Fatalf("CountCtx %d != Count %d", n, want)
	}
	if n <= countCheckEvery {
		t.Fatalf("fixture too small to exercise the poll: %d answers", n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n, err := e.CountCtx(ctx); !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("canceled CountCtx = (%d, %v), want (0, context.Canceled)", n, err)
	}
}

func TestFastCountUnsupportedArity(t *testing.T) {
	phi := fo.MustParse("dist(x,z) > 2 & dist(y,z) > 2 & C0(z)")
	q, err := Compile(phi, []fo.Var{"x", "y", "z"}, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.Path, 30, gen.Options{Seed: 1, Colors: 1})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.FastCount(); ok {
		t.Fatal("arity 3 should be unsupported")
	}
}
