package core

import (
	"math/rand"
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// buildQ2 is the paper's Example 2: q(x,y) := dist(x,y) > 2 ∧ B(y), with
// color 0 playing the role of "blue". Built by hand in normal form.
func buildQ2(t *testing.T) *LocalQuery {
	t.Helper()
	far := fo.NewDistType(2)
	cl, err := MakeClause(far, fo.HasColor{C: 0, X: PosVar(1)})
	if err != nil {
		t.Fatal(err)
	}
	return &LocalQuery{K: 2, R: 2, LocalRadius: 2, Clauses: []Clause{cl}}
}

// buildClose is q(x,y) := dist(x,y) ≤ 2 (Example 1-A) in normal form: the
// close type with a trivial component formula.
func buildClose(t *testing.T) *LocalQuery {
	t.Helper()
	close2 := fo.NewDistType(2)
	close2.SetClose(0, 1)
	cl, err := MakeClause(close2)
	if err != nil {
		t.Fatal(err)
	}
	return &LocalQuery{K: 2, R: 2, LocalRadius: 2, Clauses: []Clause{cl}}
}

func smallClasses() []gen.Class {
	return []gen.Class{gen.Path, gen.Cycle, gen.Star, gen.Caterpillar,
		gen.BalancedTree, gen.RandomTree, gen.Grid, gen.KingGrid, gen.BoundedDegree}
}

func materializeEngine(e *Engine) [][]graph.V {
	var out [][]graph.V
	e.Enumerate(func(a []graph.V) bool {
		out = append(out, append([]graph.V(nil), a...))
		return true
	})
	return out
}

func materializeReference(g *graph.Graph, q *LocalQuery) [][]graph.V {
	var out [][]graph.V
	tuple := make([]graph.V, q.K)
	var rec func(i int)
	rec = func(i int) {
		if i == q.K {
			if EvalReference(g, q, tuple) {
				out = append(out, append([]graph.V(nil), tuple...))
			}
			return
		}
		for v := 0; v < g.N(); v++ {
			tuple[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func tuplesEqual(a, b [][]graph.V) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return i, false
			}
		}
	}
	return 0, true
}

func TestEngineExample2AcrossClasses(t *testing.T) {
	q := buildQ2(t)
	for _, class := range smallClasses() {
		g := gen.Generate(class, 120, gen.Options{Seed: 4, Colors: 1, ColorProb: 0.3})
		e, err := Preprocess(g, q, Options{})
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		got := materializeEngine(e)
		want := materializeReference(g, q)
		if i, ok := tuplesEqual(got, want); !ok {
			t.Fatalf("%s: result mismatch at %d: got %d tuples, want %d (first diff near %v vs %v)",
				class, i, len(got), len(want), safeIndex(got, i), safeIndex(want, i))
		}
	}
}

func TestEngineCloseQueryAcrossClasses(t *testing.T) {
	q := buildClose(t)
	for _, class := range smallClasses() {
		g := gen.Generate(class, 100, gen.Options{Seed: 6})
		e, err := Preprocess(g, q, Options{})
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		got := materializeEngine(e)
		want := materializeReference(g, q)
		if _, ok := tuplesEqual(got, want); !ok {
			t.Fatalf("%s: got %d tuples, want %d", class, len(got), len(want))
		}
	}
}

func TestEngineNextGeqMatchesMaterialized(t *testing.T) {
	q := buildQ2(t)
	g := gen.Generate(gen.Grid, 100, gen.Options{Seed: 9, Colors: 1, ColorProb: 0.25})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := materializeReference(g, q)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 500; trial++ {
		a := []graph.V{rng.Intn(g.N()), rng.Intn(g.N())}
		got, ok := e.NextGeq(a)
		// Reference: first materialized solution ≥ a.
		var ref []graph.V
		for _, s := range want {
			if !lexLess(s, a) {
				ref = s
				break
			}
		}
		if (ref == nil) != !ok {
			t.Fatalf("NextGeq(%v): ok=%v, reference %v", a, ok, ref)
		}
		if ok {
			if _, eq := tuplesEqual([][]graph.V{got}, [][]graph.V{ref}); !eq {
				t.Fatalf("NextGeq(%v) = %v, want %v", a, got, ref)
			}
		}
	}
}

func TestEngineTestMatchesReference(t *testing.T) {
	q := buildQ2(t)
	g := gen.Generate(gen.RandomTree, 150, gen.Options{Seed: 2, Colors: 1, ColorProb: 0.4})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1500; trial++ {
		a := []graph.V{rng.Intn(g.N()), rng.Intn(g.N())}
		if got, want := e.Test(a), EvalReference(g, q, a); got != want {
			t.Fatalf("Test(%v) = %v, want %v", a, got, want)
		}
	}
}

func TestEngineEnumerationOrderAndUniqueness(t *testing.T) {
	q := buildQ2(t)
	g := gen.Generate(gen.Caterpillar, 140, gen.Options{Seed: 8, Colors: 1, ColorProb: 0.3})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sols := materializeEngine(e)
	for i := 1; i < len(sols); i++ {
		if !lexLess(sols[i-1], sols[i]) {
			t.Fatalf("order violation at %d: %v !< %v", i, sols[i-1], sols[i])
		}
	}
}

func TestEngineEarlyStopEnumeration(t *testing.T) {
	q := buildClose(t)
	g := gen.Generate(gen.Path, 50, gen.Options{})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	e.Enumerate(func([]graph.V) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop yielded %d tuples, want 5", count)
	}
}

func TestEngineEmptyResult(t *testing.T) {
	// No vertex has color 0 (uncolored graph), so Example 2 is empty.
	q := buildQ2(t)
	g := gen.Generate(gen.Grid, 64, gen.Options{})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.NextGeq([]graph.V{0, 0}); ok {
		t.Fatal("expected no solutions")
	}
	if e.Count() != 0 {
		t.Fatal("expected Count 0")
	}
}

func TestEngineUnaryQuery(t *testing.T) {
	// k=1: all vertices with color 0 that have a color-1 neighbor.
	psi := fo.AndOf(
		fo.HasColor{C: 0, X: PosVar(0)},
		fo.Exists{V: "z", F: fo.AndOf(fo.Edge{X: PosVar(0), Y: "z"}, fo.HasColor{C: 1, X: "z"})},
	)
	typ := fo.NewDistType(1)
	cl, err := MakeClause(typ, psi)
	if err != nil {
		t.Fatal(err)
	}
	q := &LocalQuery{K: 1, R: 1, LocalRadius: 2, Clauses: []Clause{cl}}
	g := gen.Generate(gen.KingGrid, 150, gen.Options{Seed: 5, Colors: 2, ColorProb: 0.4})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := materializeEngine(e)
	want := materializeReference(g, q)
	if _, ok := tuplesEqual(got, want); !ok {
		t.Fatalf("got %d solutions, want %d", len(got), len(want))
	}
}

func TestEngineGuardDropsClause(t *testing.T) {
	// A guard that fails on the graph must suppress its clause entirely.
	typ := fo.NewDistType(1)
	cl, err := MakeClause(typ, fo.HasColor{C: 0, X: PosVar(0)})
	if err != nil {
		t.Fatal(err)
	}
	q := &LocalQuery{
		K: 1, R: 1, LocalRadius: 1,
		Clauses: []Clause{cl},
		Guards: []*Guard{{
			Sentence: fo.Exists{V: "z", F: fo.HasColor{C: 1, X: "z"}},
		}},
	}
	g := gen.Generate(gen.Path, 50, gen.Options{Colors: 2, ColorProb: 0})
	// Color a vertex with color 0 but none with color 1 → guard fails.
	b := graph.NewBuilder(50, 2)
	for v := 0; v+1 < 50; v++ {
		b.AddEdge(v, v+1)
	}
	b.SetColor(3, 0)
	g = b.Build()
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 {
		t.Fatal("guard should have suppressed the clause")
	}
}

func TestEngineValidateRejectsBadQueries(t *testing.T) {
	bad := []*LocalQuery{
		{K: 0, R: 1, LocalRadius: 1},
		{K: 1, R: 0, LocalRadius: 1},
		{K: 2, R: 1, LocalRadius: 1, Clauses: []Clause{{Type: fo.NewDistType(3)}}},
	}
	g := gen.Generate(gen.Path, 10, gen.Options{})
	for i, q := range bad {
		if _, err := Preprocess(g, q, Options{}); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func safeIndex(xs [][]graph.V, i int) []graph.V {
	if i >= 0 && i < len(xs) {
		return xs[i]
	}
	return nil
}
