package core

import (
	"fmt"
	"strings"
)

// String renders the decomposed normal form: one line per clause with its
// distance type and component formulas — the compiled "plan" of a query.
func (q *LocalQuery) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "LocalQuery(k=%d, R=%d, ρ=%d", q.K, q.R, q.LocalRadius)
	if q.Guarded {
		sb.WriteString(", guarded")
	}
	fmt.Fprintf(&sb, ", %d clauses)\n", len(q.Clauses))
	for ci, cl := range q.Clauses {
		fmt.Fprintf(&sb, "  clause %d: %s\n", ci, cl.Type)
		for _, lf := range cl.Locals {
			fmt.Fprintf(&sb, "    I=%v: %s\n", lf.Positions, lf.Psi)
		}
		if q.Guards != nil && q.Guards[ci] != nil {
			neg := ""
			if q.Guards[ci].Negated {
				neg = "¬"
			}
			fmt.Fprintf(&sb, "    guard: %s[%s]\n", neg, q.Guards[ci].Sentence)
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}

// Explain describes the preprocessed index: the surviving clauses, their
// starter-list sizes, skip-pointer counts, and the cover shape. It is the
// EXPLAIN output for a Theorem 2.3 index.
func (e *Engine) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "index over %s\n", e.g)
	fmt.Fprintf(&sb, "  cover: radius %d, %d bags, degree %d\n",
		e.stats.CoverRadius, e.stats.CoverBags, e.stats.CoverDegree)
	fmt.Fprintf(&sb, "  distance index: radius %d, %v\n", e.dix.Radius(), e.dix.Stats())
	fmt.Fprintf(&sb, "  %d live clauses (after guard evaluation):\n", len(e.clauses))
	for ci, rt := range e.clauses {
		fmt.Fprintf(&sb, "    clause %d: %s\n", ci, rt.clause.Type)
		for _, c := range rt.comps {
			skipSize := 0
			if c.skip != nil {
				skipSize = c.skip.Size()
			}
			fmt.Fprintf(&sb, "      I=%v: |starter|=%d, skip pointers=%d, ψ=%s\n",
				c.positions, len(c.starter), skipSize, c.psi)
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}
