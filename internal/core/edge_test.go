package core

import (
	"testing"

	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestEngineArity4 exercises the full 4-column pipeline (skip sets of
// size 3) on a small graph against naive evaluation.
func TestEngineArity4(t *testing.T) {
	phi := fo.MustParse(
		"dist(w,x) > 2 & dist(w,y) > 2 & dist(w,z) > 2 & dist(x,y) > 2 & dist(x,z) > 2 & dist(y,z) > 2 & C0(w)")
	vars := []fo.Var{"w", "x", "y", "z"}
	q, err := Compile(phi, vars, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.Path, 16, gen.Options{Seed: 3, Colors: 1, ColorProb: 0.5})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := materializeEngine(e)
	want := naiveSolutions(g, phi, vars)
	if i, ok := tuplesEqual(got, want); !ok {
		t.Fatalf("arity-4 mismatch near %d: %d vs %d tuples", i, len(got), len(want))
	}
}

// TestEngineArity5 is the maximum supported arity (skip sets of size 4).
func TestEngineArity5(t *testing.T) {
	phi := fo.MustParse("E(v,w) & dist(w,x) > 1 & dist(v,x) > 1 & dist(x,y) > 1 & dist(x,z) > 1 & " +
		"dist(y,v) > 1 & dist(y,w) > 1 & dist(z,v) > 1 & dist(z,w) > 1 & E(y,z) & C0(x)")
	vars := []fo.Var{"v", "w", "x", "y", "z"}
	q, err := Compile(phi, vars, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.Cycle, 12, gen.Options{Seed: 4, Colors: 1, ColorProb: 0.5})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := materializeEngine(e)
	want := naiveSolutions(g, phi, vars)
	if i, ok := tuplesEqual(got, want); !ok {
		t.Fatalf("arity-5 mismatch near %d: %d vs %d tuples", i, len(got), len(want))
	}
}

func TestEngineArity6Rejected(t *testing.T) {
	typ := fo.NewDistType(6)
	cl, err := MakeClause(typ)
	if err != nil {
		t.Fatal(err)
	}
	q := &LocalQuery{K: 6, R: 1, LocalRadius: 1, Clauses: []Clause{cl}}
	g := gen.Generate(gen.Path, 8, gen.Options{})
	if _, err := Preprocess(g, q, Options{}); err == nil {
		t.Fatal("arity 6 should be rejected")
	}
}

// TestEngineDisconnectedGraph: components of the graph interact only
// through "far" clauses.
func TestEngineDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(40, 1)
	for v := 0; v+1 < 20; v++ {
		b.AddEdge(v, v+1) // component A: path 0..19
	}
	for v := 20; v+1 < 40; v++ {
		b.AddEdge(v, v+1) // component B: path 20..39
	}
	for v := 0; v < 40; v += 3 {
		b.SetColor(v, 0)
	}
	g := b.Build()
	q := buildQ2(t)
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := materializeEngine(e)
	want := materializeReference(g, q)
	if _, ok := tuplesEqual(got, want); !ok {
		t.Fatalf("disconnected: %d vs %d tuples", len(got), len(want))
	}
	// Cross-component pairs are always far: (0, 20) qualifies iff 20 blue.
	if !e.Test([]graph.V{0, 21}) {
		t.Fatal("cross-component blue pair should qualify")
	}
}

func TestEngineSingleVertexGraph(t *testing.T) {
	b := graph.NewBuilder(1, 1)
	b.SetColor(0, 0)
	g := b.Build()
	q := buildQ2(t)
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The only tuple is (0,0), at distance 0 — never "far".
	if e.Count() != 0 {
		t.Fatal("single vertex cannot be far from itself")
	}
	// A close-type query accepts it.
	qc := buildClose(t)
	ec, err := Preprocess(g, qc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ec.Count() != 1 {
		t.Fatal("(0,0) is within distance 2 of itself")
	}
}

// TestEngineDuplicateTypeClauses: two clauses with the same distance type
// behave as a union without duplicates.
func TestEngineDuplicateTypeClauses(t *testing.T) {
	far := fo.NewDistType(2)
	cl1, err := MakeClause(far, fo.HasColor{C: 0, X: PosVar(1)})
	if err != nil {
		t.Fatal(err)
	}
	far2 := fo.NewDistType(2)
	cl2, err := MakeClause(far2, fo.HasColor{C: 1, X: PosVar(1)})
	if err != nil {
		t.Fatal(err)
	}
	q := &LocalQuery{K: 2, R: 2, LocalRadius: 2, Clauses: []Clause{cl1, cl2}}
	g := gen.Generate(gen.Grid, 81, gen.Options{Seed: 9, Colors: 2, ColorProb: 0.4})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := materializeEngine(e)
	want := materializeReference(g, q)
	if _, ok := tuplesEqual(got, want); !ok {
		t.Fatalf("duplicate-type union: %d vs %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if !lexLess(got[i-1], got[i]) {
			t.Fatalf("duplicate emitted at %d", i)
		}
	}
	// FastCount must agree despite the inclusion–exclusion.
	if fast, ok := e.FastCount(); !ok || fast != len(want) {
		t.Fatalf("FastCount = %d,%v want %d", fast, ok, len(want))
	}
}

// TestEngineStatsPopulated sanity-checks the statistics surface.
func TestEngineStatsPopulated(t *testing.T) {
	q := buildQ2(t)
	g := gen.Generate(gen.Grid, 196, gen.Options{Seed: 2, Colors: 1, ColorProb: 0.3})
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CoverBags < 1 || st.CoverRadius < 2 {
		t.Fatalf("cover stats: %+v", st)
	}
	if len(st.StarterSizes) == 0 {
		t.Fatal("no starter sizes recorded")
	}
	e.Count()
	if e.Stats().Candidates == 0 {
		t.Fatal("no candidates counted during enumeration")
	}
}

// TestEngineIsolatedVertices: vertices without edges participate in far
// clauses only.
func TestEngineIsolatedVertices(t *testing.T) {
	b := graph.NewBuilder(10, 1)
	b.AddEdge(0, 1)
	for v := 0; v < 10; v++ {
		b.SetColor(v, 0)
	}
	g := b.Build()
	q := buildQ2(t)
	e, err := Preprocess(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := materializeEngine(e)
	want := materializeReference(g, q)
	if _, ok := tuplesEqual(got, want); !ok {
		t.Fatalf("isolated vertices: %d vs %d", len(got), len(want))
	}
	// 10·10 pairs minus the close ones: the 10 self-pairs (distance 0)
	// plus (0,1) and (1,0).
	if len(got) != 88 {
		t.Fatalf("expected 88 far pairs, got %d", len(got))
	}
}
